// Side-by-side detector comparison on one faulty Spark job: IntelLog vs
// DeepLog vs LogCluster (the §6.4 comparison in miniature).
//
// The point the paper makes: next-key prediction (DeepLog) breaks down on
// data-analytics logs because parallel tasks interleave; session clustering
// (LogCluster) cannot localize; IntelLog pinpoints the erroneous component
// and hands back structured evidence.
#include <iostream>

#include "baselines/deeplog.hpp"
#include "baselines/logcluster.hpp"
#include "core/intellog.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

namespace {

std::vector<int> key_sequence(const core::IntelLog& il, const logparse::Session& s) {
  std::vector<int> seq;
  for (const auto& rec : s.records) seq.push_back(il.spell().match(rec.content));
  return seq;
}

}  // namespace

int main() {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 77);

  std::vector<logparse::Session> training;
  for (int i = 0; i < 20; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) training.push_back(std::move(s));
  }
  core::IntelLog il;
  il.train(training);

  std::vector<std::vector<int>> seqs;
  for (const auto& s : training) seqs.push_back(key_sequence(il, s));
  baselines::DeepLog::Config cfg;
  cfg.hidden = 32;
  cfg.epochs = 1;
  cfg.max_windows = 6000;
  baselines::DeepLog deeplog(cfg);
  deeplog.train(seqs);
  baselines::LogCluster logcluster;
  logcluster.train(seqs);

  simsys::FaultPlan fault = gen.make_fault(simsys::ProblemKind::NetworkFailure, cluster);
  fault.at_fraction = 0.3;
  const simsys::JobResult job = simsys::run_job(gen.detection_job(2), cluster, fault);

  std::cout << "faulty Spark job: " << job.sessions.size() << " sessions, "
            << job.affected_containers.size() << " truly affected ("
            << to_string(fault.kind) << " on " << cluster.node_name(fault.target_node)
            << ")\n\n";
  std::cout << "session            affected  IntelLog  DeepLog  LogCluster\n";
  for (const auto& s : job.sessions) {
    const bool truly = job.affected_containers.count(s.container_id) > 0;
    const auto report = il.detect(s);
    const auto seq = key_sequence(il, s);
    const std::string tail =
        s.container_id.size() > 16 ? s.container_id.substr(s.container_id.size() - 16)
                                   : s.container_id;
    std::cout << "  " << tail << "   " << (truly ? "YES" : " - ") << "       "
              << (report.anomalous() ? "FLAG" : "  - ") << "      "
              << (deeplog.is_anomalous(seq) ? "FLAG" : "  - ") << "     "
              << (logcluster.is_new_pattern(seq) ? "FLAG" : "  - ") << "\n";
  }

  std::cout << "\nonly IntelLog explains *what* went wrong:\n";
  for (const auto& s : job.sessions) {
    if (!job.affected_containers.count(s.container_id)) continue;
    const auto report = il.detect(s);
    for (const auto& u : report.unexpected) {
      std::cout << "  " << s.container_id << ": \"" << u.content << "\"";
      if (!u.message.localities.empty()) std::cout << "  [locality " << u.message.localities[0]
                                                   << "]";
      std::cout << "\n";
      break;  // one line per session is enough here
    }
  }
  return 0;
}
