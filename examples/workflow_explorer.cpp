// Workflow exploration: build the HW-graph for a chosen system and export
// it (plus a session's Intel Messages) as JSON for downstream query tools
// (§5: "output as JSON files which can be queried by JSON query tools").
//
//   ./workflow_explorer [spark|mapreduce|tez] [output.json]
#include <fstream>
#include <iostream>

#include "core/intellog.hpp"
#include "core/message_store.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

namespace {

void print_tree(const core::IntelLog& il, const std::string& group, int depth) {
  const auto& node = il.hw_graph().groups().at(group);
  std::cout << std::string(static_cast<std::size_t>(depth) * 2, ' ') << "- " << group << " ("
            << node.keys.size() << " keys" << (node.is_critical() ? ", critical" : "") << ")\n";
  for (const auto& child : il.hw_graph().children_of(group)) print_tree(il, child, depth + 1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string system = argc > 1 ? argv[1] : "spark";
  const std::string out_path = argc > 2 ? argv[2] : "hw_graph_" + system + ".json";

  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen(system, 23);
  std::vector<logparse::Session> training;
  for (int i = 0; i < 25; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) training.push_back(std::move(s));
  }
  core::IntelLog il;
  il.train(training);

  std::cout << "HW-graph for " << system << " (" << il.entity_groups().groups.size()
            << " entity groups, " << il.hw_graph().critical_group_count() << " critical):\n\n";
  for (const auto& root : il.hw_graph().roots()) print_tree(il, root, 0);

  // Show the Intel Keys of the largest critical group.
  std::string biggest;
  std::size_t biggest_keys = 0;
  for (const auto& [name, node] : il.hw_graph().groups()) {
    if (node.is_critical() && node.keys.size() > biggest_keys) {
      biggest = name;
      biggest_keys = node.keys.size();
    }
  }
  std::cout << "\nIntel Keys of group '" << biggest << "':\n";
  for (const int key : il.hw_graph().groups().at(biggest).keys) {
    const auto it = il.intel_keys().find(key);
    if (it != il.intel_keys().end()) std::cout << "  [" << key << "] " << it->second.key_text
                                               << "\n";
  }

  // JSON export: HW-graph + one session's Intel Messages.
  common::Json doc = common::Json::object();
  doc["system"] = system;
  doc["hw_graph"] = il.hw_graph_json();
  core::MessageStore store;
  store.add_all(il.to_intel_messages(training.front()));
  doc["example_session_messages"] = store.to_json();
  std::ofstream out(out_path);
  out << doc.dump(2) << "\n";
  std::cout << "\nwrote " << out_path << " (" << doc.dump().size() << " bytes)\n";
  return 0;
}
