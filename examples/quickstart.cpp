// Quickstart: train IntelLog on simulated Spark runs, look at the model,
// and detect an injected network failure.
//
//   1. generate fault-free training jobs (tuned configs),
//   2. IntelLog::train -> log keys, Intel Keys, entity groups, HW-graph,
//   3. run one faulty job and one clean job through detection.
#include <iostream>

#include "core/intellog.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

int main() {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", /*seed=*/7);

  // --- 1. training corpus ---------------------------------------------------
  std::vector<logparse::Session> training;
  for (int i = 0; i < 12; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) training.push_back(std::move(s));
  }
  std::cout << "training sessions: " << training.size() << "\n";

  // --- 2. train ---------------------------------------------------------------
  core::IntelLog il;
  il.train(training);
  std::cout << "log keys discovered: " << il.spell().size() << "\n";
  std::cout << "intel keys (natural language): " << il.intel_keys().size() << "\n";
  std::cout << "entity groups: " << il.entity_groups().groups.size()
            << " (critical: " << il.hw_graph().critical_group_count() << ")\n\n";

  std::cout << "entity groups and their members:\n";
  for (const auto& [name, members] : il.entity_groups().groups) {
    std::cout << "  [" << name << "] ";
    for (const auto& m : members) std::cout << m << "; ";
    std::cout << "\n";
  }

  std::cout << "\nHW-graph roots and children:\n";
  for (const auto& root : il.hw_graph().roots()) {
    std::cout << "  " << root << "\n";
    for (const auto& child : il.hw_graph().children_of(root)) {
      std::cout << "    +- " << child << "\n";
    }
  }

  // --- 3. detect --------------------------------------------------------------
  std::cout << "\n--- clean job ---\n";
  simsys::JobResult clean = simsys::run_job(gen.detection_job(1), cluster);
  int flagged = 0;
  for (const auto& s : clean.sessions) flagged += il.detect(s).anomalous() ? 1 : 0;
  std::cout << "flagged sessions: " << flagged << " / " << clean.sessions.size() << "\n";

  std::cout << "\n--- job with injected network failure ---\n";
  const simsys::FaultPlan fault = gen.make_fault(simsys::ProblemKind::NetworkFailure, cluster);
  simsys::JobResult faulty = simsys::run_job(gen.detection_job(2), cluster, fault);
  flagged = 0;
  for (const auto& s : faulty.sessions) {
    const auto report = il.detect(s);
    if (!report.anomalous()) continue;
    ++flagged;
    if (flagged <= 2) {
      for (const auto& u : report.unexpected) {
        std::cout << "  unexpected: \"" << u.content << "\"\n";
        for (const auto& loc : u.message.localities) std::cout << "    locality: " << loc << "\n";
      }
      for (const auto& i : report.issues) {
        std::cout << "  issue: " << to_string(i.kind) << " in group '" << i.group << "'\n";
      }
    }
  }
  std::cout << "flagged sessions: " << flagged << " / " << faulty.sessions.size()
            << "  (truly affected: " << faulty.affected_containers.size() << ")\n";
  return 0;
}
