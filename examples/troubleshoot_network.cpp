// Case-study walkthrough (paper §6.4, case 1): diagnosing a network
// failure in a MapReduce job with IntelLog's query workflow.
//
//   1. train on clean runs;
//   2. run a WordCount job with a network failure injected on one node;
//   3. IntelLog flags the problematic sessions and transforms the
//      unexpected messages into Intel Messages;
//   4. GroupBy identifier -> the failing fetchers;
//   5. GroupBy locality   -> a single host: the root cause.
#include <iostream>

#include "core/intellog.hpp"
#include "core/message_store.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

int main() {
  simsys::ClusterSpec cluster;

  std::cout << "training IntelLog on 25 clean MapReduce runs...\n";
  simsys::WorkloadGenerator gen("mapreduce", 11);
  std::vector<logparse::Session> training;
  for (int i = 0; i < 25; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) training.push_back(std::move(s));
  }
  core::IntelLog il;
  il.train(training);
  std::cout << "  " << il.spell().size() << " log keys, " << il.intel_keys().size()
            << " Intel Keys, " << il.entity_groups().groups.size() << " entity groups\n\n";

  // --- the incident -----------------------------------------------------------
  simsys::JobSpec spec;
  spec.system = "mapreduce";
  spec.name = "WordCount";
  spec.input_gb = 30;
  spec.container_cores = 8;
  spec.container_memory_mb = 4096;
  spec.seed = 91;
  simsys::FaultPlan fault = gen.make_fault(simsys::ProblemKind::NetworkFailure, cluster);
  fault.at_fraction = 0.35;
  std::cout << "running WordCount (30GB) with a network failure injected on "
            << cluster.node_name(fault.target_node) << "...\n";
  const simsys::JobResult job = simsys::run_job(spec, cluster, fault);

  // --- detection ---------------------------------------------------------------
  core::MessageStore store;
  std::size_t problematic = 0;
  std::string example_report;
  for (const auto& session : job.sessions) {
    const core::AnomalyReport report = il.detect(session);
    if (!report.anomalous()) continue;
    ++problematic;
    for (const auto& u : report.unexpected) store.add(u.message);
    if (example_report.empty()) example_report = report.to_json().dump(2);
  }
  std::cout << "IntelLog reports " << problematic << " problematic sessions out of "
            << job.sessions.size() << " (" << store.size() << " unexpected messages)\n\n";

  std::cout << "GroupBy identifier (which components fail?):\n";
  for (const auto& [id, msgs] : store.group_by_identifier("FETCHER")) {
    std::cout << "  " << id << ": " << msgs.size() << " messages\n";
  }
  std::cout << "\nGroupBy locality (where do they fail?):\n";
  for (const auto& [loc, msgs] : store.group_by_locality()) {
    std::cout << "  " << loc << ": " << msgs.size() << " messages\n";
  }
  std::cout << "\n=> all failures point at " << cluster.node_name(fault.target_node)
            << "; the injection log confirms a network failure there.\n";

  std::cout << "\nfirst anomaly report as JSON (queryable, §5):\n"
            << example_report.substr(0, 1200) << "\n...\n";
  return 0;
}
