// Streaming detection: consume an interleaved multi-container log stream
// record by record, like tailing a cluster's aggregated logs.
//
// Unexpected messages print the moment they arrive; sessions close on idle
// timeout and get the full structural check (§4.2's HW-graph instance).
#include <algorithm>
#include <iostream>

#include "core/model_io.hpp"
#include "core/online.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

int main() {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("tez", 55);

  std::cout << "training on 25 clean Tez runs...\n";
  std::vector<logparse::Session> training;
  for (int i = 0; i < 25; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) training.push_back(std::move(s));
  }
  core::IntelLog model;
  model.train(training);

  // The "live" stream: a faulty job's records in arrival order.
  simsys::JobResult job;
  for (int attempt = 0; attempt < 8 && job.affected_containers.empty(); ++attempt) {
    const auto fault = gen.make_fault(simsys::ProblemKind::NetworkFailure, cluster);
    job = simsys::run_job(gen.detection_job(3), cluster, fault);
  }
  std::vector<logparse::LogRecord> stream;
  for (const auto& s : job.sessions) {
    stream.insert(stream.end(), s.records.begin(), s.records.end());
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const logparse::LogRecord& a, const logparse::LogRecord& b) {
                     return a.timestamp_ms < b.timestamp_ms;
                   });
  std::cout << "streaming " << stream.size() << " records from "
            << job.sessions.size() << " concurrent containers...\n\n";

  core::OnlineDetector online(model);
  std::size_t events = 0;
  std::uint64_t clock = 0;
  for (const auto& rec : stream) {
    clock = std::max(clock, rec.timestamp_ms);
    if (const auto event = online.consume(rec)) {
      ++events;
      if (events <= 5) {
        std::cout << "[live] " << event->container_id << ": \""
                  << event->unexpected.content << "\"\n";
      }
    }
    // Periodic idle sweep, as a log collector would run it.
    for (const auto& report : online.close_idle(clock, /*idle_ms=*/600000)) {
      if (report.anomalous()) {
        std::cout << "[closed idle] " << report.container_id << " anomalous ("
                  << report.issues.size() << " issues)\n";
      }
    }
  }
  std::cout << "... " << events << " live events total\n\nfinal sweep:\n";
  std::size_t anomalous = 0;
  for (const auto& report : online.close_all()) {
    anomalous += report.anomalous();
    if (!report.anomalous()) continue;
    std::cout << "  " << report.container_id << ": " << report.unexpected.size()
              << " unexpected, " << report.issues.size() << " structural issues\n";
  }
  std::cout << anomalous << " / " << job.sessions.size()
            << " sessions anomalous (truly affected: " << job.affected_containers.size()
            << ")\n";
  return 0;
}
