// Future-work extension (paper §9): IntelLog applied to a distributed
// machine-learning system — simulated distributed TensorFlow with
// parameter servers and workers.
//
// Nothing in IntelLog changes: the same NLP extraction, entity grouping
// and HW-graph construction run over the new system's logs, and detection
// pinpoints a parameter-server outage.
#include <iostream>

#include "core/intellog.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

int main() {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("tensorflow", 321);

  std::cout << "training IntelLog on 20 clean distributed-TensorFlow runs...\n";
  std::vector<logparse::Session> training;
  for (int i = 0; i < 20; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) training.push_back(std::move(s));
  }
  core::IntelLog il;
  il.train(training);

  std::cout << "  " << il.spell().size() << " log keys, "
            << il.entity_groups().groups.size() << " entity groups\n\n";
  std::cout << "entity groups learned from the ML system's logs:\n";
  for (const auto& [name, members] : il.entity_groups().groups) {
    std::cout << "  [" << name << "]";
    if (members.size() > 1) {
      std::cout << " <-";
      for (const auto& m : members) {
        if (m != name) std::cout << " " << m << ";";
      }
    }
    std::cout << "\n";
  }

  // --- a parameter server drops off the network -------------------------------
  simsys::FaultPlan fault = gen.make_fault(simsys::ProblemKind::NetworkFailure, cluster);
  fault.target_node = 0;  // parameter servers are pinned to the first nodes
  fault.at_fraction = 0.4;
  const simsys::JobResult job = simsys::run_job(gen.detection_job(2), cluster, fault);

  std::cout << "\ndetection on a ResNet-style run with a parameter-server network "
               "failure:\n";
  int flagged = 0;
  for (const auto& s : job.sessions) {
    const auto report = il.detect(s);
    if (!report.anomalous()) continue;
    ++flagged;
    for (const auto& u : report.unexpected) {
      std::cout << "  " << s.container_id << ": \"" << u.content << "\"\n";
      for (const auto& loc : u.message.localities) {
        std::cout << "      locality -> " << loc << "\n";
      }
      break;
    }
  }
  std::cout << "flagged " << flagged << " / " << job.sessions.size()
            << " sessions (truly affected: " << job.affected_containers.size() << ")\n";
  return 0;
}
