// Table 1: lines and percentages of natural-language logs per system.
//
// Paper result: Spark 100%, MapReduce 91.8%, Tez 92.2%, Yarn 97.6%,
// nova-compute 100% (after excluding its periodic fixed-format resource
// reports, per the paper's footnote). We regenerate log volume from all
// five simulated systems and run the clause detector over every line.
#include "bench/harness.hpp"
#include "common/table.hpp"
#include "logparse/kv_filter.hpp"
#include "simsys/yarn_system.hpp"

using namespace intellog;

namespace {

struct Count {
  std::size_t nl = 0, total = 0;
};

Count count_records(const logparse::KvFilter& filter,
                    const std::vector<logparse::LogRecord>& records) {
  Count c;
  for (const auto& r : records) {
    ++c.total;
    c.nl += filter.is_natural_language(r.content);
  }
  return c;
}

}  // namespace

int main() {
  bench::print_header("Table 1: natural-language log share per system");
  const logparse::KvFilter filter;
  common::TextTable table({"System", "NL logs", "total logs", "% of NL logs"});

  simsys::ClusterSpec cluster;
  // Data analytics systems: a mixed workload per system.
  for (const auto& system : bench::systems()) {
    simsys::WorkloadGenerator gen(system, 1000 + system.size());
    Count c;
    for (int j = 0; j < 25; ++j) {
      const simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
      for (const auto& s : job.sessions) {
        const Count part = count_records(filter, s.records);
        c.nl += part.nl;
        c.total += part.total;
      }
    }
    table.add_row({system, std::to_string(c.nl), std::to_string(c.total),
                   common::fmt_percent(static_cast<double>(c.nl) / c.total, 1)});
  }

  // YARN daemons.
  {
    common::Rng rng(77);
    const auto records = simsys::generate_yarn_logs(cluster, 400, rng);
    const Count c = count_records(filter, records);
    table.add_row({"yarn", std::to_string(c.nl), std::to_string(c.total),
                   common::fmt_percent(static_cast<double>(c.nl) / c.total, 1)});
  }

  // nova-compute, applying the paper's footnote: periodic resource reports
  // (source compute.resource_tracker) are excluded; only VM-request logs
  // count.
  {
    common::Rng rng(78);
    auto records = simsys::generate_nova_logs(2000, rng);
    std::erase_if(records, [](const logparse::LogRecord& r) {
      return r.source == "compute.resource_tracker";
    });
    const Count c = count_records(filter, records);
    table.add_row({"nova-compute", std::to_string(c.nl), std::to_string(c.total),
                   common::fmt_percent(static_cast<double>(c.nl) / c.total, 1)});
  }

  table.print(std::cout);
  std::cout << "\nPaper (Table 1): Spark 100%, MapReduce 91.8%, Tez 92.2%, Yarn 97.6%, "
               "nova-compute 100%.\n";
  return 0;
}
