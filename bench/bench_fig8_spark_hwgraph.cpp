// Figure 8: the Spark HW-graph — entity-group hierarchy plus the
// subroutines inside each group, rendered as text.
//
// The paper's figure shows: 'acl' first; four majors ('memory',
// 'directory', 'driver', 'block') spanning execution; children such as
// 'task' and 'fetch' under the majors; 'shutdown' after 'task' and
// 'directory'. Group 'block' carries three subroutines: s1 (BlockManager
// register/registered/initialized), s2 (per-block storage), s3
// (identifier-less get/stop).
#include <functional>

#include "bench/harness.hpp"

using namespace intellog;

namespace {

void print_group_tree(const core::IntelLog& il, const std::string& group, int depth) {
  const auto& node = il.hw_graph().groups().at(group);
  std::cout << std::string(static_cast<std::size_t>(depth) * 2, ' ') << "- " << group
            << (node.is_critical() ? "  [critical]" : "") << "\n";
  for (const auto& child : il.hw_graph().children_of(group)) {
    print_group_tree(il, child, depth + 1);
  }
}

std::string op_label(const core::IntelKey& ik) {
  if (ik.operations.empty()) return ik.key_text;
  std::string out;
  for (const auto& op : ik.operations) {
    if (!out.empty()) out += ", ";
    out += "{" + (op.subj.empty() ? "_" : op.subj) + ", " + op.predicate + ", " +
           (op.obj.empty() ? "_" : op.obj) + "}";
  }
  return out;
}

}  // namespace

int main() {
  bench::print_header("Figure 8: Spark HW-graph (hierarchy + subroutines)");
  const core::IntelLog il = bench::train_model("spark", 40, 88);

  std::cout << "(a) entity-group hierarchy (roots in BEFORE/containment order):\n\n";
  for (const auto& root : il.hw_graph().roots()) print_group_tree(il, root, 0);

  std::cout << "\nordering relations among root groups:\n";
  const auto& roots = il.hw_graph().roots();
  for (std::size_t i = 0; i < roots.size(); ++i) {
    for (std::size_t j = i + 1; j < roots.size(); ++j) {
      const auto rel = il.hw_graph().relation(roots[i], roots[j]);
      if (!rel) continue;
      if (*rel == core::GroupRelation::Before) {
        std::cout << "  " << roots[i] << " BEFORE " << roots[j] << "\n";
      } else if (*rel == core::GroupRelation::After) {
        std::cout << "  " << roots[j] << " BEFORE " << roots[i] << "\n";
      }
    }
  }

  std::cout << "\n(b) subroutines of the 'block' entity group (paper's s1/s2/s3):\n";
  const auto& block = il.hw_graph().groups().at("block");
  int s = 1;
  for (const auto& [sig, sub] : block.subroutines.subroutines()) {
    std::cout << "  s" << s++ << "  signature {";
    bool first = true;
    for (const auto& t : sig) {
      if (!first) std::cout << ", ";
      first = false;
      std::cout << t;
    }
    std::cout << "}  (" << sub.instance_count << " instances)\n";
    for (const int key : sub.keys) {
      const auto it = il.intel_keys().find(key);
      if (it == il.intel_keys().end()) continue;
      std::cout << "      " << (sub.critical.count(key) ? "*" : " ") << " "
                << op_label(it->second) << "\n";
    }
  }
  std::cout << "  (* = critical Intel Key)\n";

  std::cout << "\nPaper (Fig. 8): acl first; memory/directory/driver/block as parallel\n"
               "majors; task and fetch nested below; shutdown after task and directory;\n"
               "block group: s1 {BLOCKMANAGER} register/registered/initialized,\n"
               "s2 {BLOCK} storage, s3 {} get/stopped.\n";
  return 0;
}
