// Ablations over the design choices the paper fixes empirically:
//
//   A1  Spell matching threshold t (§5 sets t = 1.7): too strict splits
//       one printing statement into many keys; too loose merges distinct
//       statements.
//   A2  Algorithm 1's suffix-rejection rule: without it, generic tails
//       ("manager", "output") glue unrelated entities into mega-groups.
//   A3  The expected-group bar for detection: demanding groups that only
//       *most* training sessions contain misfires on whole session classes
//       (AM vs mapper vs reducer containers).
//   A4  DeepLog's candidate-set size g: the precision/recall trade-off on
//       parallel-interleaved logs.
#include <set>

#include "baselines/deeplog.hpp"
#include "bench/harness.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/entity_grouping.hpp"
#include "nlp/hmm_tagger.hpp"

using namespace intellog;

namespace {

// Algorithm 1 WITHOUT the suffix-rejection rule (lines 26-27 removed).
core::EntityGroups group_entities_no_suffix_rule(const std::vector<std::string>& entities) {
  std::vector<std::vector<std::string>> items;
  std::set<std::string> seen;
  for (const auto& e : entities) {
    if (!e.empty() && seen.insert(e).second) items.push_back(common::split_ws(e));
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const auto& x, const auto& y) { return x.size() < y.size(); });
  struct Group {
    std::vector<std::string> name;
    std::set<std::string> members;
  };
  std::vector<Group> groups;
  for (const auto& e : items) {
    bool grouped = false;
    for (auto& g : groups) {
      auto lcp = common::longest_common_substring_words(g.name, e);
      if (g.name.size() == 1 || e.size() == 1) {
        lcp.clear();
        const auto& one = g.name.size() == 1 ? g.name : e;
        const auto& other = g.name.size() == 1 ? e : g.name;
        if (std::find(other.begin(), other.end(), one[0]) != other.end()) lcp = {one[0]};
      }
      if (!lcp.empty()) {
        g.members.insert(common::join(e, " "));
        g.name = lcp;
        grouped = true;
      }
    }
    if (!grouped) groups.push_back({e, {common::join(e, " ")}});
  }
  core::EntityGroups out;
  for (const auto& g : groups) {
    auto& members = out.groups[common::join(g.name, " ")];
    members.insert(g.members.begin(), g.members.end());
  }
  return out;
}

}  // namespace

int main() {
  // ---- A1: Spell threshold --------------------------------------------------
  bench::print_header("Ablation A1: Spell threshold t (paper: 1.7)");
  {
    const auto sessions = bench::training_corpus("spark", 15, 404);
    common::TextTable table({"t", "log keys", "note"});
    for (const double t : {1.0, 1.3, 1.7, 2.5, 4.0}) {
      logparse::Spell spell(t);
      for (const auto& s : sessions) {
        for (const auto& rec : s.records) spell.consume(rec.content);
      }
      std::string note;
      if (t < 1.5) note = "strict: variable words split keys";
      else if (t > 2.0) note = "loose: distinct statements merge";
      else note = "paper's operating point";
      table.add_row({common::fmt_double(t, 1), std::to_string(spell.size()), note});
    }
    table.print(std::cout);
  }

  // ---- A2: suffix-rejection rule ----------------------------------------------
  bench::print_header("Ablation A2: Algorithm 1 suffix-rejection rule");
  {
    // The paper's own example set (§4.1): "block manager" and "security
    // manager" share only the generic tail "manager"; the rule keeps them
    // apart. A corpus-scale run follows.
    const std::vector<std::string> paper_example = {
        "security manager", "block manager", "block", "block manager endpoint",
        "memory store",     "map output",    "task output"};
    const auto demo_with = core::group_entities(paper_example);
    const auto demo_without = group_entities_no_suffix_rule(paper_example);
    const auto render = [](const core::EntityGroups& g) {
      std::string out;
      for (const auto& [name, members] : g.groups) {
        out += "  [" + name + "]";
        for (const auto& m : members) out += " " + m + ";";
        out += "\n";
      }
      return out;
    };
    std::cout << "paper example, with the rule (" << demo_with.groups.size() << " groups):\n"
              << render(demo_with);
    std::cout << "paper example, without the rule (" << demo_without.groups.size()
              << " groups):\n"
              << render(demo_without)
              << "  <- 'manager' / 'output' tails glue unrelated entities together\n\n";

    const core::IntelLog il = bench::train_model("spark", 15, 405);
    std::vector<std::string> entities;
    for (const auto& [id, ik] : il.intel_keys()) {
      (void)id;
      entities.insert(entities.end(), ik.entities.begin(), ik.entities.end());
    }
    const auto with_rule = core::group_entities(entities);
    const auto without = group_entities_no_suffix_rule(entities);
    std::cout << "full Spark corpus: " << with_rule.groups.size() << " groups with the rule, "
              << without.groups.size() << " without\n";
  }

  // ---- A3: expected-group fraction ---------------------------------------------
  bench::print_header("Ablation A3: expected-group bar (group absence checks)");
  {
    common::TextTable table({"fraction", "D", "FP", "FN"});
    const auto jobs = bench::detection_workload("mapreduce", 3030);
    for (const double frac : {0.8, 0.9, 1.0}) {
      core::IntelLog::Config cfg;
      cfg.expected_group_fraction = frac;
      core::IntelLog il(cfg);
      il.train(bench::training_corpus("mapreduce", 20, 2024));
      int d = 0, fp = 0, fn = 0;
      for (const auto& dj : jobs) {
        const bool flagged = bench::job_flagged(il, dj.result);
        if (dj.injected) {
          (flagged ? d : fn)++;
        } else if (!dj.borderline) {
          fp += flagged;
        }
      }
      table.add_row({common::fmt_double(frac, 2), std::to_string(d), std::to_string(fp),
                     std::to_string(fn)});
    }
    table.print(std::cout);
    std::cout << "(session classes differ — mapper-only groups sit at ~95% presence, so\n"
                 "any bar below 1.0 flags every AM and reducer session)\n";
  }

  // ---- A4: DeepLog candidate-set size g ------------------------------------------
  bench::print_header("Ablation A4: DeepLog top-g candidates");
  {
    const auto training = bench::training_corpus("spark", 20, 406);
    core::IntelLog il;
    il.train(training);
    std::vector<std::vector<int>> seqs;
    for (const auto& s : training) {
      std::vector<int> q;
      for (const auto& rec : s.records) q.push_back(il.spell().match(rec.content));
      seqs.push_back(std::move(q));
    }
    const auto jobs = bench::detection_workload("spark", 407);
    common::TextTable table({"g", "normal sessions flagged", "affected sessions flagged"});
    for (const std::size_t g : {1u, 3u, 9u, 20u}) {
      baselines::DeepLog::Config cfg;
      cfg.hidden = 32;
      cfg.top_g = g;
      cfg.epochs = 1;
      cfg.max_windows = 6000;
      baselines::DeepLog dl(cfg);
      dl.train(seqs);
      std::size_t normal = 0, normal_fl = 0, aff = 0, aff_fl = 0;
      for (const auto& dj : jobs) {
        for (const auto& s : dj.result.sessions) {
          std::vector<int> q;
          for (const auto& rec : s.records) q.push_back(il.spell().match(rec.content));
          const bool truly = dj.result.affected_containers.count(s.container_id) ||
                             dj.result.perf_affected_containers.count(s.container_id);
          const bool fl = dl.is_anomalous(q);
          (truly ? aff : normal)++;
          if (truly) aff_fl += fl;
          else normal_fl += fl;
        }
      }
      table.add_row({std::to_string(g),
                     std::to_string(normal_fl) + " / " + std::to_string(normal),
                     std::to_string(aff_fl) + " / " + std::to_string(aff)});
    }
    table.print(std::cout);
    std::cout << "(no g both keeps normal parallel sessions quiet and catches the\n"
                 "anomalies — the paper's core argument against next-key prediction on\n"
                 "data-analytics logs)\n";
  }

  // ---- A5: POS tagger backend (rules vs bootstrapped HMM) --------------------
  bench::print_header("Ablation A5: rule tagger vs bootstrapped HMM tagger");
  {
    const nlp::PosTagger rules;
    nlp::HmmTagger hmm;
    // Bootstrap on one system's logs, evaluate agreement per system.
    std::vector<std::string> boot;
    for (const auto& s : bench::training_corpus("spark", 10, 408)) {
      for (const auto& rec : s.records) boot.push_back(rec.content.str());
    }
    hmm.bootstrap(rules, boot);
    common::TextTable table({"held-out system", "token agreement with rule tagger"});
    for (const auto& system : bench::systems()) {
      std::vector<std::string> eval;
      for (const auto& s : bench::training_corpus(system, 2, 409)) {
        for (const auto& rec : s.records) eval.push_back(rec.content.str());
      }
      table.add_row({system, common::fmt_percent(hmm.agreement(rules, eval), 1)});
    }
    table.print(std::cout);
    std::cout << "(bootstrapped on Spark logs only: near-perfect agreement in-domain,\n"
                 "but agreement collapses on MapReduce/Tez vocabulary the HMM never\n"
                 "saw — statistical taggers need domain-matched training data, which is\n"
                 "why the lexicon-plus-rules backend is the pragmatic default and why\n"
                 "the paper's own choice of a pre-trained general model is the weak\n"
                 "link its §6.2 error analysis keeps running into)\n";
  }
  return 0;
}
