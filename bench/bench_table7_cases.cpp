// Table 7 + §6.4 case studies: three diagnosis walkthroughs.
//
//   Case 1   MapReduce WordCount, 30GB, 8-core/4GB: injected network
//            failure on a host. IntelLog reports sessions with unexpected
//            fetcher messages; GroupBy identifier then GroupBy locality
//            pins all failures on one host.
//   Case 2   Spark KMeans 30GB 8-core/2GB and Tez Query-8 5GB 1-core/1GB:
//            jobs finish, but spill messages (never seen in tuned training)
//            reveal a memory-limit performance issue; Tez messages carry
//            the spill file's disk path.
//   Case 3   Spark WordCount 30GB 8-core/16GB with the Spark-19371 bug:
//            half the containers receive no tasks; IntelLog reports
//            sessions missing the 'task' entity group entirely.
#include <map>

#include "bench/harness.hpp"
#include "common/table.hpp"
#include "core/message_store.hpp"

using namespace intellog;

namespace {

simsys::JobSpec make_spec(const std::string& system, const std::string& name, int input_gb,
                          int cores, int memory_mb, std::uint64_t seed) {
  simsys::JobSpec s;
  s.system = system;
  s.name = name;
  s.input_gb = input_gb;
  s.container_cores = cores;
  s.container_memory_mb = memory_mb;
  s.seed = seed;
  return s;
}

struct CaseOutcome {
  std::size_t problematic = 0, total = 0;
  std::string summary;
};

}  // namespace

int main() {
  bench::print_header("Table 7 / case studies");
  simsys::ClusterSpec cluster;
  std::vector<std::pair<std::string, CaseOutcome>> rows;

  // --- Case 1: MapReduce WordCount + network failure ------------------------
  {
    const core::IntelLog il = bench::train_model("mapreduce", 30, 1);
    simsys::WorkloadGenerator gen("mapreduce", 2);
    simsys::FaultPlan fault = gen.make_fault(simsys::ProblemKind::NetworkFailure, cluster);
    fault.at_fraction = 0.35;
    const auto job =
        simsys::run_job(make_spec("mapreduce", "WordCount", 30, 8, 4096, 91), cluster, fault);

    CaseOutcome out;
    out.total = job.sessions.size();
    core::MessageStore unexpected_store;
    for (const auto& s : job.sessions) {
      const auto report = il.detect(s);
      if (!report.anomalous()) continue;
      ++out.problematic;
      for (const auto& u : report.unexpected) unexpected_store.add(u.message);
    }
    // The paper's diagnosis: GroupBy identifiers, then GroupBy locality.
    const auto by_id = unexpected_store.group_by_identifier();
    const auto by_loc = unexpected_store.group_by_locality();
    std::string host = by_loc.empty() ? "?" : by_loc.begin()->first;
    out.summary = std::to_string(by_id.size()) + " identifier groups, " +
                  std::to_string(by_loc.size()) + " locality group(s) -> " + host;
    std::cout << "case 1 (MapReduce WordCount, network failure):\n"
              << "  problematic sessions: " << out.problematic << " / " << out.total << "\n"
              << "  GroupBy identifier: " << by_id.size() << " groups with failures\n"
              << "  GroupBy locality:   " << by_loc.size() << " group(s)";
    for (const auto& [loc, msgs] : by_loc) {
      std::cout << "  [" << loc << ": " << msgs.size() << " messages]";
    }
    std::cout << "\n  injected victim: " << cluster.node_name(fault.target_node) << "\n\n";
    rows.emplace_back("1  MapReduce/WordCount 30GB 8c,4GB  network failure", out);
  }

  // --- Case 2.1: Spark KMeans performance issue ------------------------------
  {
    const core::IntelLog il = bench::train_model("spark", 30, 3);
    const auto job = simsys::run_job(make_spec("spark", "KMeans", 30, 8, 2048, 92), cluster);
    CaseOutcome out;
    out.total = job.sessions.size();
    std::set<std::string> new_entities;
    for (const auto& s : job.sessions) {
      const auto report = il.detect(s);
      if (!report.anomalous()) continue;
      ++out.problematic;
      for (const auto& u : report.unexpected) {
        for (const auto& e : u.extracted.entities) {
          if (e.find("spill") != std::string::npos) new_entities.insert(e);
        }
      }
    }
    out.summary = "new entities: ";
    for (const auto& e : new_entities) out.summary += "'" + e + "' ";
    std::cout << "case 2.1 (Spark KMeans, memory limit too low):\n"
              << "  problematic sessions: " << out.problematic << " / " << out.total << "\n"
              << "  " << out.summary << "\n\n";
    rows.emplace_back("2.1 Spark/KMeans 30GB 8c,2GB  performance issue", out);
  }

  // --- Case 2.2: Tez Query 8 performance issue -------------------------------
  {
    const core::IntelLog il = bench::train_model("tez", 30, 4);
    const auto job = simsys::run_job(make_spec("tez", "TPCH-Q8", 5, 1, 1024, 93), cluster);
    CaseOutcome out;
    out.total = job.sessions.size();
    std::set<std::string> disk_paths;
    for (const auto& s : job.sessions) {
      const auto report = il.detect(s);
      if (!report.anomalous()) continue;
      ++out.problematic;
      for (const auto& u : report.unexpected) {
        for (const auto& loc : u.message.localities) disk_paths.insert(loc);
      }
    }
    out.summary = std::to_string(disk_paths.size()) + " spill disk path(s) recorded";
    std::cout << "case 2.2 (Tez Query 8, memory limit too low):\n"
              << "  problematic sessions: " << out.problematic << " / " << out.total << "\n"
              << "  spill paths: ";
    for (const auto& p : disk_paths) {
      std::cout << p << " ";
      break;  // one example is enough
    }
    std::cout << "(" << disk_paths.size() << " total)\n\n";
    rows.emplace_back("2.2 Tez/Query-8 5GB 1c,1GB  performance issue", out);
  }

  // --- Case 3: Spark-19371 ----------------------------------------------------
  {
    const core::IntelLog il = bench::train_model("spark", 30, 5);
    simsys::FaultPlan fault;
    fault.spark19371_bug = true;
    const auto job =
        simsys::run_job(make_spec("spark", "WordCount", 30, 8, 16384, 94), cluster, fault);
    CaseOutcome out;
    out.total = job.sessions.size();
    std::size_t missing_task = 0;
    for (const auto& s : job.sessions) {
      const auto report = il.detect(s);
      bool this_missing = false;
      for (const auto& i : report.issues) {
        this_missing |=
            i.kind == core::GroupIssue::Kind::MissingGroup && i.group == "task";
      }
      missing_task += this_missing;
      out.problematic += report.anomalous();
    }
    out.summary = std::to_string(missing_task) + " sessions missing the 'task' group";
    std::cout << "case 3 (Spark WordCount, Spark-19371 bug):\n"
              << "  problematic sessions: " << out.problematic << " / " << out.total << "\n"
              << "  sessions with no 'task' entity group: " << missing_task << "\n\n";
    rows.emplace_back("3  Spark/WordCount 30GB 8c,16GB  internal bug", out);
  }

  common::TextTable table({"Case / job / resources / anomaly", "sessions D / T", "diagnosis"});
  for (const auto& [label, out] : rows) {
    table.add_row({label, std::to_string(out.problematic) + " / " + std::to_string(out.total),
                   out.summary});
  }
  table.print(std::cout);
  std::cout << "\nPaper (Table 7): case 1 -> 4/259 sessions, 11 fetcher groups, 1 host;\n"
               "case 2.1 -> 1/8; case 2.2 -> 24/25; case 3 -> 4/8 sessions without the\n"
               "'task' group.\n";
  return 0;
}
