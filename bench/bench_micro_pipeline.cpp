// Microbenchmarks (google-benchmark) for the pipeline's hot paths:
// Spell key matching, POS tagging + extraction, Intel-Message
// instantiation, and end-to-end session detection. These are not paper
// tables; they document the throughput envelope of the implementation.
//
// After the google benchmarks, main() measures the detection path with the
// repo harness (steady_clock, warm-up + repeats) and writes
// BENCH_micro_pipeline.json — the committed baseline that tools/ci.sh's
// bench smoke stage regresses against. Headline throughput_per_s is Spell
// match records/s; `extra` carries detect records/s, detect_batch
// 1/2/4-thread scaling, the observability overhead ratios
// (evidence/coverage/profiler/flight/scrape — all gated in ci.sh) and the profiler's
// top-N hotspot attribution. Pass --benchmark_filter to trim the google
// part (the harness part always runs).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "core/detect_scratch.hpp"
#include "core/extraction.hpp"
#include "logparse/formatter.hpp"
#include "logparse/log_io.hpp"
#include "logparse/session.hpp"
#include "obs/export/trace_export.hpp"
#include "obs/flight/flight.hpp"
#include "obs/http/admin.hpp"
#include "obs/http/http.hpp"
#include "obs/metrics.hpp"
#include "obs/profile/profile.hpp"
#include "simsys/corruptor.hpp"

using namespace intellog;

namespace {

const core::IntelLog& shared_model() {
  static const core::IntelLog il = bench::train_model("spark", 10, 7);
  return il;
}

const logparse::Session& shared_session() {
  static const logparse::Session session = [] {
    simsys::ClusterSpec cluster;
    simsys::WorkloadGenerator gen("spark", 17);
    static simsys::JobResult job = simsys::run_job(gen.detection_job(2), cluster);
    return job.sessions.front();
  }();
  return session;
}

const std::vector<logparse::Session>& shared_batch() {
  static const std::vector<logparse::Session> sessions = [] {
    simsys::ClusterSpec cluster;
    simsys::WorkloadGenerator gen("spark", 29);
    std::vector<logparse::Session> out;
    for (int j = 0; j < 6; ++j) {
      simsys::JobResult job = simsys::run_job(gen.detection_job(j % 3), cluster);
      for (auto& s : job.sessions) out.push_back(std::move(s));
    }
    return out;
  }();
  return sessions;
}

void BM_SpellMatch(benchmark::State& state) {
  const auto& il = shared_model();
  const auto& session = shared_session();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& rec = session.records[i++ % session.records.size()];
    benchmark::DoNotOptimize(il.spell().match(rec.content));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpellMatch);

void BM_PosTagMessage(benchmark::State& state) {
  const nlp::PosTagger tagger;
  const std::string msg =
      "Finished task 1.0 in stage 0.0 (TID 3). 2578 bytes result sent to driver";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tagger.tag_message(msg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PosTagMessage);

void BM_ExtractIntelKey(benchmark::State& state) {
  const core::InfoExtractor extractor;
  logparse::LogKey key;
  key.id = 0;
  key.tokens = {"fetcher", "#", "*", "about", "to", "shuffle", "output", "of", "map", "*"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        extractor.extract(key, "fetcher # 1 about to shuffle output of map attempt_01"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ExtractIntelKey);

void BM_DetectSession(benchmark::State& state) {
  const auto& il = shared_model();
  const auto& session = shared_session();
  for (auto _ : state) {
    benchmark::DoNotOptimize(il.detect(session));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * session.records.size()));
}
BENCHMARK(BM_DetectSession);

// Same workload as BM_DetectSession but with a metrics registry installed:
// the delta against BM_DetectSession is the full (enabled) metrics cost;
// BM_DetectSession itself runs with the registry null, i.e. the no-op path.
void BM_DetectSessionMetricsEnabled(benchmark::State& state) {
  const auto& il = shared_model();
  const auto& session = shared_session();
  obs::MetricsRegistry reg;
  obs::set_registry(&reg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(il.detect(session));
  }
  obs::set_registry(nullptr);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * session.records.size()));
}
BENCHMARK(BM_DetectSessionMetricsEnabled);

void BM_TrainSmallCorpus(benchmark::State& state) {
  const auto sessions = bench::training_corpus("spark", 3, 5);
  std::size_t records = 0;
  for (const auto& s : sessions) records += s.records.size();
  for (auto _ : state) {
    core::IntelLog il;
    il.train(sessions);
    benchmark::DoNotOptimize(il.trained());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * records));
}
BENCHMARK(BM_TrainSmallCorpus);

void BM_DetectBatch4Threads(benchmark::State& state) {
  const auto& il = shared_model();
  const auto& sessions = shared_batch();
  std::size_t records = 0;
  for (const auto& s : sessions) records += s.records.size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(il.detect_batch(sessions, 4));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * records));
}
BENCHMARK(BM_DetectBatch4Threads);

/// Harness-timed (steady_clock, warm-up + repeats) measurements emitted to
/// BENCH_micro_pipeline.json for the perf trajectory + CI regression gate.
void emit_harness_bench() {
  const auto& il = shared_model();
  const auto& session = shared_session();
  const auto& sessions = shared_batch();
  const std::size_t session_records = session.records.size();
  std::size_t batch_records = 0;
  for (const auto& s : sessions) batch_records += s.records.size();

  // Spell match throughput (the headline number ci.sh gates on).
  constexpr int kMatchPasses = 50;
  const bench::Timing match_timing = bench::run_timed(
      [&] {
        for (int p = 0; p < kMatchPasses; ++p) {
          for (const auto& rec : session.records) {
            benchmark::DoNotOptimize(il.spell().match(rec.content));
          }
        }
      },
      /*repeats=*/5, /*warmup=*/1);

  // End-to-end serial detection over one session.
  constexpr int kDetectPasses = 10;
  const bench::Timing detect_timing = bench::run_timed(
      [&] {
        for (int p = 0; p < kDetectPasses; ++p) benchmark::DoNotOptimize(il.detect(session));
      },
      /*repeats=*/5, /*warmup=*/1);

  // Sharded batch detection at 1/2/4 workers over a multi-job workload.
  common::Json extra = common::Json::object();
  double batch_1t_ms = 0;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const bench::Timing t = bench::run_timed(
        [&] { benchmark::DoNotOptimize(il.detect_batch(sessions, jobs)); },
        /*repeats=*/3, /*warmup=*/1);
    const std::string tag = "batch_" + std::to_string(jobs) + "t";
    extra[tag + "_ms_min"] = t.min_ms();
    if (jobs == 1) {
      batch_1t_ms = t.min_ms();
    } else if (t.min_ms() > 0) {
      // On a single-core host the multi-thread shards cannot beat serial;
      // the number is still worth recording but must not trip speedup
      // gates, so it lands under an _advisory name those gates skip.
      const bool advisory = std::thread::hardware_concurrency() <= 1;
      extra[tag + (advisory ? "_speedup_advisory" : "_speedup")] = batch_1t_ms / t.min_ms();
    }
  }
  extra["detect_records_per_s"] =
      detect_timing.min_ms() > 0
          ? static_cast<double>(kDetectPasses * session_records) /
                (detect_timing.min_ms() / 1000.0)
          : 0.0;
  extra["batch_records"] = batch_records;
  extra["batch_sessions"] = sessions.size();
  extra["hardware_concurrency"] = static_cast<std::size_t>(std::thread::hardware_concurrency());

  // Ingestion cost: the hardened parser vs the seed parser over the same
  // clean rendered lines (ci.sh gates on ingest_resilient_ratio — hardening
  // must stay cheap on clean input), plus resilient ingest of a corrupted
  // copy of the stream.
  {
    const auto fmt = logparse::make_spark_formatter();
    std::vector<std::vector<std::string>> rendered;
    std::size_t clean_lines = 0;
    for (const auto& s : sessions) {
      std::vector<std::string> lines;
      lines.reserve(s.records.size());
      for (const auto& rec : s.records) lines.push_back(fmt->render(rec));
      clean_lines += lines.size();
      rendered.push_back(std::move(lines));
    }
    // The per-repeat timings are a few ms, so clock drift between two
    // back-to-back run_timed() calls easily fakes a 10% delta. Interleave
    // the plain/resilient repeats instead — both parsers sample the same
    // thermal/frequency conditions — and take the median of the per-pair
    // ratios, which is robust to a single slow outlier in either series.
    constexpr int kIngestPasses = 5;
    const auto run_plain = [&] {
      for (int p = 0; p < kIngestPasses; ++p) {
        for (std::size_t i = 0; i < rendered.size(); ++i) {
          benchmark::DoNotOptimize(
              logparse::parse_session(*fmt, sessions[i].container_id, rendered[i], "spark"));
        }
      }
    };
    const auto run_resilient = [&] {
      for (int p = 0; p < kIngestPasses; ++p) {
        for (std::size_t i = 0; i < rendered.size(); ++i) {
          benchmark::DoNotOptimize(logparse::parse_session_resilient(
              *fmt, sessions[i].container_id, rendered[i], "spark"));
        }
      }
    };
    bench::Timing plain;
    bench::Timing resilient;
    std::vector<double> pair_ratios;
    run_plain();
    run_resilient();  // warmup
    const auto timed_ms = [](const auto& fn) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
    };
    for (int r = 0; r < 15; ++r) {
      // Alternate which parser goes first: within a pair the second runner
      // sees slightly drifted clock/thermal conditions, and alternation
      // makes that bias cancel across pairs instead of accumulating.
      double plain_ms = 0;
      double resilient_ms = 0;
      if (r % 2 == 0) {
        plain_ms = timed_ms(run_plain);
        resilient_ms = timed_ms(run_resilient);
      } else {
        resilient_ms = timed_ms(run_resilient);
        plain_ms = timed_ms(run_plain);
      }
      plain.runs_ms.push_back(plain_ms);
      resilient.runs_ms.push_back(resilient_ms);
      if (resilient_ms > 0) pair_ratios.push_back(plain_ms / resilient_ms);
    }
    std::sort(pair_ratios.begin(), pair_ratios.end());
    simsys::LogStreamCorruptor corruptor(simsys::CorruptionSpec::all(0.02), 7);
    std::vector<std::vector<std::string>> corrupted;
    std::size_t corrupted_lines = 0;
    for (const auto& lines : rendered) {
      auto result = corruptor.corrupt(lines);
      corrupted_lines += result.lines.size();
      corrupted.push_back(std::move(result.lines));
    }
    const bench::Timing chaos = bench::run_timed(
        [&] {
          for (int p = 0; p < kIngestPasses; ++p) {
            for (std::size_t i = 0; i < corrupted.size(); ++i) {
              benchmark::DoNotOptimize(logparse::parse_session_resilient(
                  *fmt, sessions[i].container_id, corrupted[i], "spark"));
            }
          }
        },
        /*repeats=*/3, /*warmup=*/1);
    const auto lines_per_s = [](std::size_t lines, const bench::Timing& t) {
      return t.min_ms() > 0
                 ? static_cast<double>(kIngestPasses * lines) / (t.min_ms() / 1000.0)
                 : 0.0;
    };
    extra["ingest_plain_lines_per_s"] = lines_per_s(clean_lines, plain);
    extra["ingest_resilient_lines_per_s"] = lines_per_s(clean_lines, resilient);
    extra["ingest_corrupted_lines_per_s"] = lines_per_s(corrupted_lines, chaos);
    extra["ingest_resilient_ratio"] =
        pair_ratios.empty() ? 0.0 : pair_ratios[pair_ratios.size() / 2];

    // Zero-copy file ingest: the same sessions written to .log files once,
    // then read end-to-end through the mmap + SWAR + borrowed-record
    // reader, against the pre-arena pipeline it replaced (ifstream getline
    // into strings, then the owning parse). ci.sh gates the ratio of the
    // two — the mmap path must stay decisively ahead.
    {
      namespace fs = std::filesystem;
      const fs::path dir = fs::temp_directory_path() / "intellog_bench_mmap";
      fs::create_directories(dir);
      // Each file carries the session's lines several times over:
      // production log files run to megabytes, and the per-file
      // open/mmap/munmap cost is noise at that size — tiny one-session
      // files would instead make syscall overhead the thing measured.
      constexpr int kFileRepeat = 8;
      const std::size_t file_lines = clean_lines * kFileRepeat;
      std::vector<std::string> paths;
      for (std::size_t i = 0; i < rendered.size(); ++i) {
        const fs::path p = dir / (sessions[i].container_id + ".log");
        std::ofstream out(p);
        for (int r = 0; r < kFileRepeat; ++r) {
          for (const auto& line : rendered[i]) out << line << "\n";
        }
        paths.push_back(p.string());
      }
      const bench::Timing mmap_t = bench::run_timed(
          [&] {
            for (int p = 0; p < kIngestPasses; ++p) {
              for (const auto& path : paths) {
                benchmark::DoNotOptimize(logparse::read_session_file(path, "spark"));
              }
            }
          },
          /*repeats=*/5, /*warmup=*/1);
      const bench::Timing getline_t = bench::run_timed(
          [&] {
            for (int p = 0; p < kIngestPasses; ++p) {
              for (std::size_t i = 0; i < paths.size(); ++i) {
                std::ifstream in(paths[i]);
                std::vector<std::string> lines;
                std::string line;
                while (std::getline(in, line)) lines.push_back(line);
                benchmark::DoNotOptimize(
                    logparse::parse_session(*fmt, sessions[i].container_id, lines, "spark"));
              }
            }
          },
          /*repeats=*/5, /*warmup=*/1);
      extra["ingest_mmap_lines_per_s"] = lines_per_s(file_lines, mmap_t);
      extra["ingest_getline_lines_per_s"] = lines_per_s(file_lines, getline_t);
      for (const auto& path : paths) fs::remove(path);
      std::error_code ec;
      fs::remove(dir, ec);
    }
  }

  // Workflow Observatory cost: evidence construction on the detect path
  // (on by default) and the trace exporters. The evidence ratio uses the
  // same interleaved median-of-pair-ratios scheme as the ingest ratio —
  // ci.sh gates it at <= 1.05 (evidence must stay within 5% of bare
  // detection), so it must not be fooled by clock drift between two
  // back-to-back series.
  {
    constexpr int kEvidencePasses = 3;
    const auto detect_all = [&] {
      for (int p = 0; p < kEvidencePasses; ++p) {
        for (const auto& s : sessions) benchmark::DoNotOptimize(il.detect(s));
      }
    };
    const auto timed_ms = [](const auto& fn) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
    };
    il.set_evidence_enabled(false);
    detect_all();
    il.set_evidence_enabled(true);
    detect_all();  // warmup both modes
    std::vector<double> evidence_ratios;
    for (int r = 0; r < 9; ++r) {
      double on_ms = 0;
      double off_ms = 0;
      if (r % 2 == 0) {
        il.set_evidence_enabled(true);
        on_ms = timed_ms(detect_all);
        il.set_evidence_enabled(false);
        off_ms = timed_ms(detect_all);
      } else {
        il.set_evidence_enabled(false);
        off_ms = timed_ms(detect_all);
        il.set_evidence_enabled(true);
        on_ms = timed_ms(detect_all);
      }
      if (off_ms > 0) evidence_ratios.push_back(on_ms / off_ms);
    }
    il.set_evidence_enabled(true);  // restore the default
    std::sort(evidence_ratios.begin(), evidence_ratios.end());
    extra["evidence_overhead_ratio"] =
        evidence_ratios.empty() ? 0.0 : evidence_ratios[evidence_ratios.size() / 2];

    // Quality Observatory cost: the coverage ledger stamps relaxed-atomic
    // hit counters on the same path. Same interleaved median-of-pair
    // scheme; ci.sh gates it at <= 1.05.
    il.set_coverage_enabled(false);
    detect_all();
    il.set_coverage_enabled(true);
    detect_all();  // warmup both modes
    std::vector<double> coverage_ratios;
    for (int r = 0; r < 9; ++r) {
      double on_ms = 0;
      double off_ms = 0;
      if (r % 2 == 0) {
        il.set_coverage_enabled(true);
        on_ms = timed_ms(detect_all);
        il.set_coverage_enabled(false);
        off_ms = timed_ms(detect_all);
      } else {
        il.set_coverage_enabled(false);
        off_ms = timed_ms(detect_all);
        il.set_coverage_enabled(true);
        on_ms = timed_ms(detect_all);
      }
      if (off_ms > 0) coverage_ratios.push_back(on_ms / off_ms);
    }
    il.set_coverage_enabled(false);  // restore the default
    std::sort(coverage_ratios.begin(), coverage_ratios.end());
    extra["coverage_overhead_ratio"] =
        coverage_ratios.empty() ? 0.0 : coverage_ratios[coverage_ratios.size() / 2];

    // Exporter wall time over the whole batch (one-shot artifact cost, not
    // a per-record tax: exports run after detection, never inside it).
    const bench::Timing chrome = bench::run_timed(
        [&] { benchmark::DoNotOptimize(obs::hwgraph_chrome_trace(il, sessions)); },
        /*repeats=*/3, /*warmup=*/1);
    const bench::Timing otlp = bench::run_timed(
        [&] { benchmark::DoNotOptimize(obs::hwgraph_otlp_json(il, sessions)); },
        /*repeats=*/3, /*warmup=*/1);
    extra["export_chrome_ms_min"] = chrome.min_ms();
    extra["export_otlp_ms_min"] = otlp.min_ms();
    extra["export_chrome_records_per_s"] =
        chrome.min_ms() > 0
            ? static_cast<double>(batch_records) / (chrome.min_ms() / 1000.0)
            : 0.0;
  }

  // Performance Observatory cost: detection under a live sampling profiler
  // (sampler thread + frame annotations + alloc attribution) vs bare
  // detection. Same interleaved median-of-pair scheme; ci.sh gates the
  // enabled ratio at <= 1.10 and the disabled noise floor at ~1.00 (the
  // annotations must stay one relaxed load + branch when no profiler is
  // installed).
  {
    constexpr int kProfPasses = 3;
    const auto detect_all = [&] {
      for (int p = 0; p < kProfPasses; ++p) {
        for (const auto& s : sessions) benchmark::DoNotOptimize(il.detect(s));
      }
    };
    const auto timed_ms = [](const auto& fn) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
    };
    const obs::ProfilerOptions prof_opts;  // defaults: 1ms period, allocs on
    detect_all();
    {
      obs::Profiler warm(prof_opts);
      detect_all();  // warmup both modes
    }
    // min(on)/min(off) over order-alternated interleaved pairs: the minimum
    // of repeated runs is the least-noise estimate of true cost (scheduler
    // and cache interference are strictly additive), so the ratio of minima
    // isolates the profiler's own overhead from machine noise that a
    // median-of-pair-ratios estimator still lets through on busy hosts.
    std::vector<double> on_runs;
    std::vector<double> off_runs;
    for (int r = 0; r < 9; ++r) {
      if (r % 2 == 0) {
        {
          obs::Profiler prof(prof_opts);
          on_runs.push_back(timed_ms(detect_all));
        }
        off_runs.push_back(timed_ms(detect_all));
      } else {
        off_runs.push_back(timed_ms(detect_all));
        {
          obs::Profiler prof(prof_opts);
          on_runs.push_back(timed_ms(detect_all));
        }
      }
    }
    const auto min_of = [](const std::vector<double>& v) {
      return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
    };
    const double min_off = min_of(off_runs);
    extra["profiler_overhead_ratio"] = min_off > 0 ? min_of(on_runs) / min_off : 0.0;

    // Noise floor: the same estimator over two sets of bare runs (slot A /
    // slot B, order-alternated). Should straddle 1.00; a drift here means
    // the ratio gate above is measuring the machine, not the profiler.
    std::vector<double> bare_a;
    std::vector<double> bare_b;
    for (int r = 0; r < 9; ++r) {
      if (r % 2 == 0) {
        bare_a.push_back(timed_ms(detect_all));
        bare_b.push_back(timed_ms(detect_all));
      } else {
        bare_b.push_back(timed_ms(detect_all));
        bare_a.push_back(timed_ms(detect_all));
      }
    }
    const double min_b = min_of(bare_b);
    extra["profiler_disabled_ratio"] = min_b > 0 ? min_of(bare_a) / min_b : 0.0;

    // Top-N hotspot attribution over one fully profiled batch: where do the
    // detect-path cycles and allocations actually go? compare_bench.py
    // ignores non-numeric extras, so the nested array is report-only.
    {
      obs::ProfilerOptions attr_opts;
      attr_opts.sample_period_us = 100;
      obs::Profiler prof(attr_opts);
      detect_all();
      prof.stop();
      extra["profiler_samples"] = static_cast<std::int64_t>(prof.total_samples());
      extra["profiler_alloc_bytes"] = static_cast<std::int64_t>(prof.total_alloc_bytes());
      extra["profiler_allocs"] = static_cast<std::int64_t>(prof.total_allocs());
      // Allocation discipline of the arena-backed detect path, gated in
      // ci.sh: heap allocations per record across the fully profiled batch.
      extra["detect_allocs_per_record"] =
          static_cast<double>(prof.total_allocs()) /
          static_cast<double>(kProfPasses * batch_records);
      // High-water mark of the per-shard detect arenas over everything run
      // so far (report-only context for the alloc gate).
      extra["arena_bytes_peak"] = static_cast<std::int64_t>(core::detect_arena_bytes_peak());
      common::Json hotspots = common::Json::array();
      for (const obs::HotFrame& h : prof.hot_frames(10)) {
        common::Json row = common::Json::object();
        row["path"] = h.path;
        row["self_samples"] = static_cast<std::int64_t>(h.self_samples);
        row["self_pct"] = h.self_pct;
        row["alloc_bytes"] = static_cast<std::int64_t>(h.alloc_bytes);
        row["allocs"] = static_cast<std::int64_t>(h.allocs);
        hotspots.push_back(std::move(row));
      }
      extra["profiler_hotspots"] = std::move(hotspots);
    }
  }

  // Flight-recorder cost: batch detection with the always-on event journal
  // recording (shard begin/end + any other instrumented sites firing) vs
  // with the recorder disabled. Same min-over-order-alternated-interleaved
  // scheme as the profiler ratio; ci.sh gates the enabled ratio at <= 1.05
  // and the disabled noise floor at ~1.00 — the disabled FLIGHT_EVENT
  // macro must stay one relaxed load + branch, invisible at this scale.
  {
    constexpr int kFlightPasses = 3;
    const auto detect_all = [&] {
      for (int p = 0; p < kFlightPasses; ++p) {
        benchmark::DoNotOptimize(il.detect_batch(sessions, 2));
      }
    };
    const auto timed_ms = [](const auto& fn) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
    };
    const auto min_of = [](const std::vector<double>& v) {
      return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
    };
    detect_all();  // warmup (recorder currently off)
    obs::flight::flight_enable();
    detect_all();  // warmup the enabled path (ring registration etc.)
    obs::flight::flight_disable();

    std::vector<double> on_runs;
    std::vector<double> off_runs;
    for (int r = 0; r < 9; ++r) {
      const auto run_on = [&] {
        obs::flight::flight_enable();
        on_runs.push_back(timed_ms(detect_all));
        obs::flight::flight_disable();
      };
      const auto run_off = [&] { off_runs.push_back(timed_ms(detect_all)); };
      if (r % 2 == 0) {
        run_on();
        run_off();
      } else {
        run_off();
        run_on();
      }
    }
    const double min_off = min_of(off_runs);
    extra["flight_overhead_ratio"] = min_off > 0 ? min_of(on_runs) / min_off : 0.0;

    // Noise floor: the identical estimator over two sets of recorder-off
    // runs. Gated to straddle 1.00 in ci.sh — this is the assertion that
    // the disabled FLIGHT_EVENT path costs one relaxed atomic load.
    std::vector<double> bare_a;
    std::vector<double> bare_b;
    for (int r = 0; r < 9; ++r) {
      if (r % 2 == 0) {
        bare_a.push_back(timed_ms(detect_all));
        bare_b.push_back(timed_ms(detect_all));
      } else {
        bare_b.push_back(timed_ms(detect_all));
        bare_a.push_back(timed_ms(detect_all));
      }
    }
    const double min_b = min_of(bare_b);
    extra["flight_disabled_ratio"] = min_b > 0 ? min_of(bare_a) / min_b : 0.0;
  }

  // Telemetry-plane cost: detection while a 10 Hz client scrapes /metrics
  // off the embedded HTTP admin server, vs bare detection. Scrape work
  // (registry serialization + socket IO) runs on the server's worker
  // threads, so the gated ratio (<= 1.05 in ci.sh) pins the contract that
  // a live scraper taxes the detect path no more than scheduling noise.
  // Same min-over-order-alternated-rounds estimator as the profiler gate.
  {
    constexpr int kScrapePasses = 3;
    const auto detect_all = [&] {
      for (int p = 0; p < kScrapePasses; ++p) {
        for (const auto& s : sessions) benchmark::DoNotOptimize(il.detect(s));
      }
    };
    const auto timed_ms = [](const auto& fn) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
    };
    // The registry stays installed across both arms (constant cost); a
    // representative family mix makes each scrape serialize real series,
    // including an exemplared e2e-latency histogram per tenant.
    obs::MetricsRegistry reg;
    obs::set_registry(&reg);
    reg.describe("intellog_serve_e2e_latency_ms", "spool arrival to report write");
    for (const char* tenant : {"acme", "globex", "initech"}) {
      const obs::Labels labels{{"tenant", tenant}};
      reg.counter("intellog_serve_records_total", labels).add(12345);
      obs::Histogram& h = reg.histogram("intellog_serve_e2e_latency_ms", labels);
      for (int i = 0; i < 64; ++i) {
        h.observe(0.05 * static_cast<double>(i + 1), "container_bench");
      }
    }
    obs::http::StatusBoard board;
    obs::http::HttpServer server;
    obs::http::mount_admin_plane(server, board);
    server.start();
    const std::uint16_t port = server.port();
    const auto run_scraped = [&] {
      std::atomic<bool> stop{false};
      std::thread scraper([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          benchmark::DoNotOptimize(
              obs::http::http_get("127.0.0.1", port, "/metrics", /*timeout_ms=*/1000));
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      });
      const double ms = timed_ms(detect_all);
      stop.store(true, std::memory_order_relaxed);
      scraper.join();
      return ms;
    };
    detect_all();         // warmup bare
    (void)run_scraped();  // warmup scraped (server accept path, scraper thread)
    std::vector<double> on_runs;
    std::vector<double> off_runs;
    for (int r = 0; r < 9; ++r) {
      if (r % 2 == 0) {
        on_runs.push_back(run_scraped());
        off_runs.push_back(timed_ms(detect_all));
      } else {
        off_runs.push_back(timed_ms(detect_all));
        on_runs.push_back(run_scraped());
      }
    }
    server.stop();
    obs::set_registry(nullptr);
    const auto min_of = [](const std::vector<double>& v) {
      return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
    };
    const double min_off = min_of(off_runs);
    extra["scrape_overhead_ratio"] = min_off > 0 ? min_of(on_runs) / min_off : 0.0;
  }

  bench::emit_bench_json("micro_pipeline", match_timing,
                         static_cast<double>(kMatchPasses * session_records),
                         std::move(extra));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_harness_bench();
  return 0;
}
