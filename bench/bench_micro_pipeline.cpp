// Microbenchmarks (google-benchmark) for the pipeline's hot paths:
// Spell key matching, POS tagging + extraction, Intel-Message
// instantiation, and end-to-end session detection. These are not paper
// tables; they document the throughput envelope of the implementation.
#include <benchmark/benchmark.h>

#include "bench/harness.hpp"
#include "core/extraction.hpp"
#include "obs/metrics.hpp"

using namespace intellog;

namespace {

const core::IntelLog& shared_model() {
  static const core::IntelLog il = bench::train_model("spark", 10, 7);
  return il;
}

const logparse::Session& shared_session() {
  static const logparse::Session session = [] {
    simsys::ClusterSpec cluster;
    simsys::WorkloadGenerator gen("spark", 17);
    static simsys::JobResult job = simsys::run_job(gen.detection_job(2), cluster);
    return job.sessions.front();
  }();
  return session;
}

void BM_SpellMatch(benchmark::State& state) {
  const auto& il = shared_model();
  const auto& session = shared_session();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& rec = session.records[i++ % session.records.size()];
    benchmark::DoNotOptimize(il.spell().match(rec.content));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpellMatch);

void BM_PosTagMessage(benchmark::State& state) {
  const nlp::PosTagger tagger;
  const std::string msg =
      "Finished task 1.0 in stage 0.0 (TID 3). 2578 bytes result sent to driver";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tagger.tag_message(msg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PosTagMessage);

void BM_ExtractIntelKey(benchmark::State& state) {
  const core::InfoExtractor extractor;
  logparse::LogKey key;
  key.id = 0;
  key.tokens = {"fetcher", "#", "*", "about", "to", "shuffle", "output", "of", "map", "*"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        extractor.extract(key, "fetcher # 1 about to shuffle output of map attempt_01"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ExtractIntelKey);

void BM_DetectSession(benchmark::State& state) {
  const auto& il = shared_model();
  const auto& session = shared_session();
  for (auto _ : state) {
    benchmark::DoNotOptimize(il.detect(session));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * session.records.size()));
}
BENCHMARK(BM_DetectSession);

// Same workload as BM_DetectSession but with a metrics registry installed:
// the delta against BM_DetectSession is the full (enabled) metrics cost;
// BM_DetectSession itself runs with the registry null, i.e. the no-op path.
void BM_DetectSessionMetricsEnabled(benchmark::State& state) {
  const auto& il = shared_model();
  const auto& session = shared_session();
  obs::MetricsRegistry reg;
  obs::set_registry(&reg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(il.detect(session));
  }
  obs::set_registry(nullptr);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * session.records.size()));
}
BENCHMARK(BM_DetectSessionMetricsEnabled);

void BM_TrainSmallCorpus(benchmark::State& state) {
  const auto sessions = bench::training_corpus("spark", 3, 5);
  std::size_t records = 0;
  for (const auto& s : sessions) records += s.records.size();
  for (auto _ : state) {
    core::IntelLog il;
    il.train(sessions);
    benchmark::DoNotOptimize(il.trained());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * records));
}
BENCHMARK(BM_TrainSmallCorpus);

}  // namespace

BENCHMARK_MAIN();
