// Figure 9: the S³ graph of Spark built by the Stitch baseline.
//
// Paper: {HOST / IP ADDR} -> {EXECUTOR / CONTAINER} -> {STAGE, TASK} ->
// {TID}, with {BROADCAST} isolated. Stitch sees only identifiers (plus
// localities treated as HOST identifiers): no semantics attach to the
// nodes — the limitation the HW-graph addresses.
#include "baselines/stitch.hpp"
#include "bench/harness.hpp"

using namespace intellog;

int main() {
  bench::print_header("Figure 9: Stitch S3 graph of Spark");

  // One large Spark job (identifier spaces are job-scoped, as in Stitch).
  simsys::ClusterSpec cluster;
  simsys::JobSpec spec;
  spec.system = "spark";
  spec.name = "WordCount";
  spec.input_gb = 30;
  spec.container_cores = 8;
  spec.container_memory_mb = spec.required_memory_mb() * 2;
  spec.seed = 4242;
  const simsys::JobResult job = simsys::run_job(spec, cluster);

  // A trained model supplies the Intel Messages whose identifiers Stitch
  // consumes.
  const core::IntelLog il = bench::train_model("spark", 25, 99);

  baselines::Stitch stitch;
  std::size_t observations = 0;
  for (const auto& session : job.sessions) {
    for (const auto& msg : il.to_intel_messages(session)) {
      std::vector<core::IdentifierValue> ids = msg.identifiers;
      for (const auto& loc : msg.localities) {
        // Stitch does not distinguish localities: hosts are identifiers too.
        if (loc.find('/') == std::string::npos) ids.push_back({"HOST", loc});
      }
      if (ids.size() < 1) continue;
      stitch.observe(ids);
      ++observations;
    }
  }

  std::cout << "observations: " << observations << "\n";
  std::cout << "identifier types: ";
  for (const auto& t : stitch.types()) std::cout << t << " ";
  std::cout << "\n\nS3 graph:\n  " << stitch.render() << "\n";

  std::cout << "\npairwise relations:\n";
  const auto& types = stitch.types();
  for (auto a = types.begin(); a != types.end(); ++a) {
    for (auto b = std::next(a); b != types.end(); ++b) {
      const auto rel = stitch.relation(*a, *b);
      if (rel == baselines::IdRelation::Empty) continue;
      std::cout << "  " << *a << " - " << *b << " : " << to_string(rel) << "\n";
    }
  }

  std::cout << "\nPaper (Fig. 9): {HOST / IP ADDR} -> {EXECUTOR / CONTAINER} ->\n"
               "{STAGE, TASK} -> {TID};  {BROADCAST} isolated. Note the contrast with\n"
               "Fig. 8: the S3 graph names identifier types only — no events, no\n"
               "operations, no semantics.\n";
  return 0;
}
