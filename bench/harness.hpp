// Shared experiment harness for the paper-reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation (§6). The harness provides the §6.1 setup: the 27-node
// cluster, the workload generator, training corpora from tuned runs, and
// the Table-6 detection workload (5 configuration sets x 6 jobs, half with
// injected problems).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/intellog.hpp"
#include "obs/metrics.hpp"
#include "simsys/eval_workload.hpp"
#include "simsys/workload.hpp"

namespace intellog::bench {

inline const std::vector<std::string>& systems() {
  static const std::vector<std::string> kSystems = {"spark", "mapreduce", "tez"};
  return kSystems;
}

/// Fault-free training sessions from `jobs` tuned jobs (§6.1).
inline std::vector<logparse::Session> training_corpus(const std::string& system, int jobs,
                                                      std::uint64_t seed) {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen(system, seed);
  std::vector<logparse::Session> out;
  for (int i = 0; i < jobs; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) out.push_back(std::move(s));
  }
  return out;
}

/// Trains an IntelLog model on `jobs` tuned jobs.
inline core::IntelLog train_model(const std::string& system, int jobs, std::uint64_t seed) {
  core::IntelLog il;
  il.train(training_corpus(system, jobs, seed));
  return il;
}

/// One detection-phase job with its ground truth (lives in simsys so that
/// loggen --table6 and the scoring tests see the identical workload).
using DetectionJob = simsys::DetectionJob;

/// The Table-6 workload: per system, 5 configuration sets; per set, 3 jobs
/// with injected problems (abort / network / node) and 3 without. Two of
/// the fault-free jobs overall run with borderline memory, reproducing the
/// "(P/B)" unexpected-problem detections.
inline std::vector<DetectionJob> detection_workload(const std::string& system,
                                                    std::uint64_t seed) {
  return simsys::detection_workload(system, seed);
}

/// True if any session of the job raises an IntelLog anomaly report.
inline bool job_flagged(const core::IntelLog& il, const simsys::JobResult& job) {
  for (const auto& s : job.sessions) {
    if (il.detect(s).anomalous()) return true;
  }
  return false;
}

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

// --- timing + BENCH_*.json emission ----------------------------------------
//
// steady_clock timing with a warm-up pass and repeated measured runs;
// min/median are the reported statistics (a single wall-clock run is too
// noisy to chart a perf trajectory from).

struct Timing {
  std::vector<double> runs_ms;  ///< measured runs, in recorded order

  double min_ms() const {
    return runs_ms.empty() ? 0.0 : *std::min_element(runs_ms.begin(), runs_ms.end());
  }
  double median_ms() const {
    if (runs_ms.empty()) return 0.0;
    std::vector<double> sorted = runs_ms;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    return n % 2 ? sorted[n / 2] : (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0;
  }
};

/// Runs `fn` `warmup` times unmeasured, then `repeats` measured times.
template <typename F>
Timing run_timed(F&& fn, int repeats = 5, int warmup = 1) {
  Timing timing;
  for (int i = 0; i < warmup; ++i) fn();
  timing.runs_ms.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    timing.runs_ms.push_back(
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count());
  }
  return timing;
}

/// Writes `BENCH_<name>.json` (into $INTELLOG_BENCH_DIR, default cwd) with
/// wall-time min/median, per-run samples, throughput, and — when a metrics
/// registry is installed — the full metric snapshot. Returns the path.
inline std::string emit_bench_json(const std::string& name, const Timing& timing,
                                   double items_per_run,
                                   common::Json extra = common::Json::object()) {
  common::Json out = common::Json::object();
  out["bench"] = name;
  out["wall_ms_min"] = timing.min_ms();
  out["wall_ms_median"] = timing.median_ms();
  common::Json runs = common::Json::array();
  for (const double ms : timing.runs_ms) runs.push_back(ms);
  out["runs_ms"] = std::move(runs);
  out["items_per_run"] = items_per_run;
  out["throughput_per_s"] =
      timing.min_ms() > 0 ? items_per_run / (timing.min_ms() / 1000.0) : 0.0;
  if (extra.is_object() && extra.size() > 0) out["extra"] = std::move(extra);
  if (obs::MetricsRegistry* reg = obs::registry()) out["metrics"] = reg->to_json();

  const char* dir = std::getenv("INTELLOG_BENCH_DIR");
  const std::string path = (dir ? std::string(dir) + "/" : std::string()) +
                           "BENCH_" + name + ".json";
  std::ofstream f(path);
  f << out.dump(2) << "\n";
  std::cout << "[bench] " << name << ": min " << timing.min_ms() << " ms, median "
            << timing.median_ms() << " ms, "
            << static_cast<std::uint64_t>(out["throughput_per_s"].as_double())
            << " items/s -> " << path << "\n";
  return path;
}

}  // namespace intellog::bench
