// Table 5: log and HW-graph statistics per system.
//
// Paper: Spark sessions avg 347 msgs, 45 groups (10 critical), subroutine
// length max/avg-all/avg-crit 10/1.2/2.3; MapReduce 137, 35/13, 19/1.7/2.8;
// Tez 304, 59/27, 14/2.7/4.6. The claim under test: entity groups are
// 5-10x (critical: 10-50x) fewer than the session length, giving users a
// compressed view of the workflow.
#include <algorithm>

#include "bench/harness.hpp"
#include "common/table.hpp"

using namespace intellog;

int main() {
  bench::print_header("Table 5: log and HW-graph statistics");
  common::TextTable table({"Framework", "avg session length", "groups all / crit",
                           "subroutine len max / avg all / avg crit"});
  for (const auto& system : bench::systems()) {
    const auto sessions = bench::training_corpus(system, 40, 7);
    core::IntelLog il;
    il.train(sessions);

    // Perf trajectory: full training-pipeline wall time on the same corpus.
    std::size_t corpus_records = 0;
    for (const auto& s : sessions) corpus_records += s.records.size();
    const bench::Timing timing = bench::run_timed(
        [&] {
          core::IntelLog fresh;
          fresh.train(sessions);
        },
        /*repeats=*/3, /*warmup=*/1);
    common::Json extra = common::Json::object();
    extra["system"] = system;
    extra["sessions"] = sessions.size();
    bench::emit_bench_json("table5_train_" + system, timing,
                           static_cast<double>(corpus_records), std::move(extra));

    std::size_t total_records = 0;
    for (const auto& s : sessions) total_records += s.records.size();
    const double avg_len = static_cast<double>(total_records) / sessions.size();

    const auto& graph = il.hw_graph();
    const std::size_t all_groups = graph.groups().size();
    const std::size_t crit_groups = graph.critical_group_count();

    std::size_t max_len = 0;
    std::size_t sum_all = 0, n_all = 0, sum_crit = 0, n_crit = 0;
    for (const auto& [name, node] : graph.groups()) {
      (void)name;
      for (const auto& [sig, sub] : node.subroutines.subroutines()) {
        (void)sig;
        max_len = std::max(max_len, sub.length());
        sum_all += sub.length();
        ++n_all;
        if (node.is_critical()) {
          sum_crit += sub.length();
          ++n_crit;
        }
      }
    }
    const auto avg = [](std::size_t sum, std::size_t n) {
      return n == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(n);
    };
    table.add_row({system, common::fmt_double(avg_len, 0),
                   std::to_string(all_groups) + " / " + std::to_string(crit_groups),
                   std::to_string(max_len) + " / " + common::fmt_double(avg(sum_all, n_all), 1) +
                       " / " + common::fmt_double(avg(sum_crit, n_crit), 1)});
  }
  table.print(std::cout);
  std::cout << "\nPaper (Table 5): Spark 347, 45/10, 10/1.2/2.3; MapReduce 137, 35/13,\n"
               "19/1.7/2.8; Tez 304, 59/27, 14/2.7/4.6. Shape expectation: group counts\n"
               "5-10x below session length; critical subroutines longer than average.\n";
  return 0;
}
