// Table 8: anomaly-detection comparison — IntelLog vs DeepLog vs
// LogCluster on the same detection workload.
//
// Paper: IntelLog 87.23% precision / 91.11% recall / 89.13% F;
// DeepLog 8.81% / 100% / 16.19%; LogCluster 73.08% / N/A / N/A.
//
// Shape under test (§6.4): DeepLog keeps perfect recall but its precision
// collapses on data-analytics logs — parallel task/fetcher interleavings
// make the next log key unpredictable, so it alarms on nearly every
// session. LogCluster lands between: most reported sessions relate to
// anomalies, but it cannot guarantee coverage (recall not measurable).
#include "baselines/deeplog.hpp"
#include "baselines/logcluster.hpp"
#include "bench/harness.hpp"
#include "common/table.hpp"

using namespace intellog;

namespace {

std::vector<int> key_sequence(const core::IntelLog& il, const logparse::Session& s) {
  std::vector<int> seq;
  seq.reserve(s.records.size());
  for (const auto& rec : s.records) seq.push_back(il.spell().match(rec.content));
  return seq;
}

struct ToolScore {
  std::size_t tp = 0, alarms = 0;     // session-level alarms
  std::size_t problems_hit = 0;       // problem-level recall numerator
};

}  // namespace

int main() {
  bench::print_header("Table 8: IntelLog vs DeepLog vs LogCluster");

  std::size_t il_detected = 0, il_fp = 0, injected_total = 0;
  ToolScore deeplog_score, logcluster_score;

  for (const auto& system : bench::systems()) {
    const auto training = bench::training_corpus(system, 25, 555);
    core::IntelLog il;
    il.train(training);

    std::vector<std::vector<int>> train_seqs;
    train_seqs.reserve(training.size());
    for (const auto& s : training) train_seqs.push_back(key_sequence(il, s));

    baselines::DeepLog::Config dl_cfg;
    dl_cfg.hidden = 32;
    dl_cfg.window = 10;  // DeepLog's published defaults: h = 10, g = 9
    dl_cfg.top_g = 9;
    dl_cfg.epochs = 1;
    dl_cfg.max_windows = 6000;  // equal training budget across systems
    baselines::DeepLog deeplog(dl_cfg);
    deeplog.train(train_seqs);

    baselines::LogCluster logcluster;
    logcluster.train(train_seqs);

    const auto jobs = bench::detection_workload(system, 777);
    for (const auto& dj : jobs) {
      const auto affected = [&](const logparse::Session& s) {
        return dj.result.affected_containers.count(s.container_id) > 0 ||
               dj.result.perf_affected_containers.count(s.container_id) > 0;
      };
      // IntelLog: job-level verdicts (Table 6 arithmetic).
      const bool il_flagged = bench::job_flagged(il, dj.result);
      if (dj.injected) {
        injected_total++;
        il_detected += il_flagged;
      } else if (!dj.borderline) {
        il_fp += il_flagged;
      }
      // DeepLog / LogCluster: session-level alarms.
      bool dl_hit_problem = false, lc_hit_problem = false;
      for (const auto& s : dj.result.sessions) {
        const auto seq = key_sequence(il, s);
        const bool truly = affected(s);
        if (deeplog.is_anomalous(seq)) {
          deeplog_score.alarms++;
          deeplog_score.tp += truly;
          dl_hit_problem |= truly;
        }
        if (logcluster.is_new_pattern(seq)) {
          logcluster_score.alarms++;
          logcluster_score.tp += truly;
          lc_hit_problem |= truly;
        }
      }
      if (dj.injected && dl_hit_problem) deeplog_score.problems_hit++;
      if (dj.injected && lc_hit_problem) logcluster_score.problems_hit++;
    }
  }

  const auto pct = [](double x) { return common::fmt_percent(x, 2); };
  const double il_p =
      static_cast<double>(il_detected) / static_cast<double>(il_detected + il_fp);
  const double il_r = static_cast<double>(il_detected) / static_cast<double>(injected_total);
  const double il_f = 2 * il_p * il_r / (il_p + il_r);
  const double dl_p = deeplog_score.alarms == 0
                          ? 0.0
                          : static_cast<double>(deeplog_score.tp) /
                                static_cast<double>(deeplog_score.alarms);
  const double dl_r = static_cast<double>(deeplog_score.problems_hit) /
                      static_cast<double>(injected_total);
  const double dl_f = dl_p + dl_r == 0 ? 0.0 : 2 * dl_p * dl_r / (dl_p + dl_r);
  const double lc_p = logcluster_score.alarms == 0
                          ? 0.0
                          : static_cast<double>(logcluster_score.tp) /
                                static_cast<double>(logcluster_score.alarms);

  common::TextTable table({"tool", "precision", "recall", "F-measure"});
  table.add_row({"IntelLog", pct(il_p), pct(il_r), pct(il_f)});
  table.add_row({"DeepLog", pct(dl_p), pct(dl_r), pct(dl_f)});
  table.add_row({"LogCluster", pct(lc_p), "N/A", "N/A"});
  table.print(std::cout);

  std::cout << "\n(DeepLog/LogCluster precision is over session-level alarms; recall is\n"
               "over the " << injected_total << " injected problems. LogCluster surfaces "
               "representative logs for\nexamination, so its recall is not measurable — as in "
               "the paper.)\n";
  std::cout << "\nPaper (Table 8): IntelLog 87.23% / 91.11% / 89.13%; DeepLog 8.81% /\n"
               "100.00% / 16.19%; LogCluster 73.08% / N/A / N/A.\n";
  return 0;
}
