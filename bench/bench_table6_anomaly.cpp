// Table 6: anomaly-detection accuracy of IntelLog per system.
//
// Per system: 30 detection jobs from 5 configuration sets — 15 with an
// injected problem (session abortion / network failure / node failure, one
// of each per set) and 15 without; two of the clean jobs run with
// borderline memory, reproducing the paper's "(P/B)" unexpected-problem
// detections. Paper: Spark 13/2/2/(2), MapReduce 15/1/0/(0),
// Tez 13/3/2/(3); overall 41/45 detected, 87.23% precision, 91.11% recall.
#include <algorithm>
#include <thread>

#include "bench/harness.hpp"
#include "common/table.hpp"

using namespace intellog;

int main() {
  bench::print_header("Table 6: anomaly-detection accuracy (IntelLog)");
  common::TextTable table({"Framework", "sessions/job", "session length", "D / FP / FN / (P,B)"});

  std::size_t detected_all = 0, fp_all = 0, injected_all = 0;
  for (const auto& system : bench::systems()) {
    const core::IntelLog il = bench::train_model(system, 30, 2024);
    const auto jobs = bench::detection_workload(system, 3030);

    std::size_t detected = 0, fp = 0, fn = 0, pb = 0;
    std::size_t min_sessions = SIZE_MAX, max_sessions = 0;
    std::size_t min_len = SIZE_MAX, max_len = 0;
    for (const auto& dj : jobs) {
      min_sessions = std::min(min_sessions, dj.result.sessions.size());
      max_sessions = std::max(max_sessions, dj.result.sessions.size());
      for (const auto& s : dj.result.sessions) {
        min_len = std::min(min_len, s.records.size());
        max_len = std::max(max_len, s.records.size());
      }
      const bool flagged = bench::job_flagged(il, dj.result);
      if (dj.injected) {
        (flagged ? detected : fn)++;
      } else if (dj.borderline) {
        pb += flagged;  // a real (performance) problem, not a false alarm
      } else {
        fp += flagged;
      }
    }
    detected_all += detected;
    fp_all += fp;
    injected_all += 15;

    // Perf trajectory: end-to-end detection throughput over the Table-6
    // workload (records/s), min/median over repeated passes.
    std::size_t workload_records = 0;
    for (const auto& dj : jobs) {
      for (const auto& s : dj.result.sessions) workload_records += s.records.size();
    }
    const bench::Timing timing = bench::run_timed(
        [&] {
          for (const auto& dj : jobs) {
            for (const auto& s : dj.result.sessions) (void)il.detect(s);
          }
        },
        /*repeats=*/3, /*warmup=*/1);
    common::Json extra = common::Json::object();
    extra["system"] = system;
    extra["sessions"] = [&] {
      std::size_t n = 0;
      for (const auto& dj : jobs) n += dj.result.sessions.size();
      return n;
    }();
    bench::emit_bench_json("table6_detect_" + system, timing,
                           static_cast<double>(workload_records), std::move(extra));

    // Batch-detect scaling over the same workload: all sessions flattened
    // into one detect_batch call at 1/2/4 workers. Speedups are whatever
    // the host delivers (see extra.hardware_concurrency — a 1-core runner
    // cannot scale, by construction).
    std::vector<logparse::Session> flat;
    for (const auto& dj : jobs) {
      for (const auto& s : dj.result.sessions) flat.push_back(s);
    }
    common::Json batch_extra = common::Json::object();
    batch_extra["system"] = system;
    batch_extra["sessions"] = flat.size();
    batch_extra["hardware_concurrency"] =
        static_cast<std::size_t>(std::thread::hardware_concurrency());
    bench::Timing batch_1t;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      const bench::Timing t = bench::run_timed(
          [&] { (void)il.detect_batch(flat, workers); }, /*repeats=*/3, /*warmup=*/1);
      const std::string tag = "batch_" + std::to_string(workers) + "t";
      batch_extra[tag + "_ms_min"] = t.min_ms();
      if (workers == 1) {
        batch_1t = t;
      } else if (t.min_ms() > 0) {
        batch_extra[tag + "_speedup"] = batch_1t.min_ms() / t.min_ms();
      }
    }
    bench::emit_bench_json("table6_batch_" + system, batch_1t,
                           static_cast<double>(workload_records), std::move(batch_extra));
    table.add_row({system,
                   std::to_string(min_sessions) + "~" + std::to_string(max_sessions),
                   std::to_string(min_len) + "~" + std::to_string(max_len),
                   std::to_string(detected) + " / " + std::to_string(fp) + " / " +
                       std::to_string(fn) + " / (" + std::to_string(pb) + ")"});
  }
  table.print(std::cout);

  const double precision = static_cast<double>(detected_all) /
                           static_cast<double>(detected_all + fp_all);
  const double recall =
      static_cast<double>(detected_all) / static_cast<double>(injected_all);
  std::cout << "\noverall: detected " << detected_all << " / " << injected_all
            << " injected problems, precision " << common::fmt_percent(precision, 2)
            << ", recall " << common::fmt_percent(recall, 2) << "\n";
  std::cout << "\nPaper (Table 6): Spark 4~26 sessions, len 20~1812, 13/2/2/(2);\n"
               "MapReduce 16~257, 67~2147, 15/1/0/(0); Tez 2~36, 107~486, 13/3/2/(3);\n"
               "overall 41/45, precision 87.23%, recall 91.11%.\n";
  return 0;
}
