// Table 4: accuracy of information extraction per system.
//
// The paper scores Intel Keys by manual comparison against the source
// code's logging statements. Here the simulator *is* the source code: each
// line carries a ground-truth annotation (template id, field categories,
// entity phrases, operation predicates), so the comparison is exact. Paper
// numbers for reference:
//   Spark:     60 keys, entities 63/3/0, ids 19/1/1, values 13/1/0,
//              locations 9/0/1, operations 63/5
//   MapReduce: 44 keys, entities 43/9/2, ids 11/1/1, values 41/1/1,
//              locations 1/0/0, operations 45/5
//   Tez:      115 keys, entities 101/2/3, ids 13/0/3, values 43/3/0,
//              locations 3/0/0, operations 97/7
#include <map>
#include <set>

#include "bench/harness.hpp"
#include "common/table.hpp"

using namespace intellog;

namespace {

struct CategoryScore {
  std::size_t total = 0, fp = 0, fn = 0;
  std::string cell() const {
    return std::to_string(total) + " / " + std::to_string(fp) + " / " + std::to_string(fn);
  }
};

struct SystemScore {
  std::size_t consumed = 0;
  std::size_t intel_keys = 0;
  CategoryScore entities, identifiers, values, locations;
  std::size_t ops_total = 0, ops_missed = 0;
};

SystemScore evaluate(const std::string& system) {
  const auto sessions = bench::training_corpus(system, 40, 42);
  core::IntelLog il;
  il.train(sessions);

  SystemScore score;
  score.intel_keys = il.intel_keys().size();

  // Representative ground truth per log key: the first training record that
  // matches it (the same record extraction sampled).
  std::map<int, const logparse::GroundTruth*> truth_of;
  for (const auto& s : sessions) {
    score.consumed += s.records.size();
    for (const auto& rec : s.records) {
      const int id = il.spell().match(rec.content);
      if (id < 0 || !rec.truth) continue;
      truth_of.emplace(id, &*rec.truth);
    }
  }

  // --- entities: unique lemmatized phrases per system ----------------------
  std::set<std::string> truth_entities, extracted_entities;
  for (const auto& [id, ik] : il.intel_keys()) {
    extracted_entities.insert(ik.entities.begin(), ik.entities.end());
    const auto it = truth_of.find(id);
    if (it != truth_of.end()) {
      truth_entities.insert(it->second->entities.begin(), it->second->entities.end());
    }
  }
  score.entities.total = truth_entities.size();
  for (const auto& e : extracted_entities) score.entities.fp += !truth_entities.count(e);
  for (const auto& e : truth_entities) score.entities.fn += !extracted_entities.count(e);

  // --- variable fields: per-key category counts -----------------------------
  using logparse::FieldCategory;
  const auto count_truth = [](const logparse::GroundTruth& t, FieldCategory c) {
    std::size_t n = 0;
    for (const auto& f : t.fields) n += f.category == c;
    return n;
  };
  const auto count_extracted = [](const core::IntelKey& ik, FieldCategory c) {
    std::size_t n = 0;
    for (const auto& f : ik.fields) n += f.category == c;
    return n;
  };
  const auto score_category = [&](FieldCategory c, CategoryScore& out) {
    for (const auto& [id, ik] : il.intel_keys()) {
      const auto it = truth_of.find(id);
      if (it == truth_of.end()) continue;
      const std::size_t t = count_truth(*it->second, c);
      const std::size_t e = count_extracted(ik, c);
      out.total += t;
      out.fp += e > t ? e - t : 0;
      out.fn += t > e ? t - e : 0;
    }
  };
  score_category(FieldCategory::Identifier, score.identifiers);
  score_category(FieldCategory::Value, score.values);
  score_category(FieldCategory::Locality, score.locations);

  // --- operations: predicate lemmas; no-false-positive convention (§6.2) ---
  for (const auto& [id, ik] : il.intel_keys()) {
    const auto it = truth_of.find(id);
    if (it == truth_of.end()) continue;
    std::set<std::string> extracted_preds;
    for (const auto& op : ik.operations) extracted_preds.insert(op.predicate);
    for (const auto& pred : it->second->operations) {
      ++score.ops_total;
      score.ops_missed += !extracted_preds.count(pred);
    }
  }
  return score;
}

}  // namespace

int main() {
  bench::print_header("Table 4: information-extraction accuracy (Total / FP / FN)");
  common::TextTable table({"Framework", "Consumed", "Intel Keys", "Entities", "Identifiers",
                           "Values", "Locations", "Operations (T / missed)"});
  for (const auto& system : bench::systems()) {
    const SystemScore s = evaluate(system);
    table.add_row({system, std::to_string(s.consumed), std::to_string(s.intel_keys),
                   s.entities.cell(), s.identifiers.cell(), s.values.cell(),
                   s.locations.cell(),
                   std::to_string(s.ops_total) + " / " + std::to_string(s.ops_missed)});
  }
  table.print(std::cout);
  std::cout << "\nPaper (Table 4): Spark 63/3/0 ids 19/1/1 vals 13/1/0 locs 9/0/1 ops 63/5;\n"
               "MapReduce 43/9/2 ids 11/1/1 vals 41/1/1 locs 1/0/0 ops 45/5;\n"
               "Tez 101/2/3 ids 13/0/3 vals 43/3/0 locs 3/0/0 ops 97/7.\n"
               "Shape expectation: high accuracy everywhere, a handful of FP entities\n"
               "(abbreviations), FN entities only from 4+-word phrases, operations missed\n"
               "only on clause-less sentences.\n";
  return 0;
}
