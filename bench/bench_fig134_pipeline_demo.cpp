// Figures 1, 3 and 4: the information-extraction walkthroughs the paper
// uses to introduce its terminology, regenerated from the implementation.
//
//   Fig. 1  the MapReduce fetcher log snippet -> log keys with colored
//           field classes (entity / identifier / value / locality)
//   Fig. 3  POS tagging of a log key via its sample message
//   Fig. 4  transforming a Spark log key into an Intel Key
#include <iostream>

#include "bench/harness.hpp"
#include "core/extraction.hpp"
#include "logparse/spell.hpp"
#include "nlp/pos_tagger.hpp"

using namespace intellog;

namespace {

void show_intel_key(const core::InfoExtractor& extractor, const logparse::LogKey& key,
                    const std::string& sample) {
  const core::IntelKey ik = extractor.extract(key, sample);
  std::cout << "  key:       " << key.to_string() << "\n";
  std::cout << "  sample:    " << sample << "\n";
  std::cout << "  entities:  ";
  for (const auto& e : ik.entities) std::cout << "'" << e << "' ";
  std::cout << "\n  fields:    ";
  for (std::size_t f = 0; f < ik.fields.size(); ++f) {
    const auto& info = ik.fields[f];
    std::cout << "#" << f << "=";
    switch (info.category) {
      case core::FieldCategory::Identifier:
        std::cout << "identifier(" << info.id_type << ") ";
        break;
      case core::FieldCategory::Value:
        std::cout << "value" << (info.unit.empty() ? "" : "[" + info.unit + "]") << " ";
        break;
      case core::FieldCategory::Locality: std::cout << "locality "; break;
      default: std::cout << "other ";
    }
  }
  std::cout << "\n  operations: ";
  for (const auto& op : ik.operations) {
    std::cout << "{" << (op.subj.empty() ? "_" : op.subj) << ", " << op.predicate << ", "
              << (op.obj.empty() ? "_" : op.obj) << "} ";
  }
  std::cout << "\n\n";
}

}  // namespace

int main() {
  const core::InfoExtractor extractor;

  // --- Figure 1 --------------------------------------------------------------
  bench::print_header("Figure 1: MapReduce fetcher snippet -> log keys -> fields");
  const std::vector<std::string> snippet = {
      "fetcher # 1 about to shuffle output of map attempt_01",
      "[fetcher # 1] read 2264 bytes from map-output for attempt_01",
      "host1:13562 freed by fetcher # 1 in 4ms",
  };
  logparse::Spell spell;
  for (const auto& line : snippet) spell.consume(line);
  for (std::size_t i = 0; i < snippet.size(); ++i) {
    const int id = spell.match(snippet[i]);
    std::cout << (i + 1) << ". " << snippet[i] << "\n   -> " << spell.key(id).to_string()
              << "\n";
    show_intel_key(extractor, spell.key(id), snippet[i]);
  }
  std::cout << "Paper (Fig. 1): entities fetcher / output of map / map-output; the\n"
               "fetcher numbers and attempt_01 are identifiers; 2264 bytes and 4 ms are\n"
               "values; host1:13562 is a locality.\n";

  // --- Figure 3 --------------------------------------------------------------
  bench::print_header("Figure 3: POS tagging a log key through its sample message");
  const nlp::PosTagger tagger;
  const std::string key_text = "* MapTask metrics system";
  const std::string sample = "Starting MapTask metrics system";
  std::cout << "log key:        " << key_text << "\n";
  std::cout << "sample message: " << sample << "\ntags:           ";
  for (const auto& tok : tagger.tag_message(sample)) {
    std::cout << tok.text << "/" << to_string(tok.tag) << " ";
  }
  std::cout << "\n(the key's '*' inherits the sample's tag; 'Starting'/VBG is the\n"
               "predicate, the noun run is the entity source)\n";

  // --- Figure 4 --------------------------------------------------------------
  bench::print_header("Figure 4: Spark task-finish log key -> Intel Key");
  logparse::Spell spark_spell;
  const std::string fig4 =
      "Finished task 1.0 in stage 0.0 (TID 3). 2578 bytes result sent to driver";
  const int id = spark_spell.consume(fig4);
  show_intel_key(extractor, spark_spell.key(id), fig4);
  std::cout << "Paper (Fig. 4): five entities (task, stage, tid, result, driver; 'bytes'\n"
               "omitted as a unit), three identifiers, one value, and the operations\n"
               "{_, finish, task} and {result, send, driver}.\n";
  return 0;
}
