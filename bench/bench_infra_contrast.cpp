// §6.4's argument, demonstrated from both sides.
//
// "DeepLog has a high accuracy rate when it is applied to HDFS and
// OpenStack systems. However, its performance degrades when it targets
// distributed data analytics systems" — because infrastructure-level
// requests emit short, near-fixed-order log sequences, while data
// analytics sessions interleave parallel components.
//
// This bench runs the SAME DeepLog on (a) YARN application sessions
// (infrastructure-level request unit) and (b) Spark container sessions
// (data-analytics unit), measuring the false-alarm rate on perfectly
// normal held-out sessions, plus the session-length variability that
// drives the difference.
#include <algorithm>

#include "baselines/deeplog.hpp"
#include "bench/harness.hpp"
#include "common/table.hpp"
#include "simsys/yarn_system.hpp"

using namespace intellog;

namespace {

struct Numbers {
  double false_alarm_rate = 0;
  std::size_t min_len = SIZE_MAX, max_len = 0;
  std::size_t vocab = 0;
};

Numbers evaluate(const std::vector<logparse::Session>& training,
                 const std::vector<logparse::Session>& heldout) {
  core::IntelLog il;
  il.train(training);
  const auto seq = [&](const logparse::Session& s) {
    std::vector<int> q;
    for (const auto& rec : s.records) q.push_back(il.spell().match(rec.content));
    return q;
  };
  std::vector<std::vector<int>> train_seqs;
  for (const auto& s : training) train_seqs.push_back(seq(s));

  baselines::DeepLog::Config cfg;
  cfg.hidden = 32;
  cfg.top_g = 9;
  cfg.epochs = 1;
  cfg.max_windows = 6000;
  baselines::DeepLog dl(cfg);
  dl.train(train_seqs);

  Numbers out;
  out.vocab = dl.vocab();
  std::size_t flagged = 0;
  for (const auto& s : heldout) {
    flagged += dl.is_anomalous(seq(s));
    out.min_len = std::min(out.min_len, s.records.size());
    out.max_len = std::max(out.max_len, s.records.size());
  }
  out.false_alarm_rate = static_cast<double>(flagged) / static_cast<double>(heldout.size());
  return out;
}

}  // namespace

int main() {
  bench::print_header("Infrastructure vs data-analytics logs under DeepLog (§6.4)");
  simsys::ClusterSpec cluster;

  // (a) YARN: one session per application request — short, fixed order.
  common::Rng yarn_rng(11);
  const auto yarn_train = simsys::generate_yarn_sessions(cluster, 300, yarn_rng);
  const auto yarn_heldout = simsys::generate_yarn_sessions(cluster, 80, yarn_rng);

  // (b) Spark: one session per container — parallel task runners interleave.
  const auto spark_train = bench::training_corpus("spark", 25, 12);
  std::vector<logparse::Session> spark_heldout;
  {
    simsys::WorkloadGenerator gen("spark", 13);
    for (int i = 0; i < 8; ++i) {
      simsys::JobResult job = simsys::run_job(gen.detection_job(i % 3), cluster);
      for (auto& s : job.sessions) spark_heldout.push_back(std::move(s));
    }
  }

  const Numbers yarn = evaluate(yarn_train, yarn_heldout);
  const Numbers spark = evaluate(spark_train, spark_heldout);

  common::TextTable table({"log source", "session unit", "session length", "log keys",
                           "DeepLog false-alarm rate (normal sessions)"});
  table.add_row({"YARN (infrastructure)", "application request",
                 std::to_string(yarn.min_len) + "~" + std::to_string(yarn.max_len),
                 std::to_string(yarn.vocab - 1), common::fmt_percent(yarn.false_alarm_rate, 1)});
  table.add_row({"Spark (data analytics)", "container",
                 std::to_string(spark.min_len) + "~" + std::to_string(spark.max_len),
                 std::to_string(spark.vocab - 1),
                 common::fmt_percent(spark.false_alarm_rate, 1)});
  table.print(std::cout);

  std::cout << "\nPaper (§2.2/§6.4): infrastructure-level requests emit short log\n"
               "sequences in relatively fixed order (OpenStack: ~9 lines per request),\n"
               "so next-key prediction works; data-analytics sessions vary with data\n"
               "size and interleave parallel components, so it false-alarms broadly.\n"
               "Expected shape: a near-zero false-alarm rate on YARN, a large one on\n"
               "Spark — the reason IntelLog exists.\n";
  return 0;
}
