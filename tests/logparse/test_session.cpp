#include "logparse/session.hpp"

#include <gtest/gtest.h>

using namespace intellog::logparse;

namespace {
LogRecord rec(std::string container, std::uint64_t ts, std::string content = "msg") {
  LogRecord r;
  r.container_id = std::move(container);
  r.timestamp_ms = ts;
  r.content = std::move(content);
  return r;
}
}  // namespace

TEST(SessionSplit, GroupsByContainerPreservingOrder) {
  std::vector<LogRecord> records = {rec("c1", 10, "a"), rec("c2", 11, "b"), rec("c1", 12, "c"),
                                    rec("c2", 13, "d")};
  const auto sessions = split_sessions(records, "spark");
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].container_id, "c1");
  EXPECT_EQ(sessions[0].system, "spark");
  ASSERT_EQ(sessions[0].records.size(), 2u);
  EXPECT_EQ(sessions[0].records[0].content, "a");
  EXPECT_EQ(sessions[0].records[1].content, "c");
  EXPECT_EQ(sessions[1].records[1].content, "d");
}

TEST(SessionSplit, DropsEmptyContainerIds) {
  std::vector<LogRecord> records = {rec("", 1), rec("c1", 2)};
  EXPECT_EQ(split_sessions(records).size(), 1u);
}

TEST(SessionSplit, EmptyInput) {
  EXPECT_TRUE(split_sessions({}).empty());
}

TEST(ParseSession, ParsesLinesAndAttachesContinuations) {
  const auto fmt = make_hadoop_formatter();
  const std::vector<std::string> lines = {
      "2019-06-01 01:00:00,000 INFO [main] x.Y: first message",
      "java.io.IOException: broken pipe",
      "\tat some.Class.method(Class.java:1)",
      "2019-06-01 01:00:01,000 ERROR [main] x.Y: second message",
  };
  const Session s = parse_session(*fmt, "container_1", lines, "mapreduce");
  EXPECT_EQ(s.container_id, "container_1");
  EXPECT_EQ(s.system, "mapreduce");
  ASSERT_EQ(s.records.size(), 2u);
  // Stack-trace lines fold into the previous record.
  EXPECT_NE(s.records[0].content.find("IOException"), std::string::npos);
  EXPECT_EQ(s.records[0].container_id, "container_1");
  EXPECT_EQ(s.records[1].level, "ERROR");
  EXPECT_EQ(s.length(), 2u);
}

TEST(ParseSession, StampsLineAndByteOffsetProvenance) {
  const auto fmt = make_hadoop_formatter();
  const std::vector<std::string> lines = {
      "2019-06-01 01:00:00,000 INFO [main] x.Y: first message",
      "java.io.IOException: broken pipe",
      "2019-06-01 01:00:01,000 ERROR [main] x.Y: second message",
  };
  const Session s = parse_session(*fmt, "c", lines, "mapreduce");
  ASSERT_EQ(s.records.size(), 2u);
  // 1-based line of each record's header line; byte offset counts every
  // preceding line plus its newline (what a `dd skip=` or editor goto
  // needs to land on the line).
  EXPECT_EQ(s.records[0].line_no, 1u);
  EXPECT_EQ(s.records[0].byte_offset, 0u);
  EXPECT_EQ(s.records[1].line_no, 3u);
  EXPECT_EQ(s.records[1].byte_offset, lines[0].size() + 1 + lines[1].size() + 1);
  // A continuation folds into the previous record without moving its
  // provenance off the header line.
  EXPECT_NE(s.records[0].content.find("IOException"), std::string::npos);
}

TEST(ParseSession, LeadingGarbageIsDropped) {
  const auto fmt = make_spark_formatter();
  const Session s = parse_session(*fmt, "c", {"garbage", "19/06/01 01:02:03 INFO x.Y: ok"});
  ASSERT_EQ(s.records.size(), 1u);
  EXPECT_EQ(s.records[0].content, "ok");
}
