// Hardened ingestion: parse_session_resilient / read_*_resilient must never
// throw on input, quarantine with accurate provenance, and undo redelivery
// and bounded reordering without disturbing clean streams.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "logparse/formatter.hpp"
#include "logparse/log_io.hpp"
#include "logparse/session.hpp"
#include "obs/metrics.hpp"

using namespace intellog;

namespace {

std::string spark(const std::string& sec, const std::string& msg,
                  const std::string& cls = "executor.Executor") {
  return "19/06/01 06:00:" + sec + " INFO " + cls + ": " + msg;
}

logparse::SessionIngest ingest(const std::vector<std::string>& lines,
                               const logparse::IngestOptions& opt = {}) {
  const auto fmt = logparse::make_spark_formatter();
  return logparse::parse_session_resilient(*fmt, "c1", lines, "spark", opt, "c1.log");
}

}  // namespace

TEST(ResilientIngest, CleanStreamPassesUnchanged) {
  std::vector<std::string> lines;
  for (int i = 10; i < 40; ++i) {
    lines.push_back(spark(std::to_string(i), "Running task " + std::to_string(i)));
  }
  const auto fmt = logparse::make_spark_formatter();
  const auto baseline = logparse::parse_session(*fmt, "c1", lines, "spark");
  const auto hardened = ingest(lines);
  ASSERT_EQ(hardened.session.records.size(), baseline.records.size());
  for (std::size_t i = 0; i < baseline.records.size(); ++i) {
    EXPECT_EQ(hardened.session.records[i].content, baseline.records[i].content);
    EXPECT_EQ(hardened.session.records[i].timestamp_ms, baseline.records[i].timestamp_ms);
  }
  EXPECT_TRUE(hardened.quarantined.empty());
  EXPECT_EQ(hardened.stats.duplicates_dropped, 0u);
  EXPECT_EQ(hardened.stats.reordered, 0u);
}

TEST(ResilientIngest, BinaryGarbageIsQuarantinedWithByteOffset) {
  const std::string first = spark("10", "Starting");
  std::vector<std::string> lines = {first, std::string("\x01\x02") + '\0' + "\xff\xfe garbage",
                                    spark("11", "Done")};
  const auto out = ingest(lines);
  EXPECT_EQ(out.session.records.size(), 2u);
  ASSERT_EQ(out.quarantined.size(), 1u);
  const auto& q = out.quarantined[0];
  EXPECT_EQ(q.reason, "binary");
  EXPECT_EQ(q.line_no, 2u);
  EXPECT_EQ(q.byte_offset, first.size() + 1);  // first line + '\n'
  EXPECT_EQ(q.file, "c1.log");
  EXPECT_EQ(out.stats.quarantined_by_reason.at("binary"), 1u);
}

TEST(ResilientIngest, TornDigitLedLineIsQuarantinedNotFolded) {
  std::vector<std::string> lines = {spark("10", "Starting"),
                                    "19/06/01 06:0",  // torn mid-timestamp
                                    spark("11", "Done")};
  const auto out = ingest(lines);
  ASSERT_EQ(out.session.records.size(), 2u);
  // The torn prefix must NOT be glued onto "Starting".
  EXPECT_EQ(out.session.records[0].content, "Starting");
  ASSERT_EQ(out.quarantined.size(), 1u);
  EXPECT_EQ(out.quarantined[0].reason, "torn");
}

TEST(ResilientIngest, StackTraceContinuationsStillFold) {
  std::vector<std::string> lines = {spark("10", "Exception in task 0"),
                                    "\tat org.apache.spark.Executor.run(Executor.scala:42)",
                                    "Caused by: java.io.IOException: no space"};
  const auto out = ingest(lines);
  ASSERT_EQ(out.session.records.size(), 1u);
  EXPECT_NE(out.session.records[0].content.find("Executor.scala:42"), std::string::npos);
  EXPECT_NE(out.session.records[0].content.find("Caused by"), std::string::npos);
  EXPECT_TRUE(out.quarantined.empty());
  EXPECT_EQ(out.stats.continuations, 2u);
}

TEST(ResilientIngest, ExactDuplicatesWithinWindowAreDropped) {
  const std::string line = spark("10", "Registering block manager");
  std::vector<std::string> lines = {line, spark("11", "Running task 1"), line};
  const auto out = ingest(lines);
  EXPECT_EQ(out.session.records.size(), 2u);
  EXPECT_EQ(out.stats.duplicates_dropped, 1u);
  // Dedupe disabled -> the duplicate stays.
  logparse::IngestOptions opt;
  opt.dedupe_window = 0;
  EXPECT_EQ(ingest(lines, opt).session.records.size(), 3u);
}

TEST(ResilientIngest, OutOfOrderTimestampsAreReinserted) {
  std::vector<std::string> lines = {
      spark("10", "step one"), spark("12", "step three"), spark("11", "step two"),
      spark("13", "step four")};
  const auto out = ingest(lines);
  ASSERT_EQ(out.session.records.size(), 4u);
  EXPECT_EQ(out.stats.reordered, 1u);
  for (std::size_t i = 1; i < out.session.records.size(); ++i) {
    EXPECT_LE(out.session.records[i - 1].timestamp_ms, out.session.records[i].timestamp_ms);
  }
  EXPECT_EQ(out.session.records[1].content, "step two");
}

TEST(ResilientIngest, OversizedLineIsQuarantined) {
  logparse::IngestOptions opt;
  opt.max_line_bytes = 256;
  std::vector<std::string> lines = {spark("10", "ok"),
                                    spark("11", std::string(1000, 'x'))};
  const auto out = ingest(lines, opt);
  EXPECT_EQ(out.session.records.size(), 1u);
  ASSERT_EQ(out.quarantined.size(), 1u);
  EXPECT_EQ(out.quarantined[0].reason, "oversized");
  // Stored text is truncated to quarantine_text_bytes, raw size kept.
  EXPECT_LE(out.quarantined[0].text.size(), opt.quarantine_text_bytes);
  EXPECT_GT(out.quarantined[0].raw_bytes, 1000u);
}

TEST(ResilientIngest, AccountingAlwaysBalances) {
  std::vector<std::string> lines = {
      spark("10", "a"), "19/06/01 06:0", spark("11", "b"), spark("11", "b"),
      std::string(1, '\0'), "\tat continuation.frame(X.java:1)", spark("12", "c")};
  const auto out = ingest(lines);
  const auto& st = out.stats;
  EXPECT_EQ(st.lines_total, lines.size());
  EXPECT_EQ(st.records + st.continuations + st.quarantined + st.duplicates_dropped,
            st.lines_total);
}

TEST(ResilientIngest, QuarantineListIsCappedButCountersKeepCounting) {
  logparse::IngestOptions opt;
  opt.max_quarantined = 3;
  std::vector<std::string> lines;
  for (int i = 0; i < 10; ++i) lines.push_back(std::string("\x01\x02\x03\x04\x05\x06"));
  const auto out = ingest(lines, opt);
  EXPECT_EQ(out.quarantined.size(), 3u);
  EXPECT_EQ(out.stats.quarantined, 10u);
}

TEST(ResilientIngest, QuarantineRotationKeepsNewestAndCountsDropped) {
  logparse::IngestOptions opt;
  opt.max_quarantined = 3;
  std::vector<std::string> lines;
  for (int i = 0; i < 10; ++i) lines.push_back(std::string("\x01\x02\x03\x04\x05\x06"));
  const auto out = ingest(lines, opt);
  ASSERT_EQ(out.quarantined.size(), 3u);
  // Oldest-first rotation: the survivors are the NEWEST three lines.
  EXPECT_EQ(out.quarantined[0].line_no, 8u);
  EXPECT_EQ(out.quarantined[1].line_no, 9u);
  EXPECT_EQ(out.quarantined[2].line_no, 10u);
  EXPECT_EQ(out.stats.quarantine_dropped, 7u);
  EXPECT_EQ(out.stats.quarantined, 10u);
}

TEST(ResilientIngest, QuarantineByteCapRotatesOldest) {
  logparse::IngestOptions opt;
  opt.max_quarantined_bytes = 20;  // each stored text is 6 bytes -> keeps 3
  std::vector<std::string> lines;
  for (int i = 0; i < 10; ++i) lines.push_back(std::string("\x01\x02\x03\x04\x05\x06"));
  const auto out = ingest(lines, opt);
  ASSERT_EQ(out.quarantined.size(), 3u);
  EXPECT_EQ(out.quarantined[2].line_no, 10u);
  EXPECT_EQ(out.stats.quarantine_dropped, 7u);
}

TEST(ResilientIngest, QuarantineChannelUnit) {
  const auto entry = [](std::size_t no, std::size_t text_bytes) {
    logparse::QuarantinedLine q;
    q.line_no = no;
    q.text = std::string(text_bytes, 'x');
    return q;
  };
  logparse::QuarantineChannel ch(4, 100);
  for (std::size_t i = 1; i <= 6; ++i) ch.push(entry(i, 10));
  EXPECT_EQ(ch.size(), 4u);
  EXPECT_EQ(ch.dropped(), 2u);
  // A single entry may exceed the byte cap alone; everything older rotates.
  ch.push(entry(7, 500));
  EXPECT_EQ(ch.size(), 1u);
  EXPECT_EQ(ch.dropped(), 6u);
  auto kept = ch.take();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].line_no, 7u);
  EXPECT_EQ(ch.size(), 0u);
  EXPECT_EQ(ch.dropped(), 6u);  // take() preserves the drop count
  // Zero record cap: nothing is ever kept, everything counts as dropped.
  logparse::QuarantineChannel none(0, 100);
  none.push(entry(1, 1));
  EXPECT_EQ(none.size(), 0u);
  EXPECT_EQ(none.dropped(), 1u);
}

TEST(ResilientIngest, LooksBinaryHeuristics) {
  EXPECT_TRUE(logparse::looks_binary(std::string_view("has\0nul", 7)));
  EXPECT_TRUE(logparse::looks_binary("\xff\xfe\x01\x02"));      // invalid UTF-8
  EXPECT_FALSE(logparse::looks_binary("plain log text"));
  EXPECT_FALSE(logparse::looks_binary("tabs\tare\tfine"));
  EXPECT_FALSE(logparse::looks_binary("ünïcödé is valid UTF-8"));
}

TEST(ResilientIngest, UnknownFormatFileQuarantinesSample) {
  const std::string path = "/tmp/intellog_resilient_nofmt.log";
  {
    std::ofstream f(path);
    f << "completely freeform text\nno timestamps anywhere\n";
  }
  const auto out = logparse::read_session_file_resilient(path);
  EXPECT_TRUE(out.session.records.empty());
  ASSERT_EQ(out.quarantined.size(), 1u);
  EXPECT_EQ(out.quarantined[0].reason, "no-known-format");
  EXPECT_EQ(out.stats.skipped_files, 1u);
  std::remove(path.c_str());
}

TEST(ResilientIngest, MissingDirectoryYieldsEmptyReportNotThrow) {
  logparse::IngestReport report;
  EXPECT_NO_THROW(report = logparse::read_log_directory_resilient("/nonexistent/intellog"));
  EXPECT_TRUE(report.sessions.empty());
  EXPECT_TRUE(report.quarantined.empty());
}

TEST(ResilientIngest, DirectoryReadExportsMetrics) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "intellog_resilient_metrics";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    std::ofstream f(dir / "c1.log");
    f << spark("10", "Running task 0") << "\n"
      << "\x01\x02\x03\x04\x05\x06\n"
      << spark("11", "Finished task 0") << "\n";
  }
  obs::MetricsRegistry registry;
  obs::set_registry(&registry);
  const auto report = logparse::read_log_directory_resilient(dir.string());
  obs::set_registry(nullptr);
  ASSERT_EQ(report.sessions.size(), 1u);
  const obs::Counter* lines = registry.find_counter("intellog_ingest_lines_total");
  ASSERT_NE(lines, nullptr);
  EXPECT_EQ(lines->value(), 3u);
  const obs::Counter* quarantined =
      registry.find_counter("intellog_ingest_quarantined_total", {{"reason", "binary"}});
  ASSERT_NE(quarantined, nullptr);
  EXPECT_EQ(quarantined->value(), 1u);
  // The Prometheus export carries the series (overload-visibility criterion).
  EXPECT_NE(registry.to_prometheus().find("intellog_ingest_quarantined_total"),
            std::string::npos);
  fs::remove_all(dir);
}

TEST(ResilientIngest, SkippedFileCounterOnSeedPathToo) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "intellog_skipped_seed";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    std::ofstream good(dir / "good.log");
    good << spark("10", "Running task 0") << "\n";
    std::ofstream bad(dir / "bad.log");
    bad << "freeform, no known format\n";
  }
  obs::MetricsRegistry registry;
  obs::set_registry(&registry);
  const auto sessions = logparse::read_log_directory(dir.string());
  obs::set_registry(nullptr);
  EXPECT_EQ(sessions.size(), 1u);
  const obs::Counter* skipped = registry.find_counter("intellog_ingest_skipped_files_total");
  ASSERT_NE(skipped, nullptr);
  EXPECT_EQ(skipped->value(), 1u);
  fs::remove_all(dir);
}
