#include "logparse/kv_filter.hpp"

#include <gtest/gtest.h>

using intellog::logparse::KvFilter;

class KvFilterTest : public ::testing::Test {
 protected:
  KvFilter filter;
};

TEST_F(KvFilterTest, ClausesAreNaturalLanguage) {
  for (const char* msg : {
           "Starting MapTask metrics system",
           "host1:13562 freed by fetcher # 1 in 4ms",
           "fetcher # 1 about to shuffle output of map attempt_01",
           "Registered signal handler for TERM",
           "Block rdd_0_1 stored as values in memory",
           "Task attempt_01 is done. And is in the process of committing",
       }) {
    EXPECT_TRUE(filter.is_natural_language(msg)) << msg;
  }
}

TEST_F(KvFilterTest, KeyValueLinesAreNot) {
  for (const char* msg : {
           "numCompletedTasks=5 numScheduledMaps=40 numScheduledReduces=2",
           "headroom memory=4096 vCores=8",
           "availableResources memory=1024 vCores=2 usedResources memory=512 vCores=1",
           "Final resource view: phys_ram=131072MB used_ram=2048MB",
           "taskProgress=55 recordsProcessed=120000",
       }) {
    EXPECT_FALSE(filter.is_natural_language(msg)) << msg;
  }
}

TEST_F(KvFilterTest, ClauselessProseIsNot) {
  // Real MapReduce line with no predicate (§5 / Table 1).
  EXPECT_FALSE(filter.is_natural_language("reduce task executor complete."));
  EXPECT_FALSE(filter.is_natural_language("Down to the last merge-pass"));
}

TEST_F(KvFilterTest, KvOnlyIsStricterThanNonNl) {
  // Pure status lines are omitted from Intel Keys (§5)...
  EXPECT_TRUE(filter.is_kv_only("numCompletedTasks=5 numScheduledMaps=40"));
  EXPECT_TRUE(filter.is_kv_only("headroom memory=4096 vCores=8"));
  EXPECT_TRUE(filter.is_kv_only("Final resource view: phys_ram=131072MB used_ram=2048MB"));
  // ...but clause-less prose still becomes an Intel Key.
  EXPECT_FALSE(filter.is_kv_only("reduce task executor complete."));
  EXPECT_FALSE(filter.is_kv_only("Down to the last merge-pass"));
  EXPECT_FALSE(filter.is_kv_only("Final merge of 5 segments"));
  // Natural-language lines are never key-value-only.
  EXPECT_FALSE(filter.is_kv_only("Starting MapTask metrics system"));
}

TEST_F(KvFilterTest, ValueSideVerbsDoNotCount) {
  // 'killed' appears as the value of a key=value pair: not a clause.
  EXPECT_FALSE(filter.is_natural_language("state=killed reason=preempted"));
}

TEST_F(KvFilterTest, LearnedKvKeys) {
  EXPECT_FALSE(filter.is_learned_kv_key(7));
  filter.learn_kv_key(7);
  EXPECT_TRUE(filter.is_learned_kv_key(7));
  EXPECT_FALSE(filter.is_learned_kv_key(8));
  EXPECT_EQ(filter.learned_count(), 1u);
}

TEST_F(KvFilterTest, EmptyMessage) {
  EXPECT_FALSE(filter.is_natural_language(""));
}
