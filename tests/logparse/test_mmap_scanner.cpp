// MappedFile + SWAR scanner coverage, including the differential fuzz
// required for the zero-copy ingest path: the SWAR scanner must produce
// byte-identical line boundaries and offsets to the naive scalar
// reference (and to std::getline, whose semantics both implement) on
// random and hostile inputs — embedded NULs, CR/CRLF, torn final lines,
// and lines longer than an arena page.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/rng.hpp"
#include "logparse/mmap_file.hpp"
#include "logparse/scanner.hpp"

using namespace intellog;

namespace {

struct Line {
  std::string text;
  std::size_t offset;
  bool operator==(const Line&) const = default;
};

template <typename Scanner>
std::vector<Line> scan_all(std::string_view data) {
  Scanner scanner(data);
  std::vector<Line> out;
  std::string_view line;
  std::size_t offset = 0;
  while (scanner.next(&line, &offset)) {
    out.push_back(Line{std::string(line), offset});
  }
  return out;
}

std::vector<Line> getline_reference(const std::string& data) {
  std::istringstream in(data);
  std::vector<Line> out;
  std::string line;
  std::size_t offset = 0;
  while (std::getline(in, line)) {
    out.push_back(Line{line, offset});
    offset += line.size() + 1;
  }
  return out;
}

std::string random_hostile(common::Rng& rng, std::size_t max_len) {
  const std::size_t len = rng.uniform(max_len + 1);
  std::string s(len, '\0');
  for (auto& c : s) {
    // Bias towards newline-adjacent bytes so boundaries get dense coverage.
    switch (rng.uniform(6)) {
      case 0: c = '\n'; break;
      case 1: c = '\r'; break;
      case 2: c = '\0'; break;
      default: c = static_cast<char>(rng.uniform(256)); break;
    }
  }
  return s;
}

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/intellog_mmap_test_XXXXXX";
    dir_ = ::mkdtemp(tmpl);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  std::string file(const std::string& name, const std::string& content) const {
    const std::string path = dir_ + "/" + name;
    std::ofstream out(path, std::ios::binary);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    return path;
  }

 private:
  std::string dir_;
};

}  // namespace

TEST(SwarScanner, FindByteMatchesNaiveOnTargetedInputs) {
  const std::string cases[] = {
      "", "\n", "a", "a\n", "abcdefg\n", "abcdefgh\n",  // around word size
      std::string(7, 'x'), std::string(8, 'x'), std::string(9, 'x'),
      std::string("\0\0\n\0", 4), "\r\n\r\n", std::string(100, '\n'),
  };
  for (const auto& s : cases) {
    for (std::size_t from = 0; from <= s.size(); ++from) {
      EXPECT_EQ(logparse::find_byte(s, from, '\n'),
                logparse::find_byte_naive(s, from, '\n'))
          << "input size " << s.size() << " from " << from;
    }
  }
}

TEST(SwarScanner, GetlineSemanticsOnCanonicalShapes) {
  using V = std::vector<Line>;
  EXPECT_EQ(scan_all<logparse::LineScanner>(""), V{});
  EXPECT_EQ(scan_all<logparse::LineScanner>("a\nb\n"), (V{{"a", 0}, {"b", 2}}));
  EXPECT_EQ(scan_all<logparse::LineScanner>("a\nb"), (V{{"a", 0}, {"b", 2}}));  // torn tail
  EXPECT_EQ(scan_all<logparse::LineScanner>("\n"), (V{{"", 0}}));
  EXPECT_EQ(scan_all<logparse::LineScanner>("a\n\nb\n"), (V{{"a", 0}, {"", 2}, {"b", 3}}));
  // CR is data, not a terminator — CRLF lines keep their '\r'.
  EXPECT_EQ(scan_all<logparse::LineScanner>("a\r\nb\r\n"), (V{{"a\r", 0}, {"b\r", 3}}));
  // Embedded NULs are ordinary bytes.
  const std::string nul("x\0y\nz", 5);
  auto lines = scan_all<logparse::LineScanner>(nul);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].text, std::string("x\0y", 3));
  EXPECT_EQ(lines[1], (Line{"z", 4}));
}

TEST(SwarScanner, DifferentialFuzzAgainstNaiveAndGetline) {
  common::Rng rng(0xBEEF5CA7);
  for (int i = 0; i < 400; ++i) {
    const std::string data = random_hostile(rng, 600);
    const auto swar = scan_all<logparse::LineScanner>(data);
    const auto naive = scan_all<logparse::NaiveLineScanner>(data);
    ASSERT_EQ(swar, naive) << "iteration " << i;
    // istringstream stops at embedded NULs? No — getline reads through
    // them; it is the authoritative reference for boundary semantics.
    ASSERT_EQ(swar, getline_reference(data)) << "iteration " << i;
  }
}

TEST(SwarScanner, LinesLargerThanAPage) {
  // One line wider than a 64 KiB arena page plus a torn tail, to pin the
  // oversized path end to end.
  std::string big(common::PagePool::kPageSize + 4096, 'A');
  std::string data = big + "\nshort\ntail-without-newline";
  const auto swar = scan_all<logparse::LineScanner>(data);
  const auto naive = scan_all<logparse::NaiveLineScanner>(data);
  ASSERT_EQ(swar, naive);
  ASSERT_EQ(swar.size(), 3u);
  EXPECT_EQ(swar[0].text.size(), big.size());
  EXPECT_EQ(swar[1], (Line{"short", big.size() + 1}));
  EXPECT_EQ(swar[2].offset, big.size() + 7);
}

TEST(SwarScanner, AllDigitsHelper) {
  EXPECT_TRUE(logparse::all_digits("20190608123456", 0, 14));
  EXPECT_TRUE(logparse::all_digits("abc123xyz", 3, 3));
  EXPECT_FALSE(logparse::all_digits("1234567/", 0, 8));
  EXPECT_FALSE(logparse::all_digits("123", 0, 4));  // out of range
  EXPECT_FALSE(logparse::all_digits(std::string("12\0" "45678", 8), 0, 8));
  EXPECT_TRUE(logparse::all_digits("", 0, 0));
}

TEST(MappedFile, MapsRegularFiles) {
  TempDir tmp;
  const std::string content = "19/06/08 10:00:00 INFO Foo: bar\nsecond line\n";
  const auto path = tmp.file("a.log", content);
  std::string error;
  auto file = logparse::MappedFile::open(path, &error);
  ASSERT_NE(file, nullptr) << error;
  EXPECT_EQ(file->view(), content);
  EXPECT_EQ(file->path(), path);
  EXPECT_TRUE(file->mmapped());
}

TEST(MappedFile, EmptyFileYieldsEmptyView) {
  TempDir tmp;
  auto file = logparse::MappedFile::open(tmp.file("empty.log", ""));
  ASSERT_NE(file, nullptr);
  EXPECT_EQ(file->size(), 0u);
  EXPECT_EQ(file->view(), "");
}

TEST(MappedFile, MissingFileReportsError) {
  std::string error;
  auto file = logparse::MappedFile::open("/nonexistent/nope.log", &error);
  EXPECT_EQ(file, nullptr);
  EXPECT_NE(error.find("nope.log"), std::string::npos);
}

TEST(MappedFile, EnvForcesReadFallbackWithIdenticalBytes) {
  TempDir tmp;
  std::string content;
  for (int i = 0; i < 5000; ++i) content += "line " + std::to_string(i) + "\n";
  const auto path = tmp.file("big.log", content);
  ::setenv("INTELLOG_NO_MMAP", "1", 1);
  auto fallback = logparse::MappedFile::open(path);
  ::unsetenv("INTELLOG_NO_MMAP");
  auto mapped = logparse::MappedFile::open(path);
  ASSERT_NE(fallback, nullptr);
  ASSERT_NE(mapped, nullptr);
  EXPECT_FALSE(fallback->mmapped());
  EXPECT_TRUE(mapped->mmapped());
  EXPECT_EQ(fallback->view(), mapped->view());
}
