// Seeded fuzz: the parsing surface (Spell::match, tokenizer, formatters,
// resilient session ingest) must survive arbitrary bytes — NULs, invalid
// UTF-8, pathological token counts — without throwing. Memory safety is
// covered by running this suite under ASan/UBSan (tools/ci.sh asan/chaos).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "logparse/formatter.hpp"
#include "logparse/session.hpp"
#include "logparse/spell.hpp"
#include "nlp/tokenizer.hpp"

using namespace intellog;

namespace {

std::string random_bytes(common::Rng& rng, std::size_t max_len) {
  const std::size_t len = rng.uniform(max_len + 1);
  std::string s(len, '\0');
  for (auto& c : s) c = static_cast<char>(rng.uniform(256));
  return s;
}

std::string random_printable(common::Rng& rng, std::size_t max_len) {
  const std::size_t len = rng.uniform(max_len + 1);
  std::string s(len, ' ');
  for (auto& c : s) c = static_cast<char>(0x20 + rng.uniform(0x5f));
  return s;
}

}  // namespace

TEST(FuzzParse, SpellMatchOnRandomBytes) {
  logparse::Spell spell;
  // A few realistic keys so match() has something to compare against.
  spell.consume("Running task 0 in stage 0.0");
  spell.consume("Registering block manager host1:1234");
  spell.consume("Finished task 3 in 250 ms");
  common::Rng rng(0xF00D);
  for (int i = 0; i < 500; ++i) {
    EXPECT_NO_THROW(spell.match(random_bytes(rng, 300))) << "iteration " << i;
    EXPECT_NO_THROW(spell.match(random_printable(rng, 300))) << "iteration " << i;
  }
  // Targeted nasties: NULs, invalid UTF-8, empty, all-whitespace.
  for (const auto& s : {std::string("\0\0\0", 3), std::string("\xff\xfe\xc0\xaf"),
                        std::string(), std::string(64, ' '), std::string(64, '*')}) {
    EXPECT_NO_THROW(spell.match(s));
  }
}

TEST(FuzzParse, SpellMatchOnTenThousandTokens) {
  logparse::Spell spell;
  spell.consume("Running task 0");
  std::string huge;
  huge.reserve(80000);
  for (int i = 0; i < 10000; ++i) {
    huge += "tok";
    huge += std::to_string(i);
    huge += ' ';
  }
  EXPECT_NO_THROW(spell.match(huge));
  EXPECT_NO_THROW(spell.consume(huge));
}

TEST(FuzzParse, TokenizerOnRandomBytes) {
  common::Rng rng(0xBEEF);
  for (int i = 0; i < 500; ++i) {
    EXPECT_NO_THROW(nlp::tokenize(random_bytes(rng, 200))) << "iteration " << i;
  }
  EXPECT_NO_THROW(nlp::tokenize(std::string("nul\0inside", 10)));
  EXPECT_NO_THROW(nlp::tokenize("\xc3\x28 invalid utf8 \xe2\x82"));
}

TEST(FuzzParse, FormattersNeverThrowOnRandomLines) {
  const auto spark = logparse::make_spark_formatter();
  const auto hadoop = logparse::make_hadoop_formatter();
  common::Rng rng(0xCAFE);
  for (int i = 0; i < 1000; ++i) {
    const std::string line = i % 2 ? random_bytes(rng, 400) : random_printable(rng, 400);
    EXPECT_NO_THROW(spark->parse(line)) << "iteration " << i;
    EXPECT_NO_THROW(hadoop->parse(line)) << "iteration " << i;
    EXPECT_NO_THROW(logparse::detect_format(line)) << "iteration " << i;
  }
  // Near-miss prefixes of the real formats (the torn-line shape).
  const std::string full = "19/06/01 06:00:01 INFO executor.Executor: Running task 0";
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    EXPECT_NO_THROW(spark->parse(full.substr(0, cut)));
  }
  const std::string hfull = "2019-06-01 06:00:01,123 INFO [main] org.x.Y: starting";
  for (std::size_t cut = 0; cut <= hfull.size(); ++cut) {
    EXPECT_NO_THROW(hadoop->parse(hfull.substr(0, cut)));
  }
}

TEST(FuzzParse, ResilientIngestOnRandomStreams) {
  const auto fmt = logparse::make_spark_formatter();
  common::Rng rng(0xD15EA5E);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::string> lines;
    const std::size_t n = 20 + rng.uniform(80);
    for (std::size_t i = 0; i < n; ++i) {
      switch (rng.uniform(4)) {
        case 0: lines.push_back(random_bytes(rng, 200)); break;
        case 1: lines.push_back(random_printable(rng, 200)); break;
        case 2:
          lines.push_back("19/06/01 06:00:" + std::to_string(10 + i % 50) +
                          " INFO executor.Executor: Running task " + std::to_string(i));
          break;
        default:
          lines.push_back("19/06/01 06:0");  // torn
          break;
      }
    }
    logparse::SessionIngest out;
    ASSERT_NO_THROW(
        out = logparse::parse_session_resilient(*fmt, "fuzz", lines, "spark", {}, "fuzz.log"))
        << "round " << round;
    // Whatever happened, the accounting must balance.
    EXPECT_EQ(out.stats.records + out.stats.continuations + out.stats.quarantined +
                  out.stats.duplicates_dropped,
              out.stats.lines_total)
        << "round " << round;
  }
}
