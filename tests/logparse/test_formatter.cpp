#include "logparse/formatter.hpp"

#include <gtest/gtest.h>

using namespace intellog::logparse;

TEST(HadoopFormatter, RenderParseRoundTrip) {
  const auto fmt = make_hadoop_formatter();
  LogRecord rec;
  rec.timestamp_ms = 3 * 86400000ULL + 5 * 3600000ULL + 42 * 60000ULL + 7 * 1000ULL + 123;
  rec.level = "WARN";
  rec.source = "mapred.MapTask";
  rec.content = "Processing split: /data/part-0";
  const std::string line = fmt->render(rec);
  EXPECT_EQ(line, "2019-06-04 05:42:07,123 WARN [main] mapred.MapTask: Processing split: "
                  "/data/part-0");
  const auto parsed = fmt->parse(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->timestamp_ms, rec.timestamp_ms);
  EXPECT_EQ(parsed->level, "WARN");
  EXPECT_EQ(parsed->source, "mapred.MapTask");
  EXPECT_EQ(parsed->content, rec.content);
}

TEST(SparkFormatter, RenderParseRoundTrip) {
  const auto fmt = make_spark_formatter();
  LogRecord rec;
  rec.timestamp_ms = 1 * 3600000ULL + 2 * 60000ULL + 3 * 1000ULL;
  rec.level = "INFO";
  rec.source = "storage.BlockManager";
  rec.content = "Registering BlockManager bm_1";
  const std::string line = fmt->render(rec);
  EXPECT_EQ(line, "19/06/01 01:02:03 INFO storage.BlockManager: Registering BlockManager bm_1");
  const auto parsed = fmt->parse(line);
  ASSERT_TRUE(parsed.has_value());
  // Spark's format has second granularity.
  EXPECT_EQ(parsed->timestamp_ms, rec.timestamp_ms);
  EXPECT_EQ(parsed->content, rec.content);
}

TEST(Formatter, ParseRejectsGarbage) {
  const auto hadoop = make_hadoop_formatter();
  const auto spark = make_spark_formatter();
  for (const char* line :
       {"", "not a log line", "java.io.IOException: broken pipe",
        "\tat org.apache.hadoop.mapred.MapTask.run(MapTask.java:343)"}) {
    EXPECT_FALSE(hadoop->parse(line).has_value()) << line;
    EXPECT_FALSE(spark->parse(line).has_value()) << line;
  }
}

TEST(Formatter, CrossFormatRejection) {
  const auto hadoop = make_hadoop_formatter();
  const auto spark = make_spark_formatter();
  const std::string spark_line = "19/06/01 01:02:03 INFO x.Y: hello";
  const std::string hadoop_line = "2019-06-01 01:02:03,000 INFO [main] x.Y: hello";
  EXPECT_FALSE(hadoop->parse(spark_line).has_value());
  EXPECT_FALSE(spark->parse(hadoop_line).has_value());
}

TEST(Formatter, DetectFormat) {
  EXPECT_EQ(detect_format("19/06/01 01:02:03 INFO x.Y: hello")->name(), "spark");
  EXPECT_EQ(detect_format("2019-06-01 01:02:03,000 INFO [main] x.Y: hello")->name(), "hadoop");
  EXPECT_EQ(detect_format("free-form text"), nullptr);
}

TEST(Formatter, ContentMayContainColons) {
  const auto fmt = make_spark_formatter();
  const auto parsed = fmt->parse("19/06/01 01:02:03 INFO x.Y: Connecting to driver at "
                                 "spark://master:37001");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->content, "Connecting to driver at spark://master:37001");
}
