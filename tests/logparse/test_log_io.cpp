#include "logparse/log_io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "core/intellog.hpp"
#include "simsys/workload.hpp"

using namespace intellog;
using namespace intellog::logparse;

namespace {

class TempDir {
 public:
  TempDir() : path_("/tmp/intellog_logio_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter_++)) {}
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

}  // namespace

TEST(LogIo, SessionRoundTripHadoop) {
  TempDir dir;
  const auto fmt = make_hadoop_formatter();
  Session s;
  s.container_id = "container_1";
  for (int i = 0; i < 5; ++i) {
    LogRecord rec;
    rec.timestamp_ms = 1000u * static_cast<unsigned>(i);
    rec.level = i == 3 ? "WARN" : "INFO";
    rec.source = "mapred.MapTask";
    rec.content = "Processing split number " + std::to_string(i);
    rec.container_id = s.container_id;
    s.records.push_back(rec);
  }
  write_log_directory(*fmt, {s}, dir.path());
  const auto back = read_log_directory(dir.path(), "mapreduce");
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].container_id, "container_1");
  EXPECT_EQ(back[0].system, "mapreduce");
  ASSERT_EQ(back[0].records.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(back[0].records[static_cast<std::size_t>(i)].content,
              s.records[static_cast<std::size_t>(i)].content);
    EXPECT_EQ(back[0].records[static_cast<std::size_t>(i)].timestamp_ms,
              s.records[static_cast<std::size_t>(i)].timestamp_ms);
  }
  EXPECT_EQ(back[0].records[3].level, "WARN");
}

TEST(LogIo, MixedFormatsAutoDetected) {
  TempDir dir;
  std::filesystem::create_directories(dir.path());
  const auto hadoop = make_hadoop_formatter();
  const auto spark = make_spark_formatter();
  Session a;
  a.container_id = "c_hadoop";
  {
    LogRecord rec;
    rec.level = "INFO";
    rec.source = "x.Y";
    rec.content = "hadoop message";
    rec.container_id = "c_hadoop";
    a.records.push_back(std::move(rec));
  }
  Session b;
  b.container_id = "c_spark";
  {
    LogRecord rec;
    rec.level = "INFO";
    rec.source = "x.Y";
    rec.content = "spark message";
    rec.container_id = "c_spark";
    b.records.push_back(std::move(rec));
  }
  write_session_file(*hadoop, a, dir.path() + "/c_hadoop.log");
  write_session_file(*spark, b, dir.path() + "/c_spark.log");
  const auto back = read_log_directory(dir.path());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].records[0].content, "hadoop message");
  EXPECT_EQ(back[1].records[0].content, "spark message");
}

TEST(LogIo, EmptyFilesSurfaceAsEmptySessions) {
  // A zero-byte .log file is a container that died before logging a single
  // line — real detection signal (the session-abort signature), not junk.
  TempDir dir;
  std::filesystem::create_directories(dir.path());
  { std::ofstream empty(dir.path() + "/container_dead_01.log"); }
  {
    std::ofstream ok(dir.path() + "/container_live_02.log");
    ok << "2019-06-01 01:02:03,000 INFO [main] x.Y: hadoop message\n";
  }
  const auto sessions = read_log_directory(dir.path());
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].container_id, "container_dead_01");
  EXPECT_TRUE(sessions[0].records.empty());
  EXPECT_EQ(sessions[1].container_id, "container_live_02");
  EXPECT_EQ(sessions[1].records.size(), 1u);

  const auto resilient = read_log_directory_resilient(dir.path());
  ASSERT_EQ(resilient.sessions.size(), 2u);
  EXPECT_TRUE(resilient.sessions[0].records.empty());
}

TEST(LogIo, UnparseableFilesSkipped) {
  TempDir dir;
  std::filesystem::create_directories(dir.path());
  {
    std::ofstream junk(dir.path() + "/junk.log");
    junk << "this is not a log format\nat all\n";
    std::ofstream other(dir.path() + "/readme.txt");
    other << "ignored extension\n";
  }
  EXPECT_TRUE(read_log_directory(dir.path()).empty());
}

TEST(LogIo, MissingDirectoryThrows) {
  EXPECT_THROW(read_log_directory("/nonexistent/intellog"), std::runtime_error);
  EXPECT_THROW(read_session_file("/nonexistent/x.log"), std::runtime_error);
}

TEST(LogIo, SimulatedJobRoundTripsThroughDisk) {
  TempDir dir;
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 12);
  const simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
  const auto fmt = make_spark_formatter();
  write_log_directory(*fmt, job.sessions, dir.path());
  const auto back = read_log_directory(dir.path(), "spark");
  ASSERT_EQ(back.size(), job.sessions.size());
  std::size_t orig_lines = 0, back_lines = 0;
  for (const auto& s : job.sessions) orig_lines += s.records.size();
  for (const auto& s : back) back_lines += s.records.size();
  EXPECT_EQ(orig_lines, back_lines);
}

TEST(LogIo, ReadersStampSourceFileAndLineProvenance) {
  TempDir dir;
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 13);
  const simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
  const auto fmt = make_spark_formatter();
  write_log_directory(*fmt, job.sessions, dir.path());

  const auto back = read_log_directory(dir.path(), "spark");
  ASSERT_EQ(back.size(), job.sessions.size());
  for (const auto& s : back) {
    // Every session remembers which file it came from...
    ASSERT_FALSE(s.source_file.empty());
    EXPECT_NE(s.source_file.find(s.container_id + ".log"), std::string::npos);
    EXPECT_TRUE(std::filesystem::exists(s.source_file)) << s.source_file;
    // ...and every record is addressable: line numbers strictly increase
    // and each byte offset points at the record's own header line.
    std::ifstream raw(s.source_file);
    std::string text((std::istreambuf_iterator<char>(raw)), std::istreambuf_iterator<char>());
    std::uint32_t prev_line = 0;
    for (const auto& rec : s.records) {
      EXPECT_GT(rec.line_no, prev_line);
      prev_line = rec.line_no;
      ASSERT_LT(rec.byte_offset, text.size());
      const std::size_t eol = text.find('\n', rec.byte_offset);
      const std::string raw_line = text.substr(rec.byte_offset, eol - rec.byte_offset);
      // The line at that offset carries the record's content (content is
      // the message part; the raw line has timestamp/level prefixes, and
      // continuations are folded, so compare against the first line).
      const std::string head(rec.content.substr(0, rec.content.find('\n')));
      EXPECT_NE(raw_line.find(head), std::string::npos)
          << s.source_file << ":" << rec.line_no;
    }
  }

  // The single-file reader stamps the same provenance.
  const auto one = read_session_file(dir.path() + "/" + back[0].container_id + ".log", "spark");
  EXPECT_EQ(one.source_file, dir.path() + "/" + back[0].container_id + ".log");
}

TEST(LogIo, RecursiveDiscovery) {
  TempDir dir;
  std::filesystem::create_directories(dir.path() + "/job_0");
  std::filesystem::create_directories(dir.path() + "/job_1");
  const auto fmt = make_spark_formatter();
  Session s;
  s.container_id = "c1";
  {
    LogRecord rec;
    rec.level = "INFO";
    rec.source = "x.Y";
    rec.content = "nested";
    rec.container_id = "c1";
    s.records.push_back(std::move(rec));
  }
  write_session_file(*fmt, s, dir.path() + "/job_0/c1.log");
  s.container_id = "c2";
  write_session_file(*fmt, s, dir.path() + "/job_1/c2.log");
  EXPECT_EQ(read_log_directory(dir.path()).size(), 2u);
}

TEST(HwGraphDot, ExportShape) {
  core::IntelLog il;
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 3);
  std::vector<Session> training;
  for (int i = 0; i < 5; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& sess : job.sessions) training.push_back(std::move(sess));
  }
  il.train(training);
  const std::string dot = il.hw_graph().to_dot();
  EXPECT_NE(dot.find("digraph hwgraph"), std::string::npos);
  EXPECT_NE(dot.find("g_block"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // BEFORE edges
  EXPECT_EQ(dot.back(), '\n');
}
