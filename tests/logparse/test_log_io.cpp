#include "logparse/log_io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "core/intellog.hpp"
#include "simsys/workload.hpp"

using namespace intellog;
using namespace intellog::logparse;

namespace {

class TempDir {
 public:
  TempDir() : path_("/tmp/intellog_logio_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter_++)) {}
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

}  // namespace

TEST(LogIo, SessionRoundTripHadoop) {
  TempDir dir;
  const auto fmt = make_hadoop_formatter();
  Session s;
  s.container_id = "container_1";
  for (int i = 0; i < 5; ++i) {
    LogRecord rec;
    rec.timestamp_ms = 1000u * static_cast<unsigned>(i);
    rec.level = i == 3 ? "WARN" : "INFO";
    rec.source = "mapred.MapTask";
    rec.content = "Processing split number " + std::to_string(i);
    rec.container_id = s.container_id;
    s.records.push_back(rec);
  }
  write_log_directory(*fmt, {s}, dir.path());
  const auto back = read_log_directory(dir.path(), "mapreduce");
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].container_id, "container_1");
  EXPECT_EQ(back[0].system, "mapreduce");
  ASSERT_EQ(back[0].records.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(back[0].records[static_cast<std::size_t>(i)].content,
              s.records[static_cast<std::size_t>(i)].content);
    EXPECT_EQ(back[0].records[static_cast<std::size_t>(i)].timestamp_ms,
              s.records[static_cast<std::size_t>(i)].timestamp_ms);
  }
  EXPECT_EQ(back[0].records[3].level, "WARN");
}

TEST(LogIo, MixedFormatsAutoDetected) {
  TempDir dir;
  std::filesystem::create_directories(dir.path());
  const auto hadoop = make_hadoop_formatter();
  const auto spark = make_spark_formatter();
  Session a;
  a.container_id = "c_hadoop";
  a.records.push_back({0, "INFO", "x.Y", "hadoop message", "c_hadoop", {}});
  Session b;
  b.container_id = "c_spark";
  b.records.push_back({0, "INFO", "x.Y", "spark message", "c_spark", {}});
  write_session_file(*hadoop, a, dir.path() + "/c_hadoop.log");
  write_session_file(*spark, b, dir.path() + "/c_spark.log");
  const auto back = read_log_directory(dir.path());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].records[0].content, "hadoop message");
  EXPECT_EQ(back[1].records[0].content, "spark message");
}

TEST(LogIo, UnparseableFilesSkipped) {
  TempDir dir;
  std::filesystem::create_directories(dir.path());
  {
    std::ofstream junk(dir.path() + "/junk.log");
    junk << "this is not a log format\nat all\n";
    std::ofstream other(dir.path() + "/readme.txt");
    other << "ignored extension\n";
  }
  EXPECT_TRUE(read_log_directory(dir.path()).empty());
}

TEST(LogIo, MissingDirectoryThrows) {
  EXPECT_THROW(read_log_directory("/nonexistent/intellog"), std::runtime_error);
  EXPECT_THROW(read_session_file("/nonexistent/x.log"), std::runtime_error);
}

TEST(LogIo, SimulatedJobRoundTripsThroughDisk) {
  TempDir dir;
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 12);
  const simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
  const auto fmt = make_spark_formatter();
  write_log_directory(*fmt, job.sessions, dir.path());
  const auto back = read_log_directory(dir.path(), "spark");
  ASSERT_EQ(back.size(), job.sessions.size());
  std::size_t orig_lines = 0, back_lines = 0;
  for (const auto& s : job.sessions) orig_lines += s.records.size();
  for (const auto& s : back) back_lines += s.records.size();
  EXPECT_EQ(orig_lines, back_lines);
}

TEST(LogIo, RecursiveDiscovery) {
  TempDir dir;
  std::filesystem::create_directories(dir.path() + "/job_0");
  std::filesystem::create_directories(dir.path() + "/job_1");
  const auto fmt = make_spark_formatter();
  Session s;
  s.container_id = "c1";
  s.records.push_back({0, "INFO", "x.Y", "nested", "c1", {}});
  write_session_file(*fmt, s, dir.path() + "/job_0/c1.log");
  s.container_id = "c2";
  write_session_file(*fmt, s, dir.path() + "/job_1/c2.log");
  EXPECT_EQ(read_log_directory(dir.path()).size(), 2u);
}

TEST(HwGraphDot, ExportShape) {
  core::IntelLog il;
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 3);
  std::vector<Session> training;
  for (int i = 0; i < 5; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& sess : job.sessions) training.push_back(std::move(sess));
  }
  il.train(training);
  const std::string dot = il.hw_graph().to_dot();
  EXPECT_NE(dot.find("digraph hwgraph"), std::string::npos);
  EXPECT_NE(dot.find("g_block"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // BEFORE edges
  EXPECT_EQ(dot.back(), '\n');
}
