#include "logparse/spell.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

using intellog::logparse::Spell;

TEST(Spell, FirstMessageFoundsKey) {
  Spell spell;
  const int id = spell.consume("Starting MapTask metrics system");
  EXPECT_EQ(id, 0);
  EXPECT_EQ(spell.size(), 1u);
  EXPECT_EQ(spell.key(0).to_string(), "Starting MapTask metrics system");
}

TEST(Spell, DigitTokensPreMaskedAsVariables) {
  Spell spell;
  spell.consume("read 2264 bytes from map-output for attempt_01");
  EXPECT_EQ(spell.key(0).to_string(), "read * bytes from map-output for *");
}

TEST(Spell, SameTemplateDifferentValuesSharesKey) {
  Spell spell;
  const int a = spell.consume("read 2264 bytes from map-output for attempt_01");
  const int b = spell.consume("read 512 bytes from map-output for attempt_07");
  EXPECT_EQ(a, b);
  EXPECT_EQ(spell.size(), 1u);
  EXPECT_EQ(spell.key(a).match_count, 2u);
}

TEST(Spell, Fig3StartingStoppingMerge) {
  // The paper's Fig. 3: "Starting ..." and "Stopping ..." merge into the
  // log key "* MapTask metrics system".
  Spell spell;
  const int a = spell.consume("Starting MapTask metrics system");
  const int b = spell.consume("Stopping MapTask metrics system");
  EXPECT_EQ(a, b);
  EXPECT_EQ(spell.key(a).to_string(), "* MapTask metrics system");
}

TEST(Spell, DistinctTemplatesGetDistinctKeys) {
  Spell spell;
  const int a = spell.consume("Registering BlockManager bm_01");
  const int b = spell.consume("Shutdown hook called");
  const int c = spell.consume("Created local directory at /tmp/spark-1");
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_EQ(spell.size(), 3u);
}

TEST(Spell, WordVariableCollapsesOnMerge) {
  // One variable word out of a long constant context merges and is starred.
  Spell spell;
  const int a = spell.consume("Task attempt attempt_1 transitioned from state ASSIGNED today");
  const int b = spell.consume("Task attempt attempt_1 transitioned from state RUNNING today");
  EXPECT_EQ(a, b);
  const std::string key = spell.key(a).to_string();
  EXPECT_NE(key.find("transitioned from state *"), std::string::npos);
}

TEST(Spell, TooManyVariableWordsSplitKeys) {
  // Two of five constant words changing drops LCS below the t=1.7 bar, so
  // Spell keeps separate keys — each (from, to) pair is its own key.
  Spell spell;
  const int a = spell.consume("Job job_01 transitioned from INIT to SETUP");
  const int b = spell.consume("Job job_01 transitioned from SETUP to RUNNING");
  EXPECT_NE(a, b);
  EXPECT_EQ(spell.size(), 2u);
}

TEST(Spell, MatchIsConstAndFindsTrainedKeys) {
  Spell spell;
  const int a = spell.consume("Got assigned task 12");
  EXPECT_EQ(spell.match("Got assigned task 999"), a);
  EXPECT_EQ(spell.size(), 1u);  // match never creates
}

TEST(Spell, MatchReturnsMinusOneForNovelMessage) {
  Spell spell;
  spell.consume("Got assigned task 12");
  spell.consume("Registering BlockManager bm_2");
  EXPECT_EQ(spell.match("Failed to connect to host9:7337"), -1);
  EXPECT_EQ(spell.match(""), -1);
}

TEST(Spell, ThresholdControlsMatching) {
  // With a strict threshold (t=1), only exact constant matches merge.
  Spell strict(1.0);
  const int a = strict.consume("alpha beta gamma delta");
  const int b = strict.consume("alpha beta gamma epsilon");
  EXPECT_NE(a, b);
  // Default 1.7 merges them (LCS 3 >= 4/1.7).
  Spell loose(1.7);
  const int c = loose.consume("alpha beta gamma delta");
  const int d = loose.consume("alpha beta gamma epsilon");
  EXPECT_EQ(c, d);
}

TEST(Spell, EmptyMessageIgnored) {
  Spell spell;
  EXPECT_EQ(spell.consume(""), -1);
  EXPECT_EQ(spell.size(), 0u);
}

TEST(Spell, ConstantsExcludeStars) {
  Spell spell;
  spell.consume("freed by fetcher # 1 in 4ms");
  const auto consts = spell.key(0).constants();
  for (const auto& c : consts) EXPECT_NE(c, "*");
  EXPECT_EQ(consts.size(), 5u);  // freed by fetcher # in
}

TEST(Spell, KeyCountStableUnderRepetition) {
  Spell spell;
  intellog::common::Rng rng(3);
  for (int round = 0; round < 50; ++round) {
    spell.consume("Got assigned task " + std::to_string(rng.uniform(1000)));
    spell.consume("Running task " + std::to_string(rng.uniform(10)) + ".0 in stage 0.0 (TID " +
                  std::to_string(rng.uniform(1000)) + ")");
    spell.consume("Shutdown hook called");
  }
  EXPECT_EQ(spell.size(), 3u);
}

TEST(Spell, RefineThenMatchStaysConsistent) {
  // Regression: refine_key changes a key's tokens; previously-cached shapes
  // and the rebuilt constants cache must keep routing to the same key id.
  Spell spell;
  const int a = spell.consume("Starting MapTask metrics system");
  // Seen again -> shape cache now holds the original shape.
  EXPECT_EQ(spell.consume("Starting MapTask metrics system"), a);
  // Refines the key to "* MapTask metrics system".
  const int b = spell.consume("Stopping MapTask metrics system");
  EXPECT_EQ(b, a);
  EXPECT_EQ(spell.key(a).to_string(), "* MapTask metrics system");
  // Both pre-refine shapes and the refined canonical form must match.
  EXPECT_EQ(spell.match("Starting MapTask metrics system"), a);
  EXPECT_EQ(spell.match("Stopping MapTask metrics system"), a);
  EXPECT_EQ(spell.match("Restarted MapTask metrics system"), a);
  // The cached constant ids were rebuilt to the refined constants.
  EXPECT_EQ(spell.key_constant_ids(a).size(), 3u);  // MapTask metrics system
}

TEST(Spell, MatchMemoizesUnseenShapesOfKnownKeys) {
  Spell spell;
  const int a = spell.consume("Task attempt attempt_1 transitioned from state ASSIGNED now");
  spell.consume("Task attempt attempt_1 transitioned from state RUNNING now");
  // "KILLED" produces a shape never consumed -> first match runs the LCS
  // search, then the verdict is memoized.
  EXPECT_EQ(spell.match_cache_size(), 0u);
  const int m1 = spell.match("Task attempt attempt_9 transitioned from state KILLED now");
  EXPECT_EQ(m1, a);
  EXPECT_EQ(spell.match_cache_size(), 1u);
  const int m2 = spell.match("Task attempt attempt_7 transitioned from state KILLED now");
  EXPECT_EQ(m2, m1);
  EXPECT_EQ(spell.match_cache_size(), 1u);  // same shape -> memo hit
  // Misses are memoized too.
  EXPECT_EQ(spell.match("completely unrelated gibberish line"), -1);
  EXPECT_EQ(spell.match("completely unrelated gibberish line"), -1);
  EXPECT_EQ(spell.match_cache_size(), 2u);
  EXPECT_EQ(spell.size(), 1u);  // match never creates keys
}

TEST(Spell, ConsumeInvalidatesMatchMemo) {
  Spell spell;
  spell.consume("alpha beta gamma delta epsilon");
  EXPECT_EQ(spell.match("zeta eta theta iota kappa"), -1);
  EXPECT_EQ(spell.match_cache_size(), 1u);
  // A new key that matches the previously-missed shape must flush the memo.
  const int k = spell.consume("zeta eta theta iota kappa");
  EXPECT_EQ(spell.match("zeta eta theta iota kappa"), k);
}

// Property: consuming the same message stream twice yields identical ids.
class SpellStability : public ::testing::TestWithParam<int> {};

TEST_P(SpellStability, RepeatedConsumeIsIdempotent) {
  Spell spell;
  intellog::common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<std::string> messages;
  static const char* kTemplates[] = {
      "Got assigned task %", "Registering BlockManager bm_%",
      "read % bytes from map-output for attempt_%", "Shutdown hook called",
      "Created local directory at /tmp/spark-%"};
  for (int i = 0; i < 30; ++i) {
    std::string m = kTemplates[rng.uniform(5)];
    const auto pos = m.find('%');
    if (pos != std::string::npos) m.replace(pos, 1, std::to_string(rng.uniform(100000)));
    messages.push_back(std::move(m));
  }
  std::vector<int> first, second;
  for (const auto& m : messages) first.push_back(spell.consume(m));
  for (const auto& m : messages) second.push_back(spell.consume(m));
  EXPECT_EQ(first, second);
  EXPECT_LE(spell.size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpellStability, ::testing::Range(0, 10));
