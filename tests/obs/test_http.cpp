// Embedded HTTP admin server: parsing units, request/response round trips,
// hardening paths (404/405/400/408/431), graceful stop, and the tentpole
// concurrency contract — N clients scraping /metrics and /status.json while
// a detect stream is consuming must always see complete, parseable answers.
#include "obs/http/http.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "core/online.hpp"
#include "obs/export/status.hpp"
#include "obs/http/admin.hpp"
#include "obs/metrics.hpp"
#include "simsys/workload.hpp"

using namespace intellog;
using namespace intellog::obs::http;

namespace {

/// Raw-socket client for the paths http_get cannot exercise (bad methods,
/// malformed request lines, slowloris). Sends `bytes` verbatim and returns
/// everything the server answers before closing.
std::string raw_request(std::uint16_t port, const std::string& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

int status_of(const std::string& response) {
  // "HTTP/1.1 NNN ..."
  if (response.size() < 12 || response.compare(0, 9, "HTTP/1.1 ") != 0) return -1;
  return std::stoi(response.substr(9, 3));
}

/// Every non-comment exposition line must be `series value` (optionally
/// with an OpenMetrics exemplar suffix) — the torn-snapshot check the
/// concurrent scrape test runs on every response.
bool exposition_well_formed(const std::string& text) {
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) return false;  // must end with a newline
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) return false;  // registry never emits blank lines
    if (line[0] == '#') continue;    // HELP/TYPE
    if (const std::size_t ex = line.find(" # {"); ex != std::string::npos) {
      line = line.substr(0, ex);  // validate the sample part
    }
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp + 1 >= line.size()) return false;
    try {
      (void)std::stod(line.substr(sp + 1));
    } catch (const std::exception&) {
      return false;
    }
  }
  return true;
}

std::vector<logparse::Session> corpus(int jobs, std::uint64_t seed) {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", seed);
  std::vector<logparse::Session> out;
  for (int i = 0; i < jobs; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

TEST(SplitHostPort, ParsesHostAndPort) {
  const auto [host, port] = split_host_port("127.0.0.1:8080");
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  EXPECT_EQ(split_host_port("localhost:0").second, 0);  // ephemeral request
}

TEST(SplitHostPort, RejectsMissingOrInvalidPort) {
  EXPECT_THROW(split_host_port("127.0.0.1"), std::runtime_error);
  EXPECT_THROW(split_host_port("127.0.0.1:"), std::runtime_error);
  EXPECT_THROW(split_host_port("127.0.0.1:http"), std::runtime_error);
  EXPECT_THROW(split_host_port("127.0.0.1:70000"), std::runtime_error);
  EXPECT_THROW(split_host_port(""), std::runtime_error);
}

TEST(ParseQuery, SplitsPairs) {
  const auto q = parse_query("seconds=3&verbose=1");
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q.at("seconds"), "3");
  EXPECT_EQ(q.at("verbose"), "1");
  EXPECT_TRUE(parse_query("").empty());
  EXPECT_EQ(parse_query("flag").count("flag"), 1u);  // bare key, empty value
}

TEST(HttpServer, RoundTripsAGet) {
  HttpServer server;
  server.handle("/hello", [](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = "hi " + req.query + "\n";
    return resp;
  });
  server.start();
  ASSERT_NE(server.port(), 0);

  const auto got = http_get("127.0.0.1", server.port(), "/hello?who=there");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 200);
  EXPECT_EQ(got->body, "hi who=there\n");
  EXPECT_NE(got->content_type.find("text/plain"), std::string::npos);
  server.stop();
}

TEST(HttpServer, UnknownPathIs404AndBadMethodIs405) {
  HttpServer server;
  server.handle("/only", [](const HttpRequest&) { return HttpResponse{}; });
  server.start();

  const auto miss = http_get("127.0.0.1", server.port(), "/nope");
  ASSERT_TRUE(miss.has_value());
  EXPECT_EQ(miss->status, 404);

  EXPECT_EQ(status_of(raw_request(server.port(),
                                  "POST /only HTTP/1.1\r\nHost: x\r\n\r\n")),
            405);
  EXPECT_EQ(status_of(raw_request(server.port(), "BROKEN\r\n\r\n")), 400);
  server.stop();
}

TEST(HttpServer, HeadReturnsHeadersWithoutBody) {
  HttpServer server;
  server.handle("/data", [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "0123456789";
    return resp;
  });
  server.start();
  const std::string resp =
      raw_request(server.port(), "HEAD /data HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(status_of(resp), 200);
  EXPECT_NE(resp.find("Content-Length: 10"), std::string::npos);
  const std::size_t head_end = resp.find("\r\n\r\n");
  ASSERT_NE(head_end, std::string::npos);
  EXPECT_EQ(resp.substr(head_end + 4), "");  // no body after the headers
  server.stop();
}

TEST(HttpServer, OversizeHeadersGet431AndSlowlorisGets408) {
  HttpServer::Options opts;
  opts.read_timeout_ms = 200;
  opts.max_request_bytes = 512;
  HttpServer server(opts);
  server.handle("/", [](const HttpRequest&) { return HttpResponse{}; });
  server.start();

  const std::string huge =
      "GET / HTTP/1.1\r\nX-Pad: " + std::string(4096, 'a') + "\r\n\r\n";
  EXPECT_EQ(status_of(raw_request(server.port(), huge)), 431);

  // Trickle half a request line and stop: the wall-clock deadline answers.
  EXPECT_EQ(status_of(raw_request(server.port(), "GET / HT")), 408);
  server.stop();
}

TEST(HttpServer, StopRefusesNewConnectionsAndIsIdempotent) {
  HttpServer server;
  server.handle("/", [](const HttpRequest&) { return HttpResponse{}; });
  server.start();
  const std::uint16_t port = server.port();
  ASSERT_TRUE(http_get("127.0.0.1", port, "/").has_value());
  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(http_get("127.0.0.1", port, "/", /*timeout_ms=*/500).has_value());
}

TEST(AdminPlane, HealthAndReadinessFollowTheBoard) {
  StatusBoard board;
  HttpServer server;
  mount_admin_plane(server, board);
  server.start();

  const auto health = http_get("127.0.0.1", server.port(), "/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "ok\n");

  Readiness degraded;
  degraded.ready = false;
  degraded.reasons.push_back("breaker open: acme");
  board.publish(common::Json::object(), degraded);
  auto ready = http_get("127.0.0.1", server.port(), "/readyz");
  ASSERT_TRUE(ready.has_value());
  EXPECT_EQ(ready->status, 503);
  common::Json doc = common::Json::parse(ready->body);
  EXPECT_FALSE(doc["ready"].as_bool());
  EXPECT_EQ(doc["reasons"].as_array().size(), 1u);

  board.publish(common::Json::object(), Readiness{});
  ready = http_get("127.0.0.1", server.port(), "/readyz");
  ASSERT_TRUE(ready.has_value());
  EXPECT_EQ(ready->status, 200);
  EXPECT_TRUE(common::Json::parse(ready->body)["ready"].as_bool());
  server.stop();
}

TEST(AdminPlane, StatusTenantsAndAlertsServeTheLastPublishedDocument) {
  StatusBoard board;
  common::Json doc = common::Json::object();
  doc["kind"] = "intellog_status";
  common::Json tenants = common::Json::array();
  common::Json t = common::Json::object();
  t["tenant"] = "acme";
  tenants.push_back(std::move(t));
  doc["tenants"] = std::move(tenants);
  doc["alerts"] = common::Json::array();
  board.publish(doc, Readiness{});

  HttpServer server;
  mount_admin_plane(server, board);
  server.start();

  const auto status = http_get("127.0.0.1", server.port(), "/status.json");
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->status, 200);
  EXPECT_NE(status->content_type.find("application/json"), std::string::npos);
  EXPECT_EQ(common::Json::parse(status->body)["kind"].as_string(), "intellog_status");

  const auto ten = http_get("127.0.0.1", server.port(), "/tenants");
  ASSERT_TRUE(ten.has_value());
  const common::Json rows = common::Json::parse(ten->body);
  ASSERT_TRUE(rows.is_array());
  ASSERT_EQ(rows.as_array().size(), 1u);
  EXPECT_EQ(rows.as_array()[0]["tenant"].as_string(), "acme");

  const auto alerts = http_get("127.0.0.1", server.port(), "/alerts");
  ASSERT_TRUE(alerts.has_value());
  EXPECT_TRUE(common::Json::parse(alerts->body).is_array());
  server.stop();
}

TEST(AdminPlane, MetricsServesThePrometheusExposition) {
  obs::MetricsRegistry reg;
  obs::set_registry(&reg);
  reg.describe("intellog_test_requests_total", "test counter");
  reg.counter("intellog_test_requests_total", {{"tenant", "acme"}}).add(3);
  reg.histogram("intellog_test_latency_ms").observe(2.5, "session-9");

  StatusBoard board;
  HttpServer server;
  mount_admin_plane(server, board);
  server.start();
  const auto got = http_get("127.0.0.1", server.port(), "/metrics");
  obs::set_registry(nullptr);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 200);
  EXPECT_NE(got->content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(got->body.find("intellog_test_requests_total{tenant=\"acme\"} 3"),
            std::string::npos);
  // The exemplar suffix ties the bucket back to the session.
  EXPECT_NE(got->body.find("# {session=\"session-9\"} 2.5"), std::string::npos);
  EXPECT_TRUE(exposition_well_formed(got->body));
  server.stop();
}

// The tentpole concurrency contract: scrapes during a live detect stream
// are always complete and parseable — no torn exposition, no torn JSON, no
// 5xx — while the consume loop keeps mutating every metric being read.
TEST(AdminPlane, ConcurrentScrapesDuringDetectStayWellFormed) {
  core::IntelLog model;
  model.train(corpus(8, 31));

  obs::MetricsRegistry reg;
  obs::set_registry(&reg);
  StatusBoard board;
  HttpServer server;
  mount_admin_plane(server, board);
  server.start();
  const std::uint16_t port = server.port();

  std::atomic<bool> stop{false};
  std::atomic<int> scrapes{0};
  std::string failure;
  std::mutex failure_mu;
  const auto fail = [&](const std::string& why) {
    std::lock_guard lock(failure_mu);
    if (failure.empty()) failure = why;
    stop.store(true);
  };

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      while (!stop.load()) {
        const bool metrics = (c + scrapes.load()) % 2 == 0;
        const auto got =
            http_get("127.0.0.1", port, metrics ? "/metrics" : "/status.json");
        if (!got) {
          fail("transport failure mid-run");
          return;
        }
        if (got->status != 200) {
          fail("non-200 during detect: " + std::to_string(got->status));
          return;
        }
        if (metrics) {
          if (!exposition_well_formed(got->body)) {
            fail("torn /metrics exposition");
            return;
          }
        } else {
          try {
            (void)common::Json::parse(got->body);
          } catch (const std::exception& e) {
            fail(std::string("torn /status.json: ") + e.what());
            return;
          }
        }
        ++scrapes;
      }
    });
  }

  // Drive the detect stream on this thread, publishing the board the same
  // way a daemon flush would, until every client has seen plenty of scrapes.
  core::OnlineDetector online(model, 1);
  simsys::ClusterSpec cluster;
  std::uint64_t seed = 100;
  while (!stop.load() && scrapes.load() < 200) {
    simsys::WorkloadGenerator gen("spark", seed++);
    const simsys::JobResult job = simsys::run_job(gen.detection_job(1), cluster);
    for (const auto& s : job.sessions) {
      for (const auto& rec : s.records) online.consume(rec, /*ingress=*/seed);
    }
    (void)online.close_all();
    (void)online.take_closed_ingress();
    obs::StatusContext ctx;
    ctx.detector = &online;
    ctx.registry = &reg;
    board.publish(obs::build_status(ctx), Readiness{});
  }
  stop.store(true);
  for (auto& t : clients) t.join();
  server.stop();
  obs::set_registry(nullptr);

  EXPECT_TRUE(failure.empty()) << failure;
  EXPECT_GE(scrapes.load(), 200);
  EXPECT_GE(server.requests_served(), static_cast<std::uint64_t>(scrapes.load()));
}

TEST(SplitHostPort, ParsesBracketedIpv6) {
  const auto [host, port] = split_host_port("[::1]:8080");
  EXPECT_EQ(host, "::1");
  EXPECT_EQ(port, 8080);
  const auto [host2, port2] = split_host_port("[fe80::1%eth0]:0");
  EXPECT_EQ(host2, "fe80::1%eth0");
  EXPECT_EQ(port2, 0);
}

TEST(SplitHostPort, RejectsMalformedBrackets) {
  EXPECT_THROW(split_host_port("[::1]"), std::runtime_error);      // no port
  EXPECT_THROW(split_host_port("[::1]:"), std::runtime_error);     // empty port
  EXPECT_THROW(split_host_port("[]:80"), std::runtime_error);      // empty host
  EXPECT_THROW(split_host_port("[::1"), std::runtime_error);       // unclosed
  EXPECT_THROW(split_host_port("[::1]8080"), std::runtime_error);  // no colon
  EXPECT_THROW(split_host_port("[::1]:http"), std::runtime_error);
}

TEST(HttpGet, ConnectionRefusedReturnsNullopt) {
  // Bind an ephemeral port to learn a number nothing listens on, then
  // close it before fetching.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);

  EXPECT_FALSE(http_get("127.0.0.1", port, "/anything", /*timeout_ms=*/1000).has_value());
}

TEST(HttpGet, UnresponsiveServerTimesOutWithinTheDeadline) {
  // A raw listening socket that accepts (kernel backlog) but never
  // answers: the fetch must give up at the deadline instead of hanging.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  const auto t0 = std::chrono::steady_clock::now();
  const auto got = http_get("127.0.0.1", ntohs(addr.sin_port), "/x", /*timeout_ms=*/300);
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() - t0);
  EXPECT_FALSE(got.has_value());
  EXPECT_LT(elapsed.count(), 5000) << "deadline must bound the wait";
  ::close(fd);
}

TEST(HttpGet, TruncatedStatusLineReturnsNullopt) {
  // A one-shot server that sends half a status line and hangs up.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  std::thread server([fd] {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) return;
    char buf[1024];
    (void)::recv(conn, buf, sizeof(buf), 0);  // drain the request
    const char half[] = "HTTP/1.1 20";
    (void)::send(conn, half, sizeof(half) - 1, 0);
    ::close(conn);
  });

  EXPECT_FALSE(http_get("127.0.0.1", ntohs(addr.sin_port), "/x", /*timeout_ms=*/2000)
                   .has_value());
  server.join();
  ::close(fd);
}

TEST(HttpGet, OversizedBodyReturnsNullopt) {
  HttpServer server;
  server.handle("/big", [](const HttpRequest&) {
    HttpResponse resp;
    resp.body.assign(64 * 1024, 'x');
    return resp;
  });
  server.start();

  EXPECT_FALSE(http_get("127.0.0.1", server.port(), "/big", /*timeout_ms=*/5000,
                        /*max_body_bytes=*/1024)
                   .has_value());
  // Same response under the default cap round-trips fine.
  const auto ok = http_get("127.0.0.1", server.port(), "/big");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->body.size(), 64u * 1024u);
  server.stop();
}

// Satellite contract: concurrent /profilez capture requests serialize on a
// try-lock — the loser gets 409 Conflict with a JSON body immediately
// instead of stacking a second sampling run (or blocking the worker).
TEST(AdminPlane, ConcurrentProfilezLoserGets409WithJsonBody) {
  StatusBoard board;
  HttpServer server;
  mount_admin_plane(server, board);
  server.start();
  const std::uint16_t port = server.port();

  std::optional<FetchResult> winner;
  std::thread holder([&] {
    winner = http_get("127.0.0.1", port, "/profilez?seconds=2", /*timeout_ms=*/15000);
  });
  // Give the holder time to take the profiler lock, then contend.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto loser = http_get("127.0.0.1", port, "/profilez?seconds=1", /*timeout_ms=*/15000);
  holder.join();
  server.stop();

  ASSERT_TRUE(winner.has_value());
  EXPECT_EQ(winner->status, 200);
  ASSERT_TRUE(loser.has_value());
  EXPECT_EQ(loser->status, 409);
  EXPECT_NE(loser->content_type.find("application/json"), std::string::npos);
  const auto doc = common::Json::parse(loser->body);
  EXPECT_EQ(doc["error"].as_string(), "conflict");
  EXPECT_FALSE(doc["detail"].as_string().empty());
}
