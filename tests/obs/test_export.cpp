// Workflow Observatory exporters: HW-graph instances as Chrome/OTLP span
// trees, plus status snapshots and their atomic publication.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/intellog.hpp"
#include "core/online.hpp"
#include "obs/export/status.hpp"
#include "obs/export/trace_export.hpp"
#include "obs/metrics.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

namespace {

std::vector<logparse::Session> training_corpus(int jobs, std::uint64_t seed) {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", seed);
  std::vector<logparse::Session> out;
  for (int i = 0; i < jobs; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) out.push_back(std::move(s));
  }
  return out;
}

bool is_hex(const std::string& s) {
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isxdigit(c) != 0; });
}

}  // namespace

class TraceExportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    il = new core::IntelLog();
    il->train(training_corpus(20, 321));
    simsys::ClusterSpec cluster;
    simsys::WorkloadGenerator gen("spark", 654);
    sessions = new std::vector<logparse::Session>(
        simsys::run_job(gen.detection_job(1), cluster).sessions);
  }
  static void TearDownTestSuite() {
    delete il;
    delete sessions;
    il = nullptr;
    sessions = nullptr;
  }
  static core::IntelLog* il;
  static std::vector<logparse::Session>* sessions;
};

core::IntelLog* TraceExportTest::il = nullptr;
std::vector<logparse::Session>* TraceExportTest::sessions = nullptr;

TEST_F(TraceExportTest, ChromeTraceIsValidAndSpansEveryGroup) {
  const common::Json doc = obs::hwgraph_chrome_trace(*il, *sessions);
  // The dump round-trips through the strict parser.
  const common::Json parsed = common::Json::parse(doc.dump(2));
  EXPECT_EQ(parsed["displayTimeUnit"].as_string(), "ms");
  const auto& events = parsed["traceEvents"].as_array();
  ASSERT_FALSE(events.empty());

  std::set<std::int64_t> pids;
  std::map<std::pair<std::int64_t, std::int64_t>, std::string> track_names;
  // (pid, tid) -> entity-group complete spans on that track.
  std::map<std::pair<std::int64_t, std::int64_t>, int> group_spans;
  std::int64_t min_ts = -1;
  bool saw_instant = false, saw_subroutine = false;
  for (const auto& e : events) {
    const std::string ph = e["ph"].as_string();
    const auto pid = e["pid"].as_int();
    const auto tid = e["tid"].as_int();
    pids.insert(pid);
    if (ph == "M") {
      if (e["name"].as_string() == "thread_name") {
        track_names[{pid, tid}] = e["args"]["name"].as_string();
      }
      continue;
    }
    ASSERT_TRUE(e["ts"].is_number());
    const auto ts = e["ts"].as_int();
    if (min_ts < 0 || ts < min_ts) min_ts = ts;
    if (ph == "X") {
      EXPECT_TRUE(e["dur"].is_number());
      EXPECT_GE(e["dur"].as_int(), 1);  // Perfetto hides zero-width spans
      const std::string name = e["name"].as_string();
      if (name.rfind("sub ", 0) == 0) {
        saw_subroutine = true;
      } else {
        ++group_spans[{pid, tid}];
      }
    } else if (ph == "i") {
      saw_instant = true;
    } else {
      FAIL() << "unexpected phase " << ph;
    }
  }
  // One process per session, timestamps rebased to the earliest record.
  EXPECT_EQ(pids.size(), sessions->size());
  EXPECT_EQ(min_ts, 0);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_subroutine);
  // Every named entity-group track carries at least one lifespan span.
  ASSERT_FALSE(track_names.empty());
  for (const auto& [track, name] : track_names) {
    EXPECT_GE(group_spans[track], 1) << "no lifespan span on track " << name;
  }
}

TEST_F(TraceExportTest, ChromeSubroutineSpansNestInsideTheirGroupSpan) {
  const common::Json doc = obs::hwgraph_chrome_trace(*il, *sessions);
  // Per (pid, tid): the group lifespan must enclose every subroutine span.
  struct SpanRange {
    std::int64_t lo = 0, hi = 0;
    bool set = false;
  };
  std::map<std::pair<std::int64_t, std::int64_t>, SpanRange> group_range;
  const auto& events = doc["traceEvents"].as_array();
  for (const auto& e : events) {
    if (e["ph"].as_string() != "X") continue;
    if (e["name"].as_string().rfind("sub ", 0) == 0) continue;
    auto& r = group_range[{e["pid"].as_int(), e["tid"].as_int()}];
    const auto lo = e["ts"].as_int(), hi = lo + e["dur"].as_int();
    r.lo = r.set ? std::min(r.lo, lo) : lo;
    r.hi = r.set ? std::max(r.hi, hi) : hi;
    r.set = true;
  }
  std::size_t checked = 0;
  for (const auto& e : events) {
    if (e["ph"].as_string() != "X" || e["name"].as_string().rfind("sub ", 0) != 0) continue;
    const auto& r = group_range[{e["pid"].as_int(), e["tid"].as_int()}];
    ASSERT_TRUE(r.set);
    EXPECT_GE(e["ts"].as_int(), r.lo);
    // Sub-ms spans are widened to the 1µs minimum, so allow that slack.
    EXPECT_LE(e["ts"].as_int() + e["dur"].as_int(), r.hi + 1);
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(TraceExportTest, OtlpDocumentHasWellFormedIdsAndParents) {
  const common::Json doc = obs::hwgraph_otlp_json(*il, *sessions);
  const auto& resource_spans = doc["resourceSpans"].as_array();
  ASSERT_EQ(resource_spans.size(), sessions->size());
  for (const auto& rs : resource_spans) {
    std::set<std::string> span_ids, trace_ids;
    std::vector<std::string> parent_ids;
    for (const auto& ss : rs["scopeSpans"].as_array()) {
      for (const auto& sp : ss["spans"].as_array()) {
        const std::string trace_id = sp["traceId"].as_string();
        const std::string span_id = sp["spanId"].as_string();
        EXPECT_EQ(trace_id.size(), 32u);
        EXPECT_TRUE(is_hex(trace_id));
        EXPECT_EQ(span_id.size(), 16u);
        EXPECT_TRUE(is_hex(span_id));
        EXPECT_TRUE(span_ids.insert(span_id).second) << "duplicate spanId " << span_id;
        trace_ids.insert(trace_id);
        if (sp["parentSpanId"].is_string()) {
          parent_ids.push_back(sp["parentSpanId"].as_string());
        }
        // Nanosecond timestamps are strings (OTLP JSON encoding of int64).
        EXPECT_TRUE(sp["startTimeUnixNano"].is_string());
        EXPECT_TRUE(sp["endTimeUnixNano"].is_string());
        EXPECT_LT(std::stoull(sp["startTimeUnixNano"].as_string()),
                  std::stoull(sp["endTimeUnixNano"].as_string()));
      }
    }
    // One trace per session; every parent reference resolves in-session.
    EXPECT_EQ(trace_ids.size(), 1u);
    EXPECT_FALSE(parent_ids.empty());
    for (const auto& pid : parent_ids) EXPECT_TRUE(span_ids.count(pid)) << pid;
  }
}

TEST_F(TraceExportTest, ExportsAreDeterministic) {
  EXPECT_EQ(obs::hwgraph_chrome_trace(*il, *sessions).dump(),
            obs::hwgraph_chrome_trace(*il, *sessions).dump());
  EXPECT_EQ(obs::hwgraph_otlp_json(*il, *sessions).dump(),
            obs::hwgraph_otlp_json(*il, *sessions).dump());
}

TEST_F(TraceExportTest, EmptySessionListYieldsEmptyDocuments) {
  const std::vector<logparse::Session> none;
  const common::Json chrome = obs::hwgraph_chrome_trace(*il, none);
  EXPECT_TRUE(chrome["traceEvents"].as_array().empty());
  const common::Json otlp = obs::hwgraph_otlp_json(*il, none);
  EXPECT_TRUE(otlp["resourceSpans"].as_array().empty());
}

TEST_F(TraceExportTest, StatusSnapshotReflectsDetectorAndRegistry) {
  obs::MetricsRegistry reg;
  obs::set_registry(&reg);
  core::OnlineDetector online(*il);
  for (const auto& s : *sessions) {
    for (const auto& rec : s.records) online.consume(rec);
  }
  obs::set_registry(nullptr);

  obs::StatusContext ctx;
  ctx.detector = &online;
  ctx.registry = &reg;
  ctx.checkpoint_path = "/tmp/cp.json";
  ctx.checkpoint_age_s = 1.5;
  const common::Json status = obs::build_status(ctx);
  EXPECT_EQ(status["kind"].as_string(), "intellog_status");
  EXPECT_EQ(status["sessions"].size(), sessions->size());
  EXPECT_EQ(static_cast<std::size_t>(status["occupancy"]["open_sessions"].as_int()),
            sessions->size());
  EXPECT_GT(status["occupancy"]["buffered_records"].as_int(), 0);
  EXPECT_EQ(status["checkpoint"]["path"].as_string(), "/tmp/cp.json");
  EXPECT_DOUBLE_EQ(status["checkpoint"]["age_s"].as_double(), 1.5);
  // The consume histogram made it in, with at least one exemplar naming a
  // live session.
  ASSERT_TRUE(status["consume_latency_us"].is_object());
  EXPECT_GT(status["consume_latency_us"]["count"].as_int(), 0);
  bool exemplar_found = false;
  std::set<std::string> live;
  for (const auto& s : status["sessions"].as_array()) live.insert(s["container"].as_string());
  for (const auto& b : status["consume_latency_us"]["buckets"].as_array()) {
    if (!b["exemplar"].is_object()) continue;
    exemplar_found = true;
    EXPECT_TRUE(live.count(b["exemplar"]["session"].as_string()));
  }
  EXPECT_TRUE(exemplar_found);

  // The top renderer accepts it and shows the occupancy headline.
  const std::string top = obs::render_top(status);
  EXPECT_NE(top.find("open session"), std::string::npos);
  EXPECT_NE(top.find("checkpoint: /tmp/cp.json"), std::string::npos);
  online.close_all();
}

TEST(StatusExport, BuildStatusWithNullSourcesIsMinimal) {
  const common::Json status = obs::build_status(obs::StatusContext{});
  EXPECT_EQ(status["kind"].as_string(), "intellog_status");
  EXPECT_TRUE(status["sessions"].as_array().empty());
  EXPECT_TRUE(status["occupancy"].is_null());
  EXPECT_TRUE(status["checkpoint"].is_null());
}

TEST(StatusExport, RenderTopRejectsNonStatusDocuments) {
  EXPECT_THROW(obs::render_top(common::Json::object()), std::runtime_error);
  EXPECT_THROW(obs::render_top(common::Json("x")), std::runtime_error);
}

TEST(StatusExport, SnapshotsCarryTheSchemaVersion) {
  const common::Json status = obs::build_status(obs::StatusContext{});
  ASSERT_TRUE(status["schema_version"].is_number());
  EXPECT_EQ(status["schema_version"].as_int(), obs::kStatusSchemaVersion);
}

TEST(StatusExport, RenderTopWarnsButRendersUnknownSchemaVersions) {
  common::Json status = obs::build_status(obs::StatusContext{});
  status["schema_version"] = obs::kStatusSchemaVersion + 41;
  std::string top;
  ASSERT_NO_THROW(top = obs::render_top(status));  // warn, never crash
  EXPECT_NE(top.find("warning"), std::string::npos);
  EXPECT_NE(top.find(std::to_string(obs::kStatusSchemaVersion + 41)), std::string::npos);
  EXPECT_NE(top.find("open session"), std::string::npos);  // still rendered

  // Current version (and legacy documents without the field): no warning.
  EXPECT_EQ(obs::render_top(obs::build_status(obs::StatusContext{})).find("warning"),
            std::string::npos);
  common::Json legacy = obs::build_status(obs::StatusContext{});
  legacy.as_object().erase("schema_version");
  EXPECT_EQ(obs::render_top(legacy).find("warning"), std::string::npos);
}

TEST(StatusExport, AlertsLandInStatusAndTop) {
  obs::ts::AlertRule rule;
  rule.name = "test-rule";
  rule.series = "c{}";
  rule.kind = obs::ts::AlertRule::Kind::RateAbove;
  rule.threshold = 1.0;
  obs::ts::AlertEngine engine({rule});
  obs::ts::TimeSeriesStore store;
  store.push("c{}", 1000, 0);
  store.push("c{}", 2000, 100);
  engine.evaluate(store, 2000);

  obs::StatusContext ctx;
  ctx.alerts = &engine;
  const common::Json status = obs::build_status(ctx);
  ASSERT_TRUE(status["alerts"].is_array());
  ASSERT_EQ(status["alerts"].as_array().size(), 1u);
  EXPECT_TRUE(status["alerts"].as_array()[0]["firing"].as_bool());

  const std::string top = obs::render_top(status);
  EXPECT_NE(top.find("alerts: 1 firing"), std::string::npos);
  EXPECT_NE(top.find("FIRING test-rule"), std::string::npos);
}

TEST(StatusExport, WriteJsonAtomicLeavesNoTempFile) {
  const auto dir = std::filesystem::temp_directory_path() / "intellog_status_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "status.json").string();
  common::Json doc = common::Json::object();
  doc["kind"] = "intellog_status";
  obs::write_json_atomic(doc, path);
  // Overwrite: the reader sees old-or-new, and no .tmp survives.
  doc["generation"] = 2;
  obs::write_json_atomic(doc, path);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const common::Json back = common::Json::parse(text);
  EXPECT_EQ(back["generation"].as_int(), 2);
  std::filesystem::remove_all(dir);
}
