// Flight recorder: enable/disable lifecycle, interning, dump/decode
// round-trips, rotation, per-thread ordering, and the decoder's rejection
// of damaged files.
#include "obs/flight/flight.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/export/trace_export.hpp"

namespace {

namespace fs = std::filesystem;
using namespace intellog::obs::flight;

std::string tmp_path(const char* name) {
  return (fs::temp_directory_path() /
          (std::string("intellog_flight_") + name + "." + std::to_string(::getpid())))
      .string();
}

// The recorder is process-global; every test starts from a clean slate.
struct FlightTest : ::testing::Test {
  void SetUp() override { flight_disable(); }
  void TearDown() override { flight_disable(); }
};

TEST_F(FlightTest, DisabledEmitIsANoOpAndInternReturnsNone) {
  ASSERT_FALSE(flight_enabled());
  FLIGHT_EVENT(kTenantTick, 1, 2);  // must not crash or allocate state
  EXPECT_EQ(flight_intern("tenant-a"), 0u);
  const auto snap = flight_snapshot_json();
  EXPECT_FALSE(snap["enabled"].as_bool());
}

TEST_F(FlightTest, EnableEmitSnapshotRoundTrip) {
  flight_enable();
  ASSERT_TRUE(flight_enabled());
  const std::uint32_t sid = flight_intern("acme");
  ASSERT_NE(sid, 0u);
  EXPECT_EQ(flight_intern("acme"), sid) << "interning must dedup";

  FLIGHT_EVENT(kDetectShardBegin, 3, 17);
  FLIGHT_EVENT_STR(kTenantTick, 7, 1, sid);
  FLIGHT_EVENT(kDetectShardEnd, 3, 17);

  const auto snap = flight_snapshot_json();
  ASSERT_TRUE(snap["enabled"].as_bool());
  const auto& events = snap["events"].as_array();
  // flight.enable is journaled too, so >= 4.
  ASSERT_GE(events.size(), 4u);
  bool saw_tick = false;
  for (const auto& e : events) {
    if (e["event"].as_string() == "tenant.tick") {
      saw_tick = true;
      EXPECT_EQ(e["str"].as_string(), "acme");
      EXPECT_EQ(e["tick"].as_int(), 7);
      EXPECT_EQ(e["epoch"].as_int(), 1);
    }
  }
  EXPECT_TRUE(saw_tick);
}

TEST_F(FlightTest, DumpDecodeRoundTripOrderedAndAnnotated) {
  const std::string path = tmp_path("roundtrip");
  fs::remove(path);
  fs::remove(path + ".1");
  flight_enable();
  const std::uint32_t sid = flight_intern("globex");
  for (std::uint64_t i = 0; i < 100; ++i) FLIGHT_EVENT_STR(kTenantTick, i, 1, sid);
  ASSERT_TRUE(flight_set_dump_path(path));
  ASSERT_GE(flight_dump_fd(), 0);
  ASSERT_TRUE(flight_dump_now(DumpReason::kManual));

  const FlightDump dump = decode_flight_file(path);
  EXPECT_EQ(dump.reason, DumpReason::kManual);
  EXPECT_EQ(dump.signo, 0u);
  EXPECT_EQ(dump.nthreads, 1u);
  // 100 ticks + flight.enable + flight.dump.
  ASSERT_GE(dump.events.size(), 102u);
  std::uint64_t prev_steady = 0;
  std::uint64_t ticks_seen = 0;
  for (const DecodedEvent& e : dump.events) {
    EXPECT_GE(e.steady_ns, prev_steady) << "merged log must be time-ordered";
    prev_steady = e.steady_ns;
    EXPECT_GT(e.wall_ns, 0u);
    if (e.id == FlightEventId::kTenantTick) {
      EXPECT_EQ(e.a, ticks_seen++);
      EXPECT_EQ(e.str, "globex");
    }
  }
  EXPECT_EQ(ticks_seen, 100u);
  fs::remove(path);
}

TEST_F(FlightTest, SetDumpPathRotatesThePriorDump) {
  const std::string path = tmp_path("rotate");
  fs::remove(path);
  fs::remove(path + ".1");
  flight_enable();
  ASSERT_TRUE(flight_set_dump_path(path));
  ASSERT_TRUE(flight_dump_now(DumpReason::kManual));
  ASSERT_TRUE(fs::exists(path));
  const auto first_size = fs::file_size(path);

  // Re-pointing at the same path must move the old dump aside first.
  ASSERT_TRUE(flight_set_dump_path(path));
  ASSERT_TRUE(fs::exists(path + ".1"));
  EXPECT_EQ(fs::file_size(path + ".1"), first_size);
  EXPECT_EQ(fs::file_size(path), 0u) << "fresh blackbox starts empty";
  fs::remove(path);
  fs::remove(path + ".1");
}

TEST_F(FlightTest, ScopedFlightDumpWritesOnDestruction) {
  const std::string path = tmp_path("scoped");
  fs::remove(path);
  fs::remove(path + ".1");
  flight_enable();
  ASSERT_TRUE(flight_set_dump_path(path));
  {
    ScopedFlightDump dump(DumpReason::kWatchdog);
    FLIGHT_EVENT(kWatchdogRestart, 2, 40);
  }
  const FlightDump dump = decode_flight_file(path);
  EXPECT_EQ(dump.reason, DumpReason::kWatchdog);
  bool saw = false;
  for (const DecodedEvent& e : dump.events) {
    saw = saw || e.id == FlightEventId::kWatchdogRestart;
  }
  EXPECT_TRUE(saw);
  fs::remove(path);
}

TEST_F(FlightTest, MultiThreadEventsKeepPerThreadOrder) {
  const std::string path = tmp_path("mt");
  fs::remove(path);
  fs::remove(path + ".1");
  flight_enable();
  ASSERT_TRUE(flight_set_dump_path(path));
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        FLIGHT_EVENT(kDetectShardBegin, static_cast<std::uint64_t>(t), i);
      }
    });
  }
  for (auto& w : workers) w.join();
  ASSERT_TRUE(flight_dump_now(DumpReason::kManual));

  const FlightDump dump = decode_flight_file(path);
  EXPECT_GE(dump.nthreads, static_cast<std::uint32_t>(kThreads));
  // Per slot: seq strictly increases and the per-thread payload counter
  // (arg b) increases in listed order — the merge never reorders a thread
  // against itself.
  std::map<std::uint32_t, std::uint64_t> last_seq;
  std::map<std::uint32_t, std::uint64_t> last_b;
  std::uint64_t shard_events = 0;
  for (const DecodedEvent& e : dump.events) {
    if (e.id != FlightEventId::kDetectShardBegin) continue;
    ++shard_events;
    if (last_seq.count(e.slot)) {
      EXPECT_GT(e.seq, last_seq[e.slot]);
      EXPECT_GT(e.b, last_b[e.slot]);
    }
    last_seq[e.slot] = e.seq;
    last_b[e.slot] = e.b;
  }
  EXPECT_EQ(shard_events, static_cast<std::uint64_t>(kThreads) * kPerThread);
  fs::remove(path);
}

TEST_F(FlightTest, DecodeRejectsTruncatedAndGarbageFiles) {
  const std::string path = tmp_path("bad");
  {
    std::ofstream f(path, std::ios::binary);
    f << "not a flight dump";
  }
  EXPECT_THROW(decode_flight_file(path), std::runtime_error);
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
  }
  EXPECT_THROW(decode_flight_file(path), std::runtime_error);
  EXPECT_THROW(decode_flight_file(path + ".does-not-exist"), std::runtime_error);
  fs::remove(path);
}

TEST_F(FlightTest, DumpJsonShapeMatchesTheValidatorContract) {
  const std::string path = tmp_path("json");
  fs::remove(path);
  fs::remove(path + ".1");
  flight_enable();
  ASSERT_TRUE(flight_set_dump_path(path));
  FLIGHT_EVENT(kHttpRequest, 200, 0);
  ASSERT_TRUE(flight_dump_now(DumpReason::kGracefulDrain));
  const auto doc = flight_dump_json(decode_flight_file(path));
  EXPECT_EQ(doc["kind"].as_string(), "intellog_flight");
  EXPECT_EQ(doc["reason"].as_string(), "graceful-drain");
  EXPECT_EQ(doc["signo"].as_int(), 0);
  for (const char* key :
       {"version", "threads", "dropped", "anchor_wall_ns", "anchor_steady_ns", "events"}) {
    EXPECT_TRUE(doc.contains(key)) << key;
  }
  const auto& events = doc["events"].as_array();
  ASSERT_FALSE(events.empty());
  bool saw_http = false;
  for (const auto& e : events) {
    if (e["event"].as_string() != "http.request") continue;
    saw_http = true;
    EXPECT_EQ(e["subsystem"].as_string(), "http");
    EXPECT_EQ(e["status"].as_int(), 200);
  }
  EXPECT_TRUE(saw_http);
  fs::remove(path);
}

TEST_F(FlightTest, ChromeTraceExportPairsShardSpans) {
  const std::string path = tmp_path("trace");
  fs::remove(path);
  fs::remove(path + ".1");
  flight_enable();
  ASSERT_TRUE(flight_set_dump_path(path));
  FLIGHT_EVENT(kDetectShardBegin, 0, 9);
  FLIGHT_EVENT(kDetectShardEnd, 0, 9);
  FLIGHT_EVENT(kHttpRequest, 200, 0);
  ASSERT_TRUE(flight_dump_now(DumpReason::kManual));
  const auto doc = intellog::obs::flight_chrome_trace(decode_flight_file(path));
  const auto& events = doc["traceEvents"].as_array();
  int begins = 0, ends = 0, instants = 0, metas = 0;
  for (const auto& e : events) {
    const std::string ph = e["ph"].as_string();
    if (ph == "B") ++begins;
    else if (ph == "E") ++ends;
    else if (ph == "i") ++instants;
    else if (ph == "M") ++metas;
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
  EXPECT_GE(instants, 2);  // flight.enable + http.request + flight.dump
  EXPECT_GE(metas, 1);     // thread_name for the emitting ring
  fs::remove(path);
}

}  // namespace
