// Performance Observatory: sampling profiler, allocation attribution,
// contention accounting, and the collapsed/pprof exports.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/profile/profile.hpp"
#include "obs/profile/profiled_mutex.hpp"

using namespace intellog;
using obs::ProfFrame;
using obs::Profiler;
using obs::ProfilerOptions;

namespace {

ProfilerOptions fast_opts() {
  ProfilerOptions opts;
  opts.sample_period_us = 50;  // sample fast so short tests collect plenty
  opts.track_allocs = true;
  return opts;
}

/// Burns CPU (and keeps the innermost frame open) for roughly `ms`.
void busy_ms(int ms) {
  const auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  volatile std::uint64_t sink = 0;
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 0; i < 1000; ++i) sink += static_cast<std::uint64_t>(i);
  }
}

const obs::FrameNode* find_child(const obs::FrameNode* parent, const std::string& name) {
  for (const obs::FrameNode* c = parent->first_child.load(); c; c = c->next_sibling) {
    if (name == c->name) return c;
  }
  return nullptr;
}

}  // namespace

TEST(Profile, FramesAreNoopsWithoutAProfiler) {
  ASSERT_EQ(obs::profiler(), nullptr);
  PROF_FRAME("test.orphan");  // must not crash or allocate tree nodes
  {
    ProfFrame f("test.orphan_nested");
    f.close();
    f.close();  // idempotent
  }
  SUCCEED();
}

TEST(Profile, FrameTreeRecordsNestedPathsAndEnters) {
  Profiler prof(fast_opts());
  for (int i = 0; i < 3; ++i) {
    PROF_FRAME("test.outer");
    PROF_FRAME("test.inner");
  }
  {
    PROF_FRAME("test.outer");  // re-entering reuses the same node
  }
  prof.stop();

  const obs::FrameNode* outer = find_child(prof.root(), "test.outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->enters.load(), 4u);
  const obs::FrameNode* inner = find_child(outer, "test.inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->enters.load(), 3u);
  EXPECT_EQ(find_child(prof.root(), "test.inner"), nullptr);  // nested, not root
}

TEST(Profile, SamplerAttributesCpuToTheInnermostFrame) {
  Profiler prof(fast_opts());
  {
    PROF_FRAME("test.hot");
    busy_ms(40);
  }
  prof.stop();

  EXPECT_GT(prof.sampler_ticks(), 0u);
  const obs::FrameNode* hot = find_child(prof.root(), "test.hot");
  ASSERT_NE(hot, nullptr);
  // 40ms at a 50us period is ~800 opportunities; even a heavily loaded
  // machine lands well more than a handful in the busy loop.
  EXPECT_GT(hot->samples.load(), 5u);
  EXPECT_GE(prof.total_samples(), hot->samples.load());
}

TEST(Profile, AllocationBytesLandOnTheInnermostFrame) {
  Profiler prof(fast_opts());
  constexpr std::size_t kBytes = 1 << 20;
  {
    PROF_FRAME("test.alloc_outer");
    {
      PROF_FRAME("test.alloc_heavy");
      std::vector<std::string> keep;
      for (int i = 0; i < 64; ++i) keep.emplace_back(kBytes / 64, 'x');
    }
  }
  prof.stop();

  const obs::FrameNode* outer = find_child(prof.root(), "test.alloc_outer");
  ASSERT_NE(outer, nullptr);
  const obs::FrameNode* heavy = find_child(outer, "test.alloc_heavy");
  ASSERT_NE(heavy, nullptr);
  EXPECT_GE(heavy->alloc_bytes.load(), kBytes);  // >= : SSO/overhead only adds
  EXPECT_GE(heavy->allocs.load(), 64u);
  // The outer frame only pays for its own (vector bookkeeping) allocations.
  EXPECT_LT(outer->alloc_bytes.load(), kBytes / 2);
  EXPECT_GE(prof.total_alloc_bytes(), heavy->alloc_bytes.load());
}

TEST(Profile, SecondSessionStartsCleanAndFirstStaysReadable) {
  std::uint64_t first_bytes = 0;
  {
    Profiler prof(fast_opts());
    PROF_FRAME("test.session_one");
    std::string s(4096, 'a');
    prof.stop();
    first_bytes = prof.total_alloc_bytes();
    EXPECT_NE(find_child(prof.root(), "test.session_one"), nullptr);
  }
  {
    Profiler prof(fast_opts());
    {
      PROF_FRAME("test.session_two");
      std::string s(4096, 'b');
    }
    prof.stop();
    EXPECT_EQ(find_child(prof.root(), "test.session_one"), nullptr);
    EXPECT_NE(find_child(prof.root(), "test.session_two"), nullptr);
  }
  EXPECT_GE(first_bytes, 4096u);
}

TEST(Profile, FrameLeftOpenAcrossSessionsNeverPollutesTheNextTree) {
  // A frame constructed under session N must not attribute anything to a
  // session M > N tree (generation stamps), even though it closes late.
  auto first = std::make_unique<Profiler>(fast_opts());
  auto stale = std::make_unique<ProfFrame>("test.stale");
  first->stop();
  first.reset();

  Profiler second(fast_opts());
  std::string s(8192, 'c');       // allocates while the stale frame is "open"
  stale->close();                 // late close: must be harmless
  stale.reset();
  {
    PROF_FRAME("test.fresh");
    std::string t(1024, 'd');
  }
  second.stop();
  EXPECT_EQ(find_child(second.root(), "test.stale"), nullptr);
  EXPECT_NE(find_child(second.root(), "test.fresh"), nullptr);
}

TEST(Profile, OnlyOneProfilerAtATime) {
  Profiler prof(fast_opts());
  EXPECT_THROW(Profiler second(fast_opts()), std::runtime_error);
}

TEST(Profile, WorkerThreadFramesRegisterWithTheSampler) {
  Profiler prof(fast_opts());
  std::thread worker([] {
    PROF_FRAME("test.worker");
    busy_ms(30);
  });
  worker.join();
  prof.stop();
  const obs::FrameNode* w = find_child(prof.root(), "test.worker");
  ASSERT_NE(w, nullptr);
  EXPECT_GT(w->samples.load(), 0u);
}

TEST(Profile, CollapsedExportIsWellFormedAndBalanced) {
  Profiler prof(fast_opts());
  {
    PROF_FRAME("test.a");
    {
      PROF_FRAME("test.b");
      busy_ms(20);
      std::string s(1 << 16, 'x');
    }
    busy_ms(10);
  }
  prof.stop();

  std::uint64_t cpu_weight = 0;
  std::istringstream lines(prof.collapsed());
  std::string line;
  std::size_t n_lines = 0;
  while (std::getline(lines, line)) {
    ++n_lines;
    const auto sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string path = line.substr(0, sp);
    EXPECT_FALSE(path.empty());
    EXPECT_NE(path.front(), ';');
    EXPECT_NE(path.back(), ';');
    cpu_weight += std::stoull(line.substr(sp + 1));
  }
  EXPECT_GT(n_lines, 0u);
  // Collapsed-stack weights are exactly the tree's self samples.
  EXPECT_EQ(cpu_weight, prof.total_samples());

  std::uint64_t alloc_weight = 0;
  std::istringstream alloc_lines(prof.collapsed_alloc());
  while (std::getline(alloc_lines, line)) {
    const auto sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    alloc_weight += std::stoull(line.substr(sp + 1));
  }
  EXPECT_EQ(alloc_weight, prof.total_alloc_bytes());
}

TEST(Profile, PprofJsonTotalsBalanceAgainstFrameRows) {
  Profiler prof(fast_opts());
  {
    PROF_FRAME("test.p");
    busy_ms(15);
    std::string s(1 << 14, 'y');
  }
  prof.stop();

  const common::Json doc = prof.to_json();
  EXPECT_EQ(doc["kind"].as_string(), "intellog_profile");
  EXPECT_EQ(doc["schema_version"].as_int(), 1);
  EXPECT_GT(doc["duration_ms"].as_double(), 0.0);
  std::uint64_t samples = 0, bytes = 0;
  for (const common::Json& f : doc["frames"].as_array()) {
    samples += static_cast<std::uint64_t>(f["self_samples"].as_int());
    bytes += static_cast<std::uint64_t>(f["alloc_bytes"].as_int());
    EXPECT_GE(f["cum_samples"].as_int(), f["self_samples"].as_int());
    EXPECT_GE(f["cum_alloc_bytes"].as_int(), f["alloc_bytes"].as_int());
  }
  EXPECT_EQ(samples, static_cast<std::uint64_t>(doc["total_samples"].as_int()));
  EXPECT_EQ(bytes, static_cast<std::uint64_t>(doc["total_alloc_bytes"].as_int()));
}

TEST(Profile, HotFramesAreOrderedBySelfSamples) {
  Profiler prof(fast_opts());
  {
    PROF_FRAME("test.cold");
    busy_ms(5);
  }
  {
    PROF_FRAME("test.warm");
    busy_ms(50);
  }
  prof.stop();

  const auto hot = prof.hot_frames(10);
  ASSERT_GE(hot.size(), 2u);
  for (std::size_t i = 1; i < hot.size(); ++i) {
    EXPECT_GE(hot[i - 1].self_samples, hot[i].self_samples);
  }
  EXPECT_EQ(hot.front().path, "test.warm");
  const std::string table = prof.hot_table(10);
  EXPECT_NE(table.find("test.warm"), std::string::npos);
}

TEST(ProfiledMutexTest, CountsAcquisitionsAndContention) {
  obs::ProfiledMutex mu("test.contended");
  {
    std::lock_guard<obs::ProfiledMutex> g(mu);  // uncontended
  }

  std::atomic<bool> locked{false}, release{false};
  std::thread holder([&] {
    std::lock_guard<obs::ProfiledMutex> g(mu);
    locked.store(true);
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  while (!locked.load()) std::this_thread::yield();
  std::thread waiter([&] {
    std::lock_guard<obs::ProfiledMutex> g(mu);  // must block on holder
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true);
  holder.join();
  waiter.join();

  bool found = false;
  for (const auto& row : obs::ProfiledMutex::snapshot_all()) {
    if (row.name != std::string("test.contended")) continue;
    found = true;
    EXPECT_GE(row.acquisitions, 3u);
    EXPECT_GE(row.contended, 1u);
    EXPECT_GT(row.wait_ms, 0.0);
  }
  EXPECT_TRUE(found);
}

TEST(PoolMetrics, RegistryBridgePublishesQueueAndWorkerTelemetry) {
  obs::MetricsRegistry reg;
  obs::set_registry(&reg);  // installs the pool-metrics bridge
  {
    common::ThreadPool pool(2);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 32; ++i) {
      futs.push_back(pool.submit([i] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        return i;
      }));
    }
    for (auto& f : futs) f.get();

    // completed_ is bumped after the task body (and its future) resolves;
    // give the last worker a beat to finish its bookkeeping.
    common::ThreadPool::Stats st = pool.stats();
    for (int i = 0; i < 1000 && st.tasks_completed < 32; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      st = pool.stats();
    }
    EXPECT_EQ(st.tasks_enqueued, 32u);
    EXPECT_EQ(st.tasks_completed, 32u);
    ASSERT_EQ(st.workers.size(), 2u);
    std::uint64_t busy = 0;
    for (const auto& w : st.workers) busy += w.busy_us;
    EXPECT_GT(busy, 0u);
  }  // pool destruction retires workers through the bridge
  obs::set_registry(nullptr);

  const obs::Counter* tasks = reg.find_counter("intellog_pool_tasks_total");
  ASSERT_NE(tasks, nullptr);
  EXPECT_EQ(tasks->value(), 32u);
  const obs::Histogram* delay = reg.find_histogram("intellog_pool_queue_delay_ms");
  ASSERT_NE(delay, nullptr);
  EXPECT_EQ(delay->count(), 32u);
  const obs::Gauge* depth = reg.find_gauge("intellog_pool_queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->value(), 0);  // all enqueues matched by dequeues
  const obs::Counter* retired = reg.find_counter("intellog_pool_retired_total");
  ASSERT_NE(retired, nullptr);
  EXPECT_EQ(retired->value(), 1u);  // counts pools shut down, not workers
  const obs::Counter* busy_us = reg.find_counter("intellog_pool_busy_us_total");
  ASSERT_NE(busy_us, nullptr);
  EXPECT_GT(busy_us->value(), 0u);
}

TEST(PoolMetrics, NoRegistryMeansNoObserverAndNoCrash) {
  obs::set_registry(nullptr);
  common::ThreadPool pool(2);
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(Profile, ThreadPoolWorkUnderProfilerAttributesToPoolThreads) {
  Profiler prof(fast_opts());
  {
    common::ThreadPool pool(2);
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 4; ++i) {
      futs.push_back(pool.submit([] {
        PROF_FRAME("test.pool_task");
        busy_ms(10);
        std::string s(2048, 'z');
      }));
    }
    for (auto& f : futs) f.get();
  }  // pool joined before the profiler stops: quiescence invariant
  prof.stop();
  const obs::FrameNode* task = find_child(prof.root(), "test.pool_task");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->enters.load(), 4u);
  EXPECT_GE(task->alloc_bytes.load(), 4u * 2048u);
}
