// --status-file publication contract: a concurrent reader of the snapshot
// file never observes a torn document (write_json_atomic's rename
// discipline), and the schema version round-trips through disk into
// `intellog top` without a version warning.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "common/json.hpp"
#include "obs/export/status.hpp"

using namespace intellog;
namespace fs = std::filesystem;

namespace {

std::string read_whole(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

fs::path temp_file(const char* name) {
  return fs::temp_directory_path() / (std::string(name) + "." + std::to_string(::getpid()));
}

/// A status-shaped document whose payload identifies revision `rev` and
/// pads out to a few kilobytes, so a non-atomic writer would be very likely
/// to expose partial content to the reader loop below.
common::Json status_doc(int rev) {
  common::Json doc = common::Json::object();
  doc["kind"] = "intellog_status";
  doc["schema_version"] = obs::kStatusSchemaVersion;
  doc["rev"] = rev;
  common::Json sessions = common::Json::array();
  for (int i = 0; i < 64; ++i) {
    common::Json s = common::Json::object();
    s["container"] = "container_" + std::to_string(rev) + "_" + std::to_string(i);
    s["buffered_records"] = rev;  // every row carries the revision
    sessions.push_back(std::move(s));
  }
  doc["sessions"] = std::move(sessions);
  return doc;
}

}  // namespace

TEST(StatusAtomic, ConcurrentReaderNeverSeesATornSnapshot) {
  const fs::path path = temp_file("intellog_status_atomic");
  fs::remove(path);
  obs::write_json_atomic(status_doc(0), path.string());

  std::atomic<bool> stop{false};
  std::atomic<int> reads{0};
  std::string failure;
  std::thread reader([&] {
    int last_rev = 0;
    while (!stop.load()) {
      const std::string text = read_whole(path);
      common::Json doc;
      try {
        doc = common::Json::parse(text);
      } catch (const std::exception& e) {
        failure = std::string("torn JSON: ") + e.what();
        stop.store(true);
        return;
      }
      // Whole-document consistency: every row must carry the same revision
      // (a torn write would mix revisions or truncate the array).
      const int rev = static_cast<int>(doc["rev"].as_int());
      if (rev < last_rev) {
        failure = "snapshot went backwards";
        stop.store(true);
        return;
      }
      last_rev = rev;
      if (doc["sessions"].as_array().size() != 64) {
        failure = "truncated sessions array";
        stop.store(true);
        return;
      }
      for (const common::Json& s : doc["sessions"].as_array()) {
        if (s["buffered_records"].as_int() != rev) {
          failure = "mixed revisions in one snapshot";
          stop.store(true);
          return;
        }
      }
      ++reads;
    }
  });

  for (int rev = 1; rev <= 200 && !stop.load(); ++rev) {
    obs::write_json_atomic(status_doc(rev), path.string());
  }
  stop.store(true);
  reader.join();
  EXPECT_TRUE(failure.empty()) << failure;
  EXPECT_GT(reads.load(), 0);
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));  // no stray temp file
  fs::remove(path);
}

TEST(StatusAtomic, SchemaVersionRoundTripsThroughDiskIntoTop) {
  const fs::path path = temp_file("intellog_status_roundtrip");
  const common::Json doc = obs::build_status(obs::StatusContext{});
  ASSERT_EQ(doc["schema_version"].as_int(), obs::kStatusSchemaVersion);
  obs::write_json_atomic(doc, path.string());

  const common::Json reread = common::Json::parse(read_whole(path));
  EXPECT_EQ(reread["schema_version"].as_int(), obs::kStatusSchemaVersion);
  // A same-version snapshot renders without the version-mismatch warning.
  EXPECT_EQ(obs::render_top(reread).find("warning"), std::string::npos);
  fs::remove(path);
}

TEST(StatusAtomic, ProfileSectionRendersHotFramesInTop) {
  obs::ProfilerOptions opts;
  opts.sample_period_us = 50;
  obs::Profiler prof(opts);
  {
    PROF_FRAME("test.status_hot");
    std::string s(1 << 15, 'q');
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
    volatile std::uint64_t sink = 0;
    while (std::chrono::steady_clock::now() < until) sink += 1;
  }
  prof.stop();

  obs::StatusContext ctx;
  ctx.profiler = &prof;
  const common::Json status = obs::build_status(ctx);
  ASSERT_TRUE(status["profile"].is_object());
  EXPECT_GT(status["profile"]["total_alloc_bytes"].as_int(), 0);
  ASSERT_TRUE(status["profile"]["hot_frames"].is_array());
  EXPECT_FALSE(status["profile"]["hot_frames"].as_array().empty());

  const std::string top = obs::render_top(status);
  EXPECT_NE(top.find("hot frames"), std::string::npos);
  EXPECT_NE(top.find("test.status_hot"), std::string::npos);
}
