#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>

#include "common/thread_pool.hpp"

using namespace intellog;

namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAddSub) {
  obs::Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(10);
  g.add(5);
  g.sub(2);
  EXPECT_EQ(g.value(), 13);
  g.set(-3);
  EXPECT_EQ(g.value(), -3);
}

TEST(DoubleGauge, SetAddKeepFractions) {
  obs::DoubleGauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(0.37);
  EXPECT_DOUBLE_EQ(g.value(), 0.37);
  g.add(0.03);
  EXPECT_DOUBLE_EQ(g.value(), 0.4);
  g.set(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), -1.5);
}

TEST(DoubleGauge, RegistryExportsFractionThroughJsonAndPrometheus) {
  obs::MetricsRegistry reg;
  reg.describe("saturation_ratio", "backlog as a fraction of the shed threshold");
  reg.double_gauge("saturation_ratio", {{"tenant", "acme"}}).set(0.25);
  EXPECT_EQ(reg.find_double_gauge("saturation_ratio", {{"tenant", "acme"}})->value(),
            0.25);
  EXPECT_EQ(reg.find_double_gauge("saturation_ratio", {{"tenant", "nope"}}), nullptr);
  // Same name+labels hands back the same instance.
  EXPECT_EQ(&reg.double_gauge("saturation_ratio", {{"tenant", "acme"}}),
            &reg.double_gauge("saturation_ratio", {{"tenant", "acme"}}));

  const common::Json j = reg.to_json();
  const common::Json& g = j["saturation_ratio{tenant=\"acme\"}"];
  // Consumers see one gauge kind; the value just happens to be real.
  EXPECT_EQ(g["type"].as_string(), "gauge");
  EXPECT_DOUBLE_EQ(g["value"].as_double(), 0.25);

  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# HELP saturation_ratio"), std::string::npos);
  EXPECT_NE(text.find("# TYPE saturation_ratio gauge"), std::string::npos);
  EXPECT_NE(text.find("saturation_ratio{tenant=\"acme\"} 0.25"), std::string::npos);
}

TEST(Histogram, BucketsObservationsByUpperBound) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (boundary lands in its bound's bucket)
  h.observe(5.0);    // <= 10
  h.observe(1000.0); // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf
  // Cumulative (Prometheus `le`) counts.
  EXPECT_EQ(h.cumulative_count(0), 2u);
  EXPECT_EQ(h.cumulative_count(1), 3u);
  EXPECT_EQ(h.cumulative_count(2), 3u);
  EXPECT_EQ(h.cumulative_count(3), 4u);
}

TEST(MetricsRegistry, SameNameAndLabelsReturnsSameMetric) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("hits", {{"stage", "spell"}});
  obs::Counter& b = reg.counter("hits", {{"stage", "spell"}});
  obs::Counter& c = reg.counter("hits", {{"stage", "extract"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.add(3);
  EXPECT_EQ(reg.find_counter("hits", {{"stage", "spell"}})->value(), 3u);
  EXPECT_EQ(reg.find_counter("hits", {{"stage", "extract"}})->value(), 0u);
  EXPECT_EQ(reg.find_counter("hits", {{"stage", "nope"}}), nullptr);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, LabelLookupIsOrderInsensitive) {
  obs::MetricsRegistry reg;
  obs::Gauge& a = reg.gauge("g", {{"x", "1"}, {"y", "2"}});
  obs::Gauge& b = reg.gauge("g", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, ConcurrentIncrementsFromThreadPool) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("work_total");
  obs::Histogram& h = reg.histogram("work_ms");
  common::ThreadPool pool(4);
  constexpr std::size_t kTasks = 64, kAddsPerTask = 1000;
  pool.parallel_for(kTasks, [&](std::size_t i) {
    for (std::size_t k = 0; k < kAddsPerTask; ++k) {
      // Exercise both the cached-handle path and registry lookup under
      // contention.
      c.add(1);
      reg.counter("work_total", {{"worker", std::to_string(i % 4)}}).add(1);
      h.observe(static_cast<double>(k % 7));
    }
  });
  EXPECT_EQ(c.value(), kTasks * kAddsPerTask);
  std::uint64_t labeled = 0;
  for (int w = 0; w < 4; ++w) {
    labeled += reg.find_counter("work_total", {{"worker", std::to_string(w)}})->value();
  }
  EXPECT_EQ(labeled, kTasks * kAddsPerTask);
  EXPECT_EQ(h.count(), kTasks * kAddsPerTask);
}

TEST(MetricsRegistry, JsonSnapshotShape) {
  obs::MetricsRegistry reg;
  reg.counter("c_total", {{"k", "v"}}).add(7);
  reg.gauge("g").set(-2);
  reg.histogram("h", {}, {1.0, 2.0}).observe(1.5);
  const common::Json j = reg.to_json();
  ASSERT_TRUE(j.is_object());
  const common::Json& c = j["c_total{k=\"v\"}"];
  EXPECT_EQ(c["type"].as_string(), "counter");
  EXPECT_EQ(c["value"].as_int(), 7);
  EXPECT_EQ(c["labels"]["k"].as_string(), "v");
  EXPECT_EQ(j["g{}"]["type"].as_string(), "gauge");
  EXPECT_EQ(j["g{}"]["value"].as_int(), -2);
  const common::Json& h = j["h{}"];
  EXPECT_EQ(h["type"].as_string(), "histogram");
  EXPECT_EQ(h["count"].as_int(), 1);
  ASSERT_EQ(h["buckets"].size(), 3u);  // two bounds + Inf
  EXPECT_EQ(h["buckets"][2]["le"].as_string(), "+Inf");
  // Round-trips through the serializer.
  EXPECT_NO_THROW(common::Json::parse(j.dump(2)));
}

TEST(MetricsRegistry, PrometheusTextFormat) {
  obs::MetricsRegistry reg;
  reg.counter("requests_total", {{"system", "spark"}}).add(5);
  reg.counter("requests_total", {{"system", "tez"}}).add(2);
  reg.gauge("open_sessions").set(3);
  obs::Histogram& h = reg.histogram("latency_ms", {}, {1.0, 10.0});
  h.observe(0.5);
  h.observe(20.0);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total{system=\"spark\"} 5"), std::string::npos);
  EXPECT_NE(text.find("requests_total{system=\"tez\"} 2"), std::string::npos);
  // One TYPE line per family, not per labeled series.
  const auto first = text.find("# TYPE requests_total");
  EXPECT_EQ(text.find("# TYPE requests_total", first + 1), std::string::npos);
  EXPECT_NE(text.find("# TYPE open_sessions gauge"), std::string::npos);
  EXPECT_NE(text.find("open_sessions 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_count 2"), std::string::npos);
}

TEST(PromEscape, EscapesExactlyBackslashQuoteNewline) {
  EXPECT_EQ(obs::prom_escape("plain value"), "plain value");
  EXPECT_EQ(obs::prom_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::prom_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::prom_escape("two\nlines"), "two\\nlines");
  // Other control-ish characters pass through untouched (the format only
  // defines the three escapes).
  EXPECT_EQ(obs::prom_escape("tab\there"), "tab\there");
}

namespace {

/// Minimal exposition-format reader for round-trip checks: sample lines
/// back into (name, labels, value). Mirrors the label-value unescaping a
/// real scraper performs.
std::map<std::string, std::string> parse_prom_samples(const std::string& text) {
  std::map<std::string, std::string> samples;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    EXPECT_NE(sp, std::string::npos) << line;
    std::string series = line.substr(0, sp);
    // Unescape label values back to raw strings.
    std::string raw;
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (series[i] == '\\' && i + 1 < series.size()) {
        const char next = series[++i];
        raw += next == 'n' ? '\n' : next;
      } else {
        raw += series[i];
      }
    }
    samples[raw] = line.substr(sp + 1);
  }
  return samples;
}

}  // namespace

TEST(MetricsRegistry, PrometheusLabelValuesRoundTrip) {
  obs::MetricsRegistry reg;
  const std::string hostile = "path\\to \"x\"\nend";
  reg.counter("quarantine_total", {{"reason", hostile}}).add(3);
  reg.gauge("g", {{"file", "a\\b.log"}}).set(1);
  const std::string text = reg.to_prometheus();
  // Escaped on the wire: no raw newline may survive inside a label value
  // (every line must still be a well-formed sample or comment).
  EXPECT_NE(text.find("reason=\"path\\\\to \\\"x\\\"\\nend\""), std::string::npos);
  const auto samples = parse_prom_samples(text);
  const auto hit = samples.find("quarantine_total{reason=\"" + hostile + "\"}");
  ASSERT_NE(hit, samples.end());
  EXPECT_EQ(hit->second, "3");
  EXPECT_TRUE(samples.count("g{file=\"a\\b.log\"}"));
}

TEST(MetricsRegistry, HelpAndTypeEmittedOncePerFamily) {
  obs::MetricsRegistry reg;
  reg.describe("requests_total", "Requests by system; beware \\ and\nnewlines");
  reg.counter("requests_total", {{"system", "spark"}}).add(1);
  reg.counter("requests_total", {{"system", "tez"}}).add(1);
  reg.counter("requests_total", {{"system", "mapreduce"}}).add(1);
  const std::string text = reg.to_prometheus();
  const auto count_of = [&text](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count_of("# HELP requests_total"), 1u);
  EXPECT_EQ(count_of("# TYPE requests_total"), 1u);
  // HELP precedes TYPE, which precedes the first sample.
  EXPECT_LT(text.find("# HELP requests_total"), text.find("# TYPE requests_total"));
  EXPECT_LT(text.find("# TYPE requests_total"), text.find("requests_total{"));
  // HELP text escapes backslash and newline (never quoted, no quote escape).
  EXPECT_NE(text.find("beware \\\\ and\\nnewlines"), std::string::npos);
  // An undescribed family still gets its TYPE line, just no HELP.
  reg.gauge("undocumented").set(1);
  const std::string more = reg.to_prometheus();
  EXPECT_NE(more.find("# TYPE undocumented gauge"), std::string::npos);
  EXPECT_EQ(more.find("# HELP undocumented"), std::string::npos);
}

TEST(Histogram, ExemplarsTrackLatestObservationPerBucket) {
  obs::Histogram h({1.0, 10.0});
  EXPECT_FALSE(h.exemplar(0).has_value());
  h.observe(0.5, "container_a");
  h.observe(0.7, "container_b");  // same bucket: latest wins
  h.observe(50.0, "container_slow");
  ASSERT_TRUE(h.exemplar(0).has_value());
  EXPECT_EQ(h.exemplar(0)->label, "container_b");
  EXPECT_DOUBLE_EQ(h.exemplar(0)->value, 0.7);
  EXPECT_FALSE(h.exemplar(1).has_value());
  ASSERT_TRUE(h.exemplar(2).has_value());  // +Inf bucket
  EXPECT_EQ(h.exemplar(2)->label, "container_slow");
  // Exemplars never change the distribution itself.
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 51.2);
  // Out-of-range index is a soft miss, not UB.
  EXPECT_FALSE(h.exemplar(99).has_value());
}

TEST(MetricsRegistry, JsonSnapshotCarriesExemplars) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("consume_us", {}, {100.0});
  h.observe(42.0, "container_7");
  const common::Json j = reg.to_json();
  const common::Json& hist = j["consume_us{}"];
  ASSERT_TRUE(hist["exemplars"].is_array());
  ASSERT_EQ(hist["exemplars"].size(), 1u);
  EXPECT_EQ(hist["exemplars"][0]["label"].as_string(), "container_7");
  EXPECT_DOUBLE_EQ(hist["exemplars"][0]["value"].as_double(), 42.0);
  // A histogram without exemplars omits the key entirely.
  reg.histogram("plain", {}, {1.0}).observe(0.5);
  EXPECT_TRUE(reg.to_json()["plain{}"]["exemplars"].is_null());
}

TEST(GlobalRegistry, NullByDefaultAndInstallable) {
  EXPECT_EQ(obs::registry(), nullptr);
  obs::MetricsRegistry reg;
  obs::set_registry(&reg);
  EXPECT_EQ(obs::registry(), &reg);
  obs::set_registry(nullptr);
  EXPECT_EQ(obs::registry(), nullptr);
}

TEST(ScopedTimerMs, ObservesOnDestructionAndNoopsWhenNull) {
  obs::Histogram h({1000.0});
  {
    obs::ScopedTimerMs t(&h);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GT(t.elapsed_ms(), 0.0);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.sum(), 0.0);
  {
    obs::ScopedTimerMs t(nullptr);  // must not crash, records nothing
    EXPECT_EQ(t.elapsed_ms(), 0.0);
  }
}

}  // namespace
