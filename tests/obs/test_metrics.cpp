#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/thread_pool.hpp"

using namespace intellog;

namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAddSub) {
  obs::Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(10);
  g.add(5);
  g.sub(2);
  EXPECT_EQ(g.value(), 13);
  g.set(-3);
  EXPECT_EQ(g.value(), -3);
}

TEST(Histogram, BucketsObservationsByUpperBound) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (boundary lands in its bound's bucket)
  h.observe(5.0);    // <= 10
  h.observe(1000.0); // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf
  // Cumulative (Prometheus `le`) counts.
  EXPECT_EQ(h.cumulative_count(0), 2u);
  EXPECT_EQ(h.cumulative_count(1), 3u);
  EXPECT_EQ(h.cumulative_count(2), 3u);
  EXPECT_EQ(h.cumulative_count(3), 4u);
}

TEST(MetricsRegistry, SameNameAndLabelsReturnsSameMetric) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("hits", {{"stage", "spell"}});
  obs::Counter& b = reg.counter("hits", {{"stage", "spell"}});
  obs::Counter& c = reg.counter("hits", {{"stage", "extract"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.add(3);
  EXPECT_EQ(reg.find_counter("hits", {{"stage", "spell"}})->value(), 3u);
  EXPECT_EQ(reg.find_counter("hits", {{"stage", "extract"}})->value(), 0u);
  EXPECT_EQ(reg.find_counter("hits", {{"stage", "nope"}}), nullptr);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, LabelLookupIsOrderInsensitive) {
  obs::MetricsRegistry reg;
  obs::Gauge& a = reg.gauge("g", {{"x", "1"}, {"y", "2"}});
  obs::Gauge& b = reg.gauge("g", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, ConcurrentIncrementsFromThreadPool) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("work_total");
  obs::Histogram& h = reg.histogram("work_ms");
  common::ThreadPool pool(4);
  constexpr std::size_t kTasks = 64, kAddsPerTask = 1000;
  pool.parallel_for(kTasks, [&](std::size_t i) {
    for (std::size_t k = 0; k < kAddsPerTask; ++k) {
      // Exercise both the cached-handle path and registry lookup under
      // contention.
      c.add(1);
      reg.counter("work_total", {{"worker", std::to_string(i % 4)}}).add(1);
      h.observe(static_cast<double>(k % 7));
    }
  });
  EXPECT_EQ(c.value(), kTasks * kAddsPerTask);
  std::uint64_t labeled = 0;
  for (int w = 0; w < 4; ++w) {
    labeled += reg.find_counter("work_total", {{"worker", std::to_string(w)}})->value();
  }
  EXPECT_EQ(labeled, kTasks * kAddsPerTask);
  EXPECT_EQ(h.count(), kTasks * kAddsPerTask);
}

TEST(MetricsRegistry, JsonSnapshotShape) {
  obs::MetricsRegistry reg;
  reg.counter("c_total", {{"k", "v"}}).add(7);
  reg.gauge("g").set(-2);
  reg.histogram("h", {}, {1.0, 2.0}).observe(1.5);
  const common::Json j = reg.to_json();
  ASSERT_TRUE(j.is_object());
  const common::Json& c = j["c_total{k=\"v\"}"];
  EXPECT_EQ(c["type"].as_string(), "counter");
  EXPECT_EQ(c["value"].as_int(), 7);
  EXPECT_EQ(c["labels"]["k"].as_string(), "v");
  EXPECT_EQ(j["g{}"]["type"].as_string(), "gauge");
  EXPECT_EQ(j["g{}"]["value"].as_int(), -2);
  const common::Json& h = j["h{}"];
  EXPECT_EQ(h["type"].as_string(), "histogram");
  EXPECT_EQ(h["count"].as_int(), 1);
  ASSERT_EQ(h["buckets"].size(), 3u);  // two bounds + Inf
  EXPECT_EQ(h["buckets"][2]["le"].as_string(), "+Inf");
  // Round-trips through the serializer.
  EXPECT_NO_THROW(common::Json::parse(j.dump(2)));
}

TEST(MetricsRegistry, PrometheusTextFormat) {
  obs::MetricsRegistry reg;
  reg.counter("requests_total", {{"system", "spark"}}).add(5);
  reg.counter("requests_total", {{"system", "tez"}}).add(2);
  reg.gauge("open_sessions").set(3);
  obs::Histogram& h = reg.histogram("latency_ms", {}, {1.0, 10.0});
  h.observe(0.5);
  h.observe(20.0);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total{system=\"spark\"} 5"), std::string::npos);
  EXPECT_NE(text.find("requests_total{system=\"tez\"} 2"), std::string::npos);
  // One TYPE line per family, not per labeled series.
  const auto first = text.find("# TYPE requests_total");
  EXPECT_EQ(text.find("# TYPE requests_total", first + 1), std::string::npos);
  EXPECT_NE(text.find("# TYPE open_sessions gauge"), std::string::npos);
  EXPECT_NE(text.find("open_sessions 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_count 2"), std::string::npos);
}

TEST(GlobalRegistry, NullByDefaultAndInstallable) {
  EXPECT_EQ(obs::registry(), nullptr);
  obs::MetricsRegistry reg;
  obs::set_registry(&reg);
  EXPECT_EQ(obs::registry(), &reg);
  obs::set_registry(nullptr);
  EXPECT_EQ(obs::registry(), nullptr);
}

TEST(ScopedTimerMs, ObservesOnDestructionAndNoopsWhenNull) {
  obs::Histogram h({1000.0});
  {
    obs::ScopedTimerMs t(&h);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GT(t.elapsed_ms(), 0.0);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.sum(), 0.0);
  {
    obs::ScopedTimerMs t(nullptr);  // must not crash, records nothing
    EXPECT_EQ(t.elapsed_ms(), 0.0);
  }
}

}  // namespace
