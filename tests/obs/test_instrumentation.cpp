// Integration: the real pipeline populates the observability layer.
#include <gtest/gtest.h>

#include <map>

#include "core/intellog.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

namespace {

std::vector<logparse::Session> corpus(int jobs, std::uint64_t seed) {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", seed);
  std::vector<logparse::Session> out;
  for (int i = 0; i < jobs; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) out.push_back(std::move(s));
  }
  return out;
}

struct ObsGuard {
  obs::MetricsRegistry reg;
  obs::TraceCollector trace;
  ObsGuard() {
    obs::set_registry(&reg);
    obs::set_tracer(&trace);
  }
  ~ObsGuard() {
    obs::set_registry(nullptr);
    obs::set_tracer(nullptr);
  }
};

TEST(Instrumentation, TrainPopulatesStageMetricsAndSpans) {
  ObsGuard guard;
  const auto sessions = corpus(3, 11);
  std::size_t records = 0;
  for (const auto& s : sessions) records += s.records.size();

  core::IntelLog il;
  il.train(sessions);

  // Stage latency histogram: one observation per training stage.
  for (const char* stage : {"spell", "extract", "group", "subroutines", "hwgraph"}) {
    const obs::Histogram* h =
        guard.reg.find_histogram("intellog_train_stage_ms", {{"stage", stage}});
    ASSERT_NE(h, nullptr) << stage;
    EXPECT_EQ(h->count(), 1u) << stage;
  }

  // Volume counters match the corpus.
  EXPECT_EQ(guard.reg.find_counter("intellog_train_sessions_total")->value(), sessions.size());
  EXPECT_EQ(guard.reg.find_counter("intellog_train_records_total")->value(), records);

  // Model-size gauges agree with the trained model.
  const auto gauge = [&](const char* name) {
    const obs::Gauge* g = guard.reg.find_gauge(name);
    return g ? g->value() : -1;
  };
  EXPECT_EQ(gauge("intellog_model_log_keys"), static_cast<std::int64_t>(il.spell().size()));
  EXPECT_EQ(gauge("intellog_model_intel_keys"),
            static_cast<std::int64_t>(il.intel_keys().size()));
  EXPECT_EQ(gauge("intellog_model_entity_groups"),
            static_cast<std::int64_t>(il.entity_groups().groups.size()));
  EXPECT_EQ(gauge("intellog_model_graph_nodes"),
            static_cast<std::int64_t>(il.hw_graph().groups().size()));
  EXPECT_GT(gauge("intellog_model_graph_edges"), 0);
  EXPECT_EQ(gauge("intellog_model_critical_groups"),
            static_cast<std::int64_t>(il.hw_graph().critical_group_count()));

  // The trace saw every stage plus per-record Spell spans.
  std::map<std::string, int> names;
  const common::Json trace_json = guard.trace.to_chrome_json();
  for (const auto& e : trace_json["traceEvents"].as_array()) {
    names[e["name"].as_string()]++;
  }
  for (const char* span : {"train", "train/spell", "train/extract", "train/group",
                           "train/subroutines", "train/hwgraph"}) {
    EXPECT_EQ(names[span], 1) << span;
  }
  EXPECT_EQ(names["spell/consume"], static_cast<int>(records));
  EXPECT_EQ(names["train/session_view"], static_cast<int>(sessions.size()));

  // Detection path: counters advance per session.
  const auto report = il.detect(sessions.front());
  EXPECT_EQ(guard.reg.find_counter("intellog_detect_sessions_total")->value(), 1u);
  EXPECT_EQ(guard.reg.find_counter("intellog_detect_records_total")->value(),
            sessions.front().records.size());
  EXPECT_EQ(guard.reg.find_histogram("intellog_detect_session_ms")->count(), 1u);
  (void)report;
}

TEST(Instrumentation, PipelineIsSilentWithoutRegistry) {
  ASSERT_EQ(obs::registry(), nullptr);
  ASSERT_EQ(obs::tracer(), nullptr);
  const auto sessions = corpus(2, 13);
  core::IntelLog il;
  il.train(sessions);  // must not touch any registry or collector
  const auto report = il.detect(sessions.front());
  EXPECT_EQ(report.session_length, sessions.front().records.size());
}

}  // namespace
