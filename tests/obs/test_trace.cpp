#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>

using namespace intellog;

namespace {

/// Installs a collector for the test body and uninstalls on exit.
struct TracerGuard {
  explicit TracerGuard(obs::TraceCollector& c) { obs::set_tracer(&c); }
  ~TracerGuard() { obs::set_tracer(nullptr); }
};

TEST(Trace, SpanIsNoopWithoutCollector) {
  ASSERT_EQ(obs::tracer(), nullptr);
  obs::Span span("orphan");  // must not crash or record anywhere
}

TEST(Trace, RecordsNestedSpansWithDepth) {
  obs::TraceCollector collector;
  {
    TracerGuard guard(collector);
    obs::Span outer("outer");
    {
      obs::Span inner("inner", "test");
    }
  }
  ASSERT_EQ(collector.size(), 2u);
  const common::Json j = collector.to_chrome_json();
  const auto& events = j["traceEvents"].as_array();
  // Spans close inner-first.
  EXPECT_EQ(events[0]["name"].as_string(), "inner");
  EXPECT_EQ(events[0]["cat"].as_string(), "test");
  EXPECT_EQ(events[0]["args"]["depth"].as_int(), 1);
  EXPECT_EQ(events[1]["name"].as_string(), "outer");
  EXPECT_EQ(events[1]["args"]["depth"].as_int(), 0);
  for (const auto& e : events) {
    EXPECT_EQ(e["ph"].as_string(), "X");
    EXPECT_TRUE(e["ts"].is_int());
    EXPECT_TRUE(e["dur"].is_int());
    EXPECT_TRUE(e["tid"].is_int());
    EXPECT_EQ(e["pid"].as_int(), 1);
  }
  // The outer span encloses the inner one.
  EXPECT_LE(events[1]["ts"].as_int(), events[0]["ts"].as_int());
  EXPECT_GE(events[1]["ts"].as_int() + events[1]["dur"].as_int(),
            events[0]["ts"].as_int() + events[0]["dur"].as_int());
}

TEST(Trace, ExplicitCloseIsIdempotent) {
  obs::TraceCollector collector;
  TracerGuard guard(collector);
  obs::Span span("once");
  span.close();
  span.close();  // second close records nothing
  EXPECT_EQ(collector.size(), 1u);
}

TEST(Trace, DistinctThreadsGetDistinctIds) {
  obs::TraceCollector collector;
  {
    TracerGuard guard(collector);
    std::vector<std::thread> threads;
    for (int i = 0; i < 3; ++i) {
      threads.emplace_back([] { obs::Span span("thread_work"); });
    }
    for (auto& t : threads) t.join();
  }
  const common::Json j = collector.to_chrome_json();
  std::set<std::int64_t> tids;
  for (const auto& e : j["traceEvents"].as_array()) tids.insert(e["tid"].as_int());
  EXPECT_EQ(tids.size(), 3u);
}

TEST(Trace, BoundedCollectorCountsDrops) {
  obs::TraceCollector collector(/*max_events=*/2);
  TracerGuard guard(collector);
  for (int i = 0; i < 5; ++i) {
    obs::Span span("burst");
  }
  EXPECT_EQ(collector.size(), 2u);
  EXPECT_EQ(collector.dropped(), 3u);
  const common::Json j = collector.to_chrome_json();
  EXPECT_EQ(j["metadata"]["dropped_events"].as_int(), 3);
}

TEST(Trace, ChromeJsonParsesAndHasDisplayUnit) {
  obs::TraceCollector collector;
  {
    TracerGuard guard(collector);
    obs::Span span("solo");
  }
  const std::string dumped = collector.to_chrome_json().dump();
  const common::Json parsed = common::Json::parse(dumped);
  EXPECT_EQ(parsed["displayTimeUnit"].as_string(), "ms");
  EXPECT_EQ(parsed["traceEvents"].size(), 1u);
}

}  // namespace
