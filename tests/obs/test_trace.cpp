#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

using namespace intellog;

namespace {

/// Installs a collector for the test body and uninstalls on exit.
struct TracerGuard {
  explicit TracerGuard(obs::TraceCollector& c) { obs::set_tracer(&c); }
  ~TracerGuard() { obs::set_tracer(nullptr); }
};

TEST(Trace, SpanIsNoopWithoutCollector) {
  ASSERT_EQ(obs::tracer(), nullptr);
  obs::Span span("orphan");  // must not crash or record anywhere
}

TEST(Trace, RecordsNestedSpansWithDepth) {
  obs::TraceCollector collector;
  {
    TracerGuard guard(collector);
    obs::Span outer("outer");
    {
      obs::Span inner("inner", "test");
    }
  }
  ASSERT_EQ(collector.size(), 2u);
  const common::Json j = collector.to_chrome_json();
  const auto& events = j["traceEvents"].as_array();
  // Spans close inner-first.
  EXPECT_EQ(events[0]["name"].as_string(), "inner");
  EXPECT_EQ(events[0]["cat"].as_string(), "test");
  EXPECT_EQ(events[0]["args"]["depth"].as_int(), 1);
  EXPECT_EQ(events[1]["name"].as_string(), "outer");
  EXPECT_EQ(events[1]["args"]["depth"].as_int(), 0);
  for (const auto& e : events) {
    EXPECT_EQ(e["ph"].as_string(), "X");
    EXPECT_TRUE(e["ts"].is_int());
    EXPECT_TRUE(e["dur"].is_int());
    EXPECT_TRUE(e["tid"].is_int());
    EXPECT_EQ(e["pid"].as_int(), 1);
  }
  // The outer span encloses the inner one.
  EXPECT_LE(events[1]["ts"].as_int(), events[0]["ts"].as_int());
  EXPECT_GE(events[1]["ts"].as_int() + events[1]["dur"].as_int(),
            events[0]["ts"].as_int() + events[0]["dur"].as_int());
}

TEST(Trace, ExplicitCloseIsIdempotent) {
  obs::TraceCollector collector;
  TracerGuard guard(collector);
  obs::Span span("once");
  span.close();
  span.close();  // second close records nothing
  EXPECT_EQ(collector.size(), 1u);
}

TEST(Trace, DistinctThreadsGetDistinctIds) {
  obs::TraceCollector collector;
  {
    TracerGuard guard(collector);
    std::vector<std::thread> threads;
    for (int i = 0; i < 3; ++i) {
      threads.emplace_back([] { obs::Span span("thread_work"); });
    }
    for (auto& t : threads) t.join();
  }
  const common::Json j = collector.to_chrome_json();
  std::set<std::int64_t> tids;
  for (const auto& e : j["traceEvents"].as_array()) tids.insert(e["tid"].as_int());
  EXPECT_EQ(tids.size(), 3u);
}

TEST(Trace, BoundedCollectorCountsDrops) {
  obs::TraceCollector collector(/*max_events=*/2);
  TracerGuard guard(collector);
  for (int i = 0; i < 5; ++i) {
    obs::Span span("burst");
  }
  EXPECT_EQ(collector.size(), 2u);
  EXPECT_EQ(collector.dropped(), 3u);
  const common::Json j = collector.to_chrome_json();
  EXPECT_EQ(j["metadata"]["dropped_events"].as_int(), 3);
}

TEST(Trace, ConcurrentNestedSpansStayWellFormedPerThread) {
  constexpr int kThreads = 8;
  constexpr int kDepth = 5;
  constexpr int kRepeats = 4;
  obs::TraceCollector collector;
  {
    TracerGuard guard(collector);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([] {
        // kRepeats chains of kDepth nested spans, closing inner-first.
        for (int r = 0; r < kRepeats; ++r) {
          std::vector<std::unique_ptr<obs::Span>> chain;
          for (int d = 0; d < kDepth; ++d) {
            chain.push_back(std::make_unique<obs::Span>("nested", "concurrency"));
          }
          while (!chain.empty()) chain.pop_back();
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  ASSERT_EQ(collector.size(),
            static_cast<std::size_t>(kThreads) * kDepth * kRepeats);
  EXPECT_EQ(collector.dropped(), 0u);

  // The concurrent writes still serialize to one valid JSON document.
  const common::Json doc = common::Json::parse(collector.to_chrome_json().dump());
  std::map<std::int64_t, std::vector<const common::Json*>> by_tid;
  for (const auto& e : doc["traceEvents"].as_array()) {
    EXPECT_EQ(e["ph"].as_string(), "X");
    by_tid[e["tid"].as_int()].push_back(&e);
  }
  ASSERT_EQ(by_tid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, events] : by_tid) {
    EXPECT_EQ(events.size(), static_cast<std::size_t>(kDepth) * kRepeats) << "tid " << tid;
    // Per thread, events are appended in close order: depths cycle
    // kDepth-1 .. 0 per chain (inner spans close first), and each span's
    // begin/end pair encloses every deeper span of its chain.
    for (std::size_t i = 0; i < events.size(); ++i) {
      const auto depth = (*events[i])["args"]["depth"].as_int();
      EXPECT_EQ(depth, kDepth - 1 - static_cast<std::int64_t>(i) % kDepth);
      if (depth == 0) continue;
      const auto ts = (*events[i])["ts"].as_int();
      const auto end = ts + (*events[i])["dur"].as_int();
      const auto& parent = *events[i + 1];  // next close is the enclosing span
      EXPECT_EQ(parent["args"]["depth"].as_int(), depth - 1);
      EXPECT_LE(parent["ts"].as_int(), ts);
      // +1: the exporter clamps zero-duration spans to 1us for Perfetto
      // visibility, so a child closing in the parent's final microsecond
      // may render at most 1us past the parent's end.
      EXPECT_GE(parent["ts"].as_int() + parent["dur"].as_int() + 1, end);
    }
  }
}

TEST(Trace, ChromeJsonParsesAndHasDisplayUnit) {
  obs::TraceCollector collector;
  {
    TracerGuard guard(collector);
    obs::Span span("solo");
  }
  const std::string dumped = collector.to_chrome_json().dump();
  const common::Json parsed = common::Json::parse(dumped);
  EXPECT_EQ(parsed["displayTimeUnit"].as_string(), "ms");
  EXPECT_EQ(parsed["traceEvents"].size(), 1u);
}

}  // namespace
