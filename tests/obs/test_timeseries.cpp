// Quality Observatory telemetry: ring-buffer time series, windowed
// aggregates, registry sampling, and the alert-rules engine.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeseries/alerts.hpp"
#include "obs/timeseries/timeseries.hpp"

using namespace intellog;
using obs::ts::Alert;
using obs::ts::AlertEngine;
using obs::ts::AlertRule;
using obs::ts::RingSeries;
using obs::ts::Sample;
using obs::ts::TimeSeriesStore;

TEST(RingSeriesTest, PushAndLatest) {
  RingSeries ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.latest().has_value());
  ring.push(100, 1.0);
  ring.push(200, 2.0);
  ASSERT_TRUE(ring.latest().has_value());
  EXPECT_EQ(ring.latest()->t_ms, 200u);
  EXPECT_DOUBLE_EQ(ring.latest()->value, 2.0);
  EXPECT_EQ(ring.size(), 2u);
}

TEST(RingSeriesTest, OverwritesOldestAtCapacity) {
  RingSeries ring(3);
  for (int i = 0; i < 5; ++i) ring.push(100 * (i + 1), i);
  EXPECT_EQ(ring.size(), 3u);
  const auto all = ring.window(1000, 0);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all.front().t_ms, 300u);  // 100 and 200 were overwritten
  EXPECT_EQ(all.back().t_ms, 500u);
  EXPECT_DOUBLE_EQ(all.back().value, 4.0);
}

TEST(RingSeriesTest, WindowFiltersByTime) {
  RingSeries ring(16);
  for (int i = 1; i <= 10; ++i) ring.push(1000 * i, i);
  const auto recent = ring.window(10'000, 3000);  // [7000, 10000]
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent.front().t_ms, 7000u);
  EXPECT_EQ(recent.back().t_ms, 10'000u);
}

TEST(WindowAggregateTest, AvgMinMax) {
  const std::vector<Sample> s = {{1, 2.0}, {2, 8.0}, {3, 5.0}};
  EXPECT_DOUBLE_EQ(*obs::ts::window_avg(s), 5.0);
  EXPECT_DOUBLE_EQ(*obs::ts::window_min(s), 2.0);
  EXPECT_DOUBLE_EQ(*obs::ts::window_max(s), 8.0);
  EXPECT_FALSE(obs::ts::window_avg({}).has_value());
}

TEST(WindowAggregateTest, NearestRankQuantile) {
  std::vector<Sample> s;
  for (int i = 1; i <= 100; ++i) s.push_back({static_cast<std::uint64_t>(i), double(i)});
  EXPECT_DOUBLE_EQ(*obs::ts::window_quantile(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*obs::ts::window_quantile(s, 0.5), 50.0);
  EXPECT_DOUBLE_EQ(*obs::ts::window_quantile(s, 0.95), 95.0);
  EXPECT_DOUBLE_EQ(*obs::ts::window_quantile(s, 1.0), 100.0);
  EXPECT_FALSE(obs::ts::window_quantile(s, 1.5).has_value());
}

TEST(WindowAggregateTest, RatePerSecond) {
  // Counter grows by 30 over 3 s -> 10/s.
  const std::vector<Sample> s = {{1000, 10.0}, {2000, 20.0}, {4000, 40.0}};
  EXPECT_DOUBLE_EQ(*obs::ts::window_rate_per_s(s), 10.0);
  // One sample cannot support a rate.
  EXPECT_FALSE(obs::ts::window_rate_per_s({{1000, 10.0}}).has_value());
  // Counter reset (fresh registry) clamps to zero, not negative.
  EXPECT_DOUBLE_EQ(*obs::ts::window_rate_per_s({{1000, 50.0}, {2000, 3.0}}), 0.0);
}

TEST(TimeSeriesStoreTest, PushAndQuery) {
  TimeSeriesStore store(8);
  for (int i = 1; i <= 5; ++i) store.push("a{}", 1000 * i, 10.0 * i);
  EXPECT_EQ(store.series_count(), 1u);
  EXPECT_DOUBLE_EQ(*store.avg("a{}", 5000, 0), 30.0);
  EXPECT_DOUBLE_EQ(*store.rate_per_s("a{}", 5000, 0), 10.0 / 1.0);
  EXPECT_FALSE(store.avg("missing{}", 5000, 0).has_value());
}

TEST(TimeSeriesStoreTest, ObserveRegistryUsesJsonKeys) {
  obs::MetricsRegistry reg;
  reg.counter("demo_total").add(7);
  reg.counter("demo_labeled_total", {{"reason", "idle"}}).add(3);
  reg.gauge("demo_gauge").set(42);
  reg.histogram("demo_us", {}, {1, 10, 100}).observe(5);

  TimeSeriesStore store;
  store.observe_registry(reg, 1000);
  reg.counter("demo_total").add(5);
  store.observe_registry(reg, 2000);

  // Series keys match the registry's JSON export exactly.
  EXPECT_DOUBLE_EQ(store.latest("demo_total{}")->value, 12.0);
  EXPECT_DOUBLE_EQ(store.latest("demo_labeled_total{reason=\"idle\"}")->value, 3.0);
  EXPECT_DOUBLE_EQ(store.latest("demo_gauge{}")->value, 42.0);
  EXPECT_DOUBLE_EQ(store.latest("demo_us{}_count")->value, 1.0);
  EXPECT_DOUBLE_EQ(*store.rate_per_s("demo_total{}", 2000, 0), 5.0);
}

TEST(TimeSeriesStoreTest, JsonDumpIsDeterministic) {
  TimeSeriesStore store;
  store.push("b{}", 2, 2.0);
  store.push("a{}", 1, 1.0);
  const common::Json doc = store.to_json();
  ASSERT_TRUE(doc["series"].is_object());
  const auto& obj = doc["series"].as_object();
  ASSERT_EQ(obj.size(), 2u);
  EXPECT_EQ(obj.begin()->first, "a{}");  // map-ordered
  EXPECT_EQ(store.to_json().dump(), doc.dump());
}

TEST(AlertRuleTest, JsonRoundTrip) {
  AlertRule rule;
  rule.name = "r";
  rule.series = "s{}";
  rule.kind = AlertRule::Kind::BurnRate;
  rule.threshold = 4.0;
  rule.window_ms = 10'000;
  rule.long_window_ms = 60'000;
  rule.for_ms = 5000;
  const AlertRule back = AlertRule::from_json(rule.to_json());
  EXPECT_EQ(back.name, rule.name);
  EXPECT_EQ(back.series, rule.series);
  EXPECT_EQ(back.kind, rule.kind);
  EXPECT_DOUBLE_EQ(back.threshold, rule.threshold);
  EXPECT_EQ(back.window_ms, rule.window_ms);
  EXPECT_EQ(back.long_window_ms, rule.long_window_ms);
  EXPECT_EQ(back.for_ms, rule.for_ms);
}

TEST(AlertRuleTest, RejectsMalformedRules) {
  EXPECT_THROW(AlertRule::from_json(common::Json::parse("[]")), std::runtime_error);
  EXPECT_THROW(AlertRule::from_json(common::Json::parse(R"({"name":"x"})")),
               std::runtime_error);
  EXPECT_THROW(AlertRule::from_json(common::Json::parse(
                   R"({"name":"x","series":"s{}","kind":"nope","threshold":1})")),
               std::runtime_error);
  // burn_rate with long window <= short window is contradictory.
  EXPECT_THROW(
      AlertRule::from_json(common::Json::parse(
          R"({"name":"x","series":"s{}","kind":"burn_rate","threshold":1,)"
          R"("window_ms":1000,"long_window_ms":1000})")),
      std::runtime_error);
}

TEST(AlertRuleTest, RulesFromJsonAcceptsArrayOrWrapper) {
  const char* rule = R"({"name":"x","series":"s{}","kind":"rate_above","threshold":1})";
  EXPECT_EQ(AlertEngine::rules_from_json(
                common::Json::parse(std::string("[") + rule + "]"))
                .size(),
            1u);
  EXPECT_EQ(AlertEngine::rules_from_json(
                common::Json::parse(std::string(R"({"rules":[)") + rule + "]}"))
                .size(),
            1u);
  EXPECT_THROW(AlertEngine::rules_from_json(common::Json::parse("42")), std::runtime_error);
}

TEST(AlertEngineTest, RateAboveFiresAndClears) {
  AlertRule rule;
  rule.name = "hot";
  rule.series = "c{}";
  rule.kind = AlertRule::Kind::RateAbove;
  rule.threshold = 5.0;  // fires above 5/s
  rule.window_ms = 10'000;
  AlertEngine engine({rule});

  TimeSeriesStore store;
  store.push("c{}", 1000, 0);
  store.push("c{}", 2000, 100);  // 100/s
  auto alerts = engine.evaluate(store, 2000);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_TRUE(alerts[0].firing);
  EXPECT_FALSE(alerts[0].pending);
  EXPECT_DOUBLE_EQ(alerts[0].value, 100.0);
  EXPECT_EQ(engine.firing_count(), 1u);

  // Counter goes quiet: rate inside the window drops to 0 -> clears.
  store.push("c{}", 20'000, 100);
  store.push("c{}", 25'000, 100);
  alerts = engine.evaluate(store, 25'000);
  EXPECT_FALSE(alerts[0].firing);
  EXPECT_EQ(engine.firing_count(), 0u);
}

TEST(AlertEngineTest, NoDataMeansNotFiring) {
  AlertRule rule;
  rule.name = "quiet";
  rule.series = "never_written{}";
  rule.kind = AlertRule::Kind::GaugeAbove;
  rule.threshold = 1.0;
  AlertEngine engine({rule});
  TimeSeriesStore store;
  const auto& alerts = engine.evaluate(store, 1000);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_FALSE(alerts[0].firing);
  EXPECT_FALSE(alerts[0].pending);
  EXPECT_DOUBLE_EQ(alerts[0].value, 0.0);
}

TEST(AlertEngineTest, ForMsRequiresSustainedCondition) {
  AlertRule rule;
  rule.name = "sustained";
  rule.series = "g{}";
  rule.kind = AlertRule::Kind::GaugeAbove;
  rule.threshold = 10.0;
  rule.window_ms = 5000;
  rule.for_ms = 3000;
  AlertEngine engine({rule});

  TimeSeriesStore store;
  store.push("g{}", 1000, 50.0);
  auto alerts = engine.evaluate(store, 1000);
  EXPECT_TRUE(alerts[0].pending);  // condition holds, hold time not elapsed
  EXPECT_FALSE(alerts[0].firing);

  store.push("g{}", 4500, 50.0);
  alerts = engine.evaluate(store, 4500);
  EXPECT_TRUE(alerts[0].firing);  // held since 1000, 3500 >= for_ms
  EXPECT_EQ(alerts[0].since_ms, 1000u);

  // Condition breaks -> hold timer resets; re-raising starts pending again.
  // (Evaluate at t=11000 so the 5 s window holds only the zero samples.)
  store.push("g{}", 6000, 0.0);
  store.push("g{}", 7000, 0.0);
  alerts = engine.evaluate(store, 11'000);
  EXPECT_FALSE(alerts[0].firing);
  store.push("g{}", 20'000, 50.0);
  alerts = engine.evaluate(store, 20'000);
  EXPECT_TRUE(alerts[0].pending);
  EXPECT_FALSE(alerts[0].firing);
}

TEST(AlertEngineTest, GaugeBelowFires) {
  AlertRule rule;
  rule.name = "low";
  rule.series = "g{}";
  rule.kind = AlertRule::Kind::GaugeBelow;
  rule.threshold = 5.0;
  AlertEngine engine({rule});
  TimeSeriesStore store;
  store.push("g{}", 1000, 2.0);
  EXPECT_TRUE(engine.evaluate(store, 1000)[0].firing);
  store.push("g{}", 40'000, 9.0);
  EXPECT_FALSE(engine.evaluate(store, 40'000)[0].firing);
}

TEST(AlertEngineTest, BurnRateComparesShortToLongWindow) {
  AlertRule rule;
  rule.name = "burn";
  rule.series = "c{}";
  rule.kind = AlertRule::Kind::BurnRate;
  rule.threshold = 3.0;  // short-window rate > 3x long-window rate
  rule.window_ms = 10'000;
  rule.long_window_ms = 100'000;
  AlertEngine engine({rule});

  TimeSeriesStore store;
  // 90 s of slow growth (1/s), then a 10 s burst at 10/s.
  double v = 0;
  for (std::uint64_t t = 0; t <= 90'000; t += 10'000) {
    store.push("c{}", t, v);
    v += 10;  // 10 per 10 s = 1/s
  }
  v -= 10;
  store.push("c{}", 95'000, v + 50);   // burst begins
  store.push("c{}", 100'000, v + 100); // 100 over 10 s = 10/s short rate
  const auto& alerts = engine.evaluate(store, 100'000);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_TRUE(alerts[0].firing);
  EXPECT_GT(alerts[0].value, 3.0);
}

TEST(AlertEngineTest, DefaultRulesTargetRealSeries) {
  const auto rules = AlertEngine::default_rules();
  ASSERT_GE(rules.size(), 4u);
  // Rules must address series by registry JSON key (always brace-suffixed).
  for (const auto& r : rules) {
    EXPECT_NE(r.series.find('{'), std::string::npos) << r.name;
    EXPECT_FALSE(r.name.empty());
  }
  // The engine over an empty store evaluates them without firing.
  AlertEngine engine(rules);
  TimeSeriesStore store;
  engine.evaluate(store, 1000);
  EXPECT_EQ(engine.firing_count(), 0u);
  EXPECT_EQ(engine.to_json().as_array().size(), rules.size());
}

TEST(AlertEngineTest, JsonIncludesEveryRule) {
  AlertRule rule;
  rule.name = "r";
  rule.series = "s{}";
  rule.kind = AlertRule::Kind::RateAbove;
  rule.threshold = 1.0;
  AlertEngine engine({rule});
  TimeSeriesStore store;
  engine.evaluate(store, 500);
  const common::Json arr = engine.to_json();
  ASSERT_TRUE(arr.is_array());
  ASSERT_EQ(arr.as_array().size(), 1u);
  EXPECT_EQ(arr.as_array()[0]["rule"].as_string(), "r");
  EXPECT_FALSE(arr.as_array()[0]["firing"].as_bool());
  EXPECT_TRUE(arr.as_array()[0]["description"].is_string());
}
