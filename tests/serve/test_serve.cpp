// Unit tests for the `intellog serve` building blocks: TenantShard admission
// and backpressure, the circuit breaker, checkpoint/restore, the stop-signal
// flag, the stock serve alert rules, and a small end-to-end ServeDaemon run
// (the heavyweight chaos coverage lives in tools/serve_soak).
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/intellog.hpp"
#include "core/model_io.hpp"
#include "logparse/formatter.hpp"
#include "logparse/log_io.hpp"
#include "obs/export/status.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries/alerts.hpp"
#include "obs/timeseries/timeseries.hpp"
#include "serve/daemon.hpp"
#include "serve/signals.hpp"
#include "serve/tenant.hpp"
#include "simsys/workload.hpp"

namespace fs = std::filesystem;
using namespace intellog;

namespace {

/// Writes one spool of spark sessions (flat `<container>.log` files).
void make_spool(const std::string& dir, std::uint64_t seed) {
  fs::create_directories(dir);
  const simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", seed);
  const auto fmt = logparse::make_spark_formatter();
  const simsys::JobResult result = simsys::run_job(gen.training_job(), cluster, {});
  logparse::write_log_directory(*fmt, result.sessions, dir);
}

/// First line of any .log file in `dir` — a format-detectable header.
std::string first_log_line(const std::string& dir) {
  for (const auto& e : fs::directory_iterator(dir)) {
    if (!e.is_regular_file() || e.path().extension() != ".log") continue;
    std::ifstream in(e.path());
    std::string line;
    if (std::getline(in, line) && !line.empty()) return line;
  }
  ADD_FAILURE() << "no log line found in " << dir;
  return "";
}

/// A file whose format detects (via the valid header line) but whose body is
/// binary junk: every body line quarantines, which is what drives the
/// breaker tests. (A file with NO detectable format is skipped whole with a
/// single forensic quarantine sample — that path cannot storm the breaker.)
void write_garbage_file(const std::string& path, const std::string& header,
                        std::size_t lines) {
  std::ofstream out(path, std::ios::binary);
  out << header << "\n";
  for (std::size_t i = 0; i < lines; ++i) {
    out << "\x01\x02\xfe garbage payload " << i << " \xff\xff\n";
  }
}

struct SpoolTruth {
  std::uint64_t files = 0;
  std::uint64_t records = 0;
  std::uint64_t sessions = 0;
};

SpoolTruth spool_truth(const std::string& dir) {
  SpoolTruth t;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (!e.is_regular_file() || e.path().extension() != ".log") continue;
    ++t.files;
    const auto ingest = logparse::read_session_file_resilient(e.path().string());
    t.records += ingest.session.records.size();
    if (!ingest.session.records.empty() || fs::file_size(e.path()) == 0) ++t.sessions;
  }
  return t;
}

void expect_accounting_eq(const serve::TenantAccounting& a, const serve::TenantAccounting& b) {
  EXPECT_EQ(a.records_admitted, b.records_admitted);
  EXPECT_EQ(a.lines_seen, b.lines_seen);
  EXPECT_EQ(a.lines_quarantined, b.lines_quarantined);
  EXPECT_EQ(a.sessions_closed, b.sessions_closed);
  EXPECT_EQ(a.sessions_anomalous, b.sessions_anomalous);
  EXPECT_EQ(a.files_done, b.files_done);
  EXPECT_EQ(a.files_shed, b.files_shed);
  EXPECT_EQ(a.bytes_shed, b.bytes_shed);
  EXPECT_EQ(a.breaker_trips, b.breaker_trips);
}

/// Ticks until the shard reports an empty backlog and no open sessions (or
/// the safety bound trips, which fails the calling test).
std::size_t drain(serve::TenantShard& shard, std::size_t max_ticks = 200) {
  std::size_t ticks = 0;
  for (; ticks < max_ticks; ++ticks) {
    const auto r = shard.tick();
    if (r.pending_files == 0 && shard.open_sessions() == 0 &&
        shard.breaker_state() == serve::BreakerState::Closed) {
      return ticks + 1;
    }
  }
  ADD_FAILURE() << "shard did not drain within " << max_ticks << " ticks";
  return ticks;
}

class TenantShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("intellog_test_serve_") + info->name()))
               .string();
    fs::remove_all(dir_);
    make_spool(dir_, 7);
    truth_ = spool_truth(dir_);
    model_.train(logparse::read_log_directory_resilient(dir_).sessions);
  }
  void TearDown() override { fs::remove_all(dir_); }

  serve::TenantShard::Options small_budget_options() const {
    serve::TenantShard::Options opt;
    opt.quotas.max_records_per_tick = 60;  // forces several ticks per spool
    opt.quotas.max_files_per_tick = 2;
    return opt;
  }

  std::string dir_;
  SpoolTruth truth_;
  core::IntelLog model_;
};

TEST_F(TenantShardTest, AdmissionBalancesAgainstSpoolTruth) {
  serve::TenantShard shard("t", dir_, model_, small_budget_options(), 1);
  drain(shard);
  const auto& acc = shard.accounting();
  EXPECT_EQ(acc.records_admitted, truth_.records);
  EXPECT_EQ(acc.sessions_closed, truth_.sessions);
  EXPECT_EQ(acc.files_done, truth_.files);
  EXPECT_EQ(acc.files_shed, 0u);
  EXPECT_EQ(acc.breaker_trips, 0u);
}

TEST_F(TenantShardTest, RecordQuotaIsLosslessBackpressure) {
  auto opt = small_budget_options();
  opt.quotas.max_records_per_tick = 25;
  serve::TenantShard shard("t", dir_, model_, opt, 1);
  std::size_t ticks = 0;
  std::uint64_t total = 0;
  while (ticks < 400) {
    const auto r = shard.tick();
    ++ticks;
    EXPECT_LE(r.records_admitted, 25u) << "tick overran the record quota";
    total += r.records_admitted;
    if (r.pending_files == 0 && shard.open_sessions() == 0) break;
  }
  // Backpressure defers work, it never drops it.
  EXPECT_EQ(total, truth_.records);
  EXPECT_GE(ticks, truth_.records / 25);  // the quota actually throttled
}

TEST_F(TenantShardTest, CheckpointRestoreResumesToIdenticalTotals) {
  const auto opt = small_budget_options();
  serve::TenantShard full("t", dir_, model_, opt, 1);
  drain(full);

  serve::TenantShard partial("t", dir_, model_, opt, 1);
  partial.tick();
  partial.tick();  // mid-flight: cursors + open sessions + partial accounting
  const common::Json cp = partial.checkpoint();

  serve::TenantShard resumed("t", dir_, model_, opt, 2);
  resumed.restore(cp);
  expect_accounting_eq(resumed.accounting(), partial.accounting());
  drain(resumed);
  // Resume replays the remaining spool exactly once: totals match the
  // uninterrupted shard's, no double-counted sessions.
  expect_accounting_eq(resumed.accounting(), full.accounting());
}

TEST_F(TenantShardTest, RestoreRejectsBadDocumentsAndStaysFresh) {
  serve::TenantShard src("t", dir_, model_, {}, 1);
  src.tick();
  const common::Json good = src.checkpoint();

  serve::TenantShard shard("t", dir_, model_, {}, 1);

  common::Json tampered = good;
  tampered["accounting"]["records_admitted"] = 999999;  // no checksum restamp
  EXPECT_THROW(
      {
        try {
          shard.restore(tampered);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos) << e.what();
          throw;
        }
      },
      std::runtime_error);

  common::Json wrong_kind = good;
  wrong_kind["kind"] = "intellog_checkpoint";
  EXPECT_THROW(shard.restore(wrong_kind), std::runtime_error);

  common::Json future = good;
  future["version"] = serve::TenantShard::kCheckpointVersion + 1;
  EXPECT_THROW(
      {
        try {
          shard.restore(future);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
          throw;
        }
      },
      std::runtime_error);

  // Every failed restore left the shard untouched: fresh accounting, and a
  // normal drain still balances.
  EXPECT_EQ(shard.accounting().records_admitted, 0u);
  drain(shard);
  EXPECT_EQ(shard.accounting().records_admitted, truth_.records);
}

TEST_F(TenantShardTest, GarbageFloodTripsBreakerThenProbeRecloses) {
  // A fresh spool of pure garbage: first tick sees >50% quarantined lines.
  const std::string storm = dir_ + "_storm";
  fs::create_directories(storm);
  const std::string header = first_log_line(dir_);
  for (int i = 0; i < 3; ++i) {
    write_garbage_file(storm + "/garbage_" + std::to_string(i) + ".log", header, 100);
  }
  serve::TenantShard::Options opt;
  opt.breaker.open_ticks = 2;
  serve::TenantShard shard("t", storm, model_, opt, 1);

  const auto r1 = shard.tick();
  EXPECT_TRUE(r1.breaker_tripped);
  EXPECT_EQ(shard.breaker_state(), serve::BreakerState::Open);
  EXPECT_EQ(shard.accounting().breaker_trips, 1u);
  EXPECT_GT(shard.accounting().lines_quarantined, 0u);

  // While open, admission is paused (lossless): no records move.
  const auto r2 = shard.tick();
  EXPECT_EQ(r2.records_admitted, 0u);
  EXPECT_EQ(r2.lines_seen, 0u);

  // After open_ticks the breaker half-opens; a clean probe file closes it.
  shard.tick();
  EXPECT_EQ(shard.breaker_state(), serve::BreakerState::HalfOpen);
  make_spool(storm, 11);
  while (shard.breaker_state() != serve::BreakerState::Closed) shard.tick();
  EXPECT_GT(shard.accounting().records_admitted, 0u);
  fs::remove_all(storm);
}

TEST_F(TenantShardTest, ParseBombIsShedWholeWithProvenance) {
  std::uint64_t largest_clean = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    if (e.is_regular_file()) largest_clean = std::max<std::uint64_t>(largest_clean, e.file_size());
  }
  const std::uint64_t guard = largest_clean + 4096;
  {
    std::ofstream bomb(dir_ + "/aa_bomb.log", std::ios::binary);
    const std::string line(256, 'x');
    for (std::uint64_t written = 0; written <= guard + 8192; written += line.size() + 1) {
      bomb << line << "\n";
    }
  }
  auto opt = small_budget_options();
  opt.quotas.max_file_bytes = guard;
  serve::TenantShard shard("t", dir_, model_, opt, 1);

  serve::TickResult first = shard.tick();
  ASSERT_EQ(first.shed.size(), 1u);
  EXPECT_EQ(first.shed[0].reason, "parse-bomb");
  EXPECT_NE(first.shed[0].file.find("aa_bomb.log"), std::string::npos);
  EXPECT_GT(first.shed[0].bytes, guard);
  EXPECT_TRUE(first.breaker_tripped);

  // The clean files behind the bomb still complete once the breaker recloses.
  for (int i = 0; i < 200 && shard.open_sessions() + shard.tick().pending_files > 0; ++i) {
  }
  const auto& acc = shard.accounting();
  EXPECT_EQ(acc.files_shed, 1u);
  EXPECT_EQ(acc.records_admitted, truth_.records);
  EXPECT_EQ(acc.sessions_closed, truth_.sessions);
}

TEST(ServeSignalsTest, StopFlagKeepsFirstSignalAndClears) {
  serve::clear_stop_signal();
  EXPECT_EQ(serve::stop_signal(), 0);
  serve::request_stop(SIGTERM);
  EXPECT_EQ(serve::stop_signal(), SIGTERM);
  serve::request_stop(SIGINT);  // later signals keep the original intent
  EXPECT_EQ(serve::stop_signal(), SIGTERM);
  serve::clear_stop_signal();
  EXPECT_EQ(serve::stop_signal(), 0);
}

TEST(ServeRulesTest, StockRulesCoverServeGaugesAndFire) {
  const auto rules = obs::ts::AlertEngine::serve_rules();
  ASSERT_GT(rules.size(), obs::ts::AlertEngine::default_rules().size());
  bool has_saturation = false, has_breaker = false;
  for (const auto& r : rules) {
    has_saturation |= r.name == "serve-queue-saturation";
    has_breaker |= r.name == "serve-breaker-open";
  }
  EXPECT_TRUE(has_saturation);
  EXPECT_TRUE(has_breaker);

  obs::MetricsRegistry reg;
  reg.double_gauge("intellog_serve_queue_saturation_ratio", {}).set(0.95);
  reg.gauge("intellog_serve_breakers_open", {}).set(1);
  obs::ts::TimeSeriesStore store;
  store.observe_registry(reg, 1'000);
  store.observe_registry(reg, 2'000);
  obs::ts::AlertEngine engine(rules);
  std::size_t firing = 0;
  for (const auto& a : engine.evaluate(store, 2'000)) {
    if (!a.firing) continue;
    ++firing;
    EXPECT_TRUE(a.rule == "serve-queue-saturation" || a.rule == "serve-breaker-open")
        << a.rule;
  }
  EXPECT_EQ(firing, 2u);
}

TEST(ServeDaemonTest, DrainOnEmptyBalancesAndPublishesTenantStatus) {
  const std::string root =
      (fs::temp_directory_path() / "intellog_test_serve_daemon").string();
  fs::remove_all(root);
  make_spool(root + "/acme", 3);
  make_spool(root + "/globex", 4);
  const std::string model_path = root + "/model.json";
  {
    core::IntelLog model;
    model.train(logparse::read_log_directory_resilient(root).sessions);
    core::save_model_file(model, model_path);
  }
  const SpoolTruth acme = spool_truth(root + "/acme");
  const SpoolTruth globex = spool_truth(root + "/globex");

  obs::MetricsRegistry registry;
  obs::set_registry(&registry);
  serve::ServeOptions opt;
  opt.root = root;
  opt.model_path = model_path;
  opt.jobs = 2;
  opt.poll_ms = 1;
  opt.checkpoint_every_ticks = 2;
  opt.drain_on_empty = true;
  opt.handle_signals = false;
  opt.max_ticks = 200;
  opt.status_path = root + "/status.json";
  opt.shard.quotas.max_records_per_tick = 400;

  serve::ServeDaemon daemon(opt);
  EXPECT_EQ(daemon.tenants(), (std::vector<std::string>{"acme", "globex"}));
  const serve::ServeSummary summary = daemon.run();
  obs::set_registry(nullptr);

  EXPECT_FALSE(summary.killed);
  EXPECT_LT(summary.ticks, 200u);
  EXPECT_GT(summary.checkpoints_written, 0u);
  EXPECT_EQ(summary.tenants.at("acme").records_admitted, acme.records);
  EXPECT_EQ(summary.tenants.at("acme").sessions_closed, acme.sessions);
  EXPECT_EQ(summary.tenants.at("globex").records_admitted, globex.records);
  EXPECT_EQ(summary.tenants.at("globex").sessions_closed, globex.sessions);

  // The per-tenant checkpoints exist and restore cleanly in a fresh daemon
  // (which then drains immediately: nothing left to do).
  EXPECT_TRUE(fs::exists(serve::ServeDaemon::checkpoint_path(root + "/acme")));
  const serve::ServeSummary again = [&] {
    serve::ServeDaemon d2(opt);
    return d2.run();
  }();
  expect_accounting_eq(again.tenants.at("acme"), summary.tenants.at("acme"));
  expect_accounting_eq(again.tenants.at("globex"), summary.tenants.at("globex"));

  // Status document: serve schema with the tenant table, and render_top
  // shows the per-tenant rows.
  std::ifstream in(opt.status_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const common::Json status = common::Json::parse(buf.str());
  EXPECT_EQ(status["kind"].as_string(), "intellog_status");
  ASSERT_TRUE(status["tenants"].is_array());
  ASSERT_EQ(status["tenants"].as_array().size(), 2u);
  EXPECT_EQ(status["tenants"].as_array()[0]["tenant"].as_string(), "acme");
  EXPECT_EQ(status["tenants"].as_array()[0]["breaker"].as_string(), "closed");
  const std::string top = obs::render_top(status);
  EXPECT_NE(top.find("tenants:"), std::string::npos);
  EXPECT_NE(top.find("acme"), std::string::npos);
  EXPECT_NE(top.find("globex"), std::string::npos);
  fs::remove_all(root);
}

}  // namespace
