#include "common/strings.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace sc = intellog::common;

TEST(Strings, SplitBasic) {
  EXPECT_EQ(sc::split("a b c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(sc::split("a,,b", ","), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(sc::split("", " ").empty());
  EXPECT_TRUE(sc::split("   ").empty());
}

TEST(Strings, SplitWsHandlesTabsAndNewlines) {
  EXPECT_EQ(sc::split_ws("a\tb\nc  d"), (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(Strings, JoinRoundTrip) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(sc::join(parts, " "), "x y z");
  EXPECT_EQ(sc::split(sc::join(parts, ","), ","), parts);
  EXPECT_EQ(sc::join({}, " "), "");
}

TEST(Strings, ToLower) {
  EXPECT_EQ(sc::to_lower("MapTask"), "maptask");
  EXPECT_EQ(sc::to_lower("ABC123xyz"), "abc123xyz");
}

TEST(Strings, Trim) {
  EXPECT_EQ(sc::trim("  hi  "), "hi");
  EXPECT_EQ(sc::trim("\t\nx"), "x");
  EXPECT_EQ(sc::trim("   "), "");
  EXPECT_EQ(sc::trim(""), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(sc::starts_with("hdfs://x", "hdfs://"));
  EXPECT_FALSE(sc::starts_with("hd", "hdfs"));
  EXPECT_TRUE(sc::ends_with("spill.out", ".out"));
  EXPECT_FALSE(sc::ends_with("x", "xx"));
}

TEST(Strings, DigitAndLetterPredicates) {
  EXPECT_TRUE(sc::is_all_digits("012345"));
  EXPECT_FALSE(sc::is_all_digits("12a"));
  EXPECT_FALSE(sc::is_all_digits(""));
  EXPECT_TRUE(sc::has_letter("a1"));
  EXPECT_FALSE(sc::has_letter("123_:"));
  EXPECT_TRUE(sc::has_digit("attempt_01"));
  EXPECT_FALSE(sc::has_digit("attempt"));
}

TEST(Strings, IsNumber) {
  EXPECT_TRUE(sc::is_number("42"));
  EXPECT_TRUE(sc::is_number("3.5"));
  EXPECT_TRUE(sc::is_number("-7"));
  EXPECT_TRUE(sc::is_number("1,286,159"));
  EXPECT_FALSE(sc::is_number("1.2.3"));
  EXPECT_FALSE(sc::is_number("12a"));
  EXPECT_FALSE(sc::is_number(""));
  EXPECT_FALSE(sc::is_number("-"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(sc::replace_all("a*b*c", "*", "-"), "a-b-c");
  EXPECT_EQ(sc::replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(sc::replace_all("x", "", "y"), "x");
}

TEST(Strings, LcsLengthBasic) {
  EXPECT_EQ(sc::lcs_length({"a", "b", "c"}, {"a", "c"}), 2u);
  EXPECT_EQ(sc::lcs_length({"a", "b"}, {"c", "d"}), 0u);
  EXPECT_EQ(sc::lcs_length({}, {"a"}), 0u);
  EXPECT_EQ(sc::lcs_length({"x", "y", "z"}, {"x", "y", "z"}), 3u);
}

TEST(Strings, LcsLengthOverIdsMatchesStringVariant) {
  // The interned-id variant must agree with the string DP on equivalent
  // sequences (ids standing in for distinct tokens).
  EXPECT_EQ(sc::lcs_length_ids({1, 2, 3}, {1, 3}), 2u);
  EXPECT_EQ(sc::lcs_length_ids({1, 2}, {3, 4}), 0u);
  EXPECT_EQ(sc::lcs_length_ids({}, {1}), 0u);
  EXPECT_EQ(sc::lcs_length_ids({7, 8, 9}, {7, 8, 9}), 3u);
  // kAbsent (-1) message tokens never match non-negative constant ids.
  EXPECT_EQ(sc::lcs_length_ids({-1, -1, 5}, {0, 5}), 1u);
}

TEST(Strings, SplitWsViewsMatchesSplitWs) {
  const std::string s = "  read 2264\tbytes\r\nfrom map-output  ";
  std::vector<std::string_view> views;
  sc::split_ws_views(s, views);
  const auto strings = sc::split_ws(s);
  ASSERT_EQ(views.size(), strings.size());
  for (std::size_t i = 0; i < views.size(); ++i) EXPECT_EQ(views[i], strings[i]);
  sc::split_ws_views("", views);
  EXPECT_TRUE(views.empty());
  sc::split_ws_views("   \t ", views);
  EXPECT_TRUE(views.empty());
}

TEST(Strings, LcsBacktraceMatchesLength) {
  const std::vector<std::string> a = {"read", "2264", "bytes", "from", "map-output"};
  const std::vector<std::string> b = {"read", "99", "bytes", "from", "map-output"};
  const auto seq = sc::lcs(a, b);
  EXPECT_EQ(seq.size(), sc::lcs_length(a, b));
  EXPECT_EQ(seq, (std::vector<std::string>{"read", "bytes", "from", "map-output"}));
}

TEST(Strings, LongestCommonSubstringWords) {
  const auto r = sc::longest_common_substring_words({"block", "manager", "endpoint"},
                                                    {"the", "block", "manager"});
  EXPECT_EQ(r, (std::vector<std::string>{"block", "manager"}));
  EXPECT_TRUE(sc::longest_common_substring_words({"a"}, {"b"}).empty());
}

TEST(Strings, LongestCommonSubstringPrefersContiguity) {
  // LCS would find {a, c}; the contiguous version must not.
  const auto r = sc::longest_common_substring_words({"a", "b", "c"}, {"a", "x", "c"});
  EXPECT_EQ(r.size(), 1u);
}

TEST(Strings, CommonSuffixWords) {
  EXPECT_EQ(sc::common_suffix_words({"block", "manager"}, {"security", "manager"}), 1u);
  EXPECT_EQ(sc::common_suffix_words({"a", "b"}, {"a", "b"}), 2u);
  EXPECT_EQ(sc::common_suffix_words({"x"}, {"y"}), 0u);
}

TEST(Strings, EditDistance) {
  EXPECT_EQ(sc::edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(sc::edit_distance("", "abc"), 3u);
  EXPECT_EQ(sc::edit_distance("same", "same"), 0u);
}

// --- property tests -----------------------------------------------------

namespace {

/// Brute-force LCS via recursion with memo for small inputs.
std::size_t lcs_naive(const std::vector<std::string>& a, const std::vector<std::string>& b,
                      std::size_t i, std::size_t j) {
  if (i == a.size() || j == b.size()) return 0;
  if (a[i] == b[j]) return 1 + lcs_naive(a, b, i + 1, j + 1);
  return std::max(lcs_naive(a, b, i + 1, j), lcs_naive(a, b, i, j + 1));
}

std::vector<std::string> random_tokens(intellog::common::Rng& rng, std::size_t max_len) {
  static const char* kWords[] = {"a", "b", "c", "d", "e"};
  std::vector<std::string> out;
  const std::size_t n = rng.uniform(max_len + 1);
  for (std::size_t i = 0; i < n; ++i) out.push_back(kWords[rng.uniform(5)]);
  return out;
}

}  // namespace

class LcsProperty : public ::testing::TestWithParam<int> {};

TEST_P(LcsProperty, MatchesBruteForceAndInvariants) {
  sc::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 3);
  const auto a = random_tokens(rng, 8);
  const auto b = random_tokens(rng, 8);
  const std::size_t fast = sc::lcs_length(a, b);
  EXPECT_EQ(fast, lcs_naive(a, b, 0, 0));
  // Symmetry.
  EXPECT_EQ(fast, sc::lcs_length(b, a));
  // Bounded by the shorter sequence.
  EXPECT_LE(fast, std::min(a.size(), b.size()));
  // Backtrace length agrees and is a subsequence of both.
  const auto seq = sc::lcs(a, b);
  EXPECT_EQ(seq.size(), fast);
  for (const auto* side : {&a, &b}) {
    std::size_t pos = 0;
    for (const auto& w : seq) {
      while (pos < side->size() && (*side)[pos] != w) ++pos;
      ASSERT_LT(pos, side->size()) << "lcs result is not a subsequence";
      ++pos;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LcsProperty, ::testing::Range(0, 40));

class EditDistanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(EditDistanceProperty, TriangleAndIdentity) {
  sc::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 1);
  const auto make = [&] {
    std::string s;
    const std::size_t n = rng.uniform(10);
    for (std::size_t i = 0; i < n; ++i) s += static_cast<char>('a' + rng.uniform(3));
    return s;
  };
  const std::string x = make(), y = make(), z = make();
  EXPECT_EQ(sc::edit_distance(x, x), 0u);
  EXPECT_EQ(sc::edit_distance(x, y), sc::edit_distance(y, x));
  EXPECT_LE(sc::edit_distance(x, z), sc::edit_distance(x, y) + sc::edit_distance(y, z));
}

INSTANTIATE_TEST_SUITE_P(Sweep, EditDistanceProperty, ::testing::Range(0, 25));
