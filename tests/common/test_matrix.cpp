#include "common/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sc = intellog::common;
using sc::Matrix;
using sc::Vector;

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, MatVec) {
  Matrix m(2, 3);
  // [1 2 3; 4 5 6] * [1 1 1]^T = [6 15]
  double v = 1;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = v++;
  Vector x(3, 1.0), y;
  sc::matvec(m, x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Matrix, MatVecTranspose) {
  Matrix m(2, 3);
  double v = 1;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = v++;
  Vector x = {1.0, 2.0}, y;
  sc::matvec_transpose(m, x, y);
  // col sums weighted: [1*1+4*2, 2*1+5*2, 3*1+6*2] = [9, 12, 15]
  EXPECT_DOUBLE_EQ(y[0], 9.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 15.0);
}

TEST(Matrix, OuterAcc) {
  Matrix w(2, 2, 0.0);
  sc::outer_acc(w, {1.0, 2.0}, {3.0, 4.0}, 0.5);
  EXPECT_DOUBLE_EQ(w(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(w(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(w(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(w(1, 1), 4.0);
}

TEST(Matrix, PlusMinusScale) {
  Matrix a(1, 2, 1.0), b(1, 2, 2.0);
  a += b;
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(0, 1), 1.0);
  a *= 4.0;
  EXPECT_DOUBLE_EQ(a(0, 0), 4.0);
}

TEST(Matrix, ClipNorm) {
  Matrix m(1, 2);
  m(0, 0) = 3.0;
  m(0, 1) = 4.0;  // norm 5
  const double pre = m.clip_norm(2.5);
  EXPECT_DOUBLE_EQ(pre, 5.0);
  EXPECT_NEAR(m(0, 0), 1.5, 1e-12);
  EXPECT_NEAR(m(0, 1), 2.0, 1e-12);
  // No-op when under the cap.
  m.clip_norm(100.0);
  EXPECT_NEAR(m(0, 1), 2.0, 1e-12);
}

TEST(Matrix, XavierBounds) {
  sc::Rng rng(4);
  const Matrix m = Matrix::xavier(10, 20, rng);
  const double bound = std::sqrt(6.0 / 30.0);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::abs(m.data()[i]), bound);
  }
}

TEST(Matrix, SoftmaxProperties) {
  Vector v = {1.0, 2.0, 3.0};
  sc::softmax(v);
  double sum = 0;
  for (const double x : v) {
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(v[2], v[1]);
  EXPECT_GT(v[1], v[0]);
}

TEST(Matrix, SoftmaxNumericallyStable) {
  Vector v = {1000.0, 1001.0};
  sc::softmax(v);
  EXPECT_NEAR(v[0] + v[1], 1.0, 1e-12);
  EXPECT_FALSE(std::isnan(v[0]));
}

TEST(Matrix, DotAndAdd) {
  Vector a = {1, 2, 3}, b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(sc::dot(a, b), 32.0);
  sc::add_inplace(a, b);
  EXPECT_DOUBLE_EQ(a[2], 9.0);
}

TEST(Matrix, Sigmoid) {
  EXPECT_DOUBLE_EQ(sc::sigmoid(0.0), 0.5);
  EXPECT_GT(sc::sigmoid(10.0), 0.999);
  EXPECT_LT(sc::sigmoid(-10.0), 0.001);
}
