// Lock-free per-thread event ring: push/wrap arithmetic, snapshot windows,
// and the single-producer ordering contract the flight recorder builds on.
#include "common/eventring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace {

using intellog::common::EventRing;

struct Rec {
  std::uint64_t seq = 0;
  std::uint64_t payload = 0;
};

TEST(EventRing, StartsEmpty) {
  EventRing<Rec, 8> ring;
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.oldest_seq(), 0u);
  Rec out[8];
  EXPECT_EQ(ring.snapshot(out), 0u);
}

TEST(EventRing, PushBelowCapacityKeepsEverythingInOrder) {
  EventRing<Rec, 8> ring;
  for (std::uint64_t i = 0; i < 5; ++i) ring.push({i, i * 10});
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.oldest_seq(), 0u);
  Rec out[8];
  ASSERT_EQ(ring.snapshot(out), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].seq, i);
    EXPECT_EQ(out[i].payload, i * 10);
  }
}

TEST(EventRing, WrapKeepsTheNewestCapacityRecords) {
  EventRing<Rec, 8> ring;
  for (std::uint64_t i = 0; i < 21; ++i) ring.push({i, i});
  EXPECT_EQ(ring.head.load(), 21u);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.oldest_seq(), 13u);
  Rec out[8];
  ASSERT_EQ(ring.snapshot(out), 8u);
  // Oldest-first: records 13..20.
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(out[i].seq, 13 + i);
}

TEST(EventRing, HeadCountsTotalPushesNotResidency) {
  EventRing<Rec, 4> ring;
  for (std::uint64_t i = 0; i < 100; ++i) ring.push({i, 0});
  EXPECT_EQ(ring.head.load(), 100u);
  EXPECT_EQ(ring.size(), 4u);
}

TEST(EventRing, SlotIndexingIsHeadMaskedSoSeqMapsToASlot) {
  EventRing<Rec, 4> ring;
  for (std::uint64_t i = 0; i < 7; ++i) ring.push({i, 0});
  // Resident window is seqs 3..6; each must sit at records[seq & mask].
  for (std::uint64_t seq = 3; seq < 7; ++seq) {
    EXPECT_EQ(ring.records[seq & 3].seq, seq);
  }
}

// One producer, one concurrent reader: the reader's snapshots must always
// be internally ordered even while pushes race (the torn-slot caveat only
// permits a stale/garbage *latest* slot, never reordering).
TEST(EventRing, ConcurrentSnapshotSeesMonotonicSequences) {
  EventRing<Rec, 64> ring;
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) ring.push({i++, 0});
  });
  // On a loaded host the producer may not be scheduled for a while; the
  // head assertion below is only meaningful once it has run at all.
  while (ring.head.load() == 0) std::this_thread::yield();
  for (int round = 0; round < 200; ++round) {
    Rec out[64];
    const std::size_t n = ring.snapshot(out);
    std::uint64_t prev = 0;
    bool first = true;
    for (std::size_t i = 0; i < n; ++i) {
      // Skip slots the producer may be mid-writing (seq 0 default or any
      // value; the flight decoder validates records semantically — here we
      // only check the stable prefix keeps ascending).
      if (!first && out[i].seq != 0 && out[i].seq < prev) {
        // A lower seq later in the window is only legal when the producer
        // lapped us mid-copy; tolerate but don't count as ordered.
        break;
      }
      if (out[i].seq != 0) {
        prev = out[i].seq;
        first = false;
      }
    }
  }
  stop.store(true);
  producer.join();
  EXPECT_GT(ring.head.load(), 0u);
}

}  // namespace
