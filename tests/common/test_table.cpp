#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/strings.hpp"

using intellog::common::TextTable;

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "count"});
  t.add_row({"spark", "1286159"});
  t.add_row({"tez", "9"});
  const std::string r = t.render();
  // Header separator present, all lines same width.
  const auto lines = intellog::common::split(r, "\n");
  ASSERT_EQ(lines.size(), 4u);
  for (const auto& l : lines) EXPECT_EQ(l.size(), lines[0].size());
  EXPECT_NE(r.find("| spark"), std::string::npos);
}

TEST(TextTable, HandlesShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NE(t.render().find("only-one"), std::string::npos);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(intellog::common::fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(intellog::common::fmt_percent(0.8723, 2), "87.23%");
  EXPECT_EQ(intellog::common::fmt_percent(1.0, 0), "100%");
}
