#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <thread>

using intellog::common::ThreadPool;

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  EXPECT_THROW(pool.parallel_for(4, [](std::size_t i) {
    if (i == 2) throw std::logic_error("bad index");
  }),
               std::logic_error);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(8);
  std::atomic<long> sum{0};
  pool.parallel_for(10000, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 10000L * 9999 / 2);
}

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done++; });
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 50);
}

namespace {

// Blocks the pool's single worker on `gate`, queues `n` counting tasks
// behind it, then calls shutdown(mode) from a helper thread. Submits are
// probed until one throws — that is the moment stopping_ is set and the
// queue snapshot/swap has happened — so releasing the gate afterwards makes
// the drained/cancelled counts exact, not racy. Returns (done, extra_probes).
struct ShutdownRig {
  std::atomic<int> done{0};
  int queued = 0;  // counting tasks + successful probes, all gated behind the first task

  ThreadPool::Stats run(ThreadPool::DrainMode mode, int n,
                        std::vector<std::future<int>>* futures_out = nullptr) {
    ThreadPool pool(1);
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    std::atomic<bool> gate_held{false};
    pool.submit([opened, &gate_held] {
      gate_held.store(true);
      opened.wait();
    });
    // The gate task must be *running* (dequeued) before anything else is
    // queued; otherwise shutdown() can swap it out with the rest of the
    // queue and the drain/cancel counts would include it.
    while (!gate_held.load()) std::this_thread::yield();
    std::vector<std::future<int>> futures;
    for (int i = 0; i < n; ++i) {
      futures.push_back(pool.submit([this] { return ++done; }));
      ++queued;
    }
    std::thread closer([&] { pool.shutdown(mode); });
    for (;;) {
      try {
        futures.push_back(pool.submit([this] { return ++done; }));
        ++queued;
      } catch (const std::runtime_error&) {
        break;  // stopping_ is set; the queue decision is already made
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    gate.set_value();
    closer.join();
    ThreadPool::Stats s = pool.stats();
    if (futures_out != nullptr) *futures_out = std::move(futures);
    return s;
  }
};

}  // namespace

TEST(ThreadPool, ShutdownDrainRunsQueuedTasksAndCountsThem) {
  ShutdownRig rig;
  std::vector<std::future<int>> futures;
  ThreadPool::Stats s = rig.run(ThreadPool::DrainMode::Drain, 5, &futures);
  EXPECT_EQ(rig.done.load(), rig.queued);
  EXPECT_EQ(s.tasks_drained_at_shutdown, static_cast<std::uint64_t>(rig.queued));
  EXPECT_EQ(s.tasks_cancelled, 0u);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

TEST(ThreadPool, ShutdownCancelDestroysQueuedTasksAndBreaksPromises) {
  ShutdownRig rig;
  std::vector<std::future<int>> futures;
  ThreadPool::Stats s = rig.run(ThreadPool::DrainMode::Cancel, 5, &futures);
  EXPECT_EQ(rig.done.load(), 0);  // the gate held the worker; nothing ran
  EXPECT_EQ(s.tasks_cancelled, static_cast<std::uint64_t>(rig.queued));
  EXPECT_EQ(s.tasks_drained_at_shutdown, 0u);
  for (auto& f : futures) {
    try {
      f.get();
      FAIL() << "cancelled task future must not produce a value";
    } catch (const std::future_error& e) {
      EXPECT_EQ(e.code(), std::make_error_code(std::future_errc::broken_promise));
    }
  }
}

TEST(ThreadPool, ShutdownIsIdempotentAndRejectsLateSubmits) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) pool.submit([&done] { done++; });
  pool.shutdown(ThreadPool::DrainMode::Drain);
  EXPECT_EQ(done.load(), 8);
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  pool.shutdown(ThreadPool::DrainMode::Cancel);  // no-op, must not hang or recount
  EXPECT_EQ(pool.stats().tasks_cancelled, 0u);
}  // destructor runs a third shutdown; must also be a no-op
