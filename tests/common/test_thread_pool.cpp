#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

using intellog::common::ThreadPool;

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  EXPECT_THROW(pool.parallel_for(4, [](std::size_t i) {
    if (i == 2) throw std::logic_error("bad index");
  }),
               std::logic_error);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(8);
  std::atomic<long> sum{0};
  pool.parallel_for(10000, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 10000L * 9999 / 2);
}

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done++; });
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 50);
}
