#include "common/json.hpp"

#include <gtest/gtest.h>

using intellog::common::Json;
using intellog::common::JsonArray;
using intellog::common::JsonObject;

TEST(Json, ScalarsDump) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, DoubleDump) {
  EXPECT_EQ(Json(1.5).dump(), "1.5");
  EXPECT_EQ(Json(0.25).dump(), "0.25");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("line\nbreak").dump(), "\"line\\nbreak\"");
  EXPECT_EQ(Json("tab\there").dump(), "\"tab\\there\"");
  EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
}

TEST(Json, ObjectOrderingIsDeterministic) {
  Json j = Json::object();
  j["zeta"] = 1;
  j["alpha"] = 2;
  EXPECT_EQ(j.dump(), "{\"alpha\":2,\"zeta\":1}");
}

TEST(Json, NestedStructure) {
  Json j = Json::object();
  j["arr"] = Json::array();
  j["arr"].push_back(1);
  j["arr"].push_back("two");
  j["obj"]["inner"] = true;
  EXPECT_EQ(j.dump(), "{\"arr\":[1,\"two\"],\"obj\":{\"inner\":true}}");
  EXPECT_EQ(j.size(), 2u);
  EXPECT_TRUE(j.contains("arr"));
  EXPECT_FALSE(j.contains("missing"));
  EXPECT_TRUE(j["missing"].is_null());  // const access to missing key
}

TEST(Json, PrettyPrint) {
  Json j = Json::object();
  j["k"] = Json::array();
  j["k"].push_back(1);
  EXPECT_EQ(j.dump(2), "{\n  \"k\": [\n    1\n  ]\n}");
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("-13").as_int(), -13);
  EXPECT_DOUBLE_EQ(Json::parse("2.5e2").as_double(), 250.0);
  EXPECT_EQ(Json::parse("\"x\\ny\"").as_string(), "x\ny");
}

TEST(Json, ParseUnicodeEscape) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
}

TEST(Json, RoundTrip) {
  const std::string doc =
      R"({"groups":{"block":{"critical":true,"keys":[1,2,3]}},"n":42,"ratio":0.5})";
  const Json j = Json::parse(doc);
  EXPECT_EQ(Json::parse(j.dump()), j);
  EXPECT_EQ(j["groups"]["block"]["keys"][2].as_int(), 3);
  EXPECT_TRUE(j["groups"]["block"]["critical"].as_bool());
}

TEST(Json, ParseWhitespaceTolerant) {
  const Json j = Json::parse("  { \"a\" : [ 1 , 2 ] }  ");
  EXPECT_EQ(j["a"].size(), 2u);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(Json::parse("tru"), std::runtime_error);
  EXPECT_THROW(Json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(Json::parse(""), std::runtime_error);
}

TEST(Json, TypePredicates) {
  EXPECT_TRUE(Json(1).is_number());
  EXPECT_TRUE(Json(1.0).is_number());
  EXPECT_TRUE(Json(1).is_int());
  EXPECT_FALSE(Json(1.0).is_int());
  EXPECT_TRUE(Json("s").is_string());
  EXPECT_TRUE(Json::array().is_array());
  EXPECT_TRUE(Json::object().is_object());
}

TEST(Json, IntDoubleCoercion) {
  EXPECT_EQ(Json(2.9).as_int(), 2);
  EXPECT_DOUBLE_EQ(Json(7).as_double(), 7.0);
}
