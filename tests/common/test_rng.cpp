#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using intellog::common::Rng;

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.uniform01();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, WeightedChoiceRespectsWeights) {
  Rng rng(9);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) counts[rng.weighted_choice({1.0, 2.0, 7.0})]++;
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.02);
}

TEST(Rng, WeightedChoiceErrors) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_choice({}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_choice({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(w, v);
}

TEST(Rng, ForkIndependence) {
  Rng parent(42);
  Rng child = parent.fork();
  // Child stream differs from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 50; ++i) same += parent.next_u64() == child.next_u64();
  EXPECT_LT(same, 3);
}
