#include "common/interner.hpp"

#include <gtest/gtest.h>

#include <string>

using intellog::common::TokenInterner;

TEST(TokenInterner, AssignsDenseIdsInFirstSeenOrder) {
  TokenInterner in;
  EXPECT_EQ(in.intern("read"), 0);
  EXPECT_EQ(in.intern("bytes"), 1);
  EXPECT_EQ(in.intern("read"), 0);  // idempotent
  EXPECT_EQ(in.intern("from"), 2);
  EXPECT_EQ(in.size(), 3u);
}

TEST(TokenInterner, FindIsReadOnly) {
  TokenInterner in;
  in.intern("shuffle");
  EXPECT_EQ(in.find("shuffle"), 0);
  EXPECT_EQ(in.find("missing"), TokenInterner::kAbsent);
  EXPECT_EQ(in.size(), 1u);  // find never inserts
}

TEST(TokenInterner, HeterogeneousLookupNeedsNoAllocation) {
  TokenInterner in;
  in.intern("map-output");
  const std::string msg = "read map-output done";
  // Lookup through substrings of a larger buffer (the detect-path shape).
  EXPECT_EQ(in.find(std::string_view(msg).substr(5, 10)), 0);
}

TEST(TokenInterner, TextSurvivesRehash) {
  TokenInterner in;
  for (int i = 0; i < 1000; ++i) in.intern("tok" + std::to_string(i));
  // Pointers into the map keys must stay valid across growth.
  EXPECT_EQ(in.text(0), "tok0");
  EXPECT_EQ(in.text(999), "tok999");
  EXPECT_EQ(in.size(), 1000u);
}

TEST(TokenInterner, ClearResets) {
  TokenInterner in;
  in.intern("a");
  in.clear();
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(in.find("a"), TokenInterner::kAbsent);
  EXPECT_EQ(in.intern("b"), 0);
}
