#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

namespace ic = intellog::common;

TEST(PagePool, ReusesReleasedPages) {
  ic::PagePool pool;
  std::byte* a = pool.acquire();
  std::byte* b = pool.acquire();
  EXPECT_EQ(pool.stats().pages_created, 2u);
  pool.release(a);
  EXPECT_EQ(pool.stats().pages_free, 1u);
  std::byte* c = pool.acquire();
  EXPECT_EQ(c, a);  // freelist hit, no new page created
  EXPECT_EQ(pool.stats().pages_created, 2u);
  pool.release(b);
  pool.release(c);
}

TEST(Arena, BumpAllocatesWithinOnePage) {
  ic::PagePool pool;
  ic::Arena arena(&pool, /*poison_on_reset=*/false);
  char* a = static_cast<char*>(arena.allocate(100, 1));
  char* b = static_cast<char*>(arena.allocate(100, 1));
  EXPECT_EQ(b, a + 100);
  EXPECT_EQ(arena.bytes_used(), 200u);
  EXPECT_EQ(arena.pages_held(), 1u);
}

TEST(Arena, RespectsAlignment) {
  ic::PagePool pool;
  ic::Arena arena(&pool, false);
  arena.allocate(1, 1);
  void* p = arena.allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
  void* q = arena.allocate(16, 16);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % 16, 0u);
}

TEST(Arena, GrowsAcrossPagesAndTracksPeak) {
  ic::PagePool pool;
  ic::Arena arena(&pool, false);
  const std::size_t chunk = ic::PagePool::kPageSize / 2 + 1;
  arena.allocate(chunk, 1);
  arena.allocate(chunk, 1);  // doesn't fit in page 0's remainder
  EXPECT_EQ(arena.pages_held(), 2u);
  EXPECT_EQ(arena.bytes_used(), 2 * chunk);
  EXPECT_EQ(arena.bytes_peak(), 2 * chunk);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_peak(), 2 * chunk);  // peak survives reset
  EXPECT_EQ(arena.pages_held(), 2u);         // pages kept for reuse
}

TEST(Arena, OversizedAllocationsWork) {
  ic::PagePool pool;
  ic::Arena arena(&pool, false);
  const std::size_t big = ic::PagePool::kPageSize * 3;
  char* p = static_cast<char*>(arena.allocate(big, 1));
  std::memset(p, 0x5A, big);  // must be writable end to end
  EXPECT_EQ(arena.bytes_used(), big);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(Arena, ResetRewindsToFirstPage) {
  ic::PagePool pool;
  ic::Arena arena(&pool, false);
  char* first = static_cast<char*>(arena.allocate(64, 1));
  arena.allocate(ic::PagePool::kPageSize, 1);  // forces page 1
  arena.reset();
  char* again = static_cast<char*>(arena.allocate(64, 1));
  EXPECT_EQ(again, first);  // same bump cursor after O(1) reset
  // The pool freelist is untouched mid-batch: pages stay with the arena.
  EXPECT_EQ(pool.stats().pages_free, 0u);
}

TEST(Arena, CopyAndConcatRoundTrip) {
  ic::Arena arena(&ic::PagePool::global(), false);
  std::string src = "hello arena";
  std::string_view copied = arena.copy(src);
  EXPECT_EQ(copied, src);
  EXPECT_NE(copied.data(), src.data());
  std::string_view joined = arena.concat("foo ", "bar");
  EXPECT_EQ(joined, "foo bar");
  EXPECT_EQ(arena.copy("").size(), 0u);
}

TEST(Arena, PoisonOnResetScribblesDeadBytes) {
  ic::PagePool pool;
  ic::Arena arena(&pool, /*poison_on_reset=*/true);
  char* p = static_cast<char*>(arena.allocate(32, 1));
  std::memset(p, 'x', 32);
  arena.reset();
#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if defined(__SANITIZE_ADDRESS__) || __has_feature(address_sanitizer)
  // Under ASan the bytes are shadow-poisoned: touching them would fault,
  // which the dedicated death-style check below cannot portably assert
  // in-process. Allocating again must unpoison and hand the bytes back.
  char* q = static_cast<char*>(arena.allocate(32, 1));
  std::memset(q, 'y', 32);
  EXPECT_EQ(q[0], 'y');
#else
  // Without ASan poisoning degrades to a 0xCD scribble so stale views
  // read as garbage instead of the previous session's data.
  EXPECT_EQ(static_cast<unsigned char>(p[0]), 0xCD);
  EXPECT_EQ(static_cast<unsigned char>(p[31]), 0xCD);
#endif
}

TEST(Arena, MoveTransfersPages) {
  ic::PagePool pool;
  ic::Arena a(&pool, false);
  std::string_view v = a.copy("moved bytes");
  ic::Arena b = std::move(a);
  EXPECT_EQ(v, "moved bytes");  // backing pages moved, view still valid
  EXPECT_EQ(b.bytes_used(), 11u);
  EXPECT_EQ(a.pages_held(), 0u);
}

TEST(ArenaString, DefaultsToOwning) {
  ic::ArenaString s("hello");
  EXPECT_FALSE(s.is_borrowed());
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(s.view(), "hello");
  EXPECT_EQ(s.str(), std::string("hello"));
  ic::ArenaString from_sv{std::string_view("abc")};
  EXPECT_FALSE(from_sv.is_borrowed());  // implicit construction copies
}

TEST(ArenaString, BorrowedTracksBackingAndMaterializes) {
  std::string backing = "borrowed content";
  ic::ArenaString s = ic::ArenaString::borrowed(backing);
  EXPECT_TRUE(s.is_borrowed());
  EXPECT_EQ(s.data(), backing.data());  // zero-copy
  s.materialize();
  EXPECT_FALSE(s.is_borrowed());
  EXPECT_NE(s.data(), backing.data());
  backing.assign("clobbered!!!!!!!");
  EXPECT_EQ(s, "borrowed content");  // owned copy unaffected
}

TEST(ArenaString, AppendMaterializesBorrowed) {
  std::string backing = "line one";
  ic::ArenaString s = ic::ArenaString::borrowed(backing);
  s += "\nline two";
  EXPECT_FALSE(s.is_borrowed());
  EXPECT_EQ(s, "line one\nline two");
}

TEST(ArenaString, ComparesAndStreamsLikeString) {
  ic::ArenaString a("alpha");
  ic::ArenaString b = ic::ArenaString::borrowed("alpha");
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a == std::string("alpha"));
  EXPECT_TRUE(std::string("alpha") == a);  // reversed candidate
  EXPECT_TRUE(a != std::string_view("beta"));
  EXPECT_LT(a, ic::ArenaString("beta"));
  std::ostringstream os;
  os << a << "|" << b;
  EXPECT_EQ(os.str(), "alpha|alpha");
  EXPECT_EQ(std::string("x") + a, "xalpha");
  EXPECT_EQ(a + "x", "alphax");
}

TEST(ArenaString, HashMatchesViewAcrossModes) {
  std::unordered_map<ic::ArenaString, int> m;
  m[ic::ArenaString("key")] = 7;
  EXPECT_EQ(m.at(ic::ArenaString::borrowed("key")), 7);
  EXPECT_EQ(std::hash<ic::ArenaString>{}(ic::ArenaString("z")),
            std::hash<std::string_view>{}(std::string_view("z")));
}

TEST(ArenaString, SubstrFindIndex) {
  ic::ArenaString s("one two three");
  EXPECT_EQ(s.find(' '), 3u);
  EXPECT_EQ(s.find("three"), 8u);
  EXPECT_EQ(s.substr(4, 3), "two");
  EXPECT_EQ(s[0], 'o');
  EXPECT_EQ(s.size(), 13u);
  EXPECT_FALSE(s.empty());
}
