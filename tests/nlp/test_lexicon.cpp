#include "nlp/lexicon.hpp"

#include <gtest/gtest.h>

using namespace intellog::nlp;

class LexiconTest : public ::testing::Test {
 protected:
  Lexicon lex;
};

TEST_F(LexiconTest, ClosedClassWords) {
  EXPECT_EQ(lex.lookup("the")->primary, PosTag::DT);
  EXPECT_EQ(lex.lookup("of")->primary, PosTag::IN);
  EXPECT_EQ(lex.lookup("to")->primary, PosTag::TO);
  EXPECT_EQ(lex.lookup("and")->primary, PosTag::CC);
  EXPECT_EQ(lex.lookup("will")->primary, PosTag::MD);
}

TEST_F(LexiconTest, VerbInflectionsGenerated) {
  // Regular verb: fetch -> fetches/fetched/fetching.
  EXPECT_TRUE(lex.lookup("fetches")->can_be(PosTag::VBZ));
  EXPECT_TRUE(lex.lookup("fetched")->can_be(PosTag::VBD));
  EXPECT_TRUE(lex.lookup("fetched")->can_be(PosTag::VBN));
  EXPECT_TRUE(lex.lookup("fetching")->can_be(PosTag::VBG));
  // e-dropping gerund.
  EXPECT_TRUE(lex.lookup("storing")->can_be(PosTag::VBG));
  // y -> ied.
  EXPECT_TRUE(lex.lookup("retried")->can_be(PosTag::VBD));
  EXPECT_TRUE(lex.lookup("retries")->can_be(PosTag::VBZ));
}

TEST_F(LexiconTest, IrregularVerbs) {
  EXPECT_TRUE(lex.lookup("sent")->can_be(PosTag::VBD));
  EXPECT_TRUE(lex.lookup("wrote")->can_be(PosTag::VBD));
  EXPECT_TRUE(lex.lookup("written")->can_be(PosTag::VBN));
  EXPECT_TRUE(lex.lookup("ran")->can_be(PosTag::VBD));
  EXPECT_TRUE(lex.lookup("shutting")->can_be(PosTag::VBG));
  EXPECT_TRUE(lex.lookup("read")->can_be(PosTag::VBD));
  EXPECT_TRUE(lex.lookup("read")->can_be(PosTag::VB));
}

TEST_F(LexiconTest, NounVerbHomonymsPreferNoun) {
  for (const char* w : {"map", "output", "shuffle", "spill", "merge", "sort"}) {
    const auto e = lex.lookup(w);
    ASSERT_TRUE(e.has_value()) << w;
    EXPECT_TRUE(e->can_be_noun()) << w;
    EXPECT_TRUE(e->can_be_verb()) << w;
    EXPECT_EQ(e->primary, PosTag::NN) << w;
  }
}

TEST_F(LexiconTest, PluralsRegistered) {
  EXPECT_EQ(lex.lookup("tasks")->noun_reading, PosTag::NNS);
  EXPECT_EQ(lex.lookup("vertices")->noun_reading, PosTag::NNS);
  EXPECT_EQ(lex.lookup("processes")->noun_reading, PosTag::NNS);
  EXPECT_EQ(lex.lookup("queries")->noun_reading, PosTag::NNS);
}

TEST_F(LexiconTest, LemmasRecorded) {
  EXPECT_EQ(lex.lemma("retried").value(), "retry");
  EXPECT_EQ(lex.lemma("vertices").value(), "vertex");
  EXPECT_EQ(lex.lemma("sent").value(), "send");
  EXPECT_EQ(lex.lemma("running").value(), "run");
  EXPECT_EQ(lex.lemma("children").value(), "child");
  EXPECT_FALSE(lex.lemma("zzzunknown").has_value());
}

TEST_F(LexiconTest, Adjectives) {
  EXPECT_EQ(lex.lookup("remote")->primary, PosTag::JJ);
  EXPECT_EQ(lex.lookup("temporary")->primary, PosTag::JJ);
  EXPECT_TRUE(lex.lookup("free")->can_be_adjective());
  EXPECT_TRUE(lex.lookup("free")->can_be_verb());
}

TEST_F(LexiconTest, UnknownWordReturnsNullopt) {
  EXPECT_FALSE(lex.lookup("frobnicate").has_value());
}

TEST_F(LexiconTest, UserExtension) {
  lex.add("frobnicator", PosTag::NN);
  EXPECT_TRUE(lex.lookup("frobnicator")->can_be_noun());
  lex.add_verb("frobnicate");
  EXPECT_TRUE(lex.lookup("frobnicating")->can_be(PosTag::VBG));
  lex.add_noun("gizmo");
  EXPECT_EQ(lex.lemma("gizmos").value(), "gizmo");
}

TEST(LexiconMorphology, RegularForms) {
  EXPECT_EQ(regular_s_form("fetch"), "fetches");
  EXPECT_EQ(regular_s_form("pass"), "passes");
  EXPECT_EQ(regular_s_form("registry"), "registries");
  EXPECT_EQ(regular_s_form("task"), "tasks");
  EXPECT_EQ(regular_past("free"), "freed");
  EXPECT_EQ(regular_past("retry"), "retried");
  EXPECT_EQ(regular_past("launch"), "launched");
  EXPECT_EQ(regular_gerund("store"), "storing");
  EXPECT_EQ(regular_gerund("read"), "reading");
  EXPECT_EQ(regular_gerund("free"), "freeing");
}
