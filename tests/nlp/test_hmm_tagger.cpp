#include "nlp/hmm_tagger.hpp"

#include <gtest/gtest.h>

#include "simsys/workload.hpp"

using namespace intellog;
using namespace intellog::nlp;

namespace {

std::vector<std::string> corpus_messages(const std::string& system, int jobs,
                                         std::uint64_t seed) {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen(system, seed);
  std::vector<std::string> out;
  for (int i = 0; i < jobs; ++i) {
    const simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (const auto& s : job.sessions) {
      for (const auto& rec : s.records) out.push_back(rec.content.str());
    }
  }
  return out;
}

Token make(std::string text, PosTag tag) {
  Token t(std::move(text));
  t.tag = tag;
  return t;
}

}  // namespace

TEST(HmmTagger, UntrainedReturnsDefaultTokens) {
  HmmTagger hmm;
  EXPECT_FALSE(hmm.trained());
  const auto toks = hmm.tag({"hello", "world"});
  ASSERT_EQ(toks.size(), 2u);
}

TEST(HmmTagger, LearnsToyGrammar) {
  // DT NN VBZ NN, with unambiguous words.
  std::vector<std::vector<Token>> data;
  for (int i = 0; i < 20; ++i) {
    data.push_back({make("the", PosTag::DT), make("task", PosTag::NN),
                    make("reads", PosTag::VBZ), make("blocks", PosTag::NNS)});
    data.push_back({make("the", PosTag::DT), make("driver", PosTag::NN),
                    make("sends", PosTag::VBZ), make("results", PosTag::NNS)});
  }
  HmmTagger hmm;
  hmm.train(data);
  const auto toks = hmm.tag({"the", "driver", "reads", "blocks"});
  EXPECT_EQ(toks[0].tag, PosTag::DT);
  EXPECT_EQ(toks[1].tag, PosTag::NN);
  EXPECT_EQ(toks[2].tag, PosTag::VBZ);
  EXPECT_EQ(toks[3].tag, PosTag::NNS);
}

TEST(HmmTagger, TransitionsDisambiguateHomonyms) {
  // "map" is NN after DT but VB after TO in the training signal.
  std::vector<std::vector<Token>> data;
  for (int i = 0; i < 30; ++i) {
    data.push_back({make("the", PosTag::DT), make("map", PosTag::NN)});
    data.push_back({make("to", PosTag::TO), make("map", PosTag::VB)});
  }
  HmmTagger hmm;
  hmm.train(data);
  EXPECT_EQ(hmm.tag({"the", "map"})[1].tag, PosTag::NN);
  EXPECT_EQ(hmm.tag({"to", "map"})[1].tag, PosTag::VB);
}

TEST(HmmTagger, UnknownWordsUseSuffixBackoff) {
  std::vector<std::vector<Token>> data;
  for (int i = 0; i < 30; ++i) {
    data.push_back({make("starting", PosTag::VBG), make("task", PosTag::NN)});
    data.push_back({make("stopping", PosTag::VBG), make("system", PosTag::NN)});
  }
  HmmTagger hmm;
  hmm.train(data);
  // "flushing" is unseen; the -ing suffix row says VBG.
  EXPECT_EQ(hmm.tag({"flushing", "task"})[0].tag, PosTag::VBG);
}

TEST(HmmTagger, BootstrapAgreesWithTeacherOnHeldOut) {
  const PosTagger teacher;
  HmmTagger hmm;
  hmm.bootstrap(teacher, corpus_messages("spark", 6, 91));
  EXPECT_TRUE(hmm.trained());
  EXPECT_GT(hmm.vocabulary_size(), 50u);
  // Held-out corpus from different jobs/seed: high (not perfect) agreement.
  const double agree = hmm.agreement(teacher, corpus_messages("spark", 2, 92));
  EXPECT_GT(agree, 0.9);
  EXPECT_LE(agree, 1.0);
}

TEST(HmmTagger, CrossSystemGeneralization) {
  const PosTagger teacher;
  HmmTagger hmm;
  hmm.bootstrap(teacher, corpus_messages("mapreduce", 3, 93));
  // Tagging a Spark sentence it never saw still yields sane structure.
  const auto toks = hmm.tag_message("Registering BlockManager BlockManagerId(2)");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_TRUE(is_verb(toks[0].tag));
}

TEST(HmmTagger, Fig3SentenceMatchesRuleTagger) {
  const PosTagger teacher;
  HmmTagger hmm;
  hmm.bootstrap(teacher, corpus_messages("mapreduce", 5, 94));
  const auto hmm_tags = hmm.tag_message("Starting MapTask metrics system");
  const auto rule_tags = teacher.tag_message("Starting MapTask metrics system");
  ASSERT_EQ(hmm_tags.size(), rule_tags.size());
  EXPECT_EQ(hmm_tags[0].tag, PosTag::VBG);
  for (std::size_t i = 1; i < hmm_tags.size(); ++i) {
    EXPECT_TRUE(is_noun(hmm_tags[i].tag)) << hmm_tags[i].text;
  }
}
