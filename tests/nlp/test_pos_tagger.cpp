#include "nlp/pos_tagger.hpp"

#include <gtest/gtest.h>

#include "nlp/tokenizer.hpp"

using namespace intellog::nlp;

namespace {

std::vector<PosTag> tags_of(const PosTagger& tagger, std::string_view message) {
  std::vector<PosTag> out;
  for (const auto& t : tagger.tag_message(message)) out.push_back(t.tag);
  return out;
}

PosTag tag_of_word(const PosTagger& tagger, std::string_view message, std::string_view word) {
  for (const auto& t : tagger.tag_message(message)) {
    if (t.text == word) return t.tag;
  }
  ADD_FAILURE() << "word '" << word << "' not found in '" << message << "'";
  return PosTag::FW;
}

}  // namespace

class PosTaggerTest : public ::testing::Test {
 protected:
  PosTagger tagger;
};

TEST_F(PosTaggerTest, Fig3Example) {
  // "Starting MapTask metrics system" — the paper's Fig. 3.
  const auto tags = tags_of(tagger, "Starting MapTask metrics system");
  EXPECT_EQ(tags[0], PosTag::VBG);       // Starting
  EXPECT_TRUE(is_noun(tags[1]));          // MapTask (class name)
  EXPECT_TRUE(is_noun(tags[2]));          // metrics
  EXPECT_TRUE(is_noun(tags[3]));          // system
}

TEST_F(PosTaggerTest, NumbersAreCd) {
  EXPECT_EQ(tag_of_word(tagger, "read 2264 bytes", "2264"), PosTag::CD);
  EXPECT_EQ(tag_of_word(tagger, "task 1.0 in stage 0.0", "1.0"), PosTag::CD);
}

TEST_F(PosTaggerTest, IdentifiersAreNnp) {
  EXPECT_EQ(tag_of_word(tagger, "output of map attempt_01", "attempt_01"), PosTag::NNP);
  EXPECT_EQ(tag_of_word(tagger, "host1:13562 freed by fetcher", "host1:13562"), PosTag::NNP);
  EXPECT_EQ(tag_of_word(tagger, "stored in /tmp/spark", "/tmp/spark"), PosTag::NNP);
}

TEST_F(PosTaggerTest, VerbAfterToIsBase) {
  // "about to shuffle" — shuffle is a noun/verb homonym.
  EXPECT_EQ(tag_of_word(tagger, "fetcher about to shuffle output", "shuffle"), PosTag::VB);
  EXPECT_EQ(tag_of_word(tagger, "allowed to commit now", "commit"), PosTag::VB);
}

TEST_F(PosTaggerTest, NounAfterPrepositionOrDeterminer) {
  EXPECT_TRUE(is_noun(tag_of_word(tagger, "output of map attempt_01", "map")));
  EXPECT_TRUE(is_noun(tag_of_word(tagger, "finished the merge", "merge")));
  EXPECT_TRUE(is_noun(tag_of_word(tagger, "waiting for fetch", "fetch")));
}

TEST_F(PosTaggerTest, PassiveParticipleBeforeBy) {
  // "freed by fetcher" — Fig. 1 line 3.
  EXPECT_EQ(tag_of_word(tagger, "host1:13562 freed by fetcher # 1 in 4ms", "freed"),
            PosTag::VBN);
}

TEST_F(PosTaggerTest, PastAfterBeIsParticiple) {
  EXPECT_EQ(tag_of_word(tagger, "task was killed by user", "killed"), PosTag::VBN);
  EXPECT_EQ(tag_of_word(tagger, "block is stored in memory", "stored"), PosTag::VBN);
}

TEST_F(PosTaggerTest, NounHomonymBeforeNumberIsVerb) {
  // "[fetcher # 1] read 2264 bytes" — read acts as the predicate.
  EXPECT_TRUE(is_verb(tag_of_word(tagger, "[fetcher # 1] read 2264 bytes from map-output",
                                  "read")));
}

TEST_F(PosTaggerTest, SymbolsAndPunct) {
  const auto tags = tags_of(tagger, "[fetcher # 1]");
  EXPECT_EQ(tags[0], PosTag::PUNCT);  // [
  EXPECT_EQ(tags[2], PosTag::SYM);    // #
  EXPECT_EQ(tags[3], PosTag::CD);     // 1
  EXPECT_EQ(tags[4], PosTag::PUNCT);  // ]
  EXPECT_EQ(tag_of_word(tagger, "log key * here", "*"), PosTag::SYM);
}

TEST_F(PosTaggerTest, UnknownWordSuffixes) {
  EXPECT_EQ(tag_of_word(tagger, "frobnicating the queue", "frobnicating"), PosTag::VBG);
  EXPECT_EQ(tag_of_word(tagger, "task gloriously done", "gloriously"), PosTag::RB);
  EXPECT_TRUE(is_noun(tag_of_word(tagger, "finished the lobotomization", "lobotomization")));
}

TEST_F(PosTaggerTest, AcronymsAreProperNouns) {
  EXPECT_EQ(tag_of_word(tagger, "finished task (TID 3)", "TID"), PosTag::NNP);
  // "DAG" is a lexicon noun (Tez vocabulary), so it reads as NN, not NNP;
  // unknown acronyms fall back to NNP.
  EXPECT_TRUE(is_noun(tag_of_word(tagger, "submitted DAG to cluster", "DAG")));
  EXPECT_EQ(tag_of_word(tagger, "received SIGKILL from RM", "SIGKILL"), PosTag::NNP);
}

TEST_F(PosTaggerTest, Fig4Sentence) {
  // "Finished task 1.0 in stage 0.0 (TID 3). 2578 bytes result sent to driver"
  const auto toks =
      tagger.tag_message("Finished task 1.0 in stage 0.0 (TID 3). 2578 bytes result sent to driver");
  // Spot checks.
  EXPECT_TRUE(is_verb(toks[0].tag));                   // Finished
  EXPECT_TRUE(is_noun(tag_of_word(tagger, "2578 bytes result sent to driver", "result")));
  EXPECT_TRUE(is_verb(tag_of_word(tagger, "2578 bytes result sent to driver", "sent")));
  EXPECT_TRUE(is_noun(tag_of_word(tagger, "2578 bytes result sent to driver", "driver")));
}

TEST_F(PosTaggerTest, SentenceRestartAfterPeriod) {
  // After '.', capitalization does not imply a proper noun.
  const auto toks = tagger.tag_message("4 finished. Closing");
  EXPECT_EQ(toks.back().tag, PosTag::VBG);
}

TEST_F(PosTaggerTest, ModalForcesVerb) {
  EXPECT_EQ(tag_of_word(tagger, "container will exit now", "exit"), PosTag::VB);
}

TEST(PosTagNames, RoundTrip) {
  for (const PosTag t : {PosTag::NN, PosTag::NNS, PosTag::NNP, PosTag::JJ, PosTag::VB,
                         PosTag::VBD, PosTag::VBG, PosTag::VBN, PosTag::VBZ, PosTag::IN,
                         PosTag::TO, PosTag::DT, PosTag::CD, PosTag::RB, PosTag::MD}) {
    EXPECT_EQ(pos_from_string(to_string(t)), t);
  }
  EXPECT_EQ(pos_from_string("JJR"), PosTag::JJ);
  EXPECT_EQ(pos_from_string("???"), PosTag::FW);
}
