#include "nlp/tokenizer.hpp"

#include <gtest/gtest.h>

using intellog::nlp::is_atomic_token;
using intellog::nlp::tokenize;

TEST(Tokenizer, PlainSentence) {
  EXPECT_EQ(tokenize("Starting MapTask metrics system"),
            (std::vector<std::string>{"Starting", "MapTask", "metrics", "system"}));
}

TEST(Tokenizer, KeepsIdentifiersIntact) {
  const auto t = tokenize("read 2264 bytes from map-output for attempt_01");
  EXPECT_EQ(t, (std::vector<std::string>{"read", "2264", "bytes", "from", "map-output", "for",
                                         "attempt_01"}));
}

TEST(Tokenizer, HostPortIsAtomic) {
  const auto t = tokenize("host1:13562 freed by fetcher");
  EXPECT_EQ(t[0], "host1:13562");
}

TEST(Tokenizer, SplitsNumberUnitFusion) {
  EXPECT_EQ(tokenize("in 4ms"), (std::vector<std::string>{"in", "4", "ms"}));
  EXPECT_EQ(tokenize("took 2.5s"), (std::vector<std::string>{"took", "2.5", "s"}));
  EXPECT_EQ(tokenize("128MB limit"), (std::vector<std::string>{"128", "MB", "limit"}));
}

TEST(Tokenizer, HashIsItsOwnToken) {
  EXPECT_EQ(tokenize("fetcher#1 done"), (std::vector<std::string>{"fetcher", "#", "1", "done"}));
  EXPECT_EQ(tokenize("fetcher # 1"), (std::vector<std::string>{"fetcher", "#", "1"}));
}

TEST(Tokenizer, BracketsAndSentencePunct) {
  const auto t = tokenize("[fetcher] read 1 byte.");
  EXPECT_EQ(t, (std::vector<std::string>{"[", "fetcher", "]", "read", "1", "byte", "."}));
}

TEST(Tokenizer, ParensAroundIdentifier) {
  const auto t = tokenize("(TID 3).");
  EXPECT_EQ(t, (std::vector<std::string>{"(", "TID", "3", ")", "."}));
}

TEST(Tokenizer, DecimalNumbersSurvive) {
  const auto t = tokenize("task 1.0 in stage 0.0");
  EXPECT_EQ(t, (std::vector<std::string>{"task", "1.0", "in", "stage", "0.0"}));
}

TEST(Tokenizer, PathsAreAtomic) {
  const auto t = tokenize("Deleting directory /tmp/spark-abc/blockmgr-1.");
  EXPECT_EQ(t.back(), ".");
  EXPECT_EQ(t[t.size() - 2], "/tmp/spark-abc/blockmgr-1");
}

TEST(Tokenizer, UrisAreAtomic) {
  const auto t = tokenize("saved to hdfs://master:9000/user/out");
  EXPECT_EQ(t[2], "hdfs://master:9000/user/out");
  EXPECT_TRUE(is_atomic_token("hdfs://master:9000/user/out"));
}

TEST(Tokenizer, TrailingColonStripped) {
  const auto t = tokenize("Processing split: /data/part-0");
  EXPECT_EQ(t, (std::vector<std::string>{"Processing", "split", ":", "/data/part-0"}));
}

TEST(Tokenizer, EqualsSplits) {
  const auto t = tokenize("memory=4096 used");
  EXPECT_EQ(t, (std::vector<std::string>{"memory", "=", "4096", "used"}));
}

TEST(Tokenizer, AsteriskKept) {
  EXPECT_EQ(tokenize("freed by fetcher # *"),
            (std::vector<std::string>{"freed", "by", "fetcher", "#", "*"}));
}

TEST(Tokenizer, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize("   \t  ").empty());
}

TEST(Tokenizer, AtomicPredicate) {
  EXPECT_TRUE(is_atomic_token("attempt_01"));
  EXPECT_TRUE(is_atomic_token("host1:13562"));
  EXPECT_TRUE(is_atomic_token("/var/log/app.log"));
  EXPECT_FALSE(is_atomic_token("fetcher"));
  EXPECT_FALSE(is_atomic_token("4ms"));
}
