#include "nlp/dependency_parser.hpp"

#include <gtest/gtest.h>

#include "nlp/pos_tagger.hpp"
#include "nlp/tokenizer.hpp"

using namespace intellog::nlp;

class DepParserTest : public ::testing::Test {
 protected:
  std::vector<ClauseParse> parse(std::string_view msg) {
    tokens = tagger.tag(tokenize(msg));
    return parser.parse(tokens);
  }
  std::string word_at(std::ptrdiff_t i) const {
    return i < 0 ? std::string{} : tokens[static_cast<std::size_t>(i)].lower;
  }

  PosTagger tagger;
  DependencyParser parser;
  std::vector<Token> tokens;
};

TEST_F(DepParserTest, SimpleActiveClause) {
  const auto clauses = parse("fetcher freed the buffer");
  ASSERT_EQ(clauses.size(), 1u);
  const auto& c = clauses[0];
  ASSERT_GE(c.root, 0);
  EXPECT_EQ(word_at(c.root), "freed");
  EXPECT_EQ(word_at(c.dependent_of(static_cast<std::size_t>(c.root), Relation::Nsubj)),
            "fetcher");
  EXPECT_EQ(word_at(c.dependent_of(static_cast<std::size_t>(c.root), Relation::Dobj)), "buffer");
  EXPECT_FALSE(c.passive);
}

TEST_F(DepParserTest, PassiveWithAgent) {
  // Fig. 1 line 3: "host1:13562 freed by fetcher # 1 in 4ms"
  const auto clauses = parse("host1:13562 freed by fetcher # 1 in 4ms");
  ASSERT_EQ(clauses.size(), 1u);
  const auto& c = clauses[0];
  EXPECT_EQ(word_at(c.root), "freed");
  EXPECT_TRUE(c.passive);
  const auto subj = c.dependent_of(static_cast<std::size_t>(c.root), Relation::Nsubjpass);
  EXPECT_EQ(word_at(subj), "host1:13562");
  const auto agent = c.dependent_of(static_cast<std::size_t>(c.root), Relation::Nmod);
  EXPECT_EQ(word_at(agent), "fetcher");
}

TEST_F(DepParserTest, XcompAboutTo) {
  // Fig. 1 line 1: "fetcher # 1 about to shuffle output of map attempt_01"
  const auto clauses = parse("fetcher # 1 about to shuffle output of map attempt_01");
  ASSERT_EQ(clauses.size(), 1u);
  const auto& c = clauses[0];
  EXPECT_EQ(word_at(c.root), "shuffle");
  EXPECT_EQ(word_at(c.dependent_of(static_cast<std::size_t>(c.root), Relation::Nsubj)),
            "fetcher");
  // dobj head is the last noun of the NP run "output of map attempt_01"...
  const auto obj = c.dependent_of(static_cast<std::size_t>(c.root), Relation::Dobj);
  EXPECT_TRUE(word_at(obj) == "output" || word_at(obj) == "map" ||
              word_at(obj) == "attempt_01");
}

TEST_F(DepParserTest, ReadBytesWithNmod) {
  const auto clauses = parse("[fetcher # 1] read 2264 bytes from map-output for attempt_01");
  ASSERT_EQ(clauses.size(), 1u);
  const auto& c = clauses[0];
  EXPECT_EQ(word_at(c.root), "read");
  EXPECT_EQ(word_at(c.dependent_of(static_cast<std::size_t>(c.root), Relation::Nsubj)),
            "fetcher");
  EXPECT_EQ(word_at(c.dependent_of(static_cast<std::size_t>(c.root), Relation::Dobj)), "bytes");
  EXPECT_EQ(word_at(c.dependent_of(static_cast<std::size_t>(c.root), Relation::Nmod)),
            "map-output");
}

TEST_F(DepParserTest, TwoClausesSplitAtPeriod) {
  // Fig. 4 sentence.
  const auto clauses =
      parse("Finished task 1.0 in stage 0.0 (TID 3). 2578 bytes result sent to driver");
  ASSERT_EQ(clauses.size(), 2u);
  EXPECT_EQ(word_at(clauses[0].root), "finished");
  EXPECT_EQ(word_at(clauses[1].root), "sent");
  const auto& c2 = clauses[1];
  EXPECT_EQ(word_at(c2.dependent_of(static_cast<std::size_t>(c2.root), Relation::Nmod)),
            "driver");
}

TEST_F(DepParserTest, NominalClauseHasNoPredicate) {
  // The paper's missed-operation example (§6.2).
  const auto clauses = parse("Down to the last merge-pass");
  ASSERT_EQ(clauses.size(), 1u);
  EXPECT_TRUE(clauses[0].nominal_root);
}

TEST_F(DepParserTest, ImperativeGerundStart) {
  const auto clauses = parse("Registering BlockManager bm_1");
  ASSERT_EQ(clauses.size(), 1u);
  const auto& c = clauses[0];
  EXPECT_EQ(word_at(c.root), "registering");
  EXPECT_FALSE(c.nominal_root);
  // No subject before a clause-initial gerund.
  EXPECT_LT(c.dependent_of(static_cast<std::size_t>(c.root), Relation::Nsubj), 0);
}

TEST_F(DepParserTest, XcompAllowedToCommit) {
  const auto clauses = parse("Task attempt attempt_01 is allowed to commit now");
  ASSERT_EQ(clauses.size(), 1u);
  const auto& c = clauses[0];
  EXPECT_EQ(word_at(c.root), "allowed");
  EXPECT_TRUE(c.passive);
  bool has_xcomp = false;
  for (const auto& d : c.deps) {
    if (d.rel == Relation::Xcomp && word_at(static_cast<std::ptrdiff_t>(d.dependent)) == "commit")
      has_xcomp = true;
  }
  EXPECT_TRUE(has_xcomp);
}

TEST_F(DepParserTest, EmptyInput) {
  EXPECT_TRUE(parse("").empty());
}

TEST_F(DepParserTest, ClauseBoundariesSkipEmptyClauses) {
  const auto clauses = parse("done. . done");
  // No empty clause objects for consecutive periods.
  for (const auto& c : clauses) EXPECT_GT(c.end, c.begin);
}

TEST(RelationNames, ToString) {
  EXPECT_EQ(to_string(Relation::Root), "ROOT");
  EXPECT_EQ(to_string(Relation::Nsubjpass), "nsubjpass");
  EXPECT_EQ(to_string(Relation::Xcomp), "xcomp");
}
