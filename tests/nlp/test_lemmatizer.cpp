#include "nlp/lemmatizer.hpp"

#include <gtest/gtest.h>

using namespace intellog::nlp;

class LemmatizerTest : public ::testing::Test {
 protected:
  LemmatizerTest() : lemmatizer(&lexicon) {}
  Lexicon lexicon;
  Lemmatizer lemmatizer;
};

TEST_F(LemmatizerTest, LexiconIrregulars) {
  EXPECT_EQ(lemmatizer.lemma("vertices"), "vertex");
  EXPECT_EQ(lemmatizer.lemma("children"), "child");
  EXPECT_EQ(lemmatizer.lemma("sent"), "send");
  EXPECT_EQ(lemmatizer.lemma("ran"), "run");
  EXPECT_EQ(lemmatizer.lemma("freed"), "free");
  EXPECT_EQ(lemmatizer.lemma("shuffling"), "shuffle");
}

TEST_F(LemmatizerTest, KnownBaseFormsUnchanged) {
  EXPECT_EQ(lemmatizer.lemma("task"), "task");
  EXPECT_EQ(lemmatizer.lemma("status"), "status");
  EXPECT_EQ(lemmatizer.lemma("metrics"), "metrics");  // registered as its own plural
}

TEST_F(LemmatizerTest, UnknownPluralFallback) {
  EXPECT_EQ(lemmatizer.lemma("widgets"), "widget");
  EXPECT_EQ(lemmatizer.lemma("batches"), "batch");
  EXPECT_EQ(lemmatizer.lemma("factories"), "factory");
  // -ss, -us, -is words are not plurals.
  EXPECT_EQ(lemmatizer.lemma("clazz"), "clazz");
  EXPECT_EQ(lemmatizer.lemma("corpus"), "corpus");
  EXPECT_EQ(lemmatizer.lemma("analysis"), "analysis");
}

TEST_F(LemmatizerTest, PhraseLemmatizesHeadOnly) {
  EXPECT_EQ(lemmatizer.lemmatize_phrase({"map", "completion", "events"}),
            (std::vector<std::string>{"map", "completion", "event"}));
  EXPECT_EQ(lemmatizer.lemmatize_phrase({"Remote", "Fetches"}),
            (std::vector<std::string>{"remote", "fetch"}));
  EXPECT_TRUE(lemmatizer.lemmatize_phrase({}).empty());
}

TEST(LemmatizerNoLexicon, FallbackOnly) {
  Lemmatizer bare;
  EXPECT_EQ(bare.lemma("tasks"), "task");
  EXPECT_EQ(bare.lemma("task"), "task");
}
