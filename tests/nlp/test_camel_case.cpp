#include "nlp/camel_case.hpp"

#include <gtest/gtest.h>

using namespace intellog::nlp;

TEST(CamelCase, PaperExample) {
  EXPECT_EQ(split_camel_case("MapTask"), (std::vector<std::string>{"map", "task"}));
}

TEST(CamelCase, MultiWordClassNames) {
  EXPECT_EQ(split_camel_case("BlockManagerEndpoint"),
            (std::vector<std::string>{"block", "manager", "endpoint"}));
  EXPECT_EQ(split_camel_case("ShuffleConsumerPlugin"),
            (std::vector<std::string>{"shuffle", "consumer", "plugin"}));
}

TEST(CamelCase, AcronymRuns) {
  EXPECT_EQ(split_camel_case("NMTokenCache"), (std::vector<std::string>{"nm", "token", "cache"}));
  EXPECT_EQ(split_camel_case("MRAppMaster"), (std::vector<std::string>{"mr", "app", "master"}));
  EXPECT_EQ(split_camel_case("DAGAppMaster"), (std::vector<std::string>{"dag", "app", "master"}));
}

TEST(CamelCase, LowerCamel) {
  EXPECT_EQ(split_camel_case("mapTask"), (std::vector<std::string>{"map", "task"}));
}

TEST(CamelCase, PlainWordsSinglePart) {
  EXPECT_EQ(split_camel_case("fetcher"), (std::vector<std::string>{"fetcher"}));
  EXPECT_EQ(split_camel_case("TERM"), (std::vector<std::string>{"term"}));
}

TEST(CamelCase, HyphensAreNotCamel) {
  EXPECT_EQ(split_camel_case("map-output"), (std::vector<std::string>{"map-output"}));
  EXPECT_EQ(split_camel_case("non-empty"), (std::vector<std::string>{"non-empty"}));
  EXPECT_FALSE(is_camel_case("merge-pass"));
}

TEST(CamelCase, DigitsSeparate) {
  EXPECT_EQ(split_camel_case("Task2"), (std::vector<std::string>{"task", "2"}));
}

TEST(CamelCase, Predicate) {
  EXPECT_TRUE(is_camel_case("MapTask"));
  EXPECT_TRUE(is_camel_case("mapTask"));
  EXPECT_FALSE(is_camel_case("task"));
  EXPECT_FALSE(is_camel_case("TERM"));
  EXPECT_FALSE(is_camel_case(""));
}

TEST(SnakeCase, Filter) {
  EXPECT_EQ(split_snake_case("map_task"), (std::vector<std::string>{"map", "task"}));
  EXPECT_EQ(split_snake_case("resource_tracker_service"),
            (std::vector<std::string>{"resource", "tracker", "service"}));
  // Identifier-like tokens with digits are left alone.
  EXPECT_TRUE(split_snake_case("attempt_01").empty());
  EXPECT_TRUE(split_snake_case("plain").empty());
}
