// LogStreamCorruptor: the seeded ingestion adversary must be deterministic,
// cover every fault kind, and keep an honest provenance map — those are the
// properties the chaos soak's invariants stand on.
#include "simsys/corruptor.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

using namespace intellog;

namespace {

std::vector<std::string> spark_lines(std::size_t n) {
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < n; ++i) {
    lines.push_back("19/06/01 06:00:" + std::string(i % 60 < 10 ? "0" : "") +
                    std::to_string(i % 60) + " INFO executor.Executor: Running task " +
                    std::to_string(i) + " in stage 0.0");
  }
  return lines;
}

}  // namespace

TEST(Corruptor, ZeroSpecIsIdentity) {
  const auto input = spark_lines(50);
  simsys::LogStreamCorruptor c({}, 7);
  const auto out = c.corrupt(input);
  ASSERT_EQ(out.lines, input);
  ASSERT_EQ(out.origin.size(), input.size());
  for (std::size_t i = 0; i < out.origin.size(); ++i) {
    EXPECT_EQ(out.origin[i], static_cast<std::int64_t>(i));
  }
  EXPECT_TRUE(out.dropped.empty());
  EXPECT_EQ(c.stats().total_faults(), 0u);
}

TEST(Corruptor, DeterministicInSeed) {
  const auto input = spark_lines(200);
  simsys::LogStreamCorruptor a(simsys::CorruptionSpec::all(0.1), 42);
  simsys::LogStreamCorruptor b(simsys::CorruptionSpec::all(0.1), 42);
  simsys::LogStreamCorruptor c(simsys::CorruptionSpec::all(0.1), 43);
  const auto ra = a.corrupt(input);
  const auto rb = b.corrupt(input);
  EXPECT_EQ(ra.lines, rb.lines);
  EXPECT_EQ(ra.origin, rb.origin);
  EXPECT_EQ(ra.dropped, rb.dropped);
  // A different seed must actually change the stream.
  EXPECT_NE(ra.lines, c.corrupt(input).lines);
}

TEST(Corruptor, EveryFaultKindFires) {
  // High intensity over a long stream: each kind must occur at least once
  // (deterministically — fixed seed).
  const auto input = spark_lines(2000);
  simsys::LogStreamCorruptor c(simsys::CorruptionSpec::all(0.1), 1);
  (void)c.corrupt(input);
  const auto& st = c.stats();
  EXPECT_GT(st.torn, 0u);
  EXPECT_GT(st.duplicated, 0u);
  EXPECT_GT(st.reordered, 0u);
  EXPECT_GT(st.garbage, 0u);
  EXPECT_GT(st.dropped, 0u);
  EXPECT_GT(st.skewed, 0u);
  EXPECT_GT(st.rotations, 0u);
  EXPECT_EQ(st.input_lines, input.size());
}

TEST(Corruptor, OriginMapIsByteAccurate) {
  const auto input = spark_lines(500);
  simsys::LogStreamCorruptor c(simsys::CorruptionSpec::all(0.05), 9);
  const auto out = c.corrupt(input);
  ASSERT_EQ(out.lines.size(), out.origin.size());
  for (std::size_t i = 0; i < out.lines.size(); ++i) {
    if (out.origin[i] < 0) continue;
    ASSERT_LT(static_cast<std::size_t>(out.origin[i]), input.size());
    // origin >= 0 promises byte-identical reproduction of that input line.
    EXPECT_EQ(out.lines[i], input[static_cast<std::size_t>(out.origin[i])]) << "output " << i;
  }
  // Dropped indices never appear as an origin.
  std::set<std::int64_t> origins(out.origin.begin(), out.origin.end());
  for (const std::size_t d : out.dropped) {
    EXPECT_FALSE(origins.count(static_cast<std::int64_t>(d))) << "dropped line " << d;
  }
}

TEST(Corruptor, EveryInputLineSurvivesOrIsAccountedFor) {
  // With garbage/torn/skew disabled, every input line either reaches the
  // output byte-identically or is listed in `dropped`.
  const auto input = spark_lines(300);
  simsys::CorruptionSpec spec;
  spec.duplicate_p = 0.05;
  spec.reorder_p = 0.05;
  spec.drop_p = 0.05;
  simsys::LogStreamCorruptor c(spec, 3);
  const auto out = c.corrupt(input);
  std::set<std::int64_t> seen(out.origin.begin(), out.origin.end());
  std::set<std::size_t> dropped(out.dropped.begin(), out.dropped.end());
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_TRUE(seen.count(static_cast<std::int64_t>(i)) || dropped.count(i))
        << "input line " << i << " vanished without being dropped";
  }
}

TEST(Corruptor, GarbageNeverContainsNewline) {
  const auto input = spark_lines(500);
  simsys::CorruptionSpec spec;
  spec.garbage_p = 0.2;
  simsys::LogStreamCorruptor c(spec, 5);
  const auto out = c.corrupt(input);
  ASSERT_GT(c.stats().garbage, 0u);
  for (const auto& line : out.lines) {
    EXPECT_EQ(line.find('\n'), std::string::npos);
  }
}

TEST(Corruptor, CorruptDirectoryWritesProvenancePerFile) {
  namespace fs = std::filesystem;
  const fs::path src = fs::temp_directory_path() / "intellog_corruptor_src";
  const fs::path dst = fs::temp_directory_path() / "intellog_corruptor_dst";
  fs::remove_all(src);
  fs::remove_all(dst);
  fs::create_directories(src / "job_0");
  for (const char* stem : {"c1", "c2"}) {
    std::ofstream f(src / "job_0" / (std::string(stem) + ".log"));
    for (const auto& line : spark_lines(100)) f << line << "\n";
  }
  simsys::LogStreamCorruptor c(simsys::CorruptionSpec::all(0.05), 11);
  const auto results = c.corrupt_directory(src.string(), dst.string());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].first, "c1");
  EXPECT_EQ(results[1].first, "c2");
  for (const auto& [stem, result] : results) {
    // The written file holds exactly result.lines, in order.
    std::ifstream f(dst / (stem + ".log"));
    ASSERT_TRUE(f.good()) << stem;
    std::string line;
    std::size_t i = 0;
    while (std::getline(f, line)) {
      ASSERT_LT(i, result.lines.size());
      EXPECT_EQ(line, result.lines[i]) << stem << ":" << i;
      ++i;
    }
    EXPECT_EQ(i, result.lines.size());
  }
  fs::remove_all(src);
  fs::remove_all(dst);
}
