#include <gtest/gtest.h>

#include <set>

#include "simsys/workload.hpp"
#include "simsys/yarn_system.hpp"

using namespace intellog::simsys;

namespace {

JobSpec spec_for(const std::string& system, int input_gb, std::uint64_t seed,
                 double memory_mult = 1.5) {
  JobSpec s;
  s.system = system;
  s.name = system == "tez" ? "TPCH-Q8" : "WordCount";
  s.input_gb = input_gb;
  s.container_cores = 8;
  s.container_memory_mb = static_cast<int>(s.required_memory_mb() * memory_mult);
  s.seed = seed;
  return s;
}

std::size_t total_records(const JobResult& r) {
  std::size_t n = 0;
  for (const auto& s : r.sessions) n += s.records.size();
  return n;
}

bool contains_content(const JobResult& r, const std::string& needle) {
  for (const auto& s : r.sessions) {
    for (const auto& rec : s.records) {
      if (rec.content.find(needle) != std::string::npos) return true;
    }
  }
  return false;
}

}  // namespace

class SimulatorPerSystem : public ::testing::TestWithParam<const char*> {};

TEST_P(SimulatorPerSystem, DeterministicForSeed) {
  const ClusterSpec cluster;
  const JobSpec spec = spec_for(GetParam(), 5, 77);
  const JobResult a = run_job(spec, cluster);
  const JobResult b = run_job(spec, cluster);
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    ASSERT_EQ(a.sessions[i].records.size(), b.sessions[i].records.size());
    for (std::size_t j = 0; j < a.sessions[i].records.size(); ++j) {
      EXPECT_EQ(a.sessions[i].records[j].content, b.sessions[i].records[j].content);
      EXPECT_EQ(a.sessions[i].records[j].timestamp_ms, b.sessions[i].records[j].timestamp_ms);
    }
  }
}

TEST_P(SimulatorPerSystem, SessionLengthsScaleWithInput) {
  const ClusterSpec cluster;
  const JobResult small = run_job(spec_for(GetParam(), 1, 5), cluster);
  const JobResult big = run_job(spec_for(GetParam(), 30, 5), cluster);
  EXPECT_GT(total_records(big), total_records(small));
  EXPECT_GE(big.sessions.size(), small.sessions.size());
}

TEST_P(SimulatorPerSystem, TimestampsAreOrderedWithinSession) {
  const ClusterSpec cluster;
  const JobResult r = run_job(spec_for(GetParam(), 10, 13), cluster);
  for (const auto& s : r.sessions) {
    for (std::size_t i = 1; i < s.records.size(); ++i) {
      EXPECT_LE(s.records[i - 1].timestamp_ms, s.records[i].timestamp_ms);
    }
  }
}

TEST_P(SimulatorPerSystem, CleanRunHasNoFaultArtifacts) {
  const ClusterSpec cluster;
  const JobResult r = run_job(spec_for(GetParam(), 10, 21), cluster);
  EXPECT_FALSE(r.has_fault());
  EXPECT_TRUE(r.affected_containers.empty());
  EXPECT_TRUE(r.perf_affected_containers.empty());
  EXPECT_FALSE(contains_content(r, "ailed to connect"));
  for (const auto& s : r.sessions) {
    for (const auto& rec : s.records) {
      ASSERT_TRUE(rec.truth.has_value());
      EXPECT_FALSE(rec.truth->injected_anomaly);
    }
  }
}

TEST_P(SimulatorPerSystem, GroundTruthCarriesTemplateIds) {
  const ClusterSpec cluster;
  const JobResult r = run_job(spec_for(GetParam(), 5, 33), cluster);
  std::set<int> template_ids;
  for (const auto& s : r.sessions) {
    for (const auto& rec : s.records) template_ids.insert(rec.truth->template_id);
  }
  EXPECT_GT(template_ids.size(), 8u);
}

TEST_P(SimulatorPerSystem, SessionAbortTruncatesAVictim) {
  const ClusterSpec cluster;
  WorkloadGenerator gen(GetParam(), 5);
  bool any_affected = false;
  for (std::uint64_t seed = 1; seed <= 5 && !any_affected; ++seed) {
    FaultPlan fault = gen.make_fault(ProblemKind::SessionAbort, cluster);
    const JobResult faulty = run_job(spec_for(GetParam(), 10, seed), cluster, fault);
    const JobResult clean = run_job(spec_for(GetParam(), 10, seed), cluster);
    if (!faulty.affected_containers.empty()) {
      any_affected = true;
      EXPECT_LT(total_records(faulty), total_records(clean));
    }
  }
  EXPECT_TRUE(any_affected);
}

TEST_P(SimulatorPerSystem, NetworkFailureInjectsConnectErrors) {
  const ClusterSpec cluster;
  WorkloadGenerator gen(GetParam(), 6);
  bool symptoms = false;
  for (std::uint64_t seed = 1; seed <= 8 && !symptoms; ++seed) {
    FaultPlan fault;
    fault.kind = ProblemKind::NetworkFailure;
    // Low node indices host the most talked-to components in every system.
    fault.target_node = static_cast<int>((seed - 1) % 4);
    fault.at_fraction = 0.3;
    const JobResult r = run_job(spec_for(GetParam(), 20, seed * 17), cluster, fault);
    symptoms = contains_content(r, "ailed to connect");  // "Failed"/"failed"
    if (symptoms) EXPECT_FALSE(r.affected_containers.empty());
  }
  EXPECT_TRUE(symptoms);
}

TEST_P(SimulatorPerSystem, InsufficientMemoryTriggersSpills) {
  const ClusterSpec cluster;
  JobSpec spec = spec_for(GetParam(), 20, 9, /*memory_mult=*/0.5);
  EXPECT_FALSE(spec.memory_sufficient());
  const JobResult r = run_job(spec, cluster);
  EXPECT_TRUE(contains_content(r, "pill"));  // Spill / Spilling / spill file
  EXPECT_FALSE(r.perf_affected_containers.empty());
  // Tuned memory never spills.
  const JobResult tuned = run_job(spec_for(GetParam(), 20, 9), cluster);
  EXPECT_TRUE(tuned.perf_affected_containers.empty());
}

INSTANTIATE_TEST_SUITE_P(Systems, SimulatorPerSystem,
                         ::testing::Values("spark", "mapreduce", "tez", "tensorflow"));

TEST(SparkSim, Bug19371StarvesContainers) {
  const ClusterSpec cluster;
  JobSpec spec = spec_for("spark", 20, 11);
  FaultPlan fault;
  fault.spark19371_bug = true;
  const JobResult r = run_job(spec, cluster, fault);
  EXPECT_FALSE(r.perf_affected_containers.empty());
  // Starved sessions have no task messages.
  for (const auto& s : r.sessions) {
    if (!r.perf_affected_containers.count(s.container_id)) continue;
    for (const auto& rec : s.records) {
      EXPECT_EQ(rec.content.find("Got assigned task"), std::string::npos);
    }
  }
}

TEST(MapReduceSim, SessionCountMatchesTaskStructure) {
  const ClusterSpec cluster;
  const JobResult r = run_job(spec_for("mapreduce", 10, 3), cluster);
  // 1 AM + 80 mappers + 5 reducers.
  EXPECT_EQ(r.sessions.size(), 86u);
}

TEST(MapReduceSim, Fig1SubroutinePresent) {
  const ClusterSpec cluster;
  const JobResult r = run_job(spec_for("mapreduce", 5, 3), cluster);
  bool about = false, read = false, freed = false;
  for (const auto& s : r.sessions) {
    for (const auto& rec : s.records) {
      about |= rec.content.find("about to shuffle output of map") != std::string::npos;
      read |= rec.content.find("bytes from map-output for") != std::string::npos;
      freed |= rec.content.find("freed by fetcher") != std::string::npos;
    }
  }
  EXPECT_TRUE(about && read && freed);
}

TEST(WorkloadGenerator, TrainingJobsAreTuned) {
  WorkloadGenerator gen("spark", 42);
  for (int i = 0; i < 20; ++i) {
    const JobSpec s = gen.training_job();
    EXPECT_TRUE(s.memory_sufficient());
    EXPECT_LE(s.container_memory_mb, s.required_memory_mb() * 2);
    EXPECT_EQ(s.system, "spark");
  }
}

TEST(WorkloadGenerator, DetectionConfigSetsVary) {
  WorkloadGenerator gen("tez", 42);
  std::set<int> inputs;
  for (int c = 0; c < 5; ++c) {
    const JobSpec s = gen.detection_job(c);
    EXPECT_TRUE(s.memory_sufficient());
    inputs.insert(s.input_gb);
  }
  EXPECT_EQ(inputs.size(), 5u);
}

TEST(WorkloadGenerator, FaultPlansAreBounded) {
  const ClusterSpec cluster;
  WorkloadGenerator gen("mapreduce", 1);
  for (int i = 0; i < 10; ++i) {
    const FaultPlan f = gen.make_fault(ProblemKind::NodeFailure, cluster);
    EXPECT_GE(f.target_node, 0);
    EXPECT_LT(f.target_node, cluster.num_workers);
    EXPECT_GE(f.at_fraction, 0.15);
    EXPECT_LE(f.at_fraction, 0.85);
  }
}

TEST(RunJob, UnknownSystemThrows) {
  EXPECT_THROW(run_job(spec_for("flink", 1, 1), ClusterSpec{}), std::invalid_argument);
}

TEST(YarnAndNova, GenerateLogs) {
  intellog::common::Rng rng(5);
  const auto yarn = generate_yarn_logs(ClusterSpec{}, 10, rng);
  EXPECT_GT(yarn.size(), 100u);
  const auto nova = generate_nova_logs(50, rng);
  EXPECT_GT(nova.size(), 300u);
  bool has_tracker = false;
  for (const auto& r : nova) has_tracker |= r.source == "compute.resource_tracker";
  EXPECT_TRUE(has_tracker);
}

TEST(YarnSessions, PerApplicationRequestUnits) {
  intellog::common::Rng rng(7);
  const auto sessions = generate_yarn_sessions(ClusterSpec{}, 20, rng);
  ASSERT_EQ(sessions.size(), 20u);
  for (const auto& s : sessions) {
    // Infrastructure-level requests: short, bounded sessions (§2.2).
    EXPECT_GE(s.records.size(), 5u);
    EXPECT_LE(s.records.size(), 100u);
    EXPECT_NE(s.container_id.find("application_"), std::string::npos);
    for (const auto& rec : s.records) EXPECT_EQ(rec.container_id, s.container_id);
  }
}
