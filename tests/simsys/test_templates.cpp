#include "simsys/template_corpus.hpp"

#include <gtest/gtest.h>

#include "simsys/mapreduce_system.hpp"
#include "simsys/spark_system.hpp"
#include "simsys/tensorflow_system.hpp"
#include "simsys/tez_system.hpp"
#include "simsys/yarn_system.hpp"

using namespace intellog::simsys;
using intellog::logparse::FieldCategory;
using intellog::logparse::GroundTruth;

TEST(TemplateText, PlaceholderParsing) {
  std::vector<std::string> parts;
  std::vector<FieldSpec> fields;
  parse_template_text("fetcher # {I:FETCHER} about to shuffle output of map {I:ATTEMPT}", parts,
                      fields);
  ASSERT_EQ(fields.size(), 2u);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "fetcher # ");
  EXPECT_EQ(parts[1], " about to shuffle output of map ");
  EXPECT_EQ(fields[0].category, FieldCategory::Identifier);
  EXPECT_EQ(fields[0].id_type, "FETCHER");
  EXPECT_EQ(fields[1].id_type, "ATTEMPT");
}

TEST(TemplateText, AllPlaceholderKinds) {
  std::vector<std::string> parts;
  std::vector<FieldSpec> fields;
  parse_template_text("{L} freed by fetcher # {I:F} in {V} ms for {W}", parts, fields);
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0].category, FieldCategory::Locality);
  EXPECT_EQ(fields[1].category, FieldCategory::Identifier);
  EXPECT_EQ(fields[2].category, FieldCategory::Value);
  EXPECT_EQ(fields[3].category, FieldCategory::Other);
}

TEST(TemplateText, NoPlaceholders) {
  std::vector<std::string> parts;
  std::vector<FieldSpec> fields;
  parse_template_text("Shutdown hook called", parts, fields);
  EXPECT_TRUE(fields.empty());
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "Shutdown hook called");
}

TEST(TemplateText, UnrecognizedBracesKeptVerbatim) {
  std::vector<std::string> parts;
  std::vector<FieldSpec> fields;
  parse_template_text("literal {braces} here {V}", parts, fields);
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(parts[0], "literal {braces} here ");
}

TEST(Template, RenderFillsValuesAndTruth) {
  TemplateCorpus c("test");
  c.add("t", "INFO", "a.B", "read {V} bytes for {I:ATTEMPT}", {"byte"}, {"read"});
  GroundTruth truth;
  const std::string msg = c.by_name("t").render({"2264", "attempt_01"}, &truth);
  EXPECT_EQ(msg, "read 2264 bytes for attempt_01");
  ASSERT_EQ(truth.fields.size(), 2u);
  EXPECT_EQ(truth.fields[0].text, "2264");
  EXPECT_EQ(truth.fields[0].category, FieldCategory::Value);
  EXPECT_EQ(truth.fields[1].id_type, "ATTEMPT");
  EXPECT_EQ(truth.operations, (std::vector<std::string>{"read"}));
  EXPECT_TRUE(truth.natural_language);
}

TEST(Template, KeyString) {
  TemplateCorpus c("test");
  c.add("t", "INFO", "a.B", "read {V} bytes for {I:A}");
  EXPECT_EQ(c.by_name("t").key_string(), "read * bytes for *");
}

TEST(Template, UnknownNameThrows) {
  TemplateCorpus c("test");
  EXPECT_THROW(c.by_name("nope"), std::out_of_range);
  EXPECT_FALSE(c.has("nope"));
}

// --- corpora sanity ---------------------------------------------------------

namespace {

void check_corpus(const TemplateCorpus& corpus, std::size_t min_templates) {
  EXPECT_GE(corpus.size(), min_templates) << corpus.system();
  std::size_t nl = 0;
  for (const auto& t : corpus.all()) {
    EXPECT_EQ(t.parts.size(), t.fields.size() + 1) << corpus.system() << " template " << t.id;
    EXPECT_FALSE(t.source.empty());
    if (t.natural_language) {
      ++nl;
      EXPECT_FALSE(t.key_string().empty());
    }
    for (const auto& f : t.fields) {
      if (f.category == FieldCategory::Identifier) EXPECT_FALSE(f.id_type.empty());
    }
  }
  // Most templates of every system are natural language (Table 1).
  EXPECT_GT(nl * 10, corpus.size() * 7) << corpus.system();
}

}  // namespace

TEST(Corpora, SparkSanity) { check_corpus(spark_corpus(), 30); }
TEST(Corpora, MapReduceSanity) { check_corpus(mapreduce_corpus(), 28); }
TEST(Corpora, TezSanity) { check_corpus(tez_corpus(), 20); }
TEST(Corpora, YarnSanity) { check_corpus(yarn_corpus(), 10); }
TEST(Corpora, NovaSanity) { check_corpus(nova_corpus(), 10); }
TEST(Corpora, TensorFlowSanity) { check_corpus(tensorflow_corpus(), 18); }

TEST(Corpora, SystemsNamed) {
  EXPECT_EQ(spark_corpus().system(), "spark");
  EXPECT_EQ(mapreduce_corpus().system(), "mapreduce");
  EXPECT_EQ(tez_corpus().system(), "tez");
}
