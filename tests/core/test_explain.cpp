// Workflow Observatory: evidence construction, report round-trip, the
// explain renderer, and the per-session HW-graph instance view.
#include "core/explain.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "simsys/workload.hpp"

using namespace intellog;
using simsys::ClusterSpec;
using simsys::FaultPlan;
using simsys::JobResult;
using simsys::ProblemKind;

namespace {

std::vector<logparse::Session> training_corpus(const std::string& system, int jobs,
                                               std::uint64_t seed) {
  ClusterSpec cluster;
  simsys::WorkloadGenerator gen(system, seed);
  std::vector<logparse::Session> out;
  for (int i = 0; i < jobs; ++i) {
    JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) out.push_back(std::move(s));
  }
  return out;
}

logparse::Session tiny_session() {
  logparse::Session s;
  s.container_id = "container_42";
  s.system = "spark";
  for (int i = 0; i < 4; ++i) {
    logparse::LogRecord r;
    r.container_id = s.container_id;
    r.timestamp_ms = 1000 + 10 * static_cast<std::uint64_t>(i);
    r.content = "message " + std::to_string(i);
    r.line_no = static_cast<std::uint32_t>(i + 1);
    r.byte_offset = static_cast<std::uint64_t>(100 * i);
    s.records.push_back(std::move(r));
  }
  return s;
}

}  // namespace

TEST(ExpectedKeySequence, TopologicalOverBeforeRelations) {
  core::Subroutine sub;
  sub.keys = {1, 2, 3};
  sub.before = {{3, 1}, {1, 2}};  // 3 BEFORE 1 BEFORE 2
  EXPECT_EQ(core::expected_key_sequence(sub), (std::vector<int>{3, 1, 2}));
}

TEST(ExpectedKeySequence, TiesBreakByKeyIdAndCyclesFallBack) {
  core::Subroutine sub;
  sub.keys = {5, 2, 9};
  sub.before = {};  // no orders: plain id order
  EXPECT_EQ(core::expected_key_sequence(sub), (std::vector<int>{2, 5, 9}));
  sub.before = {{5, 2}, {2, 5}};  // cycle: leftover keys appended in id order
  const auto seq = core::expected_key_sequence(sub);
  EXPECT_EQ(seq.size(), 3u);
  EXPECT_TRUE(std::is_permutation(seq.begin(), seq.end(), std::vector<int>{2, 5, 9}.begin()));
}

TEST(EvidenceLine, CarriesProvenanceAndFallsBackToContainerId) {
  logparse::Session s = tiny_session();
  core::EvidenceLine line = core::make_evidence_line(s, 2, 7);
  EXPECT_EQ(line.record_index, 2u);
  EXPECT_EQ(line.timestamp_ms, 1020u);
  EXPECT_EQ(line.key_id, 7);
  EXPECT_EQ(line.content, "message 2");
  EXPECT_EQ(line.line_no, 3u);
  EXPECT_EQ(line.byte_offset, 200u);
  // No source file on record: the container id keeps the line addressable.
  EXPECT_EQ(line.file, "container_42");
  s.source_file = "/logs/c42.log";
  EXPECT_EQ(core::make_evidence_line(s, 2, 7).file, "/logs/c42.log");
}

TEST(EvidenceLine, LongContentIsTruncated) {
  logparse::Session s = tiny_session();
  s.records[0].content = std::string(4096, 'x');
  const core::EvidenceLine line = core::make_evidence_line(s, 0, -1);
  EXPECT_LT(line.content.size(), 1024u);
  EXPECT_EQ(line.content.substr(0, 8), "xxxxxxxx");
}

TEST(EvidenceLine, JsonRoundTrip) {
  const core::EvidenceLine line = core::make_evidence_line(tiny_session(), 1, 3);
  const core::EvidenceLine back = core::evidence_line_from_json(line.to_json());
  EXPECT_EQ(back.record_index, line.record_index);
  EXPECT_EQ(back.timestamp_ms, line.timestamp_ms);
  EXPECT_EQ(back.key_id, line.key_id);
  EXPECT_EQ(back.content, line.content);
  EXPECT_EQ(back.file, line.file);
  EXPECT_EQ(back.line_no, line.line_no);
  EXPECT_EQ(back.byte_offset, line.byte_offset);
  EXPECT_EQ(back.to_json().dump(), line.to_json().dump());
}

TEST(Evidence, UnexpectedMessagePointsAtTheOffendingLine) {
  const core::Evidence ev = core::build_unexpected_evidence(tiny_session(), 3);
  ASSERT_EQ(ev.lines.size(), 1u);
  EXPECT_EQ(ev.lines[0].record_index, 3u);
  EXPECT_FALSE(ev.deviation.empty());
  EXPECT_FALSE(ev.empty());
  EXPECT_EQ(core::evidence_from_json(ev.to_json()).to_json().dump(), ev.to_json().dump());
}

TEST(Evidence, MissingGroupNamesExpectedKeysAndSessionSpan) {
  core::GroupNode node;
  node.name = "shuffle";
  node.keys = {4, 9};
  const logparse::Session s = tiny_session();
  const core::Evidence ev =
      core::build_missing_group_evidence(s, node, std::vector<int>(s.records.size(), -1));
  EXPECT_EQ(ev.expected_keys, (std::vector<int>{4, 9}));
  EXPECT_EQ(ev.missing_keys, (std::vector<int>{4, 9}));
  EXPECT_NE(ev.deviation.find("shuffle"), std::string::npos);
  EXPECT_FALSE(ev.lines.empty());
  EXPECT_LE(ev.lines.size(), core::kMaxEvidenceLines);
}

TEST(ReportFromJson, ThrowsOnNonReportDocuments) {
  EXPECT_THROW(core::report_from_json(common::Json("nope")), std::runtime_error);
  EXPECT_THROW(core::report_from_json(common::Json::array()), std::runtime_error);
  EXPECT_THROW(core::report_from_json(common::Json::object()), std::runtime_error);
}

TEST(RenderExplanation, NonAnomalousRendersEmpty) {
  core::AnomalyReport clean;
  clean.container_id = "c";
  clean.session_length = 10;
  EXPECT_EQ(core::render_explanation(clean), "");
}

// Full-pipeline fixture: a trained model shared by the detection-side tests.
class ExplainPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    il = new core::IntelLog();
    il->train(training_corpus("spark", 20, 4242));
  }
  static void TearDownTestSuite() {
    delete il;
    il = nullptr;
  }

  /// Collects anomalous reports from faulty runs (several attempts so the
  /// fault actually lands on a session).
  static std::vector<core::AnomalyReport> faulty_reports(ProblemKind kind, std::uint64_t seed) {
    ClusterSpec cluster;
    simsys::WorkloadGenerator gen("spark", seed);
    std::vector<core::AnomalyReport> out;
    for (std::uint64_t attempt = 0; attempt < 6 && out.empty(); ++attempt) {
      FaultPlan fault = gen.make_fault(kind, cluster);
      fault.at_fraction = 0.3;
      const JobResult job = simsys::run_job(gen.detection_job(2), cluster, fault);
      for (const auto& s : job.sessions) {
        auto report = il->detect(s);
        if (report.anomalous()) out.push_back(std::move(report));
      }
    }
    return out;
  }

  static core::IntelLog* il;
};

core::IntelLog* ExplainPipeline::il = nullptr;

TEST_F(ExplainPipeline, EveryFindingCarriesEvidence) {
  const auto reports = faulty_reports(ProblemKind::NetworkFailure, 911);
  ASSERT_FALSE(reports.empty());
  for (const auto& report : reports) {
    for (const auto& u : report.unexpected) {
      EXPECT_FALSE(u.evidence.empty());
      ASSERT_FALSE(u.evidence.lines.empty());
      EXPECT_EQ(u.evidence.lines[0].record_index, u.record_index);
      EXPECT_EQ(u.evidence.lines[0].content.substr(0, 32), u.content.substr(0, 32));
    }
    for (const auto& issue : report.issues) {
      EXPECT_FALSE(issue.evidence.empty());
      EXPECT_FALSE(issue.evidence.deviation.empty());
      EXPECT_LE(issue.evidence.lines.size(), core::kMaxEvidenceLines);
    }
  }
}

TEST_F(ExplainPipeline, ReportRoundTripsThroughJson) {
  const auto reports = faulty_reports(ProblemKind::SessionAbort, 912);
  ASSERT_FALSE(reports.empty());
  for (const auto& report : reports) {
    const core::AnomalyReport back = core::report_from_json(report.to_json());
    EXPECT_EQ(back.container_id, report.container_id);
    EXPECT_EQ(back.session_length, report.session_length);
    EXPECT_EQ(back.degraded_reason, report.degraded_reason);
    ASSERT_EQ(back.unexpected.size(), report.unexpected.size());
    ASSERT_EQ(back.issues.size(), report.issues.size());
    for (std::size_t i = 0; i < report.unexpected.size(); ++i) {
      EXPECT_EQ(back.unexpected[i].record_index, report.unexpected[i].record_index);
      EXPECT_EQ(back.unexpected[i].content, report.unexpected[i].content);
      EXPECT_EQ(back.unexpected[i].evidence.to_json().dump(),
                report.unexpected[i].evidence.to_json().dump());
    }
    for (std::size_t i = 0; i < report.issues.size(); ++i) {
      EXPECT_EQ(back.issues[i].kind, report.issues[i].kind);
      EXPECT_EQ(back.issues[i].group, report.issues[i].group);
      EXPECT_EQ(back.issues[i].signature, report.issues[i].signature);
      EXPECT_EQ(back.issues[i].missing_keys, report.issues[i].missing_keys);
      EXPECT_EQ(back.issues[i].violated_orders, report.issues[i].violated_orders);
      EXPECT_EQ(back.issues[i].evidence.to_json().dump(),
                report.issues[i].evidence.to_json().dump());
    }
    // The round-tripped report renders the same explanation.
    EXPECT_EQ(core::render_explanation(back), core::render_explanation(report));
  }
}

TEST_F(ExplainPipeline, RenderExplanationShowsDiffAndProvenance) {
  const auto reports = faulty_reports(ProblemKind::NetworkFailure, 913);
  ASSERT_FALSE(reports.empty());
  const std::string text = core::render_explanation(reports.front());
  EXPECT_NE(text.find("ANOMALOUS"), std::string::npos);
  EXPECT_NE(text.find(reports.front().container_id), std::string::npos);
  // Every evidence-carrying finding shows its raw lines with provenance.
  bool any_line = false;
  for (const auto& u : reports.front().unexpected) any_line |= !u.evidence.lines.empty();
  for (const auto& i : reports.front().issues) any_line |= !i.evidence.lines.empty();
  if (any_line) {
    EXPECT_NE(text.find(":"), std::string::npos);
  }
}

TEST_F(ExplainPipeline, EvidenceToggleKeepsVerdictsDropsEvidence) {
  ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 914);
  FaultPlan fault = gen.make_fault(ProblemKind::NetworkFailure, cluster);
  fault.at_fraction = 0.3;
  const JobResult job = simsys::run_job(gen.detection_job(2), cluster, fault);

  ASSERT_TRUE(il->evidence_enabled());
  il->set_evidence_enabled(false);
  EXPECT_FALSE(il->evidence_enabled());
  std::vector<core::AnomalyReport> bare;
  for (const auto& s : job.sessions) bare.push_back(il->detect(s));
  il->set_evidence_enabled(true);
  std::vector<core::AnomalyReport> full;
  for (const auto& s : job.sessions) full.push_back(il->detect(s));

  for (std::size_t i = 0; i < bare.size(); ++i) {
    // Identical verdicts either way...
    EXPECT_EQ(bare[i].anomalous(), full[i].anomalous());
    EXPECT_EQ(bare[i].unexpected.size(), full[i].unexpected.size());
    EXPECT_EQ(bare[i].issues.size(), full[i].issues.size());
    // ...but no evidence when disabled.
    for (const auto& u : bare[i].unexpected) EXPECT_TRUE(u.evidence.empty());
    for (const auto& issue : bare[i].issues) EXPECT_TRUE(issue.evidence.empty());
  }
}

TEST_F(ExplainPipeline, WorkflowViewMirrorsTheSession) {
  ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 915);
  const JobResult job = simsys::run_job(gen.detection_job(1), cluster);
  ASSERT_FALSE(job.sessions.empty());
  // Pick the longest session: richest HW-graph instance.
  const auto& session = *std::max_element(
      job.sessions.begin(), job.sessions.end(),
      [](const auto& a, const auto& b) { return a.records.size() < b.records.size(); });

  const core::WorkflowView view = core::build_workflow_view(*il, session);
  EXPECT_EQ(view.container_id, session.container_id);
  EXPECT_EQ(view.system, session.system);
  EXPECT_FALSE(view.groups.empty());
  EXPECT_LE(view.first_ms, view.last_ms);
  for (const auto& gv : view.groups) {
    EXPECT_FALSE(gv.group.empty());
    EXPECT_GE(gv.first_ms, view.first_ms);
    EXPECT_LE(gv.last_ms, view.last_ms);
    EXPECT_LE(gv.first_ms, gv.last_ms);
    EXPECT_EQ(gv.message_count, gv.hits.size());
    for (const auto& hit : gv.hits) {
      EXPECT_GE(hit.key_id, 0);
      EXPECT_LT(hit.record_index, session.records.size());
      EXPECT_EQ(hit.timestamp_ms, session.records[hit.record_index].timestamp_ms);
    }
    std::size_t sub_hits = 0;
    for (const auto& sv : gv.subroutines) {
      EXPECT_FALSE(sv.name().empty());
      EXPECT_GE(sv.first_ms, gv.first_ms);
      EXPECT_LE(sv.last_ms, gv.last_ms);
      sub_hits += sv.hits.size();
    }
    // Subroutine instances partition the group's messages.
    EXPECT_EQ(sub_hits, gv.hits.size());
  }
}
