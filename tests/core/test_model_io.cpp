// Model serialization round-trip tests.
#include "core/model_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/checksum.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

namespace {

std::vector<logparse::Session> corpus(int jobs, std::uint64_t seed) {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", seed);
  std::vector<logparse::Session> out;
  for (int i = 0; i < jobs; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

class ModelIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trained = new core::IntelLog();
    trained->train(corpus(8, 77));
  }
  static void TearDownTestSuite() {
    delete trained;
    trained = nullptr;
  }
  static core::IntelLog* trained;
};

core::IntelLog* ModelIoTest::trained = nullptr;

TEST_F(ModelIoTest, SaveRequiresTrainedModel) {
  core::IntelLog fresh;
  EXPECT_THROW(core::save_model(fresh), std::logic_error);
}

TEST_F(ModelIoTest, RoundTripPreservesModelShape) {
  const auto doc = core::save_model(*trained);
  const core::IntelLog loaded = core::load_model(doc);
  EXPECT_TRUE(loaded.trained());
  EXPECT_EQ(loaded.spell().size(), trained->spell().size());
  EXPECT_EQ(loaded.intel_keys().size(), trained->intel_keys().size());
  EXPECT_EQ(loaded.entity_groups().groups, trained->entity_groups().groups);
  EXPECT_EQ(loaded.hw_graph().groups().size(), trained->hw_graph().groups().size());
  EXPECT_EQ(loaded.hw_graph().training_sessions(), trained->hw_graph().training_sessions());
  EXPECT_EQ(loaded.hw_graph().roots(), trained->hw_graph().roots());
  EXPECT_EQ(loaded.kv_filter().learned_count(), trained->kv_filter().learned_count());
}

TEST_F(ModelIoTest, LoadedKeysMatchSameMessages) {
  const core::IntelLog loaded = core::load_model(core::save_model(*trained));
  for (const auto& msg : {"Got assigned task 123", "Shutdown hook called",
                          "Registering BlockManager BlockManagerId(3)"}) {
    EXPECT_EQ(loaded.spell().match(msg), trained->spell().match(msg)) << msg;
  }
}

TEST_F(ModelIoTest, LoadedModelDetectsIdentically) {
  const core::IntelLog loaded = core::load_model(core::save_model(*trained));
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 555);
  // One clean job, one faulty job.
  const auto clean = simsys::run_job(gen.detection_job(1), cluster);
  auto fault = gen.make_fault(simsys::ProblemKind::NetworkFailure, cluster);
  fault.at_fraction = 0.3;
  const auto faulty = simsys::run_job(gen.detection_job(2), cluster, fault);
  for (const auto* job : {&clean, &faulty}) {
    for (const auto& s : job->sessions) {
      const auto a = trained->detect(s);
      const auto b = loaded.detect(s);
      EXPECT_EQ(a.anomalous(), b.anomalous()) << s.container_id;
      EXPECT_EQ(a.unexpected.size(), b.unexpected.size());
      EXPECT_EQ(a.issues.size(), b.issues.size());
    }
  }
}

TEST_F(ModelIoTest, SubroutinesSurviveRoundTrip) {
  const core::IntelLog loaded = core::load_model(core::save_model(*trained));
  const auto& orig = trained->hw_graph().groups().at("block").subroutines.subroutines();
  const auto& back = loaded.hw_graph().groups().at("block").subroutines.subroutines();
  ASSERT_EQ(orig.size(), back.size());
  for (const auto& [sig, sub] : orig) {
    const auto it = back.find(sig);
    ASSERT_NE(it, back.end());
    EXPECT_EQ(it->second.keys, sub.keys);
    EXPECT_EQ(it->second.critical, sub.critical);
    EXPECT_EQ(it->second.before, sub.before);
    EXPECT_EQ(it->second.instance_count, sub.instance_count);
  }
}

TEST_F(ModelIoTest, FileRoundTrip) {
  const std::string path = "/tmp/intellog_model_test.json";
  core::save_model_file(*trained, path);
  const core::IntelLog loaded = core::load_model_file(path);
  EXPECT_EQ(loaded.intel_keys().size(), trained->intel_keys().size());
  std::remove(path.c_str());
}

TEST_F(ModelIoTest, LoadRejectsGarbage) {
  EXPECT_THROW(core::load_model(common::Json::parse("{}")), std::runtime_error);
  EXPECT_THROW(core::load_model(common::Json(42)), std::runtime_error);
  EXPECT_THROW(core::load_model_file("/nonexistent/path.json"), std::runtime_error);
}

TEST_F(ModelIoTest, SaveStampsVerifiableChecksum) {
  const auto doc = core::save_model(*trained);
  ASSERT_TRUE(doc.contains("checksum"));
  EXPECT_TRUE(common::verify_checksum(doc));
}

TEST_F(ModelIoTest, LoadRejectsTamperedDocument) {
  auto doc = core::save_model(*trained);
  doc["config"]["spell_threshold"] = 9.9;  // mutate without restamping
  try {
    core::load_model(doc);
    FAIL() << "tampered model accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST_F(ModelIoTest, LoadRejectsWrongFormatVersion) {
  auto doc = core::save_model(*trained);
  doc["format_version"] = 99;
  common::stamp_checksum(doc);  // checksum valid: the version check must fire
  try {
    core::load_model(doc);
    FAIL() << "wrong format version accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST_F(ModelIoTest, LoadRejectsMalformedPayloadWithOneClearError) {
  auto doc = core::save_model(*trained);
  doc["log_keys"] = 42;  // right version + checksum, wrong payload shape
  common::stamp_checksum(doc);
  try {
    core::load_model(doc);
    FAIL() << "malformed payload accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("load_model"), std::string::npos);
  }
}

TEST_F(ModelIoTest, LoadModelFileRejectsInvalidJson) {
  const std::string path = "/tmp/intellog_model_torn.json";
  {
    std::ofstream f(path);
    f << "{\"format_version\": 1, \"trunc";  // a torn write
  }
  try {
    core::load_model_file(path);
    FAIL() << "torn model file accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("not valid JSON"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST_F(ModelIoTest, MovedModelStillDetects) {
  // IntelLog's move operations must re-seat the detector's references.
  core::IntelLog moved = core::load_model(core::save_model(*trained));
  core::IntelLog target = std::move(moved);
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 9);
  const auto job = simsys::run_job(gen.detection_job(0), cluster);
  EXPECT_NO_THROW({
    for (const auto& s : job.sessions) target.detect(s);
  });
  EXPECT_FALSE(moved.trained());  // moved-from is reset
}
