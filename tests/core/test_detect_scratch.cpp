// Arena/scratch lifecycle on the detection path: reusing one
// DetectScratch across sessions (the detect_batch shard pattern) must
// produce byte-identical verdicts on every round, the arena must rewind
// without releasing its pages, and zero-copy (mmap-borrowed) records must
// be indistinguishable from owned ones everywhere they flow — detection
// verdicts, the read()-fallback reader, and online checkpoints.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/detect_scratch.hpp"
#include "core/intellog.hpp"
#include "core/online.hpp"
#include "logparse/log_io.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

namespace {

namespace fs = std::filesystem;

std::vector<logparse::Session> training_corpus(const std::string& system, int jobs,
                                               std::uint64_t seed) {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen(system, seed);
  std::vector<logparse::Session> out;
  for (int i = 0; i < jobs; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) out.push_back(std::move(s));
  }
  return out;
}

std::vector<logparse::Session> detection_sessions(const std::string& system,
                                                  std::uint64_t seed, int jobs) {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen(system, seed);
  std::vector<logparse::Session> out;
  for (int j = 0; j < jobs; ++j) {
    simsys::JobResult job = simsys::run_job(gen.detection_job(j % 3), cluster);
    for (auto& s : job.sessions) out.push_back(std::move(s));
  }
  return out;
}

class DetectScratchLifecycle : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    il = new core::IntelLog();
    il->train(training_corpus("spark", 6, 71));
    sessions = new std::vector<logparse::Session>(detection_sessions("spark", 172, 3));
  }
  static void TearDownTestSuite() {
    delete il;
    il = nullptr;
    delete sessions;
    sessions = nullptr;
  }

  static core::IntelLog* il;
  static std::vector<logparse::Session>* sessions;
};

core::IntelLog* DetectScratchLifecycle::il = nullptr;
std::vector<logparse::Session>* DetectScratchLifecycle::sessions = nullptr;

std::vector<std::string> detect_all(const core::IntelLog& model,
                                    const std::vector<logparse::Session>& sessions) {
  std::vector<std::string> out;
  out.reserve(sessions.size());
  for (const auto& s : sessions) out.push_back(model.detect(s).to_json().dump());
  return out;
}

TEST_F(DetectScratchLifecycle, ScratchReuseGivesIdenticalVerdicts) {
  const std::vector<std::string> baseline = detect_all(*il, *sessions);
  core::DetectScratch scratch;
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < sessions->size(); ++i) {
      EXPECT_EQ(il->detect((*sessions)[i], scratch).to_json().dump(), baseline[i])
          << "session " << i << " round " << round;
    }
  }
}

TEST_F(DetectScratchLifecycle, ArenaRewindsAndKeepsPagesAcrossSessions) {
  core::DetectScratch scratch;
  for (const auto& s : *sessions) il->detect(s, scratch);
  const std::size_t pages_after_first_sweep = scratch.arena.pages_held();
  // Same sessions again: the arena must serve the whole second sweep from
  // the pages it already holds — reset rewinds, it does not free.
  for (const auto& s : *sessions) il->detect(s, scratch);
  EXPECT_EQ(scratch.arena.pages_held(), pages_after_first_sweep);
  EXPECT_GT(scratch.arena.bytes_peak(), 0u);
  scratch.reset_session();
  EXPECT_EQ(scratch.arena.bytes_used(), 0u);
}

TEST_F(DetectScratchLifecycle, ArenaPeakSurfacedForBench) {
  core::DetectScratch scratch;
  il->detect(sessions->front(), scratch);
  scratch.reset_session();  // publishes the high-water mark
  EXPECT_GT(core::detect_arena_bytes_peak(), 0u);
}

TEST_F(DetectScratchLifecycle, BorrowedAndMaterializedAndNoMmapVerdictsMatch) {
  const fs::path dir = fs::temp_directory_path() / "intellog_scratch_verdicts";
  fs::remove_all(dir);
  const auto fmt = logparse::make_spark_formatter();
  logparse::write_log_directory(*fmt, *sessions, dir.string());

  // Zero-copy mmap ingest: records borrow from the mapping.
  std::vector<logparse::Session> borrowed = logparse::read_log_directory(dir.string(), "spark");
  ASSERT_FALSE(borrowed.empty());
  ASSERT_NE(borrowed.front().storage, nullptr);

  // Same files through the read() fallback reader.
  ::setenv("INTELLOG_NO_MMAP", "1", 1);
  std::vector<logparse::Session> fallback = logparse::read_log_directory(dir.string(), "spark");
  ::unsetenv("INTELLOG_NO_MMAP");

  // Borrowed records rewritten to own their bytes.
  std::vector<logparse::Session> owned = borrowed;
  for (auto& s : owned) s.materialize();
  for (const auto& s : owned) EXPECT_EQ(s.storage, nullptr);

  const std::vector<std::string> a = detect_all(*il, borrowed);
  const std::vector<std::string> b = detect_all(*il, fallback);
  const std::vector<std::string> c = detect_all(*il, owned);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  fs::remove_all(dir);
}

TEST_F(DetectScratchLifecycle, CheckpointBytesIdenticalForBorrowedRecords) {
  const fs::path dir = fs::temp_directory_path() / "intellog_scratch_ckpt";
  fs::remove_all(dir);
  const auto fmt = logparse::make_spark_formatter();
  logparse::write_log_directory(*fmt, *sessions, dir.string());
  const std::vector<logparse::Session> borrowed =
      logparse::read_log_directory(dir.string(), "spark");
  ASSERT_FALSE(borrowed.empty());
  std::vector<logparse::Session> owned = borrowed;
  for (auto& s : owned) s.materialize();

  // Stream both variants record by record; the open-session state the
  // checkpoint serializes must not depend on who owns the record bytes
  // (consume() materializes its buffered copies).
  core::OnlineDetector from_borrowed(*il);
  for (const auto& s : borrowed)
    for (const auto& rec : s.records) from_borrowed.consume(rec);
  core::OnlineDetector from_owned(*il);
  for (const auto& s : owned)
    for (const auto& rec : s.records) from_owned.consume(rec);
  EXPECT_EQ(from_borrowed.checkpoint().dump(), from_owned.checkpoint().dump());
  fs::remove_all(dir);
}

}  // namespace
