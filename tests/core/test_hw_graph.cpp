#include "core/hw_graph.hpp"

#include <gtest/gtest.h>

using namespace intellog::core;

namespace {

Lifespan span(std::uint64_t first, std::uint64_t last, std::size_t count = 1) {
  return {first, last, count};
}

}  // namespace

class HwGraphTest : public ::testing::Test {
 protected:
  /// Builds a graph from per-session lifespans; groups get one key each so
  /// they exist in the node map.
  HwGraph build(const std::vector<SessionLifespans>& sessions) {
    HwGraph graph;
    HwGraphBuilder builder;
    int key = 0;
    for (const auto& s : sessions) {
      builder.add_session(s);
      for (const auto& [name, ls] : s) {
        (void)ls;
        graph.group(name).keys.insert(key++ % 3);
      }
    }
    builder.finalize(graph);
    return graph;
  }
};

TEST_F(HwGraphTest, ParentWhenNestedInEverySession) {
  const HwGraph g = build({
      {{"driver", span(0, 100)}, {"task", span(10, 90)}},
      {{"driver", span(5, 200)}, {"task", span(20, 150)}},
  });
  EXPECT_EQ(g.relation("driver", "task"), GroupRelation::Parent);
  EXPECT_EQ(g.relation("task", "driver"), GroupRelation::ChildOf);
  EXPECT_EQ(g.parent_of("task"), "driver");
  EXPECT_EQ(g.children_of("driver"), (std::vector<std::string>{"task"}));
  EXPECT_EQ(g.roots(), (std::vector<std::string>{"driver"}));
}

TEST_F(HwGraphTest, BeforeWhenAlwaysDisjointOrdered) {
  const HwGraph g = build({
      {{"acl", span(0, 10)}, {"task", span(20, 90)}},
      {{"acl", span(0, 5)}, {"task", span(6, 50)}},
  });
  EXPECT_EQ(g.relation("acl", "task"), GroupRelation::Before);
  EXPECT_EQ(g.relation("task", "acl"), GroupRelation::After);
}

TEST_F(HwGraphTest, ParallelWhenRelationInconsistent) {
  // Nested in one session, overlapping in another -> PARALLEL (Fig. 6).
  const HwGraph g = build({
      {{"memory", span(0, 100)}, {"block", span(10, 90)}},
      {{"memory", span(0, 100)}, {"block", span(50, 150)}},
  });
  EXPECT_EQ(g.relation("memory", "block"), GroupRelation::Parallel);
  // Both become roots.
  EXPECT_EQ(g.roots().size(), 2u);
}

TEST_F(HwGraphTest, BeforeBrokenByOverlapBecomesParallel) {
  const HwGraph g = build({
      {{"a", span(0, 10)}, {"b", span(20, 30)}},
      {{"a", span(0, 25)}, {"b", span(20, 30)}},
  });
  EXPECT_EQ(g.relation("a", "b"), GroupRelation::Parallel);
}

TEST_F(HwGraphTest, TightestContainerWins) {
  const HwGraph g = build({
      {{"driver", span(0, 100)}, {"task", span(10, 90)}, {"fetch", span(20, 40)}},
  });
  // fetch is inside both; its parent must be task, the tighter container.
  EXPECT_EQ(g.parent_of("fetch"), "task");
  EXPECT_EQ(g.parent_of("task"), "driver");
  EXPECT_EQ(g.roots(), (std::vector<std::string>{"driver"}));
}

TEST_F(HwGraphTest, PairsNeverTogetherHaveNoRelation) {
  const HwGraph g = build({
      {{"a", span(0, 1)}},
      {{"b", span(0, 1)}},
  });
  EXPECT_FALSE(g.relation("a", "b").has_value());
}

TEST_F(HwGraphTest, IdenticalSpansAreParallel) {
  const HwGraph g = build({
      {{"a", span(0, 10)}, {"b", span(0, 10)}},
  });
  EXPECT_EQ(g.relation("a", "b"), GroupRelation::Parallel);
}

TEST_F(HwGraphTest, ExpectedGroupsByPresenceFraction) {
  const HwGraph g = build({
      {{"always", span(0, 1)}, {"rare", span(0, 1)}},
      {{"always", span(0, 1)}},
      {{"always", span(0, 1)}},
      {{"always", span(0, 1)}},
  });
  const auto expected = g.expected_groups(0.9);
  EXPECT_EQ(expected, (std::vector<std::string>{"always"}));
  // Lower threshold admits the rare group.
  EXPECT_EQ(g.expected_groups(0.2).size(), 2u);
  EXPECT_EQ(g.training_sessions(), 4u);
}

TEST(GroupNode, CriticalCriteria) {
  GroupNode multi_key;
  multi_key.keys = {1, 2};
  EXPECT_TRUE(multi_key.is_critical());

  GroupNode repeated;
  repeated.keys = {1};
  repeated.repeated_key_in_session = true;
  EXPECT_TRUE(repeated.is_critical());

  GroupNode secondary;
  secondary.keys = {1};
  EXPECT_FALSE(secondary.is_critical());
}

TEST_F(HwGraphTest, JsonExportShape) {
  const HwGraph g = build({
      {{"driver", span(0, 100)}, {"task", span(10, 90)}},
  });
  const auto j = g.to_json();
  EXPECT_TRUE(j["groups"].contains("driver"));
  EXPECT_TRUE(j["groups"].contains("task"));
  EXPECT_EQ(j["groups"]["task"]["parent"].as_string(), "driver");
  EXPECT_GE(j["relations"].size(), 1u);
  // Round-trips through the parser.
  EXPECT_NO_THROW(intellog::common::Json::parse(j.dump(2)));
}

TEST(GroupRelationNames, ToString) {
  EXPECT_EQ(to_string(GroupRelation::Parent), "PARENT");
  EXPECT_EQ(to_string(GroupRelation::Before), "BEFORE");
  EXPECT_EQ(to_string(GroupRelation::Parallel), "PARALLEL");
}
