// Sharded batch detection: parallel reports must be byte-identical to the
// serial path regardless of worker count (the acceptance bar for wiring
// detect_batch into the CLI and the streaming detector). Runs under the
// ASan/UBSan CI configuration too, which exercises the TSan-visible
// concurrent match()/metrics paths.
#include <gtest/gtest.h>

#include "core/intellog.hpp"
#include "core/online.hpp"
#include "obs/metrics.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

namespace {

std::vector<logparse::Session> training_corpus(const std::string& system, int jobs,
                                               std::uint64_t seed) {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen(system, seed);
  std::vector<logparse::Session> out;
  for (int i = 0; i < jobs; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) out.push_back(std::move(s));
  }
  return out;
}

std::vector<logparse::Session> detection_sessions(const std::string& system,
                                                  std::uint64_t seed, int jobs) {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen(system, seed);
  std::vector<logparse::Session> out;
  for (int j = 0; j < jobs; ++j) {
    simsys::JobResult job = simsys::run_job(gen.detection_job(j % 3), cluster);
    for (auto& s : job.sessions) out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::string> serialize(const std::vector<core::AnomalyReport>& reports) {
  std::vector<std::string> out;
  out.reserve(reports.size());
  for (const auto& r : reports) out.push_back(r.to_json().dump());
  return out;
}

class DetectBatch : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    il = new core::IntelLog();
    il->train(training_corpus("spark", 8, 71));
    sessions = new std::vector<logparse::Session>(detection_sessions("spark", 172, 4));
  }
  static void TearDownTestSuite() {
    delete il;
    il = nullptr;
    delete sessions;
    sessions = nullptr;
  }
  static core::IntelLog* il;
  static std::vector<logparse::Session>* sessions;
};

core::IntelLog* DetectBatch::il = nullptr;
std::vector<logparse::Session>* DetectBatch::sessions = nullptr;

}  // namespace

TEST_F(DetectBatch, ParallelReportsAreByteIdenticalToSerial) {
  ASSERT_GE(sessions->size(), 4u);
  std::vector<core::AnomalyReport> serial;
  serial.reserve(sessions->size());
  for (const auto& s : *sessions) serial.push_back(il->detect(s));
  const std::vector<std::string> want = serialize(serial);

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const auto batch = il->detect_batch(*sessions, jobs);
    ASSERT_EQ(batch.size(), sessions->size()) << "jobs=" << jobs;
    EXPECT_EQ(serialize(batch), want) << "jobs=" << jobs;
  }
}

TEST_F(DetectBatch, RepeatedParallelRunsAreStable) {
  // The match-verdict memo fills during the first pass; a warm second pass
  // must produce the same bytes.
  const auto first = serialize(il->detect_batch(*sessions, 8));
  const auto second = serialize(il->detect_batch(*sessions, 8));
  EXPECT_EQ(first, second);
}

TEST_F(DetectBatch, EmptyAndUntrainedEdges) {
  EXPECT_TRUE(il->detect_batch({}, 4).empty());
  core::IntelLog fresh;
  EXPECT_THROW(fresh.detect_batch(*sessions, 2), std::logic_error);
}

TEST_F(DetectBatch, RecordsShardMetrics) {
  obs::MetricsRegistry reg;
  obs::set_registry(&reg);
  (void)il->detect_batch(*sessions, 2);
  obs::set_registry(nullptr);

  const obs::Counter* batches = reg.find_counter("intellog_detect_batch_total");
  ASSERT_NE(batches, nullptr);
  EXPECT_EQ(batches->value(), 1u);
  const obs::Counter* total = reg.find_counter("intellog_detect_batch_sessions_total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->value(), sessions->size());
  std::uint64_t sharded = 0;
  for (const char* shard : {"0", "1"}) {
    const obs::Counter* c =
        reg.find_counter("intellog_detect_batch_shard_sessions_total", {{"shard", shard}});
    ASSERT_NE(c, nullptr) << "shard " << shard;
    sharded += c->value();
  }
  EXPECT_EQ(sharded, sessions->size());
}

TEST_F(DetectBatch, CoverageLedgerOffKeepsReportsByteIdentical) {
  // The ledger toggle must be observability-only: with it off (the
  // default), reports match the seed behaviour byte for byte; with it on,
  // verdict bytes are STILL identical — only the side ledger changes.
  const auto baseline = serialize(il->detect_batch(*sessions, 2));
  ASSERT_FALSE(il->coverage_enabled());

  il->set_coverage_enabled(true);
  const auto with_ledger = serialize(il->detect_batch(*sessions, 2));
  il->set_coverage_enabled(false);
  const auto after_disable = serialize(il->detect_batch(*sessions, 2));

  EXPECT_EQ(with_ledger, baseline);
  EXPECT_EQ(after_disable, baseline);
}

TEST_F(DetectBatch, CoverageTotalsAreDeterministicAcrossJobWidths) {
  // Relaxed-atomic increments commute, so the ledger's totals (and its
  // serialized report) must be identical at --jobs 1/2/8.
  std::string want;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    core::IntelLog fresh;
    fresh.train(training_corpus("spark", 8, 71));
    fresh.set_coverage_enabled(true);
    (void)fresh.detect_batch(*sessions, jobs);
    ASSERT_NE(fresh.coverage(), nullptr);
    const std::string got = fresh.coverage()->to_json().dump();
    if (want.empty()) {
      want = got;
      EXPECT_GT(fresh.coverage()->hit_components(), 0u);
    } else {
      EXPECT_EQ(got, want) << "jobs=" << jobs;
    }
  }
}

TEST_F(DetectBatch, OnlineDrainMatchesSerialDetector) {
  // The streaming detector's batched draining must report exactly what the
  // serial per-session path reports, in the same (container-id) order.
  core::OnlineDetector serial(*il, /*jobs=*/1);
  core::OnlineDetector parallel(*il, /*jobs=*/4);
  for (const auto& s : *sessions) {
    for (const auto& rec : s.records) {
      serial.consume(rec);
      parallel.consume(rec);
    }
  }
  EXPECT_EQ(serialize(serial.close_all()), serialize(parallel.close_all()));
}
