// Ground-truth scoring (Quality Observatory): labels sidecar round trip,
// Table-6 accounting semantics, and parity with the bench accounting.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/intellog.hpp"
#include "core/scoring.hpp"
#include "obs/metrics.hpp"
#include "simsys/eval_workload.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

namespace {

core::Labels two_job_labels() {
  core::Labels labels;
  labels.system = "spark";
  labels.seed = 7;
  core::LabeledJob faulty;
  faulty.name = "wordcount";
  faulty.dir = "job_0";
  faulty.fault = "session-abort";
  faulty.injected = true;
  faulty.containers = {"c1", "c2"};
  faulty.affected = {"c2"};
  labels.jobs.push_back(faulty);
  core::LabeledJob clean;
  clean.name = "sort";
  clean.dir = "job_1";
  clean.fault = "none";
  clean.containers = {"c3", "c4"};
  labels.jobs.push_back(clean);
  return labels;
}

common::Json report_flagging(const std::vector<std::string>& containers) {
  common::Json arr = common::Json::array();
  for (const auto& c : containers) {
    common::Json r = common::Json::object();
    r["container"] = c;
    r["anomalous"] = true;
    arr.push_back(std::move(r));
  }
  return arr;
}

}  // namespace

TEST(LabelsTest, JsonRoundTrip) {
  const core::Labels labels = two_job_labels();
  const common::Json doc = labels.to_json();
  EXPECT_EQ(doc["kind"].as_string(), "intellog_labels");
  EXPECT_EQ(doc["schema_version"].as_int(), core::kLabelsSchemaVersion);
  const core::Labels back = core::Labels::from_json(doc);
  EXPECT_EQ(back.system, labels.system);
  EXPECT_EQ(back.seed, labels.seed);
  ASSERT_EQ(back.jobs.size(), 2u);
  EXPECT_EQ(back.jobs[0].name, "wordcount");
  EXPECT_TRUE(back.jobs[0].injected);
  EXPECT_EQ(back.jobs[0].containers, (std::set<std::string>{"c1", "c2"}));
  EXPECT_EQ(back.jobs[0].affected, (std::set<std::string>{"c2"}));
  EXPECT_FALSE(back.jobs[1].injected);
  // Serialization is deterministic.
  EXPECT_EQ(doc.dump(), back.to_json().dump());
}

TEST(LabelsTest, RejectsForeignDocuments) {
  common::Json doc = common::Json::object();
  doc["kind"] = "something_else";
  EXPECT_THROW(core::Labels::from_json(doc), std::runtime_error);
  common::Json future = two_job_labels().to_json();
  future["schema_version"] = core::kLabelsSchemaVersion + 1;
  EXPECT_THROW(core::Labels::from_json(future), std::runtime_error);
}

TEST(ScoreReportTest, Table6Accounting) {
  const core::Labels labels = two_job_labels();
  // Injected job flagged via either of its containers -> detected.
  core::SystemScore s = core::score_report(labels, report_flagging({"c2"}));
  EXPECT_EQ(s.detected, 1u);
  EXPECT_EQ(s.fp, 0u);
  EXPECT_EQ(s.fn, 0u);
  EXPECT_DOUBLE_EQ(s.precision(), 1.0);
  EXPECT_DOUBLE_EQ(s.recall(), 1.0);
  EXPECT_DOUBLE_EQ(s.f1(), 1.0);

  // Nothing flagged: the injected job is a false negative; precision of an
  // empty positive set is defined as 1.
  s = core::score_report(labels, report_flagging({}));
  EXPECT_EQ(s.detected, 0u);
  EXPECT_EQ(s.fn, 1u);
  EXPECT_DOUBLE_EQ(s.precision(), 1.0);
  EXPECT_DOUBLE_EQ(s.recall(), 0.0);
  EXPECT_DOUBLE_EQ(s.f1(), 0.0);

  // Clean job flagged -> false positive; unknown container -> unmatched,
  // never a false positive.
  s = core::score_report(labels, report_flagging({"c3", "ghost"}));
  EXPECT_EQ(s.detected, 0u);
  EXPECT_EQ(s.fp, 1u);
  EXPECT_EQ(s.unmatched, 1u);
  EXPECT_DOUBLE_EQ(s.precision(), 0.0);
}

TEST(ScoreReportTest, BorderlineJobsAreNotFalseAlarms) {
  core::Labels labels = two_job_labels();
  labels.jobs[1].borderline = true;  // the clean job now ran borderline memory
  const core::SystemScore s = core::score_report(labels, report_flagging({"c3"}));
  EXPECT_EQ(s.fp, 0u);
  EXPECT_EQ(s.pb, 1u);
  EXPECT_EQ(s.borderline, 1u);
  EXPECT_DOUBLE_EQ(s.precision(), 1.0);  // no positives counted against it
}

TEST(ScoreReportTest, RejectsNonArrayReports) {
  EXPECT_THROW(core::score_report(two_job_labels(), common::Json::object()),
               std::runtime_error);
}

TEST(ScoreCardTest, AggregatesAcrossSystemsLikeTheBench) {
  core::ScoreCard card;
  core::SystemScore a;
  a.system = "spark";
  a.detected = 13;
  a.fp = 2;
  a.fn = 2;
  a.injected = 15;
  core::SystemScore b;
  b.system = "tez";
  b.detected = 15;
  b.fp = 1;
  b.fn = 0;
  b.injected = 15;
  card.systems = {a, b};
  EXPECT_EQ(card.detected(), 28u);
  EXPECT_EQ(card.injected(), 30u);
  // Summed numerators/denominators, exactly like bench_table6_anomaly's
  // overall line — NOT an average of per-system ratios.
  EXPECT_DOUBLE_EQ(card.precision(), 28.0 / 31.0);
  EXPECT_DOUBLE_EQ(card.recall(), 28.0 / 30.0);
  const common::Json doc = card.to_json();
  EXPECT_EQ(doc["kind"].as_string(), "intellog_score");
  EXPECT_EQ(doc["systems"].as_array().size(), 2u);
  EXPECT_EQ(doc["overall"]["detected"].as_int(), 28);
}

TEST(ScoreCardTest, RecordMetricsExportsTalliesAndPermilleRatios) {
  core::ScoreCard card;
  core::SystemScore s;
  s.system = "spark";
  s.detected = 3;
  s.fp = 1;
  s.fn = 1;
  s.injected = 4;
  card.systems = {s};
  obs::MetricsRegistry reg;
  card.record_metrics(reg);
  EXPECT_EQ(reg.find_gauge("intellog_score_detected", {{"system", "spark"}})->value(), 3);
  EXPECT_EQ(reg.find_gauge("intellog_score_false_positives", {{"system", "spark"}})->value(),
            1);
  // precision 0.75 -> 750 permille, both per-system and overall (label-free).
  EXPECT_EQ(
      reg.find_gauge("intellog_score_precision_permille", {{"system", "spark"}})->value(),
      750);
  EXPECT_EQ(reg.find_gauge("intellog_score_precision_permille")->value(), 750);
  EXPECT_EQ(reg.find_gauge("intellog_score_recall_permille")->value(), 750);
}

// The acceptance gate: score_report over a detect report of the Table-6
// workload must reproduce the bench_table6_anomaly accounting — same
// numerators, same denominators — for the same seed.
TEST(ScoreParityTest, ReproducesBenchTable6Accounting) {
  core::IntelLog il;
  {
    simsys::ClusterSpec cluster;
    simsys::WorkloadGenerator gen("spark", 2024);
    std::vector<logparse::Session> corpus;
    for (int i = 0; i < 8; ++i) {
      simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
      for (auto& sess : job.sessions) corpus.push_back(std::move(sess));
    }
    il.train(corpus);
  }
  const auto workload = simsys::detection_workload("spark", 3030);
  ASSERT_EQ(workload.size(), 30u);

  // Bench-style accounting: a job is flagged when any session is anomalous.
  std::size_t detected = 0, fp = 0, fn = 0, pb = 0;
  common::Json report = common::Json::array();
  core::Labels labels;
  labels.system = "spark";
  labels.seed = 3030;
  for (const auto& dj : workload) {
    bool flagged = false;
    core::LabeledJob label;
    label.name = dj.result.spec.name;
    label.fault = simsys::to_string(dj.result.fault.kind);
    label.injected = dj.injected;
    label.borderline = dj.borderline;
    for (const auto& sess : dj.result.sessions) {
      label.containers.insert(sess.container_id);
      const core::AnomalyReport r = il.detect(sess);
      if (!r.anomalous()) continue;
      flagged = true;
      report.push_back(r.to_json());
    }
    label.affected = dj.result.affected_containers;
    label.perf_affected = dj.result.perf_affected_containers;
    labels.jobs.push_back(std::move(label));
    if (dj.injected) {
      (flagged ? detected : fn)++;
    } else if (dj.borderline) {
      pb += flagged;
    } else {
      fp += flagged;
    }
  }

  const core::SystemScore score = core::score_report(labels, report);
  EXPECT_EQ(score.detected, detected);
  EXPECT_EQ(score.fp, fp);
  EXPECT_EQ(score.fn, fn);
  EXPECT_EQ(score.pb, pb);
  EXPECT_EQ(score.injected, 15u);
  EXPECT_EQ(score.unmatched, 0u);
  EXPECT_DOUBLE_EQ(score.precision(),
                   static_cast<double>(detected) / static_cast<double>(detected + fp));
  EXPECT_DOUBLE_EQ(score.recall(), static_cast<double>(detected) / 15.0);
}
