#include "core/subroutine.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

using namespace intellog::core;

namespace {

GroupMessage msg(int key, std::vector<IdentifierValue> ids, std::size_t index = 0) {
  GroupMessage m;
  m.key_id = key;
  m.ids = std::move(ids);
  m.record_index = index;
  m.timestamp_ms = index * 10;
  return m;
}

IdentifierValue id(std::string type, std::string value) {
  return {std::move(type), std::move(value)};
}

}  // namespace

TEST(PartitionInstances, NoIdsGoToNoneInstance) {
  const auto instances = partition_instances({msg(1, {}), msg(2, {})});
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_TRUE(instances[0].id_values.empty());
  EXPECT_TRUE(instances[0].signature.empty());
  EXPECT_EQ(instances[0].messages.size(), 2u);
}

TEST(PartitionInstances, SubsetMatchingMergesSequences) {
  // Fig. 1 flow: {F:1} then {F:1, A:a05} then {F:1, A:a05} again.
  const auto instances = partition_instances({
      msg(1, {id("FETCHER", "1"), id("ATTEMPT", "a05")}, 0),
      msg(2, {id("FETCHER", "1"), id("ATTEMPT", "a05")}, 1),
      msg(3, {id("FETCHER", "1")}, 2),
  });
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].messages.size(), 3u);
  EXPECT_EQ(instances[0].signature, (std::set<std::string>{"FETCHER", "ATTEMPT"}));
}

TEST(PartitionInstances, DisjointIdsSplitInstances) {
  const auto instances = partition_instances({
      msg(1, {id("BLOCK", "rdd_0_1")}, 0),
      msg(1, {id("BLOCK", "rdd_0_2")}, 1),
  });
  EXPECT_EQ(instances.size(), 2u);
}

TEST(PartitionInstances, SameValueDifferentTypeDoesNotMerge) {
  // "TID 3" and "SPILL 3" share the numeral but not the identifier.
  const auto instances = partition_instances({
      msg(1, {id("TID", "3")}, 0),
      msg(2, {id("SPILL", "3")}, 1),
  });
  EXPECT_EQ(instances.size(), 2u);
}

TEST(PartitionInstances, NoneKeyedSequenceIsSeparate) {
  const auto instances = partition_instances({
      msg(1, {id("BM", "bm1")}, 0),
      msg(2, {}, 1),
      msg(3, {id("BM", "bm1")}, 2),
  });
  ASSERT_EQ(instances.size(), 2u);
  // With-identifier instance has keys {1,3}; NONE instance has {2}.
  EXPECT_EQ(instances[0].key_set(), (std::set<int>{1, 3}));
  EXPECT_EQ(instances[1].key_set(), (std::set<int>{2}));
}

// --- UpdateSubroutine / Fig. 5 ------------------------------------------------

class SubroutineModelTest : public ::testing::Test {
 protected:
  /// Builds one instance with the given key order, all sharing one id.
  SubroutineInstance inst(std::vector<int> keys, const std::string& value) {
    SubroutineInstance i;
    i.id_values = {"ID:" + value};
    i.signature = {"ID"};
    std::size_t pos = 0;
    for (const int k : keys) i.messages.push_back(msg(k, {id("ID", value)}, pos++));
    return i;
  }
  SubroutineModel model;
};

TEST_F(SubroutineModelTest, Fig5Scenario) {
  // Session 1: two instances A B C D (same order) -> all critical, total
  // order.
  model.update({inst({1, 2, 3, 4}, "a"), inst({1, 2, 3, 4}, "b")});
  {
    const auto& sub = model.subroutines().at({"ID"});
    EXPECT_EQ(sub.critical, (std::set<int>{1, 2, 3, 4}));
    EXPECT_TRUE(sub.before.count({2, 3}));
    EXPECT_TRUE(sub.before.count({1, 4}));
  }
  // Session 2, Seq3: B and C swapped -> BEFORE(2,3) broken, now parallel.
  model.update({inst({1, 3, 2, 4}, "c")});
  {
    const auto& sub = model.subroutines().at({"ID"});
    EXPECT_FALSE(sub.before.count({2, 3}));
    EXPECT_FALSE(sub.before.count({3, 2}));
    EXPECT_TRUE(sub.parallel.count({2, 3}));
    EXPECT_TRUE(sub.before.count({1, 2}));  // unaffected order survives
    EXPECT_EQ(sub.critical, (std::set<int>{1, 2, 3, 4}));
  }
  // Session 2, Seq4: no message for D -> D no longer critical.
  model.update({inst({1, 2, 3}, "d")});
  {
    const auto& sub = model.subroutines().at({"ID"});
    EXPECT_EQ(sub.critical, (std::set<int>{1, 2, 3}));
    EXPECT_TRUE(sub.keys.count(4));  // still a member key
    EXPECT_EQ(sub.instance_count, 4u);
  }
}

TEST_F(SubroutineModelTest, ParallelNeverReturnsToBefore) {
  model.update({inst({1, 2}, "a")});
  model.update({inst({2, 1}, "b")});   // break
  model.update({inst({1, 2}, "c")});   // same as original order again
  const auto& sub = model.subroutines().at({"ID"});
  EXPECT_FALSE(sub.before.count({1, 2}));
  EXPECT_TRUE(sub.parallel.count({1, 2}));
}

TEST_F(SubroutineModelTest, NewKeyIsNotCritical) {
  model.update({inst({1, 2}, "a")});
  model.update({inst({1, 2, 9}, "b")});
  const auto& sub = model.subroutines().at({"ID"});
  EXPECT_TRUE(sub.keys.count(9));
  EXPECT_FALSE(sub.critical.count(9));
}

TEST_F(SubroutineModelTest, SignaturesAreIndependent) {
  model.update({inst({1, 2}, "a")});
  SubroutineInstance other;
  other.signature = {"OTHER"};
  other.id_values = {"OTHER:x"};
  other.messages = {msg(7, {id("OTHER", "x")})};
  model.update({other});
  EXPECT_EQ(model.subroutines().size(), 2u);
  EXPECT_EQ(model.subroutines().at({"OTHER"}).critical, (std::set<int>{7}));
}

TEST_F(SubroutineModelTest, CheckDetectsMissingCritical) {
  model.update({inst({1, 2, 3}, "a"), inst({1, 2, 3}, "b")});
  const auto bad = model.check(inst({1, 2}, "z"));
  EXPECT_TRUE(bad.known_signature);
  EXPECT_EQ(bad.missing_critical, (std::vector<int>{3}));
  EXPECT_FALSE(bad.ok());
  const auto good = model.check(inst({1, 2, 3}, "y"));
  EXPECT_TRUE(good.ok());
}

TEST_F(SubroutineModelTest, CheckDetectsUnknownSignature) {
  model.update({inst({1, 2}, "a")});
  SubroutineInstance weird;
  weird.signature = {"NEVER_SEEN"};
  weird.id_values = {"NEVER_SEEN:1"};
  weird.messages = {msg(1, {id("NEVER_SEEN", "1")})};
  const auto check = model.check(weird);
  EXPECT_FALSE(check.known_signature);
  EXPECT_FALSE(check.ok());
}

TEST_F(SubroutineModelTest, CheckReportsUnknownKeys) {
  model.update({inst({1, 2}, "a")});
  const auto check = model.check(inst({1, 2, 77}, "b"));
  EXPECT_EQ(check.unknown_keys, (std::vector<int>{77}));
}

TEST_F(SubroutineModelTest, LengthIsKeyCount) {
  model.update({inst({1, 2, 3}, "a")});
  EXPECT_EQ(model.subroutines().at({"ID"}).length(), 3u);
}

TEST_F(SubroutineModelTest, OrderViolationNeedsEnoughTraining) {
  // 5 consistent instances: the BEFORE relation exists but is not yet
  // trusted for violation reports (min_instances_for_order = 20 default).
  for (int i = 0; i < 5; ++i) model.update({inst({1, 2, 3}, std::to_string(i))});
  const auto early = model.check(inst({3, 2, 1}, "x"));
  EXPECT_TRUE(early.order_violations.empty());
  // 20+ instances: an inverted order is reported.
  for (int i = 5; i < 25; ++i) model.update({inst({1, 2, 3}, std::to_string(i))});
  const auto late = model.check(inst({3, 2, 1}, "y"));
  EXPECT_FALSE(late.order_violations.empty());
  EXPECT_FALSE(late.ok());
  // The violated pairs are learned BEFORE relations.
  for (const auto& [a, b] : late.order_violations) {
    EXPECT_TRUE(model.subroutines().at({"ID"}).before.count({a, b}));
  }
  // A conforming instance stays clean.
  EXPECT_TRUE(model.check(inst({1, 2, 3}, "z")).ok());
}

TEST_F(SubroutineModelTest, OrderViolationIgnoresAbsentKeys) {
  for (int i = 0; i < 25; ++i) model.update({inst({1, 2, 3}, std::to_string(i))});
  // Key 1 missing entirely: no order to violate against it (the missing
  // key itself is a critical-key issue, not an order issue).
  const auto check = model.check(inst({2, 3}, "x"));
  EXPECT_TRUE(check.order_violations.empty());
  EXPECT_FALSE(check.missing_critical.empty());
}

TEST_F(SubroutineModelTest, RestoreRoundTrip) {
  model.update({inst({1, 2, 3}, "a"), inst({1, 2, 3}, "b")});
  const auto subs = model.subroutines();
  SubroutineModel other;
  other.restore(subs);
  EXPECT_EQ(other.subroutines().at({"ID"}).critical, (std::set<int>{1, 2, 3}));
  EXPECT_TRUE(other.check(inst({1, 2, 3}, "c")).ok());
}

// Property: BEFORE relations only ever shrink as more instances arrive.
class SubroutineMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(SubroutineMonotonicity, BeforeOnlyShrinksAfterFirstContact) {
  intellog::common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
  SubroutineModel model;
  std::vector<int> keys = {1, 2, 3, 4, 5};
  // First instance fixes the candidate order set.
  SubroutineInstance first;
  first.signature = {"ID"};
  first.id_values = {"ID:0"};
  std::size_t pos = 0;
  for (const int k : keys) first.messages.push_back(msg(k, {id("ID", "0")}, pos++));
  model.update({first});
  auto before_prev = model.subroutines().at({"ID"}).before;
  for (int round = 0; round < 8; ++round) {
    rng.shuffle(keys);
    SubroutineInstance i;
    i.signature = {"ID"};
    i.id_values = {"ID:" + std::to_string(round + 1)};
    pos = 0;
    for (const int k : keys) i.messages.push_back(msg(k, {id("ID", "x")}, pos++));
    model.update({i});
    const auto& before_now = model.subroutines().at({"ID"}).before;
    for (const auto& pair : before_now) {
      EXPECT_TRUE(before_prev.count(pair)) << "BEFORE relation appeared late";
    }
    before_prev = before_now;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SubroutineMonotonicity, ::testing::Range(0, 10));
