#include "core/query.hpp"

#include <gtest/gtest.h>

using namespace intellog::core;

namespace {

IntelMessage msg(int key, std::uint64_t ts, std::string container,
                 std::vector<IdentifierValue> ids = {},
                 std::vector<std::pair<std::string, std::string>> values = {},
                 std::vector<std::string> locs = {}) {
  IntelMessage m;
  m.key_id = key;
  m.timestamp_ms = ts;
  m.container_id = std::move(container);
  m.identifiers = std::move(ids);
  m.values = std::move(values);
  m.localities = std::move(locs);
  return m;
}

}  // namespace

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store.add(msg(10, 1000, "container_01_1", {{"FETCHER", "1"}, {"ATTEMPT", "attempt_05"}},
                  {{"2264", "bytes"}}, {"host1:13562"}));
    store.add(msg(10, 2000, "container_01_2", {{"FETCHER", "2"}}, {{"17ms", "ms"}},
                  {"host2:13562"}));
    store.add(msg(11, 3000, "container_02_1", {{"TID", "7"}}, {{"512", "bytes"}}));
    store.add(msg(12, 4000, "container_02_2"));
  }
  std::size_t count(const std::string& q) const { return run_query(store, q).size(); }
  MessageStore store;
};

TEST_F(QueryTest, KeyEquality) {
  EXPECT_EQ(count("key=10"), 2u);
  EXPECT_EQ(count("key!=10"), 2u);
  EXPECT_EQ(count("key=99"), 0u);
}

TEST_F(QueryTest, TypedIdentifier) {
  EXPECT_EQ(count("id.FETCHER=1"), 1u);
  EXPECT_EQ(count("id.FETCHER~2"), 1u);
  EXPECT_EQ(count("id.TID=7"), 1u);
  EXPECT_EQ(count("id.MISSING=1"), 0u);
}

TEST_F(QueryTest, UntypedIdentifierSearchesAllTypes) {
  EXPECT_EQ(count("id=7"), 1u);
  EXPECT_EQ(count("id~attempt"), 1u);
}

TEST_F(QueryTest, LocalitySubstring) {
  EXPECT_EQ(count("locality~host1"), 1u);
  EXPECT_EQ(count("locality~13562"), 2u);
  EXPECT_EQ(count("locality=host2:13562"), 1u);
}

TEST_F(QueryTest, ContainerMatching) {
  EXPECT_EQ(count("container~_01_"), 2u);
  EXPECT_EQ(count("container=container_02_2"), 1u);
}

TEST_F(QueryTest, NumericTimeAndValue) {
  EXPECT_EQ(count("time>1500"), 3u);
  EXPECT_EQ(count("time<1500"), 1u);
  EXPECT_EQ(count("value>1000"), 1u);   // 2264 bytes
  EXPECT_EQ(count("value<100"), 1u);    // 17ms (fused unit parses as 17)
  EXPECT_EQ(count("unit=bytes"), 2u);
}

TEST_F(QueryTest, BooleanCombinators) {
  EXPECT_EQ(count("key=10 AND locality~host1"), 1u);
  EXPECT_EQ(count("key=11 OR key=12"), 2u);
  EXPECT_EQ(count("key=10 AND id.FETCHER=1 OR key=12"), 2u);  // AND binds tighter
  EXPECT_EQ(count("key=10 AND (id.FETCHER=1 OR id.FETCHER=2)"), 2u);
  EXPECT_EQ(count("NOT key=10"), 2u);
  EXPECT_EQ(count("NOT (key=10 OR key=11)"), 1u);
}

TEST_F(QueryTest, QuotedValues) {
  store.add(msg(13, 5000, "with space"));
  EXPECT_EQ(count("container=\"with space\""), 1u);
}

TEST_F(QueryTest, CaseStudyShape) {
  // Case 1's diagnosis as a query: failing fetchers against one host.
  const auto hits = run_query(store, "id.FETCHER~\"\" AND locality~host");
  EXPECT_EQ(hits.size(), 2u);
}

TEST_F(QueryTest, SyntaxErrors) {
  EXPECT_THROW(Query::parse(""), std::invalid_argument);
  EXPECT_THROW(Query::parse("bogusfield=1"), std::invalid_argument);
  EXPECT_THROW(Query::parse("key"), std::invalid_argument);
  EXPECT_THROW(Query::parse("key=="), std::invalid_argument);
  EXPECT_THROW(Query::parse("key=1 AND"), std::invalid_argument);
  EXPECT_THROW(Query::parse("key=1 extra"), std::invalid_argument);
  EXPECT_THROW(Query::parse("(key=1"), std::invalid_argument);
  EXPECT_THROW(Query::parse("container>abc"), std::invalid_argument);
  EXPECT_THROW(Query::parse("id.=1"), std::invalid_argument);
  EXPECT_THROW(Query::parse("key=\"unterminated"), std::invalid_argument);
}

TEST_F(QueryTest, ToStringNormalForm) {
  EXPECT_EQ(Query::parse("key=1 AND id.T~x OR NOT time<5").to_string(),
            "((key=\"1\" AND id.T~\"x\") OR (NOT time<\"5\"))");
}
