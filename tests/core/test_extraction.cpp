#include "core/extraction.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/strings.hpp"

using namespace intellog::core;
using intellog::logparse::LogKey;

namespace {

LogKey key_from(const std::string& key_text) {
  LogKey k;
  k.id = 0;
  k.tokens = intellog::common::split_ws(key_text);
  return k;
}

bool has_entity(const IntelKey& ik, const std::string& e) {
  return std::find(ik.entities.begin(), ik.entities.end(), e) != ik.entities.end();
}

bool has_operation(const IntelKey& ik, const std::string& pred) {
  for (const auto& op : ik.operations) {
    if (op.predicate == pred) return true;
  }
  return false;
}

std::size_t count_category(const IntelKey& ik, FieldCategory c) {
  std::size_t n = 0;
  for (const auto& f : ik.fields) n += f.category == c;
  return n;
}

}  // namespace

class ExtractionTest : public ::testing::Test {
 protected:
  InfoExtractor extractor;
};

// --- Fig. 1: the MapReduce fetcher subroutine ------------------------------

TEST_F(ExtractionTest, Fig1Line1AboutToShuffle) {
  const IntelKey ik = extractor.extract(
      key_from("fetcher # * about to shuffle output of map *"),
      "fetcher # 1 about to shuffle output of map attempt_01");
  EXPECT_TRUE(has_entity(ik, "fetcher"));
  EXPECT_TRUE(has_entity(ik, "output of map"));
  ASSERT_EQ(ik.fields.size(), 2u);
  EXPECT_EQ(ik.fields[0].category, FieldCategory::Identifier);
  EXPECT_EQ(ik.fields[0].id_type, "FETCHER");
  EXPECT_EQ(ik.fields[1].category, FieldCategory::Identifier);
  EXPECT_EQ(ik.fields[1].id_type, "ATTEMPT");
  // Operation: {fetcher, shuffle, output of map}.
  ASSERT_FALSE(ik.operations.empty());
  bool found = false;
  for (const auto& op : ik.operations) {
    found |= op.subj == "fetcher" && op.predicate == "shuffle" && op.obj == "output of map";
  }
  EXPECT_TRUE(found) << "expected {fetcher, shuffle, output of map}";
}

TEST_F(ExtractionTest, Fig1Line2ReadBytes) {
  // Spell masks the whole "1]" token, so the key reads "...# * read ...".
  const IntelKey ik = extractor.extract(
      key_from("[fetcher # * read * bytes from map-output for *"),
      "[fetcher # 1] read 2264 bytes from map-output for attempt_01");
  EXPECT_TRUE(has_entity(ik, "fetcher"));
  EXPECT_TRUE(has_entity(ik, "map-output"));
  EXPECT_FALSE(has_entity(ik, "byte")) << "'bytes' is a unit and must be omitted";
  ASSERT_EQ(ik.fields.size(), 3u);
  EXPECT_EQ(ik.fields[0].id_type, "FETCHER");
  EXPECT_EQ(ik.fields[1].category, FieldCategory::Value);
  EXPECT_EQ(ik.fields[1].unit, "bytes");
  EXPECT_EQ(ik.fields[2].id_type, "ATTEMPT");
  EXPECT_TRUE(has_operation(ik, "read"));
}

TEST_F(ExtractionTest, Fig1Line3FreedBy) {
  const IntelKey ik = extractor.extract(key_from("* freed by fetcher # * in *"),
                                        "host1:13562 freed by fetcher # 1 in 4ms");
  ASSERT_EQ(ik.fields.size(), 3u);
  EXPECT_EQ(ik.fields[0].category, FieldCategory::Locality);
  EXPECT_EQ(ik.fields[1].category, FieldCategory::Identifier);
  EXPECT_EQ(ik.fields[1].id_type, "FETCHER");
  EXPECT_EQ(ik.fields[2].category, FieldCategory::Value);
  EXPECT_EQ(ik.fields[2].unit, "ms");
  EXPECT_TRUE(has_entity(ik, "fetcher"));
  EXPECT_TRUE(has_operation(ik, "free"));
}

// --- Fig. 3: sample-message tagging for keys with leading variables --------

TEST_F(ExtractionTest, Fig3MetricsSystem) {
  const IntelKey ik = extractor.extract(key_from("* MapTask metrics system"),
                                        "Starting MapTask metrics system");
  // The leading variable field is a verb: filtered by heuristic 1.
  ASSERT_EQ(ik.fields.size(), 1u);
  EXPECT_EQ(ik.fields[0].category, FieldCategory::Other);
  // Camel-case filter: MapTask -> map task.
  bool covers_map_task = false;
  for (const auto& e : ik.entities) {
    covers_map_task |= e.find("map task") != std::string::npos || e == "map task";
  }
  EXPECT_TRUE(covers_map_task);
  EXPECT_TRUE(has_operation(ik, "start"));
}

// --- Fig. 4: the Spark task-finish key --------------------------------------

TEST_F(ExtractionTest, Fig4TaskFinished) {
  const IntelKey ik = extractor.extract(
      key_from("Finished task * in stage * (TID * * bytes result sent to driver"),
      "Finished task 1.0 in stage 0.0 (TID 3). 2578 bytes result sent to driver");
  // Five entities, 'bytes' omitted as a unit (paper's wording).
  EXPECT_TRUE(has_entity(ik, "task"));
  EXPECT_TRUE(has_entity(ik, "stage"));
  EXPECT_TRUE(has_entity(ik, "tid"));
  EXPECT_TRUE(has_entity(ik, "result"));
  EXPECT_TRUE(has_entity(ik, "driver"));
  EXPECT_FALSE(has_entity(ik, "byte"));
  // Three identifiers + one value.
  EXPECT_EQ(count_category(ik, FieldCategory::Identifier), 3u);
  EXPECT_EQ(count_category(ik, FieldCategory::Value), 1u);
  // Two operations: {_, finish, task} and {result, send, driver}.
  bool op1 = false, op2 = false;
  for (const auto& op : ik.operations) {
    op1 |= op.predicate == "finish" && op.obj == "task";
    op2 |= op.subj == "result" && op.predicate == "send" && op.obj == "driver";
  }
  EXPECT_TRUE(op1) << "missing {_, finish, task}";
  EXPECT_TRUE(op2) << "missing {result, send, driver}";
}

// --- identifier/value heuristics -------------------------------------------

TEST_F(ExtractionTest, BareNumberAfterNounIsIdentifier) {
  const IntelKey ik =
      extractor.extract(key_from("Finished spill *"), "Finished spill 0");
  ASSERT_EQ(ik.fields.size(), 1u);
  EXPECT_EQ(ik.fields[0].category, FieldCategory::Identifier);
  EXPECT_EQ(ik.fields[0].id_type, "SPILL");
}

TEST_F(ExtractionTest, BareNumberAfterVerbIsValue) {
  const IntelKey ik = extractor.extract(key_from("Merging * sorted segments"),
                                        "Merging 24 sorted segments");
  ASSERT_EQ(ik.fields.size(), 1u);
  EXPECT_EQ(ik.fields[0].category, FieldCategory::Value);
}

TEST_F(ExtractionTest, MixedAlnumIsIdentifierWithPrefixType) {
  const IntelKey ik = extractor.extract(key_from("Launched container * for task attempt *"),
                                        "Launched container container_e01_12_01_000002 for "
                                        "task attempt attempt_12_m_0_0");
  ASSERT_EQ(ik.fields.size(), 2u);
  EXPECT_EQ(ik.fields[0].id_type, "CONTAINER");
  EXPECT_EQ(ik.fields[1].id_type, "ATTEMPT");
}

TEST_F(ExtractionTest, LocalityFieldsWin) {
  const IntelKey ik = extractor.extract(key_from("Saved output of task * to *"),
                                        "Saved output of task attempt_01 to "
                                        "hdfs://master:9000/user/out");
  ASSERT_EQ(ik.fields.size(), 2u);
  EXPECT_EQ(ik.fields[0].category, FieldCategory::Identifier);
  EXPECT_EQ(ik.fields[1].category, FieldCategory::Locality);
  EXPECT_TRUE(has_entity(ik, "output of task"));
}

TEST_F(ExtractionTest, NominalSentenceHasNoOperations) {
  // The paper's §6.2 missed-operation example.
  const IntelKey ik = extractor.extract(
      key_from("Down to the last merge-pass, with * segments left of total size: * bytes"),
      "Down to the last merge-pass, with 5 segments left of total size: 1048576 bytes");
  EXPECT_FALSE(has_operation(ik, "merge"));
  EXPECT_TRUE(has_entity(ik, "last merge-pass") || has_entity(ik, "merge-pass"));
}

TEST_F(ExtractionTest, AdjacentFieldsStayDistinct) {
  const IntelKey ik = extractor.extract(key_from("vertex * * tasks done"),
                                        "vertex vertex_01 42 tasks done");
  ASSERT_EQ(ik.fields.size(), 2u);
  EXPECT_EQ(ik.fields[0].category, FieldCategory::Identifier);
  EXPECT_EQ(ik.fields[0].id_type, "VERTEX");
  // "42" follows an identifier token (a noun), so heuristic 4 reads it as
  // an identifier too — the ambiguity the paper acknowledges in §6.2.
  EXPECT_EQ(ik.fields[1].category, FieldCategory::Identifier);
}

TEST_F(ExtractionTest, ExtractFromRawMessage) {
  // §4.2: unexpected messages get the same treatment without a log key.
  const IntelKey ik =
      extractor.extract_from_message("Failed to connect to host9:7337");
  EXPECT_TRUE(has_operation(ik, "connect") || has_operation(ik, "fail"));
  ASSERT_EQ(ik.fields.size(), 1u);
  EXPECT_EQ(ik.fields[0].category, FieldCategory::Locality);
}

// --- instantiation -----------------------------------------------------------

TEST_F(ExtractionTest, InstantiateFillsIntelMessage) {
  const LogKey key = key_from("* freed by fetcher # * in *");
  const IntelKey ik =
      extractor.extract(key, "host1:13562 freed by fetcher # 1 in 4ms");
  intellog::logparse::LogRecord rec;
  rec.content = "host7:13562 freed by fetcher # 3 in 17ms";
  rec.timestamp_ms = 12345;
  rec.container_id = "c9";
  const IntelMessage msg = extractor.instantiate(ik, key, rec);
  EXPECT_EQ(msg.timestamp_ms, 12345u);
  EXPECT_EQ(msg.container_id, "c9");
  ASSERT_EQ(msg.localities.size(), 1u);
  EXPECT_EQ(msg.localities[0], "host7:13562");
  ASSERT_EQ(msg.identifiers.size(), 1u);
  EXPECT_EQ(msg.identifiers[0].type, "FETCHER");
  EXPECT_EQ(msg.identifiers[0].value, "3");
  ASSERT_EQ(msg.values.size(), 1u);
  EXPECT_EQ(msg.values[0].first, "17ms");
}

TEST_F(ExtractionTest, InstantiateStripsSentencePunct) {
  const LogKey key = key_from("Running task * in stage * (TID *");
  const IntelKey ik = extractor.extract(key, "Running task 1.0 in stage 0.0 (TID 3)");
  intellog::logparse::LogRecord rec;
  rec.content = "Running task 7.0 in stage 2.0 (TID 99)";
  const IntelMessage msg = extractor.instantiate(ik, key, rec);
  ASSERT_EQ(msg.identifiers.size(), 3u);
  EXPECT_EQ(msg.identifiers[2].value, "99");  // ')' stripped
}

TEST_F(ExtractionTest, IdTypeInference) {
  EXPECT_EQ(InfoExtractor::infer_id_type("attempt_01", ""), "ATTEMPT");
  EXPECT_EQ(InfoExtractor::infer_id_type("container_e01_01", "for"), "CONTAINER");
  EXPECT_EQ(InfoExtractor::infer_id_type("3", "tid"), "TID");
  EXPECT_EQ(InfoExtractor::infer_id_type("0.0", "stage"), "STAGE");
  EXPECT_EQ(InfoExtractor::infer_id_type("bm7", ""), "BM");
  EXPECT_EQ(InfoExtractor::infer_id_type("123", ""), "ID");
}

TEST_F(ExtractionTest, UnitWords) {
  for (const char* u : {"bytes", "ms", "mb", "seconds", "%"}) {
    EXPECT_TRUE(InfoExtractor::is_unit_word(u)) << u;
  }
  EXPECT_FALSE(InfoExtractor::is_unit_word("driver"));
}

TEST_F(ExtractionTest, JsonExport) {
  const IntelKey ik = extractor.extract(key_from("Finished spill *"), "Finished spill 0");
  const auto j = ik.to_json();
  EXPECT_EQ(j["key"].as_string(), "Finished spill *");
  EXPECT_EQ(j["fields"][0u]["category"].as_string(), "identifier");
  EXPECT_EQ(j["fields"][0u]["id_type"].as_string(), "SPILL");
}

// --- align_fields ------------------------------------------------------------

TEST(AlignFields, SingleGaps) {
  const auto fields = align_fields({"read", "*", "bytes", "for", "*"},
                                   {"read", "2264", "bytes", "for", "attempt_01"}, nullptr);
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "2264");
  EXPECT_EQ(fields[1], "attempt_01");
}

TEST(AlignFields, AdjacentStarsSplitRun) {
  const auto fields =
      align_fields({"(TID", "*", "*", "bytes"}, {"(TID", "3).", "2578", "bytes"}, nullptr);
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "3).");
  EXPECT_EQ(fields[1], "2578");
}

TEST(AlignFields, MultiTokenFieldJoins) {
  const auto fields = align_fields({"capacity", "*", "on", "host", "*"},
                                   {"capacity", "<memory:4096,", "vCores:8>", "on", "host",
                                    "host3:8041"},
                                   nullptr);
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "<memory:4096, vCores:8>");
  EXPECT_EQ(fields[1], "host3:8041");
}

TEST(AlignFields, LeadingStar) {
  std::vector<int> idx;
  const auto fields = align_fields({"*", "MapTask", "metrics", "system"},
                                   {"Stopping", "MapTask", "metrics", "system"}, &idx);
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "Stopping");
  EXPECT_EQ(idx, (std::vector<int>{0, -1, -1, -1}));
}

TEST(AlignFields, EmptyFieldWhenValueMissing) {
  const auto fields = align_fields({"done", "*"}, {"done"}, nullptr);
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_TRUE(fields[0].empty());
}
