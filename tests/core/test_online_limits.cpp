// Bounded-memory OnlineDetector: session/record caps with LRU eviction,
// the stuck-session watchdog, and the degraded-mode flags + telemetry that
// make force-closes visible to operators.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/online.hpp"
#include "obs/metrics.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

namespace {

std::vector<logparse::Session> corpus(int jobs, std::uint64_t seed) {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", seed);
  std::vector<logparse::Session> out;
  for (int i = 0; i < jobs; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) out.push_back(std::move(s));
  }
  return out;
}

logparse::LogRecord rec(const std::string& container, std::uint64_t ts,
                        const std::string& content = "Running task 0") {
  logparse::LogRecord r;
  r.container_id = container;
  r.timestamp_ms = ts;
  r.content = content;
  return r;
}

}  // namespace

class OnlineLimitsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model = new core::IntelLog();
    model->train(corpus(6, 31));
  }
  static void TearDownTestSuite() {
    delete model;
    model = nullptr;
  }
  static core::IntelLog* model;
};

core::IntelLog* OnlineLimitsTest::model = nullptr;

TEST_F(OnlineLimitsTest, SessionCapHoldsUnderTenTimesOverload) {
  obs::MetricsRegistry registry;
  obs::set_registry(&registry);
  core::OnlineDetector::Limits limits;
  limits.max_sessions = 8;
  core::OnlineDetector online(*model, 1, limits);

  // 10x overload: 80 distinct containers, never closed explicitly.
  const std::size_t containers = 80;
  for (std::size_t c = 0; c < containers; ++c) {
    for (int k = 0; k < 3; ++k) {
      online.consume(rec("c" + std::to_string(c), c * 10 + static_cast<std::uint64_t>(k)));
      ASSERT_LE(online.open_sessions().size(), limits.max_sessions);
    }
  }
  const auto evicted = online.take_evicted();
  EXPECT_EQ(evicted.size(), containers - limits.max_sessions);
  for (const auto& r : evicted) {
    EXPECT_EQ(r.degraded_reason, "lru");
    EXPECT_TRUE(r.degraded());
    // Degraded-mode reports still run the structural checks.
    EXPECT_EQ(r.session_length, 3u);
  }
  // Eviction order is least-recently-active first.
  EXPECT_EQ(evicted.front().container_id, "c0");

  // Evictions are visible in the registry and its Prometheus export.
  const obs::Counter* closed = registry.find_counter("intellog_online_sessions_closed_total",
                                                     {{"reason", "evicted"}});
  ASSERT_NE(closed, nullptr);
  EXPECT_EQ(closed->value(), containers - limits.max_sessions);
  const obs::Counter* degraded = registry.find_counter("intellog_online_degraded_reports_total");
  ASSERT_NE(degraded, nullptr);
  EXPECT_EQ(degraded->value(), containers - limits.max_sessions);
  const std::string prom = registry.to_prometheus();
  EXPECT_NE(prom.find("intellog_online_sessions_closed_total"), std::string::npos);
  EXPECT_NE(prom.find("reason=\"evicted\""), std::string::npos);
  online.close_all();
  obs::set_registry(nullptr);
}

TEST_F(OnlineLimitsTest, BufferedRecordCapEvictsThroughChecks) {
  core::OnlineDetector::Limits limits;
  limits.max_buffered_records = 50;
  core::OnlineDetector online(*model, 1, limits);
  for (int i = 0; i < 200; ++i) {
    online.consume(rec("hog", static_cast<std::uint64_t>(i)));
    ASSERT_LE(online.total_buffered_records(), limits.max_buffered_records);
  }
  const auto evicted = online.take_evicted();
  ASSERT_GE(evicted.size(), 1u);
  for (const auto& r : evicted) EXPECT_EQ(r.degraded_reason, "lru");
  online.close_all();
}

TEST_F(OnlineLimitsTest, UnboundedByDefault) {
  core::OnlineDetector online(*model);
  for (std::size_t c = 0; c < 64; ++c) {
    online.consume(rec("c" + std::to_string(c), c));
  }
  EXPECT_EQ(online.open_sessions().size(), 64u);
  EXPECT_EQ(online.pending_evicted(), 0u);
  online.close_all();
}

TEST_F(OnlineLimitsTest, WatchdogForceClosesStuckSessions) {
  obs::MetricsRegistry registry;
  obs::set_registry(&registry);
  core::OnlineDetector::Limits limits;
  limits.max_session_age_ms = 1000;
  core::OnlineDetector online(*model, 1, limits);
  online.consume(rec("stuck", 100));
  online.consume(rec("fresh", 1500));

  // At t=1600 only "stuck" (first seen 100) is past the 1000 ms age cap.
  auto reports = online.watchdog(1600);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].container_id, "stuck");
  EXPECT_EQ(reports[0].degraded_reason, "watchdog");
  EXPECT_EQ(online.open_sessions(), std::vector<std::string>{"fresh"});

  const obs::Counter* closed = registry.find_counter("intellog_online_sessions_closed_total",
                                                     {{"reason", "watchdog"}});
  ASSERT_NE(closed, nullptr);
  EXPECT_EQ(closed->value(), 1u);
  online.close_all();
  obs::set_registry(nullptr);
}

TEST_F(OnlineLimitsTest, WatchdogDisabledIsNoOp) {
  core::OnlineDetector online(*model);
  online.consume(rec("old", 1));
  EXPECT_TRUE(online.watchdog(1u << 30).empty());
  EXPECT_EQ(online.open_sessions().size(), 1u);
  online.close_all();
}

TEST_F(OnlineLimitsTest, CloseIdleRunsWatchdogToo) {
  core::OnlineDetector::Limits limits;
  limits.max_session_age_ms = 1000;
  core::OnlineDetector online(*model, 1, limits);
  // "chatty" keeps logging (never idle) but is long past the age cap.
  for (int i = 0; i < 20; ++i) {
    online.consume(rec("chatty", static_cast<std::uint64_t>(i * 200)));
  }
  const auto reports = online.close_idle(/*now_ms=*/4000, /*idle_ms=*/10000);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].degraded_reason, "watchdog");
  EXPECT_TRUE(online.open_sessions().empty());
}

TEST_F(OnlineLimitsTest, DegradedFlagSurfacesInReportJson) {
  core::OnlineDetector::Limits limits;
  limits.max_sessions = 1;
  core::OnlineDetector online(*model, 1, limits);
  online.consume(rec("a", 1));
  online.consume(rec("b", 2));  // evicts "a"
  const auto evicted = online.take_evicted();
  ASSERT_EQ(evicted.size(), 1u);
  const std::string dump = evicted[0].to_json().dump();
  EXPECT_NE(dump.find("\"degraded\""), std::string::npos);
  EXPECT_NE(dump.find("lru"), std::string::npos);
  // Normal reports must NOT carry the field (byte-layout parity).
  if (const auto normal = online.close_session("b")) {
    EXPECT_EQ(normal->to_json().dump().find("\"degraded\""), std::string::npos);
  }
}
