// Structural model diffing: per-class churn, refined-key pairing, and the
// scalar drift score (0 = identical, deterministic output).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/intellog.hpp"
#include "core/model_diff.hpp"
#include "core/model_io.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

namespace {

std::vector<logparse::Session> training_corpus(const std::string& system, int jobs,
                                               std::uint64_t seed) {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen(system, seed);
  std::vector<logparse::Session> out;
  for (int i = 0; i < jobs; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

TEST(ClassDiffTest, JaccardAndDrift) {
  core::ClassDiff diff;
  diff.name = "t";
  diff.common = 3;
  diff.added = {"x"};
  diff.removed = {"y", "z"};
  EXPECT_EQ(diff.union_size(), 6u);
  EXPECT_DOUBLE_EQ(diff.jaccard(), 0.5);
  EXPECT_DOUBLE_EQ(diff.drift(), 0.5);
  // Two empty sets: no churn in nothing.
  core::ClassDiff empty;
  EXPECT_DOUBLE_EQ(empty.jaccard(), 1.0);
  EXPECT_DOUBLE_EQ(empty.drift(), 0.0);
}

TEST(ModelDiffTest, IdenticalTrainingsDriftExactlyZero) {
  core::IntelLog a, b;
  a.train(training_corpus("spark", 6, 42));
  b.train(training_corpus("spark", 6, 42));
  const core::ModelDiff diff = core::diff_models(a, b);
  EXPECT_EQ(diff.drift_score(), 0.0);  // exactly, not approximately
  for (const core::ClassDiff* cls : {&diff.log_keys, &diff.intel_keys, &diff.group_members,
                                     &diff.subroutines, &diff.edges}) {
    EXPECT_TRUE(cls->added.empty()) << cls->name;
    EXPECT_TRUE(cls->removed.empty()) << cls->name;
    EXPECT_GT(cls->common, 0u) << cls->name;
  }
  EXPECT_TRUE(diff.refined_keys.empty());
  EXPECT_DOUBLE_EQ(diff.to_json()["drift_score"].as_double(), 0.0);
}

TEST(ModelDiffTest, SurvivesModelIoRoundTrip) {
  // diff-model operates on persisted models: save -> load must still
  // compare equal to the in-memory original.
  core::IntelLog a;
  a.train(training_corpus("spark", 6, 42));
  core::IntelLog b = core::load_model(core::save_model(a));
  EXPECT_EQ(core::diff_models(a, b).drift_score(), 0.0);
}

TEST(ModelDiffTest, DifferentSystemsDriftHard) {
  core::IntelLog spark, tez;
  spark.train(training_corpus("spark", 6, 42));
  tez.train(training_corpus("tez", 6, 42));
  const core::ModelDiff diff = core::diff_models(spark, tez);
  EXPECT_GT(diff.drift_score(), 0.5);
  EXPECT_LE(diff.drift_score(), 1.0);
  EXPECT_FALSE(diff.log_keys.added.empty());
  EXPECT_FALSE(diff.log_keys.removed.empty());
}

TEST(ModelDiffTest, DiffIsDirectionSensitiveButSymmetricInScore) {
  core::IntelLog spark, tez;
  spark.train(training_corpus("spark", 5, 7));
  tez.train(training_corpus("tez", 5, 7));
  const core::ModelDiff ab = core::diff_models(spark, tez);
  const core::ModelDiff ba = core::diff_models(tez, spark);
  EXPECT_DOUBLE_EQ(ab.drift_score(), ba.drift_score());
  EXPECT_EQ(ab.log_keys.added, ba.log_keys.removed);
  EXPECT_EQ(ab.log_keys.removed, ba.log_keys.added);
}

TEST(ModelDiffTest, OutputIsDeterministic) {
  core::IntelLog spark, tez;
  spark.train(training_corpus("spark", 5, 7));
  tez.train(training_corpus("tez", 5, 7));
  const core::ModelDiff first = core::diff_models(spark, tez);
  const core::ModelDiff second = core::diff_models(spark, tez);
  EXPECT_EQ(first.to_json().dump(), second.to_json().dump());
  EXPECT_EQ(first.render_text(), second.render_text());
}

TEST(ModelDiffTest, MoreTrainingDataGrowsTheModelNotDisjointly) {
  // 5 jobs vs the same 5 + 5 more: the larger model should mostly contain
  // the smaller one — drift present but far from total.
  core::IntelLog small, large;
  small.train(training_corpus("spark", 5, 11));
  large.train(training_corpus("spark", 10, 11));
  const core::ModelDiff diff = core::diff_models(small, large);
  EXPECT_GT(diff.log_keys.common, 0u);
  EXPECT_LT(diff.drift_score(), 0.5);
}
