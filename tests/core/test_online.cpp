#include "core/online.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "obs/metrics.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

namespace {

std::vector<logparse::Session> corpus(int jobs, std::uint64_t seed) {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", seed);
  std::vector<logparse::Session> out;
  for (int i = 0; i < jobs; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) out.push_back(std::move(s));
  }
  return out;
}

/// Interleaves a job's sessions into one arrival-ordered record stream.
std::vector<logparse::LogRecord> interleave(const simsys::JobResult& job) {
  std::vector<logparse::LogRecord> stream;
  for (const auto& s : job.sessions) {
    stream.insert(stream.end(), s.records.begin(), s.records.end());
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const logparse::LogRecord& a, const logparse::LogRecord& b) {
                     return a.timestamp_ms < b.timestamp_ms;
                   });
  return stream;
}

}  // namespace

class OnlineDetectorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model = new core::IntelLog();
    model->train(corpus(25, 31));
  }
  static void TearDownTestSuite() {
    delete model;
    model = nullptr;
  }
  static core::IntelLog* model;
};

core::IntelLog* OnlineDetectorTest::model = nullptr;

TEST_F(OnlineDetectorTest, RequiresTrainedModel) {
  core::IntelLog fresh;
  EXPECT_THROW(core::OnlineDetector bad(fresh), std::logic_error);
}

TEST_F(OnlineDetectorTest, CleanStreamProducesNoEvents) {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 71);
  const auto job = simsys::run_job(gen.detection_job(1), cluster);
  core::OnlineDetector online(*model);
  std::size_t events = 0;
  for (const auto& rec : interleave(job)) events += online.consume(rec).has_value();
  // A handful of events can appear when a rarely-logged template was not
  // covered by training (the §6.4 false-positive mechanism); a clean stream
  // must not fire broadly.
  EXPECT_LE(events, 5u);
  EXPECT_EQ(online.open_sessions().size(), job.sessions.size());
  // Most closed sessions are clean.
  std::size_t anomalous = 0;
  for (const auto& r : online.close_all()) anomalous += r.anomalous();
  EXPECT_LE(anomalous, job.sessions.size() / 4);
  EXPECT_TRUE(online.open_sessions().empty());
}

TEST_F(OnlineDetectorTest, UnexpectedMessageSurfacesImmediately) {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 72);
  simsys::FaultPlan fault = gen.make_fault(simsys::ProblemKind::NetworkFailure, cluster);
  fault.at_fraction = 0.3;
  simsys::JobResult job;
  for (int attempt = 0; attempt < 6 && job.affected_containers.empty(); ++attempt) {
    fault = gen.make_fault(simsys::ProblemKind::NetworkFailure, cluster);
    fault.at_fraction = 0.3;
    job = simsys::run_job(gen.detection_job(2), cluster, fault);
  }
  ASSERT_FALSE(job.affected_containers.empty());
  core::OnlineDetector online(*model);
  bool saw_error_event = false;
  for (const auto& rec : interleave(job)) {
    const auto event = online.consume(rec);
    if (!event) continue;
    if (event->unexpected.content.find("Failed to connect") != std::string::npos) {
      saw_error_event = true;
      EXPECT_FALSE(event->unexpected.message.localities.empty());
      EXPECT_TRUE(job.affected_containers.count(event->container_id));
    }
  }
  EXPECT_TRUE(saw_error_event);
}

TEST_F(OnlineDetectorTest, CloseSessionMatchesBatchDetect) {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 73);
  const auto job = simsys::run_job(gen.detection_job(0), cluster);
  core::OnlineDetector online(*model);
  for (const auto& rec : interleave(job)) online.consume(rec);
  for (const auto& s : job.sessions) {
    const auto batch = model->detect(s);
    const auto streamed = online.close_session(s.container_id);
    ASSERT_TRUE(streamed.has_value());
    EXPECT_EQ(batch.anomalous(), streamed->anomalous()) << s.container_id;
    EXPECT_EQ(batch.unexpected.size(), streamed->unexpected.size());
    EXPECT_EQ(batch.issues.size(), streamed->issues.size());
  }
}

TEST_F(OnlineDetectorTest, CloseUnknownSessionReturnsNullopt) {
  core::OnlineDetector online(*model);
  EXPECT_FALSE(online.close_session("never-seen").has_value());
}

TEST_F(OnlineDetectorTest, IdleTimeoutClosesStaleSessions) {
  core::OnlineDetector online(*model);
  logparse::LogRecord rec;
  rec.container_id = "c_old";
  rec.timestamp_ms = 1000;
  rec.content = "Shutdown hook called";
  online.consume(rec);
  rec.container_id = "c_new";
  rec.timestamp_ms = 100000;
  online.consume(rec);
  const auto closed = online.close_idle(/*now=*/150000, /*idle=*/60000);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].container_id, "c_old");
  EXPECT_EQ(online.open_sessions(), (std::vector<std::string>{"c_new"}));
}

TEST_F(OnlineDetectorTest, CloseIdleExactBoundaryTimestamps) {
  core::OnlineDetector online(*model);
  logparse::LogRecord rec;
  rec.container_id = "c_boundary";
  rec.timestamp_ms = 1000;
  rec.content = "Shutdown hook called";
  online.consume(rec);
  // now < last_seen + idle: stays open.
  EXPECT_TRUE(online.close_idle(/*now=*/1999, /*idle=*/1000).empty());
  EXPECT_EQ(online.open_sessions().size(), 1u);
  // now == last_seen + idle: exactly at the deadline -> closed.
  EXPECT_EQ(online.close_idle(/*now=*/2000, /*idle=*/1000).size(), 1u);
  EXPECT_TRUE(online.open_sessions().empty());
}

TEST_F(OnlineDetectorTest, CloseIdleUsesLatestRecordPerContainer) {
  core::OnlineDetector online(*model);
  logparse::LogRecord rec;
  rec.content = "Shutdown hook called";
  // Interleaved containers; c_b keeps logging after c_a stops.
  rec.container_id = "c_a";
  rec.timestamp_ms = 1000;
  online.consume(rec);
  rec.container_id = "c_b";
  rec.timestamp_ms = 1500;
  online.consume(rec);
  rec.container_id = "c_a";
  rec.timestamp_ms = 2000;
  online.consume(rec);
  rec.container_id = "c_b";
  rec.timestamp_ms = 9000;
  online.consume(rec);
  // Out-of-order arrival must not rewind c_a's idle clock.
  rec.container_id = "c_a";
  rec.timestamp_ms = 500;
  online.consume(rec);

  const auto closed = online.close_idle(/*now=*/8000, /*idle=*/6000);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].container_id, "c_a");
  EXPECT_EQ(closed[0].session_length, 3u);
  EXPECT_EQ(online.open_sessions(), (std::vector<std::string>{"c_b"}));
}

TEST_F(OnlineDetectorTest, RecordsAfterIdleCloseStartAFreshSession) {
  core::OnlineDetector online(*model);
  logparse::LogRecord rec;
  rec.container_id = "c_restart";
  rec.timestamp_ms = 1000;
  rec.content = "Shutdown hook called";
  online.consume(rec);
  ASSERT_EQ(online.close_idle(/*now=*/10000, /*idle=*/1000).size(), 1u);
  EXPECT_EQ(online.buffered_records("c_restart"), 0u);
  // The same container id reappearing opens a new, empty-history session.
  rec.timestamp_ms = 20000;
  online.consume(rec);
  EXPECT_EQ(online.buffered_records("c_restart"), 1u);
  const auto report = online.close_session("c_restart");
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->session_length, 1u);
}

TEST_F(OnlineDetectorTest, StreamingTelemetryCountsRecordsSessionsAndCloses) {
  obs::MetricsRegistry reg;
  obs::set_registry(&reg);
  {
    // Handles are captured at construction, while the registry is installed.
    core::OnlineDetector online(*model);
    logparse::LogRecord rec;
    rec.content = "Shutdown hook called";
    rec.container_id = "c1";
    rec.timestamp_ms = 1000;
    online.consume(rec);
    online.consume(rec);
    rec.container_id = "c2";
    rec.timestamp_ms = 50000;
    online.consume(rec);
    rec.container_id = "";  // dropped: no container id, not counted
    online.consume(rec);
    rec.container_id = "c2";
    rec.content = "utterly unparseable gibberish xz-9q";
    online.consume(rec);

    EXPECT_EQ(reg.find_counter("intellog_online_records_total")->value(), 4u);
    EXPECT_EQ(reg.find_counter("intellog_online_unexpected_total")->value(), 1u);
    EXPECT_EQ(reg.find_gauge("intellog_online_open_sessions")->value(), 2);
    EXPECT_EQ(reg.find_histogram("intellog_online_consume_us")->count(), 4u);

    online.close_idle(/*now=*/100000, /*idle=*/60000);  // closes c1 only
    EXPECT_EQ(
        reg.find_counter("intellog_online_sessions_closed_total", {{"reason", "idle"}})->value(),
        1u);
    EXPECT_EQ(reg.find_gauge("intellog_online_open_sessions")->value(), 1);
    online.close_all();
    EXPECT_EQ(reg.find_counter("intellog_online_sessions_closed_total",
                               {{"reason", "explicit"}})
                  ->value(),
              1u);
    EXPECT_EQ(reg.find_gauge("intellog_online_open_sessions")->value(), 0);
  }
  obs::set_registry(nullptr);
}

TEST_F(OnlineDetectorTest, BufferedRecordCounts) {
  core::OnlineDetector online(*model);
  logparse::LogRecord rec;
  rec.container_id = "c";
  rec.content = "Shutdown hook called";
  online.consume(rec);
  online.consume(rec);
  EXPECT_EQ(online.buffered_records("c"), 2u);
  EXPECT_EQ(online.buffered_records("other"), 0u);
  // Records with no container id are dropped.
  rec.container_id = "";
  EXPECT_FALSE(online.consume(rec).has_value());
}
