// Cross-cutting pipeline properties over the full template corpora and the
// trained models.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/strings.hpp"
#include "core/extraction.hpp"
#include "core/model_io.hpp"
#include "logparse/spell.hpp"
#include "simsys/mapreduce_system.hpp"
#include "simsys/spark_system.hpp"
#include "simsys/tensorflow_system.hpp"
#include "simsys/tez_system.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

namespace {

const simsys::TemplateCorpus& corpus_for(const std::string& system) {
  if (system == "spark") return simsys::spark_corpus();
  if (system == "mapreduce") return simsys::mapreduce_corpus();
  if (system == "tez") return simsys::tez_corpus();
  return simsys::tensorflow_corpus();
}

/// Plausible value for a field spec (deterministic per template/index).
std::string sample_value(const simsys::FieldSpec& spec, int tmpl_id, std::size_t field_idx) {
  const std::string n = std::to_string(10 + tmpl_id) + std::to_string(field_idx);
  switch (spec.category) {
    case logparse::FieldCategory::Identifier:
      return common::to_lower(spec.id_type) + "_" + n;
    case logparse::FieldCategory::Value:
      return n;
    case logparse::FieldCategory::Locality:
      return "host" + std::to_string(1 + tmpl_id % 9) + ":13562";
    default:
      return "WORDVAL";
  }
}

}  // namespace

class PipelineProperty : public ::testing::TestWithParam<const char*> {};

// Property: for every template, a rendered message's variable fields are
// recovered intact by the Spell-key + align_fields machinery.
TEST_P(PipelineProperty, FieldAlignmentRecoversRenderedValues) {
  const auto& corpus = corpus_for(GetParam());
  for (const auto& tmpl : corpus.all()) {
    std::vector<std::string> values;
    for (std::size_t f = 0; f < tmpl.fields.size(); ++f) {
      values.push_back(sample_value(tmpl.fields[f], tmpl.id, f));
    }
    const std::string message = tmpl.render(values, nullptr);

    // The Spell key as first-sight consume would build it.
    logparse::Spell spell;
    const int id = spell.consume(message);
    ASSERT_GE(id, 0);
    const auto fields =
        core::align_fields(spell.key(id).tokens, common::split_ws(message), nullptr);

    // Every rendered value appears in the recovered fields (identifiers and
    // localities contain digits, so they must land in a field; pure word
    // values may legitimately end up as key constants).
    for (std::size_t f = 0; f < values.size(); ++f) {
      if (!common::has_digit(values[f])) continue;
      bool found = false;
      for (const auto& rec : fields) {
        found |= rec.find(values[f]) != std::string::npos;
      }
      EXPECT_TRUE(found) << corpus.system() << " template " << tmpl.id << " ('"
                         << tmpl.key_string() << "'): value '" << values[f]
                         << "' lost in alignment of '" << message << "'";
    }
  }
}

// Property: extraction never crashes on any template and classifies
// identifier fields declared with digit-bearing values as identifiers.
TEST_P(PipelineProperty, ExtractionClassifiesDeclaredIdentifiers) {
  const auto& corpus = corpus_for(GetParam());
  const core::InfoExtractor extractor;
  for (const auto& tmpl : corpus.all()) {
    if (!tmpl.natural_language) continue;
    std::vector<std::string> values;
    for (std::size_t f = 0; f < tmpl.fields.size(); ++f) {
      values.push_back(sample_value(tmpl.fields[f], tmpl.id, f));
    }
    const std::string message = tmpl.render(values, nullptr);
    logparse::Spell spell;
    const int id = spell.consume(message);
    const core::IntelKey ik = extractor.extract(spell.key(id), message);
    // Count categories: at least as many identifier fields as declared
    // identifier values that carry '<type>_<digits>' shape.
    std::size_t declared = 0;
    for (const auto& f : tmpl.fields) {
      declared += f.category == logparse::FieldCategory::Identifier;
    }
    std::size_t extracted = 0;
    for (const auto& f : ik.fields) {
      extracted += f.category == logparse::FieldCategory::Identifier;
    }
    // Underscored identifier values trigger heuristic 3 deterministically.
    EXPECT_GE(extracted + 1, declared)  // tolerate one boundary disagreement
        << corpus.system() << " template " << tmpl.id << ": " << message;
  }
}

// Property: training is deterministic — two models trained on the same
// corpus serialize identically.
TEST_P(PipelineProperty, TrainingIsDeterministic) {
  const std::string system = GetParam();
  simsys::ClusterSpec cluster;
  const auto make_corpus = [&] {
    simsys::WorkloadGenerator gen(system, 1234);
    std::vector<logparse::Session> out;
    for (int i = 0; i < 4; ++i) {
      simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
      for (auto& s : job.sessions) out.push_back(std::move(s));
    }
    return out;
  };
  core::IntelLog a, b;
  a.train(make_corpus());
  b.train(make_corpus());
  EXPECT_EQ(core::save_model(a).dump(), core::save_model(b).dump());
}

INSTANTIATE_TEST_SUITE_P(Systems, PipelineProperty,
                         ::testing::Values("spark", "mapreduce", "tez", "tensorflow"));
