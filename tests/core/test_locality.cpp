#include "core/locality.hpp"

#include <gtest/gtest.h>

using namespace intellog::core;

TEST(Locality, HostNames) {
  EXPECT_TRUE(looks_like_host_name("host3"));
  EXPECT_TRUE(looks_like_host_name("node12"));
  EXPECT_TRUE(looks_like_host_name("worker-7"));
  EXPECT_TRUE(looks_like_host_name("master"));
  EXPECT_TRUE(looks_like_host_name("nn1.cluster.example.com"));
  EXPECT_FALSE(looks_like_host_name("fetcher"));
  EXPECT_FALSE(looks_like_host_name("task3x"));
  EXPECT_FALSE(looks_like_host_name("10.0.0.1"));  // that's an IP, not a name
}

TEST(Locality, IpPort) {
  EXPECT_TRUE(looks_like_ip_port("10.0.0.1"));
  EXPECT_TRUE(looks_like_ip_port("192.168.1.100:8042"));
  EXPECT_FALSE(looks_like_ip_port("1.2.3"));
  EXPECT_FALSE(looks_like_ip_port("1.2.3.4.5"));
  EXPECT_FALSE(looks_like_ip_port("a.b.c.d"));
}

TEST(Locality, HostPort) {
  EXPECT_TRUE(looks_like_host_port("host1:13562"));
  EXPECT_TRUE(looks_like_host_port("10.0.0.1:80"));
  EXPECT_FALSE(looks_like_host_port("host1:"));
  EXPECT_FALSE(looks_like_host_port(":8080"));
  EXPECT_FALSE(looks_like_host_port("a:b:c"));
  EXPECT_FALSE(looks_like_host_port("host1:port"));
}

TEST(Locality, LocalPaths) {
  EXPECT_TRUE(looks_like_local_path("/tmp/spark-1/blockmgr-2"));
  EXPECT_TRUE(looks_like_local_path("/var/log/app.log"));
  EXPECT_FALSE(looks_like_local_path("tmp/relative"));
  EXPECT_FALSE(looks_like_local_path("/"));
  EXPECT_FALSE(looks_like_local_path("hdfs://x/y"));
}

TEST(Locality, DfsAndUris) {
  EXPECT_TRUE(looks_like_dfs_path("hdfs://master:9000/user/out"));
  EXPECT_TRUE(looks_like_dfs_path("s3a://bucket/key"));
  EXPECT_TRUE(looks_like_dfs_path("spark://CoarseGrainedScheduler@master:37001"));
  EXPECT_FALSE(looks_like_dfs_path("no-scheme"));
  EXPECT_FALSE(looks_like_dfs_path("://bad"));
}

TEST(Locality, MatcherCombinesPatterns) {
  LocalityMatcher m;
  EXPECT_TRUE(m.is_locality("host1:13562"));
  EXPECT_TRUE(m.is_locality("/tmp/x"));
  EXPECT_TRUE(m.is_locality("hdfs://master:9000/a"));
  EXPECT_TRUE(m.is_locality("master"));
  EXPECT_FALSE(m.is_locality("attempt_01"));
  EXPECT_FALSE(m.is_locality("2264"));
  EXPECT_FALSE(m.is_locality("fetcher"));
}

TEST(Locality, UserDefinedPattern) {
  LocalityMatcher m;
  EXPECT_FALSE(m.is_locality("rack/r42"));
  // §3.1: "users can define new patterns when applying IntelLog on their
  // own targeted systems."
  m.add_pattern([](std::string_view t) { return t.substr(0, 5) == "rack/"; });
  EXPECT_TRUE(m.is_locality("rack/r42"));
}
