// Model coverage ledger (Quality Observatory): component universe, hit
// stamping, dead/stale reporting, and metrics export.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/coverage.hpp"
#include "core/intellog.hpp"
#include "obs/metrics.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

namespace {

std::vector<logparse::Session> training_corpus(int jobs, std::uint64_t seed) {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", seed);
  std::vector<logparse::Session> out;
  for (int i = 0; i < jobs; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) out.push_back(std::move(s));
  }
  return out;
}

class CoverageTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    il = new core::IntelLog();
    il->train(training_corpus(6, 99));
  }
  static void TearDownTestSuite() {
    delete il;
    il = nullptr;
  }
  static core::IntelLog* il;
};

core::IntelLog* CoverageTest::il = nullptr;

}  // namespace

TEST_F(CoverageTest, UniverseMatchesTheModel) {
  core::CoverageLedger ledger(il->spell(), il->hw_graph());
  std::size_t subroutines = 0;
  for (const auto& [name, node] : il->hw_graph().groups()) {
    (void)name;
    subroutines += node.subroutines.subroutines().size();
  }
  EXPECT_EQ(ledger.total_components(),
            il->spell().size() + subroutines + il->hw_graph().relations().size());
  EXPECT_EQ(ledger.hit_components(), 0u);
  EXPECT_DOUBLE_EQ(ledger.coverage_ratio(), 0.0);
}

TEST_F(CoverageTest, StampsCountAndUnknownComponentsAreIgnored) {
  core::CoverageLedger ledger(il->spell(), il->hw_graph());
  const int key_id = il->spell().keys().front().id;
  ledger.stamp_log_key(key_id);
  ledger.stamp_log_key(key_id);
  EXPECT_EQ(ledger.hit_components(), 1u);

  // Unknown components (unseen key id, unlearned signature, absent edge)
  // are silent no-ops, not new entries.
  const std::size_t before = ledger.total_components();
  ledger.stamp_log_key(123456);
  ledger.stamp_subroutine("no-such-group", {"X"});
  ledger.stamp_edge("nope", "also-nope");
  EXPECT_EQ(ledger.total_components(), before);
  EXPECT_EQ(ledger.hit_components(), 1u);

  ledger.reset();
  EXPECT_EQ(ledger.hit_components(), 0u);
  EXPECT_EQ(ledger.total_components(), before);  // universe unchanged
}

TEST_F(CoverageTest, ReportNamesDeadComponentsAndCountsHits) {
  core::CoverageLedger ledger(il->spell(), il->hw_graph());
  const int key_id = il->spell().keys().front().id;
  for (int i = 0; i < 3; ++i) ledger.stamp_log_key(key_id);

  const common::Json report = ledger.to_json();
  EXPECT_EQ(report["kind"].as_string(), "intellog_coverage");
  const common::Json& keys = report["classes"]["log_keys"];
  EXPECT_EQ(static_cast<std::size_t>(keys["total"].as_int()), il->spell().size());
  EXPECT_EQ(keys["hit"].as_int(), 1);
  EXPECT_EQ(keys["dead"].as_array().size(), il->spell().size() - 1);
  // The hit component reports its count; everything in "dead" has zero.
  bool found = false;
  for (const auto& c : keys["components"].as_array()) {
    if (c["hits"].as_int() == 3) found = true;
  }
  EXPECT_TRUE(found);
  // Untouched classes are fully dead.
  EXPECT_EQ(report["classes"]["edges"]["hit"].as_int(), 0);
  EXPECT_EQ(report["classes"]["subroutines"]["hit"].as_int(), 0);
}

TEST_F(CoverageTest, StaleMeansFarBelowTheBusiestPeer) {
  core::CoverageLedger ledger(il->spell(), il->hw_graph());
  const auto& keys = il->spell().keys();
  ASSERT_GE(keys.size(), 2u);
  for (int i = 0; i < 1000; ++i) ledger.stamp_log_key(keys[0].id);
  ledger.stamp_log_key(keys[1].id);  // 1 hit vs 1000: under the 5% bar

  const common::Json report = ledger.to_json();
  const common::Json& cls = report["classes"]["log_keys"];
  ASSERT_EQ(cls["stale"].as_array().size(), 1u);
  EXPECT_NE(cls["stale"].as_array()[0].as_string().find(std::to_string(keys[1].id)),
            std::string::npos);
}

TEST_F(CoverageTest, DetectionStampsThroughTheFacadeToggle) {
  il->set_coverage_enabled(true);
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 500);
  const auto sessions = simsys::run_job(gen.detection_job(0), cluster).sessions;
  (void)il->detect_batch(sessions, 2);
  ASSERT_NE(il->coverage(), nullptr);
  EXPECT_GT(il->coverage()->hit_components(), 0u);
  EXPECT_GT(il->coverage()->coverage_ratio(), 0.0);

  // Disabling stops stamping but keeps the counts readable.
  il->set_coverage_enabled(false);
  const std::size_t frozen = il->coverage()->hit_components();
  (void)il->detect_batch(sessions, 1);
  EXPECT_EQ(il->coverage()->hit_components(), frozen);
}

TEST_F(CoverageTest, MetricsExportIncludesPermilleRatio) {
  core::CoverageLedger ledger(il->spell(), il->hw_graph());
  const int key_id = il->spell().keys().front().id;
  ledger.stamp_log_key(key_id);

  obs::MetricsRegistry reg;
  ledger.record_metrics(reg);
  const obs::Gauge* ratio = reg.find_gauge("intellog_model_coverage_ratio");
  ASSERT_NE(ratio, nullptr);
  EXPECT_EQ(ratio->value(),
            static_cast<std::int64_t>(ledger.coverage_ratio() * 1000.0 + 0.5));
  const obs::Gauge* hit = reg.find_gauge("intellog_model_coverage_hit", {{"class", "log_keys"}});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->value(), 1);
  const obs::Gauge* total =
      reg.find_gauge("intellog_model_coverage_components", {{"class", "edges"}});
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->value(), static_cast<std::int64_t>(il->hw_graph().relations().size()));
}

TEST(CoverageLedgerEmpty, EmptyUniverseIsFullyCovered) {
  logparse::Spell spell(1.7);
  core::HwGraph graph;
  core::CoverageLedger ledger(spell, graph);
  EXPECT_EQ(ledger.total_components(), 0u);
  EXPECT_DOUBLE_EQ(ledger.coverage_ratio(), 1.0);  // nothing to cover
}
