// Scale smoke test: the pipeline handles a 100k+-line corpus end to end
// within a sane wall-clock budget (the paper consumed millions of lines per
// system; this keeps CI fast while still catching quadratic regressions).
#include <gtest/gtest.h>

#include <chrono>

#include "core/intellog.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

TEST(Scale, HundredThousandLineCorpusTrainsAndDetects) {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("mapreduce", 777);
  std::vector<logparse::Session> sessions;
  std::size_t lines = 0;
  while (lines < 100000) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) {
      lines += s.records.size();
      sessions.push_back(std::move(s));
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  core::IntelLog il;
  il.train(sessions);
  const auto t1 = std::chrono::steady_clock::now();
  const double train_s = std::chrono::duration<double>(t1 - t0).count();

  std::size_t detected_lines = 0;
  for (std::size_t i = 0; i < sessions.size(); i += 7) {
    il.detect(sessions[i]);
    detected_lines += sessions[i].records.size();
  }
  const auto t2 = std::chrono::steady_clock::now();
  const double detect_s = std::chrono::duration<double>(t2 - t1).count();

  RecordProperty("lines", static_cast<int>(lines));
  RecordProperty("train_seconds", static_cast<int>(train_s * 1000));
  std::cout << "trained on " << lines << " lines in " << train_s << "s; detected "
            << detected_lines << " lines in " << detect_s << "s\n";
  EXPECT_GE(lines, 100000u);
  EXPECT_GT(il.intel_keys().size(), 30u);
  // Generous bounds: catches quadratic blowups, not machine jitter.
  EXPECT_LT(train_s, 120.0);
  EXPECT_LT(detect_s, 60.0);
}
