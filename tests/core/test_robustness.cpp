// Robustness: the pipeline must degrade gracefully on malformed, hostile,
// or degenerate input — no crashes, no undefined behavior, sensible output.
#include <gtest/gtest.h>

#include <string>

#include <atomic>

#include "common/thread_pool.hpp"
#include "core/intellog.hpp"
#include "core/online.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

namespace {

logparse::LogRecord rec(std::string content, std::string container = "c1") {
  logparse::LogRecord r;
  r.content = std::move(content);
  r.container_id = std::move(container);
  return r;
}

core::IntelLog& shared_model() {
  static core::IntelLog* il = [] {
    auto* model = new core::IntelLog();
    simsys::ClusterSpec cluster;
    simsys::WorkloadGenerator gen("spark", 41);
    std::vector<logparse::Session> training;
    for (int i = 0; i < 6; ++i) {
      simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
      for (auto& s : job.sessions) training.push_back(std::move(s));
    }
    model->train(training);
    return model;
  }();
  return *il;
}

}  // namespace

TEST(Robustness, DetectOnEmptySession) {
  logparse::Session s;
  s.container_id = "empty";
  const auto report = shared_model().detect(s);
  // An empty session misses every expected group: flagged, not crashed.
  EXPECT_TRUE(report.anomalous());
  EXPECT_TRUE(report.unexpected.empty());
}

TEST(Robustness, HostileMessageContents) {
  logparse::Session s;
  s.container_id = "hostile";
  for (const char* content : {
           "",                                     // empty line
           " \t  ",                                // whitespace only
           "(((((((((",                            // unbalanced punctuation
           "* * * * *",                            // all wildcards
           "= = = = =",                            // all separators
           "\"quoted \\\"mess\\\" here\"",         // nested quotes
           "tabs\tand\tmore\ttabs",                // embedded tabs
           "ünïcödé messages pass thröugh",        // non-ASCII bytes
           "a",                                    // single char
           "1",                                    // single digit
           ".", "#", ":",                          // lone punctuation
       }) {
    s.records.push_back(rec(content));
  }
  EXPECT_NO_THROW({
    const auto report = shared_model().detect(s);
    (void)report;
  });
}

TEST(Robustness, VeryLongMessage) {
  std::string huge = "Registering";
  for (int i = 0; i < 4000; ++i) huge += " token" + std::to_string(i);
  logparse::Session s;
  s.container_id = "long";
  s.records.push_back(rec(huge));
  EXPECT_NO_THROW(shared_model().detect(s));
}

TEST(Robustness, ExtractorOnGarbage) {
  const core::InfoExtractor extractor;
  for (const char* msg : {"", "***", "12 34 56", "____", "a=b=c=d", "///\\\\\\"}) {
    EXPECT_NO_THROW({
      const auto ik = extractor.extract_from_message(msg);
      (void)ik;
    }) << msg;
  }
}

TEST(Robustness, SpellOnDegenerateStreams) {
  logparse::Spell spell;
  // Thousands of unique single-token messages must not blow up matching.
  for (int i = 0; i < 2000; ++i) {
    spell.consume("token" + std::to_string(i) + "x");  // letters+digits mix
  }
  EXPECT_GE(spell.size(), 1u);
  EXPECT_NO_THROW(spell.match("another one"));
}

TEST(Robustness, DetectIsThreadSafeForConcurrentReaders) {
  // detect() is const; concurrent sessions must not race.
  const auto& model = shared_model();
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 43);
  const auto job = simsys::run_job(gen.detection_job(1), cluster);
  common::ThreadPool pool(8);
  std::atomic<int> anomalies{0};
  pool.parallel_for(64, [&](std::size_t i) {
    const auto& s = job.sessions[i % job.sessions.size()];
    anomalies += model.detect(s).anomalous();
  });
  SUCCEED();
}

TEST(Robustness, OnlineDetectorHostileStream) {
  core::OnlineDetector online(shared_model());
  for (int i = 0; i < 100; ++i) {
    logparse::LogRecord r = rec("garbage " + std::string(static_cast<std::size_t>(i % 7), '*'),
                                "c" + std::to_string(i % 5));
    r.timestamp_ms = static_cast<std::uint64_t>(i);
    EXPECT_NO_THROW(online.consume(r));
  }
  EXPECT_EQ(online.open_sessions().size(), 5u);
  EXPECT_NO_THROW(online.close_all());
}

TEST(Robustness, SessionWithOnlyUnknownMessagesFlagsEverything) {
  logparse::Session s;
  s.container_id = "alien";
  for (int i = 0; i < 10; ++i) {
    s.records.push_back(rec("completely novel subsystem emitted event " + std::to_string(i)));
  }
  const auto report = shared_model().detect(s);
  EXPECT_TRUE(report.anomalous());
  EXPECT_GE(report.unexpected.size(), 1u);
}
