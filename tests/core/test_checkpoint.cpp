// OnlineDetector checkpoint/restore: versioned, checksummed, written with
// atomic rename — and a restored detector must finish the stream with a
// byte-identical final report (the kill-and-resume guarantee).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/checksum.hpp"
#include "core/online.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

namespace {

std::vector<logparse::Session> corpus(int jobs, std::uint64_t seed) {
  simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", seed);
  std::vector<logparse::Session> out;
  for (int i = 0; i < jobs; ++i) {
    simsys::JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) out.push_back(std::move(s));
  }
  return out;
}

std::string dump_reports(const std::vector<core::AnomalyReport>& reports) {
  std::string out;
  for (const auto& r : reports) out += r.to_json().dump() + "\n";
  return out;
}

}  // namespace

class CheckpointTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model = new core::IntelLog();
    model->train(corpus(6, 31));
    stream = new std::vector<logparse::Session>(corpus(2, 99));
  }
  static void TearDownTestSuite() {
    delete model;
    delete stream;
    model = nullptr;
    stream = nullptr;
  }

  /// Streams every record through a detector, closing sessions at their
  /// boundaries; kills + restores from `path` after `kill_at` records when
  /// kill_at > 0.
  static std::vector<core::AnomalyReport> run_stream(std::size_t kill_at,
                                                     const std::string& path) {
    std::vector<core::AnomalyReport> reports;
    auto online = std::make_unique<core::OnlineDetector>(*model);
    std::size_t idx = 0;
    for (const auto& s : *stream) {
      for (const auto& r : s.records) {
        online->consume(r);
        if (++idx == kill_at) {
          online->checkpoint_file(path);
          online.reset();  // the crash
          online = std::make_unique<core::OnlineDetector>(
              core::OnlineDetector::restore_file(*model, path));
        }
      }
      if (auto rep = online->close_session(s.container_id)) reports.push_back(std::move(*rep));
    }
    for (auto& rep : online->close_all()) reports.push_back(std::move(rep));
    return reports;
  }

  static core::IntelLog* model;
  static std::vector<logparse::Session>* stream;
};

core::IntelLog* CheckpointTest::model = nullptr;
std::vector<logparse::Session>* CheckpointTest::stream = nullptr;

TEST_F(CheckpointTest, KillAndResumeIsByteIdentical) {
  const std::string path = "/tmp/intellog_ckpt_resume.json";
  std::size_t total = 0;
  for (const auto& s : *stream) total += s.records.size();
  ASSERT_GT(total, 10u);
  const auto baseline = run_stream(0, path);
  // Kill mid-stream (mid-session for any realistic corpus), and also right
  // after the first record — both must replay to the same bytes.
  for (const std::size_t kill_at : {total / 2, std::size_t{1}, total - 1}) {
    EXPECT_EQ(dump_reports(baseline), dump_reports(run_stream(kill_at, path)))
        << "kill_at=" << kill_at;
  }
  std::filesystem::remove(path);
}

TEST_F(CheckpointTest, CheckpointRoundTripPreservesState) {
  core::OnlineDetector online(*model);
  std::size_t fed = 0;
  for (const auto& s : *stream) {
    for (const auto& r : s.records) {
      online.consume(r);
      if (++fed >= 100) break;
    }
    if (fed >= 100) break;
  }
  const auto doc = online.checkpoint();
  const auto restored = core::OnlineDetector::restore(*model, doc);
  EXPECT_EQ(restored.open_sessions(), online.open_sessions());
  EXPECT_EQ(restored.total_buffered_records(), online.total_buffered_records());
  for (const auto& id : online.open_sessions()) {
    EXPECT_EQ(restored.buffered_records(id), online.buffered_records(id)) << id;
  }
}

TEST_F(CheckpointTest, CheckpointFileIsAtomicRename) {
  const std::string path = "/tmp/intellog_ckpt_atomic.json";
  core::OnlineDetector online(*model);
  online.consume((*stream)[0].records[0]);
  online.checkpoint_file(path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // nothing torn left behind
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto doc = common::Json::parse(buf.str());
  EXPECT_EQ(doc["kind"].as_string(), "intellog_online_checkpoint");
  EXPECT_EQ(doc["format_version"].as_int(), core::OnlineDetector::kCheckpointVersion);
  EXPECT_TRUE(doc.contains("checksum"));
  EXPECT_TRUE(common::verify_checksum(doc));
  std::filesystem::remove(path);
}

TEST_F(CheckpointTest, RestoreRejectsWrongKind) {
  auto doc = common::Json::object();
  doc["kind"] = "something_else";
  EXPECT_THROW(core::OnlineDetector::restore(*model, doc), std::runtime_error);
  EXPECT_THROW(core::OnlineDetector::restore(*model, common::Json(42)), std::runtime_error);
}

TEST_F(CheckpointTest, RestoreRejectsWrongVersion) {
  core::OnlineDetector online(*model);
  online.consume((*stream)[0].records[0]);
  auto doc = online.checkpoint();
  doc["format_version"] = core::OnlineDetector::kCheckpointVersion + 1;
  common::stamp_checksum(doc);  // valid checksum: the version check must fire
  try {
    core::OnlineDetector::restore(*model, doc);
    FAIL() << "wrong version accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST_F(CheckpointTest, RestoreRejectsFutureVersionWithClearError) {
  core::OnlineDetector online(*model);
  online.consume((*stream)[0].records[0]);
  auto doc = online.checkpoint();
  doc["format_version"] = core::OnlineDetector::kCheckpointVersion + 41;
  common::stamp_checksum(doc);
  try {
    core::OnlineDetector::restore(*model, doc);
    FAIL() << "future version accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    // One clear error that names both the found and the supported version.
    EXPECT_NE(msg.find("version"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(core::OnlineDetector::kCheckpointVersion + 41)),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find(std::to_string(core::OnlineDetector::kCheckpointVersion)),
              std::string::npos)
        << msg;
  }
}

TEST_F(CheckpointTest, RestoreRejectsUnknownTopLevelKey) {
  core::OnlineDetector online(*model);
  online.consume((*stream)[0].records[0]);
  auto doc = online.checkpoint();
  doc["shard_epoch"] = 7;  // a plausible future field
  common::stamp_checksum(doc);  // valid checksum: the key check must fire
  try {
    core::OnlineDetector::restore(*model, doc);
    FAIL() << "unknown top-level key accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("shard_epoch"), std::string::npos) << e.what();
  }
}

TEST_F(CheckpointTest, RestoreRejectsUnknownSessionAndRecordKeys) {
  core::OnlineDetector online(*model);
  online.consume((*stream)[0].records[0]);
  {
    auto doc = online.checkpoint();
    doc["sessions"].as_array()[0].as_object()["tenant"] = "acme";
    common::stamp_checksum(doc);
    try {
      core::OnlineDetector::restore(*model, doc);
      FAIL() << "unknown session key accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("tenant"), std::string::npos) << e.what();
    }
  }
  {
    auto doc = online.checkpoint();
    doc["sessions"].as_array()[0].as_object()["records"].as_array()[0].as_object()["z"] = 1;
    common::stamp_checksum(doc);
    try {
      core::OnlineDetector::restore(*model, doc);
      FAIL() << "unknown record key accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("\"z\""), std::string::npos) << e.what();
    }
  }
  // The known optional provenance keys must still restore cleanly.
  auto doc = online.checkpoint();
  EXPECT_NO_THROW(core::OnlineDetector::restore(*model, doc));
}

TEST_F(CheckpointTest, RestoreRejectsTamperedPayload) {
  core::OnlineDetector online(*model);
  online.consume((*stream)[0].records[0]);
  std::string text = online.checkpoint().dump();
  // Flip the seq value without restamping the checksum.
  const auto pos = text.find("\"seq\":");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 6] = text[pos + 6] == '9' ? '8' : '9';
  const auto tampered = common::Json::parse(text);
  try {
    core::OnlineDetector::restore(*model, tampered);
    FAIL() << "tampered checkpoint accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST_F(CheckpointTest, RestoreRejectsMalformedSessions) {
  core::OnlineDetector online(*model);
  online.consume((*stream)[0].records[0]);
  auto doc = online.checkpoint();
  doc["sessions"] = 42;  // right kind/version, wrong shape
  common::stamp_checksum(doc);
  try {
    core::OnlineDetector::restore(*model, doc);
    FAIL() << "malformed checkpoint accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("malformed"), std::string::npos);
  }
}

TEST_F(CheckpointTest, RestoreFileRejectsTornFile) {
  const std::string path = "/tmp/intellog_ckpt_torn.json";
  core::OnlineDetector online(*model);
  online.consume((*stream)[0].records[0]);
  online.checkpoint_file(path);
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string full = buf.str();
  {
    std::ofstream out(path, std::ios::trunc);
    out << full.substr(0, full.size() / 2);  // a torn write
  }
  EXPECT_THROW(core::OnlineDetector::restore_file(*model, path), std::runtime_error);
  EXPECT_THROW(core::OnlineDetector::restore_file(*model, "/nonexistent/ckpt.json"),
               std::runtime_error);
  std::filesystem::remove(path);
}

TEST_F(CheckpointTest, RestoredDetectorKeepsLruOrder) {
  core::OnlineDetector::Limits limits;
  limits.max_sessions = 2;
  core::OnlineDetector online(*model, 1, limits);
  logparse::LogRecord r;
  r.content = "Running task 0";
  for (const char* id : {"a", "b"}) {
    r.container_id = id;
    online.consume(r);
  }
  const auto restored_doc = online.checkpoint();
  auto restored = core::OnlineDetector::restore(*model, restored_doc, 1, limits);
  // "a" is least recently active; the next new session must evict it.
  r.container_id = "c";
  restored.consume(r);
  const auto evicted = restored.take_evicted();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].container_id, "a");
  restored.close_all();
  online.close_all();
}
