#include "core/message_store.hpp"

#include <gtest/gtest.h>

using namespace intellog::core;

namespace {

IntelMessage make(int key, std::string container,
                  std::vector<IdentifierValue> ids = {},
                  std::vector<std::string> locs = {}) {
  IntelMessage m;
  m.key_id = key;
  m.container_id = std::move(container);
  m.identifiers = std::move(ids);
  m.localities = std::move(locs);
  return m;
}

}  // namespace

class MessageStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The case-study-1 shape: fetcher messages, several fetchers, one bad
    // host.
    for (int f = 1; f <= 3; ++f) {
      store.add(make(10, "c1", {{"FETCHER", std::to_string(f)}}, {"hostA:13562"}));
    }
    store.add(make(10, "c2", {{"FETCHER", "1"}}, {"hostB:13562"}));
    store.add(make(11, "c1", {{"ATTEMPT", "attempt_01"}}));
    store.add(make(12, "c3"));
  }
  MessageStore store;
};

TEST_F(MessageStoreTest, SizeAndAll) {
  EXPECT_EQ(store.size(), 6u);
  EXPECT_EQ(store.all().size(), 6u);
}

TEST_F(MessageStoreTest, QueryPredicate) {
  const auto r = store.query([](const IntelMessage& m) { return m.container_id == "c1"; });
  EXPECT_EQ(r.size(), 4u);
}

TEST_F(MessageStoreTest, ByKey) {
  EXPECT_EQ(store.by_key(10).size(), 4u);
  EXPECT_EQ(store.by_key(99).size(), 0u);
}

TEST_F(MessageStoreTest, GroupByIdentifierAllTypes) {
  const auto groups = store.group_by_identifier();
  // 3 fetchers + 1 attempt = 4 distinct identifier values.
  EXPECT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups.at("FETCHER:1").size(), 2u);  // c1 and c2
}

TEST_F(MessageStoreTest, GroupByIdentifierTyped) {
  const auto groups = store.group_by_identifier("FETCHER");
  EXPECT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups.count("ATTEMPT:attempt_01"), 0u);
}

TEST_F(MessageStoreTest, GroupByLocalityFindsTheBadHost) {
  // Case study 1's final step: GroupBy locality -> one group, hostA.
  const auto groups = store.group_by_locality();
  EXPECT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups.at("hostA:13562").size(), 3u);
  EXPECT_EQ(groups.at("hostB:13562").size(), 1u);
}

TEST_F(MessageStoreTest, JsonExportIsArray) {
  const auto j = store.to_json();
  EXPECT_TRUE(j.is_array());
  EXPECT_EQ(j.size(), 6u);
  EXPECT_EQ(j[0u]["container"].as_string(), "c1");
}

TEST_F(MessageStoreTest, AddAll) {
  MessageStore s2;
  s2.add_all({make(1, "x"), make(2, "y")});
  EXPECT_EQ(s2.size(), 2u);
}
