// Integration tests: the full IntelLog pipeline over the simulated systems.
#include "core/intellog.hpp"

#include <gtest/gtest.h>

#include "simsys/workload.hpp"

using namespace intellog;
using simsys::ClusterSpec;
using simsys::FaultPlan;
using simsys::JobResult;
using simsys::ProblemKind;

namespace {

std::vector<logparse::Session> training_corpus(const std::string& system, int jobs,
                                               std::uint64_t seed) {
  ClusterSpec cluster;
  simsys::WorkloadGenerator gen(system, seed);
  std::vector<logparse::Session> out;
  for (int i = 0; i < jobs; ++i) {
    JobResult job = simsys::run_job(gen.training_job(), cluster);
    for (auto& s : job.sessions) out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

class IntelLogSpark : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    il = new core::IntelLog();
    il->train(training_corpus("spark", 20, 101));
  }
  static void TearDownTestSuite() {
    delete il;
    il = nullptr;
  }
  static core::IntelLog* il;
};

core::IntelLog* IntelLogSpark::il = nullptr;

TEST_F(IntelLogSpark, ModelShape) {
  EXPECT_TRUE(il->trained());
  EXPECT_GE(il->spell().size(), 25u);
  EXPECT_GE(il->intel_keys().size(), 25u);
  EXPECT_GE(il->entity_groups().groups.size(), 15u);
  EXPECT_GE(il->hw_graph().critical_group_count(), 5u);
  // Entity groups are 5-10x fewer than session length (§6.3).
  EXPECT_LT(il->entity_groups().groups.size(), 60u);
}

TEST_F(IntelLogSpark, BlockGroupHasPaperStructure) {
  const auto& groups = il->entity_groups().groups;
  ASSERT_TRUE(groups.count("block"));
  EXPECT_TRUE(groups.at("block").count("block manager"));
  // BlockManager register/registered/initialized subroutine exists with a
  // BLOCKMANAGER-ish signature, and the no-identifier subroutine exists too.
  const auto& node = il->hw_graph().groups().at("block");
  EXPECT_GE(node.subroutines.subroutines().size(), 2u);
  bool has_none_signature = false;
  for (const auto& [sig, sub] : node.subroutines.subroutines()) {
    (void)sub;
    has_none_signature |= sig.empty();
  }
  EXPECT_TRUE(has_none_signature);
}

TEST_F(IntelLogSpark, AclBeforeTask) {
  const auto rel = il->hw_graph().relation("acl", "task");
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(*rel, core::GroupRelation::Before);
}

TEST_F(IntelLogSpark, CleanDetectionJobsAreMostlyQuiet) {
  ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 555);
  int flagged = 0, total = 0;
  for (int c = 0; c < 3; ++c) {  // config sets 0-2: no rare slow paths
    const JobResult job = simsys::run_job(gen.detection_job(c), cluster);
    for (const auto& s : job.sessions) {
      flagged += il->detect(s).anomalous();
      ++total;
    }
  }
  EXPECT_LE(flagged, total / 5) << flagged << "/" << total;
}

TEST_F(IntelLogSpark, NetworkFailureIsDetectedWithLocality) {
  ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 777);
  bool detected = false;
  std::string locality;
  for (std::uint64_t attempt = 0; attempt < 6 && !detected; ++attempt) {
    FaultPlan fault = gen.make_fault(ProblemKind::NetworkFailure, cluster);
    fault.at_fraction = 0.3;
    const JobResult job = simsys::run_job(gen.detection_job(2), cluster, fault);
    for (const auto& s : job.sessions) {
      const auto report = il->detect(s);
      for (const auto& u : report.unexpected) {
        if (!u.message.localities.empty()) {
          detected = true;
          locality = u.message.localities[0];
        }
      }
    }
  }
  ASSERT_TRUE(detected);
  EXPECT_NE(locality.find("host"), std::string::npos);
}

TEST_F(IntelLogSpark, AbortedSessionHasIncompleteGraphInstance) {
  ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 888);
  bool issue_found = false;
  for (std::uint64_t attempt = 0; attempt < 6 && !issue_found; ++attempt) {
    const FaultPlan fault = gen.make_fault(ProblemKind::SessionAbort, cluster);
    const JobResult job = simsys::run_job(gen.detection_job(1), cluster, fault);
    for (const auto& s : job.sessions) {
      if (!job.affected_containers.count(s.container_id)) continue;
      const auto report = il->detect(s);
      issue_found |= !report.issues.empty();
    }
  }
  EXPECT_TRUE(issue_found) << "SIGKILL truncation must break the HW-graph instance";
}

TEST_F(IntelLogSpark, Spark19371MissingTaskGroup) {
  // Case 3: containers with no tasks -> sessions missing the 'task' group.
  ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 999);
  FaultPlan fault;
  fault.spark19371_bug = true;
  const JobResult job = simsys::run_job(gen.detection_job(2), cluster, fault);
  int starved_flagged = 0;
  for (const auto& s : job.sessions) {
    if (!job.perf_affected_containers.count(s.container_id)) continue;
    const auto report = il->detect(s);
    bool missing_task = false;
    for (const auto& i : report.issues) {
      missing_task |= i.kind == core::GroupIssue::Kind::MissingGroup && i.group == "task";
    }
    starved_flagged += missing_task;
  }
  EXPECT_GT(starved_flagged, 0);
}

TEST_F(IntelLogSpark, SpillIsUnexpectedAndYieldsSpillEntity) {
  // Case 2.1: insufficient memory -> spill messages unseen in training; the
  // on-the-fly extraction surfaces a new 'spill' entity (§6.4).
  ClusterSpec cluster;
  simsys::JobSpec spec;
  spec.system = "spark";
  spec.name = "KMeans";
  spec.input_gb = 30;
  spec.container_cores = 8;
  spec.container_memory_mb = 2048;  // below required_memory_mb(30GB)
  spec.seed = 4242;
  ASSERT_FALSE(spec.memory_sufficient());
  const JobResult job = simsys::run_job(spec, cluster);
  bool spill_entity = false;
  for (const auto& s : job.sessions) {
    const auto report = il->detect(s);
    for (const auto& u : report.unexpected) {
      for (const auto& e : u.extracted.entities) {
        spill_entity |= e.find("spill") != std::string::npos;
      }
    }
  }
  EXPECT_TRUE(spill_entity);
}

TEST_F(IntelLogSpark, ToIntelMessagesRoundTrip) {
  ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", 321);
  const JobResult job = simsys::run_job(gen.detection_job(0), cluster);
  const auto msgs = il->to_intel_messages(job.sessions.front());
  EXPECT_GT(msgs.size(), 10u);
  core::MessageStore store;
  store.add_all(msgs);
  EXPECT_FALSE(store.group_by_identifier().empty());
}

TEST_F(IntelLogSpark, HwGraphJsonParses) {
  const auto j = il->hw_graph_json();
  EXPECT_NO_THROW(common::Json::parse(j.dump()));
  EXPECT_GT(j["groups"].size(), 10u);
}

TEST_F(IntelLogSpark, TrainTwiceThrows) {
  core::IntelLog fresh;
  EXPECT_THROW(fresh.detect(logparse::Session{}), std::logic_error);
  fresh.train(training_corpus("spark", 2, 1));
  EXPECT_THROW(fresh.train({}), std::logic_error);
}

// --- MapReduce integration ---------------------------------------------------

TEST(IntelLogMapReduce, KvKeysAreLearnedAndSkipped) {
  core::IntelLog il;
  il.train(training_corpus("mapreduce", 6, 11));
  EXPECT_GT(il.kv_filter().learned_count(), 0u);
  // Learned KV keys have no Intel Key.
  for (const auto& [id, ik] : il.intel_keys()) {
    (void)ik;
    EXPECT_FALSE(il.kv_filter().is_learned_kv_key(id));
  }
}

TEST(IntelLogMapReduce, FetcherSubroutineLearned) {
  core::IntelLog il;
  il.train(training_corpus("mapreduce", 6, 13));
  const auto& groups = il.hw_graph().groups();
  ASSERT_TRUE(groups.count("fetcher"));
  // The Fig. 1 subroutine signature {FETCHER, ATTEMPT} must exist.
  bool fig1 = false;
  for (const auto& [sig, sub] : groups.at("fetcher").subroutines.subroutines()) {
    (void)sub;
    fig1 |= sig.count("FETCHER") && sig.count("ATTEMPT");
  }
  EXPECT_TRUE(fig1);
}

TEST(IntelLogTez, TrainsAndDetectsCleanly) {
  core::IntelLog il;
  il.train(training_corpus("tez", 8, 17));
  EXPECT_GE(il.entity_groups().groups.size(), 10u);
  ClusterSpec cluster;
  simsys::WorkloadGenerator gen("tez", 31);
  const JobResult job = simsys::run_job(gen.detection_job(1), cluster);
  int flagged = 0;
  for (const auto& s : job.sessions) flagged += il.detect(s).anomalous();
  EXPECT_LE(flagged * 5, static_cast<int>(job.sessions.size()) + 4);
}
