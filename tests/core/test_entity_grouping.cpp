#include "core/entity_grouping.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "common/strings.hpp"

using namespace intellog::core;

namespace {
std::vector<std::string> words(std::initializer_list<const char*> ws) {
  return {ws.begin(), ws.end()};
}
}  // namespace

TEST(LongestCommonPhrase, OneWordContained) {
  // "block" vs "block manager" -> "block" (Algorithm 1, lines 24-25).
  EXPECT_EQ(longest_common_phrase(words({"block"}), words({"block", "manager"})),
            words({"block"}));
  EXPECT_EQ(longest_common_phrase(words({"block", "manager", "endpoint"}), words({"block"})),
            words({"block"}));
}

TEST(LongestCommonPhrase, OneWordNotContained) {
  EXPECT_TRUE(longest_common_phrase(words({"task"}), words({"block", "manager"})).empty());
}

TEST(LongestCommonPhrase, SuffixOnlyOverlapRejected) {
  // "block manager" vs "security manager": only the generic tail is shared
  // (Algorithm 1, lines 26-27 / §4.1).
  EXPECT_TRUE(
      longest_common_phrase(words({"block", "manager"}), words({"security", "manager"})).empty());
  EXPECT_TRUE(longest_common_phrase(words({"map", "output"}), words({"task", "output"})).empty());
}

TEST(LongestCommonPhrase, PrefixOverlapAccepted) {
  EXPECT_EQ(longest_common_phrase(words({"block", "manager"}),
                                  words({"block", "manager", "endpoint"})),
            words({"block", "manager"}));
  EXPECT_EQ(longest_common_phrase(words({"map", "task"}), words({"map", "output"})),
            words({"map"}));
}

TEST(LongestCommonPhrase, EmptyInputs) {
  EXPECT_TRUE(longest_common_phrase({}, words({"x"})).empty());
  EXPECT_TRUE(longest_common_phrase(words({"x"}), {}).empty());
}

TEST(GroupEntities, PaperBlockExample) {
  // block / block manager / block manager endpoint group under "block".
  const EntityGroups g =
      group_entities({"block", "block manager", "block manager endpoint"});
  ASSERT_EQ(g.groups.size(), 1u);
  const auto& [name, members] = *g.groups.begin();
  EXPECT_EQ(name, "block");
  EXPECT_EQ(members.size(), 3u);
  EXPECT_TRUE(members.count("block manager endpoint"));
}

TEST(GroupEntities, SecurityManagerStaysSeparate) {
  const EntityGroups g = group_entities({"block manager", "security manager"});
  EXPECT_EQ(g.groups.size(), 2u);
}

TEST(GroupEntities, GroupNameShrinksToSharedPhrase) {
  const EntityGroups g = group_entities({"block manager", "block"});
  // Sorted by word count: "block" first, then "block manager" joins it.
  ASSERT_EQ(g.groups.size(), 1u);
  EXPECT_EQ(g.groups.begin()->first, "block");
}

TEST(GroupEntities, ReverseIndexMapsEntityToGroups) {
  const EntityGroups g = group_entities({"block", "block manager", "task"});
  EXPECT_EQ(g.groups_of("block manager"), (std::set<std::string>{"block"}));
  EXPECT_EQ(g.groups_of("task"), (std::set<std::string>{"task"}));
  EXPECT_TRUE(g.groups_of("unknown").empty());
}

TEST(GroupEntities, EntityCanJoinMultipleGroups) {
  // "map output" shares "map" with the map group and could correlate with
  // more than one group via different sub-phrases.
  const EntityGroups g = group_entities({"map", "output", "map output"});
  const auto& gs = g.groups_of("map output");
  EXPECT_GE(gs.size(), 1u);
  EXPECT_TRUE(gs.count("map"));
}

TEST(GroupEntities, DuplicatesAndEmptiesIgnored) {
  const EntityGroups g = group_entities({"task", "task", "", "task"});
  ASSERT_EQ(g.groups.size(), 1u);
  EXPECT_EQ(g.groups.begin()->second.size(), 1u);
}

TEST(GroupEntities, SingletonsFormOwnGroups) {
  const EntityGroups g = group_entities({"driver", "shutdown hook", "acl"});
  EXPECT_EQ(g.groups.size(), 3u);
}

TEST(GroupEntities, SparkRealisticMix) {
  const EntityGroups g = group_entities({
      "block", "block manager", "non-empty block", "memory store", "memory", "security manager",
      "shutdown", "shutdown hook", "task", "driver", "local directory",
  });
  // block family together.
  EXPECT_TRUE(g.groups_of("block manager").count("block"));
  EXPECT_TRUE(g.groups_of("non-empty block").count("block"));
  // memory family together; security manager alone (suffix-only vs block
  // manager).
  EXPECT_TRUE(g.groups_of("memory store").count("memory"));
  EXPECT_EQ(g.groups_of("security manager"), (std::set<std::string>{"security manager"}));
  EXPECT_TRUE(g.groups_of("shutdown hook").count("shutdown"));
}

// Property: every input entity lands in at least one group, and every group
// name is a sub-phrase of each member.
class GroupingProperty : public ::testing::TestWithParam<int> {};

TEST_P(GroupingProperty, Invariants) {
  static const char* kWords[] = {"block", "manager", "task", "map", "output", "store"};
  intellog::common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 5);
  std::vector<std::string> entities;
  for (int i = 0; i < 12; ++i) {
    std::string e;
    const std::size_t len = 1 + rng.uniform(3);
    for (std::size_t w = 0; w < len; ++w) {
      if (w) e += ' ';
      e += kWords[rng.uniform(6)];
    }
    entities.push_back(std::move(e));
  }
  const EntityGroups g = group_entities(entities);
  for (const auto& e : entities) {
    EXPECT_FALSE(g.groups_of(e).empty()) << e;
  }
  for (const auto& [name, members] : g.groups) {
    for (const auto& m : members) {
      // The group name's words all appear in the member.
      const auto nw = intellog::common::split_ws(name);
      const auto mw = intellog::common::split_ws(m);
      for (const auto& w : nw) {
        EXPECT_NE(std::find(mw.begin(), mw.end(), w), mw.end())
            << "group '" << name << "' member '" << m << "'";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GroupingProperty, ::testing::Range(0, 15));
