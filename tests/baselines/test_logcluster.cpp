#include "baselines/logcluster.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

using intellog::baselines::LogCluster;

namespace {

std::vector<int> normal_session(intellog::common::Rng& rng) {
  // A stable core with some repetition-count jitter.
  std::vector<int> s = {1, 2, 3, 4};
  const int tasks = 3 + static_cast<int>(rng.uniform(5));
  for (int t = 0; t < tasks; ++t) {
    s.push_back(10);
    s.push_back(11);
    s.push_back(12);
  }
  s.push_back(5);
  s.push_back(6);
  return s;
}

}  // namespace

TEST(LogCluster, ClustersSimilarSessions) {
  intellog::common::Rng rng(1);
  std::vector<std::vector<int>> train;
  for (int i = 0; i < 40; ++i) train.push_back(normal_session(rng));
  LogCluster lc;
  lc.train(train);
  EXPECT_GE(lc.cluster_count(), 1u);
  EXPECT_LE(lc.cluster_count(), 4u);
}

TEST(LogCluster, NormalSessionsMatchKnowledgeBase) {
  intellog::common::Rng rng(2);
  std::vector<std::vector<int>> train;
  for (int i = 0; i < 40; ++i) train.push_back(normal_session(rng));
  LogCluster lc;
  lc.train(train);
  int flagged = 0;
  for (int i = 0; i < 20; ++i) flagged += lc.is_new_pattern(normal_session(rng));
  EXPECT_LE(flagged, 2);
}

TEST(LogCluster, NovelPatternIsFlagged) {
  intellog::common::Rng rng(3);
  std::vector<std::vector<int>> train;
  for (int i = 0; i < 40; ++i) train.push_back(normal_session(rng));
  LogCluster lc;
  lc.train(train);
  // Error-dominated session: unseen keys.
  EXPECT_TRUE(lc.is_new_pattern({100, 101, 100, 101, 100, 101, 100}));
  // Truncated session missing the whole task phase.
  EXPECT_LT(lc.best_similarity({1, 2}), 0.9);
}

TEST(LogCluster, SimilarityBounds) {
  intellog::common::Rng rng(4);
  std::vector<std::vector<int>> train;
  for (int i = 0; i < 10; ++i) train.push_back(normal_session(rng));
  LogCluster lc;
  lc.train(train);
  const double s = lc.best_similarity(normal_session(rng));
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0 + 1e-9);
}

TEST(LogCluster, ThresholdControlsSensitivity) {
  intellog::common::Rng rng(5);
  std::vector<std::vector<int>> train;
  for (int i = 0; i < 20; ++i) train.push_back(normal_session(rng));
  LogCluster::Config strict;
  strict.similarity_threshold = 0.999;
  LogCluster lc(strict);
  lc.train(train);
  // Nearly everything is a "new pattern" at an extreme threshold.
  EXPECT_TRUE(lc.is_new_pattern({1, 2, 3, 4, 10, 11, 12, 5, 6, 10}));
}

TEST(LogCluster, EmptyInputsSafe) {
  LogCluster lc;
  lc.train({});
  EXPECT_EQ(lc.cluster_count(), 0u);
  EXPECT_TRUE(lc.is_new_pattern({1, 2, 3}));
  EXPECT_TRUE(lc.is_new_pattern({}));
}
