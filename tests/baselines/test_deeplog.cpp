#include "baselines/deeplog.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

using intellog::baselines::DeepLog;

namespace {

/// Fixed-order sequences, infrastructure-log style (OpenStack-like).
std::vector<std::vector<int>> fixed_sequences(int n) {
  std::vector<std::vector<int>> out;
  for (int i = 0; i < n; ++i) out.push_back({10, 20, 30, 40, 50, 60, 70, 80, 90});
  return out;
}

DeepLog::Config small_config() {
  DeepLog::Config cfg;
  cfg.hidden = 16;
  cfg.epochs = 6;
  cfg.top_g = 2;
  cfg.window = 5;
  cfg.learning_rate = 0.02;
  return cfg;
}

}  // namespace

TEST(DeepLog, LearnsFixedOrderSequences) {
  DeepLog dl(small_config());
  dl.train(fixed_sequences(40));
  EXPECT_TRUE(dl.trained());
  // The exact training sequence predicts perfectly.
  EXPECT_FALSE(dl.is_anomalous({10, 20, 30, 40, 50, 60, 70, 80, 90}));
}

TEST(DeepLog, FlagsCorruptedSequence) {
  DeepLog dl(small_config());
  dl.train(fixed_sequences(40));
  // An alien key mid-sequence breaks top-g prediction.
  EXPECT_TRUE(dl.is_anomalous({10, 20, 30, 999, 50, 60, 70, 80, 90}));
  EXPECT_GT(dl.miss_fraction({10, 20, 999, 999, 999, 60}), 0.2);
}

TEST(DeepLog, UnseenKeysMapToUnk) {
  DeepLog dl(small_config());
  dl.train(fixed_sequences(10));
  // Must not crash on keys never seen in training.
  (void)dl.miss_fraction({1234, 5678, 9012});
}

TEST(DeepLog, VocabularyIncludesUnk) {
  DeepLog dl(small_config());
  dl.train(fixed_sequences(5));
  EXPECT_EQ(dl.vocab(), 10u);  // 9 keys + UNK
}

TEST(DeepLog, ShortSequencesHandled) {
  DeepLog dl(small_config());
  dl.train({{1, 2}, {1}, {}});
  EXPECT_FALSE(dl.is_anomalous({1}));
  EXPECT_FALSE(dl.is_anomalous({}));
}

TEST(DeepLog, InterleavedParallelLogsDegradePrecision) {
  // The paper's core claim (§6.4): with parallel interleavings, next-key
  // prediction fails even on *normal* sequences. Train on shuffled merges
  // of two thread-local sequences; a fresh normal interleaving still often
  // trips the detector with small g.
  intellog::common::Rng rng(5);
  const auto interleaved = [&rng]() {
    std::vector<int> a = {1, 2, 3, 4, 5}, b = {6, 7, 8, 9, 10};
    std::vector<int> out;
    std::size_t ia = 0, ib = 0;
    while (ia < a.size() || ib < b.size()) {
      if (ib == b.size() || (ia < a.size() && rng.chance(0.5))) out.push_back(a[ia++]);
      else out.push_back(b[ib++]);
    }
    return out;
  };
  std::vector<std::vector<int>> train;
  for (int i = 0; i < 30; ++i) train.push_back(interleaved());
  DeepLog::Config cfg = small_config();
  cfg.top_g = 1;  // strict candidate set
  DeepLog dl(cfg);
  dl.train(train);
  int flagged = 0;
  for (int i = 0; i < 20; ++i) flagged += dl.is_anomalous(interleaved());
  EXPECT_GT(flagged, 10) << "parallel logs should be unpredictable";
}
