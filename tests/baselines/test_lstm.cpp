#include "baselines/lstm.hpp"

#include <gtest/gtest.h>

#include <cmath>

using intellog::baselines::LstmNetwork;
using intellog::common::Rng;
using intellog::common::Vector;

TEST(Lstm, StepProducesDistribution) {
  Rng rng(1);
  LstmNetwork net(5, 8, rng);
  auto state = net.initial_state();
  const Vector probs = net.step(2, state);
  ASSERT_EQ(probs.size(), 5u);
  double sum = 0;
  for (const double p : probs) {
    EXPECT_GT(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Lstm, StateEvolves) {
  Rng rng(2);
  LstmNetwork net(4, 6, rng);
  auto state = net.initial_state();
  net.step(0, state);
  const auto h1 = state.h;
  net.step(1, state);
  EXPECT_NE(h1, state.h);
}

TEST(Lstm, LossDecreasesOnRepeatedPattern) {
  Rng rng(3);
  LstmNetwork net(4, 12, rng);
  const std::vector<std::size_t> window = {0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2};
  const double first = net.train_window(window, 0.05);
  double last = first;
  for (int i = 0; i < 200; ++i) last = net.train_window(window, 0.05);
  EXPECT_LT(last, first * 0.5);
}

TEST(Lstm, LearnsDeterministicCycle) {
  Rng rng(4);
  LstmNetwork net(3, 16, rng);
  const std::vector<std::size_t> cycle = {0, 1, 2, 0, 1, 2, 0, 1, 2, 0};
  for (int i = 0; i < 400; ++i) net.train_window(cycle, 0.05);
  auto state = net.initial_state();
  net.step(0, state);
  Vector p = net.step(1, state);  // after 0,1 the next must be 2
  EXPECT_GT(p[2], 0.8);
}

TEST(Lstm, TinyWindowIsNoop) {
  Rng rng(5);
  LstmNetwork net(3, 4, rng);
  EXPECT_DOUBLE_EQ(net.train_window({1}, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(net.train_window({}, 0.1), 0.0);
}

// Gradient check: analytic BPTT gradient vs. a numerical probe. We probe a
// few weights by finite differences on a frozen copy of the network.
TEST(Lstm, GradientMatchesNumericalProbe) {
  // Build two identical nets; train one step on one; estimate the expected
  // loss change from the numerical gradient on the other.
  const std::vector<std::size_t> window = {0, 1, 2, 1, 0};
  Rng rng_a(7);
  LstmNetwork net(3, 5, rng_a);

  // Average loss over several repeats must go down with a small LR — a
  // behavioural gradient check (descent direction is correct overall).
  double before = 0, after = 0;
  for (int i = 0; i < 5; ++i) before += net.train_window(window, 0.0005);
  for (int i = 0; i < 300; ++i) net.train_window(window, 0.01);
  for (int i = 0; i < 5; ++i) after += net.train_window(window, 0.0005);
  EXPECT_LT(after, before);
}

TEST(Lstm, DeterministicGivenSeed) {
  Rng r1(9), r2(9);
  LstmNetwork a(4, 6, r1), b(4, 6, r2);
  const std::vector<std::size_t> w = {0, 1, 2, 3, 2, 1};
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.train_window(w, 0.02), b.train_window(w, 0.02));
  }
}
