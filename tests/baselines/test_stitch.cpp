#include "baselines/stitch.hpp"

#include <gtest/gtest.h>

using namespace intellog::baselines;
using intellog::core::IdentifierValue;

namespace {
IdentifierValue iv(std::string t, std::string v) { return {std::move(t), std::move(v)}; }
}  // namespace

TEST(Stitch, OneToOne) {
  Stitch s;
  s.observe({iv("HOST", "h1"), iv("IP", "10.0.0.1")});
  s.observe({iv("HOST", "h2"), iv("IP", "10.0.0.2")});
  EXPECT_EQ(s.relation("HOST", "IP"), IdRelation::OneToOne);
  EXPECT_EQ(s.relation("IP", "HOST"), IdRelation::OneToOne);
}

TEST(Stitch, OneToMany) {
  Stitch s;
  s.observe({iv("STAGE", "0"), iv("TID", "1")});
  s.observe({iv("STAGE", "0"), iv("TID", "2")});
  s.observe({iv("STAGE", "1"), iv("TID", "3")});
  EXPECT_EQ(s.relation("STAGE", "TID"), IdRelation::OneToMany);
  EXPECT_EQ(s.relation("TID", "STAGE"), IdRelation::ManyToOne);
}

TEST(Stitch, ManyToMany) {
  Stitch s;
  s.observe({iv("A", "1"), iv("B", "x")});
  s.observe({iv("A", "1"), iv("B", "y")});
  s.observe({iv("A", "2"), iv("B", "x")});
  EXPECT_EQ(s.relation("A", "B"), IdRelation::ManyToMany);
}

TEST(Stitch, EmptyWhenNeverCoOccur) {
  Stitch s;
  s.observe({iv("A", "1")});
  s.observe({iv("B", "2")});
  EXPECT_EQ(s.relation("A", "B"), IdRelation::Empty);
  EXPECT_EQ(s.relation("A", "UNKNOWN"), IdRelation::Empty);
}

TEST(Stitch, SameTypePairsIgnored) {
  Stitch s;
  s.observe({iv("A", "1"), iv("A", "2")});
  EXPECT_EQ(s.relation("A", "A"), IdRelation::Empty);
}

TEST(Stitch, Fig9SparkShape) {
  // HOST -> EXECUTOR -> {STAGE, TASK} -> TID, BROADCAST isolated.
  Stitch s;
  for (int e = 1; e <= 4; ++e) {
    const std::string host = "host" + std::to_string(1 + (e - 1) / 2);
    const std::string exec = std::to_string(e);
    for (int t = 0; t < 3; ++t) {
      const std::string tid = std::to_string(e * 10 + t);
      const std::string stage = std::to_string(t % 2);
      s.observe({iv("HOST", host), iv("EXECUTOR", exec)});
      s.observe({iv("EXECUTOR", exec), iv("STAGE", stage), iv("TID", tid)});
      s.observe({iv("STAGE", stage), iv("TASK", stage + "." + tid), iv("TID", tid)});
    }
  }
  s.observe({iv("BROADCAST", "broadcast_0")});

  EXPECT_EQ(s.relation("HOST", "EXECUTOR"), IdRelation::OneToMany);
  EXPECT_EQ(s.relation("STAGE", "TID"), IdRelation::OneToMany);
  const auto g = s.build();
  ASSERT_GE(g.levels.size(), 3u);
  EXPECT_EQ(g.levels[0], (std::vector<std::string>{"HOST"}));
  // STAGE is m:n with EXECUTOR -> pulled to its level; TASK/TID (1:1) merge
  // into the deepest level, matching the Fig. 9 chain shape.
  EXPECT_EQ(g.levels[1], (std::vector<std::string>{"EXECUTOR", "STAGE"}));
  EXPECT_EQ(g.levels.back(), (std::vector<std::string>{"TASK", "TID"}));
  EXPECT_EQ(g.isolated, (std::vector<std::string>{"BROADCAST"}));
  const std::string rendered = s.render();
  EXPECT_NE(rendered.find("{HOST}"), std::string::npos);
  EXPECT_NE(rendered.find("->"), std::string::npos);
  EXPECT_NE(rendered.find("isolated: {BROADCAST}"), std::string::npos);
}

TEST(Stitch, RelationNames) {
  EXPECT_EQ(to_string(IdRelation::OneToOne), "1:1");
  EXPECT_EQ(to_string(IdRelation::OneToMany), "1:n");
  EXPECT_EQ(to_string(IdRelation::ManyToMany), "m:n");
  EXPECT_EQ(to_string(IdRelation::Empty), "empty");
}

TEST(Stitch, TypesAccumulate) {
  Stitch s;
  s.observe({iv("A", "1"), iv("B", "2")});
  EXPECT_EQ(s.types(), (std::set<std::string>{"A", "B"}));
}
