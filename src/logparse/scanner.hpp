#pragma once

// SWAR line scanning for the mmap ingest path: 8 bytes at a time with
// plain 64-bit arithmetic, no intrinsics, so it vectorizes the newline
// search portably. Semantics exactly mirror the std::getline loop the
// ifstream readers used — '\n' terminates a line and is consumed, '\r'
// is kept, a torn final line without a newline is still yielded, and an
// empty input yields nothing — so record boundaries and byte offsets are
// byte-identical between the two ingest paths. A naive scalar reference
// implementation lives alongside for differential fuzzing.

#include <bit>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace intellog::logparse {

namespace swar {

inline constexpr std::uint64_t kOnes = 0x0101010101010101ull;
inline constexpr std::uint64_t kHighs = 0x8080808080808080ull;

inline std::uint64_t load8(const char* p) {
  std::uint64_t word;
  std::memcpy(&word, p, sizeof(word));  // unaligned-safe, folds to one load
  return word;
}

// High bit set in each byte of the result where word's byte equals b.
inline std::uint64_t match_byte(std::uint64_t word, char b) {
  const std::uint64_t x = word ^ (kOnes * static_cast<unsigned char>(b));
  return (x - kOnes) & ~x & kHighs;
}

// High bit set where word's byte is NOT an ASCII digit.
inline std::uint64_t nondigit_bytes(std::uint64_t word) {
  const std::uint64_t x = word ^ (kOnes * static_cast<unsigned char>('0'));
  // A byte of x is <= 9 exactly when the original was '0'..'9'; adding
  // 0x76 overflows into the high bit for 0x0A and above, and OR-ing x
  // itself catches bytes that already had the high bit set.
  return ((x + kOnes * 0x76) | x) & kHighs;
}

}  // namespace swar

// First index >= from where data[i] == b, or npos. SWAR fast path over
// full 8-byte words, scalar over the <8-byte head alignment-free tail.
inline std::size_t find_byte(std::string_view data, std::size_t from, char b) {
  static_assert(std::endian::native == std::endian::little,
                "SWAR lane extraction assumes little-endian byte order");
  const char* p = data.data();
  std::size_t i = from;
  const std::size_t n = data.size();
  while (i + 8 <= n) {
    const std::uint64_t hit = swar::match_byte(swar::load8(p + i), b);
    if (hit != 0) {
      return i + static_cast<std::size_t>(std::countr_zero(hit)) / 8;
    }
    i += 8;
  }
  for (; i < n; ++i) {
    if (p[i] == b) return i;
  }
  return std::string_view::npos;
}

// Scalar reference with identical contract, kept for differential fuzz.
inline std::size_t find_byte_naive(std::string_view data, std::size_t from, char b) {
  for (std::size_t i = from; i < data.size(); ++i) {
    if (data[i] == b) return i;
  }
  return std::string_view::npos;
}

// True when the len bytes at data[pos..) are all ASCII digits.
inline bool all_digits(std::string_view data, std::size_t pos, std::size_t len) {
  if (pos + len > data.size()) return false;
  const char* p = data.data() + pos;
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    if (swar::nondigit_bytes(swar::load8(p + i)) != 0) return false;
  }
  for (; i < len; ++i) {
    if (p[i] < '0' || p[i] > '9') return false;
  }
  return true;
}

// Yields (line, byte offset) pairs over one contiguous buffer.
class LineScanner {
 public:
  explicit LineScanner(std::string_view data) : data_(data) {}

  bool next(std::string_view* line, std::size_t* offset) {
    if (pos_ >= data_.size()) return false;
    const std::size_t nl = find_byte(data_, pos_, '\n');
    const std::size_t end = nl == std::string_view::npos ? data_.size() : nl;
    *line = data_.substr(pos_, end - pos_);
    *offset = pos_;
    pos_ = end + 1;  // past the '\n'; past-the-end terminates on a torn tail
    return true;
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

// Differential-fuzz reference: same contract via the scalar search.
class NaiveLineScanner {
 public:
  explicit NaiveLineScanner(std::string_view data) : data_(data) {}

  bool next(std::string_view* line, std::size_t* offset) {
    if (pos_ >= data_.size()) return false;
    const std::size_t nl = find_byte_naive(data_, pos_, '\n');
    const std::size_t end = nl == std::string_view::npos ? data_.size() : nl;
    *line = data_.substr(pos_, end - pos_);
    *offset = pos_;
    pos_ = end + 1;
    return true;
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace intellog::logparse
