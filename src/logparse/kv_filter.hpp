// Natural-language vs. key-value classification (§2.2 / §5).
//
// "We define that a log message is written in a natural language if it
// contains at least one clause." A clause needs a predicate, so the
// detector asks whether the message contains a verb-capable English word
// outside key=value fragments. Pure status lines ("memoryUsed=512 cpu=3",
// "Free ram (MB): 12000") fail the test; IntelLog learns their log keys in
// the training phase and silently skips them during detection rather than
// raising unexpected-message alarms.
#pragma once

#include <set>
#include <string_view>

#include "nlp/lexicon.hpp"
#include "nlp/pos_tagger.hpp"

namespace intellog::logparse {

class KvFilter {
 public:
  explicit KvFilter(const nlp::Lexicon* lexicon = nullptr);

  /// True when the message contains at least one clause (§2.2 definition,
  /// the Table-1 statistic).
  bool is_natural_language(std::string_view message) const;

  /// True when the message consists only of key=value pairs (§5's omission
  /// rule). Distinct from !is_natural_language: clause-less prose ("Down to
  /// the last merge-pass") still becomes an Intel Key; pure status lines
  /// ("numCompletedTasks=5 ...") do not.
  bool is_kv_only(std::string_view message) const;

  /// Training: remember the log key of a non-NL message.
  void learn_kv_key(int key_id) { kv_keys_.insert(key_id); }
  /// Detection: keys learned as key-value-only messages are ignored.
  bool is_learned_kv_key(int key_id) const { return kv_keys_.count(key_id) > 0; }
  std::size_t learned_count() const { return kv_keys_.size(); }

 private:
  nlp::PosTagger tagger_;  // owns a copy of the lexicon
  std::set<int> kv_keys_;
};

}  // namespace intellog::logparse
