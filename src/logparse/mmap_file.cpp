#include "logparse/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace intellog::logparse {
namespace {

bool mmap_disabled() {
  const char* env = std::getenv("INTELLOG_NO_MMAP");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

void set_error(std::string* error, const std::string& path, const char* what) {
  if (error != nullptr) {
    *error = path + ": " + what + ": " + std::strerror(errno);
  }
}

}  // namespace

MappedFile::~MappedFile() {
  if (mmapped_ && data_ != nullptr && size_ > 0) {
    ::munmap(const_cast<char*>(data_), size_);
  }
  delete[] heap_;
}

std::shared_ptr<MappedFile> MappedFile::open(const std::string& path,
                                             std::string* error) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    set_error(error, path, "open");
    return nullptr;
  }

  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  file->path_ = path;

  struct stat st{};
  const bool have_size = ::fstat(fd, &st) == 0 && S_ISREG(st.st_mode);

  if (have_size && st.st_size > 0 && !mmap_disabled()) {
    void* mapped = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                          PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped != MAP_FAILED) {
      file->data_ = static_cast<const char*>(mapped);
      file->size_ = static_cast<std::size_t>(st.st_size);
      file->mmapped_ = true;
      ::close(fd);
      return file;
    }
    // fall through to the read() path — e.g. filesystems without mmap
  }

  // Fallback: slurp with read(). Handles empty regular files, pipes and
  // anything mmap refused; still yields one contiguous buffer.
  std::vector<char> buf;
  if (have_size && st.st_size > 0) buf.reserve(static_cast<std::size_t>(st.st_size));
  char chunk[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      buf.insert(buf.end(), chunk, chunk + n);
    } else if (n == 0) {
      break;
    } else if (errno != EINTR) {
      set_error(error, path, "read");
      ::close(fd);
      return nullptr;
    }
  }
  ::close(fd);
  file->heap_ = new char[buf.size() > 0 ? buf.size() : 1];
  if (!buf.empty()) std::memcpy(file->heap_, buf.data(), buf.size());
  file->data_ = file->heap_;
  file->size_ = buf.size();
  file->mmapped_ = false;
  return file;
}

}  // namespace intellog::logparse
