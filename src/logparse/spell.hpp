// Spell — streaming structured log-key extraction (Du & Li, ICDM'17), the
// first stage of the paper's pipeline (§2.1, §5).
//
// Each log printing statement is recovered as a *log key*: the constant
// words kept verbatim, variable fields collapsed to '*'. Spell matches an
// incoming message to an existing key via longest-common-subsequence: the
// message matches when |LCS| * t >= max(|message constants|, |key
// constants|) with the paper's threshold t = 1.7 (§5). On a match the key
// is refined to the LCS, with '*' marking positions where the sequences
// diverge; on a miss the message founds a new key.
//
// Optimizations standing in for the original's prefix tree:
//  - a shape cache (digit-bearing tokens masked to '*') short-circuits the
//    LCS search for the common case of repeated templates,
//  - an inverted token index prunes LCS candidates to keys sharing at least
//    one constant token with the message,
//  - every token is interned to a dense int id (common::TokenInterner), so
//    candidate pruning and LCS run over int ids with zero per-record string
//    allocation; each key's constant-id sequence is cached and invalidated
//    only on refinement, and
//  - match() memoizes its verdict (including misses) per shape in a
//    bounded cache, so repeated detection traffic — even for shapes never
//    seen in training — resolves in one hash lookup.
//
// Thread-safety: consume() and restore_keys() mutate and must be
// serialized. match() is const and safe to call from many threads
// concurrently (the memo cache takes a lock; everything else is
// read-only + thread_local scratch).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interner.hpp"
#include "obs/profile/profiled_mutex.hpp"

namespace intellog::logparse {

/// One discovered log key.
struct LogKey {
  int id = -1;
  std::vector<std::string> tokens;  ///< constant words and "*" placeholders
  std::size_t match_count = 0;      ///< messages matched so far

  /// The key as a display string, e.g. "* MapTask metrics system".
  std::string to_string() const;
  /// Constant (non-'*') tokens only.
  std::vector<std::string> constants() const;
};

class Spell {
 public:
  /// t is the paper's empirical matching threshold (1.7, §5).
  explicit Spell(double t = 1.7);

  // Moves leave the source with a fresh (empty-cache) mutex so it stays
  // safely destructible and usable.
  Spell(Spell&& other) noexcept;
  Spell& operator=(Spell&& other) noexcept;
  Spell(const Spell&) = delete;
  Spell& operator=(const Spell&) = delete;

  /// Consumes a message in training mode: matches or creates a key.
  /// Returns the key id.
  int consume(std::string_view message);

  /// Detection-mode matching: returns the best matching key id or -1.
  /// Never creates or refines keys. Thread-safe.
  int match(std::string_view message) const;

  /// Replaces the key set (model deserialization). The shape cache starts
  /// seeded with each key's own shape; match() memoizes everything else.
  void restore_keys(std::vector<LogKey> keys);

  const std::vector<LogKey>& keys() const { return keys_; }
  const LogKey& key(int id) const { return keys_[static_cast<std::size_t>(id)]; }
  std::size_t size() const { return keys_.size(); }
  double threshold() const { return t_; }

  /// Cached constant-token ids of a key (same order as constants()).
  const std::vector<int>& key_constant_ids(int id) const {
    return key_const_ids_[static_cast<std::size_t>(id)];
  }

  /// Entries currently held by the bounded match()-verdict memo.
  std::size_t match_cache_size() const;
  /// Memo capacity; at capacity the cache is reset before inserting
  /// (simple epoch eviction — repeated traffic refills it immediately).
  static constexpr std::size_t kMatchCacheCapacity = 1 << 16;

 private:
  static void shape_of(const std::vector<std::string_view>& tokens, std::string& out);
  int best_match(const std::vector<int>& token_ids, std::size_t num_tokens, bool& exact) const;
  void refine_key(LogKey& key, const std::vector<std::string>& tokens);
  /// (Re)builds a key's cached constant ids and inverted-index entries.
  void cache_key_constants(const LogKey& key);
  /// Key ids sharing >= 1 constant token with `token_ids`, deduplicated
  /// into thread-local scratch (the returned reference is valid until the
  /// calling thread's next candidates() call).
  const std::vector<int>& candidates(const std::vector<int>& token_ids) const;

  double t_;
  std::vector<LogKey> keys_;
  common::TokenInterner interner_;
  /// Per-key cached constants() as interned ids; rebuilt on refine_key.
  std::vector<std::vector<int>> key_const_ids_;
  /// Constant token id -> key ids containing it (superset after refines).
  std::vector<std::vector<int>> token_index_;
  std::unordered_map<std::string, int, common::StringHash, std::equal_to<>> shape_cache_;

  /// Bounded shape -> match() verdict memo (satellite: repeated detect
  /// traffic with unseen shapes). Mutated under match_mu_ from const match().
  /// Profiled: the memo lock is the one lock on the per-record detect path,
  /// so the Performance Observatory reports its contention by name.
  mutable std::unordered_map<std::string, int, common::StringHash, std::equal_to<>>
      match_cache_;
  mutable std::unique_ptr<obs::ProfiledMutex> match_mu_ =
      std::make_unique<obs::ProfiledMutex>("spell.match_memo");
};

}  // namespace intellog::logparse
