// Spell — streaming structured log-key extraction (Du & Li, ICDM'17), the
// first stage of the paper's pipeline (§2.1, §5).
//
// Each log printing statement is recovered as a *log key*: the constant
// words kept verbatim, variable fields collapsed to '*'. Spell matches an
// incoming message to an existing key via longest-common-subsequence: the
// message matches when |LCS| * t >= max(|message constants|, |key
// constants|) with the paper's threshold t = 1.7 (§5). On a match the key
// is refined to the LCS, with '*' marking positions where the sequences
// diverge; on a miss the message founds a new key.
//
// Two optimizations stand in for the original's prefix tree:
//  - a shape cache (digit-bearing tokens masked to '*') short-circuits the
//    LCS search for the common case of repeated templates, and
//  - an inverted token index prunes LCS candidates to keys sharing at least
//    one constant token with the message, keeping million-line corpora and
//    large key sets fast even on cache misses.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace intellog::logparse {

/// One discovered log key.
struct LogKey {
  int id = -1;
  std::vector<std::string> tokens;  ///< constant words and "*" placeholders
  std::size_t match_count = 0;      ///< messages matched so far

  /// The key as a display string, e.g. "* MapTask metrics system".
  std::string to_string() const;
  /// Constant (non-'*') tokens only.
  std::vector<std::string> constants() const;
};

class Spell {
 public:
  /// t is the paper's empirical matching threshold (1.7, §5).
  explicit Spell(double t = 1.7);

  /// Consumes a message in training mode: matches or creates a key.
  /// Returns the key id.
  int consume(std::string_view message);

  /// Detection-mode matching: returns the best matching key id or -1.
  /// Never creates or refines keys.
  int match(std::string_view message) const;

  /// Replaces the key set (model deserialization). The shape cache starts
  /// cold and refills on consume; match() falls back to LCS search.
  void restore_keys(std::vector<LogKey> keys);

  const std::vector<LogKey>& keys() const { return keys_; }
  const LogKey& key(int id) const { return keys_[static_cast<std::size_t>(id)]; }
  std::size_t size() const { return keys_.size(); }
  double threshold() const { return t_; }

 private:
  static std::vector<std::string> split_tokens(std::string_view message);
  static std::string shape_of(const std::vector<std::string>& tokens);
  int best_match(const std::vector<std::string>& tokens, bool& exact) const;
  void refine_key(LogKey& key, const std::vector<std::string>& tokens);
  void index_key(const LogKey& key);
  /// Key ids sharing >= 1 constant token with `tokens`, deduplicated.
  std::vector<int> candidates(const std::vector<std::string>& tokens) const;

  double t_;
  std::vector<LogKey> keys_;
  std::unordered_map<std::string, int> shape_cache_;
  std::unordered_map<std::string, std::vector<int>> token_index_;
};

}  // namespace intellog::logparse
