#include "logparse/kv_filter.hpp"

#include "common/strings.hpp"
#include "nlp/tokenizer.hpp"

namespace intellog::logparse {

KvFilter::KvFilter(const nlp::Lexicon* lexicon)
    : tagger_(lexicon ? nlp::PosTagger(*lexicon) : nlp::PosTagger()) {}

bool KvFilter::is_natural_language(std::string_view message) const {
  // A clause needs a predicate: tag the message and look for a verb reading
  // in context. Value sides of "key=value" fragments never count.
  const auto tagged = tagger_.tag(nlp::tokenize(message));
  // Both sides of "key=value" are field material, not clause material
  // (camel-case keys like "recordsProcessed" would otherwise read as
  // participles).
  std::vector<bool> excluded(tagged.size(), false);
  for (std::size_t i = 0; i < tagged.size(); ++i) {
    if (tagged[i].text != "=") continue;
    if (i > 0) excluded[i - 1] = true;
    if (i + 1 < tagged.size()) excluded[i + 1] = true;
    excluded[i] = true;
  }
  for (std::size_t i = 0; i < tagged.size(); ++i) {
    if (!excluded[i] && nlp::is_verb(tagged[i].tag)) return true;
  }
  return false;
}

bool KvFilter::is_kv_only(std::string_view message) const {
  if (is_natural_language(message)) return false;
  const auto tokens = nlp::tokenize(message);
  if (tokens.empty()) return true;
  // Count tokens participating in key=value fragments ("key", "=", "value"
  // triples, or atomic tokens with an embedded '=').
  std::size_t kv_tokens = 0, countable = 0;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& t = tokens[i];
    if (t == ":" || t == "," || t == "." || t == "(" || t == ")") continue;
    ++countable;
    if (t == "=") {
      kv_tokens += 1;
      continue;
    }
    const bool next_eq = i + 1 < tokens.size() && tokens[i + 1] == "=";
    const bool prev_eq = i > 0 && tokens[i - 1] == "=";
    if (next_eq || prev_eq || t.find('=') != std::string::npos) ++kv_tokens;
  }
  // 40%+ of countable tokens in key=value fragments -> status line. (Keys
  // fused into atomic tokens, "phys_ram=131072MB", count once, so the bar
  // sits below one half.)
  return countable > 0 && kv_tokens * 5 >= countable * 2;
}

}  // namespace intellog::logparse
