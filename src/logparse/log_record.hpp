// Log record representation plus the simulator's ground-truth side channel.
//
// A LogRecord is what the formatters produce from a raw log line: timestamp,
// level, source class, message content, and the YARN container that emitted
// it (the paper's session unit, §5).
//
// GroundTruth exists because this repo replaces the paper's manual
// source-code inspection (§6.2) with machine-checkable annotations: the
// simulated systems know which template produced each line and what category
// every variable field has. IntelLog itself NEVER reads GroundTruth — only
// the accuracy benches do.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/arena.hpp"

namespace intellog::logparse {

/// The four variable-field categories of §2.1 plus an "other" bucket.
enum class FieldCategory { Entity, Identifier, Value, Locality, Other };

/// One annotated variable field of a template instance.
struct FieldAnnotation {
  std::string text;       ///< the concrete field text in this line
  FieldCategory category;
  std::string id_type;    ///< identifier type (e.g. "TASK") when Identifier
};

/// What the simulator knows about the line it emitted.
struct GroundTruth {
  int template_id = -1;            ///< stable per-system template number
  std::string system;              ///< "spark" / "mapreduce" / "tez" / ...
  bool natural_language = true;    ///< false for pure key-value status lines
  bool injected_anomaly = false;   ///< line exists only because of a fault
  std::vector<FieldAnnotation> fields;
  /// Ground-truth entity phrases in the template's constant text
  /// (lemmatized, lower-case), for Table 4 entity accuracy.
  std::vector<std::string> entities;
  /// Ground-truth operation predicates (lemmatized), for Table 4.
  std::vector<std::string> operations;
};

/// A parsed log line.
///
/// The text fields are ArenaStrings: owning std::strings by default
/// (simulators, checkpoints, tests — everything behaves as before), or
/// zero-copy views into an mmap'd file / session arena when produced by
/// the mmap ingest path. Borrowed records are only valid while their
/// Session's storage is alive; call materialize() before detaching one.
struct LogRecord {
  std::uint64_t timestamp_ms = 0;
  common::ArenaString level = "INFO";
  common::ArenaString source;        ///< logging class, e.g. "storage.BlockManager"
  common::ArenaString content;       ///< the message text
  common::ArenaString container_id;  ///< session key (one YARN container = session)
  /// Ingest provenance (the quarantine channel's byte-offset discipline,
  /// threaded through accepted records too): 1-based line number within the
  /// source file and the offset of the line's first byte. 0/0 when the
  /// record did not come from a file (simulator sessions, checkpoints
  /// written before provenance existed). The source file itself lives on
  /// the Session (one file per container).
  std::uint32_t line_no = 0;
  std::uint64_t byte_offset = 0;
  std::optional<GroundTruth> truth;  ///< simulator side channel (benches only)

  /// Converts any borrowed fields into owning copies so the record can
  /// outlive its session's backing storage (no-op for owned records).
  void materialize() {
    level.materialize();
    source.materialize();
    content.materialize();
    container_id.materialize();
  }
};

}  // namespace intellog::logparse
