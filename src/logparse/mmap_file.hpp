#pragma once

// Read-only file mapping for zero-copy ingest. MappedFile::open() mmaps
// the file when it can and falls back to a plain read() into a heap
// buffer when it can't (pipes, pseudo-files with st_size 0, platforms
// without mmap, or INTELLOG_NO_MMAP=1 forcing the fallback so CI can
// exercise that path). Either way the caller gets one contiguous
// string_view of the whole file whose lifetime is the MappedFile's —
// Sessions pin it via shared_ptr so borrowed records stay valid.

#include <memory>
#include <string>
#include <string_view>

namespace intellog::logparse {

class MappedFile {
 public:
  // Returns nullptr (with errno-derived message in *error when given)
  // only when the file cannot be read at all; an unmappable but readable
  // file succeeds via the fallback.
  static std::shared_ptr<MappedFile> open(const std::string& path,
                                          std::string* error = nullptr);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::string_view view() const { return {data_, size_}; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }
  // True when the bytes come from an actual mmap (false: read() fallback).
  bool mmapped() const { return mmapped_; }

 private:
  MappedFile() = default;

  std::string path_;
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  char* heap_ = nullptr;  // owned buffer when the fallback was used
  bool mmapped_ = false;
};

}  // namespace intellog::logparse
