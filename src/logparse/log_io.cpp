#include "logparse/log_io.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "logparse/mmap_file.hpp"
#include "logparse/scanner.hpp"
#include "obs/flight/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/profile/profile.hpp"

namespace intellog::logparse {

namespace fs = std::filesystem;

namespace {

void count_skipped_file(const std::string& path) {
  std::cerr << "log_io: warning: skipping " << path << ": no known log format\n";
  if (obs::MetricsRegistry* reg = obs::registry()) {
    reg->counter("intellog_ingest_skipped_files_total").add(1);
  }
}

// Splits a mapped file into line views with the SWAR scanner. The views
// point straight into the mapping; offsets are byte-exact (scanner
// semantics mirror the std::getline loop this replaced).
std::vector<std::string_view> scan_lines(std::string_view data) {
  std::vector<std::string_view> lines;
  lines.reserve(data.size() / 48 + 1);  // typical log line runs 60-120 bytes
  LineScanner scanner(data);
  std::string_view line;
  std::size_t offset = 0;
  while (scanner.next(&line, &offset)) lines.push_back(line);
  return lines;
}

bool all_lines_empty(const std::vector<std::string_view>& lines) {
  return std::all_of(lines.begin(), lines.end(),
                     [](std::string_view l) { return l.empty(); });
}

std::vector<std::string> sorted_log_paths(const std::string& dir) {
  std::vector<std::string> paths;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".log") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());  // deterministic order
  return paths;
}

}  // namespace

void write_session_file(const Formatter& fmt, const Session& session,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_session_file: cannot open " + path);
  for (const auto& rec : session.records) out << fmt.render(rec) << "\n";
}

void write_log_directory(const Formatter& fmt, const std::vector<Session>& sessions,
                         const std::string& dir) {
  fs::create_directories(dir);
  for (const auto& s : sessions) {
    write_session_file(fmt, s, (fs::path(dir) / (s.container_id + ".log")).string());
  }
}

Session read_session_file(const std::string& path, std::string_view system) {
  PROF_FRAME("ingest.read_file");
  std::string error;
  auto mapping = MappedFile::open(path, &error);
  if (mapping == nullptr) throw std::runtime_error("read_session_file: cannot open " + path);
  const std::vector<std::string_view> lines = scan_lines(mapping->view());

  // Format auto-detection from the first parseable line.
  const Formatter* fmt = nullptr;
  for (const auto& l : lines) {
    fmt = detect_format(l);
    if (fmt) break;
  }
  const std::string container = fs::path(path).stem().string();
  if (!fmt) {
    if (!all_lines_empty(lines)) count_skipped_file(path);
    return Session{container, std::string(system), path, {}, nullptr};
  }
  auto storage = std::make_shared<SessionStorage>();
  storage->mapping = std::move(mapping);
  Session s = parse_session(*fmt, container, lines, system, storage.get());
  s.source_file = path;
  s.storage = std::move(storage);
  return s;
}

std::vector<Session> read_log_directory(const std::string& dir, std::string_view system) {
  PROF_FRAME("ingest.read_dir");
  if (!fs::exists(dir)) throw std::runtime_error("read_log_directory: no such dir " + dir);
  std::vector<Session> sessions;
  for (const auto& p : sorted_log_paths(dir)) {
    Session s = read_session_file(p, system);
    // A zero-byte .log file is a real observation — a container that died
    // before emitting a single line (e.g. a session abort at startup) —
    // and detection must see it as an empty session. Files with content
    // that parsed to nothing are junk and stay skipped.
    std::error_code ec;
    const bool empty_file = fs::file_size(p, ec) == 0 && !ec;
    if (!s.records.empty() || empty_file) sessions.push_back(std::move(s));
  }
  return sessions;
}

// --- resilient ingestion -----------------------------------------------------

SessionIngest read_session_file_resilient(const std::string& path, std::string_view system,
                                          const IngestOptions& options) {
  PROF_FRAME("ingest.read_file_resilient");
  SessionIngest out;
  out.session.container_id = fs::path(path).stem().string();
  out.session.system = std::string(system);
  out.session.source_file = path;
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) {
    std::cerr << "log_io: warning: cannot read " << path << "\n";
    return out;
  }
  std::string error;
  auto mapping = MappedFile::open(path, &error);
  if (mapping == nullptr) {
    std::cerr << "log_io: warning: cannot read " << path << ": " << error << "\n";
    return out;
  }
  const std::vector<std::string_view> lines = scan_lines(mapping->view());

  const Formatter* fmt = nullptr;
  for (const auto& l : lines) {
    fmt = detect_format(l);
    if (fmt) break;
  }
  if (!fmt) {
    if (all_lines_empty(lines)) return out;
    count_skipped_file(path);
    ++out.stats.skipped_files;
    out.stats.lines_total = lines.size();
    for (const auto& l : lines) {
      if (l.empty()) continue;
      ++out.stats.quarantined;
      ++out.stats.quarantined_by_reason["no-known-format"];
      QuarantinedLine q;
      q.file = path;
      q.line_no = 1 + static_cast<std::size_t>(&l - lines.data());
      q.raw_bytes = l.size();
      q.text = std::string(l.substr(0, options.quarantine_text_bytes));
      q.reason = "no-known-format";
      for (std::size_t i = 0; i + 1 < q.line_no; ++i) q.byte_offset += lines[i].size() + 1;
      out.quarantined.push_back(std::move(q));
      break;  // one forensic sample per skipped file is enough
    }
    FLIGHT_EVENT(kIngestQuarantine, out.stats.quarantined, out.stats.lines_total);
    return out;
  }
  auto storage = std::make_shared<SessionStorage>();
  storage->mapping = std::move(mapping);
  SessionIngest ingest = parse_session_resilient(*fmt, out.session.container_id, lines, system,
                                                 options, path, storage.get());
  ingest.session.storage = std::move(storage);
  FLIGHT_EVENT(kIngestAdmit, ingest.session.records.size(), ingest.stats.lines_total);
  if (ingest.stats.quarantined > 0) {
    FLIGHT_EVENT(kIngestQuarantine, ingest.stats.quarantined, ingest.stats.lines_total);
  }
  return ingest;
}

IngestReport read_log_directory_resilient(const std::string& dir, std::string_view system,
                                          const IngestOptions& options) {
  PROF_FRAME("ingest.read_dir_resilient");
  IngestReport report;
  std::error_code ec;
  if (!fs::exists(dir, ec) || ec) {
    std::cerr << "log_io: warning: no such log directory: " << dir << "\n";
    return report;
  }
  // Directory-level bounded channel: per-file ingest already rotates within
  // each file; this re-applies the caps across files so the oldest evidence
  // rotates out first globally instead of later files being truncated.
  QuarantineChannel channel(options.max_quarantined, options.max_quarantined_bytes);
  for (const auto& p : sorted_log_paths(dir)) {
    SessionIngest one = read_session_file_resilient(p, system, options);
    report.stats.merge(one.stats);
    for (auto& q : one.quarantined) channel.push(std::move(q));
    // Zero-byte files surface as empty sessions (see read_log_directory):
    // a container that never logged is detection signal, not junk.
    std::error_code fec;
    const bool empty_file = fs::file_size(p, fec) == 0 && !fec;
    if (!one.session.records.empty() || empty_file) {
      report.sessions.push_back(std::move(one.session));
    }
  }
  report.quarantined = channel.take();
  report.stats.quarantine_dropped += channel.dropped();

  if (obs::MetricsRegistry* reg = obs::registry()) {
    reg->describe("intellog_ingest_skipped_files_total",
                  "Files skipped because no known log format matched");
    reg->describe("intellog_ingest_lines_total", "Raw lines seen by resilient ingest");
    reg->describe("intellog_ingest_records_total", "Records produced by resilient ingest");
    reg->describe("intellog_ingest_duplicates_dropped_total",
                  "Duplicate records dropped during ingest");
    reg->describe("intellog_ingest_reordered_total",
                  "Records reordered into timestamp order during ingest");
    reg->describe("intellog_ingest_quarantined_total",
                  "Lines quarantined during ingest, by reason");
    reg->describe("intellog_ingest_quarantine_dropped_total",
                  "Quarantined lines rotated out oldest-first by the bounded channel");
    reg->counter("intellog_ingest_lines_total").add(report.stats.lines_total);
    reg->counter("intellog_ingest_records_total").add(report.stats.records);
    reg->counter("intellog_ingest_duplicates_dropped_total")
        .add(report.stats.duplicates_dropped);
    reg->counter("intellog_ingest_reordered_total").add(report.stats.reordered);
    reg->counter("intellog_ingest_quarantine_dropped_total")
        .add(report.stats.quarantine_dropped);
    for (const auto& [reason, n] : report.stats.quarantined_by_reason) {
      reg->counter("intellog_ingest_quarantined_total", {{"reason", reason}}).add(n);
    }
  }
  return report;
}

}  // namespace intellog::logparse
