#include "logparse/log_io.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace intellog::logparse {

namespace fs = std::filesystem;

void write_session_file(const Formatter& fmt, const Session& session,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_session_file: cannot open " + path);
  for (const auto& rec : session.records) out << fmt.render(rec) << "\n";
}

void write_log_directory(const Formatter& fmt, const std::vector<Session>& sessions,
                         const std::string& dir) {
  fs::create_directories(dir);
  for (const auto& s : sessions) {
    write_session_file(fmt, s, (fs::path(dir) / (s.container_id + ".log")).string());
  }
}

Session read_session_file(const std::string& path, std::string_view system) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_session_file: cannot open " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);

  // Format auto-detection from the first parseable line.
  const Formatter* fmt = nullptr;
  for (const auto& l : lines) {
    fmt = detect_format(l);
    if (fmt) break;
  }
  const std::string container = fs::path(path).stem().string();
  if (!fmt) return Session{container, std::string(system), {}};
  return parse_session(*fmt, container, lines, system);
}

std::vector<Session> read_log_directory(const std::string& dir, std::string_view system) {
  if (!fs::exists(dir)) throw std::runtime_error("read_log_directory: no such dir " + dir);
  std::vector<std::string> paths;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".log") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());  // deterministic order
  std::vector<Session> sessions;
  for (const auto& p : paths) {
    Session s = read_session_file(p, system);
    if (!s.records.empty()) sessions.push_back(std::move(s));
  }
  return sessions;
}

}  // namespace intellog::logparse
