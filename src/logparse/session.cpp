#include "logparse/session.hpp"

#include <map>

namespace intellog::logparse {

std::vector<Session> split_sessions(const std::vector<LogRecord>& records,
                                    std::string_view system) {
  // std::map keeps container order deterministic (sorted by id).
  std::map<std::string, Session> by_container;
  for (const LogRecord& rec : records) {
    if (rec.container_id.empty()) continue;
    Session& s = by_container[rec.container_id];
    if (s.container_id.empty()) {
      s.container_id = rec.container_id;
      s.system = std::string(system);
    }
    s.records.push_back(rec);
  }
  std::vector<Session> out;
  out.reserve(by_container.size());
  for (auto& [id, session] : by_container) out.push_back(std::move(session));
  return out;
}

Session parse_session(const Formatter& fmt, std::string_view container_id,
                      const std::vector<std::string>& lines, std::string_view system) {
  Session s;
  s.container_id = std::string(container_id);
  s.system = std::string(system);
  for (const std::string& line : lines) {
    if (auto rec = fmt.parse(line)) {
      rec->container_id = s.container_id;
      s.records.push_back(std::move(*rec));
    } else if (!s.records.empty()) {
      s.records.back().content += "\n" + line;  // continuation (stack trace)
    }
  }
  return s;
}

}  // namespace intellog::logparse
