#include "logparse/session.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstring>

#include "obs/profile/profile.hpp"

namespace intellog::logparse {

std::vector<Session> split_sessions(const std::vector<LogRecord>& records,
                                    std::string_view system) {
  // std::map keeps container order deterministic (sorted by id).
  std::map<std::string, Session, std::less<>> by_container;
  for (const LogRecord& rec : records) {
    if (rec.container_id.empty()) continue;
    auto it = by_container.find(rec.container_id.view());
    if (it == by_container.end()) {
      it = by_container.emplace(rec.container_id.str(), Session{}).first;
      it->second.container_id = rec.container_id.str();
      it->second.system = std::string(system);
    }
    Session& s = it->second;
    s.records.push_back(rec);
    // The output sessions carry no backing storage, so any borrowed input
    // record must not leave dangling views behind (no-op for owned ones).
    s.records.back().materialize();
  }
  std::vector<Session> out;
  out.reserve(by_container.size());
  for (auto& [id, session] : by_container) out.push_back(std::move(session));
  return out;
}

namespace {

std::vector<std::string_view> as_views(const std::vector<std::string>& lines) {
  return std::vector<std::string_view>(lines.begin(), lines.end());
}

// Builds one record from parsed views: borrowing them when the session
// has backing storage, copying otherwise.
LogRecord make_record(const RecordView& v, std::string_view container_id,
                      bool borrow) {
  LogRecord rec;
  rec.timestamp_ms = v.timestamp_ms;
  if (borrow) {
    rec.level = common::ArenaString::borrowed(v.level);
    rec.source = common::ArenaString::borrowed(v.source);
    rec.content = common::ArenaString::borrowed(v.content);
    rec.container_id = common::ArenaString::borrowed(container_id);
  } else {
    rec.level = v.level;
    rec.source = v.source;
    rec.content = v.content;
    rec.container_id = container_id;
  }
  return rec;
}

}  // namespace

Session parse_session(const Formatter& fmt, std::string_view container_id,
                      const std::vector<std::string>& lines, std::string_view system) {
  return parse_session(fmt, container_id, as_views(lines), system, nullptr);
}

Session parse_session(const Formatter& fmt, std::string_view container_id,
                      const std::vector<std::string_view>& lines, std::string_view system,
                      SessionStorage* backing) {
  PROF_FRAME("ingest.parse");
  Session s;
  s.container_id = std::string(container_id);
  s.system = std::string(system);
  // Borrowed records view the arena copy, not s.container_id: short ids
  // sit in the std::string's SSO buffer, which moves with the Session.
  const std::string_view cid =
      backing != nullptr ? backing->arena.copy(container_id) : container_id;
  s.records.reserve(lines.size());  // continuations only ever shrink this
  RecordView v;
  std::uint64_t offset = 0;
  for (std::size_t i = 0; i < lines.size(); ++i, offset += lines[i - 1].size() + 1) {
    const std::string_view line = lines[i];
    if (fmt.parse_view(line, &v)) {
      LogRecord rec = make_record(v, cid, backing != nullptr);
      rec.line_no = static_cast<std::uint32_t>(i + 1);
      rec.byte_offset = offset;
      s.records.push_back(std::move(rec));
    } else if (!s.records.empty()) {
      // Continuation (stack trace): materializes the record's content —
      // off the fast path, and repeated appends stay amortized.
      common::ArenaString& c = s.records.back().content;
      c += '\n';
      c += line;
    }
  }
  return s;
}

// --- resilient ingestion -----------------------------------------------------

void IngestStats::merge(const IngestStats& other) {
  lines_total += other.lines_total;
  records += other.records;
  continuations += other.continuations;
  quarantined += other.quarantined;
  duplicates_dropped += other.duplicates_dropped;
  reordered += other.reordered;
  skipped_files += other.skipped_files;
  quarantine_dropped += other.quarantine_dropped;
  for (const auto& [reason, n] : other.quarantined_by_reason) {
    quarantined_by_reason[reason] += n;
  }
}

void QuarantineChannel::push(QuarantinedLine q) {
  if (max_records_ == 0) {
    ++dropped_;
    return;
  }
  bytes_ += q.text.size();
  items_.push_back(std::move(q));
  while (items_.size() > max_records_ || (bytes_ > max_bytes_ && items_.size() > 1)) {
    bytes_ -= items_.front().text.size();
    items_.pop_front();
    ++dropped_;
  }
}

std::vector<QuarantinedLine> QuarantineChannel::take() {
  std::vector<QuarantinedLine> out;
  out.reserve(items_.size());
  for (auto& q : items_) out.push_back(std::move(q));
  items_.clear();
  bytes_ = 0;
  return out;
}

bool looks_binary(std::string_view line) {
  std::size_t control = 0;
  for (std::size_t i = 0; i < line.size();) {
    const unsigned char b = static_cast<unsigned char>(line[i]);
    if (b == 0) return true;  // NUL never appears in log text
    if (b < 0x80) {
      if (b < 0x20 && b != '\t' && b != '\r') ++control;
      ++i;
      continue;
    }
    // Validate one UTF-8 multi-byte sequence.
    std::size_t len = 0;
    if ((b & 0xE0) == 0xC0) len = 2;
    else if ((b & 0xF0) == 0xE0) len = 3;
    else if ((b & 0xF8) == 0xF0) len = 4;
    else return true;  // stray continuation byte or invalid lead
    if (i + len > line.size()) return true;  // truncated sequence
    for (std::size_t k = 1; k < len; ++k) {
      if ((static_cast<unsigned char>(line[i + k]) & 0xC0) != 0x80) return true;
    }
    i += len;
  }
  // Dense control characters = binary spill even if each byte is "valid".
  return control > 2 && control * 10 > line.size();
}

namespace {

/// Both supported formats open with a digit-led timestamp ("2019-06-…",
/// "19/06/…"); an unparseable digit-led line is a torn format prefix, not a
/// stack-trace continuation (those start with whitespace, "at …",
/// "Caused by:", an exception class, …).
bool looks_torn(std::string_view line) {
  return !line.empty() && std::isdigit(static_cast<unsigned char>(line[0]));
}

}  // namespace

SessionIngest parse_session_resilient(const Formatter& fmt, std::string_view container_id,
                                      const std::vector<std::string>& lines,
                                      std::string_view system, const IngestOptions& options,
                                      std::string_view file) {
  return parse_session_resilient(fmt, container_id, as_views(lines), system, options, file,
                                 nullptr);
}

SessionIngest parse_session_resilient(const Formatter& fmt, std::string_view container_id,
                                      const std::vector<std::string_view>& lines,
                                      std::string_view system, const IngestOptions& options,
                                      std::string_view file, SessionStorage* backing) {
  PROF_FRAME("ingest.parse_resilient");
  SessionIngest out;
  out.session.container_id = std::string(container_id);
  out.session.system = std::string(system);
  out.session.source_file = std::string(file);
  const std::string source = file.empty() ? std::string(container_id) : std::string(file);
  const std::string_view cid =
      backing != nullptr ? backing->arena.copy(container_id) : container_id;

  QuarantineChannel channel(options.max_quarantined, options.max_quarantined_bytes);
  const auto quarantine = [&](std::size_t line_no, std::uint64_t offset,
                              std::string_view line, const char* reason) {
    ++out.stats.quarantined;
    ++out.stats.quarantined_by_reason[reason];
    QuarantinedLine q;
    q.file = source;
    q.line_no = line_no;
    q.byte_offset = offset;
    q.raw_bytes = line.size();
    q.text = std::string(line.substr(0, options.quarantine_text_bytes));
    q.reason = reason;
    channel.push(std::move(q));
  };

  auto& recs = out.session.records;
  recs.reserve(lines.size());  // quarantine/dedupe only ever shrink this

  // Compact dedupe index parallel to `recs`: each accepted record leaves one
  // 64-bit signature mixing its timestamp, content length, and 8 bytes
  // sampled from the middle of the content (where the variable fields live).
  // The duplicate scan is a single integer compare per window entry over a
  // contiguous array; the full string compares only run on a signature hit,
  // so a collision can never drop a non-duplicate. Signatures are computed
  // once at accept time and never updated — a record later extended by a
  // continuation keeps its stale signature, which can only cost a redundant
  // full compare (lines cannot contain '\n', so no single line can equal the
  // extended content anyway).
  const auto sig_of = [](const LogRecord& r) {
    std::uint64_t mid = 0;
    const std::size_t n = std::min<std::size_t>(r.content.size(), 8);
    if (n > 0) std::memcpy(&mid, r.content.data() + (r.content.size() - n) / 2, n);
    return r.timestamp_ms * 0x9E3779B97F4A7C15ull ^ mid * 0xC2B2AE3D27D4EB4Full ^
           static_cast<std::uint64_t>(r.content.size()) * 0x165667B19E3779F9ull;
  };
  // One entry per accepted record. A duplicate hit rotates the matched
  // entry to the back of the window instead of appending: chains of
  // re-deliveries (a copy of a copy) keep the original's entry fresh no
  // matter how many copies were dropped, while the window's *membership*
  // never changes — so interleaved duplicates cannot displace an original
  // and flip the verdict of a later clean line (the duplicates-only parity
  // invariant the chaos soak asserts).
  struct DedupeEntry {
    std::uint64_t sig;
    std::size_t idx;  ///< index into `recs` of the record this entry is for
  };
  std::vector<DedupeEntry> sigs;
  // Counting filter over the window's signatures (a single cache line of
  // byte-sized buckets; the window is clamped so a count cannot wrap): the
  // O(window) scan only runs when the new signature's bucket is occupied —
  // ~window/64 of clean lines — so dedupe is O(1) per line.
  const std::size_t dedupe_window = std::min<std::size_t>(options.dedupe_window, 255);
  if (dedupe_window > 0) sigs.reserve(lines.size());
  std::array<std::uint8_t, 64> bucket{};
  const auto push_sig = [&](std::uint64_t sig, std::size_t idx) {
    sigs.push_back({sig, idx});
    ++bucket[sig & 63];
    if (sigs.size() > dedupe_window) {
      --bucket[sigs[sigs.size() - 1 - dedupe_window].sig & 63];
    }
  };

  std::uint64_t offset = 0;
  RecordView view;
  for (std::size_t i = 0; i < lines.size(); ++i, offset += lines[i - 1].size() + 1) {
    const std::string_view line = lines[i];
    const std::size_t line_no = i + 1;
    ++out.stats.lines_total;

    if (line.size() > options.max_line_bytes) {
      quarantine(line_no, offset, line, "oversized");
      continue;
    }

    if (!fmt.parse_view(line, &view)) {
      // The byte-level binary scan only runs on lines the formatter already
      // rejected, so clean streams never pay for it.
      if (looks_binary(line)) {
        quarantine(line_no, offset, line, "binary");
      } else if (looks_torn(line)) {
        quarantine(line_no, offset, line, "torn");
      } else if (!recs.empty() &&
                 recs.back().content.size() + line.size() < options.max_line_bytes) {
        // Continuation (stack trace): materializes the record's content.
        common::ArenaString& c = recs.back().content;
        c += '\n';
        c += line;
        ++out.stats.continuations;
      } else if (!recs.empty()) {
        quarantine(line_no, offset, line, "oversized");
      } else {
        quarantine(line_no, offset, line, "unparseable");
      }
      continue;
    }
    LogRecord rec = make_record(view, cid, backing != nullptr);
    rec.line_no = static_cast<std::uint32_t>(line_no);
    rec.byte_offset = offset;

    // Exact-duplicate suppression: at-least-once shippers re-deliver
    // verbatim copies close to the original.
    if (dedupe_window > 0) {
      const std::uint64_t nsig = sig_of(rec);
      bool dup = false;
      if (bucket[nsig & 63] != 0) {
        const std::size_t n = sigs.size();
        const std::size_t lo = n > dedupe_window ? n - dedupe_window : 0;
        for (std::size_t k = n; k > lo && !dup; --k) {
          if (sigs[k - 1].sig != nsig) continue;
          const LogRecord& prev = recs[sigs[k - 1].idx];
          if (prev.timestamp_ms == rec.timestamp_ms && prev.content == rec.content &&
              prev.level == rec.level && prev.source == rec.source) {
            dup = true;
            // Refresh, don't append: the next copy in a re-delivery chain
            // arrives within a few records, so moving the original's entry
            // to the back keeps it findable without altering which records
            // the window covers.
            std::rotate(sigs.begin() + static_cast<std::ptrdiff_t>(k - 1),
                        sigs.begin() + static_cast<std::ptrdiff_t>(k), sigs.end());
          }
        }
      }
      if (dup) {
        ++out.stats.duplicates_dropped;
        continue;
      }
      push_sig(nsig, recs.size());
    }

    recs.push_back(std::move(rec));
    ++out.stats.records;

    // Bounded reorder tolerance: a record whose timestamp precedes its
    // neighbours is slotted back into timestamp order, scanning at most
    // `reorder_window` records (ties keep arrival order).
    const std::size_t pos = recs.size() - 1;
    if (options.reorder_window > 0 && pos > 0 &&
        recs[pos].timestamp_ms < recs[pos - 1].timestamp_ms) {
      const std::size_t lo =
          pos > options.reorder_window ? pos - options.reorder_window : 0;
      std::size_t ins = pos;
      while (ins > lo && recs[ins - 1].timestamp_ms > recs[pos].timestamp_ms) --ins;
      std::rotate(recs.begin() + static_cast<std::ptrdiff_t>(ins),
                  recs.begin() + static_cast<std::ptrdiff_t>(pos),
                  recs.begin() + static_cast<std::ptrdiff_t>(pos) + 1);
      if (!sigs.empty()) {
        // The rotation shifted record indices in [ins, pos]; patch the
        // window's entries so they keep pointing at the same records (only
        // the last `dedupe_window` entries are ever read again).
        const std::size_t slo =
            sigs.size() > dedupe_window ? sigs.size() - dedupe_window : 0;
        for (std::size_t k = slo; k < sigs.size(); ++k) {
          if (sigs[k].idx == pos) {
            sigs[k].idx = ins;
          } else if (sigs[k].idx >= ins && sigs[k].idx < pos) {
            ++sigs[k].idx;
          }
        }
      }
      ++out.stats.reordered;
    }
  }
  out.quarantined = channel.take();
  out.stats.quarantine_dropped += channel.dropped();
  return out;
}

}  // namespace intellog::logparse
