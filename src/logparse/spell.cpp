#include "logparse/spell.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "obs/flight/flight.hpp"
#include "obs/profile/profile.hpp"
#include "obs/trace.hpp"

namespace intellog::logparse {

namespace {

/// Thread-local scratch for the zero-allocation tokenize/shape/id steps.
/// One set per thread: match() runs concurrently under detect_batch.
struct Scratch {
  std::vector<std::string_view> tokens;
  std::string shape;
  std::vector<int> token_ids;
};

Scratch& scratch() {
  thread_local Scratch s;
  return s;
}

}  // namespace

std::string LogKey::to_string() const { return common::join(tokens, " "); }

std::vector<std::string> LogKey::constants() const {
  std::vector<std::string> out;
  for (const auto& t : tokens) {
    if (t != "*") out.push_back(t);
  }
  return out;
}

Spell::Spell(double t) : t_(t) {}

Spell::Spell(Spell&& other) noexcept
    : t_(other.t_),
      keys_(std::move(other.keys_)),
      interner_(std::move(other.interner_)),
      key_const_ids_(std::move(other.key_const_ids_)),
      token_index_(std::move(other.token_index_)),
      shape_cache_(std::move(other.shape_cache_)),
      match_cache_(std::move(other.match_cache_)),
      match_mu_(std::move(other.match_mu_)) {
  other.match_mu_ = std::make_unique<obs::ProfiledMutex>("spell.match_memo");
}

Spell& Spell::operator=(Spell&& other) noexcept {
  if (this == &other) return *this;
  t_ = other.t_;
  keys_ = std::move(other.keys_);
  interner_ = std::move(other.interner_);
  key_const_ids_ = std::move(other.key_const_ids_);
  token_index_ = std::move(other.token_index_);
  shape_cache_ = std::move(other.shape_cache_);
  match_cache_ = std::move(other.match_cache_);
  match_mu_ = std::move(other.match_mu_);
  other.match_mu_ = std::make_unique<obs::ProfiledMutex>("spell.match_memo");
  return *this;
}

void Spell::restore_keys(std::vector<LogKey> keys) {
  keys_ = std::move(keys);
  shape_cache_.clear();
  token_index_.clear();
  interner_.clear();
  key_const_ids_.clear();
  {
    std::lock_guard lock(*match_mu_);
    match_cache_.clear();
  }
  for (const LogKey& key : keys_) cache_key_constants(key);
  // Seed the cache with each key's own shape: messages whose variables are
  // all digit-bearing produce exactly this shape, and keys dominated by
  // variable fields ("headroom * *") would otherwise fail the LCS bar.
  for (const LogKey& key : keys_) {
    shape_cache_.emplace(common::join(key.tokens, " "), key.id);
  }
}

void Spell::shape_of(const std::vector<std::string_view>& tokens, std::string& out) {
  out.clear();
  for (const auto& t : tokens) {
    if (!out.empty()) out += ' ';
    if (common::has_digit(t)) {
      out += '*';
    } else {
      out += t;
    }
  }
}

void Spell::cache_key_constants(const LogKey& key) {
  const auto id = static_cast<std::size_t>(key.id);
  if (key_const_ids_.size() <= id) key_const_ids_.resize(id + 1);
  std::vector<int>& const_ids = key_const_ids_[id];
  const_ids.clear();
  for (const auto& tok : key.tokens) {
    if (tok == "*") continue;
    const int tid = interner_.intern(tok);
    const_ids.push_back(tid);
    if (token_index_.size() <= static_cast<std::size_t>(tid)) {
      token_index_.resize(static_cast<std::size_t>(tid) + 1);
    }
    std::vector<int>& ids = token_index_[static_cast<std::size_t>(tid)];
    if (std::find(ids.begin(), ids.end(), key.id) == ids.end()) ids.push_back(key.id);
  }
}

const std::vector<int>& Spell::candidates(const std::vector<int>& token_ids) const {
  thread_local std::vector<int> out;
  out.clear();
  for (const int tid : token_ids) {
    if (tid < 0 || static_cast<std::size_t>(tid) >= token_index_.size()) continue;
    const std::vector<int>& ids = token_index_[static_cast<std::size_t>(tid)];
    out.insert(out.end(), ids.begin(), ids.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int Spell::best_match(const std::vector<int>& token_ids, std::size_t num_tokens,
                      bool& exact) const {
  exact = false;
  int best_id = -1;
  std::size_t best_lcs = 0;
  for (const int id : candidates(token_ids)) {
    const std::vector<int>& consts = key_const_ids_[static_cast<std::size_t>(id)];
    // Upper bound check first: even a perfect overlap of the smaller
    // sequence cannot pass the threshold if sizes diverge too far.
    const std::size_t longer = std::max(num_tokens, consts.size());
    const double needed = static_cast<double>(longer) / t_;
    if (static_cast<double>(std::min(num_tokens, consts.size())) < needed) continue;
    const std::size_t l = common::lcs_length_ids(token_ids, consts);
    if (static_cast<double>(l) >= needed && l > best_lcs) {
      best_lcs = l;
      best_id = id;
      if (l == num_tokens && l == consts.size()) exact = true;
    }
  }
  return best_id;
}

void Spell::refine_key(LogKey& key, const std::vector<std::string>& tokens) {
  PROF_FRAME("spell.refine");
  FLIGHT_EVENT(kSpellRefine, static_cast<std::uint64_t>(key.id), keys_.size());
  // Align the key's constant tokens with the message; keep common tokens,
  // collapse every divergent run (including pre-existing '*') to one '*'.
  const std::vector<std::string> consts = key.constants();
  const std::vector<std::string> common_seq = common::lcs(consts, tokens);

  std::vector<std::string> merged;
  std::size_t ki = 0, mi = 0, ci = 0;
  const auto emit_star = [&merged] {
    if (merged.empty() || merged.back() != "*") merged.emplace_back("*");
  };
  while (ci < common_seq.size()) {
    const std::string& next = common_seq[ci];
    bool gap = false;
    while (ki < key.tokens.size() && key.tokens[ki] != next) {
      gap = true;
      ++ki;
    }
    while (mi < tokens.size() && tokens[mi] != next) {
      gap = true;
      ++mi;
    }
    if (gap) emit_star();
    merged.push_back(next);
    ++ki;
    ++mi;
    ++ci;
  }
  if (ki < key.tokens.size() || mi < tokens.size()) emit_star();
  key.tokens = std::move(merged);
}

int Spell::consume(std::string_view message) {
  obs::Span span("spell/consume", "logparse");
  PROF_FRAME("spell.consume");
  Scratch& s = scratch();
  common::split_ws_views(message, s.tokens);
  if (s.tokens.empty()) return -1;
  shape_of(s.tokens, s.shape);
  if (const auto it = shape_cache_.find(s.shape); it != shape_cache_.end()) {
    keys_[static_cast<std::size_t>(it->second)].match_count++;
    return it->second;
  }

  // Interned-id view of the message. Unknown tokens (not a constant of any
  // key) map to kAbsent and can never equal a key constant id, which is
  // exactly the behaviour of the old string LCS: they matched nothing.
  s.token_ids.clear();
  for (const std::string_view tok : s.tokens) s.token_ids.push_back(interner_.find(tok));

  bool exact = false;
  const int matched = best_match(s.token_ids, s.tokens.size(), exact);
  if (matched >= 0) {
    LogKey& key = keys_[static_cast<std::size_t>(matched)];
    key.match_count++;
    if (!exact) {
      std::vector<std::string> tokens(s.tokens.begin(), s.tokens.end());
      refine_key(key, tokens);
      // Refinement changed the key's constants: rebuild its cached ids and
      // re-seed its (new) canonical shape so post-refine traffic that
      // produces exactly the refined template still short-circuits. Old
      // shape entries keep pointing at the same id, which stays valid.
      cache_key_constants(key);
      shape_cache_.emplace(common::join(key.tokens, " "), key.id);
      std::lock_guard lock(*match_mu_);
      match_cache_.clear();  // memoized verdicts may predate the refine
    }
    shape_cache_.emplace(s.shape, matched);
    return matched;
  }

  // Found a new key. Digit-bearing tokens start life as variables — Spell
  // would converge there after the second sample anyway, and pre-masking
  // keeps the shape cache consistent from the first line. Adjacent variable
  // tokens keep one '*' each so distinct fields stay distinct
  // ("(TID 3). 2578 bytes" has two fields, not one).
  LogKey key;
  key.id = static_cast<int>(keys_.size());
  for (const std::string_view tok : s.tokens) {
    key.tokens.push_back(common::has_digit(tok) ? std::string("*") : std::string(tok));
  }
  key.match_count = 1;
  keys_.push_back(std::move(key));
  cache_key_constants(keys_.back());
  shape_cache_.emplace(s.shape, keys_.back().id);
  {
    std::lock_guard lock(*match_mu_);
    match_cache_.clear();  // a new key can turn memoized misses into hits
  }
  return keys_.back().id;
}

int Spell::match(std::string_view message) const {
  obs::Span span("spell/match", "logparse");
  PROF_FRAME("spell.match");
  Scratch& s = scratch();
  common::split_ws_views(message, s.tokens);
  if (s.tokens.empty()) return -1;
  shape_of(s.tokens, s.shape);
  if (const auto it = shape_cache_.find(s.shape); it != shape_cache_.end()) return it->second;
  {
    std::lock_guard lock(*match_mu_);
    if (const auto it = match_cache_.find(s.shape); it != match_cache_.end()) {
      return it->second;
    }
  }

  s.token_ids.clear();
  for (const std::string_view tok : s.tokens) s.token_ids.push_back(interner_.find(tok));
  bool exact = false;
  const int verdict = best_match(s.token_ids, s.tokens.size(), exact);

  // Memoize hits *and* misses: repeated detection traffic for shapes never
  // seen in training is the common case under fault injection.
  std::lock_guard lock(*match_mu_);
  if (match_cache_.size() >= kMatchCacheCapacity) match_cache_.clear();
  match_cache_.emplace(s.shape, verdict);
  return verdict;
}

std::size_t Spell::match_cache_size() const {
  std::lock_guard lock(*match_mu_);
  return match_cache_.size();
}

}  // namespace intellog::logparse
