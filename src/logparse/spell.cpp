#include "logparse/spell.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "obs/trace.hpp"

namespace intellog::logparse {

std::string LogKey::to_string() const { return common::join(tokens, " "); }

std::vector<std::string> LogKey::constants() const {
  std::vector<std::string> out;
  for (const auto& t : tokens) {
    if (t != "*") out.push_back(t);
  }
  return out;
}

Spell::Spell(double t) : t_(t) {}

void Spell::restore_keys(std::vector<LogKey> keys) {
  keys_ = std::move(keys);
  shape_cache_.clear();
  token_index_.clear();
  for (const LogKey& key : keys_) index_key(key);
  // Seed the cache with each key's own shape: messages whose variables are
  // all digit-bearing produce exactly this shape, and keys dominated by
  // variable fields ("headroom * *") would otherwise fail the LCS bar.
  for (const LogKey& key : keys_) {
    shape_cache_.emplace(common::join(key.tokens, " "), key.id);
  }
}

std::vector<std::string> Spell::split_tokens(std::string_view message) {
  return common::split_ws(message);
}

std::string Spell::shape_of(const std::vector<std::string>& tokens) {
  std::string out;
  for (const auto& t : tokens) {
    if (!out.empty()) out += ' ';
    out += common::has_digit(t) ? std::string("*") : t;
  }
  return out;
}

void Spell::index_key(const LogKey& key) {
  for (const auto& tok : key.tokens) {
    if (tok == "*") continue;
    auto& ids = token_index_[tok];
    if (ids.empty() || ids.back() != key.id) ids.push_back(key.id);
  }
}

std::vector<int> Spell::candidates(const std::vector<std::string>& tokens) const {
  std::vector<int> out;
  for (const auto& tok : tokens) {
    const auto it = token_index_.find(tok);
    if (it == token_index_.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int Spell::best_match(const std::vector<std::string>& tokens, bool& exact) const {
  exact = false;
  int best_id = -1;
  std::size_t best_lcs = 0;
  for (const int id : candidates(tokens)) {
    const LogKey& key = keys_[static_cast<std::size_t>(id)];
    const std::vector<std::string> consts = key.constants();
    // Upper bound check first: even a perfect overlap of the smaller
    // sequence cannot pass the threshold if sizes diverge too far.
    const std::size_t longer = std::max(tokens.size(), consts.size());
    const double needed = static_cast<double>(longer) / t_;
    if (static_cast<double>(std::min(tokens.size(), consts.size())) < needed) continue;
    const std::size_t l = common::lcs_length(tokens, consts);
    if (static_cast<double>(l) >= needed && l > best_lcs) {
      best_lcs = l;
      best_id = key.id;
      if (l == tokens.size() && l == consts.size()) exact = true;
    }
  }
  return best_id;
}

void Spell::refine_key(LogKey& key, const std::vector<std::string>& tokens) {
  // Align the key's constant tokens with the message; keep common tokens,
  // collapse every divergent run (including pre-existing '*') to one '*'.
  const std::vector<std::string> consts = key.constants();
  const std::vector<std::string> common_seq = common::lcs(consts, tokens);

  std::vector<std::string> merged;
  std::size_t ki = 0, mi = 0, ci = 0;
  const auto emit_star = [&merged] {
    if (merged.empty() || merged.back() != "*") merged.emplace_back("*");
  };
  while (ci < common_seq.size()) {
    const std::string& next = common_seq[ci];
    bool gap = false;
    while (ki < key.tokens.size() && key.tokens[ki] != next) {
      gap = true;
      ++ki;
    }
    while (mi < tokens.size() && tokens[mi] != next) {
      gap = true;
      ++mi;
    }
    if (gap) emit_star();
    merged.push_back(next);
    ++ki;
    ++mi;
    ++ci;
  }
  if (ki < key.tokens.size() || mi < tokens.size()) emit_star();
  key.tokens = std::move(merged);
}

int Spell::consume(std::string_view message) {
  obs::Span span("spell/consume", "logparse");
  const std::vector<std::string> tokens = split_tokens(message);
  if (tokens.empty()) return -1;
  const std::string shape = shape_of(tokens);
  if (const auto it = shape_cache_.find(shape); it != shape_cache_.end()) {
    keys_[static_cast<std::size_t>(it->second)].match_count++;
    return it->second;
  }

  bool exact = false;
  const int matched = best_match(tokens, exact);
  if (matched >= 0) {
    LogKey& key = keys_[static_cast<std::size_t>(matched)];
    key.match_count++;
    if (!exact) refine_key(key, tokens);
    shape_cache_.emplace(shape, matched);
    return matched;
  }

  // Found a new key. Digit-bearing tokens start life as variables — Spell
  // would converge there after the second sample anyway, and pre-masking
  // keeps the shape cache consistent from the first line. Adjacent variable
  // tokens keep one '*' each so distinct fields stay distinct
  // ("(TID 3). 2578 bytes" has two fields, not one).
  LogKey key;
  key.id = static_cast<int>(keys_.size());
  for (const auto& tok : tokens) {
    key.tokens.push_back(common::has_digit(tok) ? std::string("*") : tok);
  }
  key.match_count = 1;
  keys_.push_back(std::move(key));
  index_key(keys_.back());
  shape_cache_.emplace(shape, keys_.back().id);
  return keys_.back().id;
}

int Spell::match(std::string_view message) const {
  obs::Span span("spell/match", "logparse");
  const std::vector<std::string> tokens = split_tokens(message);
  if (tokens.empty()) return -1;
  if (const auto it = shape_cache_.find(shape_of(tokens)); it != shape_cache_.end())
    return it->second;
  bool exact = false;
  return best_match(tokens, exact);
}

}  // namespace intellog::logparse
