#include "logparse/formatter.hpp"

#include <cctype>
#include <cstdio>

#include "common/strings.hpp"

namespace intellog::logparse {

namespace {

// All simulated timestamps are offsets from this fictional run start.
constexpr std::uint64_t kMsPerDay = 86400000ULL;

struct ClockParts {
  unsigned day, hour, minute, second, millis;
};

ClockParts split_clock(std::uint64_t ts_ms) {
  ClockParts p{};
  p.day = static_cast<unsigned>(ts_ms / kMsPerDay) + 1;  // day-of-month, 1-based
  std::uint64_t rem = ts_ms % kMsPerDay;
  p.hour = static_cast<unsigned>(rem / 3600000ULL);
  rem %= 3600000ULL;
  p.minute = static_cast<unsigned>(rem / 60000ULL);
  rem %= 60000ULL;
  p.second = static_cast<unsigned>(rem / 1000ULL);
  p.millis = static_cast<unsigned>(rem % 1000ULL);
  return p;
}

std::uint64_t join_clock(unsigned day, unsigned hour, unsigned minute, unsigned second,
                         unsigned millis) {
  return static_cast<std::uint64_t>(day - 1) * kMsPerDay + hour * 3600000ULL +
         minute * 60000ULL + second * 1000ULL + millis;
}

bool parse_uint(std::string_view s, unsigned& out) {
  if (s.empty()) return false;
  unsigned v = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    v = v * 10 + static_cast<unsigned>(c - '0');
  }
  out = v;
  return true;
}

/// Hadoop format: "2019-06-DD HH:MM:SS,mmm LEVEL [thread] class: message"
class HadoopFormatter final : public Formatter {
 public:
  std::optional<LogRecord> parse(std::string_view line) const override {
    // Fixed-width timestamp: "2019-06-DD HH:MM:SS,mmm " = 24 chars.
    if (line.size() < 25 || line.substr(0, 8) != "2019-06-") return std::nullopt;
    unsigned day, hour, minute, second, millis;
    if (!parse_uint(line.substr(8, 2), day) || !parse_uint(line.substr(11, 2), hour) ||
        !parse_uint(line.substr(14, 2), minute) || !parse_uint(line.substr(17, 2), second) ||
        line[19] != ',' || !parse_uint(line.substr(20, 3), millis))
      return std::nullopt;
    std::string_view rest = common::trim(line.substr(24));

    LogRecord rec;
    rec.timestamp_ms = join_clock(day, hour, minute, second, millis);
    const std::size_t sp1 = rest.find(' ');
    if (sp1 == std::string_view::npos) return std::nullopt;
    rec.level = std::string(rest.substr(0, sp1));
    rest = common::trim(rest.substr(sp1));
    if (!rest.empty() && rest.front() == '[') {
      const std::size_t close = rest.find(']');
      if (close == std::string_view::npos) return std::nullopt;
      rest = common::trim(rest.substr(close + 1));
    }
    const std::size_t colon = rest.find(": ");
    if (colon == std::string_view::npos) return std::nullopt;
    rec.source = std::string(rest.substr(0, colon));
    rec.content = std::string(rest.substr(colon + 2));
    return rec;
  }

  std::string render(const LogRecord& rec) const override {
    const ClockParts p = split_clock(rec.timestamp_ms);
    char buf[64];
    std::snprintf(buf, sizeof buf, "2019-06-%02u %02u:%02u:%02u,%03u", p.day, p.hour, p.minute,
                  p.second, p.millis);
    return std::string(buf) + " " + rec.level + " [main] " + rec.source + ": " + rec.content;
  }

  std::string_view name() const override { return "hadoop"; }
};

/// Spark log4j default: "19/06/DD HH:MM:SS LEVEL class: message"
class SparkFormatter final : public Formatter {
 public:
  std::optional<LogRecord> parse(std::string_view line) const override {
    if (line.size() < 19 || line.substr(0, 6) != "19/06/") return std::nullopt;
    unsigned day, hour, minute, second;
    if (!parse_uint(line.substr(6, 2), day) || line[8] != ' ' ||
        !parse_uint(line.substr(9, 2), hour) || !parse_uint(line.substr(12, 2), minute) ||
        !parse_uint(line.substr(15, 2), second))
      return std::nullopt;
    std::string_view rest = common::trim(line.substr(18));

    LogRecord rec;
    rec.timestamp_ms = join_clock(day, hour, minute, second, 0);
    const std::size_t sp1 = rest.find(' ');
    if (sp1 == std::string_view::npos) return std::nullopt;
    rec.level = std::string(rest.substr(0, sp1));
    rest = common::trim(rest.substr(sp1));
    const std::size_t colon = rest.find(": ");
    if (colon == std::string_view::npos) return std::nullopt;
    rec.source = std::string(rest.substr(0, colon));
    rec.content = std::string(rest.substr(colon + 2));
    return rec;
  }

  std::string render(const LogRecord& rec) const override {
    const ClockParts p = split_clock(rec.timestamp_ms);
    char buf[32];
    std::snprintf(buf, sizeof buf, "19/06/%02u %02u:%02u:%02u", p.day, p.hour, p.minute,
                  p.second);
    return std::string(buf) + " " + rec.level + " " + rec.source + ": " + rec.content;
  }

  std::string_view name() const override { return "spark"; }
};

const HadoopFormatter kHadoop;
const SparkFormatter kSpark;

}  // namespace

std::unique_ptr<Formatter> make_hadoop_formatter() { return std::make_unique<HadoopFormatter>(); }
std::unique_ptr<Formatter> make_spark_formatter() { return std::make_unique<SparkFormatter>(); }

const Formatter* detect_format(std::string_view sample_line) {
  if (kHadoop.parse(sample_line)) return &kHadoop;
  if (kSpark.parse(sample_line)) return &kSpark;
  return nullptr;
}

}  // namespace intellog::logparse
