#include "logparse/formatter.hpp"

#include <cctype>
#include <cstdio>
#include <cstring>

#include "common/strings.hpp"
#include "logparse/scanner.hpp"

namespace intellog::logparse {

namespace {

// All simulated timestamps are offsets from this fictional run start.
constexpr std::uint64_t kMsPerDay = 86400000ULL;

struct ClockParts {
  unsigned day, hour, minute, second, millis;
};

ClockParts split_clock(std::uint64_t ts_ms) {
  ClockParts p{};
  p.day = static_cast<unsigned>(ts_ms / kMsPerDay) + 1;  // day-of-month, 1-based
  std::uint64_t rem = ts_ms % kMsPerDay;
  p.hour = static_cast<unsigned>(rem / 3600000ULL);
  rem %= 3600000ULL;
  p.minute = static_cast<unsigned>(rem / 60000ULL);
  rem %= 60000ULL;
  p.second = static_cast<unsigned>(rem / 1000ULL);
  p.millis = static_cast<unsigned>(rem % 1000ULL);
  return p;
}

std::uint64_t join_clock(unsigned day, unsigned hour, unsigned minute, unsigned second,
                         unsigned millis) {
  return static_cast<std::uint64_t>(day - 1) * kMsPerDay + hour * 3600000ULL +
         minute * 60000ULL + second * 1000ULL + millis;
}

// Reads a 2-digit field already validated by all_digits().
unsigned two_digits(std::string_view line, std::size_t pos) {
  return static_cast<unsigned>(line[pos] - '0') * 10 +
         static_cast<unsigned>(line[pos + 1] - '0');
}

// True when line starts with the 8 literal bytes of pat — one 64-bit
// compare on the fast path instead of a byte loop.
bool starts_with8(std::string_view line, const char* pat) {
  std::uint64_t want;
  std::memcpy(&want, pat, 8);
  return line.size() >= 8 && swar::load8(line.data()) == want;
}

/// Hadoop format: "2019-06-DD HH:MM:SS,mmm LEVEL [thread] class: message"
class HadoopFormatter final : public Formatter {
 public:
  bool parse_view(std::string_view line, RecordView* out) const override {
    // Fixed-width timestamp: "2019-06-DD HH:MM:SS,mmm " = 24 chars. The
    // prefix is one 8-byte compare and the clock digits are two SWAR
    // digit-range checks, so a clean line reaches the field split with
    // almost no branching.
    if (line.size() < 25 || !starts_with8(line, "2019-06-")) return false;
    // "DD HH:MM:SS,mmm": digits at 8-9, 11-12, 14-15, 17-18 and 20-22.
    if (!all_digits(line, 8, 2) || !all_digits(line, 11, 2) || !all_digits(line, 14, 2) ||
        !all_digits(line, 17, 2) || line[19] != ',' || !all_digits(line, 20, 3))
      return false;
    const unsigned millis = two_digits(line, 20) * 10 + static_cast<unsigned>(line[22] - '0');
    std::string_view rest = common::trim(line.substr(24));

    out->timestamp_ms = join_clock(two_digits(line, 8), two_digits(line, 11),
                                   two_digits(line, 14), two_digits(line, 17), millis);
    const std::size_t sp1 = rest.find(' ');
    if (sp1 == std::string_view::npos) return false;
    out->level = rest.substr(0, sp1);
    rest = common::trim(rest.substr(sp1));
    if (!rest.empty() && rest.front() == '[') {
      const std::size_t close = rest.find(']');
      if (close == std::string_view::npos) return false;
      rest = common::trim(rest.substr(close + 1));
    }
    const std::size_t colon = rest.find(": ");
    if (colon == std::string_view::npos) return false;
    out->source = rest.substr(0, colon);
    out->content = rest.substr(colon + 2);
    return true;
  }

  std::string render(const LogRecord& rec) const override {
    const ClockParts p = split_clock(rec.timestamp_ms);
    char buf[64];
    std::snprintf(buf, sizeof buf, "2019-06-%02u %02u:%02u:%02u,%03u", p.day, p.hour, p.minute,
                  p.second, p.millis);
    return std::string(buf) + " " + rec.level + " [main] " + rec.source + ": " + rec.content;
  }

  std::string_view name() const override { return "hadoop"; }
};

/// Spark log4j default: "19/06/DD HH:MM:SS LEVEL class: message"
class SparkFormatter final : public Formatter {
 public:
  bool parse_view(std::string_view line, RecordView* out) const override {
    // "19/06/DD H" is an 8-byte prefix-plus-digit probe: check the first
    // 6 literal bytes and the clock digits with SWAR range tests.
    if (line.size() < 19 || line.substr(0, 6) != "19/06/") return false;
    if (!all_digits(line, 6, 2) || line[8] != ' ' || !all_digits(line, 9, 2) ||
        !all_digits(line, 12, 2) || !all_digits(line, 15, 2))
      return false;
    std::string_view rest = common::trim(line.substr(18));

    out->timestamp_ms = join_clock(two_digits(line, 6), two_digits(line, 9),
                                   two_digits(line, 12), two_digits(line, 15), 0);
    const std::size_t sp1 = rest.find(' ');
    if (sp1 == std::string_view::npos) return false;
    out->level = rest.substr(0, sp1);
    rest = common::trim(rest.substr(sp1));
    const std::size_t colon = rest.find(": ");
    if (colon == std::string_view::npos) return false;
    out->source = rest.substr(0, colon);
    out->content = rest.substr(colon + 2);
    return true;
  }

  std::string render(const LogRecord& rec) const override {
    const ClockParts p = split_clock(rec.timestamp_ms);
    char buf[32];
    std::snprintf(buf, sizeof buf, "19/06/%02u %02u:%02u:%02u", p.day, p.hour, p.minute,
                  p.second);
    return std::string(buf) + " " + rec.level + " " + rec.source + ": " + rec.content;
  }

  std::string_view name() const override { return "spark"; }
};

const HadoopFormatter kHadoop;
const SparkFormatter kSpark;

}  // namespace

std::unique_ptr<Formatter> make_hadoop_formatter() { return std::make_unique<HadoopFormatter>(); }
std::unique_ptr<Formatter> make_spark_formatter() { return std::make_unique<SparkFormatter>(); }

const Formatter* detect_format(std::string_view sample_line) {
  RecordView v;
  if (kHadoop.parse_view(sample_line, &v)) return &kHadoop;
  if (kSpark.parse_view(sample_line, &v)) return &kSpark;
  return nullptr;
}

}  // namespace intellog::logparse
