// Log-file I/O: sessions as on-disk log files, one file per YARN container.
//
// This is the boundary a real deployment uses — the simulator (or a real
// cluster's log aggregation) writes `<dir>/<container_id>.log` files in the
// system's native format, and the pipeline reads them back with format
// auto-detection. `tools/loggen` and the `intellog` CLI are built on this.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "logparse/formatter.hpp"
#include "logparse/session.hpp"

namespace intellog::logparse {

/// Writes one session to `path` in the given format.
void write_session_file(const Formatter& fmt, const Session& session, const std::string& path);

/// Writes each session to `dir/<container_id>.log`. Creates `dir`.
void write_log_directory(const Formatter& fmt, const std::vector<Session>& sessions,
                         const std::string& dir);

/// Reads every `*.log` file under `dir` (recursively); each file becomes a
/// session whose container id is the file's stem. The format is detected
/// per file from its first parseable line. Files in no known format are
/// skipped.
std::vector<Session> read_log_directory(const std::string& dir, std::string_view system = {});

/// Reads a single log file as one session.
Session read_session_file(const std::string& path, std::string_view system = {});

}  // namespace intellog::logparse
