// Log-file I/O: sessions as on-disk log files, one file per YARN container.
//
// This is the boundary a real deployment uses — the simulator (or a real
// cluster's log aggregation) writes `<dir>/<container_id>.log` files in the
// system's native format, and the pipeline reads them back with format
// auto-detection. `tools/loggen` and the `intellog` CLI are built on this.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "logparse/formatter.hpp"
#include "logparse/session.hpp"

namespace intellog::logparse {

/// Writes one session to `path` in the given format.
void write_session_file(const Formatter& fmt, const Session& session, const std::string& path);

/// Writes each session to `dir/<container_id>.log`. Creates `dir`.
void write_log_directory(const Formatter& fmt, const std::vector<Session>& sessions,
                         const std::string& dir);

/// Reads every `*.log` file under `dir` (recursively); each file becomes a
/// session whose container id is the file's stem. The format is detected
/// per file from its first parseable line. Files in no known format are
/// skipped with a warning on stderr (counted in
/// `intellog_ingest_skipped_files_total` when a metrics registry is
/// installed).
std::vector<Session> read_log_directory(const std::string& dir, std::string_view system = {});

/// Reads a single log file as one session.
Session read_session_file(const std::string& path, std::string_view system = {});

// --- resilient ingestion (chaos-hardened path) ------------------------------

/// Everything read_log_directory_resilient learned about a directory:
/// sessions built from the surviving records, the quarantine channel
/// (capped at options.max_quarantined entries across all files), and the
/// merged ingest statistics.
struct IngestReport {
  std::vector<Session> sessions;
  std::vector<QuarantinedLine> quarantined;
  IngestStats stats;
};

/// Hardened read_log_directory: never throws on input (a missing or
/// unreadable directory yields an empty report with a stderr warning).
/// Every suspicious line lands in the quarantine channel with its byte
/// offset; exact duplicates are dropped and out-of-order timestamps are
/// reinserted per `options`. Exports `intellog_ingest_*` metrics when a
/// registry is installed: `lines_total`, `records_total`,
/// `quarantined_total{reason=…}`, `duplicates_dropped_total`,
/// `reordered_total`, `skipped_files_total`.
IngestReport read_log_directory_resilient(const std::string& dir, std::string_view system = {},
                                          const IngestOptions& options = {});

/// Hardened single-file read. Files in no known format quarantine their
/// first non-empty line with reason "no-known-format".
SessionIngest read_session_file_resilient(const std::string& path, std::string_view system = {},
                                          const IngestOptions& options = {});

}  // namespace intellog::logparse
