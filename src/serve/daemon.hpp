// The `intellog serve` supervision loop.
//
// One daemon owns a root directory of tenant spools (`<root>/<tenant>/`),
// one TenantShard per tenant, and one ThreadPool that shard ticks are
// multiplexed over. Each supervision tick fans every shard's tick() out to
// the pool, waits with a per-shard heartbeat deadline, and applies the
// results on the daemon thread (ledger appends, metrics, checkpoints,
// status) — shards never touch the filesystem for writes themselves.
//
// Wedged-shard recovery: a tick that misses its heartbeat deadline is
// abandoned — the shard instance and its still-running future move to an
// orphan graveyard (kept alive until the task actually returns, so nothing
// is freed under a running thread), and a replacement shard with a bumped
// epoch is restored from the tenant's last checkpoint. Stale results from
// orphaned epochs are discarded by epoch guard.
//
// Shutdown paths:
//  - SIGTERM/SIGINT (or max_ticks): graceful drain — close every open
//    session, flush a final checkpoint + status, drain the pool.
//  - kill_after_ticks (soak harness): simulated crash — return mid-flight
//    with no drain and no final checkpoint, so recovery is exercised from
//    whatever the periodic checkpoint cadence left behind.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "core/intellog.hpp"
#include "serve/tenant.hpp"

namespace intellog::serve {

struct ServeOptions {
  std::string root;        ///< directory of tenant subdirectories
  std::string model_path;  ///< default model; `<tenant>/model.json` overrides

  std::size_t jobs = 2;          ///< pool threads shard ticks multiplex over
  std::uint64_t poll_ms = 50;    ///< sleep between ticks when nothing was admitted
  std::uint64_t checkpoint_every_ticks = 8;
  std::uint64_t heartbeat_timeout_ms = 2000;  ///< wedged-shard deadline
  std::uint64_t metrics_interval_s = 0;       ///< 0: flush metrics every tick

  std::uint64_t max_ticks = 0;        ///< 0: run until stop signal; else drain after N
  std::uint64_t kill_after_ticks = 0; ///< soak: simulated crash after N ticks (no drain)
  bool drain_on_empty = false;        ///< exit cleanly once every tenant is idle
  bool handle_signals = true;         ///< install SIGTERM/SIGINT stop handlers

  std::string status_path;       ///< empty: no status snapshots
  std::string metrics_path;      ///< empty: no metrics snapshots
  std::string alert_rules_path;  ///< empty: AlertEngine::serve_rules()

  /// Flight-recorder blackbox file: enables the always-on event journal,
  /// rotates a prior dump to "<path>.1", and pre-opens the fd the crash
  /// handler dumps to on SIGSEGV/SIGBUS/SIGABRT/SIGFPE (and the graceful
  /// drain / watchdog paths snapshot to). Empty: recorder stays as-is.
  std::string blackbox;

  /// "HOST:PORT": mount the live admin plane (/metrics, /status.json,
  /// /healthz, /readyz, /tenants, /alerts, /profilez) on an embedded HTTP
  /// server. Port 0 binds an ephemeral port (resolved address goes to
  /// stderr and http_port()). Empty: no HTTP server.
  std::string listen;
  /// /readyz staleness probe: a tenant whose last checkpoint (or, before
  /// any, daemon start) is older than this reports not-ready. 0 disables.
  std::uint64_t checkpoint_deadline_ms = 60'000;

  TenantShard::Options shard;  ///< quotas/breaker/limits applied to every tenant

  /// Test-only fault injection, called on the pool thread at the start of
  /// every shard tick (sleep here to wedge a shard).
  std::function<void(const std::string& tenant, std::uint64_t tick)> fault_hook;
};

/// What one daemon run did, for callers (CLI exit summary, soak asserts).
struct ServeSummary {
  std::uint64_t ticks = 0;
  int stop_signal = 0;  ///< signal that triggered the drain, 0 when none
  bool killed = false;  ///< kill_after_ticks fired: state is crash-consistent
  std::map<std::string, TenantAccounting> tenants;
  std::map<std::string, std::uint64_t> restarts;         ///< wedged-shard restarts
  std::map<std::string, std::string> breaker_states;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoints_corrupt = 0;  ///< found corrupt at startup, renamed aside
  std::uint16_t http_port = 0;  ///< bound admin-plane port, 0 when --listen was off
};

class ServeDaemon {
 public:
  /// Discovers tenants, loads models, restores per-tenant checkpoints
  /// (corrupt ones are renamed to `.checkpoint.json.corrupt` and counted,
  /// never trusted). Throws std::runtime_error on unusable root/model.
  explicit ServeDaemon(ServeOptions options);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Runs the supervision loop until a stop condition; blocking.
  ServeSummary run();

  /// Tenant names in service order (sorted).
  std::vector<std::string> tenants() const;

  /// The admin plane's bound port; 0 when Options::listen was empty. The
  /// server accepts from construction on (readiness says "starting" until
  /// the first supervision tick publishes real state).
  std::uint16_t http_port() const;

  /// Per-tenant checkpoint file path (under the tenant's spool directory).
  static std::string checkpoint_path(const std::string& tenant_dir);

 private:
  struct TenantState;
  struct Orphan;

  const core::IntelLog& model_for(const std::string& tenant_dir);
  void restore_or_reset(TenantState& ts);
  void write_checkpoint(TenantState& ts);
  void apply_result(TenantState& ts, TickResult result);
  void flush_status(std::uint64_t now_ms);
  void flush_metrics();

  ServeOptions options_;
  std::map<std::string, std::unique_ptr<core::IntelLog>> models_;  ///< by path
  std::vector<std::unique_ptr<TenantState>> tenants_;
  std::vector<std::unique_ptr<Orphan>> orphans_;
  ServeSummary summary_;
  std::uint64_t last_metrics_ns_ = 0;
  std::uint64_t last_checkpoint_ns_ = 0;
  std::uint64_t start_ns_ = 0;  ///< checkpoint-staleness reference before any write

  struct AlertsImpl;  ///< tseries + engine, hidden to keep includes local
  std::unique_ptr<AlertsImpl> alerts_;
  struct HttpImpl;  ///< embedded server + status board, hidden likewise
  std::unique_ptr<HttpImpl> http_;
};

}  // namespace intellog::serve
