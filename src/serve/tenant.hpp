// One tenant's slice of the `intellog serve` daemon.
//
// A tenant is a spool directory: producers atomically rename finished
// `<container>.log` files into it (one file = one session), and the shard
// consumes them through that tenant's own model + OnlineDetector. Every
// robustness mechanism is per-tenant so one misbehaving stream degrades
// only itself:
//
//  - Admission quotas: at most `max_records_per_tick` records and
//    `max_files_per_tick` files per tick — lossless backpressure, the
//    backlog simply stays in the spool.
//  - Shedding: when the pending backlog exceeds the file/byte caps, or a
//    single file trips the parse-bomb guard, whole files are shed to the
//    tenant's quarantine ledger with provenance instead of being parsed —
//    bounded work no matter what the producer does.
//  - Circuit breaker: a quarantine storm (garbage flood) or a shed event
//    opens the breaker; admission pauses for `open_ticks`, then a half-open
//    probe decides between closing it and re-opening. Files are never lost
//    while the breaker is open.
//  - Checkpoint/restore: cursor map + done-set + accounting + breaker state
//    + the detector checkpoint in one CRC32-stamped document, written with
//    atomic rename. A killed daemon resumes with no double-counted
//    sessions; a corrupt checkpoint is renamed aside and counted, never
//    trusted.
//
// tick() performs no filesystem writes: everything to persist (reports,
// shed ledger entries) comes back in the TickResult and is written by the
// daemon thread. That is what makes in-process shard restarts safe — a
// wedged task abandoned by the supervisor can keep running on its orphaned
// shard instance without racing the replacement's output files.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/online.hpp"
#include "logparse/session.hpp"

namespace intellog::serve {

/// Per-tenant admission and backlog quotas. Defaults are sized for the
/// soak/test scale; the daemon scales them via CLI flags.
struct TenantQuotas {
  std::size_t max_records_per_tick = 5000;  ///< admission cap (lossless)
  std::size_t max_files_per_tick = 64;      ///< files opened per tick
  std::size_t max_backlog_files = 1024;     ///< pending files beyond this shed oldest-first
  std::size_t max_backlog_bytes = 256u << 20;  ///< pending bytes cap, same policy
  std::size_t max_file_bytes = 32u << 20;   ///< parse-bomb guard: larger files shed whole
};

/// Circuit-breaker tuning. The breaker trips on this tick's parse quality,
/// not lifetime averages, so a tenant that recovers closes again quickly.
struct BreakerConfig {
  double quarantine_frac = 0.5;   ///< trip when > frac of a tick's lines quarantine
  std::size_t min_lines = 64;     ///< ... with at least this many lines seen
  std::uint64_t open_ticks = 4;   ///< admission pause before the half-open probe
};

enum class BreakerState { Closed, Open, HalfOpen };
std::string_view to_string(BreakerState s);

/// Lifetime accounting for one tenant. Persisted inside the checkpoint, so
/// kill-and-resume reproduces the exact totals of an uninterrupted run.
struct TenantAccounting {
  std::uint64_t records_admitted = 0;
  std::uint64_t lines_seen = 0;
  std::uint64_t lines_quarantined = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t sessions_anomalous = 0;
  std::uint64_t files_done = 0;
  std::uint64_t files_shed = 0;
  std::uint64_t bytes_shed = 0;
  std::uint64_t breaker_trips = 0;
  /// Detect-path latency accounting (sum over per-record consume() wall
  /// time). mean = consume_us_sum / max(1, records_admitted).
  double consume_us_sum = 0.0;

  common::Json to_json() const;
  static TenantAccounting from_json(const common::Json& j);
};

/// One shed decision, with enough provenance to find the original bytes.
struct ShedRecord {
  std::string file;
  std::uint64_t bytes = 0;
  std::string reason;  ///< "parse-bomb" | "backlog-files" | "backlog-bytes"

  common::Json to_json() const;
};

/// What one tick produced; applied (written/counted) by the daemon thread.
struct TickResult {
  std::uint64_t epoch = 0;  ///< shard incarnation; stale results are discarded
  std::size_t records_admitted = 0;
  std::size_t lines_seen = 0;
  std::size_t lines_quarantined = 0;
  std::size_t sessions_closed = 0;
  std::size_t files_shed = 0;
  bool breaker_tripped = false;
  std::vector<core::AnomalyReport> reports;  ///< sessions closed this tick
  std::vector<ShedRecord> shed;              ///< to append to the shed ledger
  std::vector<logparse::QuarantinedLine> quarantined;  ///< quarantine ledger entries
  std::size_t pending_files = 0;             ///< backlog remaining after the tick
  std::uint64_t pending_bytes = 0;
  /// Arrival stamps (container id -> spool-file mtime, unix ms) of every
  /// session closed this tick — the daemon turns these into end-to-end
  /// latency observations at ledger-write time.
  std::map<std::string, std::uint64_t> session_ingress_ms;
};

class TenantShard {
 public:
  struct Options {
    TenantQuotas quotas;
    BreakerConfig breaker;
    core::DetectorLimits limits;
    logparse::IngestOptions ingest;
    std::size_t detect_jobs = 1;
  };

  /// `model` must outlive the shard. `spool_dir` is the tenant directory
  /// under the daemon's root. Detection state starts empty; call restore()
  /// to resume from a checkpoint document.
  TenantShard(std::string tenant, std::string spool_dir, const core::IntelLog& model,
              Options options, std::uint64_t epoch);

  /// Runs one supervision tick: shed, admit, detect, breaker bookkeeping.
  /// Mutates only in-memory state; all filesystem writes ride the result.
  TickResult tick();

  // --- checkpoint / restore --------------------------------------------------
  static constexpr int kCheckpointVersion = 1;

  /// Snapshot of cursors, done-set, accounting, breaker, detector — CRC32
  /// stamped. Safe to call between ticks (the daemon thread owns it then).
  common::Json checkpoint() const;

  /// Restores the mutable state from a checkpoint() document. Throws one
  /// clear std::runtime_error (wrong kind/version/checksum/shape); the
  /// shard is left in its freshly-constructed state on failure.
  void restore(const common::Json& doc);

  const std::string& tenant() const { return tenant_; }
  const std::string& spool_dir() const { return spool_dir_; }
  std::uint64_t epoch() const { return epoch_; }
  BreakerState breaker_state() const { return breaker_state_; }
  const TenantAccounting& accounting() const { return accounting_; }
  const core::OnlineDetector& detector() const { return *online_; }
  std::size_t open_sessions() const { return online_->open_sessions().size(); }

  /// Drains every still-open session (graceful shutdown path); returned
  /// reports are already counted into the accounting.
  std::vector<core::AnomalyReport> close_all();

  /// Arrival stamps of sessions closed outside a tick (close_all drain);
  /// forwards OnlineDetector::take_closed_ingress.
  std::map<std::string, std::uint64_t> take_closed_ingress();

 private:
  struct PendingFile {
    std::string path;
    std::string name;
    std::uint64_t bytes = 0;
    std::uint64_t mtime_unix_ms = 0;  ///< spool arrival time (0: stat failed)
  };

  std::vector<PendingFile> scan_spool() const;
  void consume_file(const PendingFile& file, std::size_t& record_budget, TickResult& out);

  std::string tenant_;
  std::string spool_dir_;
  const core::IntelLog& model_;
  Options options_;
  std::uint64_t epoch_;

  std::unique_ptr<core::OnlineDetector> online_;
  std::map<std::string, std::uint64_t> cursors_;  ///< file name -> records consumed
  std::set<std::string> done_;                    ///< fully consumed or shed
  TenantAccounting accounting_;

  BreakerState breaker_state_ = BreakerState::Closed;
  std::uint64_t breaker_open_left_ = 0;  ///< ticks until half-open

  std::uint32_t flight_str_ = 0;  ///< interned tenant name (0: recorder off)
  std::uint64_t ticks_ = 0;       ///< ticks run by this shard instance
};

}  // namespace intellog::serve
