// Async-signal-safe stop flag shared by the long-running entry points.
//
// `intellog serve` and streaming `detect --checkpoint` both need SIGTERM/
// SIGINT to mean "finish the current unit of work, flush a final
// checkpoint, exit cleanly" rather than the default immediate death. The
// handler only sets a sig_atomic_t; the work loops poll stop_signal() at
// their own (amortized) cadence and run the drain path on the main thread,
// so nothing async-unsafe ever happens in signal context.
#pragma once

namespace intellog::serve {

/// Installs SIGTERM + SIGINT handlers that record the signal number.
/// Idempotent; later installs keep the first flag. Does not use SA_RESTART,
/// so blocking reads are interrupted and the poll loop sees the flag soon.
void install_stop_signals();

/// The last stop signal delivered, or 0 when none. One volatile read.
int stop_signal();

/// Clears the flag (tests and in-process restarts).
void clear_stop_signal();

/// Marks a stop as if `sig` had been delivered (in-process drain triggers,
/// e.g. the soak harness asking a daemon to stop without raise()).
void request_stop(int sig);

/// Installs the flight recorder's fatal-signal handlers (SIGSEGV/SIGBUS/
/// SIGABRT/SIGFPE): journal the signal, freeze the rings, dump to the
/// pre-opened blackbox fd, re-raise. Thin wrapper over
/// obs::flight::install_crash_handlers so serve owns all of its signal
/// dispositions in one place.
void install_crash_signals();

}  // namespace intellog::serve
