#include "serve/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/thread_pool.hpp"
#include "core/model_io.hpp"
#include "obs/export/status.hpp"
#include "obs/flight/flight.hpp"
#include "obs/http/admin.hpp"
#include "obs/http/http.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries/alerts.hpp"
#include "obs/timeseries/timeseries.hpp"
#include "serve/signals.hpp"

namespace intellog::serve {

namespace fs = std::filesystem;

namespace {

obs::Labels tenant_labels(const std::string& tenant) { return {{"tenant", tenant}}; }

void append_jsonl(const std::string& path, const common::Json& line) {
  std::ofstream out(path, std::ios::app);
  if (out) out << line.dump() << "\n";
}

common::Json quarantine_to_json(const logparse::QuarantinedLine& q) {
  common::Json j = common::Json::object();
  j["file"] = q.file;
  j["line_no"] = q.line_no;
  j["byte_offset"] = static_cast<std::int64_t>(q.byte_offset);
  j["raw_bytes"] = q.raw_bytes;
  j["reason"] = q.reason;
  j["text"] = q.text;
  return j;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Wall-clock now, unix ms — the same clock spool-file mtimes live on, so
/// `now - ingress` is a real end-to-end latency even across a daemon restart.
std::uint64_t unix_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

struct ServeDaemon::TenantState {
  std::string name;
  std::string dir;
  const core::IntelLog* model = nullptr;
  std::uint64_t epoch = 1;
  std::unique_ptr<TenantShard> shard;
  std::uint64_t restarts = 0;
  std::size_t pending_files = 0;
  std::uint64_t pending_bytes = 0;
  std::uint64_t last_checkpoint_ns = 0;  ///< 0: none written yet
};

/// A shard abandoned by the watchdog, kept alive until its tick() task
/// actually returns — nothing is freed under a running pool thread.
struct ServeDaemon::Orphan {
  std::future<TickResult> fut;
  std::unique_ptr<TenantShard> shard;
};

struct ServeDaemon::AlertsImpl {
  obs::ts::TimeSeriesStore store;
  obs::ts::AlertEngine engine;
  explicit AlertsImpl(std::vector<obs::ts::AlertRule> rules) : engine(std::move(rules)) {}
};

struct ServeDaemon::HttpImpl {
  obs::http::StatusBoard board;  ///< must outlive the server (handlers read it)
  obs::http::HttpServer server;
  explicit HttpImpl(obs::http::HttpServer::Options opts) : server(std::move(opts)) {}
};

std::string ServeDaemon::checkpoint_path(const std::string& tenant_dir) {
  return (fs::path(tenant_dir) / ".checkpoint.json").string();
}

const core::IntelLog& ServeDaemon::model_for(const std::string& tenant_dir) {
  std::string path = (fs::path(tenant_dir) / "model.json").string();
  if (!fs::exists(path)) path = options_.model_path;
  if (path.empty()) {
    throw std::runtime_error("serve: no model for tenant " + tenant_dir +
                             " (pass --model or drop a model.json into the tenant dir)");
  }
  auto it = models_.find(path);
  if (it == models_.end()) {
    it = models_.emplace(path, std::make_unique<core::IntelLog>(core::load_model_file(path)))
             .first;
  }
  return *it->second;
}

void ServeDaemon::restore_or_reset(TenantState& ts) {
  const std::string path = checkpoint_path(ts.dir);
  if (!fs::exists(path)) return;
  try {
    ts.shard->restore(common::Json::parse(read_file(path)));
  } catch (const std::exception&) {
    // Corrupt checkpoints are renamed aside (never deleted — they are the
    // forensic evidence) and the tenant starts fresh from its spool.
    std::error_code ec;
    fs::rename(path, path + ".corrupt", ec);
    ++summary_.checkpoints_corrupt;
    if (obs::MetricsRegistry* reg = obs::registry()) {
      reg->counter("intellog_serve_checkpoint_corrupt_total", tenant_labels(ts.name)).add(1);
    }
    // restore() throws before mutating, so the shard is still fresh here.
  }
}

ServeDaemon::ServeDaemon(ServeOptions options) : options_(std::move(options)) {
  if (!fs::is_directory(options_.root)) {
    throw std::runtime_error("serve: root is not a directory: " + options_.root);
  }
  // Before tenant discovery: shard constructors intern their tenant names
  // into the recorder's string table, which requires it to be live first.
  if (!options_.blackbox.empty()) {
    obs::flight::flight_enable();
    if (!obs::flight::flight_set_dump_path(options_.blackbox)) {
      throw std::runtime_error("serve: cannot open blackbox file: " + options_.blackbox);
    }
  }
  alerts_ = std::make_unique<AlertsImpl>(
      options_.alert_rules_path.empty()
          ? obs::ts::AlertEngine::serve_rules()
          : obs::ts::AlertEngine::rules_from_json(
                common::Json::parse(read_file(options_.alert_rules_path))));

  for (fs::directory_iterator it(options_.root), end; it != end; ++it) {
    if (!it->is_directory()) continue;
    const std::string name = it->path().filename().string();
    if (name.empty() || name[0] == '.') continue;
    auto ts = std::make_unique<TenantState>();
    ts->name = name;
    ts->dir = it->path().string();
    ts->model = &model_for(ts->dir);
    ts->shard = std::make_unique<TenantShard>(name, ts->dir, *ts->model, options_.shard,
                                              ts->epoch);
    tenants_.push_back(std::move(ts));
  }
  if (tenants_.empty()) {
    throw std::runtime_error("serve: no tenant directories under " + options_.root);
  }
  std::sort(tenants_.begin(), tenants_.end(),
            [](const auto& a, const auto& b) { return a->name < b->name; });
  for (auto& ts : tenants_) restore_or_reset(*ts);

  if (obs::MetricsRegistry* reg = obs::registry()) {
    reg->describe("intellog_serve_records_total", "records admitted per tenant");
    reg->describe("intellog_serve_lines_total", "spool lines parsed per tenant");
    reg->describe("intellog_serve_quarantined_total", "spool lines quarantined per tenant");
    reg->describe("intellog_serve_sessions_closed_total", "sessions closed per tenant");
    reg->describe("intellog_serve_anomalous_total", "anomalous sessions per tenant");
    reg->describe("intellog_serve_files_shed_total",
                  "whole spool files shed to the quarantine ledger (backpressure)");
    reg->describe("intellog_serve_bytes_shed_total", "bytes shed with those files");
    reg->describe("intellog_serve_breaker_trips_total", "tenant circuit-breaker trips");
    reg->describe("intellog_serve_shard_restarts_total",
                  "wedged shards replaced by the heartbeat watchdog");
    reg->describe("intellog_serve_checkpoints_total", "tenant checkpoints written");
    reg->describe("intellog_serve_checkpoint_corrupt_total",
                  "corrupt tenant checkpoints found at restore and renamed aside");
    reg->describe("intellog_serve_ticks_total", "supervision ticks");
    reg->describe("intellog_serve_pending_files", "spool backlog per tenant (files)");
    reg->describe("intellog_serve_pending_bytes", "spool backlog per tenant (bytes)");
    reg->describe("intellog_serve_queue_saturation_ratio",
                  "worst tenant backlog as a fraction of the shed threshold "
                  "(>= 1 means shedding)");
    reg->describe("intellog_serve_breakers_open", "tenants whose breaker is not closed");
    reg->describe("intellog_serve_e2e_latency_ms",
                  "end-to-end session latency per tenant: spool-file arrival "
                  "(mtime) to report-ledger write");
  }

  start_ns_ = obs::monotonic_ns();
  if (!options_.listen.empty()) {
    const auto [host, port] = obs::http::split_host_port(options_.listen);
    obs::http::HttpServer::Options hopts;
    hopts.host = host;
    hopts.port = port;
    http_ = std::make_unique<HttpImpl>(hopts);
    obs::http::Readiness starting;
    starting.ready = false;
    starting.reasons.push_back("starting: no supervision tick yet");
    http_->board.publish(common::Json::object(), std::move(starting));
    obs::http::mount_admin_plane(http_->server, http_->board);
    http_->server.start();
    summary_.http_port = http_->server.port();
    // Machine-greppable line for harnesses that listen on an ephemeral port.
    std::fprintf(stderr, "intellog serve: admin plane listening on http://%s:%u\n",
                 host.c_str(), static_cast<unsigned>(http_->server.port()));
  }
}

ServeDaemon::~ServeDaemon() = default;

std::vector<std::string> ServeDaemon::tenants() const {
  std::vector<std::string> out;
  for (const auto& ts : tenants_) out.push_back(ts->name);
  return out;
}

std::uint16_t ServeDaemon::http_port() const {
  return http_ ? http_->server.port() : 0;
}

void ServeDaemon::write_checkpoint(TenantState& ts) {
  obs::write_json_atomic(ts.shard->checkpoint(), checkpoint_path(ts.dir));
  ts.last_checkpoint_ns = obs::monotonic_ns();
  ++summary_.checkpoints_written;
  if (obs::MetricsRegistry* reg = obs::registry()) {
    reg->counter("intellog_serve_checkpoints_total", tenant_labels(ts.name)).add(1);
  }
}

void ServeDaemon::apply_result(TenantState& ts, TickResult r) {
  if (r.epoch != ts.epoch) return;  // stale result from an orphaned incarnation

  for (const auto& rep : r.reports) {
    append_jsonl((fs::path(ts.dir) / ".reports.jsonl").string(), rep.to_json());
  }
  for (const auto& s : r.shed) {
    append_jsonl((fs::path(ts.dir) / ".shed.jsonl").string(), s.to_json());
  }
  for (const auto& q : r.quarantined) {
    append_jsonl((fs::path(ts.dir) / ".quarantine.jsonl").string(), quarantine_to_json(q));
  }

  ts.pending_files = r.pending_files;
  ts.pending_bytes = r.pending_bytes;

  if (obs::MetricsRegistry* reg = obs::registry()) {
    const obs::Labels labels = tenant_labels(ts.name);
    reg->counter("intellog_serve_records_total", labels).add(r.records_admitted);
    reg->counter("intellog_serve_lines_total", labels).add(r.lines_seen);
    reg->counter("intellog_serve_quarantined_total", labels).add(r.lines_quarantined);
    reg->counter("intellog_serve_sessions_closed_total", labels).add(r.sessions_closed);
    reg->counter("intellog_serve_anomalous_total", labels).add(r.reports.size());
    reg->counter("intellog_serve_files_shed_total", labels).add(r.files_shed);
    std::uint64_t shed_bytes = 0;
    for (const auto& s : r.shed) shed_bytes += s.bytes;
    reg->counter("intellog_serve_bytes_shed_total", labels).add(shed_bytes);
    if (r.breaker_tripped) reg->counter("intellog_serve_breaker_trips_total", labels).add(1);
    reg->gauge("intellog_serve_pending_files", labels)
        .set(static_cast<double>(r.pending_files));
    reg->gauge("intellog_serve_pending_bytes", labels)
        .set(static_cast<double>(r.pending_bytes));

    // End-to-end latency: the report ledger for these sessions was just
    // written above, so "now - spool arrival" is the full pipeline time.
    // The exemplar names the session, so a slow bucket is actionable.
    if (!r.session_ingress_ms.empty()) {
      obs::Histogram& hist = reg->histogram("intellog_serve_e2e_latency_ms", labels);
      const std::uint64_t now = unix_now_ms();
      for (const auto& [id, ingress] : r.session_ingress_ms) {
        const double ms = now > ingress ? static_cast<double>(now - ingress) : 0.0;
        hist.observe(ms, id);
      }
    }
  }
}

void ServeDaemon::flush_metrics() {
  if (options_.metrics_path.empty()) return;
  const obs::MetricsRegistry* reg = obs::registry();
  if (!reg) return;
  obs::write_json_atomic(reg->to_json(), options_.metrics_path);
}

void ServeDaemon::flush_status(std::uint64_t now_ms) {
  if (options_.status_path.empty() && !http_) return;
  obs::StatusContext ctx;
  ctx.registry = obs::registry();
  ctx.alerts = &alerts_->engine;
  common::Json doc = obs::build_status(ctx);

  // Aggregate occupancy across shards, so the standard `top`/validator view
  // of a serve status still reads like a detect status. The same pass
  // derives /readyz: every failing condition becomes a reason string.
  obs::http::Readiness rd;
  double saturation = 0.0;
  std::size_t open = 0, buffered = 0, pending_evicted = 0;
  common::Json tenants = common::Json::array();
  for (const auto& ts : tenants_) {
    const core::OnlineDetector& det = ts->shard->detector();
    open += det.open_sessions().size();
    buffered += det.total_buffered_records();
    pending_evicted += det.pending_evicted();

    const BreakerState breaker = ts->shard->breaker_state();
    if (breaker != BreakerState::Closed) {
      rd.ready = false;
      rd.reasons.push_back("breaker " + std::string(to_string(breaker)) + ": " + ts->name);
    }
    if (options_.shard.quotas.max_backlog_files > 0) {
      saturation = std::max(
          saturation, static_cast<double>(ts->pending_files) /
                          static_cast<double>(options_.shard.quotas.max_backlog_files));
    }
    if (options_.checkpoint_deadline_ms != 0) {
      const std::uint64_t ref =
          ts->last_checkpoint_ns != 0 ? ts->last_checkpoint_ns : start_ns_;
      if (obs::monotonic_ns() - ref > options_.checkpoint_deadline_ms * 1'000'000ull) {
        rd.ready = false;
        rd.reasons.push_back("checkpoint stale: " + ts->name);
      }
    }

    common::Json t = common::Json::object();
    t["tenant"] = ts->name;
    t["epoch"] = static_cast<std::int64_t>(ts->epoch);
    t["breaker"] = std::string(to_string(breaker));
    t["open_sessions"] = det.open_sessions().size();
    t["buffered_records"] = det.total_buffered_records();
    t["pending_files"] = ts->pending_files;
    t["pending_bytes"] = static_cast<std::int64_t>(ts->pending_bytes);
    t["restarts"] = static_cast<std::int64_t>(ts->restarts);
    t["checkpoint_age_s"] =
        ts->last_checkpoint_ns == 0
            ? common::Json(nullptr)
            : common::Json(static_cast<double>(obs::monotonic_ns() - ts->last_checkpoint_ns) /
                           1e9);
    t["accounting"] = ts->shard->accounting().to_json();
    if (ctx.registry) {
      if (const obs::Histogram* h = ctx.registry->find_histogram(
              "intellog_serve_e2e_latency_ms", tenant_labels(ts->name))) {
        t["e2e_latency_ms"] = obs::histogram_to_json(*h);
      }
    }
    tenants.push_back(std::move(t));
  }
  if (saturation >= 1.0) {
    rd.ready = false;
    rd.reasons.push_back("backlog saturated (shedding)");
  }
  common::Json occ = common::Json::object();
  occ["open_sessions"] = open;
  occ["max_sessions"] = options_.shard.limits.max_sessions;
  occ["buffered_records"] = buffered;
  occ["max_buffered_records"] = options_.shard.limits.max_buffered_records;
  occ["max_session_age_ms"] =
      static_cast<std::int64_t>(options_.shard.limits.max_session_age_ms);
  occ["pending_evicted"] = pending_evicted;
  doc["occupancy"] = std::move(occ);
  doc["tenants"] = std::move(tenants);
  (void)now_ms;
  if (http_) http_->board.publish(doc, std::move(rd));
  if (!options_.status_path.empty()) obs::write_json_atomic(doc, options_.status_path);
}

ServeSummary ServeDaemon::run() {
  if (options_.handle_signals) {
    install_stop_signals();
    // Fatal-signal forensics ride the same opt-in: freeze + dump the
    // flight rings to the pre-opened blackbox fd, then die with the
    // original signal.
    install_crash_signals();
  }
  common::ThreadPool pool(std::max<std::size_t>(1, options_.jobs));
  obs::MetricsRegistry* reg = obs::registry();
  bool drain = false;

  while (true) {
    // Reap orphans whose wedged tasks finally returned; their results are
    // from a dead epoch and are discarded unseen.
    orphans_.erase(std::remove_if(orphans_.begin(), orphans_.end(),
                                  [](const std::unique_ptr<Orphan>& o) {
                                    return o->fut.wait_for(std::chrono::seconds(0)) ==
                                           std::future_status::ready;
                                  }),
                   orphans_.end());

    const std::uint64_t tick_no = ++summary_.ticks;
    if (reg) reg->counter("intellog_serve_ticks_total").add(1);

    struct InFlight {
      TenantState* ts;
      std::future<TickResult> fut;
    };
    std::vector<InFlight> inflight;
    inflight.reserve(tenants_.size());
    for (auto& tsp : tenants_) {
      TenantShard* shard = tsp->shard.get();
      auto hook = options_.fault_hook;
      std::string name = tsp->name;
      inflight.push_back({tsp.get(), pool.submit([shard, hook, name, tick_no] {
                            if (hook) hook(name, tick_no);
                            return shard->tick();
                          })});
    }

    std::size_t admitted = 0;
    bool all_idle = true;
    for (auto& f : inflight) {
      if (f.fut.wait_for(std::chrono::milliseconds(options_.heartbeat_timeout_ms)) ==
          std::future_status::ready) {
        TickResult r = f.fut.get();
        admitted += r.records_admitted;
        if (r.records_admitted != 0 || r.pending_files != 0 ||
            f.ts->shard->open_sessions() != 0 ||
            f.ts->shard->breaker_state() != BreakerState::Closed) {
          all_idle = false;
        }
        apply_result(*f.ts, std::move(r));
      } else {
        // Missed heartbeat: abandon this incarnation (it keeps running on
        // its own shard instance in the graveyard) and restore a
        // replacement from the last checkpoint. Work since that checkpoint
        // is replayed from the spool cursor — same math as kill-and-resume.
        all_idle = false;
        // Snapshot the blackbox once the replacement is in place: a wedge
        // is exactly the situation the rings were recording for, and it
        // must not require a crash to become readable.
        obs::flight::ScopedFlightDump wedge_dump(obs::flight::DumpReason::kWatchdog);
        auto orphan = std::make_unique<Orphan>();
        orphan->fut = std::move(f.fut);
        orphan->shard = std::move(f.ts->shard);
        orphans_.push_back(std::move(orphan));
        ++f.ts->epoch;
        ++f.ts->restarts;
        f.ts->shard = std::make_unique<TenantShard>(f.ts->name, f.ts->dir, *f.ts->model,
                                                    options_.shard, f.ts->epoch);
        restore_or_reset(*f.ts);
        FLIGHT_EVENT_STR(kWatchdogRestart, f.ts->epoch, tick_no,
                         obs::flight::flight_intern(f.ts->name));
        if (reg) {
          reg->counter("intellog_serve_shard_restarts_total", tenant_labels(f.ts->name))
              .add(1);
        }
      }
    }

    if (reg) {
      double saturation = 0.0;
      double open_breakers = 0.0;
      for (const auto& ts : tenants_) {
        if (options_.shard.quotas.max_backlog_files > 0) {
          saturation = std::max(
              saturation, static_cast<double>(ts->pending_files) /
                              static_cast<double>(options_.shard.quotas.max_backlog_files));
        }
        if (ts->shard->breaker_state() != BreakerState::Closed) open_breakers += 1.0;
      }
      reg->double_gauge("intellog_serve_queue_saturation_ratio").set(saturation);
      reg->gauge("intellog_serve_breakers_open")
          .set(static_cast<std::int64_t>(open_breakers));
    }

    if (options_.checkpoint_every_ticks != 0 &&
        tick_no % options_.checkpoint_every_ticks == 0) {
      for (auto& ts : tenants_) write_checkpoint(*ts);
    }

    const std::uint64_t now_ms = obs::monotonic_ns() / 1'000'000;
    if (reg) {
      alerts_->store.observe_registry(*reg, now_ms);
      alerts_->engine.evaluate(alerts_->store, now_ms);
    }
    flush_status(now_ms);
    const std::uint64_t interval_ns = options_.metrics_interval_s * 1'000'000'000ull;
    if (interval_ns == 0 || obs::monotonic_ns() - last_metrics_ns_ >= interval_ns) {
      flush_metrics();
      last_metrics_ns_ = obs::monotonic_ns();
    }

    if (options_.kill_after_ticks != 0 && tick_no >= options_.kill_after_ticks) {
      // Simulated crash for the soak harness: no drain, no final
      // checkpoint — recovery starts from whatever the periodic cadence
      // last persisted.
      summary_.killed = true;
      break;
    }
    const int sig = stop_signal();
    if (sig != 0 || (options_.max_ticks != 0 && tick_no >= options_.max_ticks) ||
        (options_.drain_on_empty && all_idle)) {
      summary_.stop_signal = sig;
      FLIGHT_EVENT(kDrainBegin, static_cast<std::uint64_t>(sig), tick_no);
      drain = true;
      break;
    }
    if (admitted == 0 && options_.poll_ms != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options_.poll_ms));
    }
  }

  if (drain) {
    // Graceful drain: close every open session (reports go to the same
    // ledger), persist final checkpoints, publish a last status/metrics
    // snapshot, and drain the pool deterministically. The blackbox gets a
    // farewell snapshot when this scope closes.
    obs::flight::ScopedFlightDump drain_dump(obs::flight::DumpReason::kGracefulDrain);
    std::uint64_t drained_sessions = 0;
    for (auto& ts : tenants_) {
      for (const auto& rep : ts->shard->close_all()) {
        ++drained_sessions;
        if (rep.anomalous()) {
          append_jsonl((fs::path(ts->dir) / ".reports.jsonl").string(), rep.to_json());
        }
      }
      if (reg) {
        // Sessions force-closed by the drain still get their end-to-end
        // observation — their reports were just written above.
        const auto stamps = ts->shard->take_closed_ingress();
        if (!stamps.empty()) {
          obs::Histogram& hist =
              reg->histogram("intellog_serve_e2e_latency_ms", tenant_labels(ts->name));
          const std::uint64_t now = unix_now_ms();
          for (const auto& [id, ingress] : stamps) {
            hist.observe(now > ingress ? static_cast<double>(now - ingress) : 0.0, id);
          }
        }
      }
      write_checkpoint(*ts);
    }
    flush_status(obs::monotonic_ns() / 1'000'000);
    flush_metrics();
    pool.shutdown(common::ThreadPool::DrainMode::Drain);
    FLIGHT_EVENT(kDrainEnd, summary_.ticks, drained_sessions);
  }
  // On the kill path the pool destructor joins the workers; orphaned tasks
  // finish against shards that stay alive in the graveyard until then.

  // Stop answering before run() returns on every path (drain and simulated
  // crash): the admin plane's lifetime is the supervision loop's.
  if (http_) http_->server.stop();

  for (const auto& ts : tenants_) {
    summary_.tenants[ts->name] = ts->shard->accounting();
    summary_.restarts[ts->name] = ts->restarts;
    summary_.breaker_states[ts->name] = std::string(to_string(ts->shard->breaker_state()));
  }
  return summary_;
}

}  // namespace intellog::serve
