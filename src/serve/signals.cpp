#include "serve/signals.hpp"

#include <csignal>

#include "obs/flight/flight.hpp"

namespace intellog::serve {

namespace {

volatile std::sig_atomic_t g_stop_signal = 0;

void on_stop(int sig) {
  // Keep the first signal: a SIGINT followed by SIGTERM still reports the
  // operator's original intent, and repeated deliveries stay idempotent.
  if (g_stop_signal == 0) g_stop_signal = sig;
}

}  // namespace

void install_stop_signals() {
  std::signal(SIGTERM, &on_stop);
  std::signal(SIGINT, &on_stop);
}

int stop_signal() { return static_cast<int>(g_stop_signal); }

void clear_stop_signal() { g_stop_signal = 0; }

void request_stop(int sig) { on_stop(sig); }

void install_crash_signals() { obs::flight::install_crash_handlers(); }

}  // namespace intellog::serve
