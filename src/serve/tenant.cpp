#include "serve/tenant.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <optional>
#include <stdexcept>

#include "common/checksum.hpp"
#include "logparse/log_io.hpp"
#include "obs/flight/flight.hpp"

namespace intellog::serve {

namespace fs = std::filesystem;

namespace {

double now_us() {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count()) /
         1e3;
}

// Spool arrival time: producers rename finished files in, so st_mtim is the
// moment the session became visible to the daemon — the start of the
// end-to-end latency clock. 0 on stat failure (the observation is skipped).
std::uint64_t file_mtime_unix_ms(const std::string& path) {
  struct ::stat st {};
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_mtim.tv_sec) * 1000u +
         static_cast<std::uint64_t>(st.st_mtim.tv_nsec) / 1000000u;
}

}  // namespace

std::string_view to_string(BreakerState s) {
  switch (s) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
  }
  return "?";
}

common::Json TenantAccounting::to_json() const {
  common::Json j = common::Json::object();
  j["records_admitted"] = static_cast<std::int64_t>(records_admitted);
  j["lines_seen"] = static_cast<std::int64_t>(lines_seen);
  j["lines_quarantined"] = static_cast<std::int64_t>(lines_quarantined);
  j["sessions_closed"] = static_cast<std::int64_t>(sessions_closed);
  j["sessions_anomalous"] = static_cast<std::int64_t>(sessions_anomalous);
  j["files_done"] = static_cast<std::int64_t>(files_done);
  j["files_shed"] = static_cast<std::int64_t>(files_shed);
  j["bytes_shed"] = static_cast<std::int64_t>(bytes_shed);
  j["breaker_trips"] = static_cast<std::int64_t>(breaker_trips);
  j["consume_us_sum"] = consume_us_sum;
  return j;
}

TenantAccounting TenantAccounting::from_json(const common::Json& j) {
  TenantAccounting a;
  const auto u64 = [&](const char* key) {
    return static_cast<std::uint64_t>(j[key].as_int());
  };
  a.records_admitted = u64("records_admitted");
  a.lines_seen = u64("lines_seen");
  a.lines_quarantined = u64("lines_quarantined");
  a.sessions_closed = u64("sessions_closed");
  a.sessions_anomalous = u64("sessions_anomalous");
  a.files_done = u64("files_done");
  a.files_shed = u64("files_shed");
  a.bytes_shed = u64("bytes_shed");
  a.breaker_trips = u64("breaker_trips");
  a.consume_us_sum = j["consume_us_sum"].as_double();
  return a;
}

common::Json ShedRecord::to_json() const {
  common::Json j = common::Json::object();
  j["file"] = file;
  j["bytes"] = static_cast<std::int64_t>(bytes);
  j["reason"] = reason;
  return j;
}

TenantShard::TenantShard(std::string tenant, std::string spool_dir,
                         const core::IntelLog& model, Options options, std::uint64_t epoch)
    : tenant_(std::move(tenant)),
      spool_dir_(std::move(spool_dir)),
      model_(model),
      options_(std::move(options)),
      epoch_(epoch),
      online_(std::make_unique<core::OnlineDetector>(model, options_.detect_jobs,
                                                     options_.limits)),
      // Interned once here (construction is registration time), so every
      // tick/shed/breaker event can name the tenant without allocating.
      flight_str_(obs::flight::flight_intern(tenant_)) {}

std::vector<TenantShard::PendingFile> TenantShard::scan_spool() const {
  std::vector<PendingFile> out;
  std::error_code ec;
  for (fs::directory_iterator it(spool_dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const fs::path& p = it->path();
    const std::string name = p.filename().string();
    // Dotfiles are the daemon's own artifacts (checkpoint, ledgers), and
    // anything not *.log is a producer temp file not yet renamed in.
    if (name.empty() || name[0] == '.' || p.extension() != ".log") continue;
    if (done_.count(name) != 0) continue;
    std::error_code sec;
    const std::uint64_t bytes = fs::file_size(p, sec);
    out.push_back(PendingFile{p.string(), name, sec ? 0 : bytes,
                              file_mtime_unix_ms(p.string())});
  }
  // Deterministic service order: name-sorted, so kill-and-resume replays
  // the exact admission sequence of an uninterrupted run.
  std::sort(out.begin(), out.end(),
            [](const PendingFile& a, const PendingFile& b) { return a.name < b.name; });
  return out;
}

void TenantShard::consume_file(const PendingFile& file, std::size_t& record_budget,
                               TickResult& out) {
  const bool first_read = cursors_.find(file.name) == cursors_.end();
  logparse::SessionIngest ingest =
      logparse::read_session_file_resilient(file.path, /*system=*/{}, options_.ingest);
  if (first_read) {
    // Parse-quality stats count once per file even when admission slices
    // its records across several ticks.
    accounting_.lines_seen += ingest.stats.lines_total;
    accounting_.lines_quarantined += ingest.stats.quarantined;
    out.lines_seen += ingest.stats.lines_total;
    out.lines_quarantined += ingest.stats.quarantined;
    for (auto& q : ingest.quarantined) out.quarantined.push_back(std::move(q));
  }

  const auto finish_session = [&](std::optional<core::AnomalyReport> report) {
    ++accounting_.files_done;
    if (report) {
      ++accounting_.sessions_closed;
      ++out.sessions_closed;
      if (report->anomalous()) {
        ++accounting_.sessions_anomalous;
        out.reports.push_back(std::move(*report));
      }
    }
    done_.insert(file.name);
    cursors_.erase(file.name);
  };

  auto& records = ingest.session.records;
  if (records.empty()) {
    if (first_read && file.bytes == 0) {
      // A zero-byte spool file is a container that died before logging a
      // single line — detection signal (session abort), not junk. Same
      // contract as the one-shot CLI's empty-session path. This path never
      // touches the detector, so stamp the ingress map directly.
      if (file.mtime_unix_ms != 0 && !ingest.session.container_id.empty()) {
        out.session_ingress_ms[ingest.session.container_id] = file.mtime_unix_ms;
      }
      finish_session(model_.detect(ingest.session));
    } else {
      finish_session(std::nullopt);  // garbage-only file: quarantined above
    }
    return;
  }

  std::uint64_t& cursor = cursors_[file.name];
  if (cursor >= records.size()) {
    // Shrunk or rewritten in place (spool contract violation): close what
    // we buffered rather than replaying records we already consumed.
    finish_session(online_->close_session(ingest.session.container_id));
    return;
  }
  const std::size_t take =
      std::min<std::size_t>(record_budget, records.size() - static_cast<std::size_t>(cursor));
  const double t0 = now_us();
  for (std::size_t i = 0; i < take; ++i) {
    online_->consume(records[static_cast<std::size_t>(cursor) + i], file.mtime_unix_ms);
  }
  accounting_.consume_us_sum += now_us() - t0;
  cursor += take;
  record_budget -= take;
  accounting_.records_admitted += take;
  out.records_admitted += take;

  // Cap-triggered evictions are closed sessions too (degraded): count them
  // so the accounting balances against open+closed.
  for (auto& evicted : online_->take_evicted()) {
    ++accounting_.sessions_closed;
    ++out.sessions_closed;
    if (evicted.anomalous()) {
      ++accounting_.sessions_anomalous;
      out.reports.push_back(std::move(evicted));
    }
  }

  if (cursor >= records.size()) {
    finish_session(online_->close_session(ingest.session.container_id));
  }
}

TickResult TenantShard::tick() {
  TickResult out;
  out.epoch = epoch_;
  FLIGHT_EVENT_STR(kTenantTick, ticks_++, epoch_, flight_str_);

  if (breaker_state_ == BreakerState::Open) {
    if (breaker_open_left_ > 0) --breaker_open_left_;
    if (breaker_open_left_ == 0) {
      breaker_state_ = BreakerState::HalfOpen;
      FLIGHT_EVENT_STR(kBreakerTransition, static_cast<std::uint64_t>(BreakerState::HalfOpen),
                       static_cast<std::uint64_t>(BreakerState::Open), flight_str_);
    }
    const auto pending = scan_spool();
    out.pending_files = pending.size();
    for (const auto& f : pending) out.pending_bytes += f.bytes;
    return out;  // admission paused; the spool keeps the backlog lossless
  }

  std::vector<PendingFile> pending = scan_spool();

  // --- shed pass: bounded work no matter what the producer spools -----------
  bool parse_bomb = false;
  const auto shed_file = [&](const PendingFile& f, const char* reason) {
    out.shed.push_back(ShedRecord{f.path, f.bytes, reason});
    ++out.files_shed;
    ++accounting_.files_shed;
    accounting_.bytes_shed += f.bytes;
    done_.insert(f.name);
    cursors_.erase(f.name);
    FLIGHT_EVENT_STR(kTenantShed, out.files_shed, f.bytes, flight_str_);
  };
  std::vector<PendingFile> admissible;
  std::uint64_t backlog_bytes = 0;
  for (const auto& f : pending) {
    if (f.bytes > options_.quotas.max_file_bytes) {
      shed_file(f, "parse-bomb");
      parse_bomb = true;
      continue;
    }
    admissible.push_back(f);
    backlog_bytes += f.bytes;
  }
  // Backlog overflow sheds oldest-first (freshest data keeps flowing), but
  // never a file already mid-consumption.
  std::size_t shed_from = 0;
  while (admissible.size() - shed_from > options_.quotas.max_backlog_files ||
         backlog_bytes > options_.quotas.max_backlog_bytes) {
    if (shed_from >= admissible.size()) break;
    const PendingFile& f = admissible[shed_from];
    if (cursors_.find(f.name) != cursors_.end()) break;  // in flight: keep
    shed_file(f, admissible.size() - shed_from > options_.quotas.max_backlog_files
                     ? "backlog-files"
                     : "backlog-bytes");
    backlog_bytes -= f.bytes;
    ++shed_from;
  }
  admissible.erase(admissible.begin(),
                   admissible.begin() + static_cast<std::ptrdiff_t>(shed_from));

  // --- admission: quota-bounded consume, half-open probes one file ----------
  std::size_t record_budget = options_.quotas.max_records_per_tick;
  std::size_t files_opened = 0;
  for (const auto& f : admissible) {
    if (record_budget == 0 || files_opened >= options_.quotas.max_files_per_tick) break;
    consume_file(f, record_budget, out);
    ++files_opened;
    if (breaker_state_ == BreakerState::HalfOpen) break;  // one probe file
  }

  // --- breaker bookkeeping ---------------------------------------------------
  const bool storm = out.lines_seen >= options_.breaker.min_lines &&
                     static_cast<double>(out.lines_quarantined) >
                         options_.breaker.quarantine_frac *
                             static_cast<double>(out.lines_seen);
  const bool tripped = storm || parse_bomb;
  if (tripped) {
    FLIGHT_EVENT_STR(kBreakerTransition, static_cast<std::uint64_t>(BreakerState::Open),
                     static_cast<std::uint64_t>(breaker_state_), flight_str_);
    breaker_state_ = BreakerState::Open;
    breaker_open_left_ = options_.breaker.open_ticks;
    ++accounting_.breaker_trips;
    out.breaker_tripped = true;
  } else if (breaker_state_ == BreakerState::HalfOpen) {
    FLIGHT_EVENT_STR(kBreakerTransition, static_cast<std::uint64_t>(BreakerState::Closed),
                     static_cast<std::uint64_t>(BreakerState::HalfOpen), flight_str_);
    breaker_state_ = BreakerState::Closed;  // clean probe (or empty spool)
  }

  out.pending_files = 0;
  out.pending_bytes = 0;
  for (const auto& f : admissible) {
    if (done_.count(f.name) != 0) continue;
    ++out.pending_files;
    out.pending_bytes += f.bytes;
  }

  // Every session the detector closed this tick (explicit, eviction) hands
  // its arrival stamp back here; the daemon observes end-to-end latency
  // when it writes the report ledger.
  for (const auto& [id, ms] : online_->take_closed_ingress()) {
    out.session_ingress_ms.emplace(id, ms);
  }
  return out;
}

std::vector<core::AnomalyReport> TenantShard::close_all() {
  std::vector<core::AnomalyReport> reports = online_->close_all();
  for (const auto& r : reports) {
    ++accounting_.sessions_closed;
    if (r.anomalous()) ++accounting_.sessions_anomalous;
  }
  return reports;
}

std::map<std::string, std::uint64_t> TenantShard::take_closed_ingress() {
  return online_->take_closed_ingress();
}

common::Json TenantShard::checkpoint() const {
  common::Json doc = common::Json::object();
  doc["kind"] = "intellog_serve_tenant_checkpoint";
  doc["version"] = kCheckpointVersion;
  doc["tenant"] = tenant_;
  common::Json cursors = common::Json::object();
  for (const auto& [name, at] : cursors_) cursors[name] = static_cast<std::int64_t>(at);
  doc["cursors"] = std::move(cursors);
  common::Json done = common::Json::array();
  for (const auto& name : done_) done.push_back(name);
  doc["done"] = std::move(done);
  doc["accounting"] = accounting_.to_json();
  common::Json breaker = common::Json::object();
  breaker["state"] = std::string(to_string(breaker_state_));
  breaker["open_left"] = static_cast<std::int64_t>(breaker_open_left_);
  doc["breaker"] = std::move(breaker);
  doc["detector"] = online_->checkpoint();
  common::stamp_checksum(doc);
  return doc;
}

void TenantShard::restore(const common::Json& doc) {
  const auto fail = [&](const std::string& why) -> void {
    throw std::runtime_error("TenantShard::restore [" + tenant_ + "]: " + why);
  };
  if (!doc.is_object() || !doc.contains("kind") || !doc["kind"].is_string() ||
      doc["kind"].as_string() != "intellog_serve_tenant_checkpoint") {
    fail("not a tenant checkpoint document");
  }
  if (!doc.contains("version") || !doc["version"].is_int() ||
      doc["version"].as_int() != kCheckpointVersion) {
    fail("unsupported checkpoint version (supported: " +
         std::to_string(kCheckpointVersion) + ")");
  }
  if (!common::verify_checksum(doc)) fail("checksum mismatch (corrupted checkpoint)");

  // Parse everything into locals first so a malformed document cannot
  // leave the shard half-restored.
  std::map<std::string, std::uint64_t> cursors;
  std::set<std::string> done;
  TenantAccounting accounting;
  BreakerState breaker_state = BreakerState::Closed;
  std::uint64_t breaker_open_left = 0;
  std::unique_ptr<core::OnlineDetector> online;
  try {
    for (const auto& [name, at] : doc["cursors"].as_object()) {
      cursors[name] = static_cast<std::uint64_t>(at.as_int());
    }
    for (const auto& name : doc["done"].as_array()) done.insert(name.as_string());
    accounting = TenantAccounting::from_json(doc["accounting"]);
    const std::string state = doc["breaker"]["state"].as_string();
    breaker_state = state == "open"        ? BreakerState::Open
                    : state == "half-open" ? BreakerState::HalfOpen
                                           : BreakerState::Closed;
    breaker_open_left = static_cast<std::uint64_t>(doc["breaker"]["open_left"].as_int());
    online = std::make_unique<core::OnlineDetector>(core::OnlineDetector::restore(
        model_, doc["detector"], options_.detect_jobs, options_.limits));
  } catch (const std::exception& e) {
    fail(std::string("malformed checkpoint: ") + e.what());
  }
  cursors_ = std::move(cursors);
  done_ = std::move(done);
  accounting_ = accounting;
  breaker_state_ = breaker_state;
  breaker_open_left_ = breaker_open_left;
  online_ = std::move(online);
}

}  // namespace intellog::serve
