// Anomaly detection (§4.2).
//
// For each incoming session IntelLog instantiates a HW-graph instance and
// checks it against the trained HW-graph. Two anomaly classes are reported:
//  1. unexpected log messages — no Intel Key matches; the §3 extraction
//     runs on the raw message so the report carries structured fields
//     (this is what powers the case-study GroupBy diagnosis), and
//  2. erroneous HW-graph instances — an expected entity group never
//     appeared, a subroutine instance misses critical Intel Keys, or an
//     instance has an identifier-type signature never seen in training.
#pragma once

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/entity_grouping.hpp"
#include "core/extraction.hpp"
#include "core/hw_graph.hpp"
#include "core/intel_key.hpp"
#include "logparse/kv_filter.hpp"
#include "logparse/session.hpp"
#include "logparse/spell.hpp"

namespace intellog::core {

class CoverageLedger;
struct DetectScratch;

/// One raw log line backing a finding, with ingest provenance: the file,
/// 1-based line number and byte offset threaded through LogRecord by the
/// (resilient) ingest path. line_no/byte_offset are 0 when the session
/// never touched disk (in-memory simulator streams); `file` falls back to
/// the container id so the line is still addressable.
struct EvidenceLine {
  std::size_t record_index = 0;  ///< index into the session's records
  std::uint64_t timestamp_ms = 0;
  int key_id = -1;               ///< Intel Key the line matched (-1: none)
  std::string content;
  std::string file;
  std::size_t line_no = 0;
  std::uint64_t byte_offset = 0;

  common::Json to_json() const;
};

/// Structured explanation attached to each finding: what the trained model
/// expected, what the session actually did, where they diverge, and the
/// raw log lines (with provenance) that prove it. Rendered by `intellog
/// explain` as an expected-vs-observed diff.
struct Evidence {
  std::vector<int> expected_keys;   ///< trained subroutine key sequence
  std::vector<int> observed_keys;   ///< keys seen in the instance, in order
  std::vector<int> matched_keys;    ///< expected keys that did appear
  std::vector<int> missing_keys;    ///< expected keys that never appeared
  std::string deviation;            ///< human-readable deviation point
  std::vector<EvidenceLine> lines;  ///< raw-line provenance (capped)

  bool empty() const {
    return expected_keys.empty() && observed_keys.empty() && deviation.empty() && lines.empty();
  }
  common::Json to_json() const;
};

struct UnexpectedMessage {
  std::size_t record_index = 0;
  std::string content;
  IntelKey extracted;    ///< on-the-fly §3 extraction result
  IntelMessage message;  ///< structured fields for queries
  Evidence evidence;     ///< raw-line provenance for the finding
};

struct GroupIssue {
  enum class Kind { MissingGroup, IncompleteSubroutine, UnknownSignature, OrderViolation };
  Kind kind = Kind::MissingGroup;
  std::string group;
  std::set<std::string> signature;   ///< subroutine signature (if relevant)
  std::vector<int> missing_keys;     ///< critical keys never seen
  std::vector<std::pair<int, int>> violated_orders;  ///< BEFORE pairs inverted
  Evidence evidence;                 ///< expected-vs-observed + raw lines
};

std::string_view to_string(GroupIssue::Kind kind);

struct AnomalyReport {
  std::string container_id;
  std::size_t session_length = 0;
  std::vector<UnexpectedMessage> unexpected;
  std::vector<GroupIssue> issues;
  /// Set when the session was force-closed before its natural end (memory
  /// cap eviction or watchdog timeout): the structural checks ran over a
  /// possibly-incomplete record buffer, so missing-group/subroutine issues
  /// are best-effort. Why it was degraded ("lru" / "watchdog").
  std::string degraded_reason;

  bool anomalous() const { return !unexpected.empty() || !issues.empty(); }
  bool degraded() const { return !degraded_reason.empty(); }
  common::Json to_json() const;
};

class AnomalyDetector {
 public:
  AnomalyDetector(const logparse::Spell& spell, const logparse::KvFilter& kv,
                  const InfoExtractor& extractor, const std::map<int, IntelKey>& intel_keys,
                  const EntityGroups& groups, const HwGraph& graph,
                  double expected_group_fraction);

  /// Delegates to the scratch overload via a thread-local DetectScratch.
  AnomalyReport detect(const logparse::Session& session) const;

  /// Scratch-threaded detect for batch shards: the caller owns the scratch
  /// and reuses it across sessions (its arena is rewound here on entry, so
  /// a shard's pages are acquired once and recycled). Verdicts are
  /// byte-identical to the thread-local overload. Not safe to share one
  /// scratch between concurrent calls.
  AnomalyReport detect(const logparse::Session& session, DetectScratch& scratch) const;

  /// Evidence construction can be switched off (overhead measurement /
  /// minimal reports); the verdicts themselves are unchanged either way.
  /// Thread-safe with concurrent detect() calls.
  void set_evidence_enabled(bool enabled) {
    evidence_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool evidence_enabled() const { return evidence_enabled_.load(std::memory_order_relaxed); }

  /// Attaches a coverage ledger (Quality Observatory): detect() then
  /// stamps every model component the session exercises — log keys it
  /// matches, subroutines whose signature is checked, relations whose
  /// endpoint groups both appear. nullptr detaches. Verdicts are unchanged
  /// either way; thread-safe with concurrent detect() calls, but attach
  /// before launching them (release/acquire pairing, not a full fence).
  void set_coverage(CoverageLedger* ledger) {
    coverage_.store(ledger, std::memory_order_release);
  }
  CoverageLedger* coverage() const { return coverage_.load(std::memory_order_acquire); }

 private:
  const logparse::Spell& spell_;
  const logparse::KvFilter& kv_;
  const InfoExtractor& extractor_;
  const std::map<int, IntelKey>& intel_keys_;
  const EntityGroups& groups_;
  const HwGraph& graph_;
  std::vector<std::string> expected_groups_;
  std::atomic<bool> evidence_enabled_{true};
  std::atomic<CoverageLedger*> coverage_{nullptr};
};

}  // namespace intellog::core
