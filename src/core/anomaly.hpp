// Anomaly detection (§4.2).
//
// For each incoming session IntelLog instantiates a HW-graph instance and
// checks it against the trained HW-graph. Two anomaly classes are reported:
//  1. unexpected log messages — no Intel Key matches; the §3 extraction
//     runs on the raw message so the report carries structured fields
//     (this is what powers the case-study GroupBy diagnosis), and
//  2. erroneous HW-graph instances — an expected entity group never
//     appeared, a subroutine instance misses critical Intel Keys, or an
//     instance has an identifier-type signature never seen in training.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/entity_grouping.hpp"
#include "core/extraction.hpp"
#include "core/hw_graph.hpp"
#include "core/intel_key.hpp"
#include "logparse/kv_filter.hpp"
#include "logparse/session.hpp"
#include "logparse/spell.hpp"

namespace intellog::core {

struct UnexpectedMessage {
  std::size_t record_index = 0;
  std::string content;
  IntelKey extracted;    ///< on-the-fly §3 extraction result
  IntelMessage message;  ///< structured fields for queries
};

struct GroupIssue {
  enum class Kind { MissingGroup, IncompleteSubroutine, UnknownSignature, OrderViolation };
  Kind kind = Kind::MissingGroup;
  std::string group;
  std::set<std::string> signature;   ///< subroutine signature (if relevant)
  std::vector<int> missing_keys;     ///< critical keys never seen
  std::vector<std::pair<int, int>> violated_orders;  ///< BEFORE pairs inverted
};

std::string_view to_string(GroupIssue::Kind kind);

struct AnomalyReport {
  std::string container_id;
  std::size_t session_length = 0;
  std::vector<UnexpectedMessage> unexpected;
  std::vector<GroupIssue> issues;
  /// Set when the session was force-closed before its natural end (memory
  /// cap eviction or watchdog timeout): the structural checks ran over a
  /// possibly-incomplete record buffer, so missing-group/subroutine issues
  /// are best-effort. Why it was degraded ("lru" / "watchdog").
  std::string degraded_reason;

  bool anomalous() const { return !unexpected.empty() || !issues.empty(); }
  bool degraded() const { return !degraded_reason.empty(); }
  common::Json to_json() const;
};

class AnomalyDetector {
 public:
  AnomalyDetector(const logparse::Spell& spell, const logparse::KvFilter& kv,
                  const InfoExtractor& extractor, const std::map<int, IntelKey>& intel_keys,
                  const EntityGroups& groups, const HwGraph& graph,
                  double expected_group_fraction);

  AnomalyReport detect(const logparse::Session& session) const;

 private:
  const logparse::Spell& spell_;
  const logparse::KvFilter& kv_;
  const InfoExtractor& extractor_;
  const std::map<int, IntelKey>& intel_keys_;
  const EntityGroups& groups_;
  const HwGraph& graph_;
  std::vector<std::string> expected_groups_;
};

}  // namespace intellog::core
