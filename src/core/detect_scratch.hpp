// Per-shard scratch for the detection hot path.
//
// detect() runs once per session over every record; before this existed
// each record paid ~50 heap allocations (LCS DP rows, whitespace token
// vectors, field-text strings, per-group std::set churn). A DetectScratch
// holds all of that working state — an arena for assembled field bytes
// plus reusable vectors — so a shard allocates once and bumps thereafter.
//
// Ownership / lifetime contract:
//  - One DetectScratch per thread (detect_batch: one per shard; the
//    single-session entry points fall back to a thread_local). Never
//    share one across concurrent detect() calls.
//  - detect() calls reset_session() on entry: the arena rewinds in O(1)
//    and its pages are reused for the next session. Nothing handed out
//    of detect() points into the scratch — field text is copied into the
//    IntelMessage strings before the report escapes.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "core/subroutine.hpp"

namespace intellog::core {

struct DetectScratch {
  /// Backing for assembled field texts (align_fields_views output).
  common::Arena arena;

  // align_fields_views working set, reused record to record.
  std::vector<std::string_view> ws;        ///< whitespace tokens of the message
  std::vector<std::string_view> consts;    ///< the key's constant tokens
  std::vector<std::string_view> lcs_seq;   ///< LCS backtrace output
  std::vector<std::size_t> dp;             ///< flat (n+1)x(m+1) LCS table
  std::vector<unsigned char> matched;      ///< per message token: LCS-matched?
  std::vector<std::pair<std::size_t, std::size_t>> star_groups;  ///< {first_field, stars}
  std::vector<std::size_t> field_len;      ///< pass-1 byte length per field
  std::vector<char*> field_ptr;            ///< pass-2 write cursor per field
  std::vector<std::string_view> fields;    ///< assembled fields (arena bytes)

  /// Detection's per-record entity-group set, as sorted-unique pointers
  /// into EntityGroups' stable strings (replaces a std::set<std::string>).
  std::vector<const std::string*> target_groups;

  // partition_instances working set: per-message "TYPE:value" strings
  // assembled into reused buffers (capacity survives across messages),
  // probed through sorted-unique views.
  std::vector<std::string> id_concat;
  std::vector<std::string_view> id_views;

  // SubroutineModel::check working set, reused instance to instance.
  std::vector<int> check_keys;
  std::vector<std::pair<int, std::size_t>> check_first_pos;

  /// Instance pool for the scratch partition_instances overload: elements
  /// are reused bucket to bucket so their messages/id_values buffers keep
  /// their capacity. Only the first `n` returned by that overload are
  /// meaningful; later elements are stale previous-bucket state.
  std::vector<SubroutineInstance> instances;
  std::vector<GroupMessage> none_messages;  ///< NONE-sequence accumulator

  /// Rewinds the arena (pages are kept for reuse) and records its
  /// high-water mark in the process-wide peak reported by
  /// detect_arena_bytes_peak(). Call at session boundaries.
  void reset_session();
};

/// Largest bytes_peak() any DetectScratch arena has reached so far
/// (observed at reset_session() time). Bench/diagnostics metric.
std::size_t detect_arena_bytes_peak();

}  // namespace intellog::core
