#include "core/model_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/checksum.hpp"

namespace intellog::core {

namespace {

using common::Json;
using common::JsonArray;

Json string_array(const std::vector<std::string>& v) {
  Json arr = Json::array();
  for (const auto& s : v) arr.push_back(s);
  return arr;
}

Json string_array(const std::set<std::string>& v) {
  Json arr = Json::array();
  for (const auto& s : v) arr.push_back(s);
  return arr;
}

Json int_array(const std::set<int>& v) {
  Json arr = Json::array();
  for (const int i : v) arr.push_back(i);
  return arr;
}

std::vector<std::string> to_strings(const Json& arr) {
  std::vector<std::string> out;
  for (const auto& x : arr.as_array()) out.push_back(x.as_string());
  return out;
}

std::set<std::string> to_string_set(const Json& arr) {
  std::set<std::string> out;
  for (const auto& x : arr.as_array()) out.insert(x.as_string());
  return out;
}

std::set<int> to_int_set(const Json& arr) {
  std::set<int> out;
  for (const auto& x : arr.as_array()) out.insert(static_cast<int>(x.as_int()));
  return out;
}

std::string category_name(FieldCategory c) {
  switch (c) {
    case FieldCategory::Entity: return "entity";
    case FieldCategory::Identifier: return "identifier";
    case FieldCategory::Value: return "value";
    case FieldCategory::Locality: return "locality";
    case FieldCategory::Other: return "other";
  }
  return "other";
}

FieldCategory category_from(const std::string& s) {
  if (s == "entity") return FieldCategory::Entity;
  if (s == "identifier") return FieldCategory::Identifier;
  if (s == "value") return FieldCategory::Value;
  if (s == "locality") return FieldCategory::Locality;
  return FieldCategory::Other;
}

GroupRelation relation_from(const std::string& s) {
  if (s == "PARENT") return GroupRelation::Parent;
  if (s == "CHILD") return GroupRelation::ChildOf;
  if (s == "BEFORE") return GroupRelation::Before;
  if (s == "AFTER") return GroupRelation::After;
  return GroupRelation::Parallel;
}

constexpr int kFormatVersion = 1;

}  // namespace

Json save_model(const IntelLog& model) {
  if (!model.trained()) throw std::logic_error("save_model: model is untrained");
  Json doc = Json::object();
  doc["format_version"] = kFormatVersion;
  doc["config"]["spell_threshold"] = model.config_.spell_threshold;
  doc["config"]["expected_group_fraction"] = model.config_.expected_group_fraction;

  // --- Spell log keys + samples ------------------------------------------------
  Json keys = Json::array();
  for (const auto& key : model.spell_.keys()) {
    Json k = Json::object();
    k["id"] = key.id;
    k["tokens"] = string_array(key.tokens);
    k["match_count"] = key.match_count;
    k["sample"] = model.sample_message(key.id);
    keys.push_back(std::move(k));
  }
  doc["log_keys"] = std::move(keys);

  // --- key-value keys -------------------------------------------------------------
  Json kv = Json::array();
  for (const auto& key : model.spell_.keys()) {
    if (model.kv_filter_.is_learned_kv_key(key.id)) kv.push_back(key.id);
  }
  doc["kv_keys"] = std::move(kv);

  // --- Intel Keys -----------------------------------------------------------------
  Json iks = Json::array();
  for (const auto& [id, ik] : model.intel_keys_) {
    (void)id;
    iks.push_back(ik.to_json());
  }
  doc["intel_keys"] = std::move(iks);

  // --- entity groups ----------------------------------------------------------------
  Json groups = Json::object();
  for (const auto& [name, members] : model.groups_.groups) {
    groups[name] = string_array(members);
  }
  doc["entity_groups"] = std::move(groups);

  // --- HW-graph ---------------------------------------------------------------------
  Json graph = Json::object();
  graph["training_sessions"] = model.graph_.training_sessions();
  Json nodes = Json::object();
  for (const auto& [name, node] : model.graph_.groups()) {
    Json n = Json::object();
    n["keys"] = int_array(node.keys);
    n["sessions_present"] = node.sessions_present;
    n["repeated_key"] = node.repeated_key_in_session;
    Json subs = Json::array();
    for (const auto& [sig, sub] : node.subroutines.subroutines()) {
      Json s = Json::object();
      s["signature"] = string_array(sig);
      s["keys"] = int_array(sub.keys);
      s["critical"] = int_array(sub.critical);
      s["instances"] = sub.instance_count;
      Json before = Json::array();
      for (const auto& [a, b] : sub.before) {
        Json pair = Json::array();
        pair.push_back(a);
        pair.push_back(b);
        before.push_back(std::move(pair));
      }
      s["before"] = std::move(before);
      Json parallel = Json::array();
      for (const auto& [a, b] : sub.parallel) {
        Json pair = Json::array();
        pair.push_back(a);
        pair.push_back(b);
        parallel.push_back(std::move(pair));
      }
      s["parallel"] = std::move(parallel);
      subs.push_back(std::move(s));
    }
    n["subroutines"] = std::move(subs);
    nodes[name] = std::move(n);
  }
  graph["groups"] = std::move(nodes);
  Json rels = Json::array();
  for (const auto& [pair, rel] : model.graph_.relations()) {
    Json r = Json::object();
    r["a"] = pair.first;
    r["b"] = pair.second;
    r["rel"] = std::string(to_string(rel));
    rels.push_back(std::move(r));
  }
  graph["relations"] = std::move(rels);
  Json parents = Json::object();
  for (const auto& [name, node] : model.graph_.groups()) {
    (void)node;
    const std::string p = model.graph_.parent_of(name);
    if (!p.empty()) parents[name] = p;
  }
  graph["parents"] = std::move(parents);
  doc["hw_graph"] = std::move(graph);
  // Integrity stamp over the canonical (compact) dump: disk corruption or a
  // torn write is rejected at load with one clear error instead of a deep
  // accessor failure.
  common::stamp_checksum(doc);
  return doc;
}

IntelLog load_model(const Json& doc) {
  if (!doc.is_object() || !doc.contains("format_version")) {
    throw std::runtime_error("load_model: not an IntelLog model document");
  }
  if (!doc["format_version"].is_int() || doc["format_version"].as_int() != kFormatVersion) {
    throw std::runtime_error("load_model: unsupported format version (want " +
                             std::to_string(kFormatVersion) + ")");
  }
  if (!common::verify_checksum(doc)) {
    throw std::runtime_error("load_model: checksum mismatch (corrupted model document)");
  }
  try {
  IntelLog::Config cfg;
  cfg.spell_threshold = doc["config"]["spell_threshold"].as_double();
  cfg.expected_group_fraction = doc["config"]["expected_group_fraction"].as_double();
  IntelLog model(cfg);

  // --- Spell keys + samples ----------------------------------------------------
  std::vector<logparse::LogKey> keys;
  for (const auto& k : doc["log_keys"].as_array()) {
    logparse::LogKey key;
    key.id = static_cast<int>(k["id"].as_int());
    key.tokens = to_strings(k["tokens"]);
    key.match_count = static_cast<std::size_t>(k["match_count"].as_int());
    if (key.id != static_cast<int>(keys.size())) {
      throw std::runtime_error("load_model: log key ids must be dense and ordered");
    }
    keys.push_back(std::move(key));
    model.samples_[keys.back().id] = k["sample"].as_string();
  }
  model.spell_.restore_keys(std::move(keys));

  for (const auto& id : doc["kv_keys"].as_array()) {
    model.kv_filter_.learn_kv_key(static_cast<int>(id.as_int()));
  }

  // --- Intel Keys ------------------------------------------------------------------
  for (const auto& j : doc["intel_keys"].as_array()) {
    IntelKey ik;
    ik.key_id = static_cast<int>(j["key_id"].as_int());
    ik.key_text = j["key"].as_string();
    ik.kv_only = j["kv_only"].as_bool();
    for (const auto& e : j["entities"].as_array()) ik.entities.push_back(e.as_string());
    for (const auto& f : j["fields"].as_array()) {
      FieldInfo info;
      info.category = category_from(f["category"].as_string());
      if (f.contains("id_type")) info.id_type = f["id_type"].as_string();
      if (f.contains("unit")) info.unit = f["unit"].as_string();
      ik.fields.push_back(std::move(info));
    }
    for (const auto& o : j["operations"].as_array()) {
      ik.operations.push_back(
          {o["subj"].as_string(), o["predicate"].as_string(), o["obj"].as_string()});
    }
    model.intel_keys_.emplace(ik.key_id, std::move(ik));
  }

  // --- entity groups -----------------------------------------------------------------
  for (const auto& [name, members] : doc["entity_groups"].as_object()) {
    auto& group = model.groups_.groups[name];
    for (const auto& m : members.as_array()) {
      group.insert(m.as_string());
      model.groups_.reverse[m.as_string()].insert(name);
    }
  }

  // --- HW-graph ------------------------------------------------------------------------
  const Json& graph = doc["hw_graph"];
  for (const auto& [name, n] : graph["groups"].as_object()) {
    GroupNode& node = model.graph_.group(name);
    node.name = name;
    node.keys = to_int_set(n["keys"]);
    node.sessions_present = static_cast<std::size_t>(n["sessions_present"].as_int());
    node.repeated_key_in_session = n["repeated_key"].as_bool();
    std::map<std::set<std::string>, Subroutine> subs;
    for (const auto& s : n["subroutines"].as_array()) {
      Subroutine sub;
      sub.signature = to_string_set(s["signature"]);
      sub.keys = to_int_set(s["keys"]);
      sub.critical = to_int_set(s["critical"]);
      sub.instance_count = static_cast<std::size_t>(s["instances"].as_int());
      for (const auto& p : s["before"].as_array()) {
        sub.before.emplace(static_cast<int>(p[0u].as_int()), static_cast<int>(p[1u].as_int()));
      }
      for (const auto& p : s["parallel"].as_array()) {
        sub.parallel.emplace(static_cast<int>(p[0u].as_int()),
                             static_cast<int>(p[1u].as_int()));
      }
      subs.emplace(sub.signature, std::move(sub));
    }
    node.subroutines.restore(std::move(subs));
  }
  std::map<std::pair<std::string, std::string>, GroupRelation> relations;
  for (const auto& r : graph["relations"].as_array()) {
    relations[{r["a"].as_string(), r["b"].as_string()}] = relation_from(r["rel"].as_string());
  }
  std::map<std::string, std::string> parents;
  for (const auto& [name, p] : graph["parents"].as_object()) parents[name] = p.as_string();
  model.graph_.restore_structure(std::move(relations), std::move(parents),
                                 static_cast<std::size_t>(graph["training_sessions"].as_int()));

  model.detector_ = std::make_unique<AnomalyDetector>(
      model.spell_, model.kv_filter_, model.extractor_, model.intel_keys_, model.groups_,
      model.graph_, cfg.expected_group_fraction);
  model.trained_ = true;
  return model;
  } catch (const std::runtime_error&) {
    throw;  // already a clear "load_model:" error
  } catch (const std::exception& e) {
    // Deep JSON accessor failures (wrong types, missing fields) surface as
    // one clear ingestion error instead of a bare std::bad_variant_access.
    throw std::runtime_error(std::string("load_model: malformed model document: ") + e.what());
  }
}

void save_model_file(const IntelLog& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_model_file: cannot open " + path);
  out << save_model(model).dump(2) << "\n";
}

IntelLog load_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_model_file: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  Json doc;
  try {
    doc = Json::parse(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error("load_model_file: " + path +
                             " is not valid JSON (truncated or corrupted?): " + e.what());
  }
  return load_model(doc);
}

}  // namespace intellog::core
