// Ground-truth scoring (Quality Observatory).
//
// Table 6 of the paper reports detection accuracy as jobs detected / false
// positives / false negatives against *injected* problems, with borderline
// -memory jobs counted separately as real (performance) problems, not
// false alarms. Until now that accounting lived only inside the
// bench_table6_anomaly binary. This module promotes it to a library:
//
//   - `Labels` is the ground-truth sidecar `loggen --labels` emits — per
//     job, whether a problem was injected and which containers belong to
//     (and were disturbed by) it, straight from the simsys JobResult.
//   - `score_report` replays the bench accounting over a `detect --json`
//     report: a job counts as flagged when any anomalous session's
//     container belongs to it.
//
// Scores are exact integer tallies; precision = D/(D+FP), recall = D/I,
// F1 their harmonic mean. `record_metrics` exports the tallies as gauges
// plus permille ratios (the registry's Gauge is integer-valued).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/metrics.hpp"

namespace intellog::core {

/// Ground truth for one generated job.
struct LabeledJob {
  std::string name;   ///< job spec name (e.g. "wordcount")
  std::string dir;    ///< directory its session logs were written to
  std::string fault;  ///< injected problem kind ("none" when clean)
  bool injected = false;    ///< one of the §6.4 problems was injected
  bool borderline = false;  ///< borderline memory: a real perf issue (P/B)
  std::set<std::string> containers;     ///< every container id of the job
  std::set<std::string> affected;       ///< containers the fault disturbed
  std::set<std::string> perf_affected;  ///< disturbed by perf issues/bugs
};

/// The `loggen --labels` sidecar: one system's generated workload with
/// per-job ground truth.
struct Labels {
  std::string system;
  std::uint64_t seed = 0;
  std::vector<LabeledJob> jobs;

  /// {"kind": "intellog_labels", "schema_version": 1, ...} — deterministic.
  common::Json to_json() const;
  /// Throws std::runtime_error on wrong kind / unsupported schema_version.
  static Labels from_json(const common::Json& doc);
};

inline constexpr std::int64_t kLabelsSchemaVersion = 1;

/// Table-6 accounting for one system: job-level tallies plus the derived
/// ratios. Denominators come from the labels, numerators from the report.
struct SystemScore {
  std::string system;
  std::size_t detected = 0;  ///< injected jobs flagged (D)
  std::size_t fp = 0;        ///< clean jobs flagged (FP)
  std::size_t fn = 0;        ///< injected jobs missed (FN)
  std::size_t pb = 0;        ///< borderline jobs flagged — (P/B), not FP
  std::size_t injected = 0;    ///< injected jobs in the workload
  std::size_t clean = 0;       ///< clean (non-borderline) jobs
  std::size_t borderline = 0;  ///< borderline-memory jobs
  /// Anomalous containers in the report that belong to no labeled job —
  /// a labels/report mismatch worth surfacing, but not an FP.
  std::size_t unmatched = 0;

  /// D / (D + FP); 1.0 when the report flags nothing at all.
  double precision() const;
  /// D / injected; 1.0 when nothing was injected.
  double recall() const;
  double f1() const;
  common::Json to_json() const;
};

/// Scores a `detect --json` report (array of anomaly reports, each with a
/// "container" field) against the ground truth. A job is flagged when any
/// of its containers appears in the report — the same job-level rule
/// bench_table6_anomaly applies with in-memory sessions.
SystemScore score_report(const Labels& labels, const common::Json& report);

/// Aggregation over systems (one `SystemScore` per scored report). With a
/// single system the overall numbers equal that system's.
struct ScoreCard {
  std::vector<SystemScore> systems;

  std::size_t detected() const;
  std::size_t fp() const;
  std::size_t fn() const;
  std::size_t injected() const;
  double precision() const;
  double recall() const;
  double f1() const;

  /// {"kind": "intellog_score", "systems": [...], "overall": {...}}.
  common::Json to_json() const;
  std::string render_text() const;
  /// Gauges: intellog_score_{detected,false_positives,false_negatives,
  /// detected_borderline}{system=...} plus permille precision/recall/f1
  /// per system and label-free overall.
  void record_metrics(obs::MetricsRegistry& reg) const;
};

}  // namespace intellog::core
