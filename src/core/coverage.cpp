#include "core/coverage.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "obs/metrics.hpp"

namespace intellog::core {

std::string subroutine_component_key(const std::string& group,
                                     const std::set<std::string>& signature) {
  std::string key = group + "[";
  bool first = true;
  for (const auto& s : signature) {
    if (!first) key += ",";
    key += s;
    first = false;
  }
  key += "]";
  return key;
}

std::string edge_component_key(const std::string& a, const std::string& b) {
  return a + "|" + b;
}

CoverageLedger::ComponentClass::ComponentClass(std::vector<std::string> component_names)
    : names(std::move(component_names)), hits(names.size()) {
  index.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) index.emplace(names[i], i);
}

std::size_t CoverageLedger::ComponentClass::hit_count() const {
  std::size_t n = 0;
  for (const auto& h : hits) n += h.load(std::memory_order_relaxed) > 0;
  return n;
}

common::Json CoverageLedger::ComponentClass::to_json() const {
  std::uint64_t max_hits = 0;
  for (const auto& h : hits) max_hits = std::max(max_hits, h.load(std::memory_order_relaxed));
  // Stale: exercised, but under 5% of the class's busiest component — the
  // long tail that a shrinking workload leaves behind before it goes dead.
  const std::uint64_t stale_below = max_hits / 20;

  common::Json cls = common::Json::object();
  common::Json components = common::Json::array();
  common::Json dead = common::Json::array();
  common::Json stale = common::Json::array();
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::uint64_t h = hits[i].load(std::memory_order_relaxed);
    common::Json c = common::Json::object();
    c["name"] = names[i];
    c["hits"] = static_cast<std::int64_t>(h);
    components.push_back(std::move(c));
    if (h == 0) {
      dead.push_back(names[i]);
    } else if (h < stale_below) {
      stale.push_back(names[i]);
    }
  }
  cls["total"] = names.size();
  cls["hit"] = hit_count();
  cls["dead"] = std::move(dead);
  cls["stale"] = std::move(stale);
  cls["components"] = std::move(components);
  return cls;
}

namespace {

std::vector<std::string> log_key_names(const logparse::Spell& spell) {
  std::vector<std::string> names;
  names.reserve(spell.keys().size());
  for (const auto& key : spell.keys()) {
    names.push_back("key " + std::to_string(key.id) + ": " + common::join(key.tokens));
  }
  return names;
}

std::vector<std::string> subroutine_names(const HwGraph& graph) {
  std::vector<std::string> names;
  for (const auto& [gname, node] : graph.groups()) {
    for (const auto& [sig, sub] : node.subroutines.subroutines()) {
      (void)sub;
      names.push_back(subroutine_component_key(gname, sig));
    }
  }
  return names;
}

std::vector<std::string> edge_names(const HwGraph& graph) {
  std::vector<std::string> names;
  names.reserve(graph.relations().size());
  for (const auto& [pair, rel] : graph.relations()) {
    (void)rel;
    names.push_back(edge_component_key(pair.first, pair.second));
  }
  return names;
}

}  // namespace

CoverageLedger::CoverageLedger(const logparse::Spell& spell, const HwGraph& graph)
    : log_keys_(log_key_names(spell)),
      subroutines_(subroutine_names(graph)),
      edges_(edge_names(graph)) {
  // Log keys stamp by id on the hot path; pre-resolve id -> slot so the
  // per-record cost is one array index + one relaxed increment.
  int max_id = -1;
  for (const auto& key : spell.keys()) max_id = std::max(max_id, key.id);
  log_key_slots_.assign(static_cast<std::size_t>(max_id + 1), -1);
  std::size_t slot = 0;
  for (const auto& key : spell.keys()) {
    if (key.id >= 0) log_key_slots_[static_cast<std::size_t>(key.id)] =
        static_cast<std::int32_t>(slot);
    ++slot;
  }

  // Group name -> dense id, then per-group subroutine-signature slots and
  // edge adjacency, all in integer space for the per-session stamps.
  for (const auto& [gname, node] : graph.groups()) {
    (void)node;
    group_ids_.emplace(gname, group_ids_.size());
  }
  subroutine_slots_.resize(group_ids_.size());
  std::size_t sub_slot = 0;
  for (const auto& [gname, node] : graph.groups()) {
    auto& slots = subroutine_slots_[group_ids_.at(gname)];
    for (const auto& [sig, sub] : node.subroutines.subroutines()) {
      subroutine_ptr_slots_.emplace(&sub, sub_slot);
      slots.emplace(sig, sub_slot++);
    }
  }
  edge_adjacency_.resize(group_ids_.size());
  std::size_t edge_slot = 0;
  for (const auto& [pair, rel] : graph.relations()) {
    (void)rel;
    const auto a = group_ids_.find(pair.first);
    const auto b = group_ids_.find(pair.second);
    if (a != group_ids_.end() && b != group_ids_.end()) {
      edge_adjacency_[a->second].emplace_back(b->second, edge_slot);
    }
    ++edge_slot;
  }
}

void CoverageLedger::stamp(ComponentClass& cls, const std::string& key) {
  const auto it = cls.index.find(key);
  if (it == cls.index.end()) return;  // not a model component
  cls.hits[it->second].fetch_add(1, std::memory_order_relaxed);
}

void CoverageLedger::stamp_log_key(int key_id) {
  if (key_id < 0 || static_cast<std::size_t>(key_id) >= log_key_slots_.size()) return;
  const std::int32_t slot = log_key_slots_[static_cast<std::size_t>(key_id)];
  if (slot < 0) return;
  log_keys_.hits[static_cast<std::size_t>(slot)].fetch_add(1, std::memory_order_relaxed);
}

void CoverageLedger::stamp_subroutine(const std::string& group,
                                      const std::set<std::string>& signature) {
  const auto git = group_ids_.find(group);
  if (git == group_ids_.end()) return;
  const auto& slots = subroutine_slots_[git->second];
  const auto it = slots.find(signature);
  if (it == slots.end()) return;
  subroutines_.hits[it->second].fetch_add(1, std::memory_order_relaxed);
}

void CoverageLedger::stamp_subroutine(const Subroutine* sub) {
  if (sub == nullptr) return;
  const auto it = subroutine_ptr_slots_.find(sub);
  if (it == subroutine_ptr_slots_.end()) return;
  subroutines_.hits[it->second].fetch_add(1, std::memory_order_relaxed);
}

void CoverageLedger::stamp_edge(const std::string& a, const std::string& b) {
  stamp(edges_, edge_component_key(a, b));
}

void CoverageLedger::stamp_edges(const std::set<std::string>& groups_seen) {
  // Resolve the (few) seen groups to ids once, then walk only their
  // adjacency — the model's full edge list is never touched. Membership
  // is a flat byte array over dense group ids (local: detect() runs
  // concurrently across shards), so the inner test is a single load.
  std::vector<std::uint8_t> seen_flags(edge_adjacency_.size(), 0);
  std::vector<std::size_t> seen;
  seen.reserve(groups_seen.size());
  for (const auto& g : groups_seen) {
    const auto it = group_ids_.find(g);
    if (it != group_ids_.end()) {
      seen_flags[it->second] = 1;
      seen.push_back(it->second);
    }
  }
  for (const std::size_t gid : seen) {
    for (const auto& [other, edge_slot] : edge_adjacency_[gid]) {
      if (seen_flags[other]) {
        edges_.hits[edge_slot].fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void CoverageLedger::reset() {
  for (ComponentClass* cls : {&log_keys_, &subroutines_, &edges_}) {
    for (auto& h : cls->hits) h.store(0, std::memory_order_relaxed);
  }
}

std::size_t CoverageLedger::total_components() const {
  return log_keys_.names.size() + subroutines_.names.size() + edges_.names.size();
}

std::size_t CoverageLedger::hit_components() const {
  return log_keys_.hit_count() + subroutines_.hit_count() + edges_.hit_count();
}

double CoverageLedger::coverage_ratio() const {
  const std::size_t total = total_components();
  return total == 0 ? 1.0 : static_cast<double>(hit_components()) / static_cast<double>(total);
}

common::Json CoverageLedger::to_json() const {
  common::Json doc = common::Json::object();
  doc["kind"] = "intellog_coverage";
  doc["schema_version"] = 1;
  common::Json classes = common::Json::object();
  classes["log_keys"] = log_keys_.to_json();
  classes["subroutines"] = subroutines_.to_json();
  classes["edges"] = edges_.to_json();
  doc["classes"] = std::move(classes);
  doc["total"] = total_components();
  doc["hit"] = hit_components();
  doc["coverage_ratio"] = coverage_ratio();
  return doc;
}

void CoverageLedger::record_metrics(obs::MetricsRegistry& reg) const {
  reg.describe("intellog_model_coverage_ratio",
               "Share of model components exercised by detection, in permille");
  reg.describe("intellog_model_coverage_components", "Model components per class");
  reg.describe("intellog_model_coverage_hit", "Model components with nonzero hits per class");
  reg.gauge("intellog_model_coverage_ratio")
      .set(static_cast<std::int64_t>(coverage_ratio() * 1000.0 + 0.5));
  const auto per_class = [&reg](const char* name, const ComponentClass& cls) {
    reg.gauge("intellog_model_coverage_components", {{"class", name}})
        .set(static_cast<std::int64_t>(cls.names.size()));
    reg.gauge("intellog_model_coverage_hit", {{"class", name}})
        .set(static_cast<std::int64_t>(cls.hit_count()));
  };
  per_class("log_keys", log_keys_);
  per_class("subroutines", subroutines_);
  per_class("edges", edges_);
}

}  // namespace intellog::core
