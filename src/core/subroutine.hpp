// Subroutine construction (§4.1, Algorithm 2 + UpdateSubroutine, Fig. 5).
//
// Within an entity group, Intel-Key sequences that share identifiers form
// subroutine *instances* ("fetcher#1 shuffles attempt_01" = one instance).
// Algorithm 2 partitions a session's group messages into instances by
// identifier-value subset matching (messages without identifiers go to the
// NONE instance). UpdateSubroutine then groups instances by their
// identifier-*type* signature and mines, per signature:
//  - the BEFORE order relations between Intel Keys (an order observed
//    violated once becomes PARALLEL and never returns — Fig. 5),
//  - the critical Intel Keys: keys present in *every* instance so far.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/intel_key.hpp"

namespace intellog::core {

struct DetectScratch;

/// One message of an entity group, reduced to what Algorithm 2 needs.
struct GroupMessage {
  int key_id = -1;
  std::vector<IdentifierValue> ids;  ///< identifiers in the message
  std::size_t record_index = 0;      ///< index into the session's records
  std::uint64_t timestamp_ms = 0;
};

/// A subroutine instance: messages bound together by shared identifiers.
struct SubroutineInstance {
  /// "TYPE:value" strings (S_v), sorted and unique; empty = NONE. A flat
  /// vector instead of a std::set: short strings stay in SSO buffers, so
  /// the detect path's frequent inserts cost no node allocations. The
  /// element sequence is exactly what set iteration produced.
  std::vector<std::string> id_values;
  std::set<std::string> signature;  ///< identifier types
  std::vector<GroupMessage> messages;

  std::set<int> key_set() const;
};

/// Algorithm 2, lines 5-15: partition one session's group messages.
std::vector<SubroutineInstance> partition_instances(const std::vector<GroupMessage>& messages);

/// Move overload for callers done with `messages` (the detect hot path):
/// each message — identifier strings included — moves into its instance
/// instead of being deep-copied. Same partition, same order.
std::vector<SubroutineInstance> partition_instances(std::vector<GroupMessage>&& messages);

/// Scratch variant for the detection hot path: partitions into
/// `scratch.instances`, reusing pooled elements so their messages and
/// id_values buffers keep their capacity bucket to bucket, and assembling
/// the per-message "TYPE:value" working set in reused scratch buffers
/// instead of a fresh std::set<std::string>. Returns the number of leading
/// pool elements that form this bucket's partition — same instances, same
/// order as the returning overloads.
std::size_t partition_instances(std::vector<GroupMessage>&& messages, DetectScratch& scratch);

/// A learned subroutine for one identifier-type signature.
struct Subroutine {
  std::set<std::string> signature;
  std::set<int> keys;                          ///< Intel Keys seen
  std::set<std::pair<int, int>> before;        ///< BEFORE order relations
  std::set<std::pair<int, int>> parallel;      ///< demoted orders
  std::set<int> critical;                      ///< keys in every instance
  std::size_t instance_count = 0;

  /// Keys in subroutine (Table 5's "length of subroutines").
  std::size_t length() const { return keys.size(); }
};

/// The per-entity-group subroutine model (UpdateSubroutine state).
class SubroutineModel {
 public:
  /// Training: consume one session's instances.
  void update(const std::vector<SubroutineInstance>& instances);

  /// Detection: issues found in one instance against the learned model.
  struct InstanceCheck {
    bool known_signature = true;
    /// The trained subroutine the instance matched (null when the
    /// signature is unknown). Points into subroutines(); stable for the
    /// model's lifetime — lets callers reuse the lookup check() already
    /// paid for (e.g. coverage stamping) instead of repeating it.
    const Subroutine* matched = nullptr;
    std::vector<int> missing_critical;  ///< critical keys absent
    std::vector<int> unknown_keys;      ///< keys never seen in this signature
    /// Learned BEFORE orders observed inverted (only reported for
    /// subroutines trained on enough instances to trust the order).
    std::vector<std::pair<int, int>> order_violations;
    bool ok() const {
      return known_signature && missing_critical.empty() && order_violations.empty();
    }
  };
  /// `min_instances_for_order`: BEFORE relations from subroutines with
  /// fewer training instances are not trusted for violation reports.
  InstanceCheck check(const SubroutineInstance& instance,
                      std::size_t min_instances_for_order = 20) const;

  /// Scratch variant for the detection hot path: the per-check key and
  /// first-position working vectors live in `scratch` instead of being
  /// allocated per call. Identical result to the plain overload.
  InstanceCheck check(const SubroutineInstance& instance, DetectScratch& scratch,
                      std::size_t min_instances_for_order = 20) const;

  const std::map<std::set<std::string>, Subroutine>& subroutines() const { return subs_; }
  bool empty() const { return subs_.empty(); }

  /// Replaces the learned subroutines (model deserialization).
  void restore(std::map<std::set<std::string>, Subroutine> subs) { subs_ = std::move(subs); }

 private:
  std::map<std::set<std::string>, Subroutine> subs_;
};

}  // namespace intellog::core
