// Structural model diffing (Quality Observatory).
//
// Two trained models — say, last week's and today's — differ in their
// components: log keys appear, vanish, or get refined (same constant
// skeleton, more/fewer wildcards), entity groups gain or lose members,
// subroutines and HW-graph relations churn. `diff_models` compares
// everything model_io persists, class by class, and condenses the churn
// into one scalar drift score:
//
//   drift = sum_c |union_c| * (1 - Jaccard_c) / sum_c |union_c|
//
// i.e. the union-weighted average per-class Jaccard distance. Identical
// models score exactly 0; disjoint models score 1. Weighting by union size
// keeps a one-member class from swinging the score as hard as the
// 800-edge relation set.
//
// Output (text and JSON) is deterministic: all component lists are sorted.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "core/intellog.hpp"

namespace intellog::core {

/// Added/removed/common components of one class, by stable display name.
struct ClassDiff {
  std::string name;                 ///< "log_keys", "edges", ...
  std::vector<std::string> added;   ///< in B only (sorted)
  std::vector<std::string> removed; ///< in A only (sorted)
  std::size_t common = 0;

  std::size_t union_size() const { return added.size() + removed.size() + common; }
  /// |A∩B| / |A∪B|; 1.0 for two empty sets (no churn in nothing).
  double jaccard() const;
  double drift() const { return 1.0 - jaccard(); }
  common::Json to_json() const;
};

struct ModelDiff {
  ClassDiff log_keys;       ///< identity: full template string
  ClassDiff intel_keys;     ///< identity: key_text
  ClassDiff group_members;  ///< identity: "group/member"
  ClassDiff subroutines;    ///< identity: "group[sig,...]"
  ClassDiff edges;          ///< identity: "a -rel-> b"
  /// Log keys whose de-wildcarded skeleton matches across the two models
  /// but whose template differs: (A's template, B's template) pairs. These
  /// are the same underlying log statement seen with different variable
  /// masking — refinement, not appearance/disappearance (they still count
  /// in added/removed, and therefore in the drift score).
  std::vector<std::pair<std::string, std::string>> refined_keys;

  double drift_score() const;
  /// {"kind": "intellog_model_diff", "drift_score": ..., "classes": {...},
  ///  "refined_keys": [[a, b], ...]} — deterministic.
  common::Json to_json() const;
  /// Human-readable report (+ added, - removed, ~ refined).
  std::string render_text() const;
};

/// Structural diff of two trained (or loaded) models.
ModelDiff diff_models(const IntelLog& a, const IntelLog& b);

}  // namespace intellog::core
