// Intel Keys and Intel Messages (§2.1, §3).
//
// An Intel Key is the paper's enhanced representation of a log key: the
// variable fields are classified (identifier / value / locality / other),
// identifiers carry inferred types, the constant text's entities are
// extracted as lemmatized phrases, and the sentence's operations are
// recorded as {subj-entity, predicate, obj-entity} triples.
//
// An Intel Message is a concrete log message matched against an Intel Key
// with the '*' fields replaced by the actual values — a key-value record
// that "naturally fits in the storage structure of time series databases".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "logparse/log_record.hpp"

namespace intellog::core {

using logparse::FieldCategory;

/// An operation extracted by structure parsing (§3.2). Empty strings mean
/// "no entity found for that slot".
struct Operation {
  std::string subj;
  std::string predicate;  ///< lemmatized
  std::string obj;

  bool operator==(const Operation&) const = default;
};

/// Classification of one variable field of a log key.
struct FieldInfo {
  FieldCategory category = FieldCategory::Other;
  std::string id_type;  ///< identifier type, e.g. "ATTEMPT" (Identifier only)
  std::string unit;     ///< unit word following the field (Value only)
};

/// The enhanced log key (§3.3, Fig. 4).
struct IntelKey {
  int key_id = -1;            ///< Spell log-key id (-1: built from a raw message)
  std::string key_text;       ///< display form, e.g. "* MapTask metrics system"
  std::vector<std::string> entities;  ///< lemmatized entity phrases
  std::vector<FieldInfo> fields;      ///< one per '*' in the key, in order
  std::vector<Operation> operations;
  bool kv_only = false;  ///< not natural language; ignored in detection (§5)

  common::Json to_json() const;
};

/// One identifier occurrence in a message.
struct IdentifierValue {
  std::string type;   ///< e.g. "ATTEMPT"
  std::string value;  ///< e.g. "attempt_01"
};

/// A concrete message structured by its Intel Key (§3.3).
struct IntelMessage {
  int key_id = -1;
  std::uint64_t timestamp_ms = 0;
  std::string container_id;
  std::vector<IdentifierValue> identifiers;
  std::vector<std::pair<std::string, std::string>> values;  ///< (text, unit)
  std::vector<std::string> localities;
  std::vector<std::string> others;  ///< unclassified variable fields

  common::Json to_json() const;
};

}  // namespace intellog::core
