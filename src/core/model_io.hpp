// Trained-model serialization.
//
// Training needs the full corpus; detection does not. save_model/load_model
// round-trip everything detection depends on — Spell log keys, the
// key-value key list, Intel Keys, entity groups, subroutines (keys, order
// relations, critical sets), group lifapan relations and presence counts —
// as a single JSON document, so a model trained once can ship to the
// machines that tail the logs.
#pragma once

#include <string>

#include "common/json.hpp"
#include "core/intellog.hpp"

namespace intellog::core {

/// Serializes a trained IntelLog model. Throws std::logic_error if the
/// model is untrained.
common::Json save_model(const IntelLog& model);

/// Reconstructs a trained IntelLog from save_model output. Throws
/// std::runtime_error on malformed documents.
IntelLog load_model(const common::Json& doc);

/// Convenience file wrappers.
void save_model_file(const IntelLog& model, const std::string& path);
IntelLog load_model_file(const std::string& path);

}  // namespace intellog::core
