#include "core/online.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "common/checksum.hpp"
#include "common/strings.hpp"
#include "obs/flight/flight.hpp"
#include "obs/profile/profile.hpp"
#include "obs/trace.hpp"

namespace intellog::core {

OnlineDetector::OnlineDetector(const IntelLog& model, std::size_t jobs, Limits limits)
    : model_(model), jobs_(jobs), limits_(limits) {
  if (!model.trained()) throw std::logic_error("OnlineDetector: model is untrained");
  if (obs::MetricsRegistry* reg = obs::registry()) {
    reg->describe("intellog_online_records_total", "Log records consumed by the streaming detector");
    reg->describe("intellog_online_unexpected_total", "Records that matched no trained log key");
    reg->describe("intellog_online_sessions_closed_total",
                  "Sessions closed, by reason (explicit/idle/evicted/watchdog)");
    reg->describe("intellog_online_degraded_reports_total",
                  "Reports from force-closed (possibly incomplete) sessions");
    reg->describe("intellog_online_open_sessions", "Currently open streaming sessions");
    reg->describe("intellog_online_buffered_records", "Records buffered across open sessions");
    reg->describe("intellog_online_consume_us",
                  "Per-record consume latency in microseconds (exemplars carry container ids)");
    tel_.records = &reg->counter("intellog_online_records_total");
    tel_.unexpected = &reg->counter("intellog_online_unexpected_total");
    tel_.closed_explicit =
        &reg->counter("intellog_online_sessions_closed_total", {{"reason", "explicit"}});
    tel_.closed_idle =
        &reg->counter("intellog_online_sessions_closed_total", {{"reason", "idle"}});
    tel_.closed_evicted =
        &reg->counter("intellog_online_sessions_closed_total", {{"reason", "evicted"}});
    tel_.closed_watchdog =
        &reg->counter("intellog_online_sessions_closed_total", {{"reason", "watchdog"}});
    tel_.degraded = &reg->counter("intellog_online_degraded_reports_total");
    tel_.open_sessions = &reg->gauge("intellog_online_open_sessions");
    tel_.buffered_records = &reg->gauge("intellog_online_buffered_records");
    tel_.consume_us = &reg->histogram("intellog_online_consume_us", {},
                                      obs::Histogram::default_us_buckets());
  }
}

void OnlineDetector::update_gauges() {
  if (tel_.open_sessions) tel_.open_sessions->set(static_cast<std::int64_t>(open_.size()));
  if (tel_.buffered_records) {
    tel_.buffered_records->set(static_cast<std::int64_t>(total_records_));
  }
}

void OnlineDetector::touch(const std::string& container_id, SessionState& state) {
  if (state.lru_seq != 0) lru_.erase(state.lru_seq);
  state.lru_seq = ++seq_;
  lru_.emplace(state.lru_seq, container_id);
}

logparse::Session OnlineDetector::detach(std::map<std::string, SessionState>::iterator it) {
  SessionState& state = it->second;
  total_records_ -= state.session.records.size();
  if (state.lru_seq != 0) lru_.erase(state.lru_seq);
  if (state.ingress_unix_ms != 0) closed_ingress_[it->first] = state.ingress_unix_ms;
  logparse::Session session = std::move(state.session);
  open_.erase(it);
  return session;
}

void OnlineDetector::enforce_caps() {
  const auto over = [&] {
    return (limits_.max_sessions != 0 && open_.size() > limits_.max_sessions) ||
           (limits_.max_buffered_records != 0 &&
            total_records_ > limits_.max_buffered_records);
  };
  while (over() && !lru_.empty()) {
    // Least-recently-active session flushes through the structural checks
    // in degraded mode rather than letting the buffer grow without bound.
    const auto it = open_.find(lru_.begin()->second);
    logparse::Session victim = detach(it);
    FLIGHT_EVENT(kOnlineEvict,
                 std::hash<std::string>{}(victim.container_id), open_.size());
    AnomalyReport report = model_.detect(victim);
    report.degraded_reason = "lru";
    evicted_.push_back(std::move(report));
    if (tel_.closed_evicted) tel_.closed_evicted->add(1);
    if (tel_.degraded) tel_.degraded->add(1);
  }
  update_gauges();
}

std::optional<OnlineDetector::Event> OnlineDetector::consume(const logparse::LogRecord& record,
                                                             std::uint64_t ingress_unix_ms) {
  PROF_FRAME("online.consume");
  if (record.container_id.empty()) return std::nullopt;
  const std::uint64_t t0 = tel_.consume_us ? obs::monotonic_ns() : 0;
  if (tel_.records) tel_.records->add(1);

  SessionState& state = open_[record.container_id.str()];
  if (state.session.container_id.empty()) {
    state.session.container_id = record.container_id.str();
    state.first_seen_ms = record.timestamp_ms;
  }
  // Earliest arrival wins: a session spanning several spool files is as
  // old as its oldest file.
  if (ingress_unix_ms != 0 &&
      (state.ingress_unix_ms == 0 || ingress_unix_ms < state.ingress_unix_ms)) {
    state.ingress_unix_ms = ingress_unix_ms;
  }
  state.session.records.push_back(record);
  // The buffered copy outlives whatever backing the caller's record
  // borrowed from (mmap ingest), so it must own its bytes.
  state.session.records.back().materialize();
  ++total_records_;
  state.last_seen_ms = std::max(state.last_seen_ms, record.timestamp_ms);
  touch(state.session.container_id, state);

  std::optional<Event> out;
  const int key_id = model_.spell().match(record.content);
  if (key_id < 0) {
    // Unexpected message: surface immediately with on-the-fly extraction.
    Event event;
    event.container_id = record.container_id;
    event.record_index = state.session.records.size() - 1;
    event.unexpected.record_index = event.record_index;
    event.unexpected.content = record.content;
    event.unexpected.extracted = model_.extractor().extract_from_message(record.content);
    logparse::LogKey pseudo;
    pseudo.id = -1;
    for (const auto& tok : common::split_ws(record.content)) {
      if (common::has_digit(tok)) {
        if (pseudo.tokens.empty() || pseudo.tokens.back() != "*") pseudo.tokens.emplace_back("*");
      } else {
        pseudo.tokens.push_back(tok);
      }
    }
    event.unexpected.message =
        model_.extractor().instantiate(event.unexpected.extracted, pseudo, record);
    if (tel_.unexpected) tel_.unexpected->add(1);
    out = std::move(event);
  }

  // Caps last: `state` may dangle afterwards (the current session itself
  // can be flushed when it alone exceeds the record cap).
  enforce_caps();
  if (tel_.consume_us) {
    // Exemplar-labeled: a slow bucket in the status snapshot points back at
    // the session that landed there.
    tel_.consume_us->observe(static_cast<double>(obs::monotonic_ns() - t0) / 1e3,
                             record.container_id);
  }
  return out;
}

std::optional<AnomalyReport> OnlineDetector::close_session(const std::string& container_id) {
  const auto it = open_.find(container_id);
  if (it == open_.end()) return std::nullopt;
  obs::Span span("online/close_session", "online");
  PROF_FRAME("online.drain");
  logparse::Session session = detach(it);
  AnomalyReport report = model_.detect(session);
  if (tel_.closed_explicit) tel_.closed_explicit->add(1);
  update_gauges();
  return report;
}

std::vector<AnomalyReport> OnlineDetector::watchdog(std::uint64_t now_ms) {
  if (limits_.max_session_age_ms == 0) return {};
  obs::Span span("online/watchdog", "online");
  PROF_FRAME("online.drain");
  std::vector<logparse::Session> stuck;
  for (auto it = open_.begin(); it != open_.end();) {
    if (it->second.first_seen_ms + limits_.max_session_age_ms <= now_ms) {
      auto victim = it++;
      stuck.push_back(detach(victim));
    } else {
      ++it;
    }
  }
  std::vector<AnomalyReport> out = model_.detect_batch(stuck, jobs_);
  for (auto& report : out) report.degraded_reason = "watchdog";
  if (tel_.closed_watchdog) tel_.closed_watchdog->add(out.size());
  if (tel_.degraded) tel_.degraded->add(out.size());
  update_gauges();
  return out;
}

std::vector<AnomalyReport> OnlineDetector::close_idle(std::uint64_t now_ms,
                                                      std::uint64_t idle_ms) {
  obs::Span span("online/close_idle", "online");
  PROF_FRAME("online.drain");
  // Drain expired sessions first, then run the structural checks as one
  // sharded batch: reports stay in container-id (map) order.
  std::vector<logparse::Session> expired;
  for (auto it = open_.begin(); it != open_.end();) {
    if (it->second.last_seen_ms + idle_ms <= now_ms) {
      auto victim = it++;
      expired.push_back(detach(victim));
    } else {
      ++it;
    }
  }
  std::vector<AnomalyReport> out = model_.detect_batch(expired, jobs_);
  if (tel_.closed_idle) tel_.closed_idle->add(out.size());
  // Sessions that dodge the idle close by trickling records still fall to
  // the stream-time watchdog.
  for (auto& report : watchdog(now_ms)) out.push_back(std::move(report));
  update_gauges();
  return out;
}

std::vector<AnomalyReport> OnlineDetector::close_all() {
  obs::Span span("online/close_all", "online");
  PROF_FRAME("online.drain");
  std::vector<logparse::Session> sessions;
  sessions.reserve(open_.size());
  for (auto& [id, state] : open_) {
    // close_all bypasses detach() (bulk clear below), so the ingress stamps
    // must be banked here for take_closed_ingress().
    if (state.ingress_unix_ms != 0) closed_ingress_[id] = state.ingress_unix_ms;
    sessions.push_back(std::move(state.session));
  }
  std::vector<AnomalyReport> out = model_.detect_batch(sessions, jobs_);
  if (tel_.closed_explicit) tel_.closed_explicit->add(sessions.size());
  open_.clear();
  lru_.clear();
  total_records_ = 0;
  update_gauges();
  return out;
}

std::vector<AnomalyReport> OnlineDetector::take_evicted() {
  std::vector<AnomalyReport> out;
  out.swap(evicted_);
  return out;
}

std::map<std::string, std::uint64_t> OnlineDetector::take_closed_ingress() {
  std::map<std::string, std::uint64_t> out;
  out.swap(closed_ingress_);
  return out;
}

std::vector<std::string> OnlineDetector::open_sessions() const {
  std::vector<std::string> out;
  for (const auto& [id, state] : open_) {
    (void)state;
    out.push_back(id);
  }
  return out;
}

std::vector<OnlineDetector::OpenSessionInfo> OnlineDetector::open_session_info() const {
  std::vector<OpenSessionInfo> out;
  out.reserve(open_.size());
  for (const auto& [id, state] : open_) {
    out.push_back({id, state.session.records.size(), state.first_seen_ms, state.last_seen_ms});
  }
  return out;
}

std::size_t OnlineDetector::buffered_records(const std::string& container_id) const {
  const auto it = open_.find(container_id);
  return it == open_.end() ? 0 : it->second.session.records.size();
}

// --- checkpoint / restore ----------------------------------------------------

common::Json OnlineDetector::checkpoint() const {
  FLIGHT_EVENT(kOnlineCheckpoint, open_.size(), seq_);
  common::Json doc = common::Json::object();
  doc["kind"] = "intellog_online_checkpoint";
  doc["format_version"] = kCheckpointVersion;
  doc["seq"] = seq_;
  common::Json sessions = common::Json::array();
  for (const auto& [id, state] : open_) {
    (void)id;
    common::Json s = common::Json::object();
    s["container"] = state.session.container_id;
    s["system"] = state.session.system;
    // Provenance rides along (same format version: the keys are optional
    // and absent in pre-observatory checkpoints) so evidence in reports
    // produced after a resume is byte-identical to an uninterrupted run.
    if (!state.session.source_file.empty()) s["file"] = state.session.source_file;
    s["first_seen_ms"] = state.first_seen_ms;
    s["last_seen_ms"] = state.last_seen_ms;
    s["lru_seq"] = state.lru_seq;
    // Optional like "file": absent in pre-telemetry-plane checkpoints, so
    // the format version does not change.
    if (state.ingress_unix_ms != 0) s["ingress_unix_ms"] = state.ingress_unix_ms;
    common::Json records = common::Json::array();
    for (const auto& rec : state.session.records) {
      common::Json r = common::Json::object();
      r["t"] = rec.timestamp_ms;
      r["l"] = rec.level.str();
      r["s"] = rec.source.str();
      r["c"] = rec.content.str();
      if (rec.line_no != 0) r["n"] = static_cast<std::size_t>(rec.line_no);
      if (rec.byte_offset != 0) r["b"] = static_cast<std::int64_t>(rec.byte_offset);
      records.push_back(std::move(r));
    }
    s["records"] = std::move(records);
    sessions.push_back(std::move(s));
  }
  doc["sessions"] = std::move(sessions);
  common::stamp_checksum(doc);
  return doc;
}

void OnlineDetector::checkpoint_file(const std::string& path) const {
  obs::Span span("online/checkpoint", "online");
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) throw std::runtime_error("checkpoint_file: cannot open " + tmp);
    out << checkpoint().dump(2) << "\n";
    out.flush();
    if (!out) throw std::runtime_error("checkpoint_file: write failed: " + tmp);
  }
  // Atomic publish: readers see either the previous checkpoint or the new
  // one, never a torn file.
  std::filesystem::rename(tmp, path);
}

OnlineDetector OnlineDetector::restore(const IntelLog& model, const common::Json& doc,
                                       std::size_t jobs, Limits limits) {
  if (!doc.is_object() || !doc.contains("kind") || !doc["kind"].is_string() ||
      doc["kind"].as_string() != "intellog_online_checkpoint") {
    throw std::runtime_error("OnlineDetector::restore: not a checkpoint document");
  }
  if (!doc.contains("format_version") || !doc["format_version"].is_int()) {
    throw std::runtime_error(
        "OnlineDetector::restore: unsupported checkpoint format version (want " +
        std::to_string(kCheckpointVersion) + ")");
  }
  if (doc["format_version"].as_int() != kCheckpointVersion) {
    // A future version means a newer build wrote fields this one cannot
    // interpret; guessing would half-restore. One clear error, no state.
    throw std::runtime_error(
        "OnlineDetector::restore: checkpoint format version " +
        std::to_string(doc["format_version"].as_int()) +
        " is not supported by this build (supported: " +
        std::to_string(kCheckpointVersion) + "); refusing to restore");
  }
  if (!common::verify_checksum(doc)) {
    throw std::runtime_error(
        "OnlineDetector::restore: checksum mismatch (corrupted checkpoint)");
  }

  // Forward-compatibility guard: a checkpoint carrying keys this build does
  // not know about was written by a newer (or foreign) writer. Restoring
  // around them would silently discard state, so reject before touching
  // anything. Runs after the checksum check so corruption reports as
  // corruption, not as an unknown key.
  const auto reject_unknown_keys = [](const common::JsonObject& obj,
                                      std::initializer_list<std::string_view> known,
                                      const char* where) {
    for (const auto& [key, value] : obj) {
      (void)value;
      if (std::find(known.begin(), known.end(), key) == known.end()) {
        throw std::runtime_error("OnlineDetector::restore: unknown key \"" + key +
                                 "\" in " + where +
                                 " — written by a newer build? refusing to restore");
      }
    }
  };
  reject_unknown_keys(doc.as_object(),
                      {"kind", "format_version", "seq", "sessions", "checksum"},
                      "checkpoint");
  if (doc.contains("sessions") && doc["sessions"].is_array()) {
    for (const auto& s : doc["sessions"].as_array()) {
      if (!s.is_object()) continue;  // shape errors surface below as malformed
      reject_unknown_keys(s.as_object(),
                          {"container", "system", "file", "first_seen_ms",
                           "last_seen_ms", "lru_seq", "ingress_unix_ms", "records"},
                          "session entry");
      if (!s.contains("records") || !s["records"].is_array()) continue;
      for (const auto& r : s["records"].as_array()) {
        if (!r.is_object()) continue;
        reject_unknown_keys(r.as_object(), {"t", "l", "s", "c", "n", "b"},
                            "record entry");
      }
    }
  }

  OnlineDetector det(model, jobs, limits);
  try {
    det.seq_ = static_cast<std::uint64_t>(doc["seq"].as_int());
    for (const auto& s : doc["sessions"].as_array()) {
      SessionState state;
      state.session.container_id = s["container"].as_string();
      state.session.system = s["system"].as_string();
      if (s.contains("file")) state.session.source_file = s["file"].as_string();
      state.first_seen_ms = static_cast<std::uint64_t>(s["first_seen_ms"].as_int());
      state.last_seen_ms = static_cast<std::uint64_t>(s["last_seen_ms"].as_int());
      state.lru_seq = static_cast<std::uint64_t>(s["lru_seq"].as_int());
      if (s.contains("ingress_unix_ms")) {
        state.ingress_unix_ms = static_cast<std::uint64_t>(s["ingress_unix_ms"].as_int());
      }
      for (const auto& r : s["records"].as_array()) {
        logparse::LogRecord rec;
        rec.timestamp_ms = static_cast<std::uint64_t>(r["t"].as_int());
        rec.level = r["l"].as_string();
        rec.source = r["s"].as_string();
        rec.content = r["c"].as_string();
        if (r.contains("n")) rec.line_no = static_cast<std::uint32_t>(r["n"].as_int());
        if (r.contains("b")) rec.byte_offset = static_cast<std::uint64_t>(r["b"].as_int());
        rec.container_id = state.session.container_id;
        state.session.records.push_back(std::move(rec));
      }
      det.total_records_ += state.session.records.size();
      if (state.lru_seq != 0) det.lru_.emplace(state.lru_seq, state.session.container_id);
      det.seq_ = std::max(det.seq_, state.lru_seq);
      det.open_.emplace(state.session.container_id, std::move(state));
    }
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("OnlineDetector::restore: malformed checkpoint: ") +
                             e.what());
  }
  det.update_gauges();
  return det;
}

OnlineDetector OnlineDetector::restore_file(const IntelLog& model, const std::string& path,
                                            std::size_t jobs, Limits limits) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("OnlineDetector::restore_file: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  common::Json doc;
  try {
    doc = common::Json::parse(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error("OnlineDetector::restore_file: " + path +
                             " is not valid JSON (torn checkpoint?): " + e.what());
  }
  return restore(model, doc, jobs, limits);
}

}  // namespace intellog::core
