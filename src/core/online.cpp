#include "core/online.hpp"

#include <stdexcept>

#include "common/strings.hpp"
#include "obs/trace.hpp"

namespace intellog::core {

OnlineDetector::OnlineDetector(const IntelLog& model, std::size_t jobs)
    : model_(model), jobs_(jobs) {
  if (!model.trained()) throw std::logic_error("OnlineDetector: model is untrained");
  if (obs::MetricsRegistry* reg = obs::registry()) {
    tel_.records = &reg->counter("intellog_online_records_total");
    tel_.unexpected = &reg->counter("intellog_online_unexpected_total");
    tel_.closed_explicit =
        &reg->counter("intellog_online_sessions_closed_total", {{"reason", "explicit"}});
    tel_.closed_idle =
        &reg->counter("intellog_online_sessions_closed_total", {{"reason", "idle"}});
    tel_.open_sessions = &reg->gauge("intellog_online_open_sessions");
    tel_.consume_us = &reg->histogram("intellog_online_consume_us", {},
                                      obs::Histogram::default_us_buckets());
  }
}

std::optional<OnlineDetector::Event> OnlineDetector::consume(const logparse::LogRecord& record) {
  if (record.container_id.empty()) return std::nullopt;
  const std::uint64_t t0 = tel_.consume_us ? obs::monotonic_ns() : 0;
  if (tel_.records) tel_.records->add(1);

  SessionState& state = open_[record.container_id];
  if (state.session.container_id.empty()) state.session.container_id = record.container_id;
  state.session.records.push_back(record);
  state.last_seen_ms = std::max(state.last_seen_ms, record.timestamp_ms);
  if (tel_.open_sessions) tel_.open_sessions->set(static_cast<std::int64_t>(open_.size()));

  const int key_id = model_.spell().match(record.content);
  if (key_id >= 0) {
    if (tel_.consume_us) {
      tel_.consume_us->observe(static_cast<double>(obs::monotonic_ns() - t0) / 1e3);
    }
    return std::nullopt;
  }

  // Unexpected message: surface immediately with on-the-fly extraction.
  Event event;
  event.container_id = record.container_id;
  event.record_index = state.session.records.size() - 1;
  event.unexpected.record_index = event.record_index;
  event.unexpected.content = record.content;
  event.unexpected.extracted = model_.extractor().extract_from_message(record.content);
  logparse::LogKey pseudo;
  pseudo.id = -1;
  for (const auto& tok : common::split_ws(record.content)) {
    if (common::has_digit(tok)) {
      if (pseudo.tokens.empty() || pseudo.tokens.back() != "*") pseudo.tokens.emplace_back("*");
    } else {
      pseudo.tokens.push_back(tok);
    }
  }
  event.unexpected.message =
      model_.extractor().instantiate(event.unexpected.extracted, pseudo, record);
  if (tel_.unexpected) tel_.unexpected->add(1);
  if (tel_.consume_us) {
    tel_.consume_us->observe(static_cast<double>(obs::monotonic_ns() - t0) / 1e3);
  }
  return event;
}

std::optional<AnomalyReport> OnlineDetector::close_session(const std::string& container_id) {
  const auto it = open_.find(container_id);
  if (it == open_.end()) return std::nullopt;
  obs::Span span("online/close_session", "online");
  AnomalyReport report = model_.detect(it->second.session);
  open_.erase(it);
  if (tel_.closed_explicit) tel_.closed_explicit->add(1);
  if (tel_.open_sessions) tel_.open_sessions->set(static_cast<std::int64_t>(open_.size()));
  return report;
}

std::vector<AnomalyReport> OnlineDetector::close_idle(std::uint64_t now_ms,
                                                      std::uint64_t idle_ms) {
  obs::Span span("online/close_idle", "online");
  // Drain expired sessions first, then run the structural checks as one
  // sharded batch: reports stay in container-id (map) order.
  std::vector<logparse::Session> expired;
  for (auto it = open_.begin(); it != open_.end();) {
    if (it->second.last_seen_ms + idle_ms <= now_ms) {
      expired.push_back(std::move(it->second.session));
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
  std::vector<AnomalyReport> out = model_.detect_batch(expired, jobs_);
  if (tel_.closed_idle) tel_.closed_idle->add(out.size());
  if (tel_.open_sessions) tel_.open_sessions->set(static_cast<std::int64_t>(open_.size()));
  return out;
}

std::vector<AnomalyReport> OnlineDetector::close_all() {
  obs::Span span("online/close_all", "online");
  std::vector<logparse::Session> sessions;
  sessions.reserve(open_.size());
  for (auto& [id, state] : open_) {
    (void)id;
    sessions.push_back(std::move(state.session));
  }
  std::vector<AnomalyReport> out = model_.detect_batch(sessions, jobs_);
  if (tel_.closed_explicit) tel_.closed_explicit->add(sessions.size());
  open_.clear();
  if (tel_.open_sessions) tel_.open_sessions->set(0);
  return out;
}

std::vector<std::string> OnlineDetector::open_sessions() const {
  std::vector<std::string> out;
  for (const auto& [id, state] : open_) {
    (void)state;
    out.push_back(id);
  }
  return out;
}

std::size_t OnlineDetector::buffered_records(const std::string& container_id) const {
  const auto it = open_.find(container_id);
  return it == open_.end() ? 0 : it->second.session.records.size();
}

}  // namespace intellog::core
