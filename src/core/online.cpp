#include "core/online.hpp"

#include <stdexcept>

#include "common/strings.hpp"

namespace intellog::core {

OnlineDetector::OnlineDetector(const IntelLog& model) : model_(model) {
  if (!model.trained()) throw std::logic_error("OnlineDetector: model is untrained");
}

std::optional<OnlineDetector::Event> OnlineDetector::consume(const logparse::LogRecord& record) {
  if (record.container_id.empty()) return std::nullopt;
  SessionState& state = open_[record.container_id];
  if (state.session.container_id.empty()) state.session.container_id = record.container_id;
  state.session.records.push_back(record);
  state.last_seen_ms = std::max(state.last_seen_ms, record.timestamp_ms);

  const int key_id = model_.spell().match(record.content);
  if (key_id >= 0) return std::nullopt;

  // Unexpected message: surface immediately with on-the-fly extraction.
  Event event;
  event.container_id = record.container_id;
  event.record_index = state.session.records.size() - 1;
  event.unexpected.record_index = event.record_index;
  event.unexpected.content = record.content;
  event.unexpected.extracted = model_.extractor().extract_from_message(record.content);
  logparse::LogKey pseudo;
  pseudo.id = -1;
  for (const auto& tok : common::split_ws(record.content)) {
    if (common::has_digit(tok)) {
      if (pseudo.tokens.empty() || pseudo.tokens.back() != "*") pseudo.tokens.emplace_back("*");
    } else {
      pseudo.tokens.push_back(tok);
    }
  }
  event.unexpected.message =
      model_.extractor().instantiate(event.unexpected.extracted, pseudo, record);
  return event;
}

std::optional<AnomalyReport> OnlineDetector::close_session(const std::string& container_id) {
  const auto it = open_.find(container_id);
  if (it == open_.end()) return std::nullopt;
  AnomalyReport report = model_.detect(it->second.session);
  open_.erase(it);
  return report;
}

std::vector<AnomalyReport> OnlineDetector::close_idle(std::uint64_t now_ms,
                                                      std::uint64_t idle_ms) {
  std::vector<AnomalyReport> out;
  for (auto it = open_.begin(); it != open_.end();) {
    if (it->second.last_seen_ms + idle_ms <= now_ms) {
      out.push_back(model_.detect(it->second.session));
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<AnomalyReport> OnlineDetector::close_all() {
  std::vector<AnomalyReport> out;
  for (const auto& [id, state] : open_) {
    (void)id;
    out.push_back(model_.detect(state.session));
  }
  open_.clear();
  return out;
}

std::vector<std::string> OnlineDetector::open_sessions() const {
  std::vector<std::string> out;
  for (const auto& [id, state] : open_) {
    (void)state;
    out.push_back(id);
  }
  return out;
}

std::size_t OnlineDetector::buffered_records(const std::string& container_id) const {
  const auto it = open_.find(container_id);
  return it == open_.end() ? 0 : it->second.session.records.size();
}

}  // namespace intellog::core
