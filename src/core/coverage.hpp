// Model coverage ledger (Quality Observatory).
//
// A trained model is a set of components — Spell log keys, mined
// subroutines, HW-graph relations — and production traffic exercises only
// some of them. The ledger counts, per component, how many times detection
// actually touched it: a log key hit by Spell matching, a subroutine whose
// signature matched an instance, a relation whose both endpoint groups
// appeared in one session. Components with zero hits after a
// representative workload are dead weight (trained on behaviour the
// workload no longer shows — the first symptom of model drift); components
// hit far less than their peers are stale.
//
// Stamping happens inside AnomalyDetector::detect behind a toggle
// (IntelLog::set_coverage_enabled, mirroring the evidence flag): counters
// are relaxed atomics, so concurrent detect_batch shards stamp safely and
// the totals are identical at any --jobs width (increments commute).
// Verdicts are never affected.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/json.hpp"
#include "core/hw_graph.hpp"
#include "logparse/spell.hpp"

namespace intellog::obs {
class MetricsRegistry;
}

namespace intellog::core {

class CoverageLedger {
 public:
  /// Builds the component universe from a trained model's parts. The
  /// universe is fixed at construction; stamping unknown components is a
  /// silent no-op (e.g. a signature the model never learned).
  CoverageLedger(const logparse::Spell& spell, const HwGraph& graph);

  CoverageLedger(const CoverageLedger&) = delete;
  CoverageLedger& operator=(const CoverageLedger&) = delete;

  // --- stamping (hot path, thread-safe) ----------------------------------
  void stamp_log_key(int key_id);
  void stamp_subroutine(const std::string& group, const std::set<std::string>& signature);
  /// Stamps by the trained subroutine's address (as exposed in
  /// InstanceCheck::matched) — one pointer-hash lookup, reusing the
  /// signature search the detector's model check already performed.
  void stamp_subroutine(const Subroutine* sub);
  void stamp_edge(const std::string& a, const std::string& b);
  /// Stamps every relation whose both endpoint groups appear in
  /// `groups_seen`. Walks the precomputed adjacency of the seen groups —
  /// integer slots only, no string building — so the per-session cost
  /// scales with the session's groups, not the model's edge count.
  void stamp_edges(const std::set<std::string>& groups_seen);

  /// Zeroes every counter (the universe is unchanged).
  void reset();

  // --- reporting ----------------------------------------------------------
  std::size_t total_components() const;
  std::size_t hit_components() const;
  /// hit / total; 1.0 for an empty universe (nothing to cover).
  double coverage_ratio() const;

  /// {"kind": "intellog_coverage", "classes": {log_keys|subroutines|edges:
  ///  {total, hit, dead: [...], stale: [...], components: [{name, hits}]}},
  ///  ...}. Deterministic: components are listed in model order. "dead" is
  ///  zero hits; "stale" is nonzero but under 5% of the class's busiest
  ///  component.
  common::Json to_json() const;

  /// Exports intellog_model_coverage_ratio (permille — gauges are integer)
  /// plus per-class hit/total gauges labelled {class="..."}.
  void record_metrics(obs::MetricsRegistry& reg) const;

 private:
  /// One component class: display names in model order, hit counters
  /// parallel to them, and a stamp-key -> slot index.
  struct ComponentClass {
    std::vector<std::string> names;
    std::vector<std::atomic<std::uint64_t>> hits;
    std::unordered_map<std::string, std::size_t> index;

    explicit ComponentClass(std::vector<std::string> component_names);
    common::Json to_json() const;
    std::size_t hit_count() const;
  };

  void stamp(ComponentClass& cls, const std::string& key);

  ComponentClass log_keys_;
  ComponentClass subroutines_;
  ComponentClass edges_;
  /// key id -> slot (-1: unknown); Spell ids are dense, so a flat array
  /// makes the per-record stamp one bounds check + one relaxed increment.
  std::vector<std::int32_t> log_key_slots_;
  std::unordered_map<std::string, std::size_t> group_ids_;
  /// per group id: signature -> subroutine slot (same key shape as the
  /// SubroutineModel's own map, so no string building on the hot path).
  std::vector<std::map<std::set<std::string>, std::size_t>> subroutine_slots_;
  /// trained-subroutine address -> slot; map node addresses are stable for
  /// the graph's lifetime, which bounds the ledger's.
  std::unordered_map<const Subroutine*, std::size_t> subroutine_ptr_slots_;
  /// per group id: (neighbour group id, edge slot) for edges where this
  /// group is the first endpoint.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> edge_adjacency_;
};

/// Stable stamp key for a subroutine: "<group>[sig1,sig2,...]".
std::string subroutine_component_key(const std::string& group,
                                     const std::set<std::string>& signature);
/// Stable stamp key for a relation edge: "<a>|<b>" (as stored in the
/// graph's relation map, no canonicalization).
std::string edge_component_key(const std::string& a, const std::string& b);

}  // namespace intellog::core
