// The Hierarchical Workflow graph (§4.1, Figs. 6-8).
//
// Entity groups get lifespans per session (first..last message of the
// group). Two groups relate as PARENT when one's lifespan nests inside the
// other's in *every* session they share, BEFORE when one always ends before
// the other begins, and PARALLEL otherwise. The HW-graph is the containment
// tree plus the BEFORE edges among siblings, with each group carrying its
// subroutines. Critical groups (§6.3) have multiple Intel Keys or a key
// that repeats within a single session.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/entity_grouping.hpp"
#include "core/subroutine.hpp"

namespace intellog::core {

enum class GroupRelation { Parent, ChildOf, Before, After, Parallel };

std::string_view to_string(GroupRelation rel);

/// Lifespan of an entity group within one session.
struct Lifespan {
  std::uint64_t first_ms = 0;
  std::uint64_t last_ms = 0;
  std::size_t message_count = 0;
};

using SessionLifespans = std::map<std::string, Lifespan>;

/// Per-group aggregate state in the trained HW-graph.
struct GroupNode {
  std::string name;
  std::set<int> keys;              ///< Intel Keys whose entities hit the group
  SubroutineModel subroutines;
  std::size_t sessions_present = 0;
  bool repeated_key_in_session = false;  ///< §6.3 critical criterion 2

  /// §6.3: multiple Intel Keys, or one key logging repeatedly in a session.
  bool is_critical() const { return keys.size() >= 2 || repeated_key_in_session; }
};

class HwGraph {
 public:
  /// Relation from a to b (a PARENT b == b nests in a). Pairs that never
  /// co-occurred return nullopt.
  std::optional<GroupRelation> relation(const std::string& a, const std::string& b) const;

  const std::map<std::string, GroupNode>& groups() const { return groups_; }
  GroupNode& group(const std::string& name) { return groups_[name]; }
  const std::vector<std::string>& roots() const { return roots_; }
  const std::vector<std::string>& children_of(const std::string& g) const;
  /// Parent in the containment tree ("" for roots).
  std::string parent_of(const std::string& g) const;

  std::size_t training_sessions() const { return training_sessions_; }
  /// Groups present in >= `fraction` of training sessions (detection
  /// expects them in every session).
  std::vector<std::string> expected_groups(double fraction) const;

  std::size_t critical_group_count() const;

  /// All pairwise relations (serialization / introspection).
  const std::map<std::pair<std::string, std::string>, GroupRelation>& relations() const {
    return relations_;
  }

  /// Restores the structural state (model deserialization): relations,
  /// parent pointers (children/roots are derived) and the training-session
  /// count. Group nodes must already be populated via group().
  void restore_structure(
      std::map<std::pair<std::string, std::string>, GroupRelation> relations,
      std::map<std::string, std::string> parent, std::size_t training_sessions);

  /// Fig.-8-style JSON export (hierarchy + relations + subroutines).
  common::Json to_json() const;

  /// Graphviz DOT export: containment tree as solid edges, BEFORE
  /// relations among roots as dashed edges, critical groups shaded.
  std::string to_dot() const;

 private:
  friend class HwGraphBuilder;
  std::map<std::string, GroupNode> groups_;
  std::map<std::pair<std::string, std::string>, GroupRelation> relations_;
  std::map<std::string, std::string> parent_;
  std::map<std::string, std::vector<std::string>> children_;
  std::vector<std::string> roots_;
  std::size_t training_sessions_ = 0;
};

/// Accumulates per-session lifespans, then computes relations and the tree
/// (the Fig. 7 construction).
class HwGraphBuilder {
 public:
  void add_session(const SessionLifespans& spans);
  /// Consumes accumulated state; `graph.groups_` must already be populated
  /// with keys/subroutines by the caller (the IntelLog facade does this).
  void finalize(HwGraph& graph) const;

 private:
  struct PairStats {
    std::size_t together = 0;
    bool a_in_b = true, b_in_a = true;   // containment in every session
    bool a_before_b = true, b_before_a = true;
  };
  std::map<std::string, std::size_t> presence_;
  std::map<std::pair<std::string, std::string>, PairStats> pairs_;  // a < b
  std::size_t sessions_ = 0;
};

}  // namespace intellog::core
