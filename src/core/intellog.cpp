#include "core/intellog.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/thread_pool.hpp"
#include "core/detect_scratch.hpp"
#include "obs/flight/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/profile/profile.hpp"
#include "obs/trace.hpp"

namespace intellog::core {

namespace {

/// Per-stage training latency histogram, or nullptr when metrics are off.
obs::Histogram* stage_hist(const char* stage) {
  obs::MetricsRegistry* reg = obs::registry();
  return reg ? &reg->histogram("intellog_train_stage_ms", {{"stage", stage}}) : nullptr;
}

/// Help text for every IntelLog metric family, so Prometheus exposition
/// carries # HELP alongside # TYPE. Safe to call repeatedly.
void describe_families(obs::MetricsRegistry& reg) {
  reg.describe("intellog_train_stage_ms", "Per-stage training latency in milliseconds");
  reg.describe("intellog_train_sessions_total", "Sessions consumed during training");
  reg.describe("intellog_train_records_total", "Log records consumed during training");
  reg.describe("intellog_model_log_keys", "Spell log keys in the trained model");
  reg.describe("intellog_model_intel_keys", "NLP Intel Keys in the trained model");
  reg.describe("intellog_model_entity_groups", "Entity groups in the trained model");
  reg.describe("intellog_model_graph_nodes", "HW-graph group nodes in the trained model");
  reg.describe("intellog_model_graph_edges", "HW-graph relations in the trained model");
  reg.describe("intellog_model_critical_groups",
               "Entity groups flagged critical in the trained model");
  reg.describe("intellog_model_subroutines", "Mined subroutines across all group nodes");
  reg.describe("intellog_detect_session_ms", "Per-session detection latency in milliseconds");
  reg.describe("intellog_detect_sessions_total", "Sessions run through detection");
  reg.describe("intellog_detect_records_total", "Log records run through detection");
  reg.describe("intellog_detect_unexpected_total", "Unexpected-message findings emitted");
  reg.describe("intellog_detect_issues_total", "Group-issue findings emitted");
  reg.describe("intellog_detect_anomalous_total", "Sessions judged anomalous");
  reg.describe("intellog_detect_batch_ms", "Batch detection wall time in milliseconds");
  reg.describe("intellog_detect_batch_shard_ms", "Per-shard batch detection latency");
  reg.describe("intellog_detect_batch_shard_sessions_total", "Sessions handled per shard");
  reg.describe("intellog_detect_batch_total", "Batch detection invocations");
  reg.describe("intellog_detect_batch_sessions_total", "Sessions across all batch runs");
  reg.describe("intellog_detect_batch_records_total", "Records across all batch runs");
  reg.describe("intellog_detect_batch_shards", "Shard count of the latest batch run");
}

}  // namespace

IntelLog::IntelLog(Config config)
    : config_(config),
      spell_(config.spell_threshold),
      kv_filter_(&extractor_.tagger().lexicon()) {}

IntelLog::IntelLog(IntelLog&& other) noexcept
    : config_(other.config_),
      extractor_(std::move(other.extractor_)),
      spell_(std::move(other.spell_)),
      kv_filter_(std::move(other.kv_filter_)),
      intel_keys_(std::move(other.intel_keys_)),
      samples_(std::move(other.samples_)),
      groups_(std::move(other.groups_)),
      graph_(std::move(other.graph_)),
      trained_(other.trained_) {
  const bool coverage_attached = other.coverage_enabled();
  coverage_ = std::move(other.coverage_);
  other.detector_.reset();
  other.trained_ = false;
  if (trained_) {
    detector_ = std::make_unique<AnomalyDetector>(spell_, kv_filter_, extractor_, intel_keys_,
                                                  groups_, graph_,
                                                  config_.expected_group_fraction);
    if (coverage_attached) detector_->set_coverage(coverage_.get());
  }
}

IntelLog& IntelLog::operator=(IntelLog&& other) noexcept {
  if (this == &other) return *this;
  const bool coverage_attached = other.coverage_enabled();
  detector_.reset();
  config_ = other.config_;
  extractor_ = std::move(other.extractor_);
  spell_ = std::move(other.spell_);
  kv_filter_ = std::move(other.kv_filter_);
  intel_keys_ = std::move(other.intel_keys_);
  samples_ = std::move(other.samples_);
  groups_ = std::move(other.groups_);
  graph_ = std::move(other.graph_);
  coverage_ = std::move(other.coverage_);
  trained_ = other.trained_;
  other.detector_.reset();
  other.trained_ = false;
  if (trained_) {
    detector_ = std::make_unique<AnomalyDetector>(spell_, kv_filter_, extractor_, intel_keys_,
                                                  groups_, graph_,
                                                  config_.expected_group_fraction);
    if (coverage_attached) detector_->set_coverage(coverage_.get());
  }
  return *this;
}

void IntelLog::set_coverage_enabled(bool enabled) const {
  if (!detector_) return;
  if (enabled) {
    if (!coverage_) coverage_ = std::make_unique<CoverageLedger>(spell_, graph_);
    detector_->set_coverage(coverage_.get());
  } else {
    detector_->set_coverage(nullptr);
  }
}

const std::string& IntelLog::sample_message(int key_id) const {
  static const std::string kEmpty;
  const auto it = samples_.find(key_id);
  return it == samples_.end() ? kEmpty : it->second;
}

std::set<std::string> IntelLog::groups_of_key(int key_id) const {
  std::set<std::string> out;
  const auto it = intel_keys_.find(key_id);
  if (it == intel_keys_.end()) return out;
  for (const auto& entity : it->second.entities) {
    const auto& gs = groups_.groups_of(entity);
    out.insert(gs.begin(), gs.end());
  }
  return out;
}

void IntelLog::train(const std::vector<logparse::Session>& sessions) {
  if (trained_) throw std::logic_error("IntelLog::train called twice");
  obs::Span train_span("train");
  PROF_FRAME("train.pipeline");

  // --- Stage 1 (Fig. 2): Spell log-key extraction --------------------------
  std::vector<std::vector<int>> session_keys(sessions.size());
  {
    obs::Span span("train/spell");
    PROF_FRAME("train.spell");
    obs::ScopedTimerMs timer(stage_hist("spell"));
    for (std::size_t si = 0; si < sessions.size(); ++si) {
      session_keys[si].reserve(sessions[si].records.size());
      for (const auto& rec : sessions[si].records) {
        const int id = spell_.consume(rec.content);
        if (id >= 0) samples_.try_emplace(id, rec.content);
        session_keys[si].push_back(id);
      }
    }
  }

  // --- Stage 2: Intel Keys (NL keys only; key-value keys are learned and
  // skipped, §5). Extraction is independent per key -> parallel.
  common::ThreadPool pool(config_.num_threads);
  {
    obs::Span span("train/extract");
    PROF_FRAME("train.extract");
    obs::ScopedTimerMs timer(stage_hist("extract"));
    // Snapshot a const view of the sample map before the parallel region:
    // std::map::operator[] can insert, and concurrent inserts from pool
    // workers would race. Every key id returned by consume() has a sample
    // (stage 1 try_emplaces one per id), so .at() lookups cannot throw.
    const std::map<int, std::string>& samples = samples_;
    std::vector<int> nl_keys;
    for (const auto& key : spell_.keys()) {
      const std::string& sample = samples.at(key.id);
      // §5: only pure key-value status lines are omitted; clause-less prose
      // still gets an Intel Key.
      if (kv_filter_.is_kv_only(sample)) {
        kv_filter_.learn_kv_key(key.id);
      } else {
        nl_keys.push_back(key.id);
      }
    }
    std::vector<IntelKey> extracted(nl_keys.size());
    pool.parallel_for(nl_keys.size(), [&](std::size_t i) {
      const int id = nl_keys[i];
      extracted[i] = extractor_.extract(spell_.key(id), samples.at(id));
    });
    for (auto& ik : extracted) intel_keys_.emplace(ik.key_id, std::move(ik));
  }

  // --- Stage 3: entity grouping (Algorithm 1) ------------------------------
  {
    obs::Span span("train/group");
    obs::ScopedTimerMs timer(stage_hist("group"));
    std::vector<std::string> all_entities;
    for (const auto& [id, ik] : intel_keys_) {
      (void)id;
      all_entities.insert(all_entities.end(), ik.entities.begin(), ik.entities.end());
    }
    groups_ = group_entities(all_entities);
  }
  std::map<int, std::set<std::string>> key_groups;
  for (const auto& [id, ik] : intel_keys_) {
    (void)ik;
    key_groups[id] = groups_of_key(id);
  }

  // --- Stage 3b: per-session group sequences, lifespans, subroutines ------
  struct SessionView {
    SessionLifespans spans;
    std::map<std::string, std::vector<GroupMessage>> group_messages;
  };
  std::vector<SessionView> views(sessions.size());
  {
    obs::Span span("train/subroutines");
    PROF_FRAME("train.subroutines");
    obs::ScopedTimerMs timer(stage_hist("subroutines"));
    pool.parallel_for(sessions.size(), [&](std::size_t si) {
      obs::Span view_span("train/session_view");
      SessionView& view = views[si];
      const auto& session = sessions[si];
      for (std::size_t ri = 0; ri < session.records.size(); ++ri) {
        const int id = session_keys[si][ri];
        if (id < 0 || kv_filter_.is_learned_kv_key(id)) continue;
        const auto kg = key_groups.find(id);
        if (kg == key_groups.end() || kg->second.empty()) continue;
        const IntelMessage msg =
            extractor_.instantiate(intel_keys_.at(id), spell_.key(id), session.records[ri]);
        GroupMessage gm;
        gm.key_id = id;
        gm.ids = msg.identifiers;
        gm.record_index = ri;
        gm.timestamp_ms = session.records[ri].timestamp_ms;
        for (const auto& g : kg->second) {
          view.group_messages[g].push_back(gm);
          auto [it, fresh] = view.spans.emplace(g, Lifespan{gm.timestamp_ms, gm.timestamp_ms, 1});
          if (!fresh) {
            it->second.first_ms = std::min(it->second.first_ms, gm.timestamp_ms);
            it->second.last_ms = std::max(it->second.last_ms, gm.timestamp_ms);
            it->second.message_count++;
          }
        }
      }
    });
  }

  {
    obs::Span span("train/hwgraph");
    PROF_FRAME("train.hwgraph");
    obs::ScopedTimerMs timer(stage_hist("hwgraph"));
    HwGraphBuilder builder;
    for (const SessionView& view : views) {
      builder.add_session(view.spans);
      for (const auto& [gname, messages] : view.group_messages) {
        GroupNode& node = graph_.group(gname);
        std::map<int, int> key_counts;
        for (const auto& m : messages) {
          node.keys.insert(m.key_id);
          if (++key_counts[m.key_id] >= 2) node.repeated_key_in_session = true;
        }
        node.subroutines.update(partition_instances(messages));
      }
    }
    builder.finalize(graph_);
  }

  detector_ = std::make_unique<AnomalyDetector>(spell_, kv_filter_, extractor_, intel_keys_,
                                                groups_, graph_,
                                                config_.expected_group_fraction);
  trained_ = true;

  if (obs::MetricsRegistry* reg = obs::registry()) {
    std::size_t records = 0;
    for (const auto& s : sessions) records += s.records.size();
    reg->counter("intellog_train_sessions_total").add(sessions.size());
    reg->counter("intellog_train_records_total").add(records);
    record_model_metrics(*reg);
  }
}

void IntelLog::record_model_metrics(obs::MetricsRegistry& reg) const {
  describe_families(reg);
  std::size_t subroutines = 0;
  for (const auto& [name, node] : graph_.groups()) {
    (void)name;
    subroutines += node.subroutines.subroutines().size();
  }
  reg.gauge("intellog_model_log_keys").set(static_cast<std::int64_t>(spell_.size()));
  reg.gauge("intellog_model_intel_keys").set(static_cast<std::int64_t>(intel_keys_.size()));
  reg.gauge("intellog_model_entity_groups").set(static_cast<std::int64_t>(groups_.groups.size()));
  reg.gauge("intellog_model_graph_nodes").set(static_cast<std::int64_t>(graph_.groups().size()));
  reg.gauge("intellog_model_graph_edges")
      .set(static_cast<std::int64_t>(graph_.relations().size()));
  reg.gauge("intellog_model_critical_groups")
      .set(static_cast<std::int64_t>(graph_.critical_group_count()));
  reg.gauge("intellog_model_subroutines").set(static_cast<std::int64_t>(subroutines));
}

AnomalyReport IntelLog::detect(const logparse::Session& session) const {
  thread_local DetectScratch scratch;
  return detect(session, scratch);
}

AnomalyReport IntelLog::detect(const logparse::Session& session, DetectScratch& scratch) const {
  if (!trained_) throw std::logic_error("IntelLog::detect before train");
  obs::Span span("detect");
  obs::MetricsRegistry* reg = obs::registry();
  obs::ScopedTimerMs timer(reg ? &reg->histogram("intellog_detect_session_ms") : nullptr);
  AnomalyReport report = detector_->detect(session, scratch);
  if (reg) {
    reg->counter("intellog_detect_sessions_total").add(1);
    reg->counter("intellog_detect_records_total").add(session.records.size());
    reg->counter("intellog_detect_unexpected_total").add(report.unexpected.size());
    reg->counter("intellog_detect_issues_total").add(report.issues.size());
    if (report.anomalous()) reg->counter("intellog_detect_anomalous_total").add(1);
  }
  return report;
}

std::vector<AnomalyReport> IntelLog::detect_batch(std::span<const logparse::Session> sessions,
                                                  std::size_t jobs) const {
  if (!trained_) throw std::logic_error("IntelLog::detect_batch before train");
  obs::Span span("detect_batch");
  std::vector<AnomalyReport> reports(sessions.size());
  if (sessions.empty()) return reports;

  if (jobs == 0) jobs = config_.num_threads;
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t shards = std::min(jobs, sessions.size());

  obs::MetricsRegistry* reg = obs::registry();
  obs::ScopedTimerMs timer(reg ? &reg->histogram("intellog_detect_batch_ms") : nullptr);

  // Contiguous shards, one pool task each: reports land at their input
  // index, so the output order (and content — detect() is pure) is
  // identical no matter how many workers run or how they interleave.
  const auto run_shard = [&](std::size_t shard) {
    PROF_FRAME("detect.batch_shard");
    // One scratch per shard: the arena's pages are acquired on the first
    // session and rewound (not freed) between sessions, so a shard of N
    // sessions does page setup once, not N times.
    DetectScratch scratch;
    const std::size_t begin = sessions.size() * shard / shards;
    const std::size_t end = sessions.size() * (shard + 1) / shards;
    FLIGHT_EVENT(kDetectShardBegin, shard, end - begin);
    obs::ScopedTimerMs shard_timer(
        reg ? &reg->histogram("intellog_detect_batch_shard_ms",
                              {{"shard", std::to_string(shard)}})
            : nullptr);
    if (reg) {
      reg->counter("intellog_detect_batch_shard_sessions_total",
                   {{"shard", std::to_string(shard)}})
          .add(end - begin);
    }
    for (std::size_t i = begin; i < end; ++i) reports[i] = detect(sessions[i], scratch);
    FLIGHT_EVENT(kDetectShardEnd, shard, end - begin);
  };
  if (shards == 1) {
    run_shard(0);
  } else {
    common::ThreadPool pool(shards);
    pool.parallel_for(shards, run_shard);
  }

  if (reg) {
    std::size_t records = 0;
    for (const auto& s : sessions) records += s.records.size();
    reg->counter("intellog_detect_batch_total").add(1);
    reg->counter("intellog_detect_batch_sessions_total").add(sessions.size());
    reg->counter("intellog_detect_batch_records_total").add(records);
    reg->gauge("intellog_detect_batch_shards").set(static_cast<std::int64_t>(shards));
    if (coverage_enabled()) coverage_->record_metrics(*reg);
  }
  return reports;
}

std::vector<IntelMessage> IntelLog::to_intel_messages(const logparse::Session& session) const {
  std::vector<IntelMessage> out;
  for (const auto& rec : session.records) {
    const int id = spell_.match(rec.content);
    if (id < 0 || kv_filter_.is_learned_kv_key(id)) continue;
    const auto it = intel_keys_.find(id);
    if (it == intel_keys_.end()) continue;
    out.push_back(extractor_.instantiate(it->second, spell_.key(id), rec));
  }
  return out;
}

}  // namespace intellog::core
