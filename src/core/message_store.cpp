#include "core/message_store.hpp"

namespace intellog::core {

void MessageStore::add_all(std::vector<IntelMessage> messages) {
  for (auto& m : messages) messages_.push_back(std::move(m));
}

std::vector<const IntelMessage*> MessageStore::query(const Predicate& pred) const {
  std::vector<const IntelMessage*> out;
  for (const auto& m : messages_) {
    if (pred(m)) out.push_back(&m);
  }
  return out;
}

std::vector<const IntelMessage*> MessageStore::by_key(int key_id) const {
  return query([key_id](const IntelMessage& m) { return m.key_id == key_id; });
}

std::map<std::string, std::vector<const IntelMessage*>> MessageStore::group_by_identifier(
    const std::string& type) const {
  std::map<std::string, std::vector<const IntelMessage*>> out;
  for (const auto& m : messages_) {
    for (const auto& iv : m.identifiers) {
      if (!type.empty() && iv.type != type) continue;
      out[iv.type + ":" + iv.value].push_back(&m);
    }
  }
  return out;
}

std::map<std::string, std::vector<const IntelMessage*>> MessageStore::group_by_locality() const {
  std::map<std::string, std::vector<const IntelMessage*>> out;
  for (const auto& m : messages_) {
    for (const auto& loc : m.localities) out[loc].push_back(&m);
  }
  return out;
}

common::Json MessageStore::to_json() const {
  common::Json arr = common::Json::array();
  for (const auto& m : messages_) arr.push_back(m.to_json());
  return arr;
}

}  // namespace intellog::core
