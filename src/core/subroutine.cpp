#include "core/subroutine.hpp"

#include <algorithm>

namespace intellog::core {

namespace {

std::set<std::string> value_set(const std::vector<IdentifierValue>& ids) {
  std::set<std::string> out;
  for (const auto& iv : ids) out.insert(iv.type + ":" + iv.value);
  return out;
}

std::set<std::string> type_set(const std::vector<IdentifierValue>& ids) {
  std::set<std::string> out;
  for (const auto& iv : ids) out.insert(iv.type);
  return out;
}

bool subset(const std::set<std::string>& a, const std::set<std::string>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

std::set<int> SubroutineInstance::key_set() const {
  std::set<int> out;
  for (const auto& m : messages) out.insert(m.key_id);
  return out;
}

std::vector<SubroutineInstance> partition_instances(const std::vector<GroupMessage>& messages) {
  std::vector<SubroutineInstance> instances;
  SubroutineInstance none;  // the NONE-keyed sequence (Line 5)
  for (const GroupMessage& msg : messages) {
    const std::set<std::string> sv = value_set(msg.ids);
    if (sv.empty()) {
      none.messages.push_back(msg);
      continue;
    }
    bool placed = false;
    for (auto& inst : instances) {
      if (subset(sv, inst.id_values) || subset(inst.id_values, sv)) {
        inst.id_values.insert(sv.begin(), sv.end());
        for (const auto& iv : msg.ids) inst.signature.insert(iv.type);
        inst.messages.push_back(msg);
        placed = true;
        break;
      }
    }
    if (!placed) {
      SubroutineInstance inst;
      inst.id_values = sv;
      inst.signature = type_set(msg.ids);
      inst.messages.push_back(msg);
      instances.push_back(std::move(inst));
    }
  }
  if (!none.messages.empty()) instances.push_back(std::move(none));
  return instances;
}

void SubroutineModel::update(const std::vector<SubroutineInstance>& instances) {
  for (const auto& inst : instances) {
    Subroutine& sub = subs_[inst.signature];
    sub.signature = inst.signature;

    // First-occurrence positions of each key in this instance.
    std::map<int, std::size_t> first_pos;
    for (std::size_t i = 0; i < inst.messages.size(); ++i) {
      first_pos.emplace(inst.messages[i].key_id, i);
    }
    const std::set<int> inst_keys = inst.key_set();

    // Critical keys: intersection over all instances (Fig. 5).
    if (sub.instance_count == 0) {
      sub.critical = inst_keys;
    } else {
      std::set<int> still;
      std::set_intersection(sub.critical.begin(), sub.critical.end(), inst_keys.begin(),
                            inst_keys.end(), std::inserter(still, still.begin()));
      sub.critical = std::move(still);
    }

    // Order relations: keys already known keep/break their BEFORE pairs;
    // a violated order becomes PARALLEL permanently.
    for (const auto& [a, pa] : first_pos) {
      for (const auto& [b, pb] : first_pos) {
        if (a >= b) continue;
        const int lo = pa < pb ? a : b;
        const int hi = pa < pb ? b : a;
        const auto fwd = std::make_pair(lo, hi);
        const auto rev = std::make_pair(hi, lo);
        if (sub.parallel.count(fwd) || sub.parallel.count(rev)) continue;
        if (sub.before.count(rev)) {
          // Contradiction with the learned order: demote to parallel.
          sub.before.erase(rev);
          sub.parallel.insert(fwd);
          sub.parallel.insert(rev);
          continue;
        }
        const bool both_known = sub.keys.count(a) && sub.keys.count(b);
        if (!both_known || sub.before.count(fwd)) sub.before.insert(fwd);
      }
    }
    sub.keys.insert(inst_keys.begin(), inst_keys.end());
    sub.instance_count++;
  }
}

SubroutineModel::InstanceCheck SubroutineModel::check(
    const SubroutineInstance& inst, std::size_t min_instances_for_order) const {
  InstanceCheck out;
  const auto it = subs_.find(inst.signature);
  if (it == subs_.end()) {
    out.known_signature = false;
    return out;
  }
  const Subroutine& sub = it->second;
  out.matched = &sub;
  const std::set<int> keys = inst.key_set();
  for (const int k : sub.critical) {
    if (!keys.count(k)) out.missing_critical.push_back(k);
  }
  for (const int k : keys) {
    if (!sub.keys.count(k)) out.unknown_keys.push_back(k);
  }
  // Order violations: a trained-invariant BEFORE relation observed inverted.
  if (sub.instance_count >= min_instances_for_order) {
    std::map<int, std::size_t> first_pos;
    for (std::size_t i = 0; i < inst.messages.size(); ++i) {
      first_pos.emplace(inst.messages[i].key_id, i);
    }
    for (const auto& [a, b] : sub.before) {
      const auto pa = first_pos.find(a);
      const auto pb = first_pos.find(b);
      if (pa != first_pos.end() && pb != first_pos.end() && pb->second < pa->second) {
        out.order_violations.emplace_back(a, b);
      }
    }
  }
  return out;
}

}  // namespace intellog::core
