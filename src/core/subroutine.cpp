#include "core/subroutine.hpp"

#include <algorithm>
#include <string_view>

#include "core/detect_scratch.hpp"
#include "obs/profile/profile.hpp"

namespace intellog::core {

namespace {

std::set<std::string> type_set(const std::vector<IdentifierValue>& ids) {
  std::set<std::string> out;
  for (const auto& iv : ids) out.insert(iv.type);
  return out;
}

// Both ranges are sorted by the same lexicographic order (std::sort's and
// the sorted-unique invariant's operator< agree once everything is viewed
// as string_view), so std::includes with a view comparator answers a ⊆ b
// across the vector-of-string / vector-of-view mix without materializing
// anything.
constexpr auto view_less = [](std::string_view x, std::string_view y) { return x < y; };

bool subset(const std::vector<std::string_view>& a, const std::vector<std::string>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end(), view_less);
}

bool subset(const std::vector<std::string>& a, const std::vector<std::string_view>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end(), view_less);
}

}  // namespace

std::set<int> SubroutineInstance::key_set() const {
  std::set<int> out;
  for (const auto& m : messages) out.insert(m.key_id);
  return out;
}

std::size_t partition_instances(std::vector<GroupMessage>&& messages, DetectScratch& s) {
  PROF_FRAME("detect.partition");
  std::size_t used = 0;
  // Pool acquisition: a recycled element's vectors keep their capacity, so
  // steady-state instance creation only pays for signature set nodes.
  const auto acquire = [&]() -> SubroutineInstance& {
    if (used == s.instances.size()) s.instances.emplace_back();
    SubroutineInstance& inst = s.instances[used++];
    inst.signature.clear();
    inst.id_values.clear();
    inst.messages.clear();
    return inst;
  };
  s.none_messages.clear();  // the NONE-keyed sequence (Line 5)
  for (GroupMessage& msg : messages) {
    // S_v assembled in reused scratch buffers: the "TYPE:value" strings
    // keep their capacity across messages, so after warm-up the working
    // set costs no allocations where the std::set it replaces paid one
    // node per identifier per message. Sorted-unique views reproduce the
    // set's element sequence exactly.
    if (s.id_concat.size() < msg.ids.size()) s.id_concat.resize(msg.ids.size());
    s.id_views.clear();
    for (std::size_t i = 0; i < msg.ids.size(); ++i) {
      std::string& buf = s.id_concat[i];
      buf.assign(msg.ids[i].type);
      buf += ':';
      buf += msg.ids[i].value;
      s.id_views.push_back(buf);
    }
    std::sort(s.id_views.begin(), s.id_views.end());
    s.id_views.erase(std::unique(s.id_views.begin(), s.id_views.end()), s.id_views.end());
    if (s.id_views.empty()) {
      s.none_messages.push_back(std::move(msg));
      continue;
    }
    bool placed = false;
    for (std::size_t ii = 0; ii < used; ++ii) {
      SubroutineInstance& inst = s.instances[ii];
      if (subset(s.id_views, inst.id_values) || subset(inst.id_values, s.id_views)) {
        // Merge: insert only genuinely new values at their sorted slot —
        // nothing is built for values the instance already holds, and a
        // short new value lands in the inserted string's SSO buffer.
        for (const std::string_view v : s.id_views) {
          const auto it =
              std::lower_bound(inst.id_values.begin(), inst.id_values.end(), v, view_less);
          if (it == inst.id_values.end() || std::string_view(*it) != v)
            inst.id_values.insert(it, std::string(v));
        }
        for (const auto& iv : msg.ids) inst.signature.insert(iv.type);
        inst.messages.push_back(std::move(msg));
        placed = true;
        break;
      }
    }
    if (!placed) {
      SubroutineInstance& inst = acquire();
      inst.signature = type_set(msg.ids);
      inst.id_values.reserve(s.id_views.size());
      for (const std::string_view v : s.id_views) inst.id_values.emplace_back(v);
      inst.messages.push_back(std::move(msg));
    }
  }
  if (!s.none_messages.empty()) {
    // NONE comes last, as in the returning overloads. The swap circulates
    // buffer capacity between the accumulator and the pool slot.
    acquire().messages.swap(s.none_messages);
  }
  return used;
}

std::vector<SubroutineInstance> partition_instances(std::vector<GroupMessage>&& messages) {
  thread_local DetectScratch scratch;
  const std::size_t used = partition_instances(std::move(messages), scratch);
  std::vector<SubroutineInstance> out;
  out.reserve(used);
  for (std::size_t i = 0; i < used; ++i) out.push_back(std::move(scratch.instances[i]));
  return out;
}

std::vector<SubroutineInstance> partition_instances(const std::vector<GroupMessage>& messages) {
  return partition_instances(std::vector<GroupMessage>(messages));
}

void SubroutineModel::update(const std::vector<SubroutineInstance>& instances) {
  for (const auto& inst : instances) {
    Subroutine& sub = subs_[inst.signature];
    sub.signature = inst.signature;

    // First-occurrence positions of each key in this instance.
    std::map<int, std::size_t> first_pos;
    for (std::size_t i = 0; i < inst.messages.size(); ++i) {
      first_pos.emplace(inst.messages[i].key_id, i);
    }
    const std::set<int> inst_keys = inst.key_set();

    // Critical keys: intersection over all instances (Fig. 5).
    if (sub.instance_count == 0) {
      sub.critical = inst_keys;
    } else {
      std::set<int> still;
      std::set_intersection(sub.critical.begin(), sub.critical.end(), inst_keys.begin(),
                            inst_keys.end(), std::inserter(still, still.begin()));
      sub.critical = std::move(still);
    }

    // Order relations: keys already known keep/break their BEFORE pairs;
    // a violated order becomes PARALLEL permanently.
    for (const auto& [a, pa] : first_pos) {
      for (const auto& [b, pb] : first_pos) {
        if (a >= b) continue;
        const int lo = pa < pb ? a : b;
        const int hi = pa < pb ? b : a;
        const auto fwd = std::make_pair(lo, hi);
        const auto rev = std::make_pair(hi, lo);
        if (sub.parallel.count(fwd) || sub.parallel.count(rev)) continue;
        if (sub.before.count(rev)) {
          // Contradiction with the learned order: demote to parallel.
          sub.before.erase(rev);
          sub.parallel.insert(fwd);
          sub.parallel.insert(rev);
          continue;
        }
        const bool both_known = sub.keys.count(a) && sub.keys.count(b);
        if (!both_known || sub.before.count(fwd)) sub.before.insert(fwd);
      }
    }
    sub.keys.insert(inst_keys.begin(), inst_keys.end());
    sub.instance_count++;
  }
}

SubroutineModel::InstanceCheck SubroutineModel::check(
    const SubroutineInstance& inst, std::size_t min_instances_for_order) const {
  thread_local DetectScratch scratch;
  return check(inst, scratch, min_instances_for_order);
}

SubroutineModel::InstanceCheck SubroutineModel::check(
    const SubroutineInstance& inst, DetectScratch& s,
    std::size_t min_instances_for_order) const {
  PROF_FRAME("detect.check");
  InstanceCheck out;
  const auto it = subs_.find(inst.signature);
  if (it == subs_.end()) {
    out.known_signature = false;
    return out;
  }
  const Subroutine& sub = it->second;
  out.matched = &sub;
  // Flat sorted-unique key list instead of a std::set: check() runs once
  // per instance on the detection hot path and the set's node allocations
  // dominated it. Ascending order matches the set's iteration order, so
  // unknown_keys comes out identical.
  std::vector<int>& keys = s.check_keys;
  keys.clear();
  keys.reserve(inst.messages.size());
  for (const auto& m : inst.messages) keys.push_back(m.key_id);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (const int k : sub.critical) {
    if (!std::binary_search(keys.begin(), keys.end(), k)) out.missing_critical.push_back(k);
  }
  for (const int k : keys) {
    if (!sub.keys.count(k)) out.unknown_keys.push_back(k);
  }
  // Order violations: a trained-invariant BEFORE relation observed inverted.
  if (sub.instance_count >= min_instances_for_order) {
    // First-occurrence position per key: sort (key, position) pairs and
    // keep the first of each key — the map this replaces kept only the
    // first emplace per key, which is the same thing.
    std::vector<std::pair<int, std::size_t>>& first_pos = s.check_first_pos;
    first_pos.clear();
    first_pos.reserve(inst.messages.size());
    for (std::size_t i = 0; i < inst.messages.size(); ++i) {
      first_pos.emplace_back(inst.messages[i].key_id, i);
    }
    std::sort(first_pos.begin(), first_pos.end());
    first_pos.erase(
        std::unique(first_pos.begin(), first_pos.end(),
                    [](const auto& a, const auto& b) { return a.first == b.first; }),
        first_pos.end());
    const auto pos_of = [&](int k) -> const std::pair<int, std::size_t>* {
      const auto pit = std::lower_bound(
          first_pos.begin(), first_pos.end(), k,
          [](const std::pair<int, std::size_t>& p, int key) { return p.first < key; });
      return (pit != first_pos.end() && pit->first == k) ? &*pit : nullptr;
    };
    for (const auto& [a, b] : sub.before) {
      const auto* pa = pos_of(a);
      const auto* pb = pos_of(b);
      if (pa && pb && pb->second < pa->second) out.order_violations.emplace_back(a, b);
    }
  }
  return out;
}

}  // namespace intellog::core
