#include "core/hw_graph.hpp"

#include <algorithm>
#include <cctype>

namespace intellog::core {

std::string_view to_string(GroupRelation rel) {
  switch (rel) {
    case GroupRelation::Parent: return "PARENT";
    case GroupRelation::ChildOf: return "CHILD";
    case GroupRelation::Before: return "BEFORE";
    case GroupRelation::After: return "AFTER";
    case GroupRelation::Parallel: return "PARALLEL";
  }
  return "PARALLEL";
}

std::optional<GroupRelation> HwGraph::relation(const std::string& a, const std::string& b) const {
  if (const auto it = relations_.find({a, b}); it != relations_.end()) return it->second;
  if (const auto it = relations_.find({b, a}); it != relations_.end()) {
    switch (it->second) {
      case GroupRelation::Parent: return GroupRelation::ChildOf;
      case GroupRelation::ChildOf: return GroupRelation::Parent;
      case GroupRelation::Before: return GroupRelation::After;
      case GroupRelation::After: return GroupRelation::Before;
      case GroupRelation::Parallel: return GroupRelation::Parallel;
    }
  }
  return std::nullopt;
}

const std::vector<std::string>& HwGraph::children_of(const std::string& g) const {
  static const std::vector<std::string> kEmpty;
  const auto it = children_.find(g);
  return it == children_.end() ? kEmpty : it->second;
}

std::string HwGraph::parent_of(const std::string& g) const {
  const auto it = parent_.find(g);
  return it == parent_.end() ? std::string{} : it->second;
}

std::vector<std::string> HwGraph::expected_groups(double fraction) const {
  std::vector<std::string> out;
  if (training_sessions_ == 0) return out;
  for (const auto& [name, node] : groups_) {
    const double f =
        static_cast<double>(node.sessions_present) / static_cast<double>(training_sessions_);
    if (f >= fraction) out.push_back(name);
  }
  return out;
}

std::size_t HwGraph::critical_group_count() const {
  std::size_t n = 0;
  for (const auto& [name, node] : groups_) {
    (void)name;
    if (node.is_critical()) ++n;
  }
  return n;
}

common::Json HwGraph::to_json() const {
  common::Json j = common::Json::object();
  j["training_sessions"] = training_sessions_;
  common::Json groups = common::Json::object();
  for (const auto& [name, node] : groups_) {
    common::Json g = common::Json::object();
    g["critical"] = node.is_critical();
    g["sessions_present"] = node.sessions_present;
    g["parent"] = parent_of(name);
    common::Json keys = common::Json::array();
    for (const int k : node.keys) keys.push_back(k);
    g["intel_keys"] = std::move(keys);
    common::Json subs = common::Json::array();
    for (const auto& [sig, sub] : node.subroutines.subroutines()) {
      common::Json s = common::Json::object();
      common::Json sigj = common::Json::array();
      for (const auto& t : sig) sigj.push_back(t);
      s["signature"] = std::move(sigj);
      common::Json sk = common::Json::array();
      for (const int k : sub.keys) sk.push_back(k);
      s["keys"] = std::move(sk);
      common::Json crit = common::Json::array();
      for (const int k : sub.critical) crit.push_back(k);
      s["critical_keys"] = std::move(crit);
      s["instances"] = sub.instance_count;
      subs.push_back(std::move(s));
    }
    g["subroutines"] = std::move(subs);
    groups[name] = std::move(g);
  }
  j["groups"] = std::move(groups);
  common::Json rels = common::Json::array();
  for (const auto& [pair, rel] : relations_) {
    common::Json r = common::Json::object();
    r["a"] = pair.first;
    r["b"] = pair.second;
    r["relation"] = std::string(to_string(rel));
    rels.push_back(std::move(r));
  }
  j["relations"] = std::move(rels);
  return j;
}

std::string HwGraph::to_dot() const {
  std::string out = "digraph hwgraph {\n  rankdir=TB;\n  node [shape=box, fontname=\"Helvetica\"];\n";
  const auto id_of = [](const std::string& name) {
    std::string id = "g_";
    for (char c : name) id += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
    return id;
  };
  for (const auto& [name, node] : groups_) {
    out += "  " + id_of(name) + " [label=\"" + name + "\\n(" + std::to_string(node.keys.size()) +
           " keys)\"" + (node.is_critical() ? ", style=filled, fillcolor=\"#dbe9f6\"" : "") +
           "];\n";
  }
  for (const auto& [child, parent] : parent_) {
    out += "  " + id_of(parent) + " -> " + id_of(child) + ";\n";
  }
  for (std::size_t i = 0; i < roots_.size(); ++i) {
    for (std::size_t j = 0; j < roots_.size(); ++j) {
      if (i == j) continue;
      const auto rel = relation(roots_[i], roots_[j]);
      if (rel && *rel == GroupRelation::Before) {
        out += "  " + id_of(roots_[i]) + " -> " + id_of(roots_[j]) +
               " [style=dashed, label=\"before\"];\n";
      }
    }
  }
  out += "}\n";
  return out;
}

void HwGraph::restore_structure(
    std::map<std::pair<std::string, std::string>, GroupRelation> relations,
    std::map<std::string, std::string> parent, std::size_t training_sessions) {
  relations_ = std::move(relations);
  parent_ = std::move(parent);
  training_sessions_ = training_sessions;
  children_.clear();
  roots_.clear();
  for (auto& [name, node] : groups_) {
    node.name = name;
    const auto it = parent_.find(name);
    if (it == parent_.end()) {
      roots_.push_back(name);
    } else {
      children_[it->second].push_back(name);
    }
  }
}

void HwGraphBuilder::add_session(const SessionLifespans& spans) {
  ++sessions_;
  for (const auto& [name, span] : spans) {
    (void)span;
    presence_[name]++;
  }
  for (auto ia = spans.begin(); ia != spans.end(); ++ia) {
    for (auto ib = std::next(ia); ib != spans.end(); ++ib) {
      PairStats& ps = pairs_[{ia->first, ib->first}];
      ps.together++;
      const Lifespan& a = ia->second;
      const Lifespan& b = ib->second;
      if (!(b.first_ms <= a.first_ms && a.last_ms <= b.last_ms)) ps.a_in_b = false;
      if (!(a.first_ms <= b.first_ms && b.last_ms <= a.last_ms)) ps.b_in_a = false;
      if (!(a.last_ms < b.first_ms)) ps.a_before_b = false;
      if (!(b.last_ms < a.first_ms)) ps.b_before_a = false;
    }
  }
}

void HwGraphBuilder::finalize(HwGraph& graph) const {
  graph.training_sessions_ = sessions_;
  for (auto& [name, node] : graph.groups_) {
    node.name = name;
    const auto it = presence_.find(name);
    node.sessions_present = it == presence_.end() ? 0 : it->second;
  }
  // Pairwise relations (Fig. 6): checked across every shared session.
  graph.relations_.clear();
  for (const auto& [pair, ps] : pairs_) {
    GroupRelation rel;
    if (ps.a_in_b && ps.b_in_a) {
      rel = GroupRelation::Parallel;  // identical spans: no hierarchy signal
    } else if (ps.b_in_a) {
      rel = GroupRelation::Parent;  // a contains b
    } else if (ps.a_in_b) {
      rel = GroupRelation::ChildOf;
    } else if (ps.a_before_b) {
      rel = GroupRelation::Before;
    } else if (ps.b_before_a) {
      rel = GroupRelation::After;
    } else {
      rel = GroupRelation::Parallel;
    }
    graph.relations_[pair] = rel;
  }

  // Containment tree (the Fig. 7 iterative construction collapses to:
  // each group's parent is its tightest container).
  graph.parent_.clear();
  graph.children_.clear();
  graph.roots_.clear();
  // Average span length per group (over sessions) to pick the tightest.
  const auto containers_of = [&](const std::string& g) {
    std::vector<std::string> out;
    for (const auto& [name, node] : graph.groups_) {
      (void)node;
      if (name == g) continue;
      const auto rel = graph.relation(name, g);
      if (rel && *rel == GroupRelation::Parent) out.push_back(name);
    }
    return out;
  };
  for (const auto& [name, node] : graph.groups_) {
    (void)node;
    const auto containers = containers_of(name);
    if (containers.empty()) {
      graph.roots_.push_back(name);
      continue;
    }
    // The tightest container is itself contained in every other container.
    std::string best = containers.front();
    for (const auto& c : containers) {
      const auto rel = graph.relation(best, c);
      if (rel && *rel == GroupRelation::Parent) best = c;
    }
    graph.parent_[name] = best;
    graph.children_[best].push_back(name);
  }
}

}  // namespace intellog::core
