#include "core/intel_key.hpp"

namespace intellog::core {

namespace {

std::string category_name(FieldCategory c) {
  switch (c) {
    case FieldCategory::Entity: return "entity";
    case FieldCategory::Identifier: return "identifier";
    case FieldCategory::Value: return "value";
    case FieldCategory::Locality: return "locality";
    case FieldCategory::Other: return "other";
  }
  return "other";
}

}  // namespace

common::Json IntelKey::to_json() const {
  common::Json j = common::Json::object();
  j["key_id"] = key_id;
  j["key"] = key_text;
  j["kv_only"] = kv_only;
  common::Json ents = common::Json::array();
  for (const auto& e : entities) ents.push_back(e);
  j["entities"] = std::move(ents);
  common::Json flds = common::Json::array();
  for (const auto& f : fields) {
    common::Json fj = common::Json::object();
    fj["category"] = category_name(f.category);
    if (!f.id_type.empty()) fj["id_type"] = f.id_type;
    if (!f.unit.empty()) fj["unit"] = f.unit;
    flds.push_back(std::move(fj));
  }
  j["fields"] = std::move(flds);
  common::Json ops = common::Json::array();
  for (const auto& op : operations) {
    common::Json oj = common::Json::object();
    oj["subj"] = op.subj;
    oj["predicate"] = op.predicate;
    oj["obj"] = op.obj;
    ops.push_back(std::move(oj));
  }
  j["operations"] = std::move(ops);
  return j;
}

common::Json IntelMessage::to_json() const {
  common::Json j = common::Json::object();
  j["key_id"] = key_id;
  j["timestamp_ms"] = static_cast<std::int64_t>(timestamp_ms);
  j["container"] = container_id;
  common::Json ids = common::Json::object();
  for (const auto& iv : identifiers) ids[iv.type] = iv.value;
  j["identifiers"] = std::move(ids);
  common::Json vals = common::Json::array();
  for (const auto& [text, unit] : values) {
    common::Json vj = common::Json::object();
    vj["value"] = text;
    if (!unit.empty()) vj["unit"] = unit;
    vals.push_back(std::move(vj));
  }
  j["values"] = std::move(vals);
  common::Json locs = common::Json::array();
  for (const auto& l : localities) locs.push_back(l);
  j["localities"] = std::move(locs);
  return j;
}

}  // namespace intellog::core
