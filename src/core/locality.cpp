#include "core/locality.hpp"

#include <cctype>

#include "common/strings.hpp"

namespace intellog::core {

namespace {

bool valid_host_chars(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.' && c != '-') return false;
  }
  return std::isalpha(static_cast<unsigned char>(s.front())) ||
         std::isdigit(static_cast<unsigned char>(s.front()));
}

bool is_ipv4(std::string_view s) {
  int dots = 0, run = 0;
  for (char c : s) {
    if (c == '.') {
      if (run == 0 || run > 3) return false;
      ++dots;
      run = 0;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      ++run;
    } else {
      return false;
    }
  }
  return dots == 3 && run >= 1 && run <= 3;
}

}  // namespace

bool looks_like_host_name(std::string_view token) {
  // Conservative: the well-known naming shapes of cluster nodes —
  // "host3", "node12", "worker-7", "compute1", "master", or a dotted FQDN.
  if (token.find('.') != std::string_view::npos) {
    // FQDN: letters/digits/dots/dashes, at least one dot, not an IP, and a
    // letter somewhere.
    return valid_host_chars(token) && !is_ipv4(token) && common::has_letter(token) &&
           !common::starts_with(token, ".") && !common::ends_with(token, ".");
  }
  static const char* kPrefixes[] = {"host", "node", "worker", "compute", "slave", "master"};
  const std::string lower = common::to_lower(token);
  for (const char* p : kPrefixes) {
    if (lower == p) return true;
    if (common::starts_with(lower, p)) {
      const std::string_view rest = std::string_view(lower).substr(std::string(p).size());
      if (common::is_all_digits(rest) || (rest.size() > 1 && rest.front() == '-' &&
                                          common::is_all_digits(rest.substr(1))))
        return true;
    }
  }
  return false;
}

bool looks_like_ip_port(std::string_view token) {
  const std::size_t colon = token.find(':');
  if (colon == std::string_view::npos) return is_ipv4(token);
  return is_ipv4(token.substr(0, colon)) && common::is_all_digits(token.substr(colon + 1));
}

bool looks_like_host_port(std::string_view token) {
  const std::size_t colon = token.find(':');
  if (colon == std::string_view::npos || colon == 0 || colon + 1 >= token.size()) return false;
  if (token.find(':', colon + 1) != std::string_view::npos) return false;
  return (valid_host_chars(token.substr(0, colon)) || is_ipv4(token.substr(0, colon))) &&
         common::is_all_digits(token.substr(colon + 1));
}

bool looks_like_local_path(std::string_view token) {
  return token.size() >= 2 && token.front() == '/' &&
         token.find("://") == std::string_view::npos;
}

bool looks_like_dfs_path(std::string_view token) {
  // Any scheme-qualified URI counts (hdfs://, s3a://, spark://, ...).
  const std::size_t pos = token.find("://");
  if (pos == std::string_view::npos || pos == 0) return false;
  for (char c : token.substr(0, pos)) {
    if (!std::isalnum(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

LocalityMatcher::LocalityMatcher() {
  patterns_ = {
      [](std::string_view t) { return looks_like_dfs_path(t); },
      [](std::string_view t) { return looks_like_local_path(t); },
      [](std::string_view t) { return looks_like_ip_port(t); },
      [](std::string_view t) { return looks_like_host_port(t); },
      [](std::string_view t) { return looks_like_host_name(t); },
  };
}

bool LocalityMatcher::is_locality(std::string_view token) const {
  for (const auto& p : patterns_) {
    if (p(token)) return true;
  }
  return false;
}

}  // namespace intellog::core
