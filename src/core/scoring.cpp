#include "core/scoring.hpp"

#include <sstream>
#include <stdexcept>

namespace intellog::core {

namespace {

common::Json string_set(const std::set<std::string>& items) {
  common::Json arr = common::Json::array();
  for (const auto& s : items) arr.push_back(s);
  return arr;
}

std::set<std::string> read_string_set(const common::Json& arr) {
  std::set<std::string> out;
  for (const auto& s : arr.as_array()) out.insert(s.as_string());
  return out;
}

std::int64_t permille(double ratio) {
  return static_cast<std::int64_t>(ratio * 1000.0 + 0.5);
}

double f_measure(double precision, double recall) {
  const double sum = precision + recall;
  return sum > 0 ? 2.0 * precision * recall / sum : 0.0;
}

}  // namespace

common::Json Labels::to_json() const {
  common::Json doc = common::Json::object();
  doc["kind"] = "intellog_labels";
  doc["schema_version"] = kLabelsSchemaVersion;
  doc["system"] = system;
  doc["seed"] = seed;
  common::Json arr = common::Json::array();
  for (const auto& job : jobs) {
    common::Json j = common::Json::object();
    j["name"] = job.name;
    j["dir"] = job.dir;
    j["fault"] = job.fault;
    j["injected"] = job.injected;
    j["borderline"] = job.borderline;
    j["containers"] = string_set(job.containers);
    j["affected"] = string_set(job.affected);
    j["perf_affected"] = string_set(job.perf_affected);
    arr.push_back(std::move(j));
  }
  doc["jobs"] = std::move(arr);
  return doc;
}

Labels Labels::from_json(const common::Json& doc) {
  if (!doc.is_object() || !doc.contains("kind") ||
      doc["kind"].as_string() != "intellog_labels") {
    throw std::runtime_error("not an intellog_labels document");
  }
  if (doc.contains("schema_version") &&
      doc["schema_version"].as_int() > kLabelsSchemaVersion) {
    throw std::runtime_error("unsupported labels schema_version " +
                             std::to_string(doc["schema_version"].as_int()));
  }
  Labels labels;
  labels.system = doc["system"].as_string();
  labels.seed = static_cast<std::uint64_t>(doc["seed"].as_int());
  for (const auto& j : doc["jobs"].as_array()) {
    LabeledJob job;
    job.name = j["name"].as_string();
    job.dir = j["dir"].as_string();
    job.fault = j["fault"].as_string();
    job.injected = j["injected"].as_bool();
    job.borderline = j["borderline"].as_bool();
    job.containers = read_string_set(j["containers"]);
    job.affected = read_string_set(j["affected"]);
    job.perf_affected = read_string_set(j["perf_affected"]);
    labels.jobs.push_back(std::move(job));
  }
  return labels;
}

double SystemScore::precision() const {
  const std::size_t positives = detected + fp;
  return positives == 0 ? 1.0
                        : static_cast<double>(detected) / static_cast<double>(positives);
}

double SystemScore::recall() const {
  return injected == 0 ? 1.0
                       : static_cast<double>(detected) / static_cast<double>(injected);
}

double SystemScore::f1() const { return f_measure(precision(), recall()); }

common::Json SystemScore::to_json() const {
  common::Json j = common::Json::object();
  j["system"] = system;
  j["detected"] = detected;
  j["false_positives"] = fp;
  j["false_negatives"] = fn;
  j["detected_borderline"] = pb;
  j["injected_jobs"] = injected;
  j["clean_jobs"] = clean;
  j["borderline_jobs"] = borderline;
  j["unmatched_containers"] = unmatched;
  j["precision"] = precision();
  j["recall"] = recall();
  j["f1"] = f1();
  return j;
}

SystemScore score_report(const Labels& labels, const common::Json& report) {
  if (!report.is_array()) {
    throw std::runtime_error("score expects a detect --json report (an array)");
  }
  SystemScore score;
  score.system = labels.system;

  // Every anomalous container, resolved to the job that owns it. Container
  // ids are unique across jobs within one loggen run, so the first owner
  // wins deterministically even if labels were hand-edited.
  std::vector<bool> flagged(labels.jobs.size(), false);
  for (const auto& r : report.as_array()) {
    if (!r.is_object() || !r.contains("container")) continue;
    const std::string& container = r["container"].as_string();
    bool matched = false;
    for (std::size_t i = 0; i < labels.jobs.size(); ++i) {
      if (labels.jobs[i].containers.count(container)) {
        flagged[i] = true;
        matched = true;
        break;
      }
    }
    if (!matched) ++score.unmatched;
  }

  for (std::size_t i = 0; i < labels.jobs.size(); ++i) {
    const LabeledJob& job = labels.jobs[i];
    if (job.injected) {
      ++score.injected;
      (flagged[i] ? score.detected : score.fn)++;
    } else if (job.borderline) {
      ++score.borderline;
      score.pb += flagged[i];  // a real (performance) problem, not a false alarm
    } else {
      ++score.clean;
      score.fp += flagged[i];
    }
  }
  return score;
}

std::size_t ScoreCard::detected() const {
  std::size_t n = 0;
  for (const auto& s : systems) n += s.detected;
  return n;
}

std::size_t ScoreCard::fp() const {
  std::size_t n = 0;
  for (const auto& s : systems) n += s.fp;
  return n;
}

std::size_t ScoreCard::fn() const {
  std::size_t n = 0;
  for (const auto& s : systems) n += s.fn;
  return n;
}

std::size_t ScoreCard::injected() const {
  std::size_t n = 0;
  for (const auto& s : systems) n += s.injected;
  return n;
}

double ScoreCard::precision() const {
  const std::size_t positives = detected() + fp();
  return positives == 0 ? 1.0
                        : static_cast<double>(detected()) / static_cast<double>(positives);
}

double ScoreCard::recall() const {
  return injected() == 0 ? 1.0
                         : static_cast<double>(detected()) / static_cast<double>(injected());
}

double ScoreCard::f1() const { return f_measure(precision(), recall()); }

common::Json ScoreCard::to_json() const {
  common::Json doc = common::Json::object();
  doc["kind"] = "intellog_score";
  doc["schema_version"] = 1;
  common::Json arr = common::Json::array();
  for (const auto& s : systems) arr.push_back(s.to_json());
  doc["systems"] = std::move(arr);
  common::Json overall = common::Json::object();
  overall["detected"] = detected();
  overall["false_positives"] = fp();
  overall["false_negatives"] = fn();
  overall["injected_jobs"] = injected();
  overall["precision"] = precision();
  overall["recall"] = recall();
  overall["f1"] = f1();
  doc["overall"] = std::move(overall);
  return doc;
}

std::string ScoreCard::render_text() const {
  std::ostringstream out;
  for (const auto& s : systems) {
    out << s.system << ": " << s.detected << " / " << s.fp << " / " << s.fn << " / ("
        << s.pb << ")  [D / FP / FN / (P,B)]  precision " << s.precision() << " recall "
        << s.recall() << " f1 " << s.f1() << "\n";
    if (s.unmatched > 0) {
      out << "  warning: " << s.unmatched
          << " anomalous container(s) matched no labeled job\n";
    }
  }
  out << "overall: detected " << detected() << " / " << injected()
      << " injected problems, precision " << precision() << ", recall " << recall()
      << ", f1 " << f1() << "\n";
  return out.str();
}

void ScoreCard::record_metrics(obs::MetricsRegistry& reg) const {
  const auto set = [&reg](const std::string& name, const obs::Labels& labels,
                          std::int64_t value, const std::string& help) {
    reg.describe(name, help);
    reg.gauge(name, labels).set(value);
  };
  for (const auto& s : systems) {
    const obs::Labels labels = {{"system", s.system}};
    set("intellog_score_detected", labels, static_cast<std::int64_t>(s.detected),
        "Injected-problem jobs the report flagged (Table-6 D).");
    set("intellog_score_false_positives", labels, static_cast<std::int64_t>(s.fp),
        "Clean jobs the report flagged (Table-6 FP).");
    set("intellog_score_false_negatives", labels, static_cast<std::int64_t>(s.fn),
        "Injected-problem jobs the report missed (Table-6 FN).");
    set("intellog_score_detected_borderline", labels, static_cast<std::int64_t>(s.pb),
        "Borderline-memory jobs flagged — real perf problems, Table-6 (P/B).");
    set("intellog_score_precision_permille", labels, permille(s.precision()),
        "Scored precision, in permille (integer gauge).");
    set("intellog_score_recall_permille", labels, permille(s.recall()),
        "Scored recall, in permille (integer gauge).");
    set("intellog_score_f1_permille", labels, permille(s.f1()),
        "Scored F1, in permille (integer gauge).");
  }
  set("intellog_score_precision_permille", {}, permille(precision()),
      "Overall scored precision across systems, in permille.");
  set("intellog_score_recall_permille", {}, permille(recall()),
      "Overall scored recall across systems, in permille.");
  set("intellog_score_f1_permille", {}, permille(f1()),
      "Overall scored F1 across systems, in permille.");
}

}  // namespace intellog::core
