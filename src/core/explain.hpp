// Workflow Observatory support: evidence construction, report round-trip
// and the per-session HW-graph instance view.
//
// The paper's value is that IntelLog *explains* executions, so findings
// must be inspectable artifacts, not flat text:
//  - Evidence builders turn a finding (unexpected message, group issue)
//    into an expected-vs-observed key diff plus the raw log lines — with
//    file/line/byte-offset provenance — that prove it.
//  - report_from_json() parses `intellog detect --json` output back into
//    AnomalyReports so `intellog explain` can render any saved report.
//  - build_workflow_view() reconstructs one session's HW-graph instance
//    (entity-group lifespans, subroutine executions, Intel-Key hits) — the
//    structure the trace exporters map onto span trees.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/anomaly.hpp"
#include "core/intellog.hpp"
#include "core/subroutine.hpp"
#include "logparse/session.hpp"

namespace intellog::core {

/// Raw lines attached per finding are capped: a finding's proof needs the
/// deviation neighbourhood, not the whole session.
inline constexpr std::size_t kMaxEvidenceLines = 8;

/// One evidence line for `session.records[record_index]`; `key_id` is the
/// Intel Key the record matched (-1 for none). The file falls back to the
/// container id when the session never touched disk.
EvidenceLine make_evidence_line(const logparse::Session& session, std::size_t record_index,
                                int key_id);

/// Evidence for an unexpected-message finding: the offending line itself.
Evidence build_unexpected_evidence(const logparse::Session& session, std::size_t record_index);

/// Evidence for a subroutine-instance finding (incomplete subroutine,
/// unknown signature, order violation). `trained` is the learned
/// subroutine for the instance's signature, or nullptr when the signature
/// was never seen in training.
Evidence build_instance_evidence(const logparse::Session& session, const Subroutine* trained,
                                 const SubroutineInstance& instance,
                                 const SubroutineModel::InstanceCheck& check);

/// Evidence for a missing expected group: the trained group's keys plus
/// the session's boundary records (the observed span in which the group
/// never appeared). `record_keys[i]` is the Spell key of record i (-1 for
/// no match); may be empty when unavailable.
Evidence build_missing_group_evidence(const logparse::Session& session, const GroupNode& node,
                                      const std::vector<int>& record_keys);

/// Linearizes a trained subroutine's keys into the expected execution
/// sequence: a stable topological order over the learned BEFORE relations
/// (ties broken by key id).
std::vector<int> expected_key_sequence(const Subroutine& sub);

// --- report round-trip -------------------------------------------------------

/// Parses one report back from AnomalyReport::to_json(). Unknown fields
/// are ignored; missing evidence yields empty Evidence (pre-observatory
/// reports still parse). Throws std::runtime_error on a document that is
/// not a report object.
AnomalyReport report_from_json(const common::Json& j);
Evidence evidence_from_json(const common::Json& j);
EvidenceLine evidence_line_from_json(const common::Json& j);

/// Renders the expected-vs-observed explanation for one report (the
/// `intellog explain` text view). Non-anomalous reports render to "".
std::string render_explanation(const AnomalyReport& report);

// --- HW-graph instance view --------------------------------------------------

/// One Intel-Key hit inside a group (a span-tree instant event).
struct KeyHitView {
  int key_id = -1;
  std::size_t record_index = 0;
  std::uint64_t timestamp_ms = 0;
};

/// One subroutine execution (a child span): the messages bound together by
/// shared identifier values, from first to last hit.
struct SubroutineView {
  std::set<std::string> signature;  ///< identifier types ("NONE" when empty)
  std::set<std::string> id_values;  ///< concrete "TYPE:value" bindings
  std::uint64_t first_ms = 0, last_ms = 0;
  std::vector<KeyHitView> hits;

  std::string name() const;  ///< "sub {ATTEMPT,TASK}" / "sub NONE"
};

/// One entity-group lifespan (a parent span) with its subroutine
/// executions and raw key hits.
struct GroupSpanView {
  std::string group;
  std::uint64_t first_ms = 0, last_ms = 0;
  std::size_t message_count = 0;
  std::vector<SubroutineView> subroutines;
  std::vector<KeyHitView> hits;
};

/// One session's reconstructed HW-graph instance. Groups are ordered by a
/// DFS over the trained graph's containment tree (parents before
/// children), so exporters get a stable, hierarchy-shaped track order.
struct WorkflowView {
  std::string container_id;
  std::string system;
  std::string source_file;
  std::uint64_t first_ms = 0, last_ms = 0;  ///< session record span
  std::vector<GroupSpanView> groups;
};

/// Reconstructs the HW-graph instance for one session against a trained
/// model (the same per-record routing detection uses; timestamps are the
/// session's own log-record timestamps).
WorkflowView build_workflow_view(const IntelLog& model, const logparse::Session& session);

}  // namespace intellog::core
