// A small query language over Intel Messages (§1/§6.4: "Users can query
// the formatted semantic knowledge to understand and further troubleshoot
// the systems"; §5 points at JSON query tools — this is the built-in
// equivalent).
//
// Grammar (case-sensitive field names, AND binds tighter than OR):
//
//   query  := or
//   or     := and ( "OR" and )*
//   and    := term ( "AND" term )*
//   term   := "NOT" term | "(" query ")" | field op value
//   field  := "key" | "container" | "time"
//           | "id" | "id." TYPE            (any identifier / typed)
//           | "locality" | "value" | "unit"
//   op     := "=" | "!=" | "~"             ('~' = substring)
//           | "<" | ">"                    (numeric; key/time/value only)
//
// Values with spaces use double quotes. Examples:
//
//   id.FETCHER=1 AND locality~host1
//   key=12 OR key=14
//   container~_02_ AND NOT locality~master
//   time>3600000 AND value>1000
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/intel_key.hpp"
#include "core/message_store.hpp"

namespace intellog::core {

class Query {
 public:
  /// Parses a query; throws std::invalid_argument with a position-bearing
  /// message on syntax errors.
  static Query parse(std::string_view text);

  /// True when the message satisfies the query.
  bool matches(const IntelMessage& message) const;

  /// The parsed form, normalized (debugging / tests).
  std::string to_string() const;

  struct Node;  // public for the out-of-line parser; opaque to callers

 private:
  Query() = default;
  std::shared_ptr<const Node> root_;
};

/// Convenience: filter a store by a query string.
std::vector<const IntelMessage*> run_query(const MessageStore& store, std::string_view text);

}  // namespace intellog::core
