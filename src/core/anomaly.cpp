#include "core/anomaly.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "obs/trace.hpp"

namespace intellog::core {

std::string_view to_string(GroupIssue::Kind kind) {
  switch (kind) {
    case GroupIssue::Kind::MissingGroup: return "missing-group";
    case GroupIssue::Kind::IncompleteSubroutine: return "incomplete-subroutine";
    case GroupIssue::Kind::UnknownSignature: return "unknown-signature";
    case GroupIssue::Kind::OrderViolation: return "order-violation";
  }
  return "unknown";
}

common::Json AnomalyReport::to_json() const {
  common::Json j = common::Json::object();
  j["container"] = container_id;
  j["session_length"] = session_length;
  j["anomalous"] = anomalous();
  // Only emitted for degraded-mode reports: normal reports keep their
  // pre-existing byte layout (checkpoint parity tests compare dumps).
  if (degraded()) j["degraded"] = degraded_reason;
  common::Json unexp = common::Json::array();
  for (const auto& u : unexpected) {
    common::Json uj = common::Json::object();
    uj["record_index"] = u.record_index;
    uj["content"] = u.content;
    uj["intel_key"] = u.extracted.to_json();
    uj["intel_message"] = u.message.to_json();
    unexp.push_back(std::move(uj));
  }
  j["unexpected_messages"] = std::move(unexp);
  common::Json iss = common::Json::array();
  for (const auto& i : issues) {
    common::Json ij = common::Json::object();
    ij["kind"] = std::string(to_string(i.kind));
    ij["group"] = i.group;
    common::Json sig = common::Json::array();
    for (const auto& s : i.signature) sig.push_back(s);
    ij["signature"] = std::move(sig);
    common::Json mk = common::Json::array();
    for (const int k : i.missing_keys) mk.push_back(k);
    ij["missing_critical_keys"] = std::move(mk);
    common::Json ov = common::Json::array();
    for (const auto& [a, b] : i.violated_orders) {
      common::Json pair = common::Json::array();
      pair.push_back(a);
      pair.push_back(b);
      ov.push_back(std::move(pair));
    }
    ij["violated_orders"] = std::move(ov);
    iss.push_back(std::move(ij));
  }
  j["group_issues"] = std::move(iss);
  return j;
}

AnomalyDetector::AnomalyDetector(const logparse::Spell& spell, const logparse::KvFilter& kv,
                                 const InfoExtractor& extractor,
                                 const std::map<int, IntelKey>& intel_keys,
                                 const EntityGroups& groups, const HwGraph& graph,
                                 double expected_group_fraction)
    : spell_(spell),
      kv_(kv),
      extractor_(extractor),
      intel_keys_(intel_keys),
      groups_(groups),
      graph_(graph),
      expected_groups_(graph.expected_groups(expected_group_fraction)) {}

AnomalyReport AnomalyDetector::detect(const logparse::Session& session) const {
  AnomalyReport report;
  report.container_id = session.container_id;
  report.session_length = session.records.size();

  std::map<std::string, std::vector<GroupMessage>> group_messages;
  std::set<std::string> groups_seen;

  // Per-record Spell matching, on-the-fly extraction and entity grouping.
  obs::Span extract_span("detect/extract+group", "detect");
  for (std::size_t ri = 0; ri < session.records.size(); ++ri) {
    const logparse::LogRecord& rec = session.records[ri];
    const int key_id = spell_.match(rec.content);
    if (key_id < 0) {
      // Unexpected log message: run extraction on the fly (§4.2).
      UnexpectedMessage u;
      u.record_index = ri;
      u.content = rec.content;
      u.extracted = extractor_.extract_from_message(rec.content);
      // Instantiate against the pseudo-key built by extract_from_message.
      logparse::LogKey pseudo;
      pseudo.id = -1;
      for (const auto& tok : common::split_ws(rec.content)) {
        if (common::has_digit(tok)) {
          if (pseudo.tokens.empty() || pseudo.tokens.back() != "*")
            pseudo.tokens.emplace_back("*");
        } else {
          pseudo.tokens.push_back(tok);
        }
      }
      u.message = extractor_.instantiate(u.extracted, pseudo, rec);
      report.unexpected.push_back(std::move(u));
      continue;
    }
    if (kv_.is_learned_kv_key(key_id)) continue;  // learned key-value noise (§5)
    const auto ik_it = intel_keys_.find(key_id);
    if (ik_it == intel_keys_.end()) continue;
    const IntelKey& ik = ik_it->second;

    const IntelMessage msg =
        extractor_.instantiate(ik, spell_.key(key_id), rec);
    GroupMessage gm;
    gm.key_id = key_id;
    gm.ids = msg.identifiers;
    gm.record_index = ri;
    gm.timestamp_ms = rec.timestamp_ms;
    std::set<std::string> target_groups;
    for (const auto& entity : ik.entities) {
      const auto& gs = groups_.groups_of(entity);
      target_groups.insert(gs.begin(), gs.end());
    }
    for (const auto& g : target_groups) {
      group_messages[g].push_back(gm);
      groups_seen.insert(g);
    }
  }

  extract_span.close();

  // HW-graph instance checks: missing groups, then subroutine structure.
  obs::Span check_span("detect/hwgraph_check", "detect");
  // Expected groups that never appeared -> erroneous HW-graph instance.
  for (const auto& g : expected_groups_) {
    if (!groups_seen.count(g)) {
      GroupIssue issue;
      issue.kind = GroupIssue::Kind::MissingGroup;
      issue.group = g;
      report.issues.push_back(std::move(issue));
    }
  }

  // Subroutine instances checked against the trained model.
  for (const auto& [gname, messages] : group_messages) {
    const auto git = graph_.groups().find(gname);
    if (git == graph_.groups().end()) continue;
    const SubroutineModel& model = git->second.subroutines;
    if (model.empty()) continue;
    for (const auto& inst : partition_instances(messages)) {
      const auto check = model.check(inst);
      if (!check.known_signature) {
        GroupIssue issue;
        issue.kind = GroupIssue::Kind::UnknownSignature;
        issue.group = gname;
        issue.signature = inst.signature;
        report.issues.push_back(std::move(issue));
      } else if (!check.missing_critical.empty()) {
        GroupIssue issue;
        issue.kind = GroupIssue::Kind::IncompleteSubroutine;
        issue.group = gname;
        issue.signature = inst.signature;
        issue.missing_keys = check.missing_critical;
        report.issues.push_back(std::move(issue));
      } else if (!check.order_violations.empty()) {
        GroupIssue issue;
        issue.kind = GroupIssue::Kind::OrderViolation;
        issue.group = gname;
        issue.signature = inst.signature;
        issue.violated_orders = check.order_violations;
        report.issues.push_back(std::move(issue));
      }
    }
  }
  return report;
}

}  // namespace intellog::core
