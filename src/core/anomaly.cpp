#include "core/anomaly.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "core/coverage.hpp"
#include "core/detect_scratch.hpp"
#include "core/explain.hpp"
#include "obs/profile/profile.hpp"
#include "obs/trace.hpp"

namespace intellog::core {

common::Json EvidenceLine::to_json() const {
  common::Json j = common::Json::object();
  j["record_index"] = record_index;
  j["timestamp_ms"] = static_cast<std::int64_t>(timestamp_ms);
  j["key"] = key_id;
  j["content"] = content;
  j["file"] = file;
  j["line"] = line_no;
  j["byte_offset"] = static_cast<std::int64_t>(byte_offset);
  return j;
}

common::Json Evidence::to_json() const {
  const auto keys_json = [](const std::vector<int>& keys) {
    common::Json arr = common::Json::array();
    for (const int k : keys) arr.push_back(k);
    return arr;
  };
  common::Json j = common::Json::object();
  j["expected_keys"] = keys_json(expected_keys);
  j["observed_keys"] = keys_json(observed_keys);
  j["matched_keys"] = keys_json(matched_keys);
  j["missing_keys"] = keys_json(missing_keys);
  j["deviation"] = deviation;
  common::Json lj = common::Json::array();
  for (const EvidenceLine& line : lines) lj.push_back(line.to_json());
  j["lines"] = std::move(lj);
  return j;
}

std::string_view to_string(GroupIssue::Kind kind) {
  switch (kind) {
    case GroupIssue::Kind::MissingGroup: return "missing-group";
    case GroupIssue::Kind::IncompleteSubroutine: return "incomplete-subroutine";
    case GroupIssue::Kind::UnknownSignature: return "unknown-signature";
    case GroupIssue::Kind::OrderViolation: return "order-violation";
  }
  return "unknown";
}

common::Json AnomalyReport::to_json() const {
  common::Json j = common::Json::object();
  j["container"] = container_id;
  j["session_length"] = session_length;
  j["anomalous"] = anomalous();
  // Only emitted for degraded-mode reports: normal reports keep their
  // pre-existing byte layout (checkpoint parity tests compare dumps).
  if (degraded()) j["degraded"] = degraded_reason;
  common::Json unexp = common::Json::array();
  for (const auto& u : unexpected) {
    common::Json uj = common::Json::object();
    uj["record_index"] = u.record_index;
    uj["content"] = u.content;
    uj["intel_key"] = u.extracted.to_json();
    uj["intel_message"] = u.message.to_json();
    // Omitted when evidence construction is disabled: the key's absence is
    // the documented signal, not an empty object.
    if (!u.evidence.empty()) uj["evidence"] = u.evidence.to_json();
    unexp.push_back(std::move(uj));
  }
  j["unexpected_messages"] = std::move(unexp);
  common::Json iss = common::Json::array();
  for (const auto& i : issues) {
    common::Json ij = common::Json::object();
    ij["kind"] = std::string(to_string(i.kind));
    ij["group"] = i.group;
    common::Json sig = common::Json::array();
    for (const auto& s : i.signature) sig.push_back(s);
    ij["signature"] = std::move(sig);
    common::Json mk = common::Json::array();
    for (const int k : i.missing_keys) mk.push_back(k);
    ij["missing_critical_keys"] = std::move(mk);
    common::Json ov = common::Json::array();
    for (const auto& [a, b] : i.violated_orders) {
      common::Json pair = common::Json::array();
      pair.push_back(a);
      pair.push_back(b);
      ov.push_back(std::move(pair));
    }
    ij["violated_orders"] = std::move(ov);
    if (!i.evidence.empty()) ij["evidence"] = i.evidence.to_json();
    iss.push_back(std::move(ij));
  }
  j["group_issues"] = std::move(iss);
  return j;
}

AnomalyDetector::AnomalyDetector(const logparse::Spell& spell, const logparse::KvFilter& kv,
                                 const InfoExtractor& extractor,
                                 const std::map<int, IntelKey>& intel_keys,
                                 const EntityGroups& groups, const HwGraph& graph,
                                 double expected_group_fraction)
    : spell_(spell),
      kv_(kv),
      extractor_(extractor),
      intel_keys_(intel_keys),
      groups_(groups),
      graph_(graph),
      expected_groups_(graph.expected_groups(expected_group_fraction)) {}

AnomalyReport AnomalyDetector::detect(const logparse::Session& session) const {
  thread_local DetectScratch scratch;
  return detect(session, scratch);
}

AnomalyReport AnomalyDetector::detect(const logparse::Session& session,
                                      DetectScratch& scratch) const {
  PROF_FRAME("detect.session");
  scratch.reset_session();
  AnomalyReport report;
  report.container_id = session.container_id;
  report.session_length = session.records.size();

  std::map<std::string, std::vector<GroupMessage>> group_messages;
  std::set<std::string> groups_seen;
  const bool with_evidence = evidence_enabled();
  CoverageLedger* const cov = coverage();
  // Spell key per record (-1: no match); labels the boundary records cited
  // as missing-group evidence. Filled from matches already computed.
  std::vector<int> record_keys(with_evidence ? session.records.size() : 0, -1);

  // Per-record Spell matching, on-the-fly extraction and entity grouping.
  obs::Span extract_span("detect/extract+group", "detect");
  obs::ProfFrame scan_frame("detect.scan");
  for (std::size_t ri = 0; ri < session.records.size(); ++ri) {
    const logparse::LogRecord& rec = session.records[ri];
    const int key_id = spell_.match(rec.content);
    if (with_evidence) record_keys[ri] = key_id;
    if (cov && key_id >= 0) cov->stamp_log_key(key_id);
    if (key_id < 0) {
      // Unexpected log message: run extraction on the fly (§4.2).
      UnexpectedMessage u;
      u.record_index = ri;
      u.content = rec.content;
      u.extracted = extractor_.extract_from_message(rec.content);
      // Instantiate against the pseudo-key built by extract_from_message.
      logparse::LogKey pseudo;
      pseudo.id = -1;
      for (const auto& tok : common::split_ws(rec.content)) {
        if (common::has_digit(tok)) {
          if (pseudo.tokens.empty() || pseudo.tokens.back() != "*")
            pseudo.tokens.emplace_back("*");
        } else {
          pseudo.tokens.push_back(tok);
        }
      }
      u.message = extractor_.instantiate(u.extracted, pseudo, rec, scratch);
      if (with_evidence) u.evidence = build_unexpected_evidence(session, ri);
      report.unexpected.push_back(std::move(u));
      continue;
    }
    if (kv_.is_learned_kv_key(key_id)) continue;  // learned key-value noise (§5)
    const auto ik_it = intel_keys_.find(key_id);
    if (ik_it == intel_keys_.end()) continue;
    const IntelKey& ik = ik_it->second;

    // Target groups as sorted-unique pointers into EntityGroups' stable
    // strings: same visit order a std::set<std::string> gave, none of its
    // node/string allocations. Resolved before extraction so records whose
    // entities map to no group skip identifier extraction entirely — their
    // GroupMessage would be discarded unread.
    scratch.target_groups.clear();
    for (const auto& entity : ik.entities) {
      for (const auto& g : groups_.groups_of(entity)) scratch.target_groups.push_back(&g);
    }
    if (scratch.target_groups.empty()) continue;
    std::sort(scratch.target_groups.begin(), scratch.target_groups.end(),
              [](const std::string* a, const std::string* b) { return *a < *b; });
    scratch.target_groups.erase(
        std::unique(scratch.target_groups.begin(), scratch.target_groups.end(),
                    [](const std::string* a, const std::string* b) { return *a == *b; }),
        scratch.target_groups.end());

    GroupMessage gm;
    gm.key_id = key_id;
    extractor_.instantiate_identifiers(ik, spell_.key(key_id), rec, scratch, gm.ids);
    gm.record_index = ri;
    gm.timestamp_ms = rec.timestamp_ms;
    for (std::size_t gi = 0; gi < scratch.target_groups.size(); ++gi) {
      const std::string& g = *scratch.target_groups[gi];
      auto& bucket = group_messages[g];
      if (gi + 1 == scratch.target_groups.size()) {
        bucket.push_back(std::move(gm));
      } else {
        bucket.push_back(gm);
      }
      groups_seen.insert(g);
    }
  }

  extract_span.close();
  scan_frame.close();

  // An edge is exercised when both endpoint groups appeared this session.
  if (cov) cov->stamp_edges(groups_seen);

  // HW-graph instance checks: missing groups, then subroutine structure.
  obs::Span check_span("detect/hwgraph_check", "detect");
  PROF_FRAME("detect.hwgraph_check");
  // Expected groups that never appeared -> erroneous HW-graph instance.
  for (const auto& g : expected_groups_) {
    if (!groups_seen.count(g)) {
      GroupIssue issue;
      issue.kind = GroupIssue::Kind::MissingGroup;
      issue.group = g;
      if (with_evidence) {
        const auto git = graph_.groups().find(g);
        if (git != graph_.groups().end()) {
          issue.evidence = build_missing_group_evidence(session, git->second, record_keys);
        }
      }
      report.issues.push_back(std::move(issue));
    }
  }

  // Subroutine instances checked against the trained model. The map is
  // dead after this loop, so each bucket's messages move into their
  // instances instead of being copied.
  for (auto& [gname, messages] : group_messages) {
    const auto git = graph_.groups().find(gname);
    if (git == graph_.groups().end()) continue;
    const SubroutineModel& model = git->second.subroutines;
    if (model.empty()) continue;
    const std::size_t n_instances = partition_instances(std::move(messages), scratch);
    for (std::size_t ii = 0; ii < n_instances; ++ii) {
      const SubroutineInstance& inst = scratch.instances[ii];
      const auto check = model.check(inst, scratch);
      if (cov) cov->stamp_subroutine(check.matched);
      if (check.ok()) continue;
      GroupIssue issue;
      issue.group = gname;
      issue.signature = inst.signature;
      if (!check.known_signature) {
        issue.kind = GroupIssue::Kind::UnknownSignature;
      } else if (!check.missing_critical.empty()) {
        issue.kind = GroupIssue::Kind::IncompleteSubroutine;
        issue.missing_keys = check.missing_critical;
      } else {
        issue.kind = GroupIssue::Kind::OrderViolation;
        issue.violated_orders = check.order_violations;
      }
      if (with_evidence) {
        const auto sit = model.subroutines().find(inst.signature);
        const Subroutine* trained =
            sit == model.subroutines().end() ? nullptr : &sit->second;
        issue.evidence = build_instance_evidence(session, trained, inst, check);
      }
      report.issues.push_back(std::move(issue));
    }
  }
  return report;
}

}  // namespace intellog::core
