// Locality-information patterns (§3.1).
//
// "We define a set of patterns to capture commonly used locality
// information in distributed systems. These patterns include: 1) host
// names, 2) IP addresses and ports, 3) local directory paths, and 4)
// distributed file system paths. Besides, users can define new patterns."
#pragma once

#include <functional>
#include <string_view>
#include <vector>

namespace intellog::core {

/// A user-extensible locality matcher: token -> is-locality.
using LocalityPattern = std::function<bool(std::string_view)>;

class LocalityMatcher {
 public:
  /// Builds the four built-in pattern classes.
  LocalityMatcher();

  /// True if the token carries locality information.
  bool is_locality(std::string_view token) const;

  /// Registers an additional user pattern.
  void add_pattern(LocalityPattern pattern) { patterns_.push_back(std::move(pattern)); }

 private:
  std::vector<LocalityPattern> patterns_;
};

/// Built-in pattern primitives (exposed for tests and user composition).
bool looks_like_host_name(std::string_view token);
bool looks_like_ip_port(std::string_view token);
bool looks_like_host_port(std::string_view token);
bool looks_like_local_path(std::string_view token);
bool looks_like_dfs_path(std::string_view token);

}  // namespace intellog::core
