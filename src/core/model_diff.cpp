#include "core/model_diff.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/strings.hpp"
#include "core/coverage.hpp"

namespace intellog::core {

namespace {

ClassDiff diff_sets(std::string name, const std::set<std::string>& a,
                    const std::set<std::string>& b) {
  ClassDiff diff;
  diff.name = std::move(name);
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(), std::back_inserter(diff.added));
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(diff.removed));
  std::vector<std::string> common;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(common));
  diff.common = common.size();
  return diff;
}

std::set<std::string> log_key_templates(const IntelLog& il) {
  std::set<std::string> out;
  for (const auto& key : il.spell().keys()) out.insert(common::join(key.tokens));
  return out;
}

/// Constant tokens only — the de-wildcarded skeleton that survives Spell
/// refinement (a token flipping to '*' changes the template, not this).
std::string skeleton_of(const std::string& tmpl) {
  std::string out;
  for (const auto& tok : common::split_ws(tmpl)) {
    if (tok == "*") continue;
    if (!out.empty()) out += ' ';
    out += tok;
  }
  return out;
}

std::set<std::string> intel_key_texts(const IntelLog& il) {
  std::set<std::string> out;
  for (const auto& [id, ik] : il.intel_keys()) {
    (void)id;
    out.insert(ik.key_text);
  }
  return out;
}

std::set<std::string> group_member_pairs(const IntelLog& il) {
  std::set<std::string> out;
  for (const auto& [gname, members] : il.entity_groups().groups) {
    for (const auto& m : members) out.insert(gname + "/" + m);
  }
  return out;
}

std::set<std::string> subroutine_keys(const IntelLog& il) {
  std::set<std::string> out;
  for (const auto& [gname, node] : il.hw_graph().groups()) {
    for (const auto& [sig, sub] : node.subroutines.subroutines()) {
      (void)sub;
      out.insert(subroutine_component_key(gname, sig));
    }
  }
  return out;
}

std::set<std::string> edge_keys(const IntelLog& il) {
  std::set<std::string> out;
  for (const auto& [pair, rel] : il.hw_graph().relations()) {
    out.insert(pair.first + " -" + std::string(to_string(rel)) + "-> " + pair.second);
  }
  return out;
}

common::Json string_array(const std::vector<std::string>& items) {
  common::Json arr = common::Json::array();
  for (const auto& s : items) arr.push_back(s);
  return arr;
}

}  // namespace

double ClassDiff::jaccard() const {
  const std::size_t u = union_size();
  return u == 0 ? 1.0 : static_cast<double>(common) / static_cast<double>(u);
}

common::Json ClassDiff::to_json() const {
  common::Json j = common::Json::object();
  j["added"] = string_array(added);
  j["removed"] = string_array(removed);
  j["common"] = common;
  j["jaccard"] = jaccard();
  j["drift"] = drift();
  return j;
}

double ModelDiff::drift_score() const {
  double weighted = 0.0;
  std::size_t total = 0;
  for (const ClassDiff* cls : {&log_keys, &intel_keys, &group_members, &subroutines, &edges}) {
    weighted += static_cast<double>(cls->union_size()) * cls->drift();
    total += cls->union_size();
  }
  return total == 0 ? 0.0 : weighted / static_cast<double>(total);
}

common::Json ModelDiff::to_json() const {
  common::Json doc = common::Json::object();
  doc["kind"] = "intellog_model_diff";
  doc["schema_version"] = 1;
  doc["drift_score"] = drift_score();
  common::Json classes = common::Json::object();
  for (const ClassDiff* cls : {&log_keys, &intel_keys, &group_members, &subroutines, &edges}) {
    classes[cls->name] = cls->to_json();
  }
  doc["classes"] = std::move(classes);
  common::Json refined = common::Json::array();
  for (const auto& [a, b] : refined_keys) {
    common::Json pair = common::Json::array();
    pair.push_back(a);
    pair.push_back(b);
    refined.push_back(std::move(pair));
  }
  doc["refined_keys"] = std::move(refined);
  return doc;
}

std::string ModelDiff::render_text() const {
  std::ostringstream out;
  out << "drift score: " << drift_score() << "\n";
  for (const ClassDiff* cls : {&log_keys, &intel_keys, &group_members, &subroutines, &edges}) {
    out << cls->name << ": " << cls->common << " common, " << cls->added.size() << " added, "
        << cls->removed.size() << " removed (drift " << cls->drift() << ")\n";
    for (const auto& s : cls->added) out << "  + " << s << "\n";
    for (const auto& s : cls->removed) out << "  - " << s << "\n";
  }
  if (!refined_keys.empty()) {
    out << "refined log keys (same skeleton, different wildcards):\n";
    for (const auto& [a, b] : refined_keys) out << "  ~ " << a << " -> " << b << "\n";
  }
  return out.str();
}

ModelDiff diff_models(const IntelLog& a, const IntelLog& b) {
  ModelDiff diff;
  diff.log_keys = diff_sets("log_keys", log_key_templates(a), log_key_templates(b));
  diff.intel_keys = diff_sets("intel_keys", intel_key_texts(a), intel_key_texts(b));
  diff.group_members = diff_sets("group_members", group_member_pairs(a), group_member_pairs(b));
  diff.subroutines = diff_sets("subroutines", subroutine_keys(a), subroutine_keys(b));
  diff.edges = diff_sets("edges", edge_keys(a), edge_keys(b));

  // Refined keys: a removed and an added template sharing a de-wildcarded
  // skeleton are the same statement under different masking. Pair them in
  // sorted order (both lists are sorted) for determinism.
  std::map<std::string, std::vector<std::string>> removed_by_skeleton;
  for (const auto& tmpl : diff.log_keys.removed) {
    removed_by_skeleton[skeleton_of(tmpl)].push_back(tmpl);
  }
  std::map<std::string, std::size_t> used;
  for (const auto& tmpl : diff.log_keys.added) {
    const auto it = removed_by_skeleton.find(skeleton_of(tmpl));
    if (it == removed_by_skeleton.end()) continue;
    std::size_t& next = used[it->first];
    if (next >= it->second.size()) continue;
    diff.refined_keys.emplace_back(it->second[next++], tmpl);
  }
  return diff;
}

}  // namespace intellog::core
