#include "core/query.hpp"

#include <cctype>
#include <optional>
#include <stdexcept>

#include "common/strings.hpp"

namespace intellog::core {

namespace {

enum class Op { Eq, Ne, Contains, Lt, Gt };

std::string_view op_name(Op op) {
  switch (op) {
    case Op::Eq: return "=";
    case Op::Ne: return "!=";
    case Op::Contains: return "~";
    case Op::Lt: return "<";
    case Op::Gt: return ">";
  }
  return "=";
}

bool compare_text(Op op, std::string_view actual, std::string_view expected) {
  switch (op) {
    case Op::Eq: return actual == expected;
    case Op::Ne: return actual != expected;
    case Op::Contains: return actual.find(expected) != std::string_view::npos;
    default: return false;
  }
}

std::optional<double> to_number(std::string_view s) {
  // Values may carry fused units ("17ms"): take the leading numeric run.
  std::size_t end = 0;
  bool dot = false;
  while (end < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[end])) || (s[end] == '.' && !dot))) {
    if (s[end] == '.') dot = true;
    ++end;
  }
  if (end == 0) return std::nullopt;
  try {
    return std::stod(std::string(s.substr(0, end)));
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

bool compare_numeric(Op op, double actual, double expected) {
  switch (op) {
    case Op::Eq: return actual == expected;
    case Op::Ne: return actual != expected;
    case Op::Lt: return actual < expected;
    case Op::Gt: return actual > expected;
    default: return false;
  }
}

}  // namespace

struct Query::Node {
  enum class Kind { And, Or, Not, Term } kind = Kind::Term;
  std::shared_ptr<const Node> left, right;  // And/Or; Not uses left only
  // Term:
  std::string field;    // "key", "container", "time", "id", "locality", "value", "unit"
  std::string id_type;  // for "id.<TYPE>"
  Op op = Op::Eq;
  std::string value;

  bool eval(const IntelMessage& m) const {
    switch (kind) {
      case Kind::And: return left->eval(m) && right->eval(m);
      case Kind::Or: return left->eval(m) || right->eval(m);
      case Kind::Not: return !left->eval(m);
      case Kind::Term: break;
    }
    if (field == "key") {
      const auto num = to_number(value);
      return num && compare_numeric(op, static_cast<double>(m.key_id), *num);
    }
    if (field == "time") {
      const auto num = to_number(value);
      return num && compare_numeric(op, static_cast<double>(m.timestamp_ms), *num);
    }
    if (field == "container") return compare_text(op, m.container_id, value);
    if (field == "locality") {
      for (const auto& loc : m.localities) {
        if (compare_text(op, loc, value)) return true;
      }
      return false;
    }
    if (field == "unit") {
      for (const auto& [text, unit] : m.values) {
        (void)text;
        if (compare_text(op, unit, value)) return true;
      }
      return false;
    }
    if (field == "value") {
      for (const auto& [text, unit] : m.values) {
        (void)unit;
        if (op == Op::Lt || op == Op::Gt || op == Op::Eq || op == Op::Ne) {
          const auto actual = to_number(text);
          const auto expected = to_number(value);
          if (actual && expected && compare_numeric(op, *actual, *expected)) return true;
          if (op == Op::Eq && compare_text(Op::Eq, text, value)) return true;
          if (op == Op::Ne && !actual && compare_text(Op::Ne, text, value)) return true;
        } else if (compare_text(op, text, value)) {
          return true;
        }
      }
      return false;
    }
    if (field == "id") {
      for (const auto& iv : m.identifiers) {
        if (!id_type.empty() && iv.type != id_type) continue;
        if (compare_text(op, iv.value, value)) return true;
      }
      return false;
    }
    return false;
  }

  std::string str() const {
    switch (kind) {
      case Kind::And: return "(" + left->str() + " AND " + right->str() + ")";
      case Kind::Or: return "(" + left->str() + " OR " + right->str() + ")";
      case Kind::Not: return "(NOT " + left->str() + ")";
      case Kind::Term: break;
    }
    std::string f = field;
    if (!id_type.empty()) f += "." + id_type;
    return f + std::string(op_name(op)) + "\"" + value + "\"";
  }
};

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  std::shared_ptr<const Query::Node> parse() {
    auto node = parse_or();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing input");
    return node;
  }

 private:
  using Node = Query::Node;

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::invalid_argument("query error at offset " + std::to_string(pos_) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  bool consume_word(std::string_view word) {
    skip_ws();
    if (s_.substr(pos_, word.size()) != word) return false;
    const std::size_t after = pos_ + word.size();
    if (after < s_.size() && std::isalnum(static_cast<unsigned char>(s_[after]))) return false;
    pos_ = after;
    return true;
  }

  std::shared_ptr<const Node> parse_or() {
    auto left = parse_and();
    while (consume_word("OR")) {
      auto node = std::make_shared<Node>();
      node->kind = Node::Kind::Or;
      node->left = left;
      node->right = parse_and();
      left = node;
    }
    return left;
  }

  std::shared_ptr<const Node> parse_and() {
    auto left = parse_term();
    while (consume_word("AND")) {
      auto node = std::make_shared<Node>();
      node->kind = Node::Kind::And;
      node->left = left;
      node->right = parse_term();
      left = node;
    }
    return left;
  }

  std::shared_ptr<const Node> parse_term() {
    skip_ws();
    if (consume_word("NOT")) {
      auto node = std::make_shared<Node>();
      node->kind = Node::Kind::Not;
      node->left = parse_term();
      return node;
    }
    if (pos_ < s_.size() && s_[pos_] == '(') {
      ++pos_;
      auto inner = parse_or();
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ')') fail("expected ')'");
      ++pos_;
      return inner;
    }
    return parse_comparison();
  }

  std::shared_ptr<const Node> parse_comparison() {
    skip_ws();
    auto node = std::make_shared<Node>();
    node->kind = Node::Kind::Term;

    // field [. TYPE]
    const std::size_t fstart = pos_;
    while (pos_ < s_.size() && (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
                                s_[pos_] == '_')) {
      ++pos_;
    }
    node->field = std::string(s_.substr(fstart, pos_ - fstart));
    static const char* kFields[] = {"key", "container", "time", "id", "locality", "value",
                                    "unit"};
    bool known = false;
    for (const char* f : kFields) known |= node->field == f;
    if (!known) fail("unknown field '" + node->field + "'");
    if (node->field == "id" && pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      const std::size_t tstart = pos_;
      while (pos_ < s_.size() && (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
                                  s_[pos_] == '_')) {
        ++pos_;
      }
      node->id_type = std::string(s_.substr(tstart, pos_ - tstart));
      if (node->id_type.empty()) fail("expected identifier type after 'id.'");
    }

    // operator
    skip_ws();
    if (pos_ >= s_.size()) fail("expected operator");
    if (s_[pos_] == '!' && pos_ + 1 < s_.size() && s_[pos_ + 1] == '=') {
      node->op = Op::Ne;
      pos_ += 2;
    } else if (s_[pos_] == '=') {
      node->op = Op::Eq;
      ++pos_;
    } else if (s_[pos_] == '~') {
      node->op = Op::Contains;
      ++pos_;
    } else if (s_[pos_] == '<') {
      node->op = Op::Lt;
      ++pos_;
    } else if (s_[pos_] == '>') {
      node->op = Op::Gt;
      ++pos_;
    } else {
      fail("expected one of = != ~ < >");
    }
    if ((node->op == Op::Lt || node->op == Op::Gt) && node->field != "key" &&
        node->field != "time" && node->field != "value") {
      fail("numeric comparison only on key/time/value");
    }

    // value: quoted or bare token
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '"') {
      ++pos_;
      const std::size_t vstart = pos_;
      while (pos_ < s_.size() && s_[pos_] != '"') ++pos_;
      if (pos_ >= s_.size()) fail("unterminated quoted value");
      node->value = std::string(s_.substr(vstart, pos_ - vstart));
      ++pos_;
    } else {
      if (pos_ < s_.size() &&
          std::string_view("=~<>!").find(s_[pos_]) != std::string_view::npos) {
        fail("expected value");
      }
      const std::size_t vstart = pos_;
      while (pos_ < s_.size() && !std::isspace(static_cast<unsigned char>(s_[pos_])) &&
             s_[pos_] != ')') {
        ++pos_;
      }
      node->value = std::string(s_.substr(vstart, pos_ - vstart));
      if (node->value.empty()) fail("expected value");
    }
    return node;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

Query Query::parse(std::string_view text) {
  Query q;
  q.root_ = Parser(text).parse();
  return q;
}

bool Query::matches(const IntelMessage& message) const {
  return root_ && root_->eval(message);
}

std::string Query::to_string() const { return root_ ? root_->str() : "<empty>"; }

std::vector<const IntelMessage*> run_query(const MessageStore& store, std::string_view text) {
  const Query q = Query::parse(text);
  return store.query([&q](const IntelMessage& m) { return q.matches(m); });
}

}  // namespace intellog::core
