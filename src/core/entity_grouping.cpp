#include "core/entity_grouping.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "obs/profile/profile.hpp"

namespace intellog::core {

const std::set<std::string>& EntityGroups::groups_of(const std::string& entity) const {
  static const std::set<std::string> kEmpty;
  const auto it = reverse.find(entity);
  return it == reverse.end() ? kEmpty : it->second;
}

std::vector<std::string> longest_common_phrase(const std::vector<std::string>& a,
                                               const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return {};
  // One-word phrase: the common phrase is that word if the other phrase
  // contains it (Line 24-25 of Algorithm 1).
  if (a.size() == 1 || b.size() == 1) {
    const std::vector<std::string>& one = a.size() == 1 ? a : b;
    const std::vector<std::string>& other = a.size() == 1 ? b : a;
    if (std::find(other.begin(), other.end(), one[0]) != other.end()) return {one[0]};
    return {};
  }
  const std::vector<std::string> lcs = common::longest_common_substring_words(a, b);
  if (lcs.empty()) return {};
  // Two multi-word phrases that only share their last few words have
  // generic tails ("manager", "file", "output") — not correlated
  // (Line 26-27).
  const std::size_t suffix = common::common_suffix_words(a, b);
  if (suffix > 0 && lcs.size() <= suffix) return {};
  return lcs;
}

EntityGroups group_entities(const std::vector<std::string>& entities) {
  PROF_FRAME("train.group_entities");
  // Deduplicate and sort ascending by word count (Algorithm 1 input).
  std::vector<std::vector<std::string>> items;
  {
    std::set<std::string> seen;
    for (const auto& e : entities) {
      if (!e.empty() && seen.insert(e).second) items.push_back(common::split_ws(e));
    }
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const auto& x, const auto& y) { return x.size() < y.size(); });

  struct Group {
    std::vector<std::string> name;
    std::set<std::string> members;
  };
  std::vector<Group> groups;
  for (const auto& e : items) {
    const std::string joined = common::join(e, " ");
    bool grouped = false;
    for (auto& g : groups) {
      const auto lcp = longest_common_phrase(g.name, e);
      if (!lcp.empty()) {
        g.members.insert(joined);
        g.name = lcp;  // the group name shrinks to the shared phrase
        grouped = true;
      }
    }
    if (!grouped) groups.push_back({e, {joined}});
  }

  EntityGroups out;
  for (const auto& g : groups) {
    const std::string name = common::join(g.name, " ");
    auto& members = out.groups[name];
    members.insert(g.members.begin(), g.members.end());
    for (const auto& m : g.members) out.reverse[m].insert(name);
  }
  return out;
}

}  // namespace intellog::core
