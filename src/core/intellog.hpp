// IntelLog facade (Fig. 2): the full pipeline behind one class.
//
//   log files -> [Spell: log keys] -> [NLP extraction: Intel Keys]
//             -> [entity grouping + subroutines + lifespans: HW-graph]
//             -> [anomaly detection on incoming sessions]
//
// Typical use:
//   IntelLog il;
//   il.train(training_sessions);          // tuned, fault-free runs
//   auto report = il.detect(new_session); // report.anomalous() etc.
//   auto json = il.hw_graph_json();       // queryable workflow export
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/anomaly.hpp"
#include "core/coverage.hpp"
#include "core/entity_grouping.hpp"
#include "core/extraction.hpp"
#include "core/hw_graph.hpp"
#include "core/intel_key.hpp"
#include "core/message_store.hpp"
#include "logparse/kv_filter.hpp"
#include "logparse/session.hpp"
#include "logparse/spell.hpp"

namespace intellog::obs {
class MetricsRegistry;
}

namespace intellog::core {

class IntelLog {
 public:
  struct Config {
    double spell_threshold = 1.7;          ///< §5 empirical Spell threshold
    /// A group is "expected" (its absence is an erroneous HW-graph
    /// instance) only when EVERY training session contained it — sessions
    /// are heterogeneous (AM vs mapper vs reducer containers), so any
    /// lower bar misfires on whole session classes.
    double expected_group_fraction = 1.0;
    std::size_t num_threads = 0;           ///< 0 = hardware concurrency
  };

  IntelLog() : IntelLog(Config{}) {}
  explicit IntelLog(Config config);

  // The detector references this object's members, so moves rebuild it.
  IntelLog(IntelLog&& other) noexcept;
  IntelLog& operator=(IntelLog&& other) noexcept;
  IntelLog(const IntelLog&) = delete;
  IntelLog& operator=(const IntelLog&) = delete;

  /// Trains the model from fault-free sessions (log keys, Intel Keys,
  /// entity groups, subroutines, HW-graph). May be called once.
  void train(const std::vector<logparse::Session>& sessions);

  /// Detects anomalies in one session against the trained model.
  AnomalyReport detect(const logparse::Session& session) const;

  /// detect() with a caller-owned DetectScratch (arena + reusable working
  /// vectors). Reuse one scratch per thread across many sessions to keep
  /// the hot path allocation-free; verdicts are identical either way.
  AnomalyReport detect(const logparse::Session& session, DetectScratch& scratch) const;

  /// Batch detection: fans `sessions` across `jobs` worker threads in
  /// contiguous shards. Reports are returned in input order and are
  /// identical to calling detect() serially on each session (the whole
  /// detect path is const + thread-safe). `jobs` == 0 uses
  /// config().num_threads (which itself defaults to hardware
  /// concurrency); `jobs` == 1 runs inline with no pool. Records
  /// `intellog_detect_batch_*` metrics when a registry is installed.
  std::vector<AnomalyReport> detect_batch(std::span<const logparse::Session> sessions,
                                          std::size_t jobs = 0) const;

  /// Toggles Evidence construction on anomaly findings (on by default).
  /// Verdicts are unchanged either way; thread-safe with concurrent
  /// detect() calls, hence usable on a const (shared) model. No-op before
  /// train().
  void set_evidence_enabled(bool enabled) const {
    if (detector_) detector_->set_evidence_enabled(enabled);
  }
  bool evidence_enabled() const { return detector_ && detector_->evidence_enabled(); }

  /// Toggles the model coverage ledger (Quality Observatory). When on,
  /// detect()/detect_batch() stamp per-component hit counters (log keys,
  /// subroutines, HW-graph edges); totals are deterministic at any batch
  /// width. Like the evidence flag, usable on a const (shared) model —
  /// but attach before launching concurrent detects. The ledger is built
  /// lazily from the trained model and keeps its counts across toggles;
  /// no-op before train().
  void set_coverage_enabled(bool enabled) const;
  bool coverage_enabled() const { return detector_ && detector_->coverage() != nullptr; }
  /// The ledger (nullptr until first enabled). Counts survive disabling.
  const CoverageLedger* coverage() const { return coverage_.get(); }

  /// Converts a session's records into Intel Messages (for MessageStore
  /// queries and exports).
  std::vector<IntelMessage> to_intel_messages(const logparse::Session& session) const;

  // --- model introspection -------------------------------------------------
  bool trained() const { return trained_; }
  const logparse::Spell& spell() const { return spell_; }
  const std::map<int, IntelKey>& intel_keys() const { return intel_keys_; }
  const EntityGroups& entity_groups() const { return groups_; }
  const HwGraph& hw_graph() const { return graph_; }
  const InfoExtractor& extractor() const { return extractor_; }
  InfoExtractor& extractor() { return extractor_; }
  const logparse::KvFilter& kv_filter() const { return kv_filter_; }
  common::Json hw_graph_json() const { return graph_.to_json(); }
  const Config& config() const { return config_; }

  /// First sample message recorded for a log key during training.
  const std::string& sample_message(int key_id) const;

  /// Records the model-size gauges (`intellog_model_*`) into `reg`.
  /// train() does this automatically on the installed global registry;
  /// call it explicitly after load_model() to re-export a loaded model.
  void record_model_metrics(obs::MetricsRegistry& reg) const;

 private:
  friend common::Json save_model(const IntelLog&);
  friend IntelLog load_model(const common::Json&);

  std::set<std::string> groups_of_key(int key_id) const;

  Config config_;
  InfoExtractor extractor_;
  logparse::Spell spell_;
  logparse::KvFilter kv_filter_;
  std::map<int, IntelKey> intel_keys_;
  std::map<int, std::string> samples_;
  EntityGroups groups_;
  HwGraph graph_;
  std::unique_ptr<AnomalyDetector> detector_;
  /// Owned by the model, attached to the detector while enabled; mutable
  /// for the same reason set_evidence_enabled is const — observability
  /// toggles on a shared, logically-const model.
  mutable std::unique_ptr<CoverageLedger> coverage_;
  bool trained_ = false;
};

}  // namespace intellog::core
