#include "core/detect_scratch.hpp"

#include <atomic>

namespace intellog::core {

namespace {

std::atomic<std::size_t> g_arena_bytes_peak{0};

}  // namespace

void DetectScratch::reset_session() {
  const std::size_t peak = arena.bytes_peak();
  std::size_t cur = g_arena_bytes_peak.load(std::memory_order_relaxed);
  while (peak > cur &&
         !g_arena_bytes_peak.compare_exchange_weak(cur, peak, std::memory_order_relaxed)) {
  }
  arena.reset();
}

std::size_t detect_arena_bytes_peak() {
  return g_arena_bytes_peak.load(std::memory_order_relaxed);
}

}  // namespace intellog::core
