// Streaming anomaly detection.
//
// §4.2: "IntelLog instantiates a HW-graph instance when a system starts a
// new session ... While consuming incoming logs, IntelLog aims to build
// the graph instance to meet the structure of the corresponding HW-graph."
// OnlineDetector is that consumption loop: feed records as they arrive
// (any interleaving of containers); unexpected messages surface
// immediately, structural checks (missing groups, incomplete subroutines,
// order violations) run when a session closes — explicitly, or after an
// idle timeout.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/intellog.hpp"

namespace intellog::core {

class OnlineDetector {
 public:
  /// `model` must outlive the detector and be trained.
  explicit OnlineDetector(const IntelLog& model);

  /// An immediately-reportable event from one consumed record.
  struct Event {
    std::string container_id;
    std::size_t record_index = 0;  ///< index within the session so far
    UnexpectedMessage unexpected;
  };

  /// Consumes one record (routed by record.container_id; empty ids are
  /// dropped). Returns the unexpected-message event if the record matches
  /// no Intel Key.
  std::optional<Event> consume(const logparse::LogRecord& record);

  /// Ends a session and runs the full structural check. Returns nullopt if
  /// the container is unknown.
  std::optional<AnomalyReport> close_session(const std::string& container_id);

  /// Closes every session whose last record is older than `idle_ms`
  /// relative to `now_ms`, returning their reports.
  std::vector<AnomalyReport> close_idle(std::uint64_t now_ms, std::uint64_t idle_ms);

  /// Closes everything still open.
  std::vector<AnomalyReport> close_all();

  std::vector<std::string> open_sessions() const;
  std::size_t buffered_records(const std::string& container_id) const;

 private:
  struct SessionState {
    logparse::Session session;
    std::uint64_t last_seen_ms = 0;
  };

  const IntelLog& model_;
  std::map<std::string, SessionState> open_;
};

}  // namespace intellog::core
