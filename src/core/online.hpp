// Streaming anomaly detection.
//
// §4.2: "IntelLog instantiates a HW-graph instance when a system starts a
// new session ... While consuming incoming logs, IntelLog aims to build
// the graph instance to meet the structure of the corresponding HW-graph."
// OnlineDetector is that consumption loop: feed records as they arrive
// (any interleaving of containers); unexpected messages surface
// immediately, structural checks (missing groups, incomplete subroutines,
// order violations) run when a session closes — explicitly, or after an
// idle timeout.
//
// Chaos-hardened operation:
//  - Bounded memory: Limits caps live sessions and total buffered records.
//    Overflow evicts the least-recently-active session through the
//    structural checks in *degraded mode* (report flagged, telemetry
//    counted) instead of growing without bound.
//  - Watchdog: sessions stuck open past `max_session_age_ms` of stream
//    time are force-closed (degraded) so one chatty-then-silent container
//    cannot pin memory forever.
//  - Checkpoint/restore: checkpoint() snapshots all open-session state as a
//    versioned, CRC32-checksummed JSON document; checkpoint_file() writes
//    it with atomic rename-on-write; restore() resumes mid-stream so a
//    detector crash loses at most one checkpoint interval.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/intellog.hpp"
#include "obs/metrics.hpp"

namespace intellog::core {

/// Bounded-memory configuration for OnlineDetector; 0 everywhere =
/// unbounded (the default, identical to the pre-hardening behaviour).
/// Namespace-scope (rather than nested) so it can appear as a default
/// argument inside the class definition.
struct DetectorLimits {
  std::size_t max_sessions = 0;          ///< live-session cap (LRU eviction)
  std::size_t max_buffered_records = 0;  ///< total buffered-record cap
  /// Stream-time watchdog: a session open longer than this (first record
  /// to `now_ms`) is force-closed by close_idle()/watchdog().
  std::uint64_t max_session_age_ms = 0;
};

class OnlineDetector {
 public:
  using Limits = DetectorLimits;

  /// `model` must outlive the detector and be trained. Streaming telemetry
  /// handles are captured here: install the obs registry (and keep it
  /// alive past the detector) *before* constructing to collect
  /// per-record latency, open-session and unexpected-rate metrics.
  /// `jobs` controls session draining: close_idle()/close_all() run their
  /// structural checks through IntelLog::detect_batch with this many
  /// workers (1 = serial, 0 = the model's configured thread count).
  /// Reports are identical either way; only wall-clock changes.
  explicit OnlineDetector(const IntelLog& model, std::size_t jobs = 1, Limits limits = {});

  /// An immediately-reportable event from one consumed record.
  struct Event {
    std::string container_id;
    std::size_t record_index = 0;  ///< index within the session so far
    UnexpectedMessage unexpected;
  };

  /// Consumes one record (routed by record.container_id; empty ids are
  /// dropped). Returns the unexpected-message event if the record matches
  /// no Intel Key. May evict the least-recently-active session when a
  /// Limits cap is hit — drain those reports with take_evicted().
  /// `ingress_unix_ms` is the wall-clock arrival time of the record's
  /// source (spool-file mtime in serve): the session keeps the earliest
  /// nonzero stamp and hands it back through take_closed_ingress() when
  /// the session closes, which is how end-to-end latency (arrival ->
  /// report write) is measured without the detector ever reading a clock.
  std::optional<Event> consume(const logparse::LogRecord& record,
                               std::uint64_t ingress_unix_ms = 0);

  /// Ends a session and runs the full structural check. Returns nullopt if
  /// the container is unknown.
  std::optional<AnomalyReport> close_session(const std::string& container_id);

  /// Closes every session whose last record is older than `idle_ms`
  /// relative to `now_ms`, returning their reports. Also runs the
  /// watchdog when Limits.max_session_age_ms is set (those reports are
  /// flagged degraded and included).
  std::vector<AnomalyReport> close_idle(std::uint64_t now_ms, std::uint64_t idle_ms);

  /// Force-closes sessions open longer than Limits.max_session_age_ms of
  /// stream time (no-op when the watchdog is disabled). Their structural
  /// checks run in degraded mode.
  std::vector<AnomalyReport> watchdog(std::uint64_t now_ms);

  /// Closes everything still open.
  std::vector<AnomalyReport> close_all();

  /// Drains reports produced by cap-triggered evictions since the last
  /// call (in eviction order, each flagged degraded).
  std::vector<AnomalyReport> take_evicted();

  /// Drains the ingress stamps (container id -> earliest ingress_unix_ms)
  /// of every session closed since the last call, by any path (explicit,
  /// idle, watchdog, eviction, close_all). Sessions consumed without a
  /// stamp do not appear.
  std::map<std::string, std::uint64_t> take_closed_ingress();

  std::vector<std::string> open_sessions() const;

  /// Live-session introspection for status snapshots (`intellog top`).
  struct OpenSessionInfo {
    std::string container_id;
    std::size_t buffered_records = 0;
    std::uint64_t first_seen_ms = 0;  ///< stream time of the first record
    std::uint64_t last_seen_ms = 0;   ///< stream time of the latest record
  };
  /// All open sessions, container-id ordered.
  std::vector<OpenSessionInfo> open_session_info() const;

  std::size_t buffered_records(const std::string& container_id) const;
  std::size_t total_buffered_records() const { return total_records_; }
  std::size_t pending_evicted() const { return evicted_.size(); }
  const Limits& limits() const { return limits_; }

  // --- checkpoint / restore ------------------------------------------------
  /// Current checkpoint format version; restore() rejects any other.
  static constexpr int kCheckpointVersion = 1;

  /// Snapshots all open-session state (records, recency, watchdog clocks)
  /// as a versioned JSON document stamped with a CRC32 checksum.
  /// Pending evicted reports are NOT captured — drain take_evicted()
  /// before checkpointing.
  common::Json checkpoint() const;

  /// Writes checkpoint() to `path` durably: the document goes to
  /// `path.tmp` first and is atomically renamed over `path`, so a crash
  /// mid-write never leaves a torn checkpoint behind.
  void checkpoint_file(const std::string& path) const;

  /// Rebuilds a detector from a checkpoint() document. Throws a single
  /// clear std::runtime_error on version mismatch, checksum mismatch, or
  /// a malformed document. The resumed detector's subsequent reports are
  /// byte-identical to an uninterrupted run over the same stream.
  static OnlineDetector restore(const IntelLog& model, const common::Json& doc,
                                std::size_t jobs = 1, Limits limits = {});

  /// restore() from a file written by checkpoint_file().
  static OnlineDetector restore_file(const IntelLog& model, const std::string& path,
                                     std::size_t jobs = 1, Limits limits = {});

 private:
  struct SessionState {
    logparse::Session session;
    std::uint64_t first_seen_ms = 0;  ///< watchdog clock (stream time)
    std::uint64_t last_seen_ms = 0;
    std::uint64_t lru_seq = 0;        ///< arrival recency (monotone counter)
    std::uint64_t ingress_unix_ms = 0;  ///< earliest arrival stamp (0: none)
  };

  /// Registry handles (nullptr each when metrics were disabled at
  /// construction). Counters: `intellog_online_records_total`,
  /// `intellog_online_unexpected_total`,
  /// `intellog_online_sessions_closed_total{reason=
  ///     "explicit"|"idle"|"evicted"|"watchdog"}`,
  /// `intellog_online_degraded_reports_total`; gauges
  /// `intellog_online_open_sessions`, `intellog_online_buffered_records`;
  /// histogram `intellog_online_consume_us`.
  struct Telemetry {
    obs::Counter* records = nullptr;
    obs::Counter* unexpected = nullptr;
    obs::Counter* closed_explicit = nullptr;
    obs::Counter* closed_idle = nullptr;
    obs::Counter* closed_evicted = nullptr;
    obs::Counter* closed_watchdog = nullptr;
    obs::Counter* degraded = nullptr;
    obs::Gauge* open_sessions = nullptr;
    obs::Gauge* buffered_records = nullptr;
    obs::Histogram* consume_us = nullptr;
  };

  void update_gauges();
  void touch(const std::string& container_id, SessionState& state);
  /// Removes a session's bookkeeping (lru entry, record count) and returns
  /// its Session. The open_ entry itself is erased by the caller's iterator.
  logparse::Session detach(std::map<std::string, SessionState>::iterator it);
  /// Evicts LRU sessions until the caps hold, pushing degraded reports
  /// into evicted_.
  void enforce_caps();

  const IntelLog& model_;
  std::size_t jobs_;
  Limits limits_;
  std::map<std::string, SessionState> open_;
  std::map<std::uint64_t, std::string> lru_;  ///< lru_seq -> container id
  std::uint64_t seq_ = 0;
  std::size_t total_records_ = 0;
  std::vector<AnomalyReport> evicted_;
  std::map<std::string, std::uint64_t> closed_ingress_;  ///< see take_closed_ingress
  Telemetry tel_;
};

}  // namespace intellog::core
