// Streaming anomaly detection.
//
// §4.2: "IntelLog instantiates a HW-graph instance when a system starts a
// new session ... While consuming incoming logs, IntelLog aims to build
// the graph instance to meet the structure of the corresponding HW-graph."
// OnlineDetector is that consumption loop: feed records as they arrive
// (any interleaving of containers); unexpected messages surface
// immediately, structural checks (missing groups, incomplete subroutines,
// order violations) run when a session closes — explicitly, or after an
// idle timeout.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/intellog.hpp"
#include "obs/metrics.hpp"

namespace intellog::core {

class OnlineDetector {
 public:
  /// `model` must outlive the detector and be trained. Streaming telemetry
  /// handles are captured here: install the obs registry (and keep it
  /// alive past the detector) *before* constructing to collect
  /// per-record latency, open-session and unexpected-rate metrics.
  /// `jobs` controls session draining: close_idle()/close_all() run their
  /// structural checks through IntelLog::detect_batch with this many
  /// workers (1 = serial, 0 = the model's configured thread count).
  /// Reports are identical either way; only wall-clock changes.
  explicit OnlineDetector(const IntelLog& model, std::size_t jobs = 1);

  /// An immediately-reportable event from one consumed record.
  struct Event {
    std::string container_id;
    std::size_t record_index = 0;  ///< index within the session so far
    UnexpectedMessage unexpected;
  };

  /// Consumes one record (routed by record.container_id; empty ids are
  /// dropped). Returns the unexpected-message event if the record matches
  /// no Intel Key.
  std::optional<Event> consume(const logparse::LogRecord& record);

  /// Ends a session and runs the full structural check. Returns nullopt if
  /// the container is unknown.
  std::optional<AnomalyReport> close_session(const std::string& container_id);

  /// Closes every session whose last record is older than `idle_ms`
  /// relative to `now_ms`, returning their reports.
  std::vector<AnomalyReport> close_idle(std::uint64_t now_ms, std::uint64_t idle_ms);

  /// Closes everything still open.
  std::vector<AnomalyReport> close_all();

  std::vector<std::string> open_sessions() const;
  std::size_t buffered_records(const std::string& container_id) const;

 private:
  struct SessionState {
    logparse::Session session;
    std::uint64_t last_seen_ms = 0;
  };

  /// Registry handles (nullptr each when metrics were disabled at
  /// construction). Counters: `intellog_online_records_total`,
  /// `intellog_online_unexpected_total`,
  /// `intellog_online_sessions_closed_total{reason="explicit"|"idle"}`;
  /// gauge `intellog_online_open_sessions`; histogram
  /// `intellog_online_consume_us`.
  struct Telemetry {
    obs::Counter* records = nullptr;
    obs::Counter* unexpected = nullptr;
    obs::Counter* closed_explicit = nullptr;
    obs::Counter* closed_idle = nullptr;
    obs::Gauge* open_sessions = nullptr;
    obs::Histogram* consume_us = nullptr;
  };

  const IntelLog& model_;
  std::size_t jobs_;
  std::map<std::string, SessionState> open_;
  Telemetry tel_;
};

}  // namespace intellog::core
