// Entity grouping by nomenclature (§4.1, Algorithm 1).
//
// Correlated entities share a common sub-phrase in their names ("block",
// "block manager", "block manager endpoint"), but entities that only share
// their *last* words are usually unrelated ("block manager" vs "security
// manager" — "manager" is too generic). Algorithm 1 grows groups by the
// longest common phrase, rejecting suffix-only overlaps, and keeps a
// reverse index from entity to groups (an entity can belong to several).
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace intellog::core {

struct EntityGroups {
  /// Group name (the shared common phrase) -> entities in the group.
  std::map<std::string, std::set<std::string>> groups;
  /// Reverse index: entity -> the groups it belongs to.
  std::map<std::string, std::set<std::string>> reverse;

  /// Groups an entity belongs to (empty set when unknown).
  const std::set<std::string>& groups_of(const std::string& entity) const;
};

/// The LongestCommonPhrase function of Algorithm 1 (word-level). Returns an
/// empty vector when the phrases only share their last words or share
/// nothing.
std::vector<std::string> longest_common_phrase(const std::vector<std::string>& a,
                                               const std::vector<std::string>& b);

/// Algorithm 1. `entities` are space-joined lemmatized phrases.
EntityGroups group_entities(const std::vector<std::string>& entities);

}  // namespace intellog::core
