// Intel Message store with query operators (§3.3, §6.4).
//
// "An Intel Message can be considered as a collection of key-value pairs.
// It naturally fits in the storage structure of time series databases."
// The store supports the diagnosis workflow of the case studies: filter by
// entity group / key, GroupBy on identifiers, GroupBy on locality — e.g.
// case 1 groups the unexpected fetcher messages by identifier (11 fetchers)
// and then by locality (a single host).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/intel_key.hpp"

namespace intellog::core {

class MessageStore {
 public:
  void add(IntelMessage message) { messages_.push_back(std::move(message)); }
  void add_all(std::vector<IntelMessage> messages);

  std::size_t size() const { return messages_.size(); }
  const std::vector<IntelMessage>& all() const { return messages_; }

  using Predicate = std::function<bool(const IntelMessage&)>;
  /// Messages matching a predicate.
  std::vector<const IntelMessage*> query(const Predicate& pred) const;
  /// Messages of one Intel Key.
  std::vector<const IntelMessage*> by_key(int key_id) const;

  /// GroupBy identifier value, optionally restricted to one identifier
  /// type. Group key is "TYPE:value".
  std::map<std::string, std::vector<const IntelMessage*>> group_by_identifier(
      const std::string& type = {}) const;

  /// GroupBy locality (each locality value of a message counts once).
  std::map<std::string, std::vector<const IntelMessage*>> group_by_locality() const;

  /// Whole store as a JSON array (time-series-database-ready export).
  common::Json to_json() const;

 private:
  std::vector<IntelMessage> messages_;
};

}  // namespace intellog::core
