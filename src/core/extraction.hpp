// NLP-assisted information extraction (§3): log key + sample message ->
// Intel Key; concrete message + Intel Key -> Intel Message.
//
// Pipeline (Fig. 3 / Fig. 4):
//  1. A log key contains '*' fields, so the POS tagger runs on a *sample
//     log message* and the tags are transferred back (the key's variable
//     positions are recovered by aligning the key's constant tokens to the
//     sample with an LCS).
//  2. Entities come from the Table-2 POS patterns over nouns/adjectives
//     (longest match first) plus the camel-case filter; phrases are
//     lemmatized to singular. Unit words ("bytes", "ms") are omitted.
//  3. Variable fields are classified by the four §3.1 heuristics:
//     verb-tagged and locality fields are filtered first, then
//     number+unit -> value, letter+digit mix -> identifier, bare number ->
//     identifier iff the preceding word is a noun.
//  4. Operations come from the shallow UD parse: {subj-entity, predicate,
//     obj-entity} via the Table-3 relations.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/intel_key.hpp"
#include "core/locality.hpp"
#include "logparse/spell.hpp"
#include "nlp/dependency_parser.hpp"
#include "nlp/lemmatizer.hpp"
#include "nlp/pos_tagger.hpp"

namespace intellog::core {

struct DetectScratch;

class InfoExtractor {
 public:
  InfoExtractor();

  // The lemmatizer points into this object's own lexicon, so moves must
  // re-seat that pointer.
  InfoExtractor(InfoExtractor&& other) noexcept
      : tagger_(std::move(other.tagger_)),
        lemmatizer_(&tagger_.lexicon()),
        parser_(std::move(other.parser_)),
        locality_(std::move(other.locality_)) {}
  InfoExtractor& operator=(InfoExtractor&& other) noexcept {
    tagger_ = std::move(other.tagger_);
    lemmatizer_ = nlp::Lemmatizer(&tagger_.lexicon());
    parser_ = std::move(other.parser_);
    locality_ = std::move(other.locality_);
    return *this;
  }
  InfoExtractor(const InfoExtractor&) = delete;
  InfoExtractor& operator=(const InfoExtractor&) = delete;

  /// Builds the Intel Key for a Spell log key using a sample message that
  /// matched the key.
  IntelKey extract(const logparse::LogKey& key, std::string_view sample_message) const;

  /// §4.2: extracts directly from an unexpected message (no log key).
  IntelKey extract_from_message(std::string_view message) const;

  /// Fills an Intel Message from a concrete record matching `key`.
  /// Delegates to the scratch overload via a thread-local DetectScratch.
  IntelMessage instantiate(const IntelKey& ikey, const logparse::LogKey& key,
                           const logparse::LogRecord& record) const;

  /// Allocation-lean instantiate for the detection hot path: tokenization,
  /// LCS alignment and field assembly all run in `scratch` (views + arena)
  /// instead of per-call heap vectors. Output is byte-identical to the
  /// 3-argument overload; only the escaping IntelMessage strings allocate.
  IntelMessage instantiate(const IntelKey& ikey, const logparse::LogKey& key,
                           const logparse::LogRecord& record, DetectScratch& scratch) const;

  /// Identifier extraction only, for detection's group-message loop: the
  /// loop keeps IntelMessage::identifiers and throws the rest away, so
  /// this skips the container-id copy and the value/locality/other string
  /// assembly entirely. `out` receives exactly what instantiate() would
  /// have produced in IntelMessage::identifiers, in the same order.
  void instantiate_identifiers(const IntelKey& ikey, const logparse::LogKey& key,
                               const logparse::LogRecord& record, DetectScratch& scratch,
                               std::vector<IdentifierValue>& out) const;

  /// Infers the identifier type of a concrete identifier value
  /// ("attempt_01" -> "ATTEMPT", "3" after "TID" -> "TID").
  static std::string infer_id_type(std::string_view value, std::string_view prev_word);

  /// True for unit words that follow values ("bytes", "ms", "MB", ...).
  static bool is_unit_word(std::string_view lower_word);

  const nlp::PosTagger& tagger() const { return tagger_; }
  LocalityMatcher& locality() { return locality_; }

 private:
  struct Analysis;  // internal working state

  Analysis analyze(const std::vector<std::string>& key_tokens,
                   std::string_view sample_message) const;

  nlp::PosTagger tagger_;
  nlp::Lemmatizer lemmatizer_;
  nlp::DependencyParser parser_;
  LocalityMatcher locality_;
};

/// Splits a message into whitespace tokens and returns, for each '*' gap of
/// the key (in order), the concatenated message tokens filling that gap.
/// Shared by extraction and instantiation.
std::vector<std::string> align_fields(const std::vector<std::string>& key_tokens,
                                      const std::vector<std::string>& message_ws_tokens,
                                      std::vector<int>* ws_field_index = nullptr);

/// Zero-copy align_fields: message tokens arrive as views (split_ws_views)
/// and the per-field texts land in `scratch.fields` as views into
/// `scratch.arena` — no per-call vectors, no field strings. Replicates
/// align_fields (same LCS tie-breaking, same star-group fill) byte for
/// byte; `scratch.fields` stays valid until the arena is reset.
void align_fields_views(const std::vector<std::string>& key_tokens,
                        const std::vector<std::string_view>& message_ws_tokens,
                        DetectScratch& scratch);

}  // namespace intellog::core
