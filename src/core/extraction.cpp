#include "core/extraction.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <set>

#include "common/strings.hpp"
#include "core/detect_scratch.hpp"
#include "obs/profile/profile.hpp"
#include "nlp/camel_case.hpp"
#include "nlp/tokenizer.hpp"

namespace intellog::core {

namespace {

const std::set<std::string>& unit_words() {
  static const std::set<std::string> kUnits = {
      "b",       "kb",     "mb",      "gb",      "tb",     "kib",     "mib",    "gib",
      "byte",    "bytes",  "ms",      "msec",    "msecs",  "s",       "sec",    "secs",
      "second",  "seconds", "minute", "minutes", "hour",   "hours",   "percent", "%",
      "vcores",  "vcore",  "times",   "mhz"};
  return kUnits;
}

bool noun_tag(nlp::PosTag t) { return nlp::is_noun(t); }
bool adj_tag(nlp::PosTag t) { return t == nlp::PosTag::JJ; }

// Strips sentence punctuation stuck to a field ("3)." -> "3") while keeping
// punctuation that belongs to the token ("BlockManagerId(1)" intact).
std::string clean_field_text(std::string text) {
  while (!text.empty()) {
    const char c = text.back();
    if (c == '.' || c == ',' || c == ';') {
      text.pop_back();
    } else if (c == ')' && text.find('(') == std::string::npos) {
      text.pop_back();
    } else if (c == ']' && text.find('[') == std::string::npos) {
      text.pop_back();
    } else {
      break;
    }
  }
  while (!text.empty()) {
    const char c = text.front();
    if ((c == '(' && text.find(')') == std::string::npos) ||
        (c == '[' && text.find(']') == std::string::npos)) {
      text.erase(text.begin());
    } else {
      break;
    }
  }
  return text;
}

// clean_field_text without the copy: the same trims expressed as
// remove_suffix/remove_prefix on a view. Must stay behavior-identical —
// instantiate()'s two code paths feed the same bytes through either one.
std::string_view clean_field_view(std::string_view text) {
  while (!text.empty()) {
    const char c = text.back();
    if (c == '.' || c == ',' || c == ';') {
      text.remove_suffix(1);
    } else if (c == ')' && text.find('(') == std::string_view::npos) {
      text.remove_suffix(1);
    } else if (c == ']' && text.find('[') == std::string_view::npos) {
      text.remove_suffix(1);
    } else {
      break;
    }
  }
  while (!text.empty()) {
    const char c = text.front();
    if ((c == '(' && text.find(')') == std::string_view::npos) ||
        (c == '[' && text.find(']') == std::string_view::npos)) {
      text.remove_prefix(1);
    } else {
      break;
    }
  }
  return text;
}

}  // namespace

bool InfoExtractor::is_unit_word(std::string_view lower_word) {
  return unit_words().count(std::string(lower_word)) > 0;
}

std::string InfoExtractor::infer_id_type(std::string_view value, std::string_view prev_word) {
  const auto upper = [](std::string_view s) {
    std::string out;
    for (char c : s) {
      if (std::isalpha(static_cast<unsigned char>(c)))
        out += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      else
        break;
    }
    return out;
  };
  const std::size_t underscore = value.find('_');
  if (underscore != std::string_view::npos && underscore > 0) {
    const std::string t = upper(value.substr(0, underscore));
    if (!t.empty()) return t;
  }
  if (!prev_word.empty() && common::has_letter(prev_word)) {
    const std::string t = upper(prev_word);
    if (!t.empty()) return t;
  }
  const std::string t = upper(value);
  return t.empty() ? std::string("ID") : t;
}

std::vector<std::string> align_fields(const std::vector<std::string>& key_tokens,
                                      const std::vector<std::string>& message_ws_tokens,
                                      std::vector<int>* ws_field_index) {
  // Star groups: runs of consecutive '*' in the key, each star one field.
  std::vector<std::string> consts;
  struct StarGroup {
    std::size_t first_field;
    std::size_t stars;
  };
  std::vector<StarGroup> groups;
  std::size_t star_count = 0;
  for (std::size_t i = 0; i < key_tokens.size(); ++i) {
    if (key_tokens[i] == "*") {
      if (i > 0 && key_tokens[i - 1] == "*") {
        groups.back().stars++;
      } else {
        groups.push_back({star_count, 1});
      }
      ++star_count;
    } else {
      consts.push_back(key_tokens[i]);
    }
  }
  // Matched message positions via the LCS of constants and message.
  const std::vector<std::string> common_seq = common::lcs(consts, message_ws_tokens);
  std::vector<bool> matched(message_ws_tokens.size(), false);
  std::size_t mi = 0;
  for (const auto& w : common_seq) {
    while (mi < message_ws_tokens.size() && message_ws_tokens[mi] != w) ++mi;
    if (mi < message_ws_tokens.size()) matched[mi++] = true;
  }
  // Unmatched runs, in order, map onto star groups in order. Within a
  // group of k stars, the first k-1 fields take one token each and the last
  // field takes the remainder.
  std::vector<std::string> fields(star_count);
  if (ws_field_index) ws_field_index->assign(message_ws_tokens.size(), -1);
  std::size_t group = 0, offset_in_group = 0;
  for (std::size_t i = 0; i < message_ws_tokens.size() && star_count > 0; ++i) {
    if (matched[i]) {
      if (i > 0 && !matched[i - 1] && group < groups.size()) {
        ++group;  // a closed run advances to the next star group
        offset_in_group = 0;
      }
      continue;
    }
    const StarGroup& g = groups[std::min(group, groups.size() - 1)];
    const std::size_t field = g.first_field + std::min(offset_in_group, g.stars - 1);
    if (offset_in_group + 1 < g.stars) ++offset_in_group;
    std::string& slot = fields[field];
    if (!slot.empty()) slot += ' ';
    slot += message_ws_tokens[i];
    if (ws_field_index) (*ws_field_index)[i] = static_cast<int>(field);
  }
  return fields;
}

void align_fields_views(const std::vector<std::string>& key_tokens,
                        const std::vector<std::string_view>& message_ws_tokens,
                        DetectScratch& s) {
  // Star groups and constants, exactly as align_fields builds them.
  s.consts.clear();
  s.star_groups.clear();
  std::size_t star_count = 0;
  for (std::size_t i = 0; i < key_tokens.size(); ++i) {
    if (key_tokens[i] == "*") {
      if (i > 0 && key_tokens[i - 1] == "*") {
        s.star_groups.back().second++;
      } else {
        s.star_groups.push_back({star_count, 1});
      }
      ++star_count;
    } else {
      s.consts.push_back(key_tokens[i]);
    }
  }

  // LCS of constants and message, flat DP table in scratch. The recurrence
  // and backtrace tie-breaking mirror common::lcs exactly (prefer --i on
  // ties) so the matched positions — and hence the field split — are
  // identical to the string path.
  const std::size_t n = s.consts.size(), m = message_ws_tokens.size();
  s.dp.assign((n + 1) * (m + 1), 0);
  const auto dp = [&](std::size_t i, std::size_t j) -> std::size_t& {
    return s.dp[i * (m + 1) + j];
  };
  for (std::size_t i = 1; i <= n; ++i)
    for (std::size_t j = 1; j <= m; ++j)
      dp(i, j) = (s.consts[i - 1] == message_ws_tokens[j - 1])
                     ? dp(i - 1, j - 1) + 1
                     : std::max(dp(i - 1, j), dp(i, j - 1));
  s.lcs_seq.clear();
  {
    std::size_t i = n, j = m;
    while (i > 0 && j > 0) {
      if (s.consts[i - 1] == message_ws_tokens[j - 1]) {
        s.lcs_seq.push_back(message_ws_tokens[j - 1]);
        --i;
        --j;
      } else if (dp(i - 1, j) >= dp(i, j - 1)) {
        --i;
      } else {
        --j;
      }
    }
    std::reverse(s.lcs_seq.begin(), s.lcs_seq.end());
  }

  s.matched.assign(m, 0);
  std::size_t mi = 0;
  for (const auto& w : s.lcs_seq) {
    while (mi < m && message_ws_tokens[mi] != w) ++mi;
    if (mi < m) s.matched[mi++] = 1;
  }

  s.fields.assign(star_count, std::string_view{});
  if (star_count == 0) return;

  // Same walk as align_fields, run twice: pass 1 sums byte lengths per
  // field, pass 2 copies tokens (space-joined) into one arena buffer per
  // field. Two passes cost one extra walk but zero reallocation.
  const auto walk = [&](auto&& fn) {
    std::size_t group = 0, offset_in_group = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (s.matched[i]) {
        if (i > 0 && !s.matched[i - 1] && group < s.star_groups.size()) {
          ++group;
          offset_in_group = 0;
        }
        continue;
      }
      const auto& g = s.star_groups[std::min(group, s.star_groups.size() - 1)];
      const std::size_t field = g.first + std::min(offset_in_group, g.second - 1);
      if (offset_in_group + 1 < g.second) ++offset_in_group;
      fn(field, message_ws_tokens[i]);
    }
  };

  s.field_len.assign(star_count, 0);
  walk([&](std::size_t field, std::string_view tok) {
    s.field_len[field] += (s.field_len[field] ? 1 : 0) + tok.size();
  });

  s.field_ptr.assign(star_count, nullptr);
  for (std::size_t f = 0; f < star_count; ++f) {
    if (s.field_len[f] == 0) continue;
    char* base = static_cast<char*>(s.arena.allocate(s.field_len[f], 1));
    s.fields[f] = std::string_view(base, s.field_len[f]);
    s.field_ptr[f] = base;
  }
  walk([&](std::size_t field, std::string_view tok) {
    char*& p = s.field_ptr[field];
    if (p != s.fields[field].data()) *p++ = ' ';
    std::memcpy(p, tok.data(), tok.size());
    p += tok.size();
  });
}

struct InfoExtractor::Analysis {
  std::vector<nlp::Token> tokens;  ///< tagged sub-tokens of the sample
  std::vector<int> field_of;       ///< per sub-token: field index or -1
  std::vector<std::string> field_texts;
  std::vector<FieldInfo> fields;
  struct EntitySpan {
    std::string phrase;       ///< lemmatized, space-joined
    std::size_t begin, end;   ///< covered sub-token range [begin, end]
  };
  std::vector<EntitySpan> entities;
  std::vector<nlp::ClauseParse> clauses;
};

InfoExtractor::InfoExtractor() : lemmatizer_(&tagger_.lexicon()) {}

InfoExtractor::Analysis InfoExtractor::analyze(const std::vector<std::string>& key_tokens,
                                               std::string_view sample_message) const {
  Analysis a;
  const std::vector<std::string> ws = common::split_ws(sample_message);
  std::vector<int> ws_field;
  a.field_texts = align_fields(key_tokens, ws, &ws_field);

  // Sub-tokenize each whitespace token; sub-tokens inherit the field index.
  std::vector<std::string> sub_texts;
  for (std::size_t i = 0; i < ws.size(); ++i) {
    for (auto& piece : nlp::tokenize(ws[i])) {
      sub_texts.push_back(std::move(piece));
      a.field_of.push_back(ws_field[i]);
    }
  }
  a.tokens = tagger_.tag(sub_texts);

  // --- classify the variable fields (§3.1 heuristics, in order) ----------
  const std::size_t nfields = a.field_texts.size();
  a.fields.assign(nfields, FieldInfo{});
  // Sub-token ranges per field.
  std::vector<std::vector<std::size_t>> field_tokens(nfields);
  for (std::size_t i = 0; i < a.tokens.size(); ++i) {
    if (a.field_of[i] >= 0) field_tokens[static_cast<std::size_t>(a.field_of[i])].push_back(i);
  }
  const auto prev_letter_word = [&](std::size_t i) -> const nlp::Token* {
    for (std::ptrdiff_t j = static_cast<std::ptrdiff_t>(i) - 1; j >= 0; --j) {
      const auto idx = static_cast<std::size_t>(j);
      if (common::has_letter(a.tokens[idx].text)) return &a.tokens[idx];
    }
    return nullptr;
  };
  for (std::size_t f = 0; f < nfields; ++f) {
    FieldInfo& info = a.fields[f];
    const auto& toks = field_tokens[f];
    if (toks.empty()) continue;
    // Heuristic 1a: locality patterns recognized earlier win.
    bool loc = false, verb = false;
    for (const std::size_t i : toks) {
      if (locality_.is_locality(a.tokens[i].text)) loc = true;
      if (nlp::is_verb(a.tokens[i].tag)) verb = true;
    }
    if (loc) {
      info.category = FieldCategory::Locality;
      continue;
    }
    // Heuristic 1b: verb-tagged fields are neither identifier nor value.
    if (verb) {
      info.category = FieldCategory::Other;
      continue;
    }
    // Heuristic 2: a field followed by a unit is a value. The unit may also
    // be fused into the field itself ("4ms" tokenizes to [4, ms] inside one
    // field).
    const std::size_t last = toks.back();
    if (last + 1 < a.tokens.size() && a.field_of[last + 1] < 0 &&
        is_unit_word(a.tokens[last + 1].lower)) {
      info.category = FieldCategory::Value;
      info.unit = a.tokens[last + 1].lower;
      continue;
    }
    if (toks.size() >= 2 && is_unit_word(a.tokens[last].lower) &&
        a.tokens[last - 1].tag == nlp::PosTag::CD) {
      info.category = FieldCategory::Value;
      info.unit = a.tokens[last].lower;
      continue;
    }
    // Heuristic 3: mixed letters and numbers -> identifier.
    const std::string joined = clean_field_text(a.field_texts[f]);
    if (common::has_letter(joined) && common::has_digit(joined)) {
      info.category = FieldCategory::Identifier;
      const nlp::Token* prev = prev_letter_word(toks.front());
      info.id_type = infer_id_type(joined, prev ? prev->lower : std::string_view{});
      continue;
    }
    // Heuristic 4: all-number field -> identifier iff previous word is a noun.
    if (common::is_number(joined)) {
      const nlp::Token* prev = prev_letter_word(toks.front());
      if (prev && noun_tag(prev->tag) && !is_unit_word(prev->lower)) {
        info.category = FieldCategory::Identifier;
        info.id_type = infer_id_type(joined, prev->lower);
      } else {
        info.category = FieldCategory::Value;
      }
      continue;
    }
    info.category = FieldCategory::Other;
  }

  // --- entity stream + Table-2 pattern matching ---------------------------
  struct Item {
    std::string word;  ///< lower-cased word (camel part)
    nlp::PosTag tag;
    std::size_t src;   ///< sub-token index
  };
  std::vector<std::vector<Item>> runs(1);
  const auto break_run = [&] {
    if (!runs.back().empty()) runs.emplace_back();
  };
  for (std::size_t i = 0; i < a.tokens.size(); ++i) {
    const nlp::Token& tok = a.tokens[i];
    const int f = a.field_of[i];
    if (f >= 0) {
      const FieldCategory cat = a.fields[static_cast<std::size_t>(f)].category;
      if (cat != FieldCategory::Other) {
        break_run();
        continue;
      }
      // Variable fields only contribute entities when they look like class
      // names (camel case with a real case boundary); free words, user
      // names and dotted config keys ("mapred.job.id") do not.
      const bool has_upper = std::any_of(tok.text.begin(), tok.text.end(),
                                         [](unsigned char ch) { return std::isupper(ch); });
      const bool has_lower = std::any_of(tok.text.begin(), tok.text.end(),
                                         [](unsigned char ch) { return std::islower(ch); });
      if (!has_upper || !has_lower || !nlp::is_camel_case(tok.text) ||
          tok.text.find('.') != std::string::npos) {
        break_run();
        continue;
      }
    }
    if (tok.tag == nlp::PosTag::PUNCT || tok.tag == nlp::PosTag::SYM ||
        tok.tag == nlp::PosTag::CD) {
      break_run();
      continue;
    }
    if (tok.tag == nlp::PosTag::DT) continue;  // determiners are transparent
    if (nlp::is_verb(tok.tag) || tok.tag == nlp::PosTag::RB || tok.tag == nlp::PosTag::TO ||
        tok.tag == nlp::PosTag::MD || tok.tag == nlp::PosTag::CC ||
        tok.tag == nlp::PosTag::PRP || tok.tag == nlp::PosTag::PRPS) {
      break_run();
      continue;
    }
    if (nlp::is_atomic_token(tok.text)) {
      break_run();
      continue;
    }
    // Dotted tokens in constant text are config keys, class names or FQDNs
    // ("mapred.job.id", "org.apache.hadoop...Shuffle"), not entities.
    if (tok.text.find('.') != std::string::npos) {
      break_run();
      continue;
    }
    if (is_unit_word(tok.lower)) {
      break_run();
      continue;
    }
    if (tok.tag == nlp::PosTag::IN) {
      // Only "of" participates in the NN IN NN pattern (Justeson-Katz);
      // other prepositions separate noun phrases.
      if (tok.lower == "of") {
        runs.back().push_back({tok.lower, nlp::PosTag::IN, i});
      } else {
        break_run();
      }
      continue;
    }
    // Camel-case filter: split class names into word phrases (§3.1).
    const auto parts = nlp::split_camel_case(tok.text);
    if (parts.size() >= 2) {
      for (const auto& p : parts) {
        if (!common::has_letter(p)) continue;
        nlp::PosTag t = nlp::PosTag::NN;
        if (const auto entry = tagger_.lexicon().lookup(p)) {
          t = nlp::is_noun(entry->primary) || adj_tag(entry->primary) ? entry->primary
                                                                      : nlp::PosTag::NN;
        }
        runs.back().push_back({p, t, i});
      }
      continue;
    }
    if (noun_tag(tok.tag) || adj_tag(tok.tag)) {
      runs.back().push_back({tok.lower, tok.tag, i});
    } else {
      break_run();
    }
  }

  // Longest-match-first scan of the Table-2 patterns.
  using Pat = std::vector<char>;  // 'N' noun, 'J' adjective, 'I' preposition
  static const std::vector<Pat> kPatterns3 = {
      {'N', 'N', 'N'}, {'J', 'J', 'N'}, {'J', 'N', 'N'}, {'N', 'J', 'N'}, {'N', 'I', 'N'}};
  static const std::vector<Pat> kPatterns2 = {{'J', 'N'}, {'N', 'N'}};
  const auto matches = [&](const Item& it, char c) {
    switch (c) {
      case 'N': return noun_tag(it.tag);
      case 'J': return adj_tag(it.tag);
      case 'I': return it.tag == nlp::PosTag::IN;
    }
    return false;
  };
  for (const auto& run : runs) {
    std::size_t i = 0;
    while (i < run.size()) {
      std::size_t len = 0;
      if (i + 3 <= run.size()) {
        for (const auto& p : kPatterns3) {
          if (matches(run[i], p[0]) && matches(run[i + 1], p[1]) && matches(run[i + 2], p[2])) {
            len = 3;
            break;
          }
        }
      }
      if (len == 0 && i + 2 <= run.size()) {
        for (const auto& p : kPatterns2) {
          if (matches(run[i], p[0]) && matches(run[i + 1], p[1])) {
            len = 2;
            break;
          }
        }
      }
      if (len == 0 && matches(run[i], 'N')) len = 1;
      if (len == 0) {
        ++i;
        continue;
      }
      std::vector<std::string> words;
      for (std::size_t k = 0; k < len; ++k) words.push_back(run[i + k].word);
      words = lemmatizer_.lemmatize_phrase(std::move(words));
      a.entities.push_back(
          {common::join(words, " "), run[i].src, run[i + len - 1].src});
      i += len;
    }
  }

  // --- operations via structure parsing ------------------------------------
  a.clauses = parser_.parse(a.tokens);
  return a;
}

IntelKey InfoExtractor::extract(const logparse::LogKey& key,
                                std::string_view sample_message) const {
  PROF_FRAME("extract.key");
  Analysis a = analyze(key.tokens, sample_message);

  IntelKey ik;
  ik.key_id = key.id;
  ik.key_text = key.to_string();
  ik.fields = a.fields;

  std::set<std::string> seen;
  for (const auto& span : a.entities) {
    if (seen.insert(span.phrase).second) ik.entities.push_back(span.phrase);
  }

  const auto entity_at = [&](std::ptrdiff_t tok) -> std::string {
    if (tok < 0) return {};
    const auto t = static_cast<std::size_t>(tok);
    for (const auto& span : a.entities) {
      if (span.begin <= t && t <= span.end) return span.phrase;
    }
    // Identifier/value/locality tokens are not entities; the entity is the
    // noun phrase naming them ("Registering BlockManager bm_1" -> the obj
    // is "block manager", not the id). Walk left within the noun phrase.
    if (a.field_of[t] >= 0 &&
        a.fields[static_cast<std::size_t>(a.field_of[t])].category != FieldCategory::Other) {
      for (std::ptrdiff_t j = tok - 1; j >= 0 && tok - j <= 3; --j) {
        const auto u = static_cast<std::size_t>(j);
        if (a.tokens[u].tag == nlp::PosTag::PUNCT || a.tokens[u].tag == nlp::PosTag::SYM)
          continue;
        for (const auto& span : a.entities) {
          if (span.begin <= u && u <= span.end) return span.phrase;
        }
        break;
      }
      return {};
    }
    // Plain word with no span: use the word itself, lemmatized.
    return lemmatizer_.lemma(a.tokens[t].lower);
  };
  const auto verb_lemma = [&](std::size_t tok) {
    return lemmatizer_.lemma(a.tokens[tok].lower);
  };

  for (const auto& clause : a.clauses) {
    if (clause.nominal_root || clause.root < 0) continue;
    const std::size_t root = static_cast<std::size_t>(clause.root);
    std::ptrdiff_t subj = clause.dependent_of(root, nlp::Relation::Nsubj);
    if (subj < 0) subj = clause.dependent_of(root, nlp::Relation::Nsubjpass);
    const std::string subj_phrase = entity_at(subj);

    // Predicates: the root plus every xcomp verb.
    std::vector<std::size_t> predicates{root};
    for (const auto& d : clause.deps) {
      if (d.rel == nlp::Relation::Xcomp && d.dependent != root &&
          nlp::is_verb(a.tokens[d.dependent].tag)) {
        predicates.push_back(d.dependent);
      }
    }
    for (const std::size_t pred : predicates) {
      Operation op;
      op.subj = subj_phrase;
      op.predicate = verb_lemma(pred);
      std::ptrdiff_t obj = clause.dependent_of(pred, nlp::Relation::Dobj);
      if (obj < 0) obj = clause.dependent_of(pred, nlp::Relation::Iobj);
      if (obj < 0) obj = clause.dependent_of(pred, nlp::Relation::Nmod);
      op.obj = entity_at(obj);
      if (std::find(ik.operations.begin(), ik.operations.end(), op) == ik.operations.end()) {
        ik.operations.push_back(std::move(op));
      }
    }
  }
  return ik;
}

IntelKey InfoExtractor::extract_from_message(std::string_view message) const {
  PROF_FRAME("extract.unexpected");
  // Build a pseudo log key by masking digit-bearing tokens, then reuse the
  // regular pipeline. Used for unexpected messages in detection (§4.2).
  logparse::LogKey key;
  key.id = -1;
  for (const auto& tok : common::split_ws(message)) {
    if (common::has_digit(tok)) {
      if (key.tokens.empty() || key.tokens.back() != "*") key.tokens.emplace_back("*");
    } else {
      key.tokens.push_back(tok);
    }
  }
  return extract(key, message);
}

IntelMessage InfoExtractor::instantiate(const IntelKey& ikey, const logparse::LogKey& key,
                                        const logparse::LogRecord& record) const {
  // Fallback for call sites without their own scratch (training stage 3b,
  // checkpoint replay): one scratch per thread, rewound per call — nothing
  // from it escapes instantiate.
  thread_local DetectScratch scratch;
  scratch.reset_session();
  return instantiate(ikey, key, record, scratch);
}

void InfoExtractor::instantiate_identifiers(const IntelKey& ikey, const logparse::LogKey& key,
                                            const logparse::LogRecord& record,
                                            DetectScratch& s,
                                            std::vector<IdentifierValue>& out) const {
  PROF_FRAME("extract.instantiate");
  out.clear();
  // A key without identifier fields can't produce output: skip the
  // tokenize/align work its caller would throw away.
  const auto is_id = [](const FieldInfo& fld) {
    return fld.category == FieldCategory::Identifier;
  };
  if (std::none_of(ikey.fields.begin(), ikey.fields.end(), is_id)) return;
  common::split_ws_views(record.content, s.ws);
  align_fields_views(key.tokens, s.ws, s);
  const std::size_t n = std::min(s.fields.size(), ikey.fields.size());
  for (std::size_t f = 0; f < n; ++f) {
    if (ikey.fields[f].category != FieldCategory::Identifier) continue;
    const std::string_view text = clean_field_view(s.fields[f]);
    if (text.empty()) continue;
    std::string type = ikey.fields[f].id_type;
    if (type.empty()) type = infer_id_type(text, {});
    out.push_back({std::move(type), std::string(text)});
  }
}

IntelMessage InfoExtractor::instantiate(const IntelKey& ikey, const logparse::LogKey& key,
                                        const logparse::LogRecord& record,
                                        DetectScratch& s) const {
  PROF_FRAME("extract.instantiate");
  IntelMessage msg;
  msg.key_id = ikey.key_id;
  msg.timestamp_ms = record.timestamp_ms;
  msg.container_id = record.container_id;

  common::split_ws_views(record.content, s.ws);
  align_fields_views(key.tokens, s.ws, s);
  const std::size_t n = std::min(s.fields.size(), ikey.fields.size());
  for (std::size_t f = 0; f < n; ++f) {
    const std::string_view text = clean_field_view(s.fields[f]);
    if (text.empty()) continue;
    switch (ikey.fields[f].category) {
      case FieldCategory::Identifier: {
        std::string type = ikey.fields[f].id_type;
        if (type.empty()) type = infer_id_type(text, {});
        msg.identifiers.push_back({std::move(type), std::string(text)});
        break;
      }
      case FieldCategory::Value:
        msg.values.emplace_back(std::string(text), ikey.fields[f].unit);
        break;
      case FieldCategory::Locality:
        msg.localities.emplace_back(text);
        break;
      default:
        msg.others.emplace_back(text);
    }
  }
  return msg;
}

}  // namespace intellog::core
