#include "core/explain.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "obs/profile/profile.hpp"

namespace intellog::core {

namespace {

/// Stored bytes per evidence line (stack traces folded into a record can
/// run to kilobytes; the provenance points back at the full text).
constexpr std::size_t kMaxEvidenceLineBytes = 512;

std::string join_keys(const std::vector<int>& keys, std::string_view sep = " -> ") {
  std::string out;
  for (const int k : keys) {
    if (!out.empty()) out += sep;
    out += std::to_string(k);
  }
  return out;
}

std::string signature_text(const std::set<std::string>& signature) {
  if (signature.empty()) return "NONE";
  std::string out = "{";
  for (const auto& s : signature) {
    if (out.size() > 1) out += ",";
    out += s;
  }
  out += "}";
  return out;
}

std::vector<int> ints_from_json(const common::Json& j) {
  std::vector<int> out;
  if (!j.is_array()) return out;
  for (const auto& v : j.as_array()) {
    if (v.is_number()) out.push_back(static_cast<int>(v.as_int()));
  }
  return out;
}

GroupIssue::Kind kind_from_string(std::string_view s) {
  if (s == "missing-group") return GroupIssue::Kind::MissingGroup;
  if (s == "incomplete-subroutine") return GroupIssue::Kind::IncompleteSubroutine;
  if (s == "unknown-signature") return GroupIssue::Kind::UnknownSignature;
  if (s == "order-violation") return GroupIssue::Kind::OrderViolation;
  throw std::runtime_error("report_from_json: unknown issue kind: " + std::string(s));
}

}  // namespace

EvidenceLine make_evidence_line(const logparse::Session& session, std::size_t record_index,
                                int key_id) {
  EvidenceLine line;
  line.record_index = record_index;
  line.key_id = key_id;
  line.file = session.source_file.empty() ? session.container_id : session.source_file;
  if (record_index < session.records.size()) {
    const logparse::LogRecord& rec = session.records[record_index];
    line.timestamp_ms = rec.timestamp_ms;
    line.content = rec.content.substr(0, kMaxEvidenceLineBytes);
    line.line_no = rec.line_no;
    line.byte_offset = rec.byte_offset;
  }
  return line;
}

Evidence build_unexpected_evidence(const logparse::Session& session,
                                   std::size_t record_index) {
  PROF_FRAME("detect.evidence");
  Evidence ev;
  ev.deviation = "message matched no trained log key";
  ev.lines.push_back(make_evidence_line(session, record_index, -1));
  return ev;
}

std::vector<int> expected_key_sequence(const Subroutine& sub) {
  // Kahn's algorithm over the learned BEFORE relations, smallest ready key
  // first, so the sequence is deterministic and id-ordered where the
  // training data left the order unconstrained.
  std::map<int, std::size_t> indegree;
  std::map<int, std::vector<int>> out_edges;
  for (const int k : sub.keys) indegree[k] = 0;
  for (const auto& [a, b] : sub.before) {
    if (!indegree.count(a) || !indegree.count(b)) continue;
    out_edges[a].push_back(b);
    ++indegree[b];
  }
  std::set<int> ready;
  for (const auto& [k, deg] : indegree) {
    if (deg == 0) ready.insert(k);
  }
  std::vector<int> order;
  order.reserve(sub.keys.size());
  while (!ready.empty()) {
    const int k = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(k);
    for (const int next : out_edges[k]) {
      if (--indegree[next] == 0) ready.insert(next);
    }
  }
  // BEFORE relations are mined from observed sequences so cycles should not
  // exist; if deserialized state ever carries one, emit the leftovers in id
  // order rather than dropping keys from the expectation.
  if (order.size() < sub.keys.size()) {
    for (const int k : sub.keys) {
      if (std::find(order.begin(), order.end(), k) == order.end()) order.push_back(k);
    }
  }
  return order;
}

Evidence build_instance_evidence(const logparse::Session& session, const Subroutine* trained,
                                 const SubroutineInstance& instance,
                                 const SubroutineModel::InstanceCheck& check) {
  PROF_FRAME("detect.evidence");
  Evidence ev;
  std::set<int> observed_set;
  for (const GroupMessage& m : instance.messages) {
    ev.observed_keys.push_back(m.key_id);
    observed_set.insert(m.key_id);
  }
  if (trained != nullptr) {
    ev.expected_keys = expected_key_sequence(*trained);
    for (const int k : ev.expected_keys) {
      (observed_set.count(k) ? ev.matched_keys : ev.missing_keys).push_back(k);
    }
  }

  if (!check.known_signature) {
    ev.deviation = "identifier signature " + signature_text(instance.signature) +
                   " never observed in training";
  } else if (!check.missing_critical.empty()) {
    ev.deviation = "subroutine ended without critical key(s) " +
                   join_keys(check.missing_critical, ", ");
  } else if (!check.order_violations.empty()) {
    const auto& [a, b] = check.order_violations.front();
    ev.deviation = "key " + std::to_string(b) + " observed before key " + std::to_string(a) +
                   "; training always saw " + std::to_string(a) + " BEFORE " +
                   std::to_string(b);
  }

  // Raw-line selection: records implicated in an order violation are proof,
  // so they go first; remaining slots take the instance's boundary messages
  // (the span in which the expectation failed).
  std::set<int> violated;
  for (const auto& [a, b] : check.order_violations) {
    violated.insert(a);
    violated.insert(b);
  }
  std::vector<std::size_t> chosen;  // indices into instance.messages
  std::set<std::size_t> taken;
  const auto add = [&](std::size_t mi) {
    if (chosen.size() < kMaxEvidenceLines && taken.insert(mi).second) chosen.push_back(mi);
  };
  if (!violated.empty()) {
    for (std::size_t mi = 0; mi < instance.messages.size(); ++mi) {
      if (violated.count(instance.messages[mi].key_id)) add(mi);
    }
  }
  const std::size_t n = instance.messages.size();
  if (n <= kMaxEvidenceLines) {
    for (std::size_t mi = 0; mi < n; ++mi) add(mi);
  } else {
    for (std::size_t mi = 0; mi < kMaxEvidenceLines / 2; ++mi) add(mi);
    for (std::size_t mi = n - kMaxEvidenceLines / 2; mi < n; ++mi) add(mi);
  }
  std::sort(chosen.begin(), chosen.end(), [&](std::size_t x, std::size_t y) {
    return instance.messages[x].record_index < instance.messages[y].record_index;
  });
  for (const std::size_t mi : chosen) {
    const GroupMessage& m = instance.messages[mi];
    ev.lines.push_back(make_evidence_line(session, m.record_index, m.key_id));
  }
  return ev;
}

Evidence build_missing_group_evidence(const logparse::Session& session, const GroupNode& node,
                                      const std::vector<int>& record_keys) {
  PROF_FRAME("detect.evidence");
  Evidence ev;
  ev.expected_keys.assign(node.keys.begin(), node.keys.end());
  ev.missing_keys = ev.expected_keys;
  ev.deviation = "entity group '" + node.name + "' never appeared in " +
                 std::to_string(session.records.size()) + " records";
  // The group is absent, so the proof is the observed span itself: the
  // session's boundary records, labeled with the keys they did match.
  const auto key_of = [&](std::size_t ri) {
    return ri < record_keys.size() ? record_keys[ri] : -1;
  };
  const std::size_t n = session.records.size();
  const std::size_t half = kMaxEvidenceLines / 2;
  if (n <= kMaxEvidenceLines) {
    for (std::size_t ri = 0; ri < n; ++ri) {
      ev.lines.push_back(make_evidence_line(session, ri, key_of(ri)));
    }
  } else {
    for (std::size_t ri = 0; ri < half; ++ri) {
      ev.lines.push_back(make_evidence_line(session, ri, key_of(ri)));
    }
    for (std::size_t ri = n - half; ri < n; ++ri) {
      ev.lines.push_back(make_evidence_line(session, ri, key_of(ri)));
    }
  }
  return ev;
}

// --- report round-trip -------------------------------------------------------

EvidenceLine evidence_line_from_json(const common::Json& j) {
  EvidenceLine line;
  if (!j.is_object()) return line;
  if (j.contains("record_index")) line.record_index = static_cast<std::size_t>(j["record_index"].as_int());
  if (j.contains("timestamp_ms")) line.timestamp_ms = static_cast<std::uint64_t>(j["timestamp_ms"].as_int());
  if (j.contains("key")) line.key_id = static_cast<int>(j["key"].as_int());
  if (j.contains("content")) line.content = j["content"].as_string();
  if (j.contains("file")) line.file = j["file"].as_string();
  if (j.contains("line")) line.line_no = static_cast<std::size_t>(j["line"].as_int());
  if (j.contains("byte_offset")) line.byte_offset = static_cast<std::uint64_t>(j["byte_offset"].as_int());
  return line;
}

Evidence evidence_from_json(const common::Json& j) {
  Evidence ev;
  if (!j.is_object()) return ev;
  ev.expected_keys = ints_from_json(j["expected_keys"]);
  ev.observed_keys = ints_from_json(j["observed_keys"]);
  ev.matched_keys = ints_from_json(j["matched_keys"]);
  ev.missing_keys = ints_from_json(j["missing_keys"]);
  if (j.contains("deviation")) ev.deviation = j["deviation"].as_string();
  if (j["lines"].is_array()) {
    for (const auto& lj : j["lines"].as_array()) {
      ev.lines.push_back(evidence_line_from_json(lj));
    }
  }
  return ev;
}

AnomalyReport report_from_json(const common::Json& j) {
  if (!j.is_object() || !j.contains("container")) {
    throw std::runtime_error("report_from_json: not an anomaly report object");
  }
  AnomalyReport report;
  report.container_id = j["container"].as_string();
  if (j.contains("session_length")) {
    report.session_length = static_cast<std::size_t>(j["session_length"].as_int());
  }
  if (j.contains("degraded")) report.degraded_reason = j["degraded"].as_string();
  if (j["unexpected_messages"].is_array()) {
    for (const auto& uj : j["unexpected_messages"].as_array()) {
      UnexpectedMessage u;
      if (uj.contains("record_index")) {
        u.record_index = static_cast<std::size_t>(uj["record_index"].as_int());
      }
      if (uj.contains("content")) u.content = uj["content"].as_string();
      // The nested intel_key/intel_message extractions are display payload;
      // explain does not need them re-materialized.
      u.evidence = evidence_from_json(uj["evidence"]);
      report.unexpected.push_back(std::move(u));
    }
  }
  if (j["group_issues"].is_array()) {
    for (const auto& ij : j["group_issues"].as_array()) {
      GroupIssue issue;
      issue.kind = kind_from_string(ij["kind"].as_string());
      if (ij.contains("group")) issue.group = ij["group"].as_string();
      if (ij["signature"].is_array()) {
        for (const auto& s : ij["signature"].as_array()) issue.signature.insert(s.as_string());
      }
      issue.missing_keys = ints_from_json(ij["missing_critical_keys"]);
      if (ij["violated_orders"].is_array()) {
        for (const auto& pj : ij["violated_orders"].as_array()) {
          if (pj.is_array() && pj.size() == 2) {
            issue.violated_orders.emplace_back(static_cast<int>(pj[0].as_int()),
                                               static_cast<int>(pj[1].as_int()));
          }
        }
      }
      issue.evidence = evidence_from_json(ij["evidence"]);
      report.issues.push_back(std::move(issue));
    }
  }
  return report;
}

std::string render_explanation(const AnomalyReport& report) {
  if (!report.anomalous()) return "";
  std::string out = "container " + report.container_id + " — ANOMALOUS (" +
                    std::to_string(report.unexpected.size() + report.issues.size()) +
                    " finding" +
                    (report.unexpected.size() + report.issues.size() == 1 ? "" : "s") + ", " +
                    std::to_string(report.session_length) + " records";
  if (report.degraded()) out += ", degraded: " + report.degraded_reason;
  out += ")\n";

  std::size_t n = 0;
  const auto render_evidence = [&out](const Evidence& ev) {
    if (!ev.expected_keys.empty()) out += "    expected: " + join_keys(ev.expected_keys) + "\n";
    if (!ev.observed_keys.empty()) out += "    observed: " + join_keys(ev.observed_keys) + "\n";
    if (!ev.missing_keys.empty()) {
      out += "    missing : " + join_keys(ev.missing_keys, ", ") + "\n";
    }
    if (!ev.deviation.empty()) out += "    deviation: " + ev.deviation + "\n";
    for (const EvidenceLine& line : ev.lines) {
      out += "      " + line.file + ":" + std::to_string(line.line_no) + " +" +
             std::to_string(line.byte_offset) + "B";
      out += line.key_id >= 0 ? " [key " + std::to_string(line.key_id) + "] " : " [no key] ";
      // Folded continuations would break the one-line-per-record layout.
      std::string content = line.content.substr(0, line.content.find('\n'));
      out += content + "\n";
    }
  };

  for (const UnexpectedMessage& u : report.unexpected) {
    out += "\n[" + std::to_string(++n) + "] unexpected-message at record " +
           std::to_string(u.record_index) + "\n";
    render_evidence(u.evidence);
  }
  for (const GroupIssue& issue : report.issues) {
    out += "\n[" + std::to_string(++n) + "] " + std::string(to_string(issue.kind)) +
           " in group '" + issue.group + "'";
    if (!issue.signature.empty()) out += " (signature " + signature_text(issue.signature) + ")";
    out += "\n";
    render_evidence(issue.evidence);
  }
  return out;
}

// --- HW-graph instance view --------------------------------------------------

std::string SubroutineView::name() const { return "sub " + signature_text(signature); }

WorkflowView build_workflow_view(const IntelLog& model, const logparse::Session& session) {
  WorkflowView view;
  view.container_id = session.container_id;
  view.system = session.system;
  view.source_file = session.source_file;
  if (!session.records.empty()) {
    view.first_ms = session.records.front().timestamp_ms;
    view.last_ms = view.first_ms;
    for (const logparse::LogRecord& rec : session.records) {
      view.first_ms = std::min(view.first_ms, rec.timestamp_ms);
      view.last_ms = std::max(view.last_ms, rec.timestamp_ms);
    }
  }

  // Per-record routing, identical to the detection path: Spell match ->
  // Intel Key -> entity groups.
  const logparse::Spell& spell = model.spell();
  const auto& intel_keys = model.intel_keys();
  std::map<std::string, std::vector<GroupMessage>> group_messages;
  for (std::size_t ri = 0; ri < session.records.size(); ++ri) {
    const logparse::LogRecord& rec = session.records[ri];
    const int key_id = spell.match(rec.content);
    if (key_id < 0) continue;
    if (model.kv_filter().is_learned_kv_key(key_id)) continue;
    const auto ik_it = intel_keys.find(key_id);
    if (ik_it == intel_keys.end()) continue;
    const IntelKey& ik = ik_it->second;
    const IntelMessage msg = model.extractor().instantiate(ik, spell.key(key_id), rec);
    GroupMessage gm;
    gm.key_id = key_id;
    gm.ids = msg.identifiers;
    gm.record_index = ri;
    gm.timestamp_ms = rec.timestamp_ms;
    std::set<std::string> target_groups;
    for (const auto& entity : ik.entities) {
      const auto& gs = model.entity_groups().groups_of(entity);
      target_groups.insert(gs.begin(), gs.end());
    }
    for (const auto& g : target_groups) group_messages[g].push_back(gm);
  }

  // Track order: DFS over the trained containment tree (parents before
  // children), then any groups the graph does not know, id-sorted.
  std::vector<std::string> order;
  std::set<std::string> ordered;
  const auto visit = [&](const auto& self, const std::string& g) -> void {
    if (!ordered.insert(g).second) return;
    order.push_back(g);
    for (const std::string& child : model.hw_graph().children_of(g)) self(self, child);
  };
  for (const std::string& root : model.hw_graph().roots()) visit(visit, root);
  for (const auto& [g, msgs] : group_messages) {
    if (!ordered.count(g)) order.push_back(g);  // map iteration is id-sorted
  }

  for (const std::string& gname : order) {
    const auto it = group_messages.find(gname);
    if (it == group_messages.end()) continue;
    const std::vector<GroupMessage>& messages = it->second;
    GroupSpanView gv;
    gv.group = gname;
    gv.message_count = messages.size();
    gv.first_ms = messages.front().timestamp_ms;
    gv.last_ms = gv.first_ms;
    for (const GroupMessage& m : messages) {
      gv.first_ms = std::min(gv.first_ms, m.timestamp_ms);
      gv.last_ms = std::max(gv.last_ms, m.timestamp_ms);
      gv.hits.push_back({m.key_id, m.record_index, m.timestamp_ms});
    }
    for (const SubroutineInstance& inst : partition_instances(messages)) {
      SubroutineView sv;
      sv.signature = inst.signature;
      sv.id_values.insert(inst.id_values.begin(), inst.id_values.end());
      if (!inst.messages.empty()) {
        sv.first_ms = inst.messages.front().timestamp_ms;
        sv.last_ms = sv.first_ms;
        for (const GroupMessage& m : inst.messages) {
          sv.first_ms = std::min(sv.first_ms, m.timestamp_ms);
          sv.last_ms = std::max(sv.last_ms, m.timestamp_ms);
          sv.hits.push_back({m.key_id, m.record_index, m.timestamp_ms});
        }
      }
      gv.subroutines.push_back(std::move(sv));
    }
    view.groups.push_back(std::move(gv));
  }
  return view;
}

}  // namespace intellog::core
