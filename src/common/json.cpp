#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace intellog::common {

namespace {
const Json kNull{};
}

std::int64_t Json::as_int() const {
  if (is_double()) return static_cast<std::int64_t>(std::get<double>(v_));
  return std::get<std::int64_t>(v_);
}

double Json::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
  return std::get<double>(v_);
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) v_ = JsonObject{};
  return as_object()[key];
}

const Json& Json::operator[](const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? kNull : it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  return 0;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent >= 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_int()) {
    out += std::to_string(std::get<std::int64_t>(v_));
  } else if (is_double()) {
    const double d = std::get<double>(v_);
    if (std::isfinite(d)) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.10g", d);
      out += buf;
    } else {
      out += "null";  // JSON has no NaN/Inf
    }
  } else if (is_string()) {
    out += '"';
    out += json_escape(as_string());
    out += '"';
  } else if (is_array()) {
    const auto& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i > 0) out += ',';
      newline(depth + 1);
      arr[i].dump_to(out, indent, depth + 1);
    }
    newline(depth);
    out += ']';
  } else {
    const auto& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) out += ',';
      first = false;
      newline(depth + 1);
      out += '"';
      out += json_escape(k);
      out += "\":";
      if (indent >= 0) out += ' ';
      v.dump_to(out, indent, depth + 1);
    }
    newline(depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error("json parse error at offset " + std::to_string(pos_) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json(nullptr);
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(obj));
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("bad unicode escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad hex digit");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported — logs are ASCII).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_float = false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c == '.' || c == 'e' || c == 'E') is_float = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("invalid number");
    const std::string text(s_.substr(start, pos_ - start));
    try {
      if (is_float) return Json(std::stod(text));
      return Json(static_cast<std::int64_t>(std::stoll(text)));
    } catch (const std::exception&) {
      fail("number out of range");
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace intellog::common
