#include "common/strtab.hpp"

#include <cstring>

namespace intellog::common {

FixedStringTable::FixedStringTable(std::size_t arena_bytes, std::size_t max_strings)
    : arena_(new char[arena_bytes]),
      off_(new std::uint32_t[max_strings]),
      len_(new std::uint32_t[max_strings]),
      cap_bytes_(arena_bytes),
      cap_strings_(max_strings) {}

std::uint32_t FixedStringTable::intern(std::string_view s) {
  std::lock_guard lock(mu_);
  if (const auto it = map_.find(s); it != map_.end()) return it->second;

  const std::uint32_t n = count_.load(std::memory_order_relaxed);
  const std::size_t used = used_.load(std::memory_order_relaxed);
  if (n >= cap_strings_ || used + s.size() > cap_bytes_) return kNone;

  std::memcpy(arena_.get() + used, s.data(), s.size());
  off_[n] = static_cast<std::uint32_t>(used);
  len_[n] = static_cast<std::uint32_t>(s.size());
  // Publish bytes and slot before the count that makes them visible.
  used_.store(used + s.size(), std::memory_order_release);
  count_.store(n + 1, std::memory_order_release);

  const std::uint32_t id = n + 1;
  map_.emplace(std::string(s), id);
  return id;
}

std::string_view FixedStringTable::text(std::uint32_t id) const {
  const std::uint32_t n = count_.load(std::memory_order_acquire);
  if (id == kNone || id > n) return {};
  return {arena_.get() + off_[id - 1], len_[id - 1]};
}

}  // namespace intellog::common
