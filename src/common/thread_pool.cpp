#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

namespace intellog::common {

namespace {

std::atomic<PoolObserver*> g_pool_observer{nullptr};

}  // namespace

void set_pool_observer(PoolObserver* observer) {
  g_pool_observer.store(observer, std::memory_order_release);
}

PoolObserver* pool_observer() {
  return g_pool_observer.load(std::memory_order_acquire);
}

std::uint64_t ThreadPool::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  counters_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    counters_.push_back(std::make_unique<WorkerCounters>());
  }
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  shutdown(DrainMode::Drain);
  if (PoolObserver* obs = pool_observer()) {
    const Stats s = stats();
    std::uint64_t busy_us = 0, idle_us = 0, tasks = 0;
    for (const WorkerStats& w : s.workers) {
      busy_us += w.busy_us;
      idle_us += w.idle_us;
      tasks += w.tasks;
    }
    obs->on_retire(busy_us, idle_us, tasks);
  }
}

void ThreadPool::shutdown(DrainMode mode) {
  std::queue<Task> cancelled;
  std::size_t pending = 0;
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;  // the first shutdown joined the workers already
    stopping_ = true;
    pending = queue_.size();
    if (mode == DrainMode::Cancel) queue_.swap(cancelled);
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  std::uint64_t n_drained = 0, n_cancelled = 0;
  if (mode == DrainMode::Cancel) {
    n_cancelled = cancelled.size();
    // Destroying the queue releases each packaged_task; unfired promises
    // surface as std::future_error{broken_promise} at the caller's .get().
    while (!cancelled.empty()) cancelled.pop();
    cancelled_.fetch_add(n_cancelled, std::memory_order_relaxed);
  } else {
    n_drained = pending;
    drained_at_shutdown_.fetch_add(n_drained, std::memory_order_relaxed);
  }
  if (PoolObserver* obs = pool_observer()) obs->on_shutdown(n_drained, n_cancelled);
}

void ThreadPool::note_enqueue(std::size_t depth) {
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  std::size_t seen = max_depth_.load(std::memory_order_relaxed);
  while (depth > seen &&
         !max_depth_.compare_exchange_weak(seen, depth,
                                           std::memory_order_relaxed)) {
  }
  if (PoolObserver* obs = pool_observer()) obs->on_enqueue(depth);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  WorkerCounters& wc = *counters_[worker_index];
  std::uint64_t idle_start = now_ns();
  while (true) {
    Task task;
    std::size_t depth_left;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
      depth_left = queue_.size();
    }
    const std::uint64_t picked_ns = now_ns();
    wc.idle_ns.fetch_add(picked_ns - idle_start, std::memory_order_relaxed);

    const std::uint64_t delay_ns = picked_ns - task.enqueue_ns;
    delay_total_ns_.fetch_add(delay_ns, std::memory_order_relaxed);
    std::uint64_t seen = delay_max_ns_.load(std::memory_order_relaxed);
    while (delay_ns > seen &&
           !delay_max_ns_.compare_exchange_weak(seen, delay_ns,
                                                std::memory_order_relaxed)) {
    }
    if (PoolObserver* obs = pool_observer()) {
      obs->on_dequeue(static_cast<double>(delay_ns) / 1e6, depth_left);
    }

    task.fn();

    const std::uint64_t done_ns = now_ns();
    wc.busy_ns.fetch_add(done_ns - picked_ns, std::memory_order_relaxed);
    wc.tasks.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    idle_start = done_ns;
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.tasks_enqueued = enqueued_.load(std::memory_order_relaxed);
  s.tasks_completed = completed_.load(std::memory_order_relaxed);
  s.tasks_cancelled = cancelled_.load(std::memory_order_relaxed);
  s.tasks_drained_at_shutdown = drained_at_shutdown_.load(std::memory_order_relaxed);
  s.queue_delay_total_ms =
      static_cast<double>(delay_total_ns_.load(std::memory_order_relaxed)) / 1e6;
  s.queue_delay_max_ms =
      static_cast<double>(delay_max_ns_.load(std::memory_order_relaxed)) / 1e6;
  s.max_queue_depth = max_depth_.load(std::memory_order_relaxed);
  s.workers.reserve(counters_.size());
  for (const auto& wc : counters_) {
    WorkerStats w;
    w.busy_us = wc->busy_ns.load(std::memory_order_relaxed) / 1000;
    w.idle_us = wc->idle_ns.load(std::memory_order_relaxed) / 1000;
    w.tasks = wc->tasks.load(std::memory_order_relaxed);
    s.workers.push_back(w);
  }
  return s;
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  // Every task captures `fn` by reference, so this frame must not unwind
  // while any of them is still pending — drain all futures, then rethrow
  // the first worker exception.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace intellog::common
