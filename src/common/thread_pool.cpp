#include "common/thread_pool.hpp"

#include <algorithm>

namespace intellog::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();  // .get() rethrows worker exceptions
}

}  // namespace intellog::common
