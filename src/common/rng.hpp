// Deterministic, seedable RNG used by the cluster simulator and baselines.
//
// The whole evaluation pipeline must be reproducible from a single seed, so
// nothing in the repo uses std::random_device or global RNG state.
#pragma once

#include <cstdint>
#include <vector>

namespace intellog::common {

/// splitmix64 — used to expand one seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — small, fast, high-quality PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1234abcdULL) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform(std::uint64_t n) { return next_u64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform01() { return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0); }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Standard normal via Box-Muller (one value per call; simple, adequate).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Picks an index with probability proportional to weights[i].
  std::size_t weighted_choice(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child stream (for per-component interleaving).
  Rng fork() { return Rng(next_u64()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4]{};
};

}  // namespace intellog::common
