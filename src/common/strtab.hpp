// Fixed-capacity append-only string table for crash-safe interning.
//
// The flight recorder stores a 32-bit string id per event instead of
// characters; the id must be resolvable by a crash-time dumper that can
// only call write(2). That rules out std::unordered_map traversal at dump
// time, so the table keeps everything the dumper needs in three flat,
// preallocated arrays — character arena, offsets, lengths — published with
// a single release store of the count. Interning takes a mutex and may
// allocate (map bookkeeping); it is meant for startup/registration-time
// strings (tenant names, static labels), never for per-record hot-path
// data. Lookups and raw-array reads are lock-free and async-signal-safe.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/interner.hpp"

namespace intellog::common {

class FixedStringTable {
 public:
  /// Ids are 1-based; 0 means "no string" and is returned when the table
  /// is full (callers degrade to an id-less event rather than blocking).
  static constexpr std::uint32_t kNone = 0;

  FixedStringTable(std::size_t arena_bytes, std::size_t max_strings);

  /// Returns the id of `s`, appending it if new. Duplicate-safe.
  /// Returns kNone when the arena or slot budget is exhausted.
  std::uint32_t intern(std::string_view s);

  /// Text for a valid id (1..size()); empty view for kNone/out-of-range.
  std::string_view text(std::uint32_t id) const;

  std::uint32_t size() const { return count_.load(std::memory_order_acquire); }

  // Raw views for the signal-safe dumper: plain preallocated memory,
  // consistent for every id < size() at the moment size() was read.
  const char* arena_data() const { return arena_.get(); }
  std::size_t arena_used() const { return used_.load(std::memory_order_acquire); }
  const std::uint32_t* offsets() const { return off_.get(); }
  const std::uint32_t* lengths() const { return len_.get(); }

 private:
  std::mutex mu_;
  std::unordered_map<std::string, std::uint32_t, StringHash, std::equal_to<>> map_;
  std::unique_ptr<char[]> arena_;
  std::unique_ptr<std::uint32_t[]> off_;
  std::unique_ptr<std::uint32_t[]> len_;
  std::atomic<std::uint32_t> count_{0};
  std::atomic<std::size_t> used_{0};
  std::size_t cap_bytes_;
  std::size_t cap_strings_;
};

}  // namespace intellog::common
