// Fixed-width text table printer used by the benches to render paper tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace intellog::common {

/// Accumulates rows of cells and prints an aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Renders with column alignment and a header separator.
  std::string render() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string fmt_double(double v, int digits = 2);
/// Formats a ratio (0..1) as a percentage with two decimals, e.g. "87.23%".
std::string fmt_percent(double ratio, int digits = 2);

}  // namespace intellog::common
