#include "common/arena.hpp"

#include <cstdlib>
#include <cstring>
#include <new>

// Weak references so plain builds resolve these to nullptr while ASan
// builds get real shadow poisoning — same idiom as the profiler's
// sanitizer hooks (src/obs/profile/profile.cpp).
extern "C" __attribute__((weak)) void __asan_poison_memory_region(
    const volatile void* addr, std::size_t size);
extern "C" __attribute__((weak)) void __asan_unpoison_memory_region(
    const volatile void* addr, std::size_t size);

namespace intellog::common {
namespace {

void shadow_poison(void* p, std::size_t n) {
  if (__asan_poison_memory_region != nullptr && n > 0) {
    __asan_poison_memory_region(p, n);
  }
}

void shadow_unpoison(void* p, std::size_t n) {
  if (__asan_unpoison_memory_region != nullptr && n > 0) {
    __asan_unpoison_memory_region(p, n);
  }
}

}  // namespace

PagePool::~PagePool() {
  for (std::byte* page : free_) {
    shadow_unpoison(page, kPageSize);
    ::operator delete(page);
  }
}

PagePool& PagePool::global() {
  // Leaked on purpose: arenas in static-duration objects (thread-local
  // detect scratch) may release pages during shutdown after a
  // function-local static pool would already be destroyed.
  static PagePool* pool = new PagePool();
  return *pool;
}

std::byte* PagePool::acquire() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      std::byte* page = free_.back();
      free_.pop_back();
      return page;
    }
    ++created_;
  }
  return static_cast<std::byte*>(::operator new(kPageSize));
}

void PagePool::release(std::byte* page) {
  if (page == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(page);
}

PagePool::Stats PagePool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{created_, free_.size()};
}

bool Arena::poison_default() {
  const char* env = std::getenv("INTELLOG_ARENA_POISON");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

Arena::Arena(PagePool* pool) : Arena(pool, poison_default()) {}

Arena::Arena(PagePool* pool, bool poison_on_reset)
    : pool_(pool), poison_(poison_on_reset) {}

Arena::~Arena() {
  for (std::byte* page : pages_) {
    shadow_unpoison(page, PagePool::kPageSize);
    pool_->release(page);
  }
  for (const BigBlock& b : big_) {
    shadow_unpoison(b.ptr, b.size);
    ::operator delete(b.ptr);
  }
}

Arena::Arena(Arena&& other) noexcept
    : pool_(other.pool_),
      pages_(std::move(other.pages_)),
      page_index_(other.page_index_),
      cur_(other.cur_),
      cur_used_(other.cur_used_),
      big_(std::move(other.big_)),
      last_big_(other.last_big_),
      bytes_used_(other.bytes_used_),
      bytes_peak_(other.bytes_peak_),
      poison_(other.poison_) {
  other.pages_.clear();
  other.big_.clear();
  other.page_index_ = 0;
  other.cur_ = nullptr;
  other.cur_used_ = 0;
  other.bytes_used_ = 0;
}

Arena& Arena::operator=(Arena&& other) noexcept {
  if (this != &other) {
    this->~Arena();
    new (this) Arena(std::move(other));
  }
  return *this;
}

void Arena::start_page(std::size_t index) {
  while (pages_.size() <= index) {
    pages_.push_back(pool_->acquire());
  }
  page_index_ = index;
  cur_ = pages_[index];
  cur_used_ = 0;
}

void* Arena::allocate(std::size_t n, std::size_t align) {
  if (n == 0) n = 1;
  if (n > PagePool::kPageSize) {
    // Oversized: dedicated heap block, geometric so repeated big requests
    // amortize. The block is handed out whole; its slack is not bumped.
    std::size_t size = n;
    if (size < last_big_ * 2) size = last_big_ * 2;
    std::byte* ptr = static_cast<std::byte*>(::operator new(size));
    big_.push_back(BigBlock{ptr, size});
    last_big_ = size;
    bytes_used_ += n;
    if (bytes_used_ > bytes_peak_) bytes_peak_ = bytes_used_;
    return ptr;
  }
  if (cur_ == nullptr) start_page(0);
  std::size_t aligned = (cur_used_ + (align - 1)) & ~(align - 1);
  if (aligned + n > PagePool::kPageSize) {
    start_page(page_index_ + 1);
    aligned = 0;
  }
  std::byte* out = cur_ + aligned;
  cur_used_ = aligned + n;
  bytes_used_ += n;
  if (bytes_used_ > bytes_peak_) bytes_peak_ = bytes_used_;
  if (poison_) shadow_unpoison(out, n);
  return out;
}

std::string_view Arena::copy(std::string_view s) {
  if (s.empty()) return std::string_view(reinterpret_cast<const char*>(this), 0);
  char* dst = static_cast<char*>(allocate(s.size(), 1));
  std::memcpy(dst, s.data(), s.size());
  return std::string_view(dst, s.size());
}

std::string_view Arena::concat(std::string_view a, std::string_view b) {
  const std::size_t total = a.size() + b.size();
  if (total == 0) return std::string_view(reinterpret_cast<const char*>(this), 0);
  char* dst = static_cast<char*>(allocate(total, 1));
  if (!a.empty()) std::memcpy(dst, a.data(), a.size());
  if (!b.empty()) std::memcpy(dst + a.size(), b.data(), b.size());
  return std::string_view(dst, total);
}

void Arena::reset() {
  if (poison_) {
    // Fill every byte that was ever handed out this cycle so stale views
    // read as garbage even without ASan, then poison the shadow so ASan
    // tiers fault on the first touch.
    for (std::size_t i = 0; i < pages_.size(); ++i) {
      const std::size_t used =
          i < page_index_ ? PagePool::kPageSize : (i == page_index_ ? cur_used_ : 0);
      if (used == 0) continue;
      std::memset(pages_[i], 0xCD, used);
      shadow_poison(pages_[i], used);
    }
    for (const BigBlock& b : big_) {
      std::memset(b.ptr, 0xCD, b.size);
    }
  }
  for (const BigBlock& b : big_) {
    ::operator delete(b.ptr);
  }
  big_.clear();
  last_big_ = 0;
  page_index_ = 0;
  cur_ = pages_.empty() ? nullptr : pages_[0];
  cur_used_ = 0;
  bytes_used_ = 0;
}

}  // namespace intellog::common
