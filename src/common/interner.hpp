// Token interner: string -> dense int id.
//
// The detection hot path (Spell matching, shape-cache lookups, LCS) used to
// compare heap-allocated std::strings token by token. Interning maps every
// distinct token to a small dense id once, so the hot path compares and
// hashes plain ints and — via the heterogeneous string_view lookup — never
// materializes a std::string per incoming token.
//
// Lookup (`find`) is const and safe to call concurrently with other
// lookups; `intern` mutates and must be externally serialized against both
// (Spell interns only on the single-threaded training path).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace intellog::common {

/// Transparent string hash: lets unordered_map<std::string, ...> look up
/// string_view keys without materializing a std::string (C++20
/// heterogeneous lookup).
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

class TokenInterner {
 public:
  /// Id of an absent token (`find` miss). Never returned by `intern`.
  static constexpr int kAbsent = -1;

  /// Returns the id of `token`, inserting it if new. Ids are dense and
  /// assigned in first-seen order starting at 0.
  int intern(std::string_view token);

  /// Returns the id of `token`, or kAbsent. Read-only; no allocation.
  int find(std::string_view token) const {
    const auto it = map_.find(token);
    return it == map_.end() ? kAbsent : it->second;
  }

  /// The token text for a valid id (stable across rehashes).
  std::string_view text(int id) const { return *texts_[static_cast<std::size_t>(id)]; }

  std::size_t size() const { return texts_.size(); }
  bool empty() const { return texts_.empty(); }

  void clear() {
    map_.clear();
    texts_.clear();
  }

 private:
  // std::unordered_map nodes are stable, so texts_ can point into the keys.
  std::unordered_map<std::string, int, StringHash, std::equal_to<>> map_;
  std::vector<const std::string*> texts_;
};

}  // namespace intellog::common
