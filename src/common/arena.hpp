#pragma once

// Page-pool backed bump arenas for the zero-copy hot path.
//
// PagePool hands out fixed 64 KiB pages from a process-wide freelist so
// arenas that are reset every session stop round-tripping through the
// global allocator. Arena bump-allocates inside those pages, spilling
// allocations larger than a page into dedicated geometrically-sized heap
// blocks, and resets in O(1) by rewinding to its first held page (pages
// are kept, not returned, so a shard reusing one arena across thousands
// of sessions performs zero allocator calls after warm-up).
//
// Poison-on-reset (INTELLOG_ARENA_POISON=1, or per-arena) fills dead
// bytes with 0xCD and — under AddressSanitizer — marks them as poisoned
// shadow so any use-after-reset of a borrowed string_view faults loudly.
//
// ArenaString is the interop type that lets LogRecord fields be either
// owning std::strings (every existing producer, simulators, checkpoints)
// or borrowed string_views into an mmap'd file / session arena whose
// lifetime the Session controls. Borrowing is always explicit via
// ArenaString::borrowed(); every implicit construction copies.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace intellog::common {

class PagePool {
 public:
  static constexpr std::size_t kPageSize = 64 * 1024;

  PagePool() = default;
  ~PagePool();
  PagePool(const PagePool&) = delete;
  PagePool& operator=(const PagePool&) = delete;

  // Process-wide pool shared by all arenas that don't bring their own.
  static PagePool& global();

  // Returns a kPageSize-byte page; reuses a freed page when available.
  std::byte* acquire();
  // Returns a page to the freelist for reuse. Never frees to the OS
  // until the pool itself is destroyed.
  void release(std::byte* page);

  struct Stats {
    std::size_t pages_created = 0;  // lifetime total handed to arenas
    std::size_t pages_free = 0;     // currently parked on the freelist
  };
  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::byte*> free_;
  std::size_t created_ = 0;
};

class Arena {
 public:
  explicit Arena(PagePool* pool = &PagePool::global());
  Arena(PagePool* pool, bool poison_on_reset);
  ~Arena();
  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&& other) noexcept;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Bump-allocates n bytes with the given alignment. Allocations larger
  // than a page get a dedicated heap block sized geometrically (each new
  // block at least twice the last) so pathological inputs don't defeat
  // the pool; those blocks are freed on reset.
  void* allocate(std::size_t n, std::size_t align = alignof(std::max_align_t));

  // Copies s into the arena and returns a view of the copy. The view is
  // valid until the next reset() or the arena's destruction.
  std::string_view copy(std::string_view s);
  // Copies a then b contiguously; returns a view of the joined bytes.
  std::string_view concat(std::string_view a, std::string_view b);

  // O(1): rewinds to the first held page. Pool pages stay held by this
  // arena for reuse; oversized heap blocks are freed. With poisoning on,
  // previously used bytes are filled with 0xCD and (under ASan) marked
  // poisoned, which costs O(bytes used) — only enabled on sanitizer tiers.
  void reset();

  std::size_t bytes_used() const { return bytes_used_; }
  std::size_t bytes_peak() const { return bytes_peak_; }
  std::size_t pages_held() const { return pages_.size(); }
  bool poison_on_reset() const { return poison_; }

  // True when INTELLOG_ARENA_POISON is set to a non-empty value other
  // than "0"; the default for arenas constructed without an explicit flag.
  static bool poison_default();

 private:
  struct BigBlock {
    std::byte* ptr;
    std::size_t size;
  };

  void start_page(std::size_t index);

  PagePool* pool_;
  std::vector<std::byte*> pages_;  // held pool pages, reused in order
  std::size_t page_index_ = 0;     // page the cursor currently sits in
  std::byte* cur_ = nullptr;
  std::size_t cur_used_ = 0;
  std::vector<BigBlock> big_;
  std::size_t last_big_ = 0;
  std::size_t bytes_used_ = 0;
  std::size_t bytes_peak_ = 0;
  bool poison_;
};

// A string that either owns its bytes (default: safe everywhere, exactly
// a std::string) or borrows them from storage somebody else keeps alive
// (an mmap'd file or a session arena). All implicit constructors copy;
// only the named factory borrows, so a borrowed view never appears by
// accident. Borrowed copies stay borrowed — Session pins the backing via
// shared_ptr, so copies within a session's lifetime are safe; call
// materialize() before letting a record outlive its session's storage.
class ArenaString {
 public:
  ArenaString() = default;
  ArenaString(const char* s) : owned_(s) {}
  ArenaString(std::string s) : owned_(std::move(s)) {}
  ArenaString(std::string_view s) : owned_(s) {}

  static ArenaString borrowed(std::string_view s) {
    ArenaString a;
    a.ext_ = s;
    a.borrowed_ = true;
    return a;
  }

  ArenaString& operator=(const char* s) { owned_ = s; ext_ = {}; borrowed_ = false; return *this; }
  ArenaString& operator=(std::string s) { owned_ = std::move(s); ext_ = {}; borrowed_ = false; return *this; }
  ArenaString& operator=(std::string_view s) { owned_.assign(s); ext_ = {}; borrowed_ = false; return *this; }

  operator std::string_view() const noexcept { return view(); }
  std::string_view view() const noexcept {
    return borrowed_ ? ext_ : std::string_view(owned_);
  }
  std::string str() const { return std::string(view()); }

  const char* data() const noexcept { return view().data(); }
  std::size_t size() const noexcept { return view().size(); }
  bool empty() const noexcept { return view().empty(); }
  char operator[](std::size_t i) const noexcept { return view()[i]; }
  std::size_t find(char c, std::size_t pos = 0) const noexcept { return view().find(c, pos); }
  std::size_t find(std::string_view s, std::size_t pos = 0) const noexcept { return view().find(s, pos); }
  std::string_view substr(std::size_t pos, std::size_t n = std::string_view::npos) const {
    return view().substr(pos, n);
  }
  bool is_borrowed() const noexcept { return borrowed_; }

  // Converts a borrowed string into an owning one (no-op when already
  // owned). Required before the backing storage goes away.
  void materialize() {
    if (borrowed_) {
      owned_.assign(ext_);
      ext_ = {};
      borrowed_ = false;
    }
  }

  ArenaString& operator+=(std::string_view s) {
    materialize();
    owned_.append(s);
    return *this;
  }
  ArenaString& operator+=(char c) {
    materialize();
    owned_.push_back(c);
    return *this;
  }

  friend bool operator==(const ArenaString& a, const ArenaString& b) noexcept {
    return a.view() == b.view();
  }
  friend bool operator==(const ArenaString& a, std::string_view b) noexcept {
    return a.view() == b;
  }
  // Exact-match overloads: without them, `s == "lit"` is ambiguous
  // between the string_view friend and the implicit ArenaString ctor.
  friend bool operator==(const ArenaString& a, const char* b) noexcept {
    return a.view() == std::string_view(b);
  }
  friend bool operator==(const ArenaString& a, const std::string& b) noexcept {
    return a.view() == std::string_view(b);
  }
  friend bool operator!=(const ArenaString& a, const ArenaString& b) noexcept {
    return a.view() != b.view();
  }
  friend bool operator!=(const ArenaString& a, std::string_view b) noexcept {
    return a.view() != b;
  }
  friend bool operator!=(const ArenaString& a, const char* b) noexcept {
    return a.view() != std::string_view(b);
  }
  friend bool operator!=(const ArenaString& a, const std::string& b) noexcept {
    return a.view() != std::string_view(b);
  }
  friend bool operator<(const ArenaString& a, const ArenaString& b) noexcept {
    return a.view() < b.view();
  }
  friend std::ostream& operator<<(std::ostream& os, const ArenaString& s) {
    return os << s.view();
  }

 private:
  std::string owned_;
  std::string_view ext_{};
  bool borrowed_ = false;
};

inline std::string operator+(const std::string& a, const ArenaString& b) {
  std::string out;
  out.reserve(a.size() + b.size());
  out.append(a).append(b.view());
  return out;
}
inline std::string operator+(const ArenaString& a, const std::string& b) {
  std::string out;
  out.reserve(a.size() + b.size());
  out.append(a.view()).append(b);
  return out;
}
inline std::string operator+(const char* a, const ArenaString& b) {
  std::string out(a);
  out.append(b.view());
  return out;
}
inline std::string operator+(const ArenaString& a, const char* b) {
  std::string out(a.view());
  out.append(b);
  return out;
}

}  // namespace intellog::common

template <>
struct std::hash<intellog::common::ArenaString> {
  std::size_t operator()(const intellog::common::ArenaString& s) const noexcept {
    return std::hash<std::string_view>{}(s.view());
  }
};
