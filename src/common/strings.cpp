#include "common/strings.hpp"

#include <algorithm>
#include <cctype>

namespace intellog::common {

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t pos = s.find_first_of(delims, start);
    const std::size_t end = (pos == std::string_view::npos) ? s.size() : pos;
    if (end > start) out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) { return split(s, " \t\r\n"); }

void split_ws_views(std::string_view s, std::vector<std::string_view>& out) {
  out.clear();
  constexpr std::string_view kWs = " \t\r\n";
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t pos = s.find_first_of(kWs, start);
    const std::size_t end = (pos == std::string_view::npos) ? s.size() : pos;
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string_view trim(std::string_view s) {
  const auto* ws = " \t\r\n";
  const std::size_t b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  const std::size_t e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool is_all_digits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) { return std::isdigit(c); });
}

bool has_letter(std::string_view s) {
  return std::any_of(s.begin(), s.end(), [](unsigned char c) { return std::isalpha(c); });
}

bool has_digit(std::string_view s) {
  return std::any_of(s.begin(), s.end(), [](unsigned char c) { return std::isdigit(c); });
}

bool is_number(std::string_view s) {
  if (s.empty()) return false;
  std::size_t i = 0;
  if (s[i] == '-' || s[i] == '+') ++i;
  bool digits = false, dot = false;
  for (; i < s.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (std::isdigit(c)) {
      digits = true;
    } else if (s[i] == '.' && !dot) {
      dot = true;
    } else if ((s[i] == ',') && digits) {
      // thousands separator, e.g. "1,286,159"
    } else {
      return false;
    }
  }
  return digits;
}

std::string replace_all(std::string s, std::string_view from, std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::size_t lcs_length(const std::vector<std::string>& a, const std::vector<std::string>& b) {
  const std::size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return 0;
  // Two-row DP keeps memory O(min side); rows over `b`.
  std::vector<std::size_t> prev(m + 1, 0), cur(m + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      cur[j] = (a[i - 1] == b[j - 1]) ? prev[j - 1] + 1 : std::max(prev[j], cur[j - 1]);
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

std::size_t lcs_length_ids(const std::vector<int>& a, const std::vector<int>& b) {
  const std::size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return 0;
  thread_local std::vector<std::size_t> prev, cur;
  prev.assign(m + 1, 0);
  cur.assign(m + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      cur[j] = (a[i - 1] == b[j - 1]) ? prev[j - 1] + 1 : std::max(prev[j], cur[j - 1]);
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

std::vector<std::string> lcs(const std::vector<std::string>& a, const std::vector<std::string>& b) {
  const std::size_t n = a.size(), m = b.size();
  std::vector<std::vector<std::size_t>> dp(n + 1, std::vector<std::size_t>(m + 1, 0));
  for (std::size_t i = 1; i <= n; ++i)
    for (std::size_t j = 1; j <= m; ++j)
      dp[i][j] = (a[i - 1] == b[j - 1]) ? dp[i - 1][j - 1] + 1 : std::max(dp[i - 1][j], dp[i][j - 1]);
  std::vector<std::string> out;
  std::size_t i = n, j = m;
  while (i > 0 && j > 0) {
    if (a[i - 1] == b[j - 1]) {
      out.push_back(a[i - 1]);
      --i;
      --j;
    } else if (dp[i - 1][j] >= dp[i][j - 1]) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<std::string> longest_common_substring_words(const std::vector<std::string>& a,
                                                        const std::vector<std::string>& b) {
  const std::size_t n = a.size(), m = b.size();
  std::size_t best_len = 0, best_end_a = 0;
  std::vector<std::size_t> prev(m + 1, 0), cur(m + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      cur[j] = (a[i - 1] == b[j - 1]) ? prev[j - 1] + 1 : 0;
      if (cur[j] > best_len) {
        best_len = cur[j];
        best_end_a = i;
      }
    }
    std::swap(prev, cur);
    std::fill(cur.begin(), cur.end(), 0);
  }
  return {a.begin() + static_cast<std::ptrdiff_t>(best_end_a - best_len),
          a.begin() + static_cast<std::ptrdiff_t>(best_end_a)};
}

std::size_t common_suffix_words(const std::vector<std::string>& a,
                                const std::vector<std::string>& b) {
  std::size_t k = 0;
  while (k < a.size() && k < b.size() && a[a.size() - 1 - k] == b[b.size() - 1 - k]) ++k;
  return k;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  const std::size_t n = a.size(), m = b.size();
  std::vector<std::size_t> prev(m + 1), cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace intellog::common
