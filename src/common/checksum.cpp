#include "common/checksum.hpp"

#include <array>
#include <cstdio>

namespace intellog::common {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const char ch : data) {
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string crc32_hex(std::string_view data) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "crc32:%08x", crc32(data));
  return std::string(buf);
}

void stamp_checksum(Json& doc) {
  doc.as_object().erase("checksum");
  doc["checksum"] = crc32_hex(doc.dump());
}

bool verify_checksum(const Json& doc) {
  if (!doc.is_object() || !doc.contains("checksum")) return true;
  const Json& stored = doc["checksum"];
  if (!stored.is_string()) return false;
  Json stripped = doc;
  stripped.as_object().erase("checksum");
  return stored.as_string() == crc32_hex(stripped.dump());
}

}  // namespace intellog::common
