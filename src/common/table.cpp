#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

namespace intellog::common {

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  const auto grow = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  const auto line = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out += ' ';
      out += cell;
      out.append(widths[i] - cell.size() + 1, ' ');
      out += '|';
    }
    out += '\n';
    return out;
  };

  std::string out = line(header_);
  std::string sep = "|";
  for (const std::size_t w : widths) {
    sep.append(w + 2, '-');
    sep += '|';
  }
  out += sep + "\n";
  for (const auto& r : rows_) out += line(r);
  return out;
}

void TextTable::print(std::ostream& os) const { os << render(); }

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_percent(double ratio, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", digits, ratio * 100.0);
  return buf;
}

}  // namespace intellog::common
