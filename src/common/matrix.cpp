#include "common/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace intellog::common {

Matrix Matrix::random_uniform(std::size_t rows, std::size_t cols, double lo, double hi, Rng& rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.uniform_real(lo, hi);
  return m;
}

Matrix Matrix::xavier(std::size_t rows, std::size_t cols, Rng& rng) {
  const double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
  return random_uniform(rows, cols, -bound, bound, rng);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

double Matrix::clip_norm(double max_norm) {
  double sq = 0.0;
  for (double v : data_) sq += v * v;
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (auto& v : data_) v *= scale;
  }
  return norm;
}

void matvec(const Matrix& w, const Vector& x, Vector& y) {
  assert(w.cols() == x.size());
  y.assign(w.rows(), 0.0);
  matvec_acc(w, x, y);
}

void matvec_acc(const Matrix& w, const Vector& x, Vector& y) {
  assert(w.cols() == x.size() && w.rows() == y.size());
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const double* wr = w.row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < w.cols(); ++c) acc += wr[c] * x[c];
    y[r] += acc;
  }
}

void matvec_transpose(const Matrix& w, const Vector& x, Vector& y) {
  assert(w.rows() == x.size());
  y.assign(w.cols(), 0.0);
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const double* wr = w.row(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < w.cols(); ++c) y[c] += wr[c] * xr;
  }
}

void outer_acc(Matrix& w, const Vector& a, const Vector& b, double alpha) {
  assert(w.rows() == a.size() && w.cols() == b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    const double ar = alpha * a[r];
    if (ar == 0.0) continue;
    double* wr = w.row(r);
    for (std::size_t c = 0; c < b.size(); ++c) wr[c] += ar * b[c];
  }
}

void add_inplace(Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

double dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void softmax(Vector& v) {
  if (v.empty()) return;
  const double mx = *std::max_element(v.begin(), v.end());
  double sum = 0.0;
  for (auto& x : v) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (auto& x : v) x /= sum;
}

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
double tanh_approx(double x) { return std::tanh(x); }

}  // namespace intellog::common
