#include "common/interner.hpp"

namespace intellog::common {

int TokenInterner::intern(std::string_view token) {
  const auto it = map_.find(token);
  if (it != map_.end()) return it->second;
  const int id = static_cast<int>(texts_.size());
  const auto [inserted, fresh] = map_.emplace(std::string(token), id);
  (void)fresh;
  texts_.push_back(&inserted->first);
  return id;
}

}  // namespace intellog::common
