// Minimal JSON value type + serializer + parser.
//
// IntelLog exports HW-graphs and Intel Messages as JSON (§5: "Both HW-graphs
// and its instances are output as JSON files which can be queried by JSON
// query tools"). This is a deliberately small, dependency-free
// implementation: ordered object keys (stable output for tests/benches),
// UTF-8 pass-through, no comments.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace intellog::common {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps keys ordered -> deterministic serialization.
using JsonObject = std::map<std::string, Json>;

/// A JSON value. Value-semantic; copies are deep.
class Json {
 public:
  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(int i) : v_(static_cast<std::int64_t>(i)) {}
  Json(std::int64_t i) : v_(i) {}
  Json(std::size_t i) : v_(static_cast<std::int64_t>(i)) {}
  Json(double d) : v_(d) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(std::string_view s) : v_(std::string(s)) {}
  Json(JsonArray a) : v_(std::move(a)) {}
  Json(JsonObject o) : v_(std::move(o)) {}

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(v_); }
  JsonArray& as_array() { return std::get<JsonArray>(v_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(v_); }
  JsonObject& as_object() { return std::get<JsonObject>(v_); }

  /// Object access; creates the key when mutating a non-const object.
  Json& operator[](const std::string& key);
  /// Const object lookup; returns a shared null for missing keys.
  const Json& operator[](const std::string& key) const;
  /// Array element access.
  Json& operator[](std::size_t i) { return as_array()[i]; }
  const Json& operator[](std::size_t i) const { return as_array()[i]; }

  bool contains(const std::string& key) const;
  std::size_t size() const;

  void push_back(Json value) { as_array().push_back(std::move(value)); }

  /// Serializes. indent < 0 -> compact; otherwise pretty with that width.
  std::string dump(int indent = -1) const;

  /// Parses a JSON document. Throws std::runtime_error on malformed input.
  static Json parse(std::string_view text);

  bool operator==(const Json& other) const { return v_ == other.v_; }

 private:
  void dump_to(std::string& out, int indent, int depth) const;
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, JsonArray, JsonObject> v_;
};

/// Escapes a string for inclusion in a JSON document (without quotes).
std::string json_escape(std::string_view s);

}  // namespace intellog::common
