// String utilities shared across IntelLog modules.
//
// Includes the two sequence algorithms the paper's pipeline is built on:
//  - longest common subsequence over token sequences (Spell, §2.1), and
//  - longest common *contiguous* phrase over word sequences
//    (entity grouping, Algorithm 1).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace intellog::common {

/// Splits `s` on any character in `delims`, dropping empty pieces.
std::vector<std::string> split(std::string_view s, std::string_view delims = " \t");

/// Splits `s` on whitespace, keeping the original token text.
std::vector<std::string> split_ws(std::string_view s);

/// Zero-allocation whitespace split: clears `out` and fills it with views
/// into `s` (valid only while `s`'s storage lives). Reusing one `out`
/// across calls keeps the detection hot path allocation-free.
void split_ws_views(std::string_view s, std::vector<std::string_view>& out);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep = " ");

/// ASCII lower-case copy.
std::string to_lower(std::string_view s);

/// Removes leading/trailing whitespace.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// True if every character is an ASCII digit (and s is non-empty).
bool is_all_digits(std::string_view s);

/// True if `s` contains at least one ASCII letter.
bool has_letter(std::string_view s);

/// True if `s` contains at least one ASCII digit.
bool has_digit(std::string_view s);

/// True if `s` parses as a decimal number, e.g. "12", "3.5", "-7".
bool is_number(std::string_view s);

/// Replaces all occurrences of `from` in `s` with `to`.
std::string replace_all(std::string s, std::string_view from, std::string_view to);

/// Length of the longest common subsequence of two token sequences.
/// O(|a| * |b|) dynamic program; used by Spell's log-key matching.
std::size_t lcs_length(const std::vector<std::string>& a, const std::vector<std::string>& b);

/// LCS length over interned token ids — the detection-path variant: int
/// compares instead of string compares, thread-local DP rows instead of
/// per-call allocations. Safe to call concurrently. (Named distinctly from
/// lcs_length: a braced list of string literals is a valid iterator-pair
/// init for std::vector<int>, so an overload would be ambiguous.)
std::size_t lcs_length_ids(const std::vector<int>& a, const std::vector<int>& b);

/// One longest common subsequence (the DP backtrace) of two token sequences.
std::vector<std::string> lcs(const std::vector<std::string>& a, const std::vector<std::string>& b);

/// Longest common *contiguous* run of words between two word sequences.
/// Ties are broken toward the earliest position in `a`.
std::vector<std::string> longest_common_substring_words(const std::vector<std::string>& a,
                                                        const std::vector<std::string>& b);

/// Number of trailing words shared by `a` and `b`.
std::size_t common_suffix_words(const std::vector<std::string>& a,
                                const std::vector<std::string>& b);

/// Levenshtein edit distance between two strings (character level).
std::size_t edit_distance(std::string_view a, std::string_view b);

}  // namespace intellog::common
