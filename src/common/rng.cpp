#include "common/rng.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace intellog::common {

double Rng::normal(double mean, double stddev) {
  // Box-Muller; discard the second value for simplicity.
  double u1 = uniform01();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

std::size_t Rng::weighted_choice(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("weighted_choice: empty weights");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::invalid_argument("weighted_choice: non-positive total weight");
  double r = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace intellog::common
