// A small fixed-size thread pool.
//
// The analysis pipeline processes sessions independently (training corpora
// run to hundreds of sessions with millions of log lines), so the pipeline
// and the benches fan session work out across cores. Plain mutex+condvar
// pool: predictable, no lock-free cleverness needed at this queue rate.
//
// Every task carries its enqueue timestamp, so the pool accounts
// enqueue→dequeue latency, per-worker busy/idle time and queue depth
// (ThreadPool::stats()). A process-global PoolObserver — installed by the
// observability layer, which common cannot depend on — additionally
// receives per-task queue events; with none installed the hot path pays one
// relaxed atomic load and a branch per enqueue/dequeue.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace intellog::common {

/// Receives queue events from every ThreadPool in the process. Implemented
/// by the observability layer (obs installs a metrics bridge); methods must
/// be thread-safe and cheap.
class PoolObserver {
 public:
  virtual ~PoolObserver() = default;
  /// A task entered a pool queue; `queue_depth` includes it.
  virtual void on_enqueue(std::size_t queue_depth) = 0;
  /// A worker picked a task up after `delay_ms` in the queue;
  /// `queue_depth` is the depth left behind.
  virtual void on_dequeue(double delay_ms, std::size_t queue_depth) = 0;
  /// A pool shut down; `busy_us`/`idle_us`/`tasks` are its lifetime totals
  /// summed over workers.
  virtual void on_retire(std::uint64_t busy_us, std::uint64_t idle_us,
                         std::uint64_t tasks) = 0;
  /// shutdown() resolved the queue: `drained` tasks were queued at shutdown
  /// time and ran to completion; `cancelled` tasks were destroyed unrun
  /// (their futures report broken_promise). Default no-op so existing
  /// observers keep compiling.
  virtual void on_shutdown(std::uint64_t drained, std::uint64_t cancelled) {
    (void)drained;
    (void)cancelled;
  }
};

/// Installs the process-global observer (nullptr disables; the default).
/// Must outlive all pool activity while installed.
void set_pool_observer(PoolObserver* observer);
/// The installed observer, or nullptr. One relaxed atomic load.
PoolObserver* pool_observer();

class ThreadPool {
 public:
  /// What happens to queued-but-unstarted tasks at shutdown.
  enum class DrainMode {
    Drain,   ///< run every queued task to completion before joining
    Cancel,  ///< destroy queued tasks unrun; their futures throw broken_promise
  };

  /// Starts `num_threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Stops the pool deterministically: no new submits are accepted, queued
  /// tasks are drained or cancelled per `mode`, and all workers are joined
  /// before returning. Idempotent — later calls (including the destructor's
  /// implicit Drain) are no-ops. Not safe to race with submit().
  void shutdown(DrainMode mode = DrainMode::Drain);

  /// Enqueues a task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    std::size_t depth;
    {
      std::lock_guard lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.push(Task{[task] { (*task)(); }, now_ns()});
      depth = queue_.size();
    }
    cv_.notify_one();
    note_enqueue(depth);
    return fut;
  }

  std::size_t size() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  struct WorkerStats {
    std::uint64_t busy_us = 0;  ///< time spent running tasks
    std::uint64_t idle_us = 0;  ///< time spent waiting for work
    std::uint64_t tasks = 0;
  };
  struct Stats {
    std::uint64_t tasks_enqueued = 0;
    std::uint64_t tasks_completed = 0;
    std::uint64_t tasks_cancelled = 0;           ///< destroyed unrun by shutdown(Cancel)
    std::uint64_t tasks_drained_at_shutdown = 0; ///< queued at shutdown, ran during drain
    double queue_delay_total_ms = 0.0;  ///< summed enqueue->dequeue latency
    double queue_delay_max_ms = 0.0;
    std::size_t max_queue_depth = 0;
    std::vector<WorkerStats> workers;
  };
  /// Lifetime totals so far. Safe to call concurrently with pool activity
  /// (counters are relaxed atomics; a snapshot mid-flight is approximate).
  Stats stats() const;

 private:
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
  };
  struct WorkerCounters {
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> idle_ns{0};
    std::atomic<std::uint64_t> tasks{0};
  };

  static std::uint64_t now_ns();
  void note_enqueue(std::size_t depth);
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerCounters>> counters_;
  std::queue<Task> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;

  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> drained_at_shutdown_{0};
  std::atomic<std::uint64_t> delay_total_ns_{0};
  std::atomic<std::uint64_t> delay_max_ns_{0};
  std::atomic<std::size_t> max_depth_{0};
};

}  // namespace intellog::common
