// A small fixed-size thread pool.
//
// The analysis pipeline processes sessions independently (training corpora
// run to hundreds of sessions with millions of log lines), so the pipeline
// and the benches fan session work out across cores. Plain mutex+condvar
// pool: predictable, no lock-free cleverness needed at this queue rate.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace intellog::common {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t size() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace intellog::common
