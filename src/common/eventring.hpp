// Fixed-record lock-free journal ring: the storage primitive under the
// flight recorder (obs/flight).
//
// One ring belongs to exactly one producer thread; any number of readers
// (live snapshots, the crash-time dumper) may scan it concurrently. The
// producer publishes with a single release store of a monotonically
// increasing head counter; it never blocks, never allocates, and never
// takes a lock, which is what makes the write path safe to call from
// anywhere — including from inside a signal handler.
//
// Readers accept one caveat in exchange: the slot the producer is writing
// *right now* may be torn. `head` counts records ever pushed, so a reader
// that loads `head` (acquire) and then copies slots knows every slot
// strictly older than `head` is fully published except possibly the single
// in-flight one on a concurrent push. Decoders validate each record
// (event-id range, non-zero timestamp) and drop the at-most-one garbage
// slot per ring instead of trying to synchronize with a crashing thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace intellog::common {

/// Power-of-two ring of trivially-copyable `Record`s with a monotonic head.
template <typename Record, std::size_t Capacity>
struct alignas(64) EventRing {
  static_assert(Capacity >= 2 && (Capacity & (Capacity - 1)) == 0,
                "EventRing capacity must be a power of two");

  static constexpr std::size_t kCapacity = Capacity;
  static constexpr std::uint64_t kMask = Capacity - 1;

  /// Total records ever pushed (not an index — wraps are implicit).
  std::atomic<std::uint64_t> head{0};
  /// OS thread id of the owning producer, for post-mortem annotation.
  std::uint32_t os_tid = 0;
  Record records[Capacity] = {};

  /// Producer-only. Overwrites the oldest record once full.
  void push(const Record& r) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    records[h & kMask] = r;
    head.store(h + 1, std::memory_order_release);
  }

  /// Records currently resident (≤ Capacity).
  std::uint64_t size() const noexcept {
    const std::uint64_t h = head.load(std::memory_order_acquire);
    return h < Capacity ? h : Capacity;
  }

  /// Sequence number of the oldest resident record.
  std::uint64_t oldest_seq() const noexcept {
    const std::uint64_t h = head.load(std::memory_order_acquire);
    return h < Capacity ? 0 : h - Capacity;
  }

  /// Copies the resident records, oldest first, into `out` (which must
  /// hold `Capacity` entries). Returns the number copied. Reader-side;
  /// the newest slot may be torn if the producer is mid-push.
  std::uint64_t snapshot(Record* out) const noexcept {
    const std::uint64_t h = head.load(std::memory_order_acquire);
    const std::uint64_t n = h < Capacity ? h : Capacity;
    const std::uint64_t first = h - n;
    for (std::uint64_t i = 0; i < n; ++i) out[i] = records[(first + i) & kMask];
    return n;
  }
};

}  // namespace intellog::common
