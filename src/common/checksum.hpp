// CRC32 (IEEE 802.3 polynomial) for durability-layer integrity checks.
//
// Model documents and online-detector checkpoints are JSON files that may
// be truncated or bit-flipped by the very failures the detector is meant to
// survive (torn writes, disk faults). Every durable artifact therefore
// carries a `checksum` field computed over its canonical (compact) dump so
// loads can reject corruption with one clear error instead of surfacing a
// deep accessor failure.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/json.hpp"

namespace intellog::common {

/// CRC32 of `data` (IEEE polynomial, standard init/final xor — matches
/// zlib's crc32()). `seed` allows incremental computation: pass a previous
/// result to continue over concatenated chunks.
std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

/// The checksum as it is stored in JSON documents: "crc32:xxxxxxxx"
/// (lower-case hex, zero-padded).
std::string crc32_hex(std::string_view data);

/// Stamps `doc["checksum"]` with the CRC of the document's compact dump
/// (computed with the checksum field absent). `doc` must be an object.
void stamp_checksum(Json& doc);

/// Verifies a document stamped by stamp_checksum. Returns true when the
/// document has no "checksum" field (legacy artifacts) or the stored value
/// matches; false on mismatch.
bool verify_checksum(const Json& doc);

}  // namespace intellog::common
