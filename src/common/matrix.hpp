// Dense row-major matrix / vector ops for the DeepLog LSTM baseline.
//
// Small sizes (hidden ~64, vocab ~few hundred), so a straightforward
// cache-friendly implementation is plenty; no BLAS dependency.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace intellog::common {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix random_uniform(std::size_t rows, std::size_t cols, double lo, double hi, Rng& rng);
  /// Xavier/Glorot uniform init for layer weights.
  static Matrix xavier(std::size_t rows, std::size_t cols, Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Frobenius-norm clipping in place; returns the pre-clip norm.
  double clip_norm(double max_norm);

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

using Vector = std::vector<double>;

/// y = W x  (W: m x n, x: n, y: m)
void matvec(const Matrix& w, const Vector& x, Vector& y);
/// y += W x
void matvec_acc(const Matrix& w, const Vector& x, Vector& y);
/// y = W^T x  (W: m x n, x: m, y: n)
void matvec_transpose(const Matrix& w, const Vector& x, Vector& y);
/// W += alpha * a b^T  (outer-product accumulate; a: m, b: n)
void outer_acc(Matrix& w, const Vector& a, const Vector& b, double alpha = 1.0);

void add_inplace(Vector& a, const Vector& b);
double dot(const Vector& a, const Vector& b);

/// Numerically stable in-place softmax.
void softmax(Vector& v);

double sigmoid(double x);
double tanh_approx(double x);  // plain std::tanh; named for symmetry

}  // namespace intellog::common
